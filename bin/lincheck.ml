(* lincheck: linearizability checking of the concurrent engines on the
   deterministic simulator.

     dune exec bin/lincheck.exe -- sweep --scale quick
     dune exec bin/lincheck.exe -- sweep -d dict -e NR,NR-robust \
         --seeds 1,2,3 --salts 0,21,1365 --plans none,stall:5,death:9
     dune exec bin/lincheck.exe -- replay -d dict -e NR -t tiny \
         --threads 4 --seed 3 --salt 21 --plan stall:5 --ops 6 --keys 4

   A sweep exits 1 on the first non-linearizable history and prints its
   minimal counterexample plus the exact replay invocation; --expect-violation
   inverts the exit status for mutation-catch CI steps. *)

open Cmdliner
module E = Nr_check.Explore

let ints_conv ~what =
  let parse s =
    try
      Ok
        (String.split_on_char ',' s
        |> List.filter (fun x -> x <> "")
        |> List.map int_of_string)
    with Failure _ -> Error (`Msg (Printf.sprintf "expected comma-separated %s" what))
  in
  Arg.conv
    ( parse,
      fun ppf l ->
        Format.pp_print_string ppf (String.concat "," (List.map string_of_int l))
    )

let strings_conv =
  let parse s = Ok (String.split_on_char ',' s |> List.filter (fun x -> x <> "")) in
  Arg.conv (parse, fun ppf l -> Format.pp_print_string ppf (String.concat "," l))

let substrates_term =
  Arg.(
    value
    & opt strings_conv E.all_substrates
    & info [ "d"; "substrates" ] ~docv:"DS"
        ~doc:"Substrates to check: stack, queue, dict, pq, kv, txn.")

let engines_conv =
  let parse s =
    let names = String.split_on_char ',' s |> List.filter (fun x -> x <> "") in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest -> (
          match E.engine_of_name n with
          | Some e -> go (e :: acc) rest
          | None -> Error (`Msg (Printf.sprintf "unknown engine %S" n)))
    in
    go [] names
  in
  Arg.conv
    ( parse,
      fun ppf l ->
        Format.pp_print_string ppf
          (String.concat "," (List.map E.engine_name l)) )

let engines_term =
  Arg.(
    value
    & opt engines_conv E.all_engines
    & info [ "e"; "engines" ] ~docv:"ENGINES"
        ~doc:
          "Engines: NR, NR-cna, NR-robust, NR-robust-opt, NR-shard, FC, \
           FC+, RWL, SL, LF, NA.")

let topo_term =
  Arg.(
    value
    & opt string "tiny"
    & info [ "t"; "topology" ] ~docv:"TOPO" ~doc:"Topology: tiny, amd, intel.")

let threads_term =
  Arg.(
    value & opt int 4
    & info [ "threads" ] ~docv:"N" ~doc:"Simulated threads per run.")

let ops_term =
  Arg.(
    value & opt int 6
    & info [ "ops" ] ~docv:"N" ~doc:"Operations per thread per run.")

let keys_term =
  Arg.(
    value & opt int 4
    & info [ "keys" ] ~docv:"N"
        ~doc:"Key space for generated operations (small = more conflicts).")

let mutation_term =
  Arg.(
    value & flag
    & info [ "mutate-stale-reads" ]
        ~doc:
          "Plant the stale-reads bug in NR (skip the completedTail \
           freshness wait) — the sweep must then flag a violation.")

let bypass_term =
  Arg.(
    value & flag
    & info [ "mutate-router-bypass" ]
        ~doc:
          "Plant the router-bypass bug in sharded NR (single-key reads \
           consult the wrong shard) — the NR-shard sweep must then flag a \
           violation.")

let skip_validate_term =
  Arg.(
    value & flag
    & info [ "mutate-skip-read-validate" ]
        ~doc:
          "Plant the skip-read-validate bug in the optimistic-read engines \
           (readers omit the post-read seqlock stamp check) — the \
           NR-cna/NR-robust-opt sweep must then flag a violation.")

let skip_log_term =
  Arg.(
    value & flag
    & info [ "mutate-expire-skip-log" ]
        ~doc:
          "Plant the expire-skip-log bug in the store (reads purge expired \
           keys locally, bumping the version stamp without a log entry, so \
           replica stamps diverge) — the txn sweep must then flag a \
           violation.")

let budget_term =
  Arg.(
    value
    & opt int 2_000_000
    & info [ "budget" ] ~docv:"N" ~doc:"WGL search-node budget per history.")

(* First-class dispatch over the four substrate runners: they share the
   Run functor's shape but differ in every type, so the polymorphic bits
   (cx, counts) are extracted through a record of closures. *)
type runner = {
  sweep :
    budget:int ->
    topo:string ->
    threads:int ->
    seeds:int list ->
    salts:int list ->
    plans:string list ->
    ops_per_thread:int ->
    key_space:int ->
    engines:E.engine list ->
    mutation:bool ->
    E.sweep_result;
  check_one :
    budget:int ->
    topo:string ->
    threads:int ->
    seed:int ->
    salt:int ->
    plan:string ->
    ops_per_thread:int ->
    key_space:int ->
    engine:E.engine ->
    mutation:bool ->
    E.cx option;
}

let runner_of_substrate = function
  | "stack" ->
      {
        sweep =
          (fun ~budget ~topo ~threads ~seeds ~salts ~plans ~ops_per_thread
               ~key_space ~engines ~mutation ->
            E.Run_stack.sweep ~budget ~topo ~threads ~seeds ~salts ~plans
              ~ops_per_thread ~key_space ~engines ~mutation ());
        check_one =
          (fun ~budget ~topo ~threads ~seed ~salt ~plan ~ops_per_thread
               ~key_space ~engine ~mutation ->
            E.Run_stack.check_one ~budget ~topo ~threads ~seed ~salt ~plan
              ~ops_per_thread ~key_space ~engine ~mutation ());
      }
  | "queue" ->
      {
        sweep =
          (fun ~budget ~topo ~threads ~seeds ~salts ~plans ~ops_per_thread
               ~key_space ~engines ~mutation ->
            E.Run_queue.sweep ~budget ~topo ~threads ~seeds ~salts ~plans
              ~ops_per_thread ~key_space ~engines ~mutation ());
        check_one =
          (fun ~budget ~topo ~threads ~seed ~salt ~plan ~ops_per_thread
               ~key_space ~engine ~mutation ->
            E.Run_queue.check_one ~budget ~topo ~threads ~seed ~salt ~plan
              ~ops_per_thread ~key_space ~engine ~mutation ());
      }
  | "dict" ->
      {
        sweep =
          (fun ~budget ~topo ~threads ~seeds ~salts ~plans ~ops_per_thread
               ~key_space ~engines ~mutation ->
            E.Run_dict.sweep ~budget ~topo ~threads ~seeds ~salts ~plans
              ~ops_per_thread ~key_space ~engines ~mutation ());
        check_one =
          (fun ~budget ~topo ~threads ~seed ~salt ~plan ~ops_per_thread
               ~key_space ~engine ~mutation ->
            E.Run_dict.check_one ~budget ~topo ~threads ~seed ~salt ~plan
              ~ops_per_thread ~key_space ~engine ~mutation ());
      }
  | "pq" ->
      {
        sweep =
          (fun ~budget ~topo ~threads ~seeds ~salts ~plans ~ops_per_thread
               ~key_space ~engines ~mutation ->
            E.Run_pq.sweep ~budget ~topo ~threads ~seeds ~salts ~plans
              ~ops_per_thread ~key_space ~engines ~mutation ());
        check_one =
          (fun ~budget ~topo ~threads ~seed ~salt ~plan ~ops_per_thread
               ~key_space ~engine ~mutation ->
            E.Run_pq.check_one ~budget ~topo ~threads ~seed ~salt ~plan
              ~ops_per_thread ~key_space ~engine ~mutation ());
      }
  | "kv" ->
      {
        sweep =
          (fun ~budget ~topo ~threads ~seeds ~salts ~plans ~ops_per_thread
               ~key_space ~engines ~mutation ->
            E.Run_kv.sweep ~budget ~topo ~threads ~seeds ~salts ~plans
              ~ops_per_thread ~key_space ~engines ~mutation ());
        check_one =
          (fun ~budget ~topo ~threads ~seed ~salt ~plan ~ops_per_thread
               ~key_space ~engine ~mutation ->
            E.Run_kv.check_one ~budget ~topo ~threads ~seed ~salt ~plan
              ~ops_per_thread ~key_space ~engine ~mutation ());
      }
  | "txn" ->
      {
        sweep =
          (fun ~budget ~topo ~threads ~seeds ~salts ~plans ~ops_per_thread
               ~key_space ~engines ~mutation ->
            E.Run_txn.sweep ~budget ~topo ~threads ~seeds ~salts ~plans
              ~ops_per_thread ~key_space ~engines ~mutation ());
        check_one =
          (fun ~budget ~topo ~threads ~seed ~salt ~plan ~ops_per_thread
               ~key_space ~engine ~mutation ->
            E.Run_txn.check_one ~budget ~topo ~threads ~seed ~salt ~plan
              ~ops_per_thread ~key_space ~engine ~mutation ());
      }
  | s ->
      Printf.eprintf
        "lincheck: unknown substrate %S (stack|queue|dict|pq|kv|txn)\n" s;
      exit 2

(* -- sweep -- *)

let sweep_run substrates engines topo threads ops keys seeds salts plans
    stale bypass skip_validate skip_log expect_violation budget =
  (* one mutation switch downstream: each substrate/engine plants its own
     seeded bug (txn the store's unlogged expiry purge, NR-shard the
     router bypass, NR-cna/NR-robust-opt the skipped read validation, the
     plain NR engines the stale read) *)
  let mutation = stale || bypass || skip_validate || skip_log in
  let t0 = Unix.gettimeofday () in
  let total = ref 0 and steals = ref 0 and kills = ref 0 in
  let cx = ref None in
  List.iter
    (fun sub ->
      if !cx = None then begin
        let r = runner_of_substrate sub in
        let sr =
          r.sweep ~budget ~topo ~threads ~seeds ~salts ~plans
            ~ops_per_thread:ops ~key_space:keys ~engines ~mutation
        in
        total := !total + sr.E.checked;
        steals := !steals + sr.E.steals;
        kills := !kills + sr.E.kills;
        Printf.printf "%-6s %4d histories checked (steals=%d kills=%d)\n%!"
          sub sr.E.checked sr.E.steals sr.E.kills;
        match sr.E.counterexample with Some c -> cx := Some c | None -> ()
      end)
    substrates;
  let dt = Unix.gettimeofday () -. t0 in
  (match !cx with
  | Some c -> Format.printf "%a" E.pp_cx c
  | None ->
      Printf.printf
        "all %d histories linearizable (steals=%d kills=%d, %.1fs)\n" !total
        !steals !kills dt);
  match (!cx, expect_violation) with
  | Some _, true ->
      print_endline "seeded mutation flagged, as expected";
      0
  | None, true ->
      prerr_endline "lincheck: expected a violation but every history passed";
      1
  | Some _, false -> 1
  | None, false -> 0

let sweep_cmd =
  let seeds =
    Arg.(
      value
      & opt (ints_conv ~what:"seeds") [ 1; 2; 3 ]
      & info [ "seeds" ] ~docv:"SEEDS" ~doc:"Workload seeds to sweep.")
  in
  let salts =
    Arg.(
      value
      & opt (ints_conv ~what:"salts") [ 0; 21; 1365 ]
      & info [ "salts" ] ~docv:"SALTS"
          ~doc:"Scheduler tie-break salts (0 = stock order).")
  in
  let plans =
    Arg.(
      value
      & opt strings_conv [ "none"; "jitter:1"; "stall:1"; "preempt:1"; "steal:1"; "death:1" ]
      & info [ "plans" ] ~docv:"PLANS"
          ~doc:
            "Fault-plan specs: none, jitter:S, stall:S, preempt:S, steal:S, \
             death:S (steal/death apply to the robust engines only).")
  in
  let expect =
    Arg.(
      value & flag
      & info [ "expect-violation" ]
          ~doc:"Exit 0 iff a violation IS found (mutation-catch mode).")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep seeds × salts × plans over DS × engines.")
    Term.(
      const sweep_run $ substrates_term $ engines_term $ topo_term
      $ threads_term $ ops_term $ keys_term $ seeds $ salts $ plans
      $ mutation_term $ bypass_term $ skip_validate_term $ skip_log_term
      $ expect $ budget_term)

(* -- replay -- *)

let replay_run substrate engines topo threads ops keys seed salt plan stale
    bypass skip_validate skip_log budget =
  let mutation = stale || bypass || skip_validate || skip_log in
  let r = runner_of_substrate substrate in
  let engine =
    match engines with
    | [ e ] -> e
    | _ ->
        prerr_endline "lincheck replay: pass exactly one engine with -e";
        exit 2
  in
  match
    r.check_one ~budget ~topo ~threads ~seed ~salt ~plan ~ops_per_thread:ops
      ~key_space:keys ~engine ~mutation
  with
  | Some c ->
      Format.printf "%a" E.pp_cx c;
      1
  | None ->
      Printf.printf "linearizable: %s/%s seed=%d salt=%d plan=%s\n" substrate
        (E.engine_name engine) seed salt plan;
      0

let replay_cmd =
  let substrate =
    Arg.(
      value & opt string "dict"
      & info [ "d"; "substrate" ] ~docv:"DS" ~doc:"Substrate to replay.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Workload seed.")
  in
  let salt =
    Arg.(value & opt int 0 & info [ "salt" ] ~docv:"N" ~doc:"Tie-break salt.")
  in
  let plan =
    Arg.(
      value & opt string "none"
      & info [ "plan" ] ~docv:"PLAN" ~doc:"Fault-plan spec.")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Re-run and re-check one (topology, seed, plan) tuple.")
    Term.(
      const replay_run $ substrate $ engines_term $ topo_term $ threads_term
      $ ops_term $ keys_term $ seed $ salt $ plan $ mutation_term
      $ bypass_term $ skip_validate_term $ skip_log_term $ budget_term)

let () =
  let doc = "linearizability checking on the deterministic simulator" in
  exit (Cmd.eval' (Cmd.group (Cmd.info "lincheck" ~doc) [ sweep_cmd; replay_cmd ]))

(* nr-bench: run any of the paper's experiments with custom parameters.

     dune exec bin/nr_bench.exe -- list
     dune exec bin/nr_bench.exe -- run fig5 --scale quick
     dune exec bin/nr_bench.exe -- run fig7 fig8 --population 100000 \
         --threads 1,28,56,112 --measure-us 200
     dune exec bin/nr_bench.exe -- run fig11 --topology amd *)

open Cmdliner
open Nr_harness

let topology_conv =
  let parse = function
    | "intel" -> Ok Nr_sim.Topology.intel
    | "amd" -> Ok Nr_sim.Topology.amd
    | "tiny" -> Ok Nr_sim.Topology.tiny
    | s -> Error (`Msg (Printf.sprintf "unknown topology %S (intel|amd|tiny)" s))
  in
  Arg.conv (parse, fun ppf t -> Nr_sim.Topology.pp ppf t)

let threads_conv =
  let parse s =
    try
      Ok
        (String.split_on_char ',' s
        |> List.filter (fun x -> x <> "")
        |> List.map int_of_string)
    with Failure _ -> Error (`Msg "expected comma-separated thread counts")
  in
  Arg.conv
    (parse, fun ppf l ->
      Format.pp_print_string ppf
        (String.concat "," (List.map string_of_int l)))

let scale_conv =
  let parse = function
    | "quick" -> Ok Params.quick
    | "default" -> Ok Params.default
    | "paper" -> Ok Params.paper
    | s -> Error (`Msg (Printf.sprintf "unknown scale %S" s))
  in
  Arg.conv (parse, fun ppf _ -> Format.pp_print_string ppf "<scale>")

let params_term =
  let scale =
    Arg.(
      value
      & opt scale_conv Params.default
      & info [ "scale" ] ~docv:"SCALE"
          ~doc:"Preset: quick, default or paper.")
  in
  let topology =
    Arg.(
      value
      & opt (some topology_conv) None
      & info [ "topology" ] ~docv:"TOPO" ~doc:"Machine topology override.")
  in
  let threads =
    Arg.(
      value
      & opt (some threads_conv) None
      & info [ "threads" ] ~docv:"LIST" ~doc:"Thread sweep override.")
  in
  let population =
    Arg.(
      value
      & opt (some int) None
      & info [ "population" ] ~docv:"N" ~doc:"Initial structure size.")
  in
  let measure_us =
    Arg.(
      value
      & opt (some float) None
      & info [ "measure-us" ] ~docv:"US"
          ~doc:"Virtual-time measurement window per point.")
  in
  let latency =
    Arg.(
      value & flag
      & info [ "latency" ]
          ~doc:
            "Record per-operation latency and add p50/p99 columns (in \
             microseconds) next to each method's throughput.")
  in
  let combine scale topology threads population measure_us latency =
    let p = scale in
    let p = match topology with Some t -> { p with Params.topo = t } | None -> p in
    let p =
      match threads with Some t -> { p with Params.threads = t } | None -> p
    in
    let p =
      match population with
      | Some n -> { p with Params.population = n }
      | None -> p
    in
    let p =
      match measure_us with
      | Some m -> { p with Params.measure_us = m }
      | None -> p
    in
    if latency then { p with Params.latency = true } else p
  in
  Term.(
    const combine $ scale $ topology $ threads $ population $ measure_us
    $ latency)

let list_cmd =
  let run () =
    List.iter
      (fun g -> Printf.printf "%-10s %s\n" g.Figures.id g.Figures.description)
      Figures.groups
  in
  Cmd.v (Cmd.info "list" ~doc:"List available figure/table ids.")
    Term.(const run $ const ())

let run_cmd =
  let figures =
    Arg.(
      value
      & pos_all string []
      & info [] ~docv:"FIGURE" ~doc:"Figure ids to run (default: all).")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Capture an event trace of the run and write it to $(docv) as \
             Chrome trace_event JSON (open in Perfetto or chrome://tracing). \
             Timestamps are virtual cycles, so output is byte-identical \
             across runs with the same seed.  Best combined with a single \
             figure and one --threads point.")
  in
  let trace_capacity =
    Arg.(
      value
      & opt int 4096
      & info [ "trace-capacity" ] ~docv:"N"
          ~doc:
            "Events retained per thread (drop-oldest ring buffer).")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "After each measured point, print a unified metrics dump \
             (simulator counters, NR combiner stats, latency quantiles) to \
             stderr — the same reporting path the domains runtime uses.")
  in
  let run params figures trace_file trace_capacity metrics =
    Nr_obs.Sink.request_metrics metrics;
    if trace_capacity <= 0 then begin
      Printf.eprintf "nr-bench: --trace-capacity must be positive\n";
      exit 124
    end;
    let trace =
      match trace_file with
      | None -> None
      | Some file ->
          (* open the output now so a bad path fails before the run, not
             after the benchmark has already burned its minutes *)
          let oc =
            try open_out file
            with Sys_error msg ->
              Printf.eprintf "nr-bench: cannot write trace: %s\n" msg;
              exit 124
          in
          (* virtual time: deterministic, free to read outside the sim *)
          let now () =
            if Nr_sim.Sched.running () then Nr_sim.Sched.now () else 0
          in
          let t =
            Nr_obs.Trace.create ~capacity:trace_capacity
              ~threads:(Nr_sim.Topology.max_threads params.Params.topo)
              ~now ()
          in
          Nr_obs.Sink.install_trace t;
          Some (file, oc, t)
    in
    Format.printf "# topology: %a@." Nr_sim.Topology.pp params.Params.topo;
    (match figures with
    | [] -> Figures.run_all params
    | ids ->
        List.iter
          (fun id ->
            match Figures.find id with
            | Some g ->
                Format.printf "=== %s: %s ===@." g.Figures.id
                  g.Figures.description;
                g.Figures.run params
            | None -> Printf.eprintf "unknown figure id %S\n" id)
          ids);
    match trace with
    | None -> ()
    | Some (file, oc, t) ->
        Nr_obs.Sink.uninstall_trace ();
        Nr_obs.Trace.write_chrome t oc;
        close_out oc;
        Printf.eprintf "# trace: %d events retained (%d dropped) -> %s\n%!"
          (Nr_obs.Trace.recorded t - Nr_obs.Trace.dropped t)
          (Nr_obs.Trace.dropped t) file
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run experiments and print their tables.")
    Term.(
      const run $ params_term $ figures $ trace_file $ trace_capacity
      $ metrics)

let () =
  let doc = "regenerate the Node Replication paper's evaluation" in
  exit (Cmd.eval (Cmd.group (Cmd.info "nr-bench" ~doc) [ list_cmd; run_cmd ]))

(* kv-server: a RESP-speaking in-memory store whose data structures are made
   concurrent by Node Replication — the paper's Redis experiment as a
   runnable server (sections 7-8.3) — with an optional durability layer:
   the NR shared log doubles as a persistence and replication log.

     dune exec bin/kv_server.exe -- --port 6380 --workers 4
     dune exec bin/kv_server.exe -- --aof /var/tmp/kv --fsync every-n:32
     dune exec bin/kv_server.exe -- --port 6381 --follower-of 127.0.0.1:6380
     # chained follower with its own AOF, serving PSYNC to its children:
     dune exec bin/kv_server.exe -- --port 6382 --aof /var/tmp/kv2 \
         --follower-of 127.0.0.1:6381,127.0.0.1:6380

   Then, from any Redis client:
     redis-cli -p 6380 ZADD board 10 1
     redis-cli -p 6380 WAIT 1 200       # block until 1 follower acked
     redis-cli -p 6380 SLOWLOG GET      # slowest commands, Redis-style *)

open Cmdliner

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

(* What a serving mode (plain / persistent leader / chained follower /
   sharded) plugs into the generic server + replication-loop scaffolding. *)
type serving = {
  execute : Nr_kvstore.Command.t -> Nr_kvstore.Command.reply;
      (** client-facing execution (the READONLY gate wraps this) *)
  special : (Nr_kvstore.Command.t -> Nr_kvstore.Command.reply option) option;
  on_close : unit -> unit;
  descr : string;
  dump_stats : Format.formatter -> unit;
  repl_exec : Nr_kvstore.Command.t -> Nr_kvstore.Command.reply;
      (** how the follower loop applies a replicated op *)
  repl_on_op : (Nr_kvstore.Command.t option -> unit) option;
      (** per-frame persister feed (AOF-keeping follower) *)
  repl_on_full :
    (upto:int -> dump:string -> (unit, string) result) option;
      (** full-resync rebase of the local persistent state *)
  repl_strict : bool;  (** refuse offset-regressing full resyncs *)
  own_ack : unit -> int;  (** watermark to REPLACK upstream *)
  pending_acks : unit -> (string * int) list;
      (** children's acks to forward up the chain *)
  on_promote : unit -> unit;  (** leader duties on failover promotion *)
}

let serve port workers net nodes shards slowlog_capacity slowlog_threshold_us
    aof_dir fsync snapshot_every follower_of failover_after poll_ms
    connect_timeout_ms read_timeout_ms =
  let module C = Nr_kvstore.Command in
  let module Repl = Nr_persist.Replication in
  let net =
    match net with
    | "pool" -> Nr_kvstore.Server.Pool
    | "evloop" -> Nr_kvstore.Server.Evloop
    | s -> fail "--net: unknown mode %S (expected pool or evloop)" s
  in
  let policy =
    match Nr_persist.Aof.policy_of_string fsync with
    | Ok p -> p
    | Error e -> fail "%s" e
  in
  let endpoints =
    match follower_of with
    | None -> None
    | Some s -> (
        match Repl.endpoints_of_string s with
        | Ok eps -> Some eps
        | Error e -> fail "--follower-of: %s" e)
  in
  if aof_dir <> None && shards > 1 then
    fail "--aof requires --shards 1: the durability log tails a single NR log";
  if endpoints <> None && shards > 1 then
    fail "--follower-of requires --shards 1";
  let topo = Nr_sim.Topology.tiny in
  let module R = (val Nr_runtime.Runtime_domains.make topo) in
  let now_ms_wall () = int_of_float (Unix.gettimeofday () *. 1000.) in
  (* lazily-sampled wall clock for the read path: keys past their deadline
     answer as missing before the wheel's logged eviction lands *)
  Nr_kvstore.Store.read_clock := Some now_ms_wall;
  (* worker threads carry runtime identities round-robin over the topology;
     register lazily: pool workers are domains created by the server *)
  let next_tid = Atomic.make 0 in
  let register () =
    try ignore (R.tid ())
    with Invalid_argument _ ->
      Nr_runtime.Runtime_domains.register
        ~tid:(Atomic.fetch_and_add next_tid 1 mod R.max_threads ())
  in
  let writable = Atomic.make (endpoints = None) in
  (* per-shard expiry wheels: an acked PEXPIREAT arms the key's home-shard
     wheel; a driver thread turns due deadlines into logged TICK +
     EVICT entries (leader only — followers keep their wheels warm from
     the replication stream so promotion picks up pending expiries).
     With no TTLs in play the wheels stay empty and the driver never
     logs anything: the no-TTL op stream and AOF bytes are untouched. *)
  let wheels =
    Array.init (max 1 shards) (fun _ ->
        (Mutex.create (), Nr_txn.Wheel.create ~start_ms:(now_ms_wall ()) ()))
  in
  let wheel_route = ref (fun (_ : string) -> 0) in
  let wheel_add k d =
    let m, w = wheels.(!wheel_route k) in
    Mutex.lock m;
    Nr_txn.Wheel.add w ~key:k ~deadline:d;
    Mutex.unlock m
  in
  (* arm wheels from acked deadlines, including those inside a committed
     transaction's reply array *)
  let rec feed_wheel (cmd : Nr_kvstore.Command.t)
      (reply : Nr_kvstore.Command.reply) =
    let module C = Nr_kvstore.Command in
    match (cmd, reply) with
    | C.Pexpireat (k, d), C.Int 1 -> wheel_add k d
    | C.Txn (_, body), C.Array rs when List.length body = List.length rs ->
        List.iter2 feed_wheel body rs
    | _ -> ()
  in
  let with_feed f cmd =
    let reply = f cmd in
    feed_wheel cmd reply;
    reply
  in
  (* the session is created before connecting: it owns the candidate
     endpoint list and the reconnect backoff, and its current target is
     the best known leader address (shown in READONLY rejections) *)
  let session =
    Option.map
      (fun eps ->
        Repl.make_session ~connect_timeout_ms ~read_timeout_ms ~endpoints:eps
          ~offset:0 ())
      endpoints
  in
  let serving =
    if shards <= 1 then begin
      let module Db = Nr_core.Node_replication.Make (R) (Nr_kvstore.Store) in
      let plain () =
        let db = Db.create (fun () -> Nr_kvstore.Store.create ()) in
        let exec cmd =
          register ();
          Db.execute db cmd
        in
        {
          execute = exec;
          special = None;
          on_close = (fun () -> ());
          descr = Printf.sprintf "NR over %d replicas" (Db.num_replicas db);
          dump_stats = (fun _ -> ());
          repl_exec = exec;
          repl_on_op = None;
          repl_on_full = None;
          repl_strict = false;
          own_ack =
            (fun () ->
              match session with Some s -> Repl.offset s | None -> 0);
          pending_acks = (fun () -> []);
          on_promote = (fun () -> ());
        }
      in
      match aof_dir with
      | None -> plain ()
      | Some dir ->
          (* persistent node (leader, or chained follower serving its own
             children): recover, seed every replica with the recovered
             image, then tail either the local NR log (leader) or the
             upstream replication stream (follower) into the persister *)
          let fs = Nr_persist.Vfs.real ~root:dir in
          let now_ms = now_ms_wall in
          let background = snapshot_every <> None in
          let p, recovery =
            match
              Nr_persist.Persister.create fs ~policy ~now_ms ?snapshot_every
                ~background ()
            with
            | Ok pr -> pr
            | Error e -> fail "recovery failed: %s" e
          in
          (* a follower resumes PSYNC exactly where its AOF ends *)
          (match session with
          | Some s -> Repl.set_offset s (Nr_persist.Persister.cursor p)
          | None -> ());
          let seed = Nr_persist.Persister.dump p in
          let db =
            Db.create (fun () ->
                let s = Nr_kvstore.Store.create () in
                (match Nr_kvstore.Store.load s seed with
                | Ok () -> ()
                | Error e -> fail "recovery failed: %s" e);
                s)
          in
          (* re-arm the expiry wheel from the recovered image: deadlines
             that passed while the server was down evict on the first
             driver tick *)
          List.iter
            (fun (k, d) -> wheel_add k d)
            (Nr_kvstore.Store.expirations (Db.Unsafe.replica db 0));
          Printf.printf
            "recovered to position %d (snapshot %s, %d ops replayed%s)\n%!"
            (Nr_persist.Persister.cursor p)
            (match recovery.Nr_persist.Persister.snapshot_upto with
            | Some u -> Printf.sprintf "up to %d" u
            | None -> "none")
            recovery.Nr_persist.Persister.replayed
            (if recovery.Nr_persist.Persister.torn then
               ", torn tail discarded"
             else "");
          (* serialize log tapping + persister access; the tap runs after
             the update executed (completed covers it) and before the reply
             is sent, so an [always] policy means every ack is durable *)
          let m = Mutex.create () in
          let locked f =
            Mutex.lock m;
            Fun.protect ~finally:(fun () -> Mutex.unlock m) f
          in
          let hub = Nr_persist.Repl_hub.create () in
          let tap_from = ref 0 in
          let drain_log () =
            match Db.Unsafe.log_tap db ~from:!tap_from with
            | Ok ops ->
                tap_from := !tap_from + List.length ops;
                Nr_persist.Persister.observe p ops
            | Error oldest ->
                (* a tap runs after every update, so lagging a full lap is
                   a bug, not an operational state *)
                failwith
                  (Printf.sprintf
                     "persistence overrun: cursor %d, log recycled below %d"
                     !tap_from oldest)
          in
          let exec_registered cmd =
            register ();
            Db.execute db cmd
          in
          let exec cmd =
            let reply = exec_registered cmd in
            (* only a leader taps its own log: a follower's updates arrive
               through the replication stream and are persisted by
               [repl_on_op] at the leader's global coordinates *)
            if Atomic.get writable && not (C.is_read_only cmd) then
              locked drain_log;
            reply
          in
          (* acks from this node's own followers, queued for forwarding up
             the chain by the replication thread (it owns the upstream
             connection; server workers must not touch it) *)
          let ack_fwd = Queue.create () in
          let ack_m = Mutex.create () in
          let special cmd =
            match cmd with
            | C.Sync | C.Psync _ ->
                locked (fun () -> Nr_persist.Persister.handle_sync p cmd)
            | C.Wait (n, timeout_ms) ->
                (* target = everything this node has persisted so far,
                   which covers every write the asking client saw acked *)
                let target =
                  locked (fun () -> Nr_persist.Persister.cursor p)
                in
                Some
                  (C.Int
                     (Nr_persist.Repl_hub.wait hub ~seq:target ~n ~timeout_ms))
            | C.Replack (id, seq) ->
                Nr_persist.Repl_hub.ack hub ~id ~seq;
                if not (Atomic.get writable) then begin
                  Mutex.lock ack_m;
                  Queue.push (id, seq) ack_fwd;
                  Mutex.unlock ack_m
                end;
                Some C.Ok_reply
            | _ -> None
          in
          let pending_acks () =
            Mutex.lock ack_m;
            let acks = List.of_seq (Queue.to_seq ack_fwd) in
            Queue.clear ack_fwd;
            Mutex.unlock ack_m;
            acks
          in
          (* background compaction: the slow snapshot write runs OFF the
             persistence mutex, so client writes keep committing during a
             rewrite; only the bracketing cut/rotate steps lock *)
          if background then
            ignore
              (Thread.create
                 (fun () ->
                   while true do
                     (if Atomic.get writable then
                        let due =
                          locked (fun () ->
                              Nr_persist.Persister.compaction_due p)
                        in
                        if due then begin
                          let upto, dump =
                            locked (fun () ->
                                Nr_persist.Persister.compaction_begin p)
                          in
                          Nr_persist.Persister.compaction_write p ~upto ~dump;
                          locked (fun () ->
                              Nr_persist.Persister.compaction_finish p ~upto)
                        end);
                     Thread.delay 0.02
                   done)
                 ());
          {
            execute = exec;
            special = Some special;
            on_close = (fun () -> locked (fun () -> Nr_persist.Persister.close p));
            descr =
              Printf.sprintf "NR over %d replicas, aof=%s fsync=%s%s"
                (Db.num_replicas db) dir fsync
                (if background then
                   Printf.sprintf " snapshot-every=%d (background)"
                     (Option.value snapshot_every ~default:0)
                 else "");
            dump_stats = (fun _ -> ());
            repl_exec = exec_registered;
            repl_on_op =
              Some
                (fun op ->
                  locked (fun () -> Nr_persist.Persister.observe p [ op ]));
            repl_on_full =
              Some
                (fun ~upto ~dump ->
                  locked (fun () ->
                      Nr_persist.Persister.reset_to p ~upto ~dump));
            (* a durable follower must never regress: a lagging parent's
               FULLRESYNC is refused and the session rotates endpoints *)
            repl_strict = true;
            own_ack =
              (fun () -> locked (fun () -> Nr_persist.Persister.durable_seq p));
            pending_acks;
            on_promote =
              (fun () ->
                (* from now on client writes land in the local NR log;
                   skip everything already persisted via the stream *)
                locked (fun () -> tap_from := Db.completed db));
          }
    end
    else begin
      let module Sh = Nr_shard.Sharded.Make (R) (Nr_shard.Kv_shard) in
      let db =
        Sh.create
          ~cfg:{ Nr_core.Config.default with shards }
          ~factory:(fun ~shard:_ ~shard_of:_ () -> Nr_kvstore.Store.create ())
          ()
      in
      wheel_route := Nr_shard.Router.shard_of (Sh.router db);
      let exec cmd =
        register ();
        Sh.execute db cmd
      in
      {
        execute = exec;
        special = None;
        on_close = (fun () -> ());
        descr =
          Printf.sprintf "%d NR shards x %d replicas" shards (R.num_nodes ());
        dump_stats =
          (fun ppf ->
            Format.fprintf ppf "shard ops: %a@." Nr_shard.Shard_stats.pp
              (Sh.stats db));
        repl_exec = exec;
        repl_on_op = None;
        repl_on_full = None;
        repl_strict = false;
        own_ack =
          (fun () -> match session with Some s -> Repl.offset s | None -> 0);
        pending_acks = (fun () -> []);
        on_promote = (fun () -> ());
      }
    end
  in
  (* follower mode: replicate from the leader, refuse client writes until
     promoted — pointing the client at the best-known leader address *)
  let exec =
    with_feed (fun cmd ->
        (* writability is classification-derived: anything [Command.class_of]
           calls a write is refused on a replica, everything else serves
           locally — one table for the gate, the session fast path and the
           store *)
        if (not (Atomic.get writable)) && not (C.is_read_only cmd) then
          match session with
          | Some s ->
              let ep = Repl.leader s in
              C.Err
                (Printf.sprintf "READONLY leader %s:%d" ep.Repl.host
                   ep.Repl.port)
          | None -> C.Err "READONLY replica; writes go to the leader"
        else serving.execute cmd)
  in
  (* the expiry driver: turn due wheel entries into logged entries through
     the normal execution path — one TICK anchoring the logical clock,
     then the evictions, all replicated and persisted like client writes *)
  ignore
    (Thread.create
       (fun () ->
         while true do
           Thread.delay 0.01;
           if Atomic.get writable then begin
             let now = now_ms_wall () in
             let due =
               Array.fold_left
                 (fun acc (m, w) ->
                   if Nr_txn.Wheel.is_empty w then acc
                   else begin
                     Mutex.lock m;
                     let d = Nr_txn.Wheel.advance w ~now in
                     Mutex.unlock m;
                     acc @ d
                   end)
                 [] wheels
             in
             if due <> [] then begin
               ignore (exec (C.Tick now));
               List.iter
                 (fun (k, d) -> ignore (exec (C.Expire_evict (k, d))))
                 due
             end
           end
         done)
       ());
  let obs =
    Nr_kvstore.Kv_obs.create ~slowlog_capacity
      ~slowlog_threshold:(slowlog_threshold_us * 1000) ()
  in
  let server =
    Nr_kvstore.Server.create ~obs ?special:serving.special
      ~session:Nr_txn.Session.hook ~clock:now_ms_wall ~net ~nodes ~port
      ~workers exec
  in
  (* the replication loop starts after the server bound its port: the
     REPLACK identity includes it, so watermarks survive leader-side
     reconnects of the same follower *)
  (match session with
  | None -> ()
  | Some s ->
      let my_id =
        Printf.sprintf "%d@%d" (Unix.getpid ()) (Nr_kvstore.Server.port server)
      in
      ignore
        (Thread.create
           (fun () ->
             let rec loop () =
               if Atomic.get writable then ()
               else begin
                 (match
                    Repl.step ?on_op:serving.repl_on_op
                      ?on_full:serving.repl_on_full
                      ~strict:serving.repl_strict s
                      ~exec:(with_feed serving.repl_exec)
                  with
                 | Repl.Applied _ ->
                     (* report our durable watermark upstream, then relay
                        our own followers' acks — hop-by-hop propagation *)
                     ignore (Repl.ack s ~id:my_id ~seq:(serving.own_ack ()));
                     List.iter
                       (fun (id, seq) -> ignore (Repl.ack s ~id ~seq))
                       (serving.pending_acks ());
                     Thread.delay (float_of_int poll_ms /. 1000.)
                 | Repl.Retry_after (delay_ms, msg) ->
                     if
                       failover_after > 0
                       && Repl.consecutive_failures s >= failover_after
                     then begin
                       Printf.eprintf
                         "leader unreachable (%d consecutive failures, last: \
                          %s): promoting to writable at offset %d\n\
                          %!"
                         (Repl.consecutive_failures s)
                         msg (Repl.offset s);
                       serving.on_promote ();
                       Atomic.set writable true
                     end
                     else Thread.delay (float_of_int delay_ms /. 1000.));
                 loop ()
               end
             in
             loop ())
           ()));
  Printf.printf
    "kv-server listening on 127.0.0.1:%d (%d workers, net=%s, %s%s)\n%!"
    (Nr_kvstore.Server.port server)
    workers
    (match net with
    | Nr_kvstore.Server.Pool -> "pool"
    | Nr_kvstore.Server.Evloop -> "evloop")
    serving.descr
    (match endpoints with
    | Some (ep :: _) -> Printf.sprintf ", follower of %s:%d" ep.Repl.host ep.Repl.port
    | _ -> "");
  let dump_repl_stats ppf =
    match session with
    | Some s ->
        Format.fprintf ppf
          "repl: polls %d, errors %d, consecutive failures %d, total \
           failures %d, offset %d@."
          (Repl.polls s) (Repl.errors s)
          (Repl.consecutive_failures s)
          (Repl.total_failures s) (Repl.offset s)
    | None -> ()
  in
  (* dump latency histograms + slowlog (+ shard counters + repl stats) on
     SIGINT; flush the AOF so a clean stop loses nothing even under
     fsync=never *)
  (try
     Sys.set_signal Sys.sigint
       (Sys.Signal_handle
          (fun _ ->
            serving.on_close ();
            Format.eprintf "@.# kv-server observability@.%a@."
              Nr_kvstore.Kv_obs.pp obs;
            serving.dump_stats Format.err_formatter;
            dump_repl_stats Format.err_formatter;
            exit 0))
   with Invalid_argument _ -> ());
  Nr_kvstore.Server.serve server;
  serving.on_close ()

let () =
  let port =
    Arg.(value & opt int 6380 & info [ "port"; "p" ] ~doc:"TCP port (0 = any).")
  in
  let workers =
    Arg.(value & opt int 4 & info [ "workers"; "w" ] ~doc:"Worker threads.")
  in
  let net =
    Arg.(
      value & opt string "pool"
      & info [ "net" ] ~docv:"MODE"
          ~doc:
            "Serving mode: $(b,pool) (blocking sockets, one worker-pool job \
             per connection — concurrency capped at --workers) or \
             $(b,evloop) (epoll event loop + fibers, request batches \
             executed on per-node work-stealing run queues — thousands of \
             concurrent connections).")
  in
  let nodes =
    Arg.(
      value & opt int 1
      & info [ "net-nodes" ] ~docv:"N"
          ~doc:
            "Evloop only: number of per-node run queues; connections are \
             pinned round-robin so their batches execute on a home node.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards"; "s" ] ~docv:"S"
          ~doc:
            "Hash-partition the key space across $(docv) independent NR \
             instances (1 = plain NR).  Multi-key commands (MGET/MSET/\
             DBSIZE/FLUSHALL) go through the cross-shard coordinator.")
  in
  let slowlog_capacity =
    Arg.(
      value & opt int 32
      & info [ "slowlog-capacity" ] ~docv:"N"
          ~doc:"Slowest-N commands retained (SLOWLOG GET).")
  in
  let slowlog_threshold_us =
    Arg.(
      value & opt int 0
      & info [ "slowlog-threshold-us" ] ~docv:"US"
          ~doc:"Only commands at least this slow enter the slowlog.")
  in
  let aof_dir =
    Arg.(
      value & opt (some string) None
      & info [ "aof" ] ~docv:"DIR"
          ~doc:
            "Persist to an append-only file under $(docv) (created if \
             missing) and recover from it on start.  Requires --shards 1.  \
             Composes with --follower-of: a chained follower keeps its own \
             AOF at the leader's coordinates and serves SYNC/PSYNC to its \
             own followers.")
  in
  let fsync =
    Arg.(
      value & opt string "every-n:32"
      & info [ "fsync" ] ~docv:"POLICY"
          ~doc:
            "AOF group-fsync policy: $(b,always), $(b,every-n:N), \
             $(b,every-ms:MS) or $(b,never).")
  in
  let snapshot_every =
    Arg.(
      value & opt (some int) None
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:
            "Snapshot the store and compact the AOF every $(docv) logged \
             operations, in a background thread (default: never).")
  in
  let follower_of =
    Arg.(
      value & opt (some string) None
      & info [ "follower-of" ] ~docv:"HOST:PORT[,HOST:PORT...]"
          ~doc:
            "Run as a read-only replica, catching up via PSYNC log \
             shipping.  Extra comma-separated endpoints are failover \
             candidates: on repeated errors the session rotates to the \
             next one with jittered exponential backoff, so a promoted \
             leader is found without restart.")
  in
  let failover_after =
    Arg.(
      value & opt int 0
      & info [ "failover-after" ] ~docv:"K"
          ~doc:
            "Promote a follower to writable after $(docv) consecutive \
             failed polls of the leader (0 = never promote).")
  in
  let poll_ms =
    Arg.(
      value & opt int 50
      & info [ "poll-interval-ms" ] ~docv:"MS"
          ~doc:"Follower replication poll interval (healthy-path pacing).")
  in
  let connect_timeout_ms =
    Arg.(
      value & opt int 1000
      & info [ "connect-timeout-ms" ] ~docv:"MS"
          ~doc:"Replication connect timeout.")
  in
  let read_timeout_ms =
    Arg.(
      value & opt int 5000
      & info [ "read-timeout-ms" ] ~docv:"MS"
          ~doc:"Replication read timeout (SO_RCVTIMEO on the leader link).")
  in
  let cmd =
    Cmd.v
      (Cmd.info "kv-server" ~doc:"NR-backed RESP key-value server")
      Term.(
        const serve $ port $ workers $ net $ nodes $ shards $ slowlog_capacity
        $ slowlog_threshold_us $ aof_dir $ fsync $ snapshot_every $ follower_of
        $ failover_after $ poll_ms $ connect_timeout_ms $ read_timeout_ms)
  in
  exit (Cmd.eval cmd)

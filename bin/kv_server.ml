(* kv-server: a RESP-speaking in-memory store whose data structures are made
   concurrent by Node Replication — the paper's Redis experiment as a
   runnable server (sections 7-8.3) — with an optional durability layer:
   the NR shared log doubles as a persistence and replication log.

     dune exec bin/kv_server.exe -- --port 6380 --workers 4
     dune exec bin/kv_server.exe -- --aof /var/tmp/kv --fsync every-n:32
     dune exec bin/kv_server.exe -- --port 6381 --follower-of 127.0.0.1:6380

   Then, from any Redis client:
     redis-cli -p 6380 ZADD board 10 1
     redis-cli -p 6380 ZRANK board 1
     redis-cli -p 6380 SLOWLOG GET      # slowest commands, Redis-style *)

open Cmdliner

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

let serve port workers shards slowlog_capacity slowlog_threshold_us aof_dir
    fsync snapshot_every follower_of failover_after poll_ms =
  let policy =
    match Nr_persist.Aof.policy_of_string fsync with
    | Ok p -> p
    | Error e -> fail "%s" e
  in
  let follower =
    match follower_of with
    | None -> None
    | Some hp -> (
        match String.rindex_opt hp ':' with
        | Some i -> (
            let host = String.sub hp 0 i in
            match int_of_string_opt (String.sub hp (i + 1) (String.length hp - i - 1)) with
            | Some p -> Some (host, p)
            | None -> fail "--follower-of: bad port in %S" hp)
        | None -> fail "--follower-of expects HOST:PORT, got %S" hp)
  in
  if aof_dir <> None && shards > 1 then
    fail "--aof requires --shards 1: the durability log tails a single NR log";
  if aof_dir <> None && follower <> None then
    fail "--aof and --follower-of are mutually exclusive";
  let topo = Nr_sim.Topology.tiny in
  let module R = (val Nr_runtime.Runtime_domains.make topo) in
  (* worker threads carry runtime identities round-robin over the topology;
     register lazily: pool workers are domains created by the server *)
  let next_tid = Atomic.make 0 in
  let register () =
    try ignore (R.tid ())
    with Invalid_argument _ ->
      Nr_runtime.Runtime_domains.register
        ~tid:(Atomic.fetch_and_add next_tid 1 mod R.max_threads ())
  in
  let execute, special, on_close, descr, dump_shards =
    if shards <= 1 then begin
      let module Db = Nr_core.Node_replication.Make (R) (Nr_kvstore.Store) in
      match aof_dir with
      | None ->
          let db = Db.create (fun () -> Nr_kvstore.Store.create ()) in
          ( Db.execute db,
            None,
            (fun () -> ()),
            Printf.sprintf "NR over %d replicas" (Db.num_replicas db),
            fun _ -> () )
      | Some dir ->
          (* leader with durability: recover, seed every replica with the
             recovered image, then tail the log into the persister *)
          let fs = Nr_persist.Vfs.real ~root:dir in
          let now_ms () = int_of_float (Unix.gettimeofday () *. 1000.) in
          let p, recovery =
            match
              Nr_persist.Persister.create fs ~policy ~now_ms ?snapshot_every ()
            with
            | Ok pr -> pr
            | Error e -> fail "recovery failed: %s" e
          in
          let seed = Nr_persist.Persister.dump p in
          let db =
            Db.create (fun () ->
                let s = Nr_kvstore.Store.create () in
                (match Nr_kvstore.Store.load s seed with
                | Ok () -> ()
                | Error e -> fail "recovery failed: %s" e);
                s)
          in
          Printf.printf
            "recovered to position %d (snapshot %s, %d ops replayed%s)\n%!"
            (Nr_persist.Persister.cursor p)
            (match recovery.Nr_persist.Persister.snapshot_upto with
            | Some u -> Printf.sprintf "up to %d" u
            | None -> "none")
            recovery.Nr_persist.Persister.replayed
            (if recovery.Nr_persist.Persister.torn then ", torn tail discarded"
             else "");
          (* serialize log tapping + persister access; the tap runs after
             the update executed (completed covers it) and before the reply
             is sent, so an [always] policy means every ack is durable *)
          let m = Mutex.create () in
          let tap_from = ref 0 in
          let drain_log db =
            match Db.Unsafe.log_tap db ~from:!tap_from with
            | Ok ops ->
                tap_from := !tap_from + List.length ops;
                Nr_persist.Persister.observe p ops
            | Error oldest ->
                (* a tap runs after every update, so lagging a full lap is
                   a bug, not an operational state *)
                failwith
                  (Printf.sprintf
                     "persistence overrun: cursor %d, log recycled below %d"
                     !tap_from oldest)
          in
          let exec cmd =
            let reply = Db.execute db cmd in
            if not (Nr_kvstore.Command.is_read_only cmd) then begin
              Mutex.lock m;
              Fun.protect
                ~finally:(fun () -> Mutex.unlock m)
                (fun () -> drain_log db)
            end;
            reply
          in
          let special cmd =
            match cmd with
            | Nr_kvstore.Command.Sync | Nr_kvstore.Command.Psync _ ->
                Mutex.lock m;
                Fun.protect
                  ~finally:(fun () -> Mutex.unlock m)
                  (fun () -> Nr_persist.Persister.handle_sync p cmd)
            | _ -> None
          in
          let on_close () =
            Mutex.lock m;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock m)
              (fun () -> Nr_persist.Persister.close p)
          in
          ( exec,
            Some special,
            on_close,
            Printf.sprintf "NR over %d replicas, aof=%s fsync=%s"
              (Db.num_replicas db) dir fsync,
            fun _ -> () )
    end
    else begin
      let module Sh = Nr_shard.Sharded.Make (R) (Nr_shard.Kv_shard) in
      let db =
        Sh.create
          ~cfg:{ Nr_core.Config.default with shards }
          ~factory:(fun ~shard:_ ~shard_of:_ () -> Nr_kvstore.Store.create ())
          ()
      in
      ( Sh.execute db,
        None,
        (fun () -> ()),
        Printf.sprintf "%d NR shards x %d replicas" shards (R.num_nodes ()),
        fun ppf ->
          Format.fprintf ppf "shard ops: %a@." Nr_shard.Shard_stats.pp
            (Sh.stats db) )
    end
  in
  let exec_registered cmd =
    register ();
    execute cmd
  in
  (* follower mode: replicate from the leader, refuse client writes until
     promoted (leader unreachable for --failover-after consecutive polls) *)
  let writable = Atomic.make (follower = None) in
  let exec cmd =
    if
      (not (Atomic.get writable))
      && not (Nr_kvstore.Command.is_read_only cmd)
    then Nr_kvstore.Command.Err "READONLY replica; writes go to the leader"
    else exec_registered cmd
  in
  (match follower with
  | None -> ()
  | Some (host, leader_port) ->
      ignore
        (Thread.create
           (fun () ->
             let offset = ref 0 in
             let fails = ref 0 in
             let conn = ref None in
             let rec loop () =
               if Atomic.get writable then ()
               else begin
                 (match !conn with
                 | None -> (
                     match Nr_persist.Replication.connect ~host ~port:leader_port with
                     | Ok c ->
                         conn := Some c;
                         fails := 0
                     | Error _ -> incr fails)
                 | Some c -> (
                     match
                       Nr_persist.Replication.poll c ~exec:exec_registered
                         ~offset:!offset
                     with
                     | Ok off ->
                         offset := off;
                         fails := 0
                     | Error _ ->
                         Nr_persist.Replication.close c;
                         conn := None;
                         incr fails));
                 if failover_after > 0 && !fails >= failover_after then begin
                   Printf.eprintf
                     "leader unreachable (%d consecutive failures): promoting \
                      to writable at offset %d\n\
                      %!"
                     !fails !offset;
                   Atomic.set writable true
                 end
                 else begin
                   Thread.delay (float_of_int poll_ms /. 1000.);
                   loop ()
                 end
               end
             in
             loop ())
           ()))
  |> ignore;
  let obs =
    Nr_kvstore.Kv_obs.create ~slowlog_capacity
      ~slowlog_threshold:(slowlog_threshold_us * 1000) ()
  in
  let server = Nr_kvstore.Server.create ~obs ?special ~port ~workers exec in
  Printf.printf "kv-server listening on 127.0.0.1:%d (%d workers, %s%s)\n%!"
    (Nr_kvstore.Server.port server)
    workers descr
    (match follower with
    | Some (h, p) -> Printf.sprintf ", follower of %s:%d" h p
    | None -> "");
  (* dump latency histograms + slowlog (+ shard counters) on SIGINT; flush
     the AOF so a clean stop loses nothing even under fsync=never *)
  (try
     Sys.set_signal Sys.sigint
       (Sys.Signal_handle
          (fun _ ->
            on_close ();
            Format.eprintf "@.# kv-server observability@.%a@."
              Nr_kvstore.Kv_obs.pp obs;
            dump_shards Format.err_formatter;
            exit 0))
   with Invalid_argument _ -> ());
  Nr_kvstore.Server.serve server;
  on_close ()

let () =
  let port =
    Arg.(value & opt int 6380 & info [ "port"; "p" ] ~doc:"TCP port (0 = any).")
  in
  let workers =
    Arg.(value & opt int 4 & info [ "workers"; "w" ] ~doc:"Worker threads.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards"; "s" ] ~docv:"S"
          ~doc:
            "Hash-partition the key space across $(docv) independent NR \
             instances (1 = plain NR).  Multi-key commands (MGET/MSET/\
             DBSIZE/FLUSHALL) go through the cross-shard coordinator.")
  in
  let slowlog_capacity =
    Arg.(
      value & opt int 32
      & info [ "slowlog-capacity" ] ~docv:"N"
          ~doc:"Slowest-N commands retained (SLOWLOG GET).")
  in
  let slowlog_threshold_us =
    Arg.(
      value & opt int 0
      & info [ "slowlog-threshold-us" ] ~docv:"US"
          ~doc:"Only commands at least this slow enter the slowlog.")
  in
  let aof_dir =
    Arg.(
      value & opt (some string) None
      & info [ "aof" ] ~docv:"DIR"
          ~doc:
            "Persist to an append-only file under $(docv) (created if \
             missing) and recover from it on start.  Requires --shards 1.")
  in
  let fsync =
    Arg.(
      value & opt string "every-n:32"
      & info [ "fsync" ] ~docv:"POLICY"
          ~doc:
            "AOF group-fsync policy: $(b,always), $(b,every-n:N), \
             $(b,every-ms:MS) or $(b,never).")
  in
  let snapshot_every =
    Arg.(
      value & opt (some int) None
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:
            "Snapshot the store and compact the AOF every $(docv) logged \
             operations (default: never).")
  in
  let follower_of =
    Arg.(
      value & opt (some string) None
      & info [ "follower-of" ] ~docv:"HOST:PORT"
          ~doc:
            "Run as a read-only replica of the given leader, catching up \
             via PSYNC log shipping.")
  in
  let failover_after =
    Arg.(
      value & opt int 0
      & info [ "failover-after" ] ~docv:"K"
          ~doc:
            "Promote a follower to writable after $(docv) consecutive \
             failed polls of the leader (0 = never promote).")
  in
  let poll_ms =
    Arg.(
      value & opt int 50
      & info [ "poll-interval-ms" ] ~docv:"MS"
          ~doc:"Follower replication poll interval.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "kv-server" ~doc:"NR-backed RESP key-value server")
      Term.(
        const serve $ port $ workers $ shards $ slowlog_capacity
        $ slowlog_threshold_us $ aof_dir $ fsync $ snapshot_every $ follower_of
        $ failover_after $ poll_ms)
  in
  exit (Cmd.eval cmd)

(* kv-server: a RESP-speaking in-memory store whose data structures are made
   concurrent by Node Replication — the paper's Redis experiment as a
   runnable server (sections 7-8.3).

     dune exec bin/kv_server.exe -- --port 6380 --workers 4

   Then, from any Redis client:
     redis-cli -p 6380 ZADD board 10 1
     redis-cli -p 6380 ZRANK board 1
     redis-cli -p 6380 SLOWLOG GET      # slowest commands, Redis-style *)

open Cmdliner

let serve port workers shards slowlog_capacity slowlog_threshold_us =
  let topo = Nr_sim.Topology.tiny in
  let module R = (val Nr_runtime.Runtime_domains.make topo) in
  (* worker threads carry runtime identities round-robin over the topology;
     register lazily: pool workers are domains created by the server *)
  let next_tid = Atomic.make 0 in
  let register () =
    try ignore (R.tid ())
    with Invalid_argument _ ->
      Nr_runtime.Runtime_domains.register
        ~tid:(Atomic.fetch_and_add next_tid 1 mod R.max_threads ())
  in
  let execute, descr, dump_shards =
    if shards <= 1 then begin
      let module Db = Nr_core.Node_replication.Make (R) (Nr_kvstore.Store) in
      let db = Db.create (fun () -> Nr_kvstore.Store.create ()) in
      ( Db.execute db,
        Printf.sprintf "NR over %d replicas" (Db.num_replicas db),
        fun _ -> () )
    end
    else begin
      let module Sh = Nr_shard.Sharded.Make (R) (Nr_shard.Kv_shard) in
      let db =
        Sh.create
          ~cfg:{ Nr_core.Config.default with shards }
          ~factory:(fun ~shard:_ ~shard_of:_ () -> Nr_kvstore.Store.create ())
          ()
      in
      ( Sh.execute db,
        Printf.sprintf "%d NR shards x %d replicas" shards (R.num_nodes ()),
        fun ppf ->
          Format.fprintf ppf "shard ops: %a@." Nr_shard.Shard_stats.pp
            (Sh.stats db) )
    end
  in
  let exec cmd =
    register ();
    execute cmd
  in
  let obs =
    Nr_kvstore.Kv_obs.create ~slowlog_capacity
      ~slowlog_threshold:(slowlog_threshold_us * 1000) ()
  in
  let server = Nr_kvstore.Server.create ~obs ~port ~workers exec in
  Printf.printf "kv-server listening on 127.0.0.1:%d (%d workers, %s)\n%!"
    (Nr_kvstore.Server.port server)
    workers descr;
  (* dump latency histograms + slowlog (+ shard counters) on SIGINT *)
  (try
     Sys.set_signal Sys.sigint
       (Sys.Signal_handle
          (fun _ ->
            Format.eprintf "@.# kv-server observability@.%a@."
              Nr_kvstore.Kv_obs.pp obs;
            dump_shards Format.err_formatter;
            exit 0))
   with Invalid_argument _ -> ());
  Nr_kvstore.Server.serve server

let () =
  let port =
    Arg.(value & opt int 6380 & info [ "port"; "p" ] ~doc:"TCP port (0 = any).")
  in
  let workers =
    Arg.(value & opt int 4 & info [ "workers"; "w" ] ~doc:"Worker threads.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards"; "s" ] ~docv:"S"
          ~doc:
            "Hash-partition the key space across $(docv) independent NR \
             instances (1 = plain NR).  Multi-key commands (MGET/MSET/\
             DBSIZE/FLUSHALL) go through the cross-shard coordinator.")
  in
  let slowlog_capacity =
    Arg.(
      value & opt int 32
      & info [ "slowlog-capacity" ] ~docv:"N"
          ~doc:"Slowest-N commands retained (SLOWLOG GET).")
  in
  let slowlog_threshold_us =
    Arg.(
      value & opt int 0
      & info [ "slowlog-threshold-us" ] ~docv:"US"
          ~doc:"Only commands at least this slow enter the slowlog.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "kv-server" ~doc:"NR-backed RESP key-value server")
      Term.(
        const serve $ port $ workers $ shards $ slowlog_capacity
        $ slowlog_threshold_us)
  in
  exit (Cmd.eval cmd)

(** Figure data and paper-style table rendering: one column per method, one
    row per x value (thread count, external-work amount, cache lines per
    operation...).

    A point optionally carries a latency summary (p50, p99 in µs); when any
    point of a figure has one, every series gains p50/p99 columns next to
    its throughput — a dimension the paper's figures omit. *)

type point = { x : int; y : float; lat : (float * float) option }

let pt x y = { x; y; lat = None }

type series = { label : string; points : point list }

type figure = {
  id : string;  (** e.g. "fig5b" *)
  title : string;
  x_label : string;  (** e.g. "threads" *)
  y_label : string;  (** e.g. "ops/us" *)
  series : series list;
  notes : string list;
}

let xs fig =
  List.sort_uniq compare
    (List.concat_map (fun s -> List.map (fun p -> p.x) s.points) fig.series)

let value_at s x =
  List.find_map (fun p -> if p.x = x then Some p.y else None) s.points

let point_at s x = List.find_opt (fun p -> p.x = x) s.points

let has_latency fig =
  List.exists
    (fun s -> List.exists (fun p -> p.lat <> None) s.points)
    fig.series

let render ppf fig =
  Format.fprintf ppf "## %s: %s@." fig.id fig.title;
  List.iter (fun n -> Format.fprintf ppf "#  %s@." n) fig.notes;
  let lat = has_latency fig in
  if lat then
    Format.fprintf ppf "#  p50/p99: per-operation latency in us@.";
  let xs = xs fig in
  Format.fprintf ppf "%-10s" fig.x_label;
  List.iter
    (fun s ->
      Format.fprintf ppf " %10s" s.label;
      if lat then Format.fprintf ppf " %9s %9s" "p50" "p99")
    fig.series;
  Format.fprintf ppf "    (%s)@." fig.y_label;
  List.iter
    (fun x ->
      Format.fprintf ppf "%-10d" x;
      List.iter
        (fun s ->
          (match value_at s x with
          | Some y -> Format.fprintf ppf " %10.3f" y
          | None -> Format.fprintf ppf " %10s" "-");
          if lat then
            match point_at s x with
            | Some { lat = Some (p50, p99); _ } ->
                Format.fprintf ppf " %9.3f %9.3f" p50 p99
            | _ -> Format.fprintf ppf " %9s %9s" "-" "-")
        fig.series;
      Format.fprintf ppf "@.")
    xs;
  Format.fprintf ppf "@."

let print fig = render Format.std_formatter fig

(** Best method at the largest x, for summaries. *)
let winner_at_max fig =
  match List.rev (xs fig) with
  | [] -> None
  | x :: _ ->
      List.fold_left
        (fun best s ->
          match (value_at s x, best) with
          | Some y, Some (_, by) when y > by -> Some (s.label, y)
          | Some y, None -> Some (s.label, y)
          | _ -> best)
        None fig.series

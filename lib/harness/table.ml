(** Figure data and paper-style table rendering: one column per method, one
    row per x value (thread count, external-work amount, cache lines per
    operation...). *)

type point = { x : int; y : float }
type series = { label : string; points : point list }

type figure = {
  id : string;  (** e.g. "fig5b" *)
  title : string;
  x_label : string;  (** e.g. "threads" *)
  y_label : string;  (** e.g. "ops/us" *)
  series : series list;
  notes : string list;
}

let xs fig =
  List.sort_uniq compare
    (List.concat_map (fun s -> List.map (fun p -> p.x) s.points) fig.series)

let value_at s x =
  List.find_map (fun p -> if p.x = x then Some p.y else None) s.points

let render ppf fig =
  Format.fprintf ppf "## %s: %s@." fig.id fig.title;
  List.iter (fun n -> Format.fprintf ppf "#  %s@." n) fig.notes;
  let xs = xs fig in
  Format.fprintf ppf "%-10s" fig.x_label;
  List.iter (fun s -> Format.fprintf ppf " %10s" s.label) fig.series;
  Format.fprintf ppf "    (%s)@." fig.y_label;
  List.iter
    (fun x ->
      Format.fprintf ppf "%-10d" x;
      List.iter
        (fun s ->
          match value_at s x with
          | Some y -> Format.fprintf ppf " %10.3f" y
          | None -> Format.fprintf ppf " %10s" "-")
        fig.series;
      Format.fprintf ppf "@.")
    xs;
  Format.fprintf ppf "@."

let print fig = render Format.std_formatter fig

(** Best method at the largest x, for summaries. *)
let winner_at_max fig =
  match List.rev (xs fig) with
  | [] -> None
  | x :: _ ->
      List.fold_left
        (fun best s ->
          match (value_at s x, best) with
          | Some y, Some (_, by) when y > by -> Some (s.label, y)
          | Some y, None -> Some (s.label, y)
          | _ -> best)
        None fig.series

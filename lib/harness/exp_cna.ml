(** CNA lock + optimistic-read experiments (no paper counterpart —
    NUMA-aware locking PR).

    Panel (a) prices the seqlock read path where it should pay: a pure
    read workload, where optimistic readers skip the rwlock slot
    acquire/release entirely and the curve should sit strictly above
    stock NR.  Panel (b) stresses writer serialization at 100% updates
    with flat combining disabled — every thread queues on the combiner
    lock per operation, so the CNA lock's intra-node handoff preference
    is the difference between bouncing the lock word across sockets and
    draining a node's waiters back-to-back.  Panel (c) sweeps the CNA
    fairness threshold on that same workload: 1 degenerates to strict
    FIFO (pure MCS behaviour), large values maximize locality at the
    price of remote-waiter latency. *)

let e = 0

let cfg_opt =
  {
    Nr_core.Config.default with
    optimistic_reads = true;
    read_patience = Some 4;
  }

let cfg_cna_opt = { cfg_opt with Nr_core.Config.cna_lock = true }
let cfg_nofc = { Nr_core.Config.default with flat_combining = false }
let cfg_cna_nofc = { cfg_nofc with Nr_core.Config.cna_lock = true }

let setup_upd params m cfg ~update_pct ~threads rt =
  let exec =
    Exp_pq.Sl_exp.W.build rt m ~cfg ~threads
      ~factory:(Exp_pq.Sl_exp.factory params) ()
  in
  Exp_pq.Sl_exp.body params ~update_pct ~e ~exec rt

let read_ceiling_figure (params : Params.t) =
  let series =
    List.map
      (fun (label, cfg) ->
        Sweep.threads_series params ~label ~setup:(fun ~threads rt ->
            setup_upd params Method.NR cfg ~update_pct:0 ~threads rt))
      [
        ("NR", Nr_core.Config.default);
        ("NR-opt", cfg_opt);
        ("NR-cna-opt", cfg_cna_opt);
      ]
  in
  {
    Table.id = "cna-a";
    title = "pure-read ceiling: optimistic seqlock reads vs slot path";
    x_label = "threads";
    y_label = "ops/us";
    series;
    notes =
      [
        Printf.sprintf "0%% updates, e=%d, %d initial items" e
          params.Params.population;
        "NR-opt = optimistic_reads + read_patience=4; NR-cna-opt adds \
         cna_lock";
      ];
  }

let contended_update_figure (params : Params.t) =
  let series =
    List.map
      (fun (label, cfg) ->
        Sweep.threads_series params ~label ~setup:(fun ~threads rt ->
            setup_upd params Method.NR cfg ~update_pct:100 ~threads rt))
      [
        ("NR", Nr_core.Config.default);
        ("NR-cna", { Nr_core.Config.default with cna_lock = true });
        ("NR-nofc", cfg_nofc);
        ("NR-cna-nofc", cfg_cna_nofc);
      ]
  in
  {
    Table.id = "cna-b";
    title = "contended updates: CNA combiner-lock handoff locality";
    x_label = "threads";
    y_label = "ops/us";
    series;
    notes =
      [
        Printf.sprintf "100%% updates, e=%d, %d initial items" e
          params.Params.population;
        "nofc variants disable flat combining so every thread queues on \
         the combiner lock — the regime where handoff locality matters";
      ];
  }

let threshold_axis = [ 1; 2; 4; 8; 16; 32 ]

let threshold_figure (params : Params.t) =
  let threads = Params.max_threads params in
  let series =
    [
      Sweep.axis_series params ~label:"NR-cna-nofc" ~axis:threshold_axis
        ~threads ~setup:(fun ~x rt ->
          setup_upd params Method.NR
            { cfg_cna_nofc with Nr_core.Config.cna_threshold = x }
            ~update_pct:100 ~threads rt);
    ]
  in
  {
    Table.id = "cna-c";
    title = "CNA fairness threshold: local handoffs before secondary splice";
    x_label = "cna_threshold";
    y_label = "ops/us";
    series;
    notes =
      [
        Printf.sprintf "100%% updates, e=%d, %d threads, flat combining off"
          e threads;
        "threshold 1 ~ strict FIFO (MCS); larger = more intra-node \
         handoffs per splice";
      ];
  }

let figures params =
  [
    read_ceiling_figure params;
    contended_update_figure params;
    threshold_figure params;
  ]

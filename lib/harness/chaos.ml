(** Chaos harness: run a structure under a seeded fault schedule and check
    it against the sequential oracle.

    One chaos run spawns [threads] simulated threads, each executing a
    fixed count of seeded operations through a concurrent wrapper of the
    structure, while {!Nr_sim.Fault_plan} injects stalls, preemptions and
    thread deaths.  Afterwards the harness checks, from outside the
    simulation:

    - {b oracle}: every replica must equal the sequential replay of its
      own log prefix [0, local_tail) — state machine replication held
      even while combiners were stalled, dispossessed or killed
      mid-batch (laggards are synced to the completed prefix first;
      under deaths a replica can legitimately sit ahead of [completed],
      hence per-replica prefixes rather than one global one);
    - {b completion}: with a death-free plan every submitted operation
      must have completed and the log must hold exactly the update
      entries the threads produced (no loss, no duplication — the
      linearizability-level accounting the qcheck suite leans on);
    - {b determinism}: the whole outcome is a pure function of
      (topology, seed, plan), so a fixed-seed run can be compared
      byte-for-byte across processes and commits.

    The harness is NR-specific on purpose: it reads the log through
    {!Nr_core.Node_replication.Make.Unsafe} and asserts on hardened-mode
    counters.  Baselines run under the same fault plans in the experiment
    sweeps instead, where only throughput is compared. *)

module type DS = sig
  include Nr_core.Ds_intf.S

  val dump : t -> string
  (** Canonical serialization of the abstract state: two instances are
      equal iff their dumps are equal. *)
end

type outcome = {
  ops_done : int;  (** operations completed by surviving threads *)
  ops_submitted : int;  (** [threads * ops_per_thread] *)
  log_entries : int;  (** completed log entries (updates that landed) *)
  poisoned : int;  (** log holes poisoned past dead writers *)
  steals : int;
  recovered : int;
  reposts : int;
  fault_stats : Nr_sim.Fault_plan.stats option;
  state : string;  (** canonical dump of the oracle-replayed state *)
}

(* Everything a fixed-seed regression wants to pin, in one line. *)
let fingerprint o =
  Printf.sprintf "ops=%d/%d entries=%d poisoned=%d steals=%d recovered=%d reposts=%d state=%s"
    o.ops_done o.ops_submitted o.log_entries o.poisoned o.steals o.recovered
    o.reposts
    (string_of_int (Hashtbl.hash o.state))

module Make (Seq : DS) = struct
  (* [run] executes one chaos scenario and performs the oracle check
     inline, failing loudly: a divergence is a protocol bug, never a
     tolerable outcome.  [gen_op] draws each thread's next operation from
     its private seeded stream. *)
  let run ?(cfg = Nr_core.Config.robust) ~topo ~plan ~threads ~ops_per_thread
      ~(gen_op : Nr_workload.Prng.t -> Seq.op) ~(factory : unit -> Seq.t) () =
    if threads > Nr_sim.Topology.max_threads topo then
      invalid_arg "Chaos.run: thread count out of range for topology";
    let sched = Nr_sim.Sched.create topo in
    Nr_sim.Sched.set_fault_plan sched (Some plan);
    let module R = (val Nr_runtime.Runtime_sim.make sched) in
    let module NR = Nr_core.Node_replication.Make (R) (Seq) in
    let nr = NR.create ~cfg factory in
    let done_ = Array.make threads 0 in
    for tid = 0 to threads - 1 do
      let rng = Nr_workload.Prng.create ~seed:(plan.Nr_sim.Fault_plan.seed + (tid * 7919) + 1) in
      Nr_sim.Sched.spawn sched ~tid (fun () ->
          for _ = 1 to ops_per_thread do
            ignore (NR.execute nr (gen_op rng));
            done_.(tid) <- done_.(tid) + 1
          done)
    done;
    Nr_sim.Sched.run sched;
    (* -- post-mortem, outside the simulation -- *)
    NR.Unsafe.sync nr;
    (* Each replica's state must equal the sequential replay of its OWN
       log prefix [0, local_tail node).  Under deaths the prefixes can
       legitimately differ — a combiner killed after applying its batch
       but before publishing [completed] leaves its replica ahead — so
       the oracle is advanced incrementally through the nodes in
       local-tail order rather than compared against one global prefix. *)
    let tails =
      List.init (NR.num_replicas nr) (fun node ->
          (node, NR.local_tail nr node))
    in
    let max_tail =
      List.fold_left (fun acc (_, lt) -> max acc lt) (NR.completed nr) tails
    in
    let entries, wrapped = NR.Unsafe.log_entries ~upto:max_tail nr in
    if wrapped > 0 then
      failwith
        "Chaos.run: log wrapped during a chaos run; raise cfg.log_size so \
         the oracle sees the whole history";
    let entries = Array.of_list entries in
    let fresh = factory () in
    let live = ref 0 in
    let pos = ref 0 in
    let advance upto =
      while !pos < upto do
        (match entries.(!pos) with
        | Some op ->
            incr live;
            ignore (Seq.execute fresh op)
        | None -> ());
        incr pos
      done
    in
    List.iter
      (fun (node, lt) ->
        advance lt;
        let expected = Seq.dump fresh in
        let got = Seq.dump (NR.Unsafe.replica nr node) in
        if got <> expected then
          failwith
            (Printf.sprintf
               "Chaos.run: replica %d diverged from the sequential oracle \
                (seed %d, prefix %d)\noracle: %s\nreplica: %s"
               node plan.Nr_sim.Fault_plan.seed lt expected got))
      (List.sort (fun (_, a) (_, b) -> compare a b) tails);
    advance (Array.length entries);
    let expected = Seq.dump fresh in
    let st = NR.stats nr in
    {
      ops_done = Array.fold_left ( + ) 0 done_;
      ops_submitted = threads * ops_per_thread;
      log_entries = !live;
      poisoned = st.Nr_core.Stats.poisoned;
      steals = st.Nr_core.Stats.combiner_steals;
      recovered = st.Nr_core.Stats.batches_recovered;
      reposts = st.Nr_core.Stats.reposts;
      fault_stats = Nr_sim.Sched.fault_stats sched;
      state = expected;
    }

  (* Death-free accounting: every submitted op completed, and the log
     holds exactly the updates the op streams produced.  Replays each
     thread's op stream (same seed, same draw order) to count updates —
     kills would invalidate this, so the caller must pass a deathless
     plan. *)
  let check_complete ~plan ~threads ~ops_per_thread
      ~(gen_op : Nr_workload.Prng.t -> Seq.op) (o : outcome) =
    if o.ops_done <> o.ops_submitted then
      failwith
        (Printf.sprintf
           "Chaos.check_complete: %d of %d ops completed under a death-free \
            plan" o.ops_done o.ops_submitted);
    let updates = ref 0 in
    for tid = 0 to threads - 1 do
      let rng = Nr_workload.Prng.create ~seed:(plan.Nr_sim.Fault_plan.seed + (tid * 7919) + 1) in
      for _ = 1 to ops_per_thread do
        if not (Seq.is_read_only (gen_op rng)) then incr updates
      done
    done;
    (* a poisoned entry's op is reposted and lands again, so every update
       appears exactly once among the live entries regardless of faults *)
    if o.log_entries <> !updates then
      failwith
        (Printf.sprintf
           "Chaos.check_complete: log holds %d live updates (+%d poisoned \
            holes) but threads submitted %d" o.log_entries o.poisoned
           !updates)
end

(* {2 Stock instances} *)

module Dict_chaos = Make (struct
  include Nr_seqds.Skiplist_dict

  let dump t =
    String.concat ";"
      (List.map (fun (k, v) -> Printf.sprintf "%d:%d" k v) (to_list t))
end)

module Pq_chaos = Make (struct
  include Nr_seqds.Pairing_pq

  (* drain a structural copy: heap shapes may differ across replicas, the
     multiset of keys may not *)
  let dump t =
    let c = copy t in
    let b = Buffer.create 256 in
    let rec drain () =
      match execute c Nr_seqds.Pq_ops.Delete_min with
      | Nr_seqds.Pq_ops.Removed (Some (k, v)) ->
          Buffer.add_string b (Printf.sprintf "%d:%d;" k v);
          drain ()
      | _ -> ()
    in
    drain ();
    Buffer.contents b
end)

module Queue_chaos = Make (struct
  include Nr_seqds.Queue_ds

  let dump t =
    String.concat ";"
      (List.map string_of_int (Nr_seqds.Seq_queue.to_list t))
end)

(* Seeded op generators matching the benchmark workloads. *)

let dict_op key_space rng : Nr_seqds.Dict_ops.op =
  let k = Nr_workload.Prng.below rng key_space in
  match Nr_workload.Prng.below rng 3 with
  | 0 -> Nr_seqds.Dict_ops.Insert (k, k)
  | 1 -> Nr_seqds.Dict_ops.Remove k
  | _ -> Nr_seqds.Dict_ops.Lookup k

let queue_op key_space rng : Nr_seqds.Queue_ops.op =
  match Nr_workload.Prng.below rng 3 with
  | 0 -> Nr_seqds.Queue_ops.Enqueue (Nr_workload.Prng.below rng key_space)
  | 1 -> Nr_seqds.Queue_ops.Dequeue
  | _ -> Nr_seqds.Queue_ops.Front

let pq_op key_space rng : Nr_seqds.Pq_ops.op =
  match Nr_workload.Prng.below rng 3 with
  | 0 -> Nr_seqds.Pq_ops.Insert (Nr_workload.Prng.below rng key_space, 1)
  | 1 -> Nr_seqds.Pq_ops.Delete_min
  | _ -> Nr_seqds.Pq_ops.Find_min

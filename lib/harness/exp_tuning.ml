(** Ablation benches for this implementation's own design choices (beyond
    the paper's §8.5): shared-log capacity, MIN_BATCH, and the log replay
    prefetch window.  Each sweep runs the contended skip-list PQ at max
    threads and reports throughput per knob value. *)

open Nr_core

module Pq = Exp_pq.Sl_exp

let throughput params ~cfg ~update_pct =
  let threads = Params.max_threads params in
  (Driver.run_sim ~topo:params.Params.topo ~threads
     ~warmup_us:params.Params.warmup_us ~measure_us:params.Params.measure_us
     (fun rt ->
       let module W = Families.Wrap (Nr_seqds.Skiplist_pq) in
       let exec =
         W.build rt Method.NR ~cfg ~threads ~factory:(Pq.factory params) ()
       in
       Pq.body params ~update_pct ~e:0 ~exec rt))
    .Driver.ops_per_us

let knob_series params ~label ~values ~cfg_of =
  {
    Table.label;
    points =
      List.map
        (fun v ->
          { Table.x = v;
            y = throughput params ~cfg:(cfg_of v) ~update_pct:100;
            lat = None
          })
        values;
  }

let tuning params =
  [
    {
      Table.id = "tune-log";
      title = "NR throughput vs shared-log capacity";
      x_label = "log entries";
      y_label = "ops/us";
      series =
        [
          knob_series params ~label:"NR"
            ~values:[ 256; 1024; 4096; 65536 ]
            ~cfg_of:(fun v -> { Config.default with log_size = v });
        ];
      notes =
        [
          "skip list PQ, 100% updates, max threads; small logs stall on \
           recycling";
        ];
    };
    {
      Table.id = "tune-min-batch";
      title = "NR throughput vs MIN_BATCH";
      x_label = "min batch";
      y_label = "ops/us";
      series =
        [
          knob_series params ~label:"NR" ~values:[ 1; 2; 4; 8; 16 ]
            ~cfg_of:(fun v -> { Config.default with min_batch = v });
        ];
      notes = [ "waiting for bigger batches trades latency for amortization" ];
    };
    {
      Table.id = "tune-replay-window";
      title = "NR throughput vs log replay prefetch window";
      x_label = "window";
      y_label = "ops/us";
      series =
        [
          knob_series params ~label:"NR" ~values:[ 1; 2; 4; 8; 16 ]
            ~cfg_of:(fun v -> { Config.default with replay_window = v });
        ];
      notes =
        [
          "window 1 = dependent entry fetches; wider windows stream the log";
        ];
    };
  ]

(** Transactions experiment (no paper counterpart — the MULTI/EXEC PR):
    one compound [Txn] log entry versus the same body logged as N
    individual commands.

    The black-box trick makes transactions nearly free: a MULTI/EXEC
    block is one log entry, so it pays one combiner hand-off, one log
    append and one slot round trip no matter how many commands ride
    inside, where the naive encoding pays all three N times.  Both series
    execute the same N SETs per measured operation — the y-axis is
    directly comparable and the gap is pure per-entry overhead. *)

module W = Families.Wrap (Nr_kvstore.Store)

let factory (params : Params.t) () =
  let t = Nr_kvstore.Store.create () in
  for i = 0 to params.Params.population - 1 do
    ignore
      (Nr_kvstore.Store.execute t
         (Nr_kvstore.Command.Set (Nr_workload.String_keys.key i, "0")))
  done;
  t

(* one measured op = [batch] SET commands, uniform keys *)
let body (params : Params.t) ~pool ~batch ~compound ~exec rt ~tid =
  let module R = (val rt : Nr_runtime.Runtime_intf.S) in
  let n = Array.length pool in
  let rng =
    Nr_workload.Prng.create ~seed:(params.Params.seed + (tid * 7919) + 1)
  in
  let keys = Array.make batch "" in
  fun () ->
    R.work 40;
    for i = 0 to batch - 1 do
      keys.(i) <- pool.(Nr_workload.Prng.below rng n)
    done;
    if compound then
      ignore
        (exec
           (Nr_kvstore.Command.Txn
              ( [],
                Array.to_list
                  (Array.map (fun k -> Nr_kvstore.Command.Set (k, "1")) keys)
              )))
    else
      for i = 0 to batch - 1 do
        ignore (exec (Nr_kvstore.Command.Set (keys.(i), "1")))
      done

let setup (params : Params.t) ~batch ~compound ~threads rt =
  let exec = W.build rt Method.NR ~threads ~factory:(factory params) () in
  let pool = Nr_workload.String_keys.pool params.Params.population in
  body params ~pool ~batch ~compound ~exec rt

let batch_axis = [ 1; 2; 4; 8; 16 ]

let batch_figure (params : Params.t) =
  let threads = min 56 (Params.max_threads params) in
  let series =
    List.map
      (fun (label, compound) ->
        Sweep.axis_series params ~label ~axis:batch_axis ~threads
          ~setup:(fun ~x rt -> setup params ~batch:x ~compound ~threads rt))
      [ ("N logged SETs", false); ("one EXEC of N", true) ]
  in
  {
    Table.id = "txn-batch";
    title = "compound EXEC entry vs N individually logged commands";
    x_label = "commands per transaction";
    y_label = "txns/us";
    series;
    notes =
      [
        Printf.sprintf
          "%d uniform string keys, %d threads, 100%% updates; one measured \
           op executes its whole body, so at x=1 the series must coincide \
           and the widening gap is per-log-entry overhead"
          params.Params.population threads;
      ];
  }

let figures params = [ batch_figure params ]

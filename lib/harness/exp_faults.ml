(** Fault-injection experiments (no paper counterpart — robustness PR).

    Panel (a) sweeps the injected stall length under a fixed per-effect
    stall probability and compares legacy NR, hardened NR
    ({!Nr_core.Config.robust}) and the FC+ baseline on the skip-list
    priority queue: as stalls grow past the hardened patience window the
    legacy combiner serializes behind its stalled leader while the robust
    one hands the batch off, which shows up in p99 long before it shows
    up in throughput.  Panel (b) runs the plain thread sweep with {e no}
    fault plan to price the hardened paths themselves: the cost of
    stealable tenures and guarded appends when nothing ever stalls.

    Stall lengths are reported in kilocycles (the x column); the
    per-effect-point stall probability is fixed so longer stalls mean
    strictly more injected delay. *)

let axis_kcycles = [ 0; 50; 200; 1000; 5000 ]
let stall_prob = 0.0005

let plan ~seed ~stall_kcycles =
  {
    Nr_sim.Fault_plan.none with
    seed;
    stall_prob;
    stall_cycles = stall_kcycles * 1000;
  }

(* The fig5b workload (10% updates, e=0) at a two-node thread count:
   handoff and remote-refresh paths need more than one replica. *)
let update_pct = 10
let e = 0

let setup params m cfg ~threads rt =
  let exec =
    Exp_pq.Sl_exp.W.build rt m ~cfg ~threads
      ~factory:(Exp_pq.Sl_exp.factory params) ()
  in
  Exp_pq.Sl_exp.body params ~update_pct ~e ~exec rt

let methods =
  [
    ("NR", Method.NR, Nr_core.Config.default);
    ("NR-robust", Method.NR, Nr_core.Config.robust);
    ("FC+", Method.FCplus, Nr_core.Config.default);
  ]

let stall_figure (params : Params.t) =
  let threads = min 56 (Params.max_threads params) in
  let series =
    List.map
      (fun (label, m, cfg) ->
        let points =
          List.map
            (fun kc ->
              let faults =
                if kc = 0 then None
                else Some (plan ~seed:params.Params.seed ~stall_kcycles:kc)
              in
              let r =
                Driver.run_sim ~topo:params.Params.topo ?faults ~latency:true
                  ~threads ~warmup_us:params.Params.warmup_us
                  ~measure_us:params.Params.measure_us
                  (setup params m cfg ~threads)
              in
              Sweep.point_of_result ~x:kc r)
            axis_kcycles
        in
        { Table.label; points })
      methods
  in
  {
    Table.id = "faults-a";
    title = "stall length vs throughput under injected combiner stalls";
    x_label = "stall kcycles";
    y_label = "ops/us";
    series;
    notes =
      [
        Printf.sprintf
          "%d%% updates, e=%d, %d threads, stall_prob=%g per effect point, \
           %d initial items"
          update_pct e threads stall_prob params.Params.population;
        "latency columns are per-op virtual-time p50/p99";
      ];
  }

let overhead_figure (params : Params.t) =
  let series =
    List.map
      (fun (label, m, cfg) ->
        Sweep.threads_series params ~label ~setup:(fun ~threads rt ->
            setup params m cfg ~threads rt))
      [
        ("NR", Method.NR, Nr_core.Config.default);
        ("NR-robust", Method.NR, Nr_core.Config.robust);
      ]
  in
  {
    Table.id = "faults-b";
    title = "hardened-mode overhead with no faults injected";
    x_label = "threads";
    y_label = "ops/us";
    series;
    notes =
      [
        Printf.sprintf "%d%% updates, e=%d, no fault plan installed"
          update_pct e;
      ];
  }

let figures params = [ stall_figure params; overhead_figure params ]

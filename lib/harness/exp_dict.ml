(** Dictionary experiments (paper fig. 7): skip-list dictionary under
    uniform (low-contention) and zipf-1.5 (high-contention) key
    distributions. *)

open Nr_seqds

module W = Families.Wrap (Skiplist_dict)

let key_space (params : Params.t) = 2 * params.population

(* Populate every other key so lookups hit about half the time and the
   add/remove mix stays balanced. *)
let factory (params : Params.t) () =
  let t = Skiplist_dict.create () in
  let i = ref 0 in
  while Skiplist_dict.length t < params.population do
    ignore (Skiplist_dict.execute t (Dict_ops.Insert (2 * !i, !i)));
    incr i
  done;
  t

let body (params : Params.t) ~update_pct ~dist ~exec rt ~tid =
  let module R = (val rt : Nr_runtime.Runtime_intf.S) in
  let rng = Nr_workload.Prng.create ~seed:(params.seed + (tid * 7919) + 1) in
  fun () ->
    R.work 25;
    let key = Nr_workload.Key_dist.sample dist rng in
    match Nr_workload.Op_mix.sample ~update_percent:update_pct rng with
    | Nr_workload.Op_mix.Add -> ignore (exec (Dict_ops.Insert (key, key)))
    | Nr_workload.Op_mix.Remove -> ignore (exec (Dict_ops.Remove key))
    | Nr_workload.Op_mix.Read -> ignore (exec (Dict_ops.Lookup key))

let setup_black_box params m ~update_pct ~dist ~threads rt =
  let exec = W.build rt m ~threads ~factory:(factory params) () in
  body params ~update_pct ~dist ~exec rt

let setup_lf (params : Params.t) ~update_pct ~dist ~threads:_ rt =
  let module R = (val rt : Nr_runtime.Runtime_intf.S) in
  let module Lf = Nr_baselines.Lf_skiplist.Make (R) in
  let t = Lf.create ~home:0 () in
  (* distinct keys: every add succeeds, no need to recount *)
  for i = 0 to params.Params.population - 1 do
    ignore (Lf.add t (2 * i) i)
  done;
  let exec : Dict_ops.op -> Dict_ops.result = function
    | Dict_ops.Insert (k, v) -> Dict_ops.Added (Lf.add t k v)
    | Dict_ops.Remove k -> Dict_ops.Removed (Lf.remove t k)
    | Dict_ops.Lookup k -> Dict_ops.Found (Lf.get t k)
  in
  body params ~update_pct ~dist ~exec rt

let series params m ~update_pct ~dist =
  match m with
  | Method.LF ->
      Sweep.threads_series params ~label:(Method.name m)
        ~setup:(setup_lf params ~update_pct ~dist)
  | m ->
      Sweep.threads_series params ~label:(Method.name m)
        ~setup:(setup_black_box params m ~update_pct ~dist)

let figure params ~id ~title ~update_pct ~dist =
  let methods =
    [ Method.NR; Method.LF; Method.FCplus; Method.FC; Method.RWL; Method.SL ]
  in
  {
    Table.id;
    title;
    x_label = "threads";
    y_label = "ops/us";
    series = List.map (fun m -> series params m ~update_pct ~dist) methods;
    notes =
      [
        Printf.sprintf "%d%% updates, %s keys over [0,%d), %d initial items"
          update_pct
          (Nr_workload.Key_dist.name dist)
          (key_space params) params.Params.population;
      ];
  }

let fig7 params =
  let uniform = Nr_workload.Key_dist.uniform (key_space params) in
  let zipf = Nr_workload.Key_dist.zipf ~theta:1.5 ~n:(key_space params) () in
  [
    figure params ~id:"fig7a" ~title:"skip list dictionary, uniform keys, 10% updates"
      ~update_pct:10 ~dist:uniform;
    figure params ~id:"fig7b" ~title:"skip list dictionary, uniform keys, 100% updates"
      ~update_pct:100 ~dist:uniform;
    figure params ~id:"fig7c" ~title:"skip list dictionary, zipf keys, 10% updates"
      ~update_pct:10 ~dist:zipf;
    figure params ~id:"fig7d" ~title:"skip list dictionary, zipf keys, 100% updates"
      ~update_pct:100 ~dist:zipf;
  ]

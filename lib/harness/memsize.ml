(** Memory-cost tables (paper figs. 5f, 6c, 7e): NR pays for its replicas
    and its log.  Structures are built on the real-domains runtime (so no
    simulator bookkeeping inflates them) and measured with
    [Obj.reachable_words]. *)

let mb_of_words w = float_of_int w *. 8.0 /. 1e6
let measure v = mb_of_words (Obj.reachable_words (Obj.repr v))

(* [measure_pair ~factory] returns (NR megabytes, single-structure
   megabytes) for a populated structure. *)
module Pair (Seq : Nr_core.Ds_intf.S) = struct
  let measure_pair ~(factory : unit -> Seq.t) =
    let topo = Nr_sim.Topology.intel in
    let module R = (val Nr_runtime.Runtime_domains.make topo) in
    let module NR = Nr_core.Node_replication.Make (R) (Seq) in
    let nr = NR.create factory in
    let nr_mb = measure nr in
    let single_mb = measure (factory ()) in
    (nr_mb, single_mb)
end

type row = { structure : string; nr_mb : float; others_mb : float }

let rows (params : Params.t) =
  let pq_factory () =
    let t = Nr_seqds.Skiplist_pq.create () in
    let rng = Nr_workload.Prng.create ~seed:params.seed in
    for _ = 1 to params.population do
      ignore
        (Nr_seqds.Skiplist_pq.execute t
           (Nr_seqds.Pq_ops.Insert
              (Nr_workload.Prng.below rng (2 * params.population), 1)))
    done;
    t
  in
  let ph_factory () =
    let t = Nr_seqds.Pairing_pq.create () in
    let rng = Nr_workload.Prng.create ~seed:params.seed in
    for _ = 1 to params.population do
      ignore
        (Nr_seqds.Pairing_pq.execute t
           (Nr_seqds.Pq_ops.Insert
              (Nr_workload.Prng.below rng (2 * params.population), 1)))
    done;
    t
  in
  let dict_factory () =
    let t = Nr_seqds.Skiplist_dict.create () in
    for i = 0 to params.population - 1 do
      ignore
        (Nr_seqds.Skiplist_dict.execute t (Nr_seqds.Dict_ops.Insert (2 * i, i)))
    done;
    t
  in
  let module P1 = Pair (Nr_seqds.Skiplist_pq) in
  let module P2 = Pair (Nr_seqds.Pairing_pq) in
  let module P3 = Pair (Nr_seqds.Skiplist_dict) in
  let m1 = P1.measure_pair ~factory:pq_factory in
  let m2 = P2.measure_pair ~factory:ph_factory in
  let m3 = P3.measure_pair ~factory:dict_factory in
  [
    { structure = "skip list priority queue"; nr_mb = fst m1; others_mb = snd m1 };
    { structure = "pairing heap priority queue"; nr_mb = fst m2; others_mb = snd m2 };
    { structure = "skip list dictionary"; nr_mb = fst m3; others_mb = snd m3 };
  ]

let print params =
  Format.printf
    "## fig5f/6c/7e: memory at max threads (MB), %d items, 4 replicas + \
     %d-entry log@."
    params.Params.population Nr_core.Config.default.Nr_core.Config.log_size;
  Format.printf "%-30s %10s %10s@." "structure" "NR" "others";
  List.iter
    (fun r ->
      Format.printf "%-30s %10.1f %10.1f@." r.structure r.nr_mb r.others_mb)
    (rows params);
  Format.printf "@."

(** Durability experiments (no paper counterpart — persistence PR).

    Panel (a) prices the group-commit knob: logging a fixed op stream
    through the persister over real files, sweeping the fsync batch size
    (x = 1 is [always]; the largest x approximates [never] over the run).
    Group fsync is where a durable NR server buys its throughput back —
    each fsync is orders of magnitude costlier than an append, so
    batching N acks per fsync trades a bounded window of unacked-durable
    writes for N-fold fewer barriers.

    Panel (b) prices recovery: replaying an AOF of x ops back into a
    store, with and without a snapshot covering most of the prefix.
    Snapshot + suffix replay is the compaction argument in one figure —
    recovery work tracks the {e suffix} length, not history length. *)

module Command = Nr_kvstore.Command

let batch_axis = [ 1; 8; 32; 128; 1024 ]
let log_len = 20_000
let recovery_axis = [ 2_000; 10_000; 50_000 ]

(* A mixed SET/ZADD stream over a bounded keyspace, deterministic. *)
let op i =
  if i mod 4 = 0 then Command.Zadd ("z" ^ string_of_int (i mod 64), i mod 1000, i)
  else Command.Set ("k" ^ string_of_int (i mod 512), string_of_int i)

let fresh_dir () =
  let f = Filename.temp_file "nr_durable" "" in
  Sys.remove f;
  Unix.mkdir f 0o700;
  f

let cleanup dir =
  (try Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir)
   with Sys_error _ -> ());
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let now_ms () = int_of_float (Unix.gettimeofday () *. 1000.)

let with_persister ?snapshot_every ~policy f =
  let dir = fresh_dir () in
  let fs = Nr_persist.Vfs.real ~root:dir in
  let r =
    match Nr_persist.Persister.create fs ~policy ~now_ms ?snapshot_every () with
    | Ok (p, _) ->
        let r = f dir fs p in
        Nr_persist.Persister.close p;
        r
    | Error e -> failwith e
  in
  cleanup dir;
  r

(* ops/us logging [log_len] ops under the given fsync batch size *)
let log_throughput ~batch ~snapshot_every =
  let policy =
    if batch = 1 then Nr_persist.Aof.Always else Nr_persist.Aof.Every_n batch
  in
  with_persister ?snapshot_every ~policy (fun _ _ p ->
      let t0 = Unix.gettimeofday () in
      for i = 0 to log_len - 1 do
        Nr_persist.Persister.observe p [ Some (op i) ]
      done;
      Nr_persist.Persister.sync p;
      let dt_us = (Unix.gettimeofday () -. t0) *. 1e6 in
      float_of_int log_len /. dt_us)

(* recovery wall-time in ms for an [n]-op history *)
let recovery_ms ~n ~snapshot_every =
  let dir = fresh_dir () in
  let fs = Nr_persist.Vfs.real ~root:dir in
  (match
     Nr_persist.Persister.create fs ~policy:(Nr_persist.Aof.Every_n 256) ~now_ms
       ?snapshot_every ()
   with
  | Ok (p, _) ->
      for i = 0 to n - 1 do
        Nr_persist.Persister.observe p [ Some (op i) ]
      done;
      Nr_persist.Persister.close p
  | Error e -> failwith e);
  let t0 = Unix.gettimeofday () in
  (match Nr_persist.Persister.create fs ~policy:Nr_persist.Aof.Never ~now_ms ()
   with
  | Ok (p, _) -> Nr_persist.Persister.close p
  | Error e -> failwith e);
  let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  cleanup dir;
  ms

let fsync_figure (_ : Params.t) =
  let series =
    [
      {
        Table.label = "aof";
        points =
          List.map
            (fun b -> Table.pt b (log_throughput ~batch:b ~snapshot_every:None))
            batch_axis;
      };
      {
        Table.label = "aof+snap";
        points =
          List.map
            (fun b ->
              Table.pt b
                (log_throughput ~batch:b ~snapshot_every:(Some 4096)))
            batch_axis;
      };
    ]
  in
  {
    Table.id = "durable-a";
    title = "fsync batch size vs logged-op throughput (real files)";
    x_label = "acks/fsync";
    y_label = "ops/us";
    series;
    notes =
      [
        Printf.sprintf "%d mixed SET/ZADD ops per point; x=1 is fsync=always"
          log_len;
        "aof+snap also snapshots + compacts every 4096 ops";
      ];
  }

let recovery_figure (_ : Params.t) =
  let series =
    [
      {
        Table.label = "aof-only";
        points =
          List.map
            (fun n -> Table.pt n (recovery_ms ~n ~snapshot_every:None))
            recovery_axis;
      };
      {
        Table.label = "snap+suffix";
        points =
          List.map
            (fun n ->
              Table.pt n (recovery_ms ~n ~snapshot_every:(Some 4096)))
            recovery_axis;
      };
    ]
  in
  {
    Table.id = "durable-b";
    title = "recovery time vs history length";
    x_label = "ops logged";
    y_label = "ms";
    series;
    notes =
      [ "snap+suffix recovers from the latest snapshot plus the AOF suffix" ];
  }

let figures params = [ fsync_figure params; recovery_figure params ]

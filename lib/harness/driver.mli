(** Experiment driver: run one benchmark point on the simulator (virtual
    time) or on real domains (wall-clock). *)

(** Per-operation latency summary, in microseconds (virtual time under the
    simulator, wall-clock on domains).  A dimension the paper's figures
    omit — see EXPERIMENTS.md. *)
type latency = {
  p50_us : float;
  p90_us : float;
  p99_us : float;
  p999_us : float;
  hist : Nr_obs.Histogram.t;
      (** full distribution, in the unit recorded (cycles / ns) *)
}

type result = {
  threads : int;
  total_ops : int;  (** operations completed in the measurement window *)
  measure_us : float;
  ops_per_us : float;  (** the y-axis of every figure in the paper *)
  cas_failures : int;  (** simulator runs only *)
  remote_transfers : int;  (** simulator runs only *)
  nr_stats : Nr_core.Stats.t option;
      (** combiner counters of the NR instance(s) the setup built; [None]
          for baseline methods (§8.5-style analysis from the CLI) *)
  latency : latency option;  (** present when run with [~latency:true] *)
  fault_stats : Nr_sim.Fault_plan.stats option;
      (** injected-fault tally when run with [?faults]; [None] otherwise
          and on domains *)
}

val run_sim :
  topo:Nr_sim.Topology.t ->
  ?costs:Nr_sim.Costs.t ->
  ?faults:Nr_sim.Fault_plan.t ->
  ?latency:bool ->
  threads:int ->
  warmup_us:float ->
  measure_us:float ->
  (Nr_runtime.Runtime_intf.t -> tid:int -> unit -> unit) ->
  result
(** [run_sim ~topo ~threads ~warmup_us ~measure_us setup] builds the
    experiment by calling [setup runtime] once (construction happens before
    the simulation and is free), then runs [threads] simulated threads,
    each looping the thunk [setup runtime ~tid] until the virtual deadline.
    Deterministic: identical inputs give identical results.

    [?faults] arms the scheduler's fault injector for the whole run
    (chaos experiments); threads the plan kills stop mid-loop and their
    operations after the kill are simply not counted.  Omitting it leaves
    the scheduler on the zero-overhead no-faults path.

    [~latency:true] records per-operation virtual-time latency; recording
    performs no simulator effects, so throughput numbers are unchanged.
    When [Nr_obs.Sink.request_metrics] is set, a metrics dump for the point
    goes to stderr. *)

val run_domains :
  topo:Nr_sim.Topology.t ->
  ?latency:bool ->
  threads:int ->
  warmup_s:float ->
  measure_s:float ->
  (Nr_runtime.Runtime_intf.t -> tid:int -> unit -> unit) ->
  result
(** Same shape over real domains and wall-clock time, sharing the same
    stats-collection and metrics-reporting path.  [~latency:true] costs one
    extra clock read per operation.  Useful for examples and cross-runtime
    checks; absolute numbers depend on the host. *)

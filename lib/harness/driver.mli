(** Experiment driver: run one benchmark point on the simulator (virtual
    time) or on real domains (wall-clock). *)

type result = {
  threads : int;
  total_ops : int;  (** operations completed in the measurement window *)
  measure_us : float;
  ops_per_us : float;  (** the y-axis of every figure in the paper *)
  cas_failures : int;  (** simulator runs only *)
  remote_transfers : int;  (** simulator runs only *)
}

val run_sim :
  topo:Nr_sim.Topology.t ->
  ?costs:Nr_sim.Costs.t ->
  threads:int ->
  warmup_us:float ->
  measure_us:float ->
  (Nr_runtime.Runtime_intf.t -> tid:int -> unit -> unit) ->
  result
(** [run_sim ~topo ~threads ~warmup_us ~measure_us setup] builds the
    experiment by calling [setup runtime] once (construction happens before
    the simulation and is free), then runs [threads] simulated threads,
    each looping the thunk [setup runtime ~tid] until the virtual deadline.
    Deterministic: identical inputs give identical results. *)

val run_domains :
  topo:Nr_sim.Topology.t ->
  threads:int ->
  warmup_s:float ->
  measure_s:float ->
  (Nr_runtime.Runtime_intf.t -> tid:int -> unit -> unit) ->
  result
(** Same shape over real domains and wall-clock time.  Useful for examples
    and cross-runtime checks; absolute numbers depend on the host. *)

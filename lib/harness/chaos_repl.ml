(** Seeded partition/crash chaos for the replication stack.

    One simulated deployment: a leader and [followers] replica processes,
    each with its own {!Nr_persist.Sim_fs} (so each has an independent
    crash image), wired either as a star (everyone feeds off the leader)
    or a chain (follower [i] feeds off follower [i-1] — chained
    replication, every hop serving PSYNC off its local AOF).  A seeded
    event schedule interleaves writes, replication polls, REPLACK
    propagation, [WAIT]s, follower kills (both explicit crash events and
    {!Nr_sim.Fault_plan} kills at seeded IO effect points, i.e. mid-append
    or mid-fsync), recoveries, and link partitions.

    The run ends with the big hammer: {e crash every process}, recover
    every process, and hand the caller everything needed to check the two
    halves of the replication promise against {!Nr_check.Durable}:
    - {b WAIT}: every satisfied [WAIT] recorded [(target, count)] — at
      least [count] follower crash images must still durably hold
      [target] ([Durable.check_wait]), which is exactly "an acked write
      survives any [count - 1] kills among leader+followers";
    - {b state}: each recovered process must equal the oracle replay of
      its claimed log prefix ([Durable.check] per node), and after a
      final promotion (max recovered cursor wins) + catch-up rounds all
      nodes must converge to one fingerprint.

    The harness never checks anything itself — it only simulates and
    reports — so it lives below [nr_check] in the dependency order and
    the test layer owns the verdicts. *)

module Command = Nr_kvstore.Command
module Store = Nr_kvstore.Store
module Persister = Nr_persist.Persister
module Replication = Nr_persist.Replication
module Repl_hub = Nr_persist.Repl_hub
module Sim_fs = Nr_persist.Sim_fs
module Aof = Nr_persist.Aof
module Prng = Nr_workload.Prng

type params = {
  seed : int;
  followers : int;  (** replica processes (>= 1); node 0 is the leader *)
  chain : bool;  (** chain topology instead of a star *)
  events : int;  (** schedule length *)
  policy : Aof.fsync_policy;
  snapshot_every : int option;  (** leader compaction cadence *)
  kill_io : bool;  (** also arm seeded fault-plan kills at follower IO points *)
}

let default_params =
  {
    seed = 1;
    followers = 3;
    chain = false;
    events = 120;
    policy = Aof.Always;
    snapshot_every = None;
    kill_io = true;
  }

type node = {
  id : int;
  sim : Sim_fs.t;
  fs : Nr_persist.Vfs.t;
  mutable p : Persister.t option;  (** [None] = process is down *)
  mutable link_up : bool;  (** partition switch for this node's uplink *)
  mutable last_durable : int;  (** durable watermark last observed alive *)
}

type outcome = {
  writes : int;
  waits : (int * int) list;  (** satisfied waits as [(target, count)] *)
  wait_degraded : int;  (** waits answered below the requested [n] *)
  polls_ok : int;
  polls_failed : int;
  full_resyncs : int;
  strict_refusals : int;
  kills : int;
  recovers : int;
  partitions : int;
  logged : Command.t option list;  (** the leader's full logged history *)
  recovered : (int * int * string) list;
      (** per node: (id, recovered cursor, recovered dump) after crash-all *)
  acked_at_crash : (int * int) list;
      (** per node: (id, durable watermark when it last went down) *)
  converged : bool;
  final_cursor : int;  (** the promoted node's cursor after catch-up *)
  fingerprints : (int * int64) list;  (** per node, after catch-up rounds *)
}

let node_alive n = n.p <> None

(* Random small-keyspace update: collisions make divergence visible. *)
let gen_plain rng =
  let key = Printf.sprintf "k%d" (Prng.below rng 8) in
  match Prng.below rng 5 with
  | 0 -> Command.Set (key, Printf.sprintf "v%d" (Prng.below rng 1000))
  | 1 -> Command.Incr key
  | 2 -> Command.Zadd (key, Prng.below rng 100, Prng.below rng 10)
  | 3 -> Command.Pexpireat (key, 1 + Prng.below rng 400)
  | _ -> Command.Del key

(* The logged alphabet includes the transactions & TTL subsystem: compound
   [Txn] entries (guarded ones mostly abort — both paths must replay
   identically on every node), deadline arms, logical-clock ticks and
   wheel-driven evictions.  Everything is deterministic under replay, so
   the oracle-prefix and convergence checks apply unchanged. *)
let gen_write rng =
  let key = Printf.sprintf "k%d" (Prng.below rng 8) in
  match Prng.below rng 8 with
  | 0 | 1 | 2 | 3 -> gen_plain rng
  | 4 -> Command.Tick (Prng.below rng 500)
  | 5 -> Command.Expire_evict (key, 1 + Prng.below rng 400)
  | 6 ->
      Command.Txn
        ([], List.init (1 + Prng.below rng 3) (fun _ -> gen_plain rng))
  | _ -> Command.Txn ([ (key, Prng.below rng 4) ], [ gen_plain rng ])

let run params =
  let rng = Prng.create ~seed:params.seed in
  let n_nodes = params.followers + 1 in
  let mk_node id =
    let plan =
      (* leader never dies mid-run (the final crash-all covers it);
         followers optionally get one seeded kill at an IO effect point *)
      if params.kill_io && id > 0 && Prng.below rng 2 = 0 then
        Some
          {
            Nr_sim.Fault_plan.none with
            seed = params.seed lxor (id * 0x9E37);
            (* point >= 2: point 1 is the fresh AOF's header write at the
               initial boot, which must succeed for the node to exist *)
            kills_at = [ (0, 2 + Prng.below rng 400) ];
          }
      else None
    in
    let sim = Sim_fs.create ?plan () in
    { id; sim; fs = Sim_fs.fs sim; p = None; link_up = true; last_durable = 0 }
  in
  let nodes = Array.init n_nodes mk_node in
  let boot node =
    match
      Persister.create node.fs ~policy:params.policy ~now_ms:(fun () -> 0)
        ?snapshot_every:(if node.id = 0 then params.snapshot_every else None)
        ()
    with
    | Ok (p, _) ->
        node.p <- Some p;
        node.last_durable <- Persister.durable_seq p
    | Error e -> failwith ("chaos_repl: recovery failed: " ^ e)
  in
  Array.iter boot nodes;
  let hub = Repl_hub.create () in
  let logged = ref [] (* reversed *) and writes = ref 0 in
  let waits = ref [] and wait_degraded = ref 0 in
  let polls_ok = ref 0 and polls_failed = ref 0 in
  let full_resyncs = ref 0 and strict_refusals = ref 0 in
  let kills = ref 0 and recovers = ref 0 and partitions = ref 0 in
  let parent i = if params.chain then i - 1 else 0 in
  let note_durable node =
    match node.p with
    | Some p -> node.last_durable <- Persister.durable_seq p
    | None -> ()
  in
  let mark_dead node =
    node.p <- None;
    incr kills
  in
  (* Propagate one REPLACK for [node] up to the leader's hub; in a chain
     every intermediate hop must be alive and unpartitioned, modelling
     hop-by-hop forwarding. *)
  let ack_node node =
    match node.p with
    | None -> ()
    | Some p ->
        node.last_durable <- Persister.durable_seq p;
        let rec path_up i =
          if i = 0 then true
          else
            let n = nodes.(i) in
            node_alive n && n.link_up && path_up (parent i)
        in
        if node_alive nodes.(0) && node.link_up && path_up (parent node.id)
        then
          Repl_hub.ack hub ~id:(string_of_int node.id)
            ~seq:(Persister.durable_seq p)
  in
  (* One PSYNC round of [node] against its parent, entirely in-process:
     the parent answers off its persister exactly as the server's special
     handler would, and the follower folds the reply through
     [Replication.apply] with the AOF-keeping callbacks.  A successful
     round acks immediately, as the server's replication loop does after
     every applied step. *)
  let poll_node node =
    let par = nodes.(parent node.id) in
    match (node.p, par.p) with
    | None, _ -> ()
    | Some _, None -> incr polls_failed (* connect refused: parent down *)
    | Some p, Some pp -> (
        if not (node.link_up && par.link_up) then incr polls_failed
        else
          let offset = Persister.cursor p in
          match Persister.handle_sync pp (Command.Psync offset) with
          | None -> incr polls_failed
          | Some reply -> (
              let on_op op = Persister.observe p [ op ] in
              let on_full ~upto ~dump =
                incr full_resyncs;
                Persister.reset_to p ~upto ~dump
              in
              match
                Replication.apply ~on_op ~on_full ~strict:true
                  ~exec:(fun _ -> Command.Ok_reply)
                  ~offset reply
              with
              | Ok _ ->
                  incr polls_ok;
                  ack_node node
              | Error e ->
                  incr polls_failed;
                  if
                    (* a lagging parent must not regress this replica *)
                    String.length e >= 24
                    && String.sub e 0 24 = "replication: full resync"
                  then incr strict_refusals
              | exception Sim_fs.Crashed ->
                  (* fault-plan kill at one of this poll's IO points *)
                  mark_dead node))
  in
  let leader_write () =
    match nodes.(0).p with
    | None -> ()
    | Some p ->
        let cmd = gen_write rng in
        Persister.observe p [ Some cmd ];
        logged := Some cmd :: !logged;
        incr writes;
        note_durable nodes.(0)
  in
  let leader_wait () =
    match nodes.(0).p with
    | None -> ()
    | Some p ->
        (* half the waits cover everything logged so far (the server's
           WAIT semantics); the rest cover an earlier position — a client
           waiting on its own older write *)
        let cursor = Persister.cursor p in
        let target =
          if Prng.below rng 2 = 0 then cursor else Prng.below rng (cursor + 1)
        in
        let n = 1 + Prng.below rng params.followers in
        let have = Repl_hub.acked hub ~seq:target in
        (* the reply is the count actually acked — a claim about [have]
           durable holders whether or not it reached [n] *)
        if have < n then incr wait_degraded;
        if have > 0 then waits := (target, min have n) :: !waits
  in
  for _ = 1 to params.events do
    let pick_follower () = 1 + Prng.below rng params.followers in
    match Prng.below rng 100 with
    | r when r < 35 -> leader_write ()
    | r when r < 60 -> poll_node nodes.(pick_follower ())
    | r when r < 75 -> ack_node nodes.(pick_follower ())
    | r when r < 83 -> leader_wait ()
    | r when r < 89 ->
        (* explicit crash: durable bytes + a seeded pending prefix survive *)
        let node = nodes.(pick_follower ()) in
        if node_alive node then begin
          note_durable node;
          (try Sim_fs.crash node.sim with Sim_fs.Crashed -> ());
          mark_dead node
        end
    | r when r < 95 ->
        let node = nodes.(pick_follower ()) in
        if not (node_alive node) then begin
          Sim_fs.reboot node.sim;
          boot node;
          incr recovers
        end
    | _ ->
        let node = nodes.(pick_follower ()) in
        node.link_up <- not node.link_up;
        incr partitions
  done;
  (* Final phase 1: crash-all.  Every process dies at once — the
     strongest kill set any WAIT promise must survive. *)
  Array.iter
    (fun node ->
      if node_alive node then begin
        note_durable node;
        (try Sim_fs.crash node.sim with Sim_fs.Crashed -> ());
        node.p <- None
      end)
    nodes;
  let acked_at_crash =
    Array.to_list (Array.map (fun n -> (n.id, n.last_durable)) nodes)
  in
  (* Final phase 2: recover-all off the crash images. *)
  Array.iter
    (fun node ->
      Sim_fs.reboot node.sim;
      boot node)
    nodes;
  let recovered =
    Array.to_list
      (Array.map
         (fun n ->
           match n.p with
           | Some p -> (n.id, Persister.cursor p, Persister.dump p)
           | None -> assert false)
         nodes)
  in
  (* Final phase 3: promote the longest recovered prefix and let everyone
     catch up off it (star, links healed), then compare fingerprints. *)
  let promoted =
    Array.fold_left
      (fun best n ->
        match (n.p, nodes.(best).p) with
        | Some p, Some bp ->
            if Persister.cursor p > Persister.cursor bp then n.id else best
        | _ -> best)
      0 nodes
  in
  let leader_p = Option.get nodes.(promoted).p in
  let rounds = ref 0 in
  let all_caught_up () =
    Array.for_all
      (fun n ->
        match n.p with
        | Some p -> Persister.cursor p = Persister.cursor leader_p
        | None -> false)
      nodes
  in
  while (not (all_caught_up ())) && !rounds < 4 * n_nodes do
    incr rounds;
    Array.iter
      (fun node ->
        if node.id <> promoted then
          match node.p with
          | None -> ()
          | Some p -> (
              let offset = Persister.cursor p in
              match Persister.handle_sync leader_p (Command.Psync offset) with
              | None -> ()
              | Some reply -> (
                  match
                    Replication.apply
                      ~on_op:(fun op -> Persister.observe p [ op ])
                      ~on_full:(fun ~upto ~dump ->
                        incr full_resyncs;
                        Persister.reset_to p ~upto ~dump)
                      ~strict:true
                      ~exec:(fun _ -> Command.Ok_reply)
                      ~offset reply
                  with
                  | Ok _ -> incr polls_ok
                  | Error _ -> incr polls_failed)))
      nodes
  done;
  let fingerprints =
    Array.to_list
      (Array.map
         (fun n ->
           match n.p with
           | Some p -> (n.id, Persister.fingerprint p)
           | None -> (n.id, -1L))
         nodes)
  in
  {
    writes = !writes;
    waits = List.rev !waits;
    wait_degraded = !wait_degraded;
    polls_ok = !polls_ok;
    polls_failed = !polls_failed;
    full_resyncs = !full_resyncs;
    strict_refusals = !strict_refusals;
    kills = !kills;
    recovers = !recovers;
    partitions = !partitions;
    logged = List.rev !logged;
    recovered;
    acked_at_crash;
    converged = all_caught_up ();
    final_cursor = Persister.cursor leader_p;
    fingerprints;
  }

(** Follower durable prefixes at crash-all time — what {!check_wait}
    counts holders over.  The recovered cursor is what each crash image
    actually yields, which is [>=] the node's durable watermark; using
    the recovered value checks the implementation end-to-end (frames,
    snapshots, rotate, reset) rather than trusting the watermark. *)
let follower_prefixes outcome =
  List.filter_map
    (fun (id, cursor, _) -> if id = 0 then None else Some cursor)
    outcome.recovered

(** Shared experiment parameters.  [paper] mirrors the paper's setup (4-node
    Intel topology, 1..112 threads, 200k-item structures); [quick] is a
    scaled-down preset for smoke runs; [of_env] picks by the
    [NR_BENCH_SCALE] environment variable. *)

type t = {
  topo : Nr_sim.Topology.t;
  threads : int list;  (** sweep points; node boundaries at 28/56/84 *)
  warmup_us : float;  (** virtual-time warmup per point *)
  measure_us : float;  (** virtual-time measurement window per point *)
  population : int;  (** initial items in each structure *)
  seed : int;
  latency : bool;
      (** record per-operation latency and add p50/p99 table columns *)
}

let paper =
  {
    topo = Nr_sim.Topology.intel;
    threads = [ 1; 7; 14; 28; 42; 56; 84; 112 ];
    warmup_us = 30.0;
    measure_us = 150.0;
    population = 200_000;
    seed = 0xA5A5;
    latency = false;
  }

let quick =
  {
    topo = Nr_sim.Topology.intel;
    threads = [ 1; 14; 28; 56; 112 ];
    warmup_us = 10.0;
    measure_us = 50.0;
    population = 20_000;
    seed = 0xA5A5;
    latency = false;
  }

(* Keeps a full-suite run within tens of minutes while preserving every
   shape: same thread sweep minus one point, 4x smaller structures, and a
   shorter (but still thousands-of-batches) measurement window. *)
let default =
  {
    topo = Nr_sim.Topology.intel;
    threads = [ 1; 14; 28; 56; 84; 112 ];
    warmup_us = 20.0;
    measure_us = 100.0;
    population = 50_000;
    seed = 0xA5A5;
    latency = false;
  }

let amd t =
  {
    t with
    topo = Nr_sim.Topology.amd;
    threads = List.filter (fun n -> n <= 48) [ 1; 6; 12; 18; 24; 36; 48 ];
  }

let max_threads t = List.fold_left max 1 t.threads

let of_env () =
  match Sys.getenv_opt "NR_BENCH_SCALE" with
  | Some "quick" -> quick
  | Some "paper" -> paper
  | Some "default" | None -> default
  | Some other ->
      Printf.eprintf
        "NR_BENCH_SCALE=%s not recognized (quick|default|paper); using \
         default scale\n\
         %!"
        other;
      default

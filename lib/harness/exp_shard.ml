(** Sharded-NR experiments (no paper counterpart — the sharding PR):
    shard count × thread count × update ratio on both topology presets,
    plus a cross-shard operation-mix sweep.

    The paper concedes (§8.3) that NR's single shared log is the
    bottleneck under update-heavy load; these figures show the
    hash-partitioned wrapper ({!Nr_shard}) lifting that ceiling — S
    independent logs give the combiners S times the append bandwidth —
    while S=1 stays op-count-identical to plain NR (the passthrough has
    nothing to coordinate). *)

module W = Families.Wrap (Nr_kvstore.Store)

let value = "1"

(* Uniform string keyspace, prepopulated.  The sharded factory receives
   the router's own mapping and fills each shard's replicas with exactly
   the keys that will ever route there; [shard_of] = const 0 reproduces
   the identical whole-space store for the plain-NR baseline. *)
let factory (params : Params.t) ~shard ~shard_of () =
  let t = Nr_kvstore.Store.create () in
  for i = 0 to params.Params.population - 1 do
    let k = Nr_workload.String_keys.key i in
    if shard_of k = shard then
      ignore (Nr_kvstore.Store.execute t (Nr_kvstore.Command.Set (k, "0")))
  done;
  t

let plain_factory params () = factory params ~shard:0 ~shard_of:(fun _ -> 0) ()

(* GET/SET point ops on uniform keys; [multi_pct]% of operations are
   two-key MGET/MSET pairs instead, exercising the cross-shard
   coordinator. *)
let body (params : Params.t) ~pool ~update_pct ~multi_pct ~exec rt ~tid =
  let module R = (val rt : Nr_runtime.Runtime_intf.S) in
  let n = Array.length pool in
  let rng =
    Nr_workload.Prng.create ~seed:(params.Params.seed + (tid * 7919) + 1)
  in
  fun () ->
    R.work 40;
    let k = pool.(Nr_workload.Prng.below rng n) in
    if multi_pct > 0 && Nr_workload.Prng.below rng 100 < multi_pct then begin
      let k2 = pool.(Nr_workload.Prng.below rng n) in
      if Nr_workload.Prng.below rng 100 < update_pct then
        ignore (exec (Nr_kvstore.Command.Mset [ (k, value); (k2, value) ]))
      else ignore (exec (Nr_kvstore.Command.Mget [ k; k2 ]))
    end
    else if Nr_workload.Prng.below rng 100 < update_pct then
      ignore (exec (Nr_kvstore.Command.Set (k, value)))
    else ignore (exec (Nr_kvstore.Command.Get k))

let setup_sharded (params : Params.t) ~shards ?(multi_pct = 0) ~update_pct
    ~threads:_ rt =
  let module R = (val rt : Nr_runtime.Runtime_intf.S) in
  let module Sh = Nr_shard.Sharded.Make (R) (Nr_shard.Kv_shard) in
  let cfg = { Nr_core.Config.default with shards } in
  let t =
    Sh.create ~cfg
      ~factory:(fun ~shard ~shard_of () -> factory params ~shard ~shard_of ())
      ()
  in
  let pool = Nr_workload.String_keys.pool params.Params.population in
  body params ~pool ~update_pct ~multi_pct ~exec:(Sh.execute t) rt

let setup_plain (params : Params.t) ?(multi_pct = 0) ~update_pct ~threads rt =
  let exec =
    W.build rt Method.NR ~threads ~factory:(plain_factory params) ()
  in
  let pool = Nr_workload.String_keys.pool params.Params.population in
  body params ~pool ~update_pct ~multi_pct ~exec rt

let shard_counts = [ 1; 4; 8 ]

let scaling_figure (params : Params.t) ~id ~update_pct =
  let series =
    Sweep.threads_series params ~label:"NR" ~setup:(fun ~threads rt ->
        setup_plain params ~update_pct ~threads rt)
    :: List.map
         (fun shards ->
           Sweep.threads_series params
             ~label:(Printf.sprintf "NR-shard S=%d" shards)
             ~setup:(fun ~threads rt ->
               setup_sharded params ~shards ~update_pct ~threads rt))
         shard_counts
  in
  {
    Table.id;
    title =
      Printf.sprintf "sharded NR, uniform GET/SET, %d%% updates (%s)"
        update_pct params.Params.topo.Nr_sim.Topology.name;
    x_label = "threads";
    y_label = "ops/us";
    series;
    notes =
      [
        Printf.sprintf
          "%d uniform string keys, hash-partitioned; S=1 is the \
           passthrough (op-count-identical to plain NR)"
          params.Params.population;
      ];
  }

(* Cross-shard mix: how much two-key MGET/MSET traffic the coordinator
   sustains before its shard-ordered write locks dominate. *)
let multi_axis = [ 0; 1; 5; 20 ]

let mix_figure (params : Params.t) =
  let threads = min 56 (Params.max_threads params) in
  let update_pct = 100 in
  let series =
    List.map
      (fun (label, setup) ->
        Sweep.axis_series params ~label ~axis:multi_axis ~threads
          ~setup:(fun ~x rt -> setup ~multi_pct:x rt))
      [
        ( "NR",
          fun ~multi_pct rt ->
            setup_plain params ~multi_pct ~update_pct ~threads rt );
        ( "NR-shard S=4",
          fun ~multi_pct rt ->
            setup_sharded params ~shards:4 ~multi_pct ~update_pct ~threads rt
        );
      ]
  in
  {
    Table.id = "shard-mix";
    title = "cross-shard MGET/MSET mix vs throughput";
    x_label = "multi-key %";
    y_label = "ops/us";
    series;
    notes =
      [
        Printf.sprintf
          "100%% updates, %d threads; multi-key ops are two-key pairs \
           write-locking their shards in canonical order"
          threads;
      ];
  }

let figures params =
  [
    scaling_figure params ~id:"shard-a" ~update_pct:100;
    scaling_figure params ~id:"shard-b" ~update_pct:10;
    scaling_figure (Params.amd params) ~id:"shard-c" ~update_pct:100;
    scaling_figure (Params.amd params) ~id:"shard-d" ~update_pct:10;
    mix_figure params;
  ]

(** The methods compared throughout the paper's evaluation (fig. 4). *)

type t =
  | SL  (** one big spin lock *)
  | RWL  (** one big (distributed) readers-writer lock *)
  | FC  (** flat combining, machine-wide *)
  | FCplus  (** flat combining + readers-writer lock for reads *)
  | LF  (** lock-free algorithm (per-structure) *)
  | NA  (** NUMA-aware algorithm (stack only) *)
  | NR  (** node replication *)

let name = function
  | SL -> "SL"
  | RWL -> "RWL"
  | FC -> "FC"
  | FCplus -> "FC+"
  | LF -> "LF"
  | NA -> "NA"
  | NR -> "NR"

let of_name = function
  | "SL" | "sl" -> Some SL
  | "RWL" | "rwl" -> Some RWL
  | "FC" | "fc" -> Some FC
  | "FC+" | "fc+" | "FCplus" | "fcplus" -> Some FCplus
  | "LF" | "lf" -> Some LF
  | "NA" | "na" -> Some NA
  | "NR" | "nr" -> Some NR
  | _ -> None

(** Methods available for structures that only exist as sequential code. *)
let black_box = [ NR; FCplus; FC; RWL; SL ]

let pp ppf t = Format.pp_print_string ppf (name t)

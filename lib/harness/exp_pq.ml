(** Priority-queue experiments: figures 5 (skip-list PQ) and 6 (pairing
    heap) of the paper.  Workload from §8.1: generic add = insert(rnd, v),
    remove = deleteMin(), read = findMin(), with optional external work [e]
    between operations. *)

open Nr_seqds

module type PQ_DS = sig
  include
    Nr_core.Ds_intf.S with type op = Pq_ops.op and type result = Pq_ops.result

  val copy : t -> t
  (** Structural copy with identical future behaviour (including any
      internal PRNG state): lets the harness populate one master replica
      and stamp out the others instead of re-running every insert. *)
end

module Make_exp (Seq : PQ_DS) = struct
  module W = Families.Wrap (Seq)

  let populate (params : Params.t) (t : Seq.t) =
    let rng = Nr_workload.Prng.create ~seed:params.seed in
    let key_space = 2 * params.population in
    for _ = 1 to params.population do
      ignore
        (Seq.execute t
           (Pq_ops.Insert (Nr_workload.Prng.below rng key_space, 1)))
    done

  (* Replicas are populated identically (same seed), so build the first
     one by running the inserts and the rest as copies — replica
     construction is a large share of a sweep point's wall time. *)
  let factory params =
    let master = ref None in
    fun () ->
      match !master with
      | None ->
          let t = Seq.create () in
          populate params t;
          master := Some t;
          t
      | Some m -> Seq.copy m

  (* One thread's operation loop. *)
  let body (params : Params.t) ~update_pct ~e ~exec rt ~tid =
    let module R = (val rt : Nr_runtime.Runtime_intf.S) in
    let module Ework = Nr_workload.External_work.Make (R) in
    let key_space = 2 * params.population in
    let rng = Nr_workload.Prng.create ~seed:(params.seed + (tid * 7919) + 1) in
    let ew = Ework.create ~seed:(params.seed + tid) () in
    fun () ->
      (* fixed instruction cost of one benchmark iteration (op dispatch,
         loop, counters) on top of the structure's memory traffic *)
      R.work 25;
      (match Nr_workload.Op_mix.sample ~update_percent:update_pct rng with
      | Nr_workload.Op_mix.Add ->
          ignore (exec (Pq_ops.Insert (Nr_workload.Prng.below rng key_space, 1)))
      | Nr_workload.Op_mix.Remove -> ignore (exec Pq_ops.Delete_min)
      | Nr_workload.Op_mix.Read -> ignore (exec Pq_ops.Find_min));
      Ework.run ew e

  let setup_black_box params m ~update_pct ~e ~threads rt =
    let exec = W.build rt m ~threads ~factory:(factory params) () in
    body params ~update_pct ~e ~exec rt

  (* The lock-free skip-list priority queue (Lotan-Shavit over
     Herlihy-Shavit), prepopulated with the same key sequence. *)
  let setup_lf params ~update_pct ~e ~threads:_ rt =
    let module R = (val rt : Nr_runtime.Runtime_intf.S) in
    let module Lf = Nr_baselines.Lf_skiplist.Make (R) in
    let t = Lf.create ~home:0 () in
    let rng = Nr_workload.Prng.create ~seed:params.Params.seed in
    let key_space = 2 * params.Params.population in
    for _ = 1 to params.Params.population do
      ignore (Lf.add t (Nr_workload.Prng.below rng key_space) 1)
    done;
    let exec : Pq_ops.op -> Pq_ops.result = function
      | Pq_ops.Insert (k, v) -> Pq_ops.Inserted (Lf.add t k v)
      | Pq_ops.Delete_min -> Pq_ops.Removed (Lf.remove_min t)
      | Pq_ops.Find_min -> Pq_ops.Min (Lf.min t)
    in
    body params ~update_pct ~e ~exec rt

  let series params m ~update_pct ~e =
    match m with
    | Method.LF ->
        Sweep.threads_series params ~label:(Method.name m)
          ~setup:(setup_lf params ~update_pct ~e)
    | m ->
        Sweep.threads_series params ~label:(Method.name m)
          ~setup:(setup_black_box params m ~update_pct ~e)

  let scaling_figure params ~id ~title ~methods ~update_pct ~e =
    {
      Table.id;
      title;
      x_label = "threads";
      y_label = "ops/us";
      series = List.map (fun m -> series params m ~update_pct ~e) methods;
      notes =
        [
          Printf.sprintf
            "%d%% updates, e=%d, %d initial items, topology %s" update_pct e
            params.Params.population params.Params.topo.Nr_sim.Topology.name;
        ];
    }

  (* Panel (e): vary the external work at max threads. *)
  let external_work_figure params ~id ~title ~methods =
    let threads = Params.max_threads params in
    let axis = [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512 ] in
    let series =
      List.map
        (fun m ->
          Sweep.axis_series params ~label:(Method.name m) ~axis ~threads
            ~setup:(fun ~x rt ->
              match m with
              | Method.LF ->
                  setup_lf params ~update_pct:100 ~e:x ~threads rt
              | m ->
                  setup_black_box params m ~update_pct:100 ~e:x ~threads rt))
        methods
    in
    {
      Table.id;
      title;
      x_label = "work e";
      y_label = "ops/us";
      series;
      notes =
        [
          Printf.sprintf "100%% updates, %d threads, %d initial items" threads
            params.Params.population;
        ];
    }
end

module Sl_exp = Make_exp (Skiplist_pq)
module Ph_exp = Make_exp (Pairing_pq)

(* Figure 5: skip-list priority queue. *)
let fig5 params =
  let methods_lf = [ Method.NR; Method.LF; Method.FCplus; Method.FC; Method.RWL; Method.SL ] in
  [
    Sl_exp.scaling_figure params ~id:"fig5a"
      ~title:"skip list priority queue, 0% updates, e=0" ~methods:methods_lf
      ~update_pct:0 ~e:0;
    Sl_exp.scaling_figure params ~id:"fig5b"
      ~title:"skip list priority queue, 10% updates, e=0" ~methods:methods_lf
      ~update_pct:10 ~e:0;
    Sl_exp.scaling_figure params ~id:"fig5c"
      ~title:"skip list priority queue, 100% updates, e=0" ~methods:methods_lf
      ~update_pct:100 ~e:0;
    Sl_exp.scaling_figure params ~id:"fig5d"
      ~title:"skip list priority queue, 100% updates, e=512"
      ~methods:methods_lf ~update_pct:100 ~e:512;
    Sl_exp.external_work_figure params ~id:"fig5e"
      ~title:"skip list priority queue, 100% updates, max threads, varying e"
      ~methods:methods_lf;
  ]

(* Figure 6: pairing-heap priority queue (no lock-free pairing heap
   exists; the paper omits LF here too). *)
let fig6 params =
  let methods = Method.black_box in
  [
    Ph_exp.scaling_figure params ~id:"fig6a"
      ~title:"pairing heap priority queue, 10% updates, e=0" ~methods
      ~update_pct:10 ~e:0;
    Ph_exp.scaling_figure params ~id:"fig6b"
      ~title:"pairing heap priority queue, 100% updates, e=0" ~methods
      ~update_pct:100 ~e:0;
  ]

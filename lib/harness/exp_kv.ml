(** KV-store (Redis stand-in) experiments: paper fig. 11 (Intel) and
    fig. 12 (AMD).  One sorted set of 10k items; reads are ZRANK, updates
    ZINCRBY, driven directly at the command layer — the paper bypasses the
    RPC the same way (§8.3). *)

module W = Families.Wrap (Nr_kvstore.Store)

let items = 10_000
let zset_key = "leaderboard"

let factory () =
  let t = Nr_kvstore.Store.create () in
  for m = 0 to items - 1 do
    ignore
      (Nr_kvstore.Store.execute t (Nr_kvstore.Command.Zadd (zset_key, m * 7, m)))
  done;
  t

let body (params : Params.t) ~update_pct ~exec rt ~tid =
  let module R = (val rt : Nr_runtime.Runtime_intf.S) in
  let rng = Nr_workload.Prng.create ~seed:(params.seed + (tid * 7919) + 1) in
  fun () ->
    R.work 40;
    let member = Nr_workload.Prng.below rng items in
    if Nr_workload.Prng.below rng 100 < update_pct then
      ignore (exec (Nr_kvstore.Command.Zincrby (zset_key, 1, member)))
    else ignore (exec (Nr_kvstore.Command.Zrank (zset_key, member)))

let setup params m ~update_pct ~threads rt =
  let exec = W.build rt m ~threads ~factory () in
  body params ~update_pct ~exec rt

let figure params ~id ~title ~update_pct =
  {
    Table.id;
    title;
    x_label = "threads";
    y_label = "ops/us";
    series =
      List.map
        (fun m ->
          Sweep.threads_series params ~label:(Method.name m)
            ~setup:(setup params m ~update_pct))
        Method.black_box;
    notes =
      [
        Printf.sprintf
          "sorted set of %d items; ZRANK reads / ZINCRBY updates (%d%%); \
           topology %s"
          items update_pct params.Params.topo.Nr_sim.Topology.name;
      ];
  }

let fig11 params =
  [
    figure params ~id:"fig11a" ~title:"KV store sorted set, 10% updates"
      ~update_pct:10;
    figure params ~id:"fig11b" ~title:"KV store sorted set, 50% updates"
      ~update_pct:50;
    figure params ~id:"fig11c" ~title:"KV store sorted set, 100% updates"
      ~update_pct:100;
  ]

let fig12 params =
  let params = Params.amd params in
  [
    figure params ~id:"fig12a"
      ~title:"KV store sorted set, 10% updates (AMD topology)" ~update_pct:10;
    figure params ~id:"fig12b"
      ~title:"KV store sorted set, 50% updates (AMD topology)" ~update_pct:50;
    figure params ~id:"fig12c"
      ~title:"KV store sorted set, 100% updates (AMD topology)"
      ~update_pct:100;
  ]

(** Registry tying every table and figure of the paper's evaluation to the
    code that regenerates it. *)

type group = {
  id : string;
  description : string;
  run : Params.t -> unit;  (** compute and print *)
}

let print_figures figs = List.iter Table.print figs

let groups =
  [
    {
      id = "fig5";
      description = "skip list priority queue (5 panels)";
      run = (fun p -> print_figures (Exp_pq.fig5 p));
    };
    {
      id = "fig6";
      description = "pairing heap priority queue";
      run = (fun p -> print_figures (Exp_pq.fig6 p));
    };
    {
      id = "fig7";
      description = "skip list dictionary, uniform and zipf keys";
      run = (fun p -> print_figures (Exp_dict.fig7 p));
    };
    {
      id = "fig8";
      description = "stack, including the NUMA-aware baseline";
      run = (fun p -> print_figures (Exp_stack.fig8 p));
    };
    {
      id = "fig9";
      description = "synthetic structure scalability";
      run = (fun p -> print_figures (Exp_synthetic.fig9 p));
    };
    {
      id = "fig10";
      description = "NR speedup vs lines accessed per operation";
      run = (fun p -> print_figures (Exp_synthetic.fig10 p));
    };
    {
      id = "fig-size";
      description = "structure size sweep (paper sec. 8.2.3)";
      run = (fun p -> print_figures (Exp_synthetic.fig_size p));
    };
    {
      id = "fig11";
      description = "KV store sorted sets (Intel topology)";
      run = (fun p -> print_figures (Exp_kv.fig11 p));
    };
    {
      id = "fig12";
      description = "KV store sorted sets (AMD topology)";
      run = (fun p -> print_figures (Exp_kv.fig12 p));
    };
    {
      id = "fig14";
      description = "ablation: disabling NR's techniques";
      run = (fun p -> print_figures (Exp_ablation.fig14 p));
    };
    {
      id = "memory";
      description = "memory tables (figs. 5f, 6c, 7e)";
      run = Memsize.print;
    };
    {
      id = "tuning";
      description = "ablations of this implementation's own knobs";
      run = (fun p -> print_figures (Exp_tuning.tuning p));
    };
    {
      id = "faults";
      description = "fault injection: stall length vs throughput/p99";
      run = (fun p -> print_figures (Exp_faults.figures p));
    };
    {
      id = "cna";
      description = "CNA lock + optimistic reads: read ceiling, handoff, threshold";
      run = (fun p -> print_figures (Exp_cna.figures p));
    };
    {
      id = "shard";
      description = "sharded NR: shard count x threads x update ratio";
      run = (fun p -> print_figures (Exp_shard.figures p));
    };
    {
      id = "durable";
      description = "durability: fsync batching and recovery cost";
      run = (fun p -> print_figures (Exp_durable.figures p));
    };
    {
      id = "txn";
      description = "transactions: compound EXEC entry vs N logged commands";
      run = (fun p -> print_figures (Exp_txn.figures p));
    };
  ]

let ids () = List.map (fun g -> g.id) groups
let find id = List.find_opt (fun g -> g.id = id) groups

let run_all params =
  List.iter
    (fun g ->
      Format.printf "=== %s: %s ===@." g.id g.description;
      g.run params)
    groups

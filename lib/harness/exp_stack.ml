(** Stack experiment (paper fig. 8): push/pop only — maximal operation
    contention — including the two structure-specific baselines, Treiber's
    lock-free stack (LF) and the NUMA-aware elimination stack (NA). *)

open Nr_seqds

module W = Families.Wrap (Stack_ds)

let factory (params : Params.t) () =
  let t = Stack_ds.create () in
  for i = 1 to params.population do
    ignore (Stack_ds.execute t (Stack_ops.Push i))
  done;
  t

let body (params : Params.t) ~exec rt ~tid =
  let module R = (val rt : Nr_runtime.Runtime_intf.S) in
  let rng = Nr_workload.Prng.create ~seed:(params.seed + (tid * 7919) + 1) in
  fun () ->
    R.work 25;
    if Nr_workload.Prng.bool rng then
      ignore (exec (Stack_ops.Push (Nr_workload.Prng.below rng 1000000)))
    else ignore (exec Stack_ops.Pop)

let setup_black_box params m ~threads rt =
  let exec = W.build rt m ~threads ~factory:(factory params) () in
  body params ~exec rt

let setup_lf (params : Params.t) ~threads:_ rt =
  let module R = (val rt : Nr_runtime.Runtime_intf.S) in
  let module Lf = Nr_baselines.Lf_stack.Make (R) in
  let t = Lf.create ~home:0 () in
  for i = 1 to params.Params.population do
    Lf.push t i
  done;
  let exec : Stack_ops.op -> Stack_ops.result = function
    | Stack_ops.Push v ->
        Lf.push t v;
        Stack_ops.Pushed
    | Stack_ops.Pop -> Stack_ops.Popped (Lf.pop t)
  in
  body params ~exec rt

let setup_na (params : Params.t) ~threads:_ rt =
  let module R = (val rt : Nr_runtime.Runtime_intf.S) in
  let module Na = Nr_baselines.Na_stack.Make (R) in
  let t = Na.create ~home:0 () in
  for _ = 1 to params.Params.population do
    Na.push t 1
  done;
  let exec : Stack_ops.op -> Stack_ops.result = function
    | Stack_ops.Push v ->
        Na.push t v;
        Stack_ops.Pushed
    | Stack_ops.Pop -> Stack_ops.Popped (Na.pop t)
  in
  body params ~exec rt

let fig8 params =
  let series m =
    match m with
    | Method.LF ->
        Sweep.threads_series params ~label:(Method.name m)
          ~setup:(setup_lf params)
    | Method.NA ->
        Sweep.threads_series params ~label:(Method.name m)
          ~setup:(setup_na params)
    | m ->
        Sweep.threads_series params ~label:(Method.name m)
          ~setup:(setup_black_box params m)
  in
  [
    {
      Table.id = "fig8";
      title = "stack (push/pop, 100% updates)";
      x_label = "threads";
      y_label = "ops/us";
      series =
        List.map series
          [
            Method.NA;
            Method.NR;
            Method.FC;
            Method.FCplus;
            Method.LF;
            Method.SL;
            Method.RWL;
          ];
      notes =
        [
          Printf.sprintf "%d initial items; NA uses per-node elimination"
            params.Params.population;
        ];
    };
  ]

(** Experiment driver.

    [run_sim] executes one benchmark point on the simulator: it builds the
    structures through a setup callback (pre-run, so construction is free),
    spawns [threads] simulated threads under the topology's fill-node-first
    placement, and counts operations completed during the virtual-time
    measurement window.  Throughput is ops per virtual microsecond — the
    unit of every figure in the paper.

    [run_domains] is the analogous wall-clock loop over real domains, used
    by examples and cross-runtime tests (this container has one core, so
    its absolute numbers mean little).

    Both runners bracket the run with {!Nr_core.Stats} collection, so any
    NR instance the setup builds surfaces its combiner counters in the
    result; with [~latency:true] they additionally record per-operation
    latency histograms (virtual cycles / wall nanoseconds, reported in
    microseconds); and when [Nr_obs.Sink.request_metrics] is set they print
    a unified metrics dump to stderr after the point — one reporting path
    for both runtimes. *)

type latency = {
  p50_us : float;
  p90_us : float;
  p99_us : float;
  p999_us : float;
  hist : Nr_obs.Histogram.t;  (** raw distribution, unit as recorded *)
}

type result = {
  threads : int;
  total_ops : int;
  measure_us : float;
  ops_per_us : float;
  cas_failures : int;
  remote_transfers : int;
  nr_stats : Nr_core.Stats.t option;
  latency : latency option;
  fault_stats : Nr_sim.Fault_plan.stats option;
}

(* Summarize a histogram recorded in [unit_per_us]-ths of a microsecond. *)
let summarize_latency hist ~unit_per_us =
  if Nr_obs.Histogram.count hist = 0 then None
  else
    let q p = float_of_int (Nr_obs.Histogram.quantile hist p) /. unit_per_us in
    Some
      { p50_us = q 0.5; p90_us = q 0.9; p99_us = q 0.99; p999_us = q 0.999;
        hist }

(* The single reporting path shared by both runtimes: build a registry
   from whatever the run produced and dump it to stderr (stdout carries
   the tables). *)
let emit_metrics ~label r ~sim_stats =
  if Nr_obs.Sink.metrics_requested () then begin
    let reg = Nr_obs.Metrics.create () in
    Nr_obs.Metrics.int_gauge reg ~name:"run_threads" (fun () -> r.threads);
    Nr_obs.Metrics.counter reg ~name:"run_total_ops" (fun () -> r.total_ops);
    Nr_obs.Metrics.gauge reg ~name:"run_ops_per_us" (fun () -> r.ops_per_us);
    (match sim_stats with
    | Some s -> Nr_sim.Sim_stats.register_metrics reg s
    | None -> ());
    (match r.nr_stats with
    | Some s -> Nr_core.Stats.register_metrics reg s
    | None -> ());
    (match r.latency with
    | Some l -> Nr_obs.Metrics.histogram reg ~name:"op_latency" l.hist
    | None -> ());
    Format.eprintf "# metrics %s@.%a@." label Nr_obs.Metrics.dump reg
  end

let run_sim ~topo ?costs ?faults ?(latency = false) ~threads ~warmup_us
    ~measure_us setup =
  if threads < 1 || threads > Nr_sim.Topology.max_threads topo then
    invalid_arg "Driver.run_sim: thread count out of range for topology";
  let sched = Nr_sim.Sched.create ?costs topo in
  (match faults with
  | Some plan -> Nr_sim.Sched.set_fault_plan sched (Some plan)
  | None -> ());
  let rt = Nr_runtime.Runtime_sim.make sched in
  Nr_core.Stats.start_collection ();
  let gen = setup rt in
  let cpu = Nr_sim.Topology.cycles_per_us topo in
  let warm_cycles = int_of_float (warmup_us *. cpu) in
  let stop_cycles = int_of_float ((warmup_us +. measure_us) *. cpu) in
  let ops = Array.make threads 0 in
  let hist = if latency then Some (Nr_obs.Histogram.create ()) else None in
  for tid = 0 to threads - 1 do
    let body = gen ~tid in
    Nr_sim.Sched.spawn sched ~tid (fun () ->
        match hist with
        | None ->
            let rec loop () =
              let t = Nr_sim.Sched.now () in
              if t < stop_cycles then begin
                body ();
                if t >= warm_cycles then ops.(tid) <- ops.(tid) + 1;
                loop ()
              end
            in
            loop ()
        | Some h ->
            (* latency variant: also charge-free timestamps around the op;
               the simulator is single-threaded, so one histogram is safe *)
            let rec loop () =
              let t = Nr_sim.Sched.now () in
              if t < stop_cycles then begin
                body ();
                if t >= warm_cycles then begin
                  ops.(tid) <- ops.(tid) + 1;
                  Nr_obs.Histogram.record h (Nr_sim.Sched.now () - t)
                end;
                loop ()
              end
            in
            loop ())
  done;
  Nr_sim.Sched.run sched;
  let total_ops = Array.fold_left ( + ) 0 ops in
  let stats = Nr_sim.Sched.stats sched in
  let r =
    {
      threads;
      total_ops;
      measure_us;
      ops_per_us = float_of_int total_ops /. measure_us;
      cas_failures = stats.Nr_sim.Sim_stats.cas_failures;
      remote_transfers = Nr_sim.Sim_stats.remote_transfers stats;
      nr_stats = Nr_core.Stats.collect ();
      latency =
        (match hist with
        | Some h -> summarize_latency h ~unit_per_us:cpu
        | None -> None);
      fault_stats = Nr_sim.Sched.fault_stats sched;
    }
  in
  emit_metrics ~label:(Printf.sprintf "(sim, %d threads)" threads) r
    ~sim_stats:(Some stats);
  r

let run_domains ~topo ?(latency = false) ~threads ~warmup_s ~measure_s setup =
  if threads < 1 then invalid_arg "Driver.run_domains: threads must be >= 1";
  let rt = Nr_runtime.Runtime_domains.make topo in
  Nr_core.Stats.start_collection ();
  let gen = setup rt in
  let ops = Array.make threads 0 in
  let hists =
    if latency then
      Some (Array.init threads (fun _ -> Nr_obs.Histogram.create ()))
    else None
  in
  let t0 = Unix.gettimeofday () in
  let warm_t = t0 +. warmup_s in
  let stop_t = warm_t +. measure_s in
  Nr_runtime.Runtime_domains.parallel_run ~nthreads:threads (fun tid ->
      let body = gen ~tid in
      let counted = ref 0 in
      (match hists with
      | None ->
          let rec loop () =
            (* amortize the clock syscall over a few operations *)
            let now = Unix.gettimeofday () in
            if now < stop_t then begin
              for _ = 1 to 8 do
                body ();
                if now >= warm_t then incr counted
              done;
              loop ()
            end
          in
          loop ()
      | Some hists ->
          (* latency variant: per-op clock reads into a per-thread
             histogram (nanoseconds), merged after the run *)
          let h = hists.(tid) in
          let rec loop () =
            let now = Unix.gettimeofday () in
            if now < stop_t then begin
              let t0 = Nr_obs.Clock.now_ns () in
              body ();
              if now >= warm_t then begin
                incr counted;
                Nr_obs.Histogram.record h (Nr_obs.Clock.elapsed_ns ~since:t0)
              end;
              loop ()
            end
          in
          loop ());
      ops.(tid) <- !counted);
  let total_ops = Array.fold_left ( + ) 0 ops in
  let measure_us = measure_s *. 1e6 in
  let r =
    {
      threads;
      total_ops;
      measure_us;
      ops_per_us = float_of_int total_ops /. measure_us;
      cas_failures = 0;
      remote_transfers = 0;
      nr_stats = Nr_core.Stats.collect ();
      latency =
        (match hists with
        | Some hs ->
            let acc = Nr_obs.Histogram.create () in
            Array.iter (fun h -> Nr_obs.Histogram.merge ~into:acc h) hs;
            summarize_latency acc ~unit_per_us:1000.0
        | None -> None);
      fault_stats = None;
    }
  in
  emit_metrics ~label:(Printf.sprintf "(domains, %d threads)" threads) r
    ~sim_stats:None;
  r

(** Experiment driver.

    [run_sim] executes one benchmark point on the simulator: it builds the
    structures through a setup callback (pre-run, so construction is free),
    spawns [threads] simulated threads under the topology's fill-node-first
    placement, and counts operations completed during the virtual-time
    measurement window.  Throughput is ops per virtual microsecond — the
    unit of every figure in the paper.

    [run_domains] is the analogous wall-clock loop over real domains, used
    by examples and cross-runtime tests (this container has one core, so
    its absolute numbers mean little). *)

type result = {
  threads : int;
  total_ops : int;
  measure_us : float;
  ops_per_us : float;
  cas_failures : int;
  remote_transfers : int;
}

let run_sim ~topo ?costs ~threads ~warmup_us ~measure_us setup =
  if threads < 1 || threads > Nr_sim.Topology.max_threads topo then
    invalid_arg "Driver.run_sim: thread count out of range for topology";
  let sched = Nr_sim.Sched.create ?costs topo in
  let rt = Nr_runtime.Runtime_sim.make sched in
  let gen = setup rt in
  let cpu = Nr_sim.Topology.cycles_per_us topo in
  let warm_cycles = int_of_float (warmup_us *. cpu) in
  let stop_cycles = int_of_float ((warmup_us +. measure_us) *. cpu) in
  let ops = Array.make threads 0 in
  for tid = 0 to threads - 1 do
    let body = gen ~tid in
    Nr_sim.Sched.spawn sched ~tid (fun () ->
        let rec loop () =
          let t = Nr_sim.Sched.now () in
          if t < stop_cycles then begin
            body ();
            if t >= warm_cycles then ops.(tid) <- ops.(tid) + 1;
            loop ()
          end
        in
        loop ())
  done;
  Nr_sim.Sched.run sched;
  let total_ops = Array.fold_left ( + ) 0 ops in
  let stats = Nr_sim.Sched.stats sched in
  {
    threads;
    total_ops;
    measure_us;
    ops_per_us = float_of_int total_ops /. measure_us;
    cas_failures = stats.Nr_sim.Sim_stats.cas_failures;
    remote_transfers = Nr_sim.Sim_stats.remote_transfers stats;
  }

let run_domains ~topo ~threads ~warmup_s ~measure_s setup =
  if threads < 1 then invalid_arg "Driver.run_domains: threads must be >= 1";
  let rt = Nr_runtime.Runtime_domains.make topo in
  let gen = setup rt in
  let ops = Array.make threads 0 in
  let t0 = Unix.gettimeofday () in
  let warm_t = t0 +. warmup_s in
  let stop_t = warm_t +. measure_s in
  Nr_runtime.Runtime_domains.parallel_run ~nthreads:threads (fun tid ->
      let body = gen ~tid in
      let counted = ref 0 in
      let rec loop () =
        (* amortize the clock syscall over a few operations *)
        let now = Unix.gettimeofday () in
        if now < stop_t then begin
          for _ = 1 to 8 do
            body ();
            if now >= warm_t then incr counted
          done;
          loop ()
        end
      in
      loop ();
      ops.(tid) <- !counted);
  let total_ops = Array.fold_left ( + ) 0 ops in
  let measure_us = measure_s *. 1e6 in
  {
    threads;
    total_ops;
    measure_us;
    ops_per_us = float_of_int total_ops /. measure_us;
    cas_failures = 0;
    remote_transfers = 0;
  }

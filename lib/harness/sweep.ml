(** Generic sweep helpers: run one setup across the thread-count axis (the
    x-axis of most figures) or across an arbitrary parameter axis.  When
    the params ask for latency, each point carries its p50/p99 for the
    table's extra columns. *)

let point_of_result ~x (r : Driver.result) =
  {
    Table.x;
    y = r.Driver.ops_per_us;
    lat =
      (match r.Driver.latency with
      | Some l -> Some (l.Driver.p50_us, l.Driver.p99_us)
      | None -> None);
  }

let threads_series (params : Params.t) ~label
    ~(setup : threads:int -> Nr_runtime.Runtime_intf.t -> tid:int -> unit -> unit)
    : Table.series =
  let points =
    List.map
      (fun threads ->
        let r =
          Driver.run_sim ~topo:params.Params.topo
            ~latency:params.Params.latency ~threads
            ~warmup_us:params.Params.warmup_us
            ~measure_us:params.Params.measure_us (setup ~threads)
        in
        point_of_result ~x:threads r)
      params.Params.threads
  in
  { Table.label; points }

let axis_series (params : Params.t) ~label ~axis ~threads
    ~(setup : x:int -> Nr_runtime.Runtime_intf.t -> tid:int -> unit -> unit) :
    Table.series =
  let points =
    List.map
      (fun x ->
        let r =
          Driver.run_sim ~topo:params.Params.topo
            ~latency:params.Params.latency ~threads
            ~warmup_us:params.Params.warmup_us
            ~measure_us:params.Params.measure_us (setup ~x)
        in
        point_of_result ~x r)
      axis
  in
  { Table.label; points }

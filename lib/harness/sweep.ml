(** Generic sweep helpers: run one setup across the thread-count axis (the
    x-axis of most figures) or across an arbitrary parameter axis. *)

let threads_series (params : Params.t) ~label
    ~(setup : threads:int -> Nr_runtime.Runtime_intf.t -> tid:int -> unit -> unit)
    : Table.series =
  let points =
    List.map
      (fun threads ->
        let r =
          Driver.run_sim ~topo:params.Params.topo ~threads
            ~warmup_us:params.Params.warmup_us
            ~measure_us:params.Params.measure_us (setup ~threads)
        in
        { Table.x = threads; y = r.Driver.ops_per_us })
      params.Params.threads
  in
  { Table.label; points }

let axis_series (params : Params.t) ~label ~axis ~threads
    ~(setup : x:int -> Nr_runtime.Runtime_intf.t -> tid:int -> unit -> unit) :
    Table.series =
  let points =
    List.map
      (fun x ->
        let r =
          Driver.run_sim ~topo:params.Params.topo ~threads
            ~warmup_us:params.Params.warmup_us
            ~measure_us:params.Params.measure_us (setup ~x)
        in
        { Table.x; y = r.Driver.ops_per_us })
      axis
  in
  { Table.label; points }

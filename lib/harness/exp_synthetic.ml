(** Synthetic-structure experiments (paper §8.2): an n-entry buffer where
    every operation touches c entries, one of them shared by all
    operations.  Covers fig. 9 (scalability), fig. 10 (NR's advantage vs
    data accessed per operation) and the §8.2.3 structure-size study. *)

let default_n = 200_000
let default_c = 8

(* Build the concurrent executor and the thread body for one run.  The
   synthetic structure's parameters arrive via a locally instantiated
   functor, so each run gets its own op type — everything stays inside
   this function's scope. *)
let setup ~n ~c (m : Method.t) (params : Params.t) ~update_pct ~threads rt =
  let module Seq = Nr_seqds.Synthetic.Make (struct
    let n = n
    let c = c
  end) in
  let module W = Families.Wrap (Seq) in
  let exec = W.build rt m ~threads ~factory:Seq.create () in
  let module R = (val rt : Nr_runtime.Runtime_intf.S) in
  fun ~tid ->
    let rng = Nr_workload.Prng.create ~seed:(params.seed + (tid * 7919) + 1) in
    fun () ->
      R.work 25;
      let key = Nr_workload.Prng.next rng in
      match Nr_workload.Op_mix.sample ~update_percent:update_pct rng with
      | Nr_workload.Op_mix.Add | Nr_workload.Op_mix.Remove ->
          ignore (exec (Seq.Update key))
      | Nr_workload.Op_mix.Read -> ignore (exec (Seq.Read key))

let methods = Method.black_box

let scaling_figure params ~id ~title ~update_pct =
  {
    Table.id;
    title;
    x_label = "threads";
    y_label = "ops/us";
    series =
      List.map
        (fun m ->
          Sweep.threads_series params ~label:(Method.name m)
            ~setup:(setup ~n:default_n ~c:default_c m params ~update_pct))
        methods;
    notes =
      [
        Printf.sprintf "n=%d entries, c=%d lines/op, %d%% updates" default_n
          default_c update_pct;
      ];
  }

let fig9 params =
  [
    scaling_figure params ~id:"fig9a"
      ~title:"synthetic structure, 10% updates" ~update_pct:10;
    scaling_figure params ~id:"fig9b"
      ~title:"synthetic structure, 100% updates" ~update_pct:100;
  ]

(* Fig. 10: the y value is NR's throughput divided by each other method's,
   at max threads, as c varies. *)
let fig10 params =
  let threads = Params.max_threads params in
  let axis = [ 1; 2; 4; 8; 16; 32; 64 ] in
  let run m ~update_pct =
    Sweep.axis_series params ~label:(Method.name m) ~axis ~threads
      ~setup:(fun ~x rt ->
        setup ~n:default_n ~c:x m params ~update_pct ~threads rt)
  in
  let panel ~id ~title ~update_pct =
    let nr = run Method.NR ~update_pct in
    let others =
      List.filter (fun m -> m <> Method.NR) methods
      |> List.map (fun m -> run m ~update_pct)
    in
    let ratio (s : Table.series) =
      {
        s with
        Table.points =
          List.map
            (fun (p : Table.point) ->
              let nr_y =
                match Table.value_at nr p.Table.x with
                | Some y -> y
                | None -> nan
              in
              { p with Table.y = (if p.Table.y > 0.0 then nr_y /. p.Table.y else nan) })
            s.Table.points;
      }
    in
    {
      Table.id;
      title;
      x_label = "lines/op c";
      y_label = "NR speedup (x)";
      series = List.map ratio others;
      notes =
        [
          Printf.sprintf "%d threads, n=%d; y = NR throughput / method's"
            threads default_n;
        ];
    }
  in
  [
    panel ~id:"fig10a" ~title:"NR improvement vs lines accessed, 10% updates"
      ~update_pct:10;
    panel ~id:"fig10b" ~title:"NR improvement vs lines accessed, 100% updates"
      ~update_pct:100;
  ]

(* §8.2.3: effect of structure size; runs at max threads, extreme c. *)
let fig_size params =
  let threads = Params.max_threads params in
  let axis = [ 2_000; 20_000; 200_000; 2_000_000 ] in
  let panel ~id ~title ~c ~update_pct =
    {
      Table.id;
      title;
      x_label = "entries n";
      y_label = "ops/us";
      series =
        List.map
          (fun m ->
            Sweep.axis_series params ~label:(Method.name m) ~axis ~threads
              ~setup:(fun ~x rt ->
                setup ~n:x ~c m params ~update_pct ~threads rt))
          methods;
      notes =
        [
          Printf.sprintf
            "%d threads, c=%d, %d%% updates; L3 holds ~573k lines" threads c
            update_pct;
        ];
    }
  in
  [
    panel ~id:"size-c1-u100" ~title:"structure size sweep, c=1, 100% updates"
      ~c:1 ~update_pct:100;
    panel ~id:"size-c64-u10" ~title:"structure size sweep, c=64, 10% updates"
      ~c:64 ~update_pct:10;
  ]

(** Build a concurrent instance of a black-box sequential structure under
    any of the paper's generic methods, against any runtime.  Lock-free and
    NUMA-aware baselines are structure-specific and built directly by the
    experiments. *)

module Wrap (Seq : Nr_core.Ds_intf.S) = struct
  (** [build rt method_ ~factory] returns the concurrent executor.  The
      factory must be deterministic: NR calls it once per node to build
      identical replicas. *)
  let build (rt : Nr_runtime.Runtime_intf.t) (m : Method.t)
      ?(cfg = Nr_core.Config.default) ?threads ~(factory : unit -> Seq.t) () :
      Seq.op -> Seq.result =
    let module R = (val rt) in
    match m with
    | Method.SL ->
        let module M = Nr_baselines.Single_lock.Make (R) (Seq) in
        let t = M.create factory in
        M.execute t
    | Method.RWL ->
        let module M = Nr_baselines.Rwl_ds.Make (R) (Seq) in
        let t = M.create factory in
        M.execute t
    | Method.FC ->
        let module M = Nr_baselines.Fc_ds.Make (R) (Seq) in
        let t = M.create ~rw_reads:false ?slots:threads factory in
        M.execute t
    | Method.FCplus ->
        let module M = Nr_baselines.Fc_ds.Make (R) (Seq) in
        let t = M.create ~rw_reads:true ?slots:threads factory in
        M.execute t
    | Method.NR ->
        let module M = Nr_core.Node_replication.Make (R) (Seq) in
        let t = M.create ~cfg factory in
        M.execute t
    | Method.LF | Method.NA ->
        invalid_arg
          (Printf.sprintf
             "Families.Wrap: %s is structure-specific, not black-box"
             (Method.name m))
end

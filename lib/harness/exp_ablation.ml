(** Ablation study (paper §8.5, figs. 13-14): disable each of NR's five
    techniques in turn and measure the throughput loss on the skip-list
    priority queue at max threads. *)

open Nr_core

type technique = {
  index : int;
  label : string;
  cfg : Config.t;  (** NR config with the technique disabled *)
}

let techniques =
  [
    {
      index = 1;
      label = "#1 flat combining";
      cfg = { Config.default with flat_combining = false };
    };
    {
      index = 2;
      label = "#2 read optimization";
      cfg = { Config.default with read_optimization = false };
    };
    {
      index = 3;
      label = "#3 separate replica lock";
      cfg = { Config.default with separate_replica_lock = false };
    };
    {
      index = 4;
      label = "#4 parallel replicas update";
      cfg = { Config.default with parallel_replica_update = false };
    };
    {
      index = 5;
      label = "#5 better readers-writer lock";
      cfg = { Config.default with distributed_rwlock = false };
    };
  ]

module Pq = Exp_pq.Sl_exp

let throughput params ~cfg ~update_pct =
  let threads = Params.max_threads params in
  let r =
    Driver.run_sim ~topo:params.Params.topo ~threads
      ~warmup_us:params.Params.warmup_us ~measure_us:params.Params.measure_us
      (fun rt ->
        let module W = Families.Wrap (Nr_seqds.Skiplist_pq) in
        let exec =
          W.build rt Method.NR ~cfg ~threads ~factory:(Pq.factory params) ()
        in
        Pq.body params ~update_pct ~e:0 ~exec rt)
  in
  r.Driver.ops_per_us

(* One series per workload; x = technique index, y = % throughput loss
   relative to full NR. *)
let fig14 params =
  let workloads = [ (10, "10% update"); (100, "100% update") ] in
  let series =
    List.map
      (fun (update_pct, label) ->
        let full = throughput params ~cfg:Config.default ~update_pct in
        let points =
          List.map
            (fun t ->
              let y = throughput params ~cfg:t.cfg ~update_pct in
              let loss =
                if full > 0.0 then 100.0 *. (full -. y) /. full else nan
              in
              { Table.x = t.index; y = loss; lat = None })
            techniques
        in
        { Table.label; points })
      workloads
  in
  [
    {
      Table.id = "fig14";
      title = "throughput loss when disabling each NR technique";
      x_label = "technique#";
      y_label = "% loss";
      series;
      notes =
        List.map (fun t -> Printf.sprintf "%d = %s" t.index t.label) techniques
        @ [
            Printf.sprintf "skip list priority queue, %d threads"
              (Params.max_threads params);
          ];
    };
  ]

(** Schedule explorer: enumerate distinct interleavings of one workload
    and check every recorded history for linearizability.

    One run point is the tuple (topology, threads, seed, salt, plan):
    [seed] draws each thread's operation stream, [salt] perturbs the
    scheduler's same-time tie-break ({!Nr_sim.Sched.set_tie_break}), and
    [plan] names a fault-plan family member — preemption-point
    injection, long stalls that force combiner steals, thread deaths —
    built on {!Nr_sim.Fault_plan}.  The simulator is deterministic, so a
    violation replays byte-identically from its tuple; counterexamples
    carry the exact [lincheck replay] invocation that reproduces them. *)

module FP = Nr_sim.Fault_plan
module T = Nr_sim.Topology
module Method = Nr_harness.Method

(* {2 Engines} *)

type engine =
  | Nr
  | Nr_cna  (** NR + CNA combiner lock + optimistic seqlock reads *)
  | Nr_robust
  | Nr_robust_opt  (** hardened NR + CNA writer lock + optimistic reads *)
  | Sharded
  | Fc
  | Fcplus
  | Rwl
  | Sl
  | Lf
  | Na

let all_engines =
  [ Nr; Nr_cna; Nr_robust; Nr_robust_opt; Sharded; Fc; Fcplus; Rwl; Sl; Lf; Na ]

let engine_name = function
  | Nr -> "NR"
  | Nr_cna -> "NR-cna"
  | Nr_robust -> "NR-robust"
  | Nr_robust_opt -> "NR-robust-opt"
  | Sharded -> "NR-shard"
  | Fc -> "FC"
  | Fcplus -> "FC+"
  | Rwl -> "RWL"
  | Sl -> "SL"
  | Lf -> "LF"
  | Na -> "NA"

let engine_of_name s =
  List.find_opt
    (fun e -> String.lowercase_ascii (engine_name e) = String.lowercase_ascii s)
    all_engines

(* {2 Fault-plan families}

   Parsed from compact specs so a counterexample tuple stays one line.
   Magnitudes follow the chaos suite: stalls long past the robust
   patience window force handoffs/steals, probabilities keep quick runs
   quick. *)

let plan_of_spec ~spec : FP.t option =
  match String.split_on_char ':' spec with
  | [ "none" ] -> None
  | [ kind; s ] -> (
      match int_of_string_opt s with
      | None -> invalid_arg ("Explore: bad plan seed in " ^ spec)
      | Some seed -> (
          match kind with
          | "jitter" ->
              Some { FP.none with seed; jitter_prob = 0.2; jitter_max = 400 }
          | "preempt" ->
              Some
                {
                  FP.none with
                  seed;
                  preempt_prob = 0.002;
                  preempt_cycles = 20_000;
                }
          | "storm" ->
              (* dense short preemptions: many narrow suspension windows,
                 the family that flushes out single-charge race windows
                 (e.g. a seqlock validation skipped between an unlocked
                 read and its freshness check) *)
              Some
                {
                  FP.none with
                  seed;
                  preempt_prob = 0.05;
                  preempt_cycles = 5_000;
                }
          | "stall" ->
              Some
                { FP.none with seed; stall_prob = 0.002; stall_cycles = 50_000 }
          | "steal" ->
              (* stalls far past [slot_patience] backoff rounds: waiters
                 dispossess the combiner — robust engines only *)
              Some
                {
                  FP.none with
                  seed;
                  stall_prob = 0.001;
                  stall_cycles = 5_000_000;
                }
          | "death" ->
              Some
                {
                  FP.none with
                  seed;
                  stall_prob = 0.0005;
                  stall_cycles = 1_000_000;
                  kill_prob = 0.0005;
                  horizon = 1_000_000_000;
                }
          | _ -> invalid_arg ("Explore: unknown plan family " ^ spec)))
  | _ -> invalid_arg ("Explore: bad plan spec " ^ spec)

(* Steals and deaths assume the hardened protocol: a plain engine whose
   combiner is killed spins its peers until the horizon reaper fires,
   which proves nothing about linearizability and wastes the budget. *)
let plan_allows ~spec engine =
  match String.split_on_char ':' spec with
  | ("steal" | "death") :: _ -> engine = Nr_robust || engine = Nr_robust_opt
  | _ -> true

(* The flag each seeded mutation answers to in a replay invocation: the
   txn substrate plants its bug in the store itself (reads purge expired
   keys without logging), sharded builds plant the router bypass,
   optimistic-read builds skip the seqlock validation, plain NR builds
   the stale read. *)
let mutation_flag ~substrate ~engine =
  if substrate = "txn" then " --mutate-expire-skip-log"
  else
    match engine with
    | "NR-shard" -> " --mutate-router-bypass"
    | "NR-cna" | "NR-robust-opt" -> " --mutate-skip-read-validate"
    | _ -> " --mutate-stale-reads"

let topo_of_name = function
  | "tiny" -> T.tiny
  | "amd" -> T.amd
  | "intel" -> T.intel
  | s -> invalid_arg ("Explore: unknown topology " ^ s)

(* {2 Counterexamples} *)

type cx = {
  substrate : string;
  engine : string;
  topo : string;
  threads : int;
  seed : int;
  salt : int;
  plan : string;
  ops_per_thread : int;
  key_space : int;
  mutation : bool;
  history : string;  (** pretty-printed minimal failing history *)
}

let replay_command cx =
  Printf.sprintf
    "lincheck replay -d %s -e %s -t %s --threads %d --seed %d --salt %d \
     --plan %s --ops %d --keys %d%s"
    cx.substrate cx.engine cx.topo cx.threads cx.seed cx.salt cx.plan
    cx.ops_per_thread cx.key_space
    (if cx.mutation then mutation_flag ~substrate:cx.substrate ~engine:cx.engine
     else "")

let pp_cx ppf cx =
  Format.fprintf ppf
    "NOT LINEARIZABLE: %s/%s on %s (threads=%d seed=%d salt=%d plan=%s)@.\
     minimal failing history:@.%s\
     replay with:@.  %s@."
    cx.substrate cx.engine cx.topo cx.threads cx.seed cx.salt cx.plan
    cx.history (replay_command cx)

type run_stats = { steals : int; kills : int }

type sweep_result = {
  checked : int;  (** histories run and checked *)
  steals : int;  (** combiner steals observed across the sweep *)
  kills : int;  (** thread deaths injected across the sweep *)
  counterexample : cx option;
}

(* {2 The per-substrate runner} *)

module type SUBSTRATE = sig
  module Seq : Nr_core.Ds_intf.S
  module Spec :
    Spec.S with type op = Seq.op and type result = Seq.result

  val name : string
  val factory : unit -> Seq.t

  val prepare : mutation:bool -> bool
  (** Called once per run point, before the engine is built: reset or arm
      any substrate-global hooks (planted store bugs, read-clock
      samplers).  Returns the mutation flag to hand to the {e engine}
      builder — a substrate whose planted bug lives below the engine
      returns [false] so only its own bug is armed. *)

  val gen_op : key_space:int -> Nr_workload.Prng.t -> Seq.op

  val partition : Seq.op -> int
  (** Partition index for compositional checking (linearizability is
      local): per-key for dicts, constant for everything else. *)

  val special :
    engine ->
    (Nr_runtime.Runtime_intf.t -> threads:int -> Seq.op -> Seq.result) option
  (** Builders for the structure-specific engines ([Lf]/[Na]);
      [None] = this substrate has no such baseline. *)

  val sharded :
    (Nr_runtime.Runtime_intf.t ->
    threads:int ->
    mutation:bool ->
    Seq.op ->
    Seq.result)
    option
  (** Builder for the [Sharded] engine ({!Nr_shard.Sharded} over this
      substrate); [mutation] plants {!Nr_core.Config.Router_bypass}.
      [None] = the substrate's keys cannot be hash-partitioned. *)
end

module Run (Sub : SUBSTRATE) = struct
  module W = Nr_harness.Families.Wrap (Sub.Seq)
  module Checker = Wgl.Make (Sub.Spec)

  (* The optimistic-read engine variants: CNA combiner/writer lock plus
     the seqlock read path, patience low so retries exhaust quickly under
     exploration and the fallback path gets exercised too. *)
  let opt_cfg base ~mutation =
    {
      base with
      Nr_core.Config.cna_lock = true;
      optimistic_reads = true;
      read_patience = Some 4;
      mutation =
        (if mutation then Some Nr_core.Config.Skip_read_validate else None);
    }

  let build engine rt ~threads ~mutation =
    let nr_mutation =
      if mutation then Some Nr_core.Config.Stale_reads else None
    in
    match engine with
    | Lf | Na -> (
        match Sub.special engine with
        | Some f -> Some (f rt ~threads)
        | None -> None)
    | Sharded -> (
        match Sub.sharded with
        | Some f -> Some (f rt ~threads ~mutation)
        | None -> None)
    | Nr ->
        Some
          (W.build rt Method.NR
             ~cfg:{ Nr_core.Config.default with mutation = nr_mutation }
             ~threads ~factory:Sub.factory ())
    | Nr_cna ->
        Some
          (W.build rt Method.NR
             ~cfg:(opt_cfg Nr_core.Config.default ~mutation)
             ~threads ~factory:Sub.factory ())
    | Nr_robust ->
        Some
          (W.build rt Method.NR
             ~cfg:{ Nr_core.Config.robust with mutation = nr_mutation }
             ~threads ~factory:Sub.factory ())
    | Nr_robust_opt ->
        Some
          (W.build rt Method.NR
             ~cfg:(opt_cfg Nr_core.Config.robust ~mutation)
             ~threads ~factory:Sub.factory ())
    | Fc -> Some (W.build rt Method.FC ~threads ~factory:Sub.factory ())
    | Fcplus ->
        Some (W.build rt Method.FCplus ~threads ~factory:Sub.factory ())
    | Rwl -> Some (W.build rt Method.RWL ~threads ~factory:Sub.factory ())
    | Sl -> Some (W.build rt Method.SL ~threads ~factory:Sub.factory ())

  let supports = function
    | Lf | Na as e -> Sub.special e <> None
    | Sharded -> Sub.sharded <> None
    | _ -> true

  (* Execute one run point and record its history.  Returns [None] when
     the engine does not exist for this substrate.  [run_stats] proves a
     fault plan did what its name claims: a steal sweep that never stole
     is not evidence. *)
  let run_once ~topo ~threads ~seed ~salt ~plan ~ops_per_thread ~key_space
      ~engine ~mutation () =
    let topology = topo_of_name topo in
    if threads > T.max_threads topology then
      invalid_arg "Explore: thread count out of range for topology";
    let sched = Nr_sim.Sched.create topology in
    Nr_sim.Sched.set_tie_break sched ~salt;
    Nr_sim.Sched.set_fault_plan sched (plan_of_spec ~spec:plan);
    let rt = Nr_runtime.Runtime_sim.make sched in
    Nr_core.Stats.start_collection ();
    let engine_mutation = Sub.prepare ~mutation in
    match build engine rt ~threads ~mutation:engine_mutation with
    | None ->
        ignore (Nr_core.Stats.collect ());
        None
    | Some exec ->
        let hist = History.create () in
        for tid = 0 to threads - 1 do
          let rng =
            Nr_workload.Prng.create ~seed:(seed + (tid * 7919) + 1)
          in
          Nr_sim.Sched.spawn sched ~tid (fun () ->
              for _ = 1 to ops_per_thread do
                ignore
                  (History.record hist ~tid
                     (Sub.gen_op ~key_space rng)
                     exec)
              done)
        done;
        Nr_sim.Sched.run sched;
        let steals =
          match Nr_core.Stats.collect () with
          | Some st -> st.Nr_core.Stats.combiner_steals
          | None -> 0
        in
        let kills =
          match Nr_sim.Sched.fault_stats sched with
          | Some fs -> fs.FP.kills + fs.FP.horizon_kills
          | None -> 0
        in
        Some (History.events hist, { steals; kills })

  (* Check one history compositionally: split on [Sub.partition], check
     parts in sorted order (determinism), report the first violation. *)
  let check_history ?budget evs =
    let parts = Hashtbl.create 16 in
    Array.iter
      (fun e ->
        let p = Sub.partition e.History.op in
        Hashtbl.replace parts p (e :: (try Hashtbl.find parts p with Not_found -> [])))
      evs;
    let keys = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) parts []) in
    let rec go = function
      | [] -> Checker.Linearizable
      | k :: rest -> (
          let sub = Array.of_list (List.rev (Hashtbl.find parts k)) in
          match Checker.check ?budget sub with
          | Checker.Linearizable -> go rest
          | v -> v)
    in
    go keys

  let render_history evs =
    Format.asprintf "%a" (History.pp Sub.Spec.pp_op Sub.Spec.pp_result) evs

  let verdict_to_cx ?budget ~topo ~threads ~seed ~salt ~plan ~ops_per_thread
      ~key_space ~engine ~mutation evs =
    match check_history ?budget evs with
    | Checker.Linearizable -> None
    | Checker.Budget_exhausted ->
        (* nothing proven either way: surface loudly rather than letting
           a sweep silently under-check *)
        failwith
          (Printf.sprintf
             "Explore: WGL budget exhausted on %s/%s seed=%d salt=%d \
              plan=%s — shrink the workload or raise the budget"
             Sub.name (engine_name engine) seed salt plan)
    | Checker.Violation minimal ->
        Some
          {
            substrate = Sub.name;
            engine = engine_name engine;
            topo;
            threads;
            seed;
            salt;
            plan;
            ops_per_thread;
            key_space;
            mutation;
            history = render_history minimal;
          }

  (* One run point, checked; [Some cx] on a violation. *)
  let check_one ?budget ~topo ~threads ~seed ~salt ~plan ~ops_per_thread
      ~key_space ~engine ~mutation () =
    match
      run_once ~topo ~threads ~seed ~salt ~plan ~ops_per_thread ~key_space
        ~engine ~mutation ()
    with
    | None -> None
    | Some (evs, _) ->
        verdict_to_cx ?budget ~topo ~threads ~seed ~salt ~plan
          ~ops_per_thread ~key_space ~engine ~mutation evs

  (* The sweep: every (engine, plan, seed, salt) combination the
     substrate and plan families admit, stopping at the first
     counterexample. *)
  let sweep ?budget ~topo ~threads ~seeds ~salts ~plans ~ops_per_thread
      ~key_space ~engines ~mutation () =
    let checked = ref 0 and steals = ref 0 and kills = ref 0 in
    let found = ref None in
    List.iter
      (fun engine ->
        if supports engine then
          List.iter
            (fun plan ->
              if plan_allows ~spec:plan engine then
                List.iter
                  (fun seed ->
                    List.iter
                      (fun salt ->
                        if !found = None then
                          match
                            run_once ~topo ~threads ~seed ~salt ~plan
                              ~ops_per_thread ~key_space ~engine ~mutation
                              ()
                          with
                          | None -> ()
                          | Some (evs, rs) ->
                              incr checked;
                              steals := !steals + rs.steals;
                              kills := !kills + rs.kills;
                              found :=
                                verdict_to_cx ?budget ~topo ~threads ~seed
                                  ~salt ~plan ~ops_per_thread ~key_space
                                  ~engine ~mutation evs)
                      salts)
                  seeds)
            plans)
      engines;
    {
      checked = !checked;
      steals = !steals;
      kills = !kills;
      counterexample = !found;
    }
end

(* {2 Substrate instantiations} *)

module Stack_sub = struct
  module Seq = Nr_seqds.Stack_ds
  module Spec = Spec.Stack

  let name = "stack"
  let factory () = Nr_seqds.Stack_ds.create ()
  let prepare ~mutation = mutation

  let gen_op ~key_space rng : Seq.op =
    if Nr_workload.Prng.below rng 2 = 0 then
      Nr_seqds.Stack_ops.Push (Nr_workload.Prng.below rng key_space)
    else Nr_seqds.Stack_ops.Pop

  let partition (_ : Seq.op) = 0

  let special engine =
    match engine with
    | Lf ->
        Some
          (fun rt ~threads:_ ->
            let module R = (val rt : Nr_runtime.Runtime_intf.S) in
            let module M = Nr_baselines.Lf_stack.Make (R) in
            let t = M.create ~home:0 () in
            function
            | Nr_seqds.Stack_ops.Push v ->
                M.push t v;
                Nr_seqds.Stack_ops.Pushed
            | Nr_seqds.Stack_ops.Pop -> Nr_seqds.Stack_ops.Popped (M.pop t))
    | Na ->
        Some
          (fun rt ~threads:_ ->
            let module R = (val rt : Nr_runtime.Runtime_intf.S) in
            let module M = Nr_baselines.Na_stack.Make (R) in
            let t = M.create ~home:0 () in
            function
            | Nr_seqds.Stack_ops.Push v ->
                M.push t v;
                Nr_seqds.Stack_ops.Pushed
            | Nr_seqds.Stack_ops.Pop -> Nr_seqds.Stack_ops.Popped (M.pop t))
    | _ -> None

  let sharded = None
end

module Queue_sub = struct
  module Seq = Nr_seqds.Queue_ds
  module Spec = Spec.Queue

  let name = "queue"
  let factory () = Nr_seqds.Queue_ds.create ()
  let prepare ~mutation = mutation
  let gen_op ~key_space rng = Nr_harness.Chaos.queue_op key_space rng
  let partition (_ : Seq.op) = 0
  let special (_ : engine) = None
  let sharded = None
end

(* A generic sharded builder: S=4, router-bypass when [mutation]. *)
let shard_cfg ~mutation =
  {
    Nr_core.Config.default with
    shards = 4;
    mutation = (if mutation then Some Nr_core.Config.Router_bypass else None);
  }

module Dict_sub = struct
  module Seq = Nr_seqds.Skiplist_dict
  module Spec = Spec.Dict_key

  let name = "dict"
  let factory () = Nr_seqds.Skiplist_dict.create ()
  let prepare ~mutation = mutation
  let gen_op ~key_space rng = Nr_harness.Chaos.dict_op key_space rng

  let partition : Seq.op -> int = function
    | Nr_seqds.Dict_ops.Insert (k, _)
    | Nr_seqds.Dict_ops.Remove k
    | Nr_seqds.Dict_ops.Lookup k ->
        k

  let special engine =
    match engine with
    | Lf ->
        Some
          (fun rt ~threads:_ ->
            let module R = (val rt : Nr_runtime.Runtime_intf.S) in
            let module M = Nr_baselines.Lf_skiplist.Make (R) in
            let t = M.create ~home:0 () in
            function
            | Nr_seqds.Dict_ops.Insert (k, v) ->
                Nr_seqds.Dict_ops.Added (M.add t k v)
            | Nr_seqds.Dict_ops.Remove k ->
                Nr_seqds.Dict_ops.Removed (M.remove t k)
            | Nr_seqds.Dict_ops.Lookup k ->
                Nr_seqds.Dict_ops.Found (M.get t k))
    | _ -> None

  (* Every dict op touches one int key: shard on its decimal form.  No
     cross-shard ops, so split/merge are unreachable. *)
  module Shardable = struct
    include Nr_seqds.Skiplist_dict

    let route : op -> Nr_shard.Sharded.route = function
      | Nr_seqds.Dict_ops.Insert (k, _)
      | Nr_seqds.Dict_ops.Remove k
      | Nr_seqds.Dict_ops.Lookup k ->
          Nr_shard.Sharded.Single (string_of_int k)

    let split _ ~shards:_ ~shard_of:_ =
      invalid_arg "dict has no cross-shard operations"

    let merge _ ~shards:_ ~shard_of:_ _ =
      invalid_arg "dict has no cross-shard operations"

    let txn = None
  end

  let sharded =
    Some
      (fun rt ~threads:_ ~mutation ->
        let module R = (val rt : Nr_runtime.Runtime_intf.S) in
        let module Sh = Nr_shard.Sharded.Make (R) (Shardable) in
        let t =
          Sh.create ~cfg:(shard_cfg ~mutation)
            ~factory:(fun ~shard:_ ~shard_of:_ () ->
              Nr_seqds.Skiplist_dict.create ())
            ()
        in
        Sh.execute t)
end

module Pq_sub = struct
  module Seq = Nr_seqds.Pairing_pq
  module Spec = Spec.Pq

  let name = "pq"
  let factory () = Nr_seqds.Pairing_pq.create ()
  let prepare ~mutation = mutation
  let gen_op ~key_space rng = Nr_harness.Chaos.pq_op key_space rng
  let partition (_ : Seq.op) = 0
  let special (_ : engine) = None
  let sharded = None
end

(* The KV store over GET/SET/DEL plus the multi-key MGET/MSET — the
   substrate that exercises the cross-shard coordinator.  Checked against
   the whole-map spec with no partitioning: multi-key ops couple keys, so
   per-key composition does not apply. *)
module Kv_sub = struct
  module Seq = Nr_kvstore.Store
  module Spec = Spec.Kv
  module C = Nr_kvstore.Command

  let name = "kv"
  let factory () = Nr_kvstore.Store.create ()

  (* the kv substrate never issues TTL or transaction commands: make sure
     a preceding txn run's global hooks are disarmed so its behavior is
     bit-for-bit the pre-expiry store's *)
  let prepare ~mutation =
    Nr_kvstore.Store.read_clock := None;
    Nr_kvstore.Store.expire_skip_log := false;
    mutation

  let gen_op ~key_space rng : Seq.op =
    let key () =
      Nr_workload.String_keys.key (Nr_workload.Prng.below rng key_space)
    in
    let value () = string_of_int (Nr_workload.Prng.below rng 4) in
    match Nr_workload.Prng.below rng 100 with
    | r when r < 30 -> C.Get (key ())
    | r when r < 55 -> C.Set (key (), value ())
    | r when r < 65 -> C.Del (key ())
    | r when r < 85 -> C.Mget [ key (); key () ]
    | _ -> C.Mset [ (key (), value ()); (key (), value ()) ]

  let partition (_ : Seq.op) = 0
  let special (_ : engine) = None

  let sharded =
    Some
      (fun rt ~threads:_ ~mutation ->
        let module R = (val rt : Nr_runtime.Runtime_intf.S) in
        let module Sh = Nr_shard.Sharded.Make (R) (Nr_shard.Kv_shard) in
        let t =
          Sh.create ~cfg:(shard_cfg ~mutation)
            ~factory:(fun ~shard:_ ~shard_of:_ () -> Nr_kvstore.Store.create ())
            ()
        in
        Sh.execute t)
end

(* The transactions & expiry surface of the KV store: TXN compound
   entries with version-stamp watches, PEXPIREAT deadlines against the
   TICK-driven logical clock, and a sampled read clock that runs ahead of
   it — the substrate whose histories exercise {!Spec.Kv}'s
   expired-or-not windows.  [prepare] arms a deterministic monotone
   sampler (one tick per 64 reads, so small deadlines stay ambiguous for
   a while before the sampler overtakes them) and, under [mutation], the
   planted [Expire_skip_log] bug: reads purge expired keys locally and
   bump the version stamp without logging, so replica stamps diverge —
   which the spec's reads-never-bump rule catches. *)
module Txn_sub = struct
  module Seq = Nr_kvstore.Store
  module Spec = Spec.Kv
  module C = Nr_kvstore.Command
  module P = Nr_workload.Prng

  let name = "txn"
  let factory () = Nr_kvstore.Store.create ()

  let prepare ~mutation =
    let calls = ref 0 in
    Nr_kvstore.Store.read_clock :=
      Some
        (fun () ->
          incr calls;
          !calls lsr 6);
    Nr_kvstore.Store.expire_skip_log := mutation;
    (* the planted bug lives in the store, below every engine *)
    false

  let gen_op ~key_space rng : Seq.op =
    let key () = Nr_workload.String_keys.key (P.below rng key_space) in
    let value () = string_of_int (P.below rng 4) in
    let deadline () = 1 + P.below rng 12 in
    let stamp () = P.below rng 4 in
    let body_cmd () =
      match P.below rng 5 with
      | 0 -> C.Get (key ())
      | 1 -> C.Set (key (), value ())
      | 2 -> C.Del (key ())
      | 3 -> C.Pexpireat (key (), deadline ())
      | _ -> C.Ttl (key ())
    in
    let body () = List.init (1 + P.below rng 2) (fun _ -> body_cmd ()) in
    match P.below rng 100 with
    | r when r < 15 -> C.Get (key ())
    | r when r < 28 -> C.Set (key (), value ())
    | r when r < 34 -> C.Del (key ())
    | r when r < 46 -> C.Pexpireat (key (), deadline ())
    | r when r < 54 -> C.Tick (deadline ())
    | r when r < 60 -> C.Ttl (key ())
    | r when r < 64 -> C.Persist (key ())
    | r when r < 72 -> C.Getver (key ())
    | r when r < 76 -> C.Dbsize
    | r when r < 82 -> C.Txn_test [ (key (), stamp ()) ]
    | r when r < 91 ->
        (* unguarded transaction: always commits *)
        C.Txn ([], body ())
    | _ ->
        (* guarded: stamps start at 0 and move fast, so early watches
           commit and later ones exercise the abort path *)
        C.Txn ([ (key (), stamp ()) ], body ())

  let partition (_ : Seq.op) = 0
  let special (_ : engine) = None

  let sharded =
    Some
      (fun rt ~threads:_ ~mutation ->
        let module R = (val rt : Nr_runtime.Runtime_intf.S) in
        let module Sh = Nr_shard.Sharded.Make (R) (Nr_shard.Kv_shard) in
        let t =
          Sh.create ~cfg:(shard_cfg ~mutation)
            ~factory:(fun ~shard:_ ~shard_of:_ () -> Nr_kvstore.Store.create ())
            ()
        in
        Sh.execute t)
end

module Run_stack = Run (Stack_sub)
module Run_queue = Run (Queue_sub)
module Run_dict = Run (Dict_sub)
module Run_pq = Run (Pq_sub)
module Run_kv = Run (Kv_sub)
module Run_txn = Run (Txn_sub)

let all_substrates = [ "stack"; "queue"; "dict"; "pq"; "kv"; "txn" ]

(** Sequential specifications for the linearizability checker.

    A spec is the abstract sequential object a concurrent history is
    checked against.  [step_any] returns {e every} legal sequential
    behavior of an operation from a state — usually a singleton, but a
    priority queue with duplicate minimal keys may return any of them, and
    admitting all keeps the checker sound (a violation is only reported
    when {e no} sequential behavior matches).  States must be small,
    immutable values: the checker memoizes on them. *)

module type S = sig
  type state
  type op
  type result

  val init : unit -> state

  val step_any : state -> op -> (result * state) list
  (** All legal sequential outcomes of [op] in [state].  Never empty. *)

  val equal : state -> state -> bool
  val fingerprint : state -> int
  (** Cheap hash consistent with [equal] — a memo-table pre-filter, so
      collisions cost time, never soundness. *)

  val pp_op : Format.formatter -> op -> unit
  val pp_result : Format.formatter -> result -> unit
end

module Fp = Nr_seqds.Fp_util

(** LIFO stack: state is the stack, top first. *)
module Stack :
  S
    with type op = Nr_seqds.Stack_ops.op
     and type result = Nr_seqds.Stack_ops.result = struct
  module O = Nr_seqds.Stack_ops

  type state = int list
  type op = O.op
  type result = O.result

  let init () = []

  let step_any st : op -> (result * state) list = function
    | O.Push v -> [ (O.Pushed, v :: st) ]
    | O.Pop -> (
        match st with
        | [] -> [ (O.Popped None, []) ]
        | v :: tl -> [ (O.Popped (Some v), tl) ])

  let equal = ( = )
  let fingerprint st = Fp.fp_list Fun.id Fp.fp_empty st
  let pp_op = O.pp_op
  let pp_result = O.pp_result
end

(** FIFO queue: state is the queue, front first. *)
module Queue :
  S
    with type op = Nr_seqds.Queue_ops.op
     and type result = Nr_seqds.Queue_ops.result = struct
  module O = Nr_seqds.Queue_ops

  type state = int list
  type op = O.op
  type result = O.result

  let init () = []

  let step_any st : op -> (result * state) list = function
    | O.Enqueue v -> [ (O.Enqueued, st @ [ v ]) ]
    | O.Dequeue -> (
        match st with
        | [] -> [ (O.Dequeued None, []) ]
        | v :: tl -> [ (O.Dequeued (Some v), tl) ])
    | O.Front -> (
        match st with
        | [] -> [ (O.Fronted None, []) ]
        | v :: _ -> [ (O.Fronted (Some v), st) ])

  let equal = ( = )
  let fingerprint st = Fp.fp_list Fun.id Fp.fp_empty st
  let pp_op = O.pp_op
  let pp_result = O.pp_result
end

(** One key of a dictionary: insert-if-absent semantics matching
    {!Nr_seqds.Skiplist_dict}.  Dict histories are checked per key —
    linearizability is local (Herlihy & Wing), and each dict operation
    touches exactly one key, so the keys are independent objects. *)
module Dict_key :
  S
    with type op = Nr_seqds.Dict_ops.op
     and type result = Nr_seqds.Dict_ops.result = struct
  module O = Nr_seqds.Dict_ops

  type state = int option  (** the key's binding *)

  type op = O.op
  type result = O.result

  let init () = None

  let step_any st : op -> (result * state) list = function
    | O.Insert (_, v) -> (
        match st with
        | None -> [ (O.Added true, Some v) ]
        | Some _ -> [ (O.Added false, st) ])
    | O.Remove _ -> (
        match st with
        | Some v -> [ (O.Removed (Some v), None) ]
        | None -> [ (O.Removed None, None) ])
    | O.Lookup _ -> [ (O.Found st, st) ]

  let equal = ( = )
  let fingerprint st = Fp.fp_option Fun.id Fp.fp_empty st
  let pp_op = O.pp_op
  let pp_result = O.pp_result
end

(** String-keyed KV map over the {!Nr_kvstore.Command} GET / SET / DEL /
    MGET / MSET vocabulary — the spec the sharded engine's cross-shard
    histories are checked against ({e whole-map}, partition-free: MGET
    and MSET couple keys, so per-key composition does not apply).
    MSET binds left to right, later bindings of a repeated key winning,
    matching {!Nr_kvstore.Store}. *)
module Kv :
  S
    with type op = Nr_kvstore.Command.t
     and type result = Nr_kvstore.Command.reply = struct
  module C = Nr_kvstore.Command

  type state = (string * string) list  (** sorted by key: canonical form *)

  type op = C.t
  type result = C.reply

  let init () = []

  let rec set st k v =
    match st with
    | [] -> [ (k, v) ]
    | ((k', _) as b) :: tl ->
        if k < k' then (k, v) :: st
        else if k = k' then (k, v) :: tl
        else b :: set tl k v

  let get st k =
    match List.assoc_opt k st with Some v -> C.Bulk v | None -> C.Nil

  let step_any st : op -> (result * state) list = function
    | C.Get k -> [ (get st k, st) ]
    | C.Set (k, v) -> [ (C.Ok_reply, set st k v) ]
    | C.Del k -> (
        match List.assoc_opt k st with
        | Some _ -> [ (C.Int 1, List.remove_assoc k st) ]
        | None -> [ (C.Int 0, st) ])
    | C.Exists k ->
        [ (C.Int (if List.mem_assoc k st then 1 else 0), st) ]
    | C.Mget ks -> [ (C.Array (List.map (get st) ks), st) ]
    | C.Mset ps ->
        [ (C.Ok_reply, List.fold_left (fun st (k, v) -> set st k v) st ps) ]
    | op ->
        invalid_arg
          (Format.asprintf "Spec.Kv: %a outside the checked vocabulary" C.pp
             op)

  let equal = ( = )

  let fingerprint st =
    Fp.fp_list
      (fun (k, v) -> Fp.fp_combine (Hashtbl.hash k) (Hashtbl.hash v))
      Fp.fp_empty st

  let pp_op = C.pp
  let pp_result = C.pp_reply
end

(** Priority queue as a multiset of (key, value) pairs, duplicates
    allowed, matching {!Nr_seqds.Pairing_pq} ([Inserted true] always).
    [deleteMin]/[findMin] may surface {e any} pair holding the minimal
    key — the heap's tie order is a hidden implementation detail no
    client can rely on, so the spec admits every choice. *)
module Pq :
  S with type op = Nr_seqds.Pq_ops.op and type result = Nr_seqds.Pq_ops.result =
struct
  module O = Nr_seqds.Pq_ops

  type state = (int * int) list  (** sorted: canonical multiset form *)

  type op = O.op
  type result = O.result

  let init () = []

  let rec insert_sorted p = function
    | [] -> [ p ]
    | q :: tl -> if p <= q then p :: q :: tl else q :: insert_sorted p tl

  let rec remove_one p = function
    | [] -> []
    | q :: tl -> if p = q then tl else q :: remove_one p tl

  (* distinct pairs carrying the minimal key *)
  let mins = function
    | [] -> []
    | (k0, _) :: _ as st ->
        List.sort_uniq compare (List.filter (fun (k, _) -> k = k0) st)

  let step_any st : op -> (result * state) list = function
    | O.Insert (k, v) -> [ (O.Inserted true, insert_sorted (k, v) st) ]
    | O.Delete_min -> (
        match mins st with
        | [] -> [ (O.Removed None, []) ]
        | ms -> List.map (fun p -> (O.Removed (Some p), remove_one p st)) ms)
    | O.Find_min -> (
        match mins st with
        | [] -> [ (O.Min None, []) ]
        | ms -> List.map (fun p -> (O.Min (Some p), st)) ms)

  let equal = ( = )

  let fingerprint st =
    Fp.fp_list (fun (k, v) -> Fp.fp_combine k v) Fp.fp_empty st

  let pp_op = O.pp_op
  let pp_result = O.pp_result
end

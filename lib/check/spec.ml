(** Sequential specifications for the linearizability checker.

    A spec is the abstract sequential object a concurrent history is
    checked against.  [step_any] returns {e every} legal sequential
    behavior of an operation from a state — usually a singleton, but a
    priority queue with duplicate minimal keys may return any of them, and
    admitting all keeps the checker sound (a violation is only reported
    when {e no} sequential behavior matches).  States must be small,
    immutable values: the checker memoizes on them. *)

module type S = sig
  type state
  type op
  type result

  val init : unit -> state

  val step_any : state -> op -> (result * state) list
  (** All legal sequential outcomes of [op] in [state].  Never empty. *)

  val equal : state -> state -> bool
  val fingerprint : state -> int
  (** Cheap hash consistent with [equal] — a memo-table pre-filter, so
      collisions cost time, never soundness. *)

  val pp_op : Format.formatter -> op -> unit
  val pp_result : Format.formatter -> result -> unit
end

module Fp = Nr_seqds.Fp_util

(** LIFO stack: state is the stack, top first. *)
module Stack :
  S
    with type op = Nr_seqds.Stack_ops.op
     and type result = Nr_seqds.Stack_ops.result = struct
  module O = Nr_seqds.Stack_ops

  type state = int list
  type op = O.op
  type result = O.result

  let init () = []

  let step_any st : op -> (result * state) list = function
    | O.Push v -> [ (O.Pushed, v :: st) ]
    | O.Pop -> (
        match st with
        | [] -> [ (O.Popped None, []) ]
        | v :: tl -> [ (O.Popped (Some v), tl) ])

  let equal = ( = )
  let fingerprint st = Fp.fp_list Fun.id Fp.fp_empty st
  let pp_op = O.pp_op
  let pp_result = O.pp_result
end

(** FIFO queue: state is the queue, front first. *)
module Queue :
  S
    with type op = Nr_seqds.Queue_ops.op
     and type result = Nr_seqds.Queue_ops.result = struct
  module O = Nr_seqds.Queue_ops

  type state = int list
  type op = O.op
  type result = O.result

  let init () = []

  let step_any st : op -> (result * state) list = function
    | O.Enqueue v -> [ (O.Enqueued, st @ [ v ]) ]
    | O.Dequeue -> (
        match st with
        | [] -> [ (O.Dequeued None, []) ]
        | v :: tl -> [ (O.Dequeued (Some v), tl) ])
    | O.Front -> (
        match st with
        | [] -> [ (O.Fronted None, []) ]
        | v :: _ -> [ (O.Fronted (Some v), st) ])

  let equal = ( = )
  let fingerprint st = Fp.fp_list Fun.id Fp.fp_empty st
  let pp_op = O.pp_op
  let pp_result = O.pp_result
end

(** One key of a dictionary: insert-if-absent semantics matching
    {!Nr_seqds.Skiplist_dict}.  Dict histories are checked per key —
    linearizability is local (Herlihy & Wing), and each dict operation
    touches exactly one key, so the keys are independent objects. *)
module Dict_key :
  S
    with type op = Nr_seqds.Dict_ops.op
     and type result = Nr_seqds.Dict_ops.result = struct
  module O = Nr_seqds.Dict_ops

  type state = int option  (** the key's binding *)

  type op = O.op
  type result = O.result

  let init () = None

  let step_any st : op -> (result * state) list = function
    | O.Insert (_, v) -> (
        match st with
        | None -> [ (O.Added true, Some v) ]
        | Some _ -> [ (O.Added false, st) ])
    | O.Remove _ -> (
        match st with
        | Some v -> [ (O.Removed (Some v), None) ]
        | None -> [ (O.Removed None, None) ])
    | O.Lookup _ -> [ (O.Found st, st) ]

  let equal = ( = )
  let fingerprint st = Fp.fp_option Fun.id Fp.fp_empty st
  let pp_op = O.pp_op
  let pp_result = O.pp_result
end

(** String-keyed KV map over the {!Nr_kvstore.Command} GET / SET / DEL /
    MGET / MSET vocabulary plus the transaction & expiry surface
    (PEXPIREAT / PERSIST / TTL / PTTL / TICK / EVICT / GETVER / TXN) —
    the spec the sharded engine's cross-shard histories are checked
    against ({e whole-map}, partition-free: MGET, MSET and TXN couple
    keys, so per-key composition does not apply).  MSET binds left to
    right, later bindings of a repeated key winning, matching
    {!Nr_kvstore.Store}.

    {2 Time model}

    [now] is the logical clock, advanced only by [Tick] — the only clock
    mutations consult, exactly as in the store.  The implementation's
    {e read} path may additionally consult a monotonic sampler
    ([Store.read_clock]) that runs ahead of the last Tick, so a read of a
    key whose deadline lies beyond [now] is {e ambiguous}: still there,
    or already expired.  [horizon] tracks what reads have revealed about
    the sampler ("it has reached at least h"): once some read observes a
    key with deadline [d > now] as expired, every deadline [<= d] must
    read as expired from then on (the sampler is monotone).  [step_any]
    returns both branches for such window reads, committing [horizon] on
    the expired branch — the "expired-or-not window".

    Version stamps ([vers]) move only on effective mutations (including
    evictions and mutation-path purges), never on reads, which is what
    lets the checker catch the planted [Expire_skip_log] bug.

    Transaction bodies replay on every replica at one log position, so
    inside [Txn] every read is {e logical} (no sampler, no ambiguity):
    the body is stepped deterministically. *)
module Kv :
  S
    with type op = Nr_kvstore.Command.t
     and type result = Nr_kvstore.Command.reply = struct
  module C = Nr_kvstore.Command

  type entry = { v : string; dl : int option }

  type state = {
    kvs : (string * entry) list;  (** sorted by key: canonical form *)
    vers : (string * int) list;  (** sorted; absent = 0 *)
    now : int;  (** logical clock (Ticks linearized so far) *)
    horizon : int;  (** proven sampler lower bound, [>= now] meaningful *)
  }

  type op = C.t
  type result = C.reply

  let init () = { kvs = []; vers = []; now = 0; horizon = 0 }

  let rec put k x = function
    | [] -> [ (k, x) ]
    | ((k', _) as b) :: tl ->
        if k < k' then (k, x) :: b :: tl
        else if k = k' then (k, x) :: tl
        else b :: put k x tl

  let ver st k = Option.value ~default:0 (List.assoc_opt k st.vers)
  let bump st k = { st with vers = put k (ver st k + 1) st.vers }
  let floor_ st = max st.now st.horizon

  (* liveness classes on the read path *)
  type live = Absent | Alive of entry | Dead | Window of entry

  let classify ?(logical = false) st k =
    match List.assoc_opt k st.kvs with
    | None -> Absent
    | Some e -> (
        match e.dl with
        | None -> Alive e
        | Some d ->
            let cut = if logical then st.now else floor_ st in
            if d <= cut then Dead
            else if logical then Alive e
            else if d <= floor_ st then Dead
            else Window e)

  (* a Window entry is Alive too unless the sampler already passed it;
     [branches_of_read] returns every legal (result, state) of reading key
     [k] where [alive] renders the present case and [dead] the absent one *)
  let branches_of_read ~logical st k ~alive ~dead =
    match classify ~logical st k with
    | Absent | Dead -> [ (dead, st) ]
    | Alive e -> [ (alive e, st) ]
    | Window e ->
        let d = Option.get e.dl in
        [ (alive e, st); (dead, { st with horizon = d }) ]

  let mutation_dead st k =
    match List.assoc_opt k st.kvs with
    | Some { dl = Some d; _ } -> d <= st.now
    | _ -> false

  let drop st k = { st with kvs = List.remove_assoc k st.kvs }

  (* mutation-path purge of a logically expired key: one bump, like the
     store's [purge_if_dead] + the command's own bump folded together *)
  let purge st k = bump (drop st k)  k

  (* deterministic stepping for transaction bodies: logical reads only *)
  let rec step_logical st (op : op) : result * state =
    match step ~logical:true st op with
    | [ rs ] -> rs
    | _ -> assert false

  and step ~logical st : op -> (result * state) list = function
    | C.Ping -> [ (C.Pong, st) ]
    | C.Get k ->
        branches_of_read ~logical st k
          ~alive:(fun e -> C.Bulk e.v)
          ~dead:C.Nil
    | C.Exists k ->
        branches_of_read ~logical st k
          ~alive:(fun _ -> C.Int 1)
          ~dead:(C.Int 0)
    | C.Set (k, v) ->
        [ (C.Ok_reply, bump { st with kvs = put k { v; dl = None } st.kvs } k) ]
    | C.Del k ->
        if mutation_dead st k then [ (C.Int 0, purge st k) ]
        else if List.mem_assoc k st.kvs then [ (C.Int 1, bump (drop st k) k) ]
        else [ (C.Int 0, st) ]
    | C.Incr k -> step ~logical st (C.Incrby (k, 1))
    | C.Incrby (k, n) -> (
        let fresh st =
          [
            ( C.Int n,
              bump { st with kvs = put k { v = string_of_int n; dl = None } st.kvs } k
            );
          ]
        in
        if mutation_dead st k then fresh (drop st k)
        else
          match List.assoc_opt k st.kvs with
          | None -> fresh st
          | Some e -> (
              match int_of_string_opt e.v with
              | Some v ->
                  let v = v + n in
                  [
                    ( C.Int v,
                      bump
                        { st with kvs = put k { e with v = string_of_int v } st.kvs }
                        k );
                  ]
              | None ->
                  [ (C.Err "value is not an integer or out of range", st) ]))
    | C.Mget ks ->
        (* the sharded engine samples the clock once per shard, not once
           per command, so the per-key outcomes are independent (any key
           order is possible within the command's window); the one sound
           cross-key fact is that every later command samples at or past
           this command's largest sample, so the expired branches commit
           [max] of their deadlines at the end *)
        let rec go acc hmax = function
          | [] ->
              [
                ( C.Array (List.rev acc),
                  { st with horizon = max st.horizon hmax } );
              ]
          | k :: tl -> (
              match classify ~logical st k with
              | Absent | Dead -> go (C.Nil :: acc) hmax tl
              | Alive e -> go (C.Bulk e.v :: acc) hmax tl
              | Window e ->
                  let d = Option.get e.dl in
                  go (C.Bulk e.v :: acc) hmax tl
                  @ go (C.Nil :: acc) (max hmax d) tl)
        in
        go [] 0 ks
    | C.Mset ps ->
        [
          ( C.Ok_reply,
            List.fold_left
              (fun st (k, v) -> bump { st with kvs = put k { v; dl = None } st.kvs } k)
              st ps );
        ]
    | C.Dbsize ->
        (* window keys may or may not be counted: the sharded engine
           samples once per shard, so any count between "every window key
           already gone" and "all still there" is admissible; no horizon
           is committed (we cannot tell which keys the scan dropped) *)
        let cut = if logical then st.now else floor_ st in
        let certain, window =
          List.fold_left
            (fun (c, w) (_, e) ->
              match e.dl with
              | None -> (c + 1, w)
              | Some d -> if d <= cut then (c, w) else (c, w + 1))
            (0, 0) st.kvs
        in
        if logical then [ (C.Int (certain + window), st) ]
        else List.init (window + 1) (fun i -> (C.Int (certain + i), st))
    | C.Pexpireat (k, d) ->
        if mutation_dead st k then [ (C.Int 0, purge st k) ]
        else (
          match List.assoc_opt k st.kvs with
          | None -> [ (C.Int 0, st) ]
          | Some e when e.dl = Some d -> [ (C.Int 1, st) ]
          | Some e ->
              [
                ( C.Int 1,
                  bump { st with kvs = put k { e with dl = Some d } st.kvs } k
                );
              ])
    | C.Persist k ->
        if mutation_dead st k then [ (C.Int 0, purge st k) ]
        else (
          match List.assoc_opt k st.kvs with
          | Some ({ dl = Some _; _ } as e) ->
              [
                ( C.Int 1,
                  bump { st with kvs = put k { e with dl = None } st.kvs } k )
              ]
          | Some _ | None -> [ (C.Int 0, st) ])
    | (C.Ttl k | C.Pttl k) as op -> (
        let scale ms = match op with C.Ttl _ -> (ms + 999) / 1000 | _ -> ms in
        match classify ~logical st k with
        | Absent | Dead -> [ (C.Int (-2), st) ]
        | Alive { dl = None; _ } -> [ (C.Int (-1), st) ]
        | Alive { dl = Some d; _ } ->
            (* logical mode only: remaining vs the logical clock *)
            [ (C.Int (scale (d - st.now)), st) ]
        | Window { dl = Some d; _ } ->
            (* the sampler may sit anywhere in [floor, d): each position e
               yields remaining d - e (and proves the sampler reached e);
               at or past d the key reads as gone *)
            let f = floor_ st in
            let alive =
              List.init (d - f) (fun i ->
                  let e = f + i in
                  (C.Int (scale (d - e)), { st with horizon = max st.horizon e }))
            in
            List.sort_uniq compare
              (alive @ [ (C.Int (-2), { st with horizon = d }) ])
        | Window { dl = None; _ } -> assert false)
    | C.Getver k -> [ (C.Int (ver st k), st) ]
    | C.Setver (k, v) -> [ (C.Ok_reply, { st with vers = put k v st.vers }) ]
    | C.Tick n ->
        let now = max st.now n in
        [ (C.Int now, { st with now }) ]
    | C.Expire_evict (k, d) -> (
        match List.assoc_opt k st.kvs with
        | Some { dl = Some d'; _ } when d' = d ->
            [ (C.Int 1, bump (drop st k) k) ]
        | _ -> [ (C.Int 0, st) ])
    | C.Txn_test ws ->
        [
          ( C.Int (if List.for_all (fun (k, v) -> ver st k = v) ws then 1 else 0),
            st );
        ]
    | C.Txn (ws, body) ->
        if List.for_all (fun (k, v) -> ver st k = v) ws then (
          let rs, st' =
            List.fold_left
              (fun (acc, st) c ->
                let r, st = step_logical st c in
                (r :: acc, st))
              ([], st) body
          in
          [ (C.Array (List.rev rs), st') ])
        else [ (C.Nil, st) ]
    | op ->
        invalid_arg
          (Format.asprintf "Spec.Kv: %a outside the checked vocabulary" C.pp
             op)

  let step_any st op = step ~logical:false st op
  let equal = ( = )

  let fingerprint st =
    let fkvs =
      Fp.fp_list
        (fun (k, e) ->
          Fp.fp_combine (Hashtbl.hash k)
            (Fp.fp_combine (Hashtbl.hash e.v) (Hashtbl.hash e.dl)))
        Fp.fp_empty st.kvs
    in
    let fvers =
      Fp.fp_list
        (fun (k, v) -> Fp.fp_combine (Hashtbl.hash k) v)
        Fp.fp_empty st.vers
    in
    Fp.fp_combine fkvs (Fp.fp_combine fvers (Fp.fp_combine st.now st.horizon))

  let pp_op = C.pp
  let pp_result = C.pp_reply
end

(** Priority queue as a multiset of (key, value) pairs, duplicates
    allowed, matching {!Nr_seqds.Pairing_pq} ([Inserted true] always).
    [deleteMin]/[findMin] may surface {e any} pair holding the minimal
    key — the heap's tie order is a hidden implementation detail no
    client can rely on, so the spec admits every choice. *)
module Pq :
  S with type op = Nr_seqds.Pq_ops.op and type result = Nr_seqds.Pq_ops.result =
struct
  module O = Nr_seqds.Pq_ops

  type state = (int * int) list  (** sorted: canonical multiset form *)

  type op = O.op
  type result = O.result

  let init () = []

  let rec insert_sorted p = function
    | [] -> [ p ]
    | q :: tl -> if p <= q then p :: q :: tl else q :: insert_sorted p tl

  let rec remove_one p = function
    | [] -> []
    | q :: tl -> if p = q then tl else q :: remove_one p tl

  (* distinct pairs carrying the minimal key *)
  let mins = function
    | [] -> []
    | (k0, _) :: _ as st ->
        List.sort_uniq compare (List.filter (fun (k, _) -> k = k0) st)

  let step_any st : op -> (result * state) list = function
    | O.Insert (k, v) -> [ (O.Inserted true, insert_sorted (k, v) st) ]
    | O.Delete_min -> (
        match mins st with
        | [] -> [ (O.Removed None, []) ]
        | ms -> List.map (fun p -> (O.Removed (Some p), remove_one p st)) ms)
    | O.Find_min -> (
        match mins st with
        | [] -> [ (O.Min None, []) ]
        | ms -> List.map (fun p -> (O.Min (Some p), st)) ms)

  let equal = ( = )

  let fingerprint st =
    Fp.fp_list (fun (k, v) -> Fp.fp_combine k v) Fp.fp_empty st

  let pp_op = O.pp_op
  let pp_result = O.pp_result
end

(** Durability checker: after a crash and recovery, did the store come
    back as {e some} prefix of the logged history that contains every
    acknowledged-durable write?

    The contract under test ({!Nr_persist.Persister}):
    - the recovered state must equal a sequential replay of log positions
      [[0, recovered_seq)] — no reordering, no partial application of an
      op (the frame CRC makes a torn op disappear entirely);
    - [recovered_seq] must be at least the durable watermark at the
      moment of the crash — an op whose fsync returned (and was therefore
      acked durable to a client) may never be lost.  Ops {e above} the
      watermark may legitimately vanish: they were never promised.

    Comparison is on {!Nr_kvstore.Store.dump} bytes, which canonicalize
    the state (sorted keys, logical content only), so "equal dumps" is
    exactly "observably equal stores". *)

module Store = Nr_kvstore.Store

type verdict =
  | Durable
  | Lost_acked of { acked : int; recovered_seq : int }
      (** recovery lost writes below the durable watermark *)
  | Divergent of { recovered_seq : int; expect : string; got : string }
      (** recovered state is not the replay of its claimed prefix *)

let pp ppf = function
  | Durable -> Format.pp_print_string ppf "durable"
  | Lost_acked { acked; recovered_seq } ->
      Format.fprintf ppf "lost acked writes: durable watermark %d, recovered %d"
        acked recovered_seq
  | Divergent { recovered_seq; expect; got } ->
      Format.fprintf ppf
        "divergent at prefix %d:@ expect %d bytes %S@ got %d bytes %S"
        recovered_seq (String.length expect)
        (if String.length expect > 120 then String.sub expect 0 120 else expect)
        (String.length got)
        (if String.length got > 120 then String.sub got 0 120 else got)

let is_durable = function Durable -> true | _ -> false

(** Replay [logged] positions [[0, upto)] through a fresh sequential
    store — the oracle state for that prefix.  [None] entries are
    poisoned log slots: they occupy a position but change nothing. *)
let oracle ~logged ~upto =
  let store = Store.create () in
  List.iteri
    (fun i op ->
      if i < upto then
        match op with
        | Some cmd -> ignore (Store.execute store cmd)
        | None -> ())
    logged;
  store

(** [check ~logged ~acked ~recovered_seq ~recovered_dump]: [logged] is
    the full op sequence the leader ever logged (position [i] = log
    position [i]); [acked] the durable watermark when the crash hit;
    [recovered_seq]/[recovered_dump] what recovery reported. *)
let check ~logged ~acked ~recovered_seq ~recovered_dump =
  if recovered_seq < acked then Lost_acked { acked; recovered_seq }
  else
    let expect = Store.dump (oracle ~logged ~upto:recovered_seq) in
    if String.equal expect recovered_dump then Durable
    else Divergent { recovered_seq; expect; got = recovered_dump }

(** {2 Replication WAIT guarantee}

    A [WAIT n] that returned [acked >= n] promised the client: the log
    prefix up to the wait's target position is durable on at least [n]
    {e followers} (plus the leader's own AOF) — so the write survives any
    [n] process losses among leader+followers, because at most [n] of the
    [n+1] durable holders can be among the killed.

    [check_wait] verifies the holder-count half of that promise at crash
    time: for every satisfied wait [(target, n)], at least [n] of the
    per-process durable prefixes in [durable_prefixes] (followers only,
    leader excluded — mirroring what {!Repl_hub} counts) must cover
    [target].  The state half — each surviving holder actually recovers
    the prefix it claims — is {!check} applied per process. *)

type wait_violation = {
  wv_target : int;  (** log position the WAIT covered *)
  wv_need : int;  (** followers the WAIT reply promised *)
  wv_have : int;  (** followers whose durable prefix covers it *)
}

let pp_wait_violation ppf { wv_target; wv_need; wv_have } =
  Format.fprintf ppf
    "WAIT promised %d durable followers at position %d, only %d hold it"
    wv_need wv_target wv_have

(** [check_wait ~waits ~durable_prefixes]: [waits] are the satisfied
    waits as [(target, acked_count)] pairs; [durable_prefixes] the
    follower durable watermarks at crash time.  Returns all violated
    promises (empty = the WAIT guarantee held). *)
let check_wait ~waits ~durable_prefixes =
  List.filter_map
    (fun (target, need) ->
      let have =
        List.fold_left
          (fun n p -> if p >= target then n + 1 else n)
          0 durable_prefixes
      in
      if have < need then
        Some { wv_target = target; wv_need = need; wv_have = have }
      else None)
    waits

(** Wing–Gong / WGL linearizability checker.

    Decides whether a recorded concurrent history has a linearization:
    a total order of its operations that (1) respects real time — an
    operation that returned before another was invoked comes first —
    and (2) is a legal sequential execution of the {!Spec}.

    The search is the classic Wing–Gong recursion with Lowe's
    memoization: pick any {e minimal} operation (one invoked before
    every remaining operation's response), apply it to the spec state,
    recurse on the rest; a (linearized-set, state) pair that failed once
    is pruned when reached again by a different order.  Minimality uses
    strict comparison, so operations whose intervals merely touch count
    as concurrent and may go either way — the checker never reports a
    violation that some real-time-consistent order explains.

    Pending operations (thread died mid-call) may be linearized — with
    any result the spec allows, since nobody observed one — or left out
    entirely; only completed operations are required to appear. *)

module Make (S : Spec.S) = struct
  type event = (S.op, S.result) History.event

  type verdict =
    | Linearizable
    | Violation of event array  (** the failing subhistory, minimized *)
    | Budget_exhausted  (** search truncated; nothing proven *)

  exception Out_of_budget

  (* One DFS over the partial orders of [evs].  [budget] bounds visited
     search nodes so a pathological history degrades to an explicit
     "don't know" instead of hanging CI. *)
  let search ~budget (evs : event array) =
    let n = Array.length evs in
    if n = 0 then true
    else begin
      let linearized = Bytes.make n '\000' in
      let remaining_completed =
        ref
          (Array.fold_left
             (fun acc e -> if e.History.res <> None then acc + 1 else acc)
             0 evs)
      in
      (* key: exact linearized-set bitmap; value: states already explored
         from that set, fingerprint first as a cheap pre-filter *)
      let memo : (string, (int * S.state) list) Hashtbl.t =
        Hashtbl.create 4096
      in
      let visited = ref 0 in
      let rec dfs state =
        !remaining_completed = 0
        || begin
             incr visited;
             if !visited > budget then raise Out_of_budget;
             let key = Bytes.to_string linearized in
             let fp = S.fingerprint state in
             let seen = try Hashtbl.find memo key with Not_found -> [] in
             if List.exists (fun (f, st) -> f = fp && S.equal st state) seen
             then false
             else begin
               Hashtbl.replace memo key ((fp, state) :: seen);
               (* an op is minimal iff no remaining op returned before it
                  was invoked: inv <= min ret over remaining (pending ops
                  carry ret = max_int, so they never constrain anyone) *)
               let min_ret = ref max_int in
               for j = 0 to n - 1 do
                 if Bytes.get linearized j = '\000' then
                   if evs.(j).History.ret < !min_ret then
                     min_ret := evs.(j).History.ret
               done;
               let ok = ref false in
               let i = ref 0 in
               while (not !ok) && !i < n do
                 let e = evs.(!i) in
                 if Bytes.get linearized !i = '\000' && e.History.inv <= !min_ret
                 then begin
                   let branches = S.step_any state e.History.op in
                   let branches =
                     match e.History.res with
                     | Some r -> List.filter (fun (r', _) -> r' = r) branches
                     | None -> branches (* pending: any outcome is fine *)
                   in
                   if branches <> [] then begin
                     Bytes.set linearized !i '\001';
                     let completed = e.History.res <> None in
                     if completed then decr remaining_completed;
                     List.iter
                       (fun (_, st') -> if not !ok then ok := dfs st')
                       branches;
                     Bytes.set linearized !i '\000';
                     if completed then incr remaining_completed
                   end
                 end;
                 incr i
               done;
               !ok
             end
           end
      in
      dfs (S.init ())
    end

  (* Greedy 1-minimal shrink: drop any event whose removal preserves the
     violation.  Sub-checks that blow the budget conservatively keep the
     event (treating "don't know" as "needed"). *)
  let minimize ~budget evs =
    let keep = Array.make (Array.length evs) true in
    let current () =
      let out = ref [] in
      Array.iteri (fun i e -> if keep.(i) then out := e :: !out) evs;
      Array.of_list (List.rev !out)
    in
    Array.iteri
      (fun i _ ->
        keep.(i) <- false;
        let still_violating =
          match search ~budget (current ()) with
          | false -> true
          | true -> false
          | exception Out_of_budget -> false
        in
        if not still_violating then keep.(i) <- true)
      evs;
    current ()

  let check ?(budget = 2_000_000) (evs : event array) =
    (* deterministic event order: the recorder's order depends only on
       the (topology, seed, plan, salt) tuple, but sorting by interval
       makes counterexample prints read chronologically *)
    let evs = Array.copy evs in
    Array.stable_sort
      (fun a b ->
        compare
          (a.History.inv, a.History.ret, a.History.tid)
          (b.History.inv, b.History.ret, b.History.tid))
      evs;
    match search ~budget evs with
    | true -> Linearizable
    | false -> Violation (minimize ~budget evs)
    | exception Out_of_budget -> Budget_exhausted

  let pp_history ppf evs = History.pp S.pp_op S.pp_result ppf evs
end

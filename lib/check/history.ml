(** Concurrent-history recorder.

    A history is the checker's view of one simulated run: for every
    data-structure operation, which thread invoked it, at what virtual
    time, what it returned and when.  The recorder wraps the concurrent
    executor, reading the scheduler's virtual clock on either side of the
    call — the same clock every obs span carries, so recorded intervals
    line up exactly with a Chrome trace of the run — and emits "check"
    spans through {!Nr_obs.Sink} when a trace is installed.

    An operation whose thread dies mid-call (fault injection) never
    completes: its event keeps [res = None] and [ret = max_int].  The
    checker treats such {e pending} operations as free to linearize
    anywhere after their invocation or to drop entirely, exactly the
    leeway a crashed caller leaves a real implementation. *)

type ('op, 'res) event = {
  tid : int;
  op : 'op;
  inv : int;  (** virtual invocation time *)
  mutable res : 'res option;  (** [None] while pending (thread died) *)
  mutable ret : int;  (** virtual response time; [max_int] while pending *)
}

type ('op, 'res) t = {
  mutable evs : ('op, 'res) event array;
  mutable n : int;
}

let create () = { evs = [||]; n = 0 }

(* The simulator is single-OS-thread, so a plain growable array suffices
   even though many simulated threads record interleaved. *)
let push t ev =
  if t.n = Array.length t.evs then begin
    let cap = max 64 (2 * Array.length t.evs) in
    let evs = Array.make cap ev in
    Array.blit t.evs 0 evs 0 t.n;
    t.evs <- evs
  end;
  t.evs.(t.n) <- ev;
  t.n <- t.n + 1

let record t ~tid op (exec : 'op -> 'res) : 'res =
  let ev = { tid; op; inv = Nr_sim.Sched.now (); res = None; ret = max_int } in
  push t ev;
  if Nr_obs.Sink.tracing () then
    Nr_obs.Sink.span_begin ~tid ~node:(Nr_sim.Sched.self_node ()) ~cat:"check"
      "op";
  let r = exec op in
  ev.res <- Some r;
  ev.ret <- Nr_sim.Sched.now ();
  if Nr_obs.Sink.tracing () then
    Nr_obs.Sink.span_end ~tid ~node:(Nr_sim.Sched.self_node ()) ~cat:"check"
      ~arg:Nr_obs.Sink.no_arg "op";
  r

let length t = t.n
let events t = Array.sub t.evs 0 t.n
let pending t = Array.fold_left (fun acc e -> if e.res = None then acc + 1 else acc) 0 (events t)

let pp_event pp_op pp_res ppf e =
  match e.res with
  | Some r ->
      Format.fprintf ppf "[%d..%d] t%d %a -> %a" e.inv e.ret e.tid pp_op e.op
        pp_res r
  | None -> Format.fprintf ppf "[%d.. ) t%d %a -> (pending)" e.inv e.tid pp_op e.op

let pp pp_op pp_res ppf evs =
  Array.iter (fun e -> Format.fprintf ppf "%a@." (pp_event pp_op pp_res) e) evs

(** Compact NUMA-Aware queue lock (after Dice & Kogan, "Compact NUMA-aware
    Locks").

    An MCS-style queue lock that prefers handing off to a waiter on the
    holder's own NUMA node: on release the main queue is scanned for the
    first same-node waiter and the remote prefix is parked on a secondary
    queue, which a bounded fairness threshold splices back in front of
    the main queue after [threshold] consecutive intra-node handoffs.
    Keeping consecutive holders on one node keeps the lock word and the
    protected data in that node's cache — under the simulator's cost
    model, local handoffs avoid the remote-transfer charges an MCS/TTAS
    handoff to another node would pay.

    Waiters spin on preallocated per-thread queue nodes homed on their
    own NUMA node (the MCS property: no shared spin line).  Acquisition
    costs one tail swap (a CAS loop — the runtime has no exchange);
    uncontended release is one CAS.  This lock has no generation
    counter and cannot be stolen — the hardened (liveness) NR protocol
    keeps its stealable combiner lock and applies CNA only to the
    rwlock writer side. *)

(** Handoff-locality counters shared by every instantiation, so NR can
    merge combiner-lock and rwlock-writer snapshots into one report. *)
type snapshot = {
  local_handoffs : int;  (** grants to a waiter on the holder's node *)
  remote_handoffs : int;  (** grants to a waiter on another node *)
  splices : int;
      (** fairness events: secondary queue spliced back (threshold hit)
          or promoted to main (main queue drained) *)
}

val empty_snapshot : snapshot
val add_snapshot : snapshot -> snapshot -> snapshot

module Make (R : Nr_runtime.Runtime_intf.S) : sig
  type t

  val create : ?home:int -> threshold:int -> unit -> t
  (** A lock whose queue nodes cover every runtime thread ([R.max_threads]),
      each homed on its thread's node.  [home] places the tail word.
      [threshold] bounds consecutive intra-node handoffs before the
      secondary (remote) queue is spliced back — the fairness knob.

      @raise Invalid_argument if [threshold < 1]. *)

  val lock : t -> unit
  (** Enqueue and spin on this thread's own node-local cell until
      granted. *)

  val try_lock : t -> bool
  (** One attempt: succeeds iff the lock was free and the tail CAS won.
      Never enqueues. *)

  val unlock : t -> unit
  (** Hand off NUMA-aware: prefer the first same-node main-queue waiter
      (parking the remote prefix), splice the secondary queue back after
      [threshold] consecutive local handoffs, promote it when the main
      queue drains, or free the lock when nobody waits.  Must be called
      by the holding thread. *)

  val locked : t -> bool
  (** Whether any thread holds or waits for the lock (one charged read). *)

  val snapshot : t -> snapshot
  (** Current handoff-locality counters (plain reads; exact under the
      simulator, racy-but-indicative on domains). *)
end

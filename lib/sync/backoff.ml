(** Truncated exponential backoff for spin loops: each [once] call yields
    a growing number of times, capping at [max_exp] doublings.  Reduces both
    real cache traffic and simulated event counts under contention. *)

module Make (R : Nr_runtime.Runtime_intf.S) = struct
  type t = { mutable exp : int; max_exp : int }

  let create ?(max_exp = 6) () = { exp = 0; max_exp }
  let reset t = t.exp <- 0

  let once t =
    let n = 1 lsl t.exp in
    for _ = 1 to n do
      R.yield ()
    done;
    if t.exp < t.max_exp then t.exp <- t.exp + 1
end

(** Wall-clock variant for network retry loops: delays in milliseconds that
    double up to a cap, with seeded jitter so a fleet of reconnecting
    followers does not stampede a freshly promoted leader in lockstep.
    This module only {e computes} delays — the caller sleeps — so it works
    under real threads and under a virtual clock alike, and a seeded
    instance yields a deterministic delay sequence for tests. *)
module Timed = struct
  type t = {
    base_ms : int;
    max_ms : int;
    mutable exp : int;
    mutable state : int64;  (** splitmix64 jitter stream *)
    mutable failures : int;  (** consecutive failures since the last reset *)
    mutable total_failures : int;
    mutable last_ms : int;  (** last delay handed out *)
  }

  let create ?(base_ms = 50) ?(max_ms = 5_000) ?(seed = 0x6B8B4567) () =
    if base_ms <= 0 || max_ms < base_ms then
      invalid_arg "Backoff.Timed.create: need 0 < base_ms <= max_ms";
    {
      base_ms;
      max_ms;
      exp = 0;
      state = Int64.of_int seed;
      failures = 0;
      total_failures = 0;
      last_ms = 0;
    }

  let reset t =
    t.exp <- 0;
    t.failures <- 0

  (* splitmix64: tiny, seeded, no dependency on the workload PRNGs *)
  let rand t bound =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    if bound <= 0 then 0 else Int64.to_int (Int64.unsigned_rem z (Int64.of_int bound))

  (** Record one failure and return the next delay: the truncated-doubling
      envelope, jittered into [[envelope/2, envelope]] ("equal jitter") so
      retries desynchronise without ever collapsing to zero wait. *)
  let next_ms t =
    t.failures <- t.failures + 1;
    t.total_failures <- t.total_failures + 1;
    let envelope = min t.max_ms (t.base_ms * (1 lsl min t.exp 20)) in
    if envelope < t.max_ms then t.exp <- t.exp + 1;
    let d = (envelope / 2) + rand t ((envelope / 2) + 1) in
    t.last_ms <- d;
    d

  let failures t = t.failures
  let total_failures t = t.total_failures
  let last_ms t = t.last_ms
end

(** Truncated exponential backoff for spin loops: each [once] call yields
    a growing number of times, capping at [max_exp] doublings.  Reduces both
    real cache traffic and simulated event counts under contention. *)

module Make (R : Nr_runtime.Runtime_intf.S) = struct
  type t = { mutable exp : int; max_exp : int }

  let create ?(max_exp = 6) () = { exp = 0; max_exp }
  let reset t = t.exp <- 0

  let once t =
    let n = 1 lsl t.exp in
    for _ = 1 to n do
      R.yield ()
    done;
    if t.exp < t.max_exp then t.exp <- t.exp + 1
end

(** Generation-counting spin lock whose holder can be dispossessed.

    One shared word holds a generation counter: even = free, odd = held.
    Acquisition CASes an even value [g] to [g + 1] and the resulting odd
    value names this tenure.  A release is a CAS [g + 1 -> g + 2] — it
    fails iff the tenure was stolen meanwhile.  A steal CASes an observed
    odd value [h] to [h + 2]: still odd (the lock stays held, now by the
    stealer's fresh tenure) and every later CAS tagged with the victim's
    generation fails, so a stalled ex-holder that eventually resumes can
    detect the theft and cannot corrupt the new tenure.

    The charge sequences of {!try_lock}, {!lock}, {!locked} and
    {!unlock_quiet} mirror {!Spinlock} exactly (test-and-test-and-set,
    same backoff, plain-write release), so swapping this lock in while
    never stealing leaves a seeded simulation byte-identical. *)

module Make (R : Nr_runtime.Runtime_intf.S) = struct
  module Backoff = Backoff.Make (R)

  type t = int R.cell

  (* Generations start at 2 so that 0 can serve as the "not acquired"
     sentinel returned by [try_lock]. *)
  let create ?home () : t = R.cell ?home 2

  let try_lock t =
    let g = R.read t in
    if g land 1 = 0 && R.cas t g (g + 1) then g + 1 else 0

  let locked t = R.read t land 1 = 1

  (* Same deep backoff cap as [Spinlock.lock]: after a release the herd of
     waiters serializes CASes on the lock line and must thin out fast. *)
  let lock t =
    let g = try_lock t in
    if g <> 0 then g
    else begin
      let b = Backoff.create ~max_exp:10 () in
      let g = ref 0 in
      while
        g := try_lock t;
        !g = 0
      do
        Backoff.once b
      done;
      !g
    end

  (* Legacy release: one plain write, the same single Write charge as
     [Spinlock.unlock].  Only safe when no thread ever steals — the peek
     is free and the holder is then the sole writer of the word. *)
  let unlock_quiet t = R.write t (R.peek t + 1)

  let unlock t ~gen = R.cas t gen (gen + 1)

  let steal t ~gen =
    if R.cas t gen (gen + 2) then gen + 2 else 0

  let peek_gen t = R.peek t
  let read_gen t = R.read t
end

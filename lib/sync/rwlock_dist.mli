(** Distributed readers-writer lock (paper §5.5, after Vyukov's
    distributed mutex with the paper's writer-side improvement).

    Each reader slot has its own flag cell on its own cache line, so
    concurrent readers never write a shared line.  A writer raises one
    writer flag and then merely waits for every reader flag to drop,
    without acquiring them; both sides pay a single atomic write on
    distinct lines.  Readers may starve under a stream of writers — which
    does not arise inside Node Replication, where only the combiner
    writes. *)

module Make (R : Nr_runtime.Runtime_intf.S) : sig
  type t

  val create :
    ?home:int -> ?writer_cna:int -> ?patience:int -> readers:int -> unit -> t
  (** A lock with [readers] reader slots (typically one per thread that
      may read).  [home] is the backing node for the writer flag and slot
      array.

      [writer_cna], when given, serializes competing writers through a
      {!Cna_lock} with that fairness threshold before the writer flag is
      raised: under writer contention the flag handoff prefers waiters on
      the departing writer's NUMA node.  Absent = the legacy bare CAS
      loop on the flag, byte-identical charge sequences.

      [patience], when given, arms truncated exponential backoff (max
      exponent [patience]) in the reader spin loops — both the
      wait-for-no-writer loop and the retreat-and-retry loop.  It is the
      same knob {!Nr_core.Config.t.read_patience} feeds to the
      optimistic-read retry bound, so one number tunes how hard the whole
      read path pushes before backing off.  Absent = readers re-read the
      writer flag every yield, byte-identical charge sequences.

      @raise Invalid_argument if [readers <= 0] or [patience < 1]. *)

  val slots : t -> int
  (** Number of reader slots the lock was created with. *)

  val writer_cna_snapshot : t -> Cna_lock.snapshot option
  (** Handoff-locality counters of the writer-side CNA lock; [None] when
      the lock was created without [writer_cna]. *)

  val read_lock : t -> int -> unit
  (** [read_lock t slot] acquires slot [slot] for reading: wait until no
      writer, raise the slot's flag, and re-check (a writer that slipped
      in between forces a retreat-and-retry).  Each slot must be used by
      at most one thread at a time. *)

  val read_unlock : t -> int -> unit
  (** Drop the slot's flag. *)

  val write_lock : t -> unit
  (** Acquire the single writer flag, then wait for all raised reader
      flags to drop.  The initial scan reads all flags at one
      linearization point ([R.read_all]) so independent misses overlap. *)

  val write_unlock : t -> unit
  (** Drop the writer flag (and hand off the CNA writer queue, when
      armed). *)
end

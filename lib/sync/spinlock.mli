(** Test-and-test-and-set spin lock with truncated exponential backoff.

    One shared word on its own cache line: 0 = free, 1 = held.  Waiters
    spin on plain reads (cheap while the line stays shared) and only issue
    a CAS after observing the lock free.  This is also the paper's [SL]
    baseline — a single big lock around a sequential structure — and the
    per-replica combiner lock inside Node Replication. *)

module Make (R : Nr_runtime.Runtime_intf.S) : sig
  type t

  val create : ?home:int -> unit -> t
  (** A fresh, unlocked lock.  [home] is the NUMA node whose memory backs
      the lock word (defaults to the caller's node). *)

  val try_lock : t -> bool
  (** One test-and-test-and-set attempt; never blocks.  [true] on
      acquisition. *)

  val lock : t -> unit
  (** Spin (with backoff, deep cap for high thread counts) until
      acquired. *)

  val unlock : t -> unit
  (** Release.  Only the holder may call this; there is no ownership
      check. *)

  val locked : t -> bool
  (** Momentary snapshot, for heuristics only — the answer may be stale by
      the time the caller acts on it. *)
end

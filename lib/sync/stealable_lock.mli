(** Generation-counting spin lock whose holder can be dispossessed.

    A drop-in replacement for {!Spinlock} that additionally supports
    {e stealing}: a waiter that decides the holder has stalled can take the
    lock away, and the dispossessed holder's subsequent generation-tagged
    release (and any other generation-guarded writes it attempts) fail
    cleanly instead of corrupting the new tenure.

    The lock word holds a generation counter — even = free, odd = held;
    each successful acquisition or steal yields a fresh odd {e generation}
    naming that tenure.  Generation 0 never names a tenure and is the
    failure sentinel.

    On the legacy (never-stealing) paths, {!try_lock}, {!lock}, {!locked}
    and {!unlock_quiet} replay {!Spinlock}'s exact charge sequences, so
    seeded simulations are byte-identical to the plain spin lock. *)

module Make (R : Nr_runtime.Runtime_intf.S) : sig
  type t

  val create : ?home:int -> unit -> t
  (** A fresh, unlocked lock homed like {!Spinlock.Make.create}. *)

  val try_lock : t -> int
  (** One test-and-test-and-set attempt; never blocks.  Returns the
      acquired generation (odd, nonzero), or [0] on failure. *)

  val lock : t -> int
  (** Spin (with backoff, deep cap) until acquired; returns the
      generation. *)

  val locked : t -> bool
  (** Momentary snapshot, for heuristics only. *)

  val unlock_quiet : t -> unit
  (** Release without an ownership check — one plain write, the same
      charge as {!Spinlock.Make.unlock}.  Only the holder may call this,
      and only in a regime where no thread ever calls {!steal}. *)

  val unlock : t -> gen:int -> bool
  (** Generation-checked release: succeeds iff the caller's tenure [gen]
      is still current.  [false] means the lock was stolen — the caller
      must not touch protected state anymore. *)

  val steal : t -> gen:int -> int
  (** [steal t ~gen] dispossesses the holder whose tenure is [gen]:
      returns the stealer's fresh generation, or [0] if [gen] was no
      longer current (the holder finished or someone else stole first). *)

  val peek_gen : t -> int
  (** Advisory, uncharged read of the raw lock word; for use inside
      {!Nr_runtime.Runtime_intf.S.guarded_cas} guards. *)

  val read_gen : t -> int
  (** Charged read of the raw lock word (odd = held by that tenure);
      what a waiter tracks to detect a stuck tenure before stealing. *)
end

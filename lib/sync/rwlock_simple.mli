(** Centralized readers-writer lock.

    A single word holds -1 while a writer is inside, otherwise the reader
    count.  Every acquisition — including read acquisitions — CASes that
    one word, so readers on different NUMA nodes bounce its cache line;
    read scalability collapses exactly as in the paper's ablation #5
    (§8.5), which swaps this in for the distributed lock.  Writers are not
    prioritized and can starve under a stream of readers. *)

module Make (R : Nr_runtime.Runtime_intf.S) : sig
  type t

  val create : ?home:int -> unit -> t
  (** A fresh, unheld lock on node [home] (defaults to the caller's
      node). *)

  val read_lock : t -> unit
  (** Block (spin with backoff) until no writer holds the lock, then
      increment the reader count. *)

  val read_unlock : t -> unit
  (** Decrement the reader count.  Only a thread inside a read section may
      call this. *)

  val write_lock : t -> unit
  (** Block until the lock is completely free (no readers, no writer),
      then take exclusive ownership. *)

  val write_unlock : t -> unit
  (** Release exclusive ownership. *)
end

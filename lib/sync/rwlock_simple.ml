(** Centralized readers-writer lock: a single word holding -1 when a writer
    is inside, otherwise the reader count.  Every acquisition — including
    read acquisitions — writes the one word, so readers on different nodes
    bounce its cache line; this is the "standard readers-writer lock" the
    paper's ablation #5 (§8.5) falls back to. *)

module Make (R : Nr_runtime.Runtime_intf.S) = struct
  module Backoff = Backoff.Make (R)

  type t = int R.cell

  let create ?home () : t = R.cell ?home 0

  let read_lock t =
    let b = Backoff.create () in
    let rec loop () =
      let v = R.read t in
      if v >= 0 && R.cas t v (v + 1) then ()
      else begin
        Backoff.once b;
        loop ()
      end
    in
    loop ()

  let read_unlock t = ignore (R.faa t (-1))

  let write_lock t =
    let b = Backoff.create () in
    let rec loop () =
      if R.read t = 0 && R.cas t 0 (-1) then ()
      else begin
        Backoff.once b;
        loop ()
      end
    in
    loop ()

  let write_unlock t = R.write t 0
end

(** Test-and-test-and-set spin lock with exponential backoff.  This is also
    the paper's [SL] baseline: one big lock around a sequential structure. *)

module Make (R : Nr_runtime.Runtime_intf.S) = struct
  module Backoff = Backoff.Make (R)

  type t = int R.cell

  let create ?home () : t = R.cell ?home 0
  let try_lock t = R.read t = 0 && R.cas t 0 1
  let locked t = R.read t <> 0

  (* The deep backoff cap matters at high thread counts: after a release,
     every waiter that saw the lock free issues a CAS and those serialize
     on the lock line, so the herd must thin out quickly. *)
  let lock t =
    if not (try_lock t) then begin
      let b = Backoff.create ~max_exp:10 () in
      while not (try_lock t) do
        Backoff.once b
      done
    end

  let unlock t = R.write t 0
end

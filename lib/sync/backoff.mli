(** Truncated exponential backoff for spin loops.

    Each {!Make.once} call yields a number of times that doubles on every
    call, capping after [max_exp] doublings.  Backing off thins the herd of
    spinners after a lock release: it reduces both real cache-line traffic
    on hardware and simulated event counts under the deterministic
    simulator, at the cost of some latency for the last waiter. *)

module Make (R : Nr_runtime.Runtime_intf.S) : sig
  type t

  val create : ?max_exp:int -> unit -> t
  (** Fresh backoff state starting at one yield per {!once}.  [max_exp]
      (default 6) caps the doubling, so the longest sleep is
      [2 ^ max_exp] yields.

      Callers that expose the cap as a tuning knob should share one
      number across the loops that race each other: the read path feeds
      {!Nr_core.Config.t.read_patience} both to {!Rwlock_dist}'s reader
      spins (as this cap) and to the optimistic-read retry bound, so a
      single patience value governs how long a reader pushes before
      conceding to writers. *)

  val reset : t -> unit
  (** Return to the initial (shortest) delay — call after a successful
      acquisition so the next contention episode starts polite. *)

  val once : t -> unit
  (** Spin-wait for the current delay ([R.yield] that many times), then
      double the delay if below the cap. *)
end

(** Wall-clock retry backoff for network loops (replication reconnect):
    computes jittered, truncated-doubling delays in milliseconds but never
    sleeps itself, so the caller owns the clock — real [Thread.delay] in
    the server, a virtual clock in deterministic tests. *)
module Timed : sig
  type t

  val create : ?base_ms:int -> ?max_ms:int -> ?seed:int -> unit -> t
  (** Delays start at [base_ms] (default 50) and double per failure up to
      [max_ms] (default 5000); [seed] fixes the jitter stream. *)

  val reset : t -> unit
  (** Call after a successful round: clears the consecutive-failure count
      and returns the delay envelope to [base_ms]. *)

  val next_ms : t -> int
  (** Record one failure and return the delay to sleep before retrying:
      jittered into [[envelope/2, envelope]] of the current doubling
      envelope, so independent followers desynchronise. *)

  val failures : t -> int
  (** Consecutive failures since the last {!reset} — the signal failover
      promotion triggers on. *)

  val total_failures : t -> int
  (** Failures over the instance's whole lifetime, for stats. *)

  val last_ms : t -> int
  (** The delay most recently returned by {!next_ms}. *)
end

(** Truncated exponential backoff for spin loops.

    Each {!Make.once} call yields a number of times that doubles on every
    call, capping after [max_exp] doublings.  Backing off thins the herd of
    spinners after a lock release: it reduces both real cache-line traffic
    on hardware and simulated event counts under the deterministic
    simulator, at the cost of some latency for the last waiter. *)

module Make (R : Nr_runtime.Runtime_intf.S) : sig
  type t

  val create : ?max_exp:int -> unit -> t
  (** Fresh backoff state starting at one yield per {!once}.  [max_exp]
      (default 6) caps the doubling, so the longest sleep is
      [2 ^ max_exp] yields. *)

  val reset : t -> unit
  (** Return to the initial (shortest) delay — call after a successful
      acquisition so the next contention episode starts polite. *)

  val once : t -> unit
  (** Spin-wait for the current delay ([R.yield] that many times), then
      double the delay if below the cap. *)
end

(** Distributed readers-writer lock (paper §5.5, after Vyukov's distributed
    mutex with the paper's writer-side improvement).

    Each reader slot has its own flag cell (own cache line), so concurrent
    readers never contend with each other.  A writer raises one writer flag
    and then merely {e waits} for every reader flag to drop, without
    acquiring them; both sides pay a single atomic write on distinct lines.
    Readers may starve under a stream of writers, which does not arise in NR
    because only the combiner writes.

    Two optional knobs, both off by default and byte-identical when off:
    [writer_cna] serializes competing writers through a {!Cna_lock}
    (NUMA-aware handoff) instead of the bare CAS loop on the writer flag,
    and [patience] arms truncated exponential backoff in the reader spin
    loops (legacy readers re-read the writer flag every yield). *)

module Make (R : Nr_runtime.Runtime_intf.S) = struct
  module Cna = Cna_lock.Make (R)
  module Backoff = Backoff.Make (R)

  type t = {
    writer : int R.cell;
    readers : int R.cell array;
    scan : int array;
        (** writer-side scratch for the flag scan; only ever touched while
            holding the writer flag, so one buffer per lock suffices *)
    wlock : Cna.t option;
        (** when present, writers serialize through it before raising the
            writer flag (which becomes a plain store) *)
    patience : int option;
        (** when present, reader spin loops back off exponentially with
            this max exponent instead of re-reading every yield *)
  }

  let create ?home ?writer_cna ?patience ~readers () =
    if readers <= 0 then invalid_arg "Rwlock_dist.create: readers must be > 0";
    (match patience with
    | Some p when p < 1 ->
        invalid_arg "Rwlock_dist.create: patience must be >= 1"
    | _ -> ());
    {
      writer = R.cell ?home 0;
      readers = Array.init readers (fun _ -> R.cell ?home 0);
      scan = Array.make readers 0;
      wlock =
        (match writer_cna with
        | Some threshold -> Some (Cna.create ?home ~threshold ())
        | None -> None);
      patience;
    }

  let slots t = Array.length t.readers

  let writer_cna_snapshot t =
    match t.wlock with Some l -> Some (Cna.snapshot l) | None -> None

  let read_lock t slot =
    let flag = t.readers.(slot) in
    match t.patience with
    | None ->
        let rec loop () =
          while R.read t.writer <> 0 do
            R.yield ()
          done;
          R.write flag 1;
          if R.read t.writer <> 0 then begin
            (* a writer slipped in: back off and retry *)
            R.write flag 0;
            R.yield ();
            loop ()
          end
        in
        loop ()
    | Some max_exp ->
        let b = Backoff.create ~max_exp () in
        let rec loop () =
          while R.read t.writer <> 0 do
            Backoff.once b
          done;
          R.write flag 1;
          if R.read t.writer <> 0 then begin
            R.write flag 0;
            Backoff.once b;
            loop ()
          end
        in
        loop ()

  let read_unlock t slot = R.write t.readers.(slot) 0

  (* Wait out the stragglers the batch scan saw as active. *)
  let rec drain t i n =
    if i < n then begin
      if Array.unsafe_get t.scan i <> 0 then begin
        let flag = t.readers.(i) in
        while R.read flag <> 0 do
          R.yield ()
        done
      end;
      drain t (i + 1) n
    end

  let write_lock t =
    (match t.wlock with
    | None ->
        while not (R.read t.writer = 0 && R.cas t.writer 0 1) do
          R.yield ()
        done
    | Some l ->
        (* writers are serialized by the CNA queue, so the flag raise is
           a plain store (readers still read it atomically) *)
        Cna.lock l;
        R.write t.writer 1);
    (* scan all reader flags at once (independent lines overlap, zero
       allocation), then wait out the stragglers individually *)
    let n = Array.length t.readers in
    R.read_ints_into t.readers ~n ~dst:t.scan;
    drain t 0 n

  let write_unlock t =
    R.write t.writer 0;
    match t.wlock with None -> () | Some l -> Cna.unlock l
end

(** Compact NUMA-Aware queue lock (after Dice & Kogan, "Compact NUMA-aware
    Locks").

    An MCS-style queue lock whose holder partitions the waiters behind it
    into a {e main} queue and a {e secondary} queue of waiters on other
    NUMA nodes.  On release the holder scans the main queue for the first
    waiter on its own node, moves the remote prefix to the secondary
    queue, and hands the lock to that local waiter — so in steady state
    the lock (and the data it protects) stays resident on one node's
    cache, which is exactly what the simulator's remote-transfer charges
    reward.  A bounded fairness threshold splices the secondary queue
    back in front of the main queue after [threshold] consecutive
    intra-node handoffs, so remote waiters are bypassed only a bounded
    number of times.

    Queue nodes are preallocated one per thread and homed on the thread's
    node: a waiter spins on its own node-local cell (the MCS property),
    and the runtime has no atomic exchange, so the tail swap is a CAS
    loop.  The secondary-queue head/tail and the handoff counter are
    plain holder-only fields — they are only read and written between
    acquiring the lock and granting it away, and the grant (the write to
    the successor's spin cell) publishes them. *)

(* Handoff-locality counters, outside the functor so every instantiation
   (combiner locks, rwlock writer sides) shares one snapshot type. *)
type snapshot = {
  local_handoffs : int;  (** grants to a waiter on the holder's node *)
  remote_handoffs : int;  (** grants to a waiter on another node *)
  splices : int;
      (** fairness events: secondary queue spliced back (threshold hit)
          or promoted to main (main queue empty) *)
}

let empty_snapshot = { local_handoffs = 0; remote_handoffs = 0; splices = 0 }

let add_snapshot a b =
  {
    local_handoffs = a.local_handoffs + b.local_handoffs;
    remote_handoffs = a.remote_handoffs + b.remote_handoffs;
    splices = a.splices + b.splices;
  }

module Make (R : Nr_runtime.Runtime_intf.S) = struct
  (* Queue-node and tail cells encode a thread as [tid + 1]; 0 = none. *)
  type qnode = {
    next : int R.cell;  (** successor in the chain, 0 = none *)
    spin : int R.cell;  (** 0 = wait, 1 = granted; node-local *)
    qnode_node : int;  (** NUMA node of the owning thread *)
  }

  type t = {
    tail : int R.cell;  (** 0 = free, else the last waiter *)
    qnodes : qnode array;  (** indexed by tid *)
    threshold : int;
    (* Holder-only state: written between acquire and grant, published to
       the next holder by the grant itself. *)
    mutable sec_head : int;
    mutable sec_tail : int;
    mutable passes : int;  (** local handoffs since the last splice *)
    (* Reporting-only counters (plain, racy on domains like Stats). *)
    mutable local_handoffs : int;
    mutable remote_handoffs : int;
    mutable splices : int;
  }

  let create ?home ~threshold () =
    if threshold < 1 then invalid_arg "Cna_lock.create: threshold must be >= 1";
    {
      tail = R.cell ?home 0;
      qnodes =
        Array.init (R.max_threads ()) (fun tid ->
            let node = R.node_of tid in
            {
              next = R.cell ~home:node 0;
              spin = R.cell ~home:node 0;
              qnode_node = node;
            });
      threshold;
      sec_head = 0;
      sec_tail = 0;
      passes = 0;
      local_handoffs = 0;
      remote_handoffs = 0;
      splices = 0;
    }

  let snapshot t =
    {
      local_handoffs = t.local_handoffs;
      remote_handoffs = t.remote_handoffs;
      splices = t.splices;
    }

  let locked t = R.read t.tail <> 0

  (* No atomic exchange in the runtime: emulate the MCS tail swap. *)
  let rec swap_tail t me =
    let prev = R.read t.tail in
    if R.cas t.tail prev me then prev else swap_tail t me

  let lock t =
    let me = R.tid () + 1 in
    let q = t.qnodes.(me - 1) in
    R.write q.next 0;
    R.write q.spin 0;
    let prev = swap_tail t me in
    if prev <> 0 then begin
      R.write t.qnodes.(prev - 1).next me;
      (* spin on our own node-local cell — the MCS property; no backoff
         needed because nobody else ever touches this line *)
      while R.read q.spin = 0 do
        R.yield ()
      done
    end
  (* [prev = 0]: the lock was free.  Free implies the secondary queue is
     empty (a holder never releases while it is nonempty), so the
     inherited holder-only fields are already in their reset state. *)

  let try_lock t =
    if R.read t.tail <> 0 then false
    else begin
      let me = R.tid () + 1 in
      R.write t.qnodes.(me - 1).next 0;
      R.cas t.tail 0 me
    end

  (* Grant the lock to waiter [h]: counters first (plain), then the
     publishing write to its spin cell. *)
  let grant t ~my_node h =
    let g = t.qnodes.(h - 1) in
    if g.qnode_node = my_node then
      t.local_handoffs <- t.local_handoffs + 1
    else t.remote_handoffs <- t.remote_handoffs + 1;
    if Nr_obs.Sink.tracing () then
      Nr_obs.Sink.instant ~tid:(R.tid ()) ~node:my_node ~cat:"cna"
        ~arg:(if g.qnode_node = my_node then 1 else 0)
        "handoff";
    R.write g.spin 1

  (* A successor is enqueuing (it swapped the tail but has not linked our
     [next] yet): wait for the link. *)
  let rec wait_next q =
    let s = R.read q.next in
    if s <> 0 then s
    else begin
      R.yield ();
      wait_next q
    end

  (* Move the chain segment [first .. last] (linked via [next]) onto the
     tail of the secondary queue; [last]'s next is cut. *)
  let push_secondary t first last =
    if t.sec_head = 0 then t.sec_head <- first
    else R.write t.qnodes.(t.sec_tail - 1).next first;
    t.sec_tail <- last;
    R.write t.qnodes.(last - 1).next 0

  (* Scan the arrived main chain from [cur] for the first waiter on
     [my_node]; remote waiters ahead of it move to the secondary queue.
     When every arrived waiter is remote, hand off to the chain head
     (leaving the secondary for the next local holder to splice). *)
  let rec find_local t ~my_node head prev cur =
    let qn = t.qnodes.(cur - 1) in
    if qn.qnode_node = my_node then begin
      if prev <> 0 then push_secondary t head prev;
      t.passes <- t.passes + 1;
      grant t ~my_node cur
    end
    else
      let nx = R.read qn.next in
      if nx = 0 then begin
        (* no local waiter arrived: remote handoff, reset the streak *)
        t.passes <- 0;
        grant t ~my_node head
      end
      else find_local t ~my_node head cur nx

  (* Splice the secondary queue in front of successor [succ] and grant
     its head — the fairness path. *)
  let splice_secondary t ~my_node succ =
    R.write t.qnodes.(t.sec_tail - 1).next succ;
    let h = t.sec_head in
    t.sec_head <- 0;
    t.sec_tail <- 0;
    t.passes <- 0;
    t.splices <- t.splices + 1;
    grant t ~my_node h

  let unlock t =
    let me = R.tid () + 1 in
    let my_node = t.qnodes.(me - 1).qnode_node in
    let q = t.qnodes.(me - 1) in
    let succ = R.read q.next in
    if succ = 0 then begin
      if t.sec_head = 0 then begin
        if not (R.cas t.tail me 0) then
          (* a successor is mid-enqueue: link up and dispatch below *)
          let succ = wait_next q in
          if t.passes >= t.threshold && t.sec_head <> 0 then
            splice_secondary t ~my_node succ
          else find_local t ~my_node succ 0 succ
      end
      else begin
        (* main queue drained but remote waiters are parked: promote the
           secondary queue to main (its chain is already linked and its
           tail's next is cut) and grant its head *)
        let h = t.sec_head and st = t.sec_tail in
        if R.cas t.tail me st then begin
          t.sec_head <- 0;
          t.sec_tail <- 0;
          t.passes <- 0;
          t.splices <- t.splices + 1;
          grant t ~my_node h
        end
        else begin
          let succ = wait_next q in
          (* a waiter arrived meanwhile: append it behind the promoted
             secondary chain instead of swapping queues *)
          R.write t.qnodes.(st - 1).next succ;
          t.sec_head <- 0;
          t.sec_tail <- 0;
          t.passes <- 0;
          t.splices <- t.splices + 1;
          (* the promoted chain replaces the main queue; the tail cell
             already points at the true last waiter *)
          grant t ~my_node h
        end
      end
    end
    else if t.passes >= t.threshold && t.sec_head <> 0 then
      splice_secondary t ~my_node succ
    else find_local t ~my_node succ 0 succ
end

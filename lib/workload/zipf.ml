type t = { n : int; theta : float; cdf : float array }

let create ?(theta = 1.5) ~n () =
  if n <= 0 then invalid_arg "Zipf.create: n must be > 0";
  if theta <= 0.0 then invalid_arg "Zipf.create: theta must be > 0";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for k = 0 to n - 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int (k + 1)) theta);
    cdf.(k) <- !acc
  done;
  let total = !acc in
  for k = 0 to n - 1 do
    cdf.(k) <- cdf.(k) /. total
  done;
  { n; theta; cdf }

let n t = t.n
let theta t = t.theta

let sample t rng =
  let u = Prng.float rng in
  (* smallest k with cdf.(k) >= u *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let pmf t k =
  if k < 0 || k >= t.n then invalid_arg "Zipf.pmf: rank out of range";
  if k = 0 then t.cdf.(0) else t.cdf.(k) -. t.cdf.(k - 1)

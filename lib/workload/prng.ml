(* splitmix64, bit-for-bit — but computed on pairs of 32-bit halves held in
   native ints instead of boxed [int64]s.  Without flambda every [Int64]
   intermediate allocates, which made the generator the single largest
   allocation site of the workload loops (several boxes per draw, and the
   skip list draws levels on every insert).  The halves representation costs
   a few more integer instructions but zero allocation, and produces exactly
   the same stream: [test_prng] and the seeded experiments pin this. *)

type t = {
  mutable hi : int;  (** upper 32 bits of the state *)
  mutable lo : int;  (** lower 32 bits of the state *)
  (* last mixed output; helpers "return" a 64-bit value through these so no
     pair is allocated.  A generator is owned by one thread. *)
  mutable out_hi : int;
  mutable out_lo : int;
}

let mask32 = 0xFFFFFFFF

(* golden gamma 0x9E3779B97F4A7C15 *)
let gamma_hi = 0x9E3779B9
let gamma_lo = 0x7F4A7C15

let create ~seed =
  {
    hi = (seed asr 32) land mask32;
    lo = seed land mask32;
    out_hi = 0;
    out_lo = 0;
  }

let copy t = { hi = t.hi; lo = t.lo; out_hi = 0; out_lo = 0 }

(* out <- low 64 bits of (xh.xl * yh.yl), via 16-bit limbs: 32-bit limb
   products would overflow the 63-bit native int. *)
let[@inline] mul_into t xh xl yh yl =
  let a0 = xl land 0xFFFF and a1 = xl lsr 16 in
  let a2 = xh land 0xFFFF and a3 = xh lsr 16 in
  let b0 = yl land 0xFFFF and b1 = yl lsr 16 in
  let b2 = yh land 0xFFFF and b3 = yh lsr 16 in
  let r0 = a0 * b0 in
  let r1 = (r0 lsr 16) + (a0 * b1) + (a1 * b0) in
  let r2 = (r1 lsr 16) + (a0 * b2) + (a1 * b1) + (a2 * b0) in
  let r3 = (r2 lsr 16) + (a0 * b3) + (a1 * b2) + (a2 * b1) + (a3 * b0) in
  t.out_lo <- ((r1 land 0xFFFF) lsl 16) lor (r0 land 0xFFFF);
  t.out_hi <- ((r3 land 0xFFFF) lsl 16) lor (r2 land 0xFFFF)

(* state += gamma; out <- mix64(state). *)
let advance_mix t =
  let s = t.lo + gamma_lo in
  let lo = s land mask32 in
  let hi = (t.hi + gamma_hi + (s lsr 32)) land mask32 in
  t.hi <- hi;
  t.lo <- lo;
  (* z ^= z >>> 30; z *= 0xBF58476D1CE4E5B9 *)
  let zl = lo lxor (((lo lsr 30) lor (hi lsl 2)) land mask32) in
  let zh = hi lxor (hi lsr 30) in
  mul_into t zh zl 0xBF58476D 0x1CE4E5B9;
  (* z ^= z >>> 27; z *= 0x94D049BB133111EB *)
  let zl = t.out_lo lxor (((t.out_lo lsr 27) lor (t.out_hi lsl 5)) land mask32)
  and zh = t.out_hi lxor (t.out_hi lsr 27) in
  mul_into t zh zl 0x94D049BB 0x133111EB;
  (* z ^= z >>> 31 *)
  let zl = t.out_lo and zh = t.out_hi in
  t.out_lo <- zl lxor (((zl lsr 31) lor (zh lsl 1)) land mask32);
  t.out_hi <- zh lxor (zh lsr 31)

let next_int64 t =
  advance_mix t;
  Int64.logor
    (Int64.shift_left (Int64.of_int t.out_hi) 32)
    (Int64.of_int t.out_lo)

let split t =
  advance_mix t;
  { hi = t.out_hi; lo = t.out_lo; out_hi = 0; out_lo = 0 }

(* [Int64.to_int] kept the low 63 bits and [land max_int] then cleared the
   62nd; reproduce exactly. *)
let next t =
  advance_mix t;
  ((t.out_hi land 0x3FFFFFFF) lsl 32) lor t.out_lo

let below t n =
  if n <= 0 then invalid_arg "Prng.below: bound must be > 0";
  (* rejection-free modulo is fine here: n is tiny relative to 2^62 *)
  next t mod n

let float t =
  (* 53 high-quality bits into the mantissa *)
  advance_mix t;
  let bits = (t.out_hi lsl 21) lor (t.out_lo lsr 11) in
  float_of_int bits *. (1.0 /. 9007199254740992.0)

let bool t =
  advance_mix t;
  t.out_lo land 1 = 1

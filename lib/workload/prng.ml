type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next_int64 t in
  { state = seed }

let next t = Int64.to_int (next_int64 t) land max_int

let below t n =
  if n <= 0 then invalid_arg "Prng.below: bound must be > 0";
  (* rejection-free modulo is fine here: n is tiny relative to 2^62 *)
  next t mod n

let float t =
  (* 53 high-quality bits into the mantissa *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

module Make (R : Nr_runtime.Runtime_intf.S) = struct
  type t = { buffer : int array; rng : Prng.t }

  let create ?(buffer_size = 8192) ~seed () =
    { buffer = Array.make (max 1 buffer_size) 0; rng = Prng.create ~seed }

  (* Roughly what a scattered store costs on real hardware: mostly L1/L2
     hits with occasional misses. *)
  let cycles_per_location = 6

  let run t e =
    if e > 0 then begin
      let n = Array.length t.buffer in
      for _ = 1 to e do
        let i = Prng.below t.rng n in
        t.buffer.(i) <- t.buffer.(i) + 1
      done;
      R.work (e * cycles_per_location)
    end
end

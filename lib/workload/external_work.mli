(** The benchmark's "external work" knob (paper §8.1): between data
    structure operations, a thread writes [e] random locations outside the
    structure, polluting its caches and lowering the operation arrival
    rate.  The functor charges the modeled cost through the runtime so the
    simulator accounts for it. *)

module Make (R : Nr_runtime.Runtime_intf.S) : sig
  type t

  val create : ?buffer_size:int -> seed:int -> unit -> t
  (** One per thread; [buffer_size] is the private scratch area (in words)
      whose random slots get written. *)

  val run : t -> int -> unit
  (** [run t e] performs [e] units of external work. *)
end

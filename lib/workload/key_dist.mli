(** Key distributions for benchmark workloads. *)

type t =
  | Uniform of int  (** uniform over [0, n) *)
  | Zipfian of Zipf.t  (** zipf-distributed ranks, rank = key *)

val uniform : int -> t
val zipf : ?theta:float -> n:int -> unit -> t
val sample : t -> Prng.t -> int
val space : t -> int
val name : t -> string

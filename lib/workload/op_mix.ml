type kind = Add | Remove | Read

let sample ~update_percent rng =
  if update_percent < 0 || update_percent > 100 then
    invalid_arg "Op_mix.sample: update_percent must be in [0,100]";
  let r = Prng.below rng 100 in
  if r < update_percent then if r land 1 = 0 then Add else Remove else Read

let pp_kind ppf = function
  | Add -> Format.pp_print_string ppf "add"
  | Remove -> Format.pp_print_string ppf "remove"
  | Read -> Format.pp_print_string ppf "read"

(** The canonical string key space of the KV workloads: key [i] is
    ["k<i>"].  One shared definition so benchmark bodies, shard-balance
    tests and the checker's generators all draw from the same space (the
    sharded router's key-to-shard mapping is a function of these exact
    bytes). *)

let key i = "k" ^ string_of_int i

let pool n = Array.init n key
(** Precomputed pool for hot loops: index with a sampled rank instead of
    allocating a fresh key string per operation. *)

(** Deterministic pseudo-random number generation.

    All randomness in the library — skip-list levels, workload key choices,
    zipf sampling — flows through explicitly seeded generators, so every
    experiment and every replica is reproducible.  The generator is
    splitmix64 (Steele et al.), small, fast and statistically solid for
    simulation purposes. *)

type t

val create : seed:int -> t

val copy : t -> t
(** An independent generator in the same state. *)

val split : t -> t
(** A new generator derived from (and advancing) [t]; streams are
    decorrelated. *)

val next_int64 : t -> int64
(** Uniform on all 64-bit values. *)

val next : t -> int
(** Uniform non-negative OCaml int (63-bit). *)

val below : t -> int -> int
(** [below t n] is uniform on [0, n).  Raises [Invalid_argument] when
    [n <= 0]. *)

val float : t -> float
(** Uniform on [0, 1). *)

val bool : t -> bool

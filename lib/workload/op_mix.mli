(** The benchmark's generic operation mix (paper §8.1): a ratio of update
    operations (split evenly between adds and removes, keeping structure
    size steady) against read operations. *)

type kind = Add | Remove | Read

val sample : update_percent:int -> Prng.t -> kind
(** [sample ~update_percent rng] draws [Add] or [Remove] (each with
    probability [update_percent/200]) or [Read].  [update_percent] must lie
    in [0, 100]. *)

val pp_kind : Format.formatter -> kind -> unit

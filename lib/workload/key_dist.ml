type t = Uniform of int | Zipfian of Zipf.t

let uniform n =
  if n <= 0 then invalid_arg "Key_dist.uniform: n must be > 0";
  Uniform n

let zipf ?theta ~n () = Zipfian (Zipf.create ?theta ~n ())

let sample t rng =
  match t with
  | Uniform n -> Prng.below rng n
  | Zipfian z -> Zipf.sample z rng

let space = function Uniform n -> n | Zipfian z -> Zipf.n z

let name = function
  | Uniform _ -> "uniform"
  | Zipfian z -> Printf.sprintf "zipf(%.1f)" (Zipf.theta z)

(** Zipf-distributed key sampling.

    The paper's high-contention dictionary workload (§8.1.3) picks keys from
    a zipf distribution with parameter 1.5, concentrating most accesses on a
    few hot keys.  The sampler precomputes the normalized CDF once and
    samples by binary search, so draws are exact and O(log n). *)

type t

val create : ?theta:float -> n:int -> unit -> t
(** Distribution over ranks [0, n) with exponent [theta] (default 1.5:
    P(rank k) proportional to 1/(k+1)^theta). *)

val n : t -> int
val theta : t -> float

val sample : t -> Prng.t -> int
(** Draw a rank in [0, n); rank 0 is the hottest. *)

val pmf : t -> int -> float
(** Probability of a given rank. *)

(** Sharded Node Replication: hash-partition the key space across
    [cfg.shards] independent NR instances — each with its own log,
    replicas and combiners — behind the same executor surface as plain
    NR.  Lifts the single-log ceiling the paper concedes in §8.3 for
    update-heavy workloads, while each shard's linearizability argument
    is exactly plain NR's.

    {2 Linearization argument}

    Single-key operations execute on the key's home shard under that
    shard's reader slot of a per-shard {!Nr_sync.Rwlock_dist}; their
    linearization point is the one plain NR gives them (inside the
    shard's log/replica protocol, which includes the [completedTail]
    freshness wait for reads).

    Cross-shard operations (MGET/MSET/DBSIZE/FLUSHALL) write-acquire the
    locks of every involved shard in canonical (ascending) order, then
    run one sub-operation per shard through that shard's NR instance,
    then release.  Write acquisition drains the in-flight single-key
    operations of those shards and blocks new ones, so the whole
    multi-shard window is atomic with respect to single-key traffic; and
    each sub-operation inherits NR's per-shard freshness guarantee, so a
    cross-shard read observes everything that completed before the locks
    were taken.  The linearization point is any instant inside the fully
    locked window.  Ascending acquisition order across all cross-shard
    operations rules out deadlock (single-key ops hold at most one lock
    and never block on another).

    {2 shards = 1}

    With one shard there is nothing to coordinate: no locks are
    allocated or touched and every operation goes straight to the single
    NR instance.  Routing is pure OCaml (zero virtual time), so the
    charge sequence is byte-identical to plain NR — op-count-identical
    under the hot-path determinism guard. *)

type route =
  | Single of string  (** touches one key: executes on its home shard *)
  | Cross  (** multi-key / whole-store: goes through the coordinator *)

(** How the coordinator takes a compound transaction apart.  A structure
    that has transactions exposes [decompose]; everything else says
    [None] and pays nothing.

    A transaction whose keys (watches + body) all live on one shard is
    submitted whole through that shard's NR — one compound log entry,
    plain NR's linearization.  A cross-shard transaction runs as a
    two-phase guarded window under the canonical-order write locks:
    phase 1 probes each involved shard's watch stamps with [test] (a
    read), and only if every probe [passed] does phase 2 execute the body
    commands — so no shard ever commits a transaction another shard
    aborted, and the fully-locked window gives the whole block one
    linearization point exactly as for the other cross-shard ops. *)
type ('op, 'res) txn_support = {
  decompose : 'op -> ((string * int) list * 'op list) option;
  test : (string * int) list -> 'op;  (** read-only per-shard stamp probe *)
  passed : 'res -> bool;  (** did the probe validate? *)
  abort : 'res;  (** the whole-transaction abort reply *)
  commit : 'res list -> 'res;  (** assemble body replies *)
  lift : 'op -> 'op;
      (** wrap one body command so it executes with the transaction's
          deterministic (logical-clock) read semantics when submitted to
          a shard on its own — e.g. as a singleton compound entry *)
  unlift : 'res -> 'res;  (** undo [lift] on the command's reply *)
}

(** What the sharded wrapper needs beyond {!Nr_core.Ds_intf.S}: a route
    per operation, and for cross-shard operations a split into at most
    one sub-operation per shard plus a merge of the sub-results. *)
module type SHARDABLE = sig
  include Nr_core.Ds_intf.S

  val route : op -> route

  val split :
    op -> shards:int -> shard_of:(string -> int) -> (int * op) list
  (** Sub-operations of a cross-shard op, in strictly ascending shard
      order (the coordinator's canonical lock order), at most one per
      shard, only for shards actually involved. *)

  val merge :
    op ->
    shards:int ->
    shard_of:(string -> int) ->
    (int * result) list ->
    result
  (** Combine the sub-results (same shard indices [split] produced) into
      the operation's reply. *)

  val txn : (op, result) txn_support option
  (** [None] for structures without compound transactions. *)
end

module Make (R : Nr_runtime.Runtime_intf.S) (Sub : SHARDABLE) = struct
  module NR = Nr_core.Node_replication.Make (R) (Sub)
  module Rw = Nr_sync.Rwlock_dist.Make (R)

  type t = {
    cfg : Nr_core.Config.t;
    router : Router.t;
    shards : NR.t array;
    locks : Rw.t array;  (** empty when [shards = 1]: pure passthrough *)
    stats : Shard_stats.t;
  }

  let create ?(cfg = Nr_core.Config.default)
      ~(factory : shard:int -> shard_of:(string -> int) -> unit -> Sub.t) () =
    Nr_core.Config.validate cfg;
    let n = cfg.Nr_core.Config.shards in
    let bypass =
      cfg.Nr_core.Config.mutation = Some Nr_core.Config.Router_bypass
    in
    let router =
      Router.create ~bypass ~shards:n ~seed:cfg.Nr_core.Config.router_seed ()
    in
    let shard_of = Router.shard_of router in
    let shards =
      Array.init n (fun i -> NR.create ~cfg (factory ~shard:i ~shard_of))
    in
    let locks =
      if n = 1 then [||]
      else
        (* writer flag + slots homed round-robin so cross-shard traffic
           does not all hammer node 0; shard locks inherit the CNA and
           patience knobs so multi-key writers hand off NUMA-locally and
           single-key readers back off under the shared patience cap *)
        Array.init n (fun i ->
            Rw.create
              ~home:(i mod R.num_nodes ())
              ?writer_cna:
                (if cfg.Nr_core.Config.cna_lock then
                   Some cfg.Nr_core.Config.cna_threshold
                 else None)
              ?patience:cfg.Nr_core.Config.read_patience
              ~readers:(R.max_threads ()) ())
    in
    { cfg; router; shards; locks; stats = Shard_stats.create ~shards:n () }

  let num_shards t = Array.length t.shards
  let config t = t.cfg
  let router t = t.router
  let stats t = t.stats

  let nr_stats t = Array.map NR.stats t.shards
  (** Per-shard NR counters.  (Each shard also registers with
      {!Nr_core.Stats}'s run-scoped collection, so harness totals
      aggregate across shards with no extra wiring.) *)

  let exec_single t s op =
    let slot = R.tid () in
    Rw.read_lock t.locks.(s) slot;
    let r = NR.execute t.shards.(s) op in
    Rw.read_unlock t.locks.(s) slot;
    Shard_stats.record_single t.stats s;
    r

  let exec_cross t op =
    let shards = Array.length t.shards in
    let shard_of = Router.shard_of t.router in
    let subs = Sub.split op ~shards ~shard_of in
    let tracing = Nr_obs.Sink.tracing () in
    if tracing then
      Nr_obs.Sink.span_begin ~tid:(R.tid ()) ~node:(R.my_node ())
        ~cat:"shard" "cross";
    (* canonical ascending order: [split]'s contract *)
    List.iter (fun (i, _) -> Rw.write_lock t.locks.(i)) subs;
    let results =
      List.map (fun (i, sub) -> (i, NR.execute t.shards.(i) sub)) subs
    in
    List.iter (fun (i, _) -> Rw.write_unlock t.locks.(i)) subs;
    let locks = List.length subs in
    Shard_stats.record_cross t.stats ~subops:locks ~locks;
    if tracing then
      Nr_obs.Sink.span_end ~tid:(R.tid ()) ~node:(R.my_node ()) ~cat:"shard"
        ~arg:locks "cross";
    Sub.merge op ~shards ~shard_of results

  (* Two-phase guarded transaction across shards; all involved locks are
     already ordered ascending by construction of [slots]. *)
  let exec_txn t ts op ~watches ~body =
    let n = Array.length t.shards in
    let shard_of = Router.shard_of t.router in
    let involved = Array.make n false in
    List.iter (fun (k, _) -> involved.(shard_of k) <- true) watches;
    List.iter
      (fun c ->
        match Sub.route c with
        | Single k -> involved.(shard_of k) <- true
        | Cross -> Array.fill involved 0 n true)
      body;
    let slots =
      List.filter (fun i -> involved.(i)) (List.init n (fun i -> i))
    in
    match slots with
    | [] | [ _ ] ->
        (* at most one shard involved: the compound entry goes through that
           shard's log whole — a single linearization point for free *)
        let s = match slots with [ s ] -> s | _ -> 0 in
        exec_single t s op
    | slots ->
        let tracing = Nr_obs.Sink.tracing () in
        if tracing then
          Nr_obs.Sink.span_begin ~tid:(R.tid ()) ~node:(R.my_node ())
            ~cat:"shard" "txn";
        List.iter (fun i -> Rw.write_lock t.locks.(i)) slots;
        let ok =
          List.for_all
            (fun i ->
              let ws_i =
                List.filter (fun (k, _) -> shard_of k = i) watches
              in
              ws_i = []
              || ts.passed (NR.execute t.shards.(i) (ts.test ws_i)))
            slots
        in
        let result =
          if not ok then ts.abort
          else
            ts.commit
              (List.map
                 (fun c ->
                   (* body commands submitted per shard are lifted so their
                      reads stay logical — byte-for-byte the semantics the
                      single-shard compound entry gives the same body *)
                   match Sub.route c with
                   | Single k ->
                       ts.unlift
                         (NR.execute t.shards.(shard_of k) (ts.lift c))
                   | Cross ->
                       let subs = Sub.split c ~shards:n ~shard_of in
                       Sub.merge c ~shards:n ~shard_of
                         (List.map
                            (fun (i, sub) ->
                              ( i,
                                ts.unlift
                                  (NR.execute t.shards.(i) (ts.lift sub)) ))
                            subs))
                 body)
        in
        List.iter (fun i -> Rw.write_unlock t.locks.(i)) slots;
        let locks = List.length slots in
        Shard_stats.record_cross t.stats ~subops:(List.length body) ~locks;
        if tracing then
          Nr_obs.Sink.span_end ~tid:(R.tid ()) ~node:(R.my_node ())
            ~cat:"shard" ~arg:locks "txn";
        result

  let execute t op =
    if Array.length t.locks = 0 then NR.execute t.shards.(0) op
    else
      let parts =
        match Sub.txn with
        | Some ts -> (
            match ts.decompose op with
            | Some (w, b) -> Some (ts, w, b)
            | None -> None)
        | None -> None
      in
      match parts with
      | Some (ts, watches, body) -> exec_txn t ts op ~watches ~body
      | None -> (
          match Sub.route op with
          | Single key ->
              let s =
                if Sub.is_read_only op then Router.read_shard_of t.router key
                else Router.shard_of t.router key
              in
              exec_single t s op
          | Cross -> exec_cross t op)

  let register_metrics reg ?prefix t =
    Shard_stats.register_metrics reg ?prefix t.stats

  (** Quiescent-only introspection, mirroring {!NR.Unsafe}. *)
  module Unsafe = struct
    let shard t i = t.shards.(i)
    let sync t = Array.iter NR.Unsafe.sync t.shards

    let replica t ~shard ~node = NR.Unsafe.replica t.shards.(shard) node
  end
end

(** Deterministic, seeded key-to-shard router (pure computation: routing
    charges no virtual time on the simulator). *)

type t

val create : ?bypass:bool -> shards:int -> seed:int -> unit -> t
(** A router over [shards] shards.  [seed] fixes the key hash, hence the
    whole key-to-shard mapping.  [bypass] arms the seeded router-bypass
    bug ({!Nr_core.Config.Router_bypass}): {!read_shard_of} then misroutes
    every single-key read one shard over.

    @raise Invalid_argument if [shards < 1]. *)

val shards : t -> int
val seed : t -> int
val bypass : t -> bool

val hash : seed:int -> string -> int
(** The raw non-negative key hash: FNV-1a folded through a seeded
    splitmix-style finalizer.  Stable across runs by construction. *)

val shard_of : t -> string -> int
(** Home shard of a key — where its updates always go. *)

val read_shard_of : t -> string -> int
(** Shard a single-key {e read} consults: equal to {!shard_of} unless the
    bypass mutation is armed (and [shards > 1]). *)

(** Per-shard operation counters for the sharded wrapper.

    Same racy-counter caveat as {!Nr_core.Stats}: plain mutable fields,
    exact on the single-OS-thread simulator, reporting-only on domains. *)

type t = {
  single_ops : int array;  (** single-key ops routed to each shard *)
  mutable cross_ops : int;  (** cross-shard (multi-key) operations *)
  mutable cross_subops : int;  (** per-shard sub-operations they split into *)
  mutable cross_locks : int;  (** shard write-locks taken by cross ops *)
}

let create ~shards () =
  {
    single_ops = Array.make shards 0;
    cross_ops = 0;
    cross_subops = 0;
    cross_locks = 0;
  }

let shards t = Array.length t.single_ops

let record_single t shard =
  t.single_ops.(shard) <- t.single_ops.(shard) + 1

let record_cross t ~subops ~locks =
  t.cross_ops <- t.cross_ops + 1;
  t.cross_subops <- t.cross_subops + subops;
  t.cross_locks <- t.cross_locks + locks

let total_single t = Array.fold_left ( + ) 0 t.single_ops

(** Max/min per-shard load ratio — 1.0 is a perfectly balanced router.
    0 when some shard saw no ops at all (reported as 0, not an error,
    so short runs stay printable). *)
let balance t =
  let mx = Array.fold_left max 0 t.single_ops in
  let mn = Array.fold_left min max_int t.single_ops in
  if mn = 0 then 0.0 else float_of_int mx /. float_of_int mn

let pp ppf t =
  Format.fprintf ppf "single=[%s] cross=%d subops=%d locks=%d"
    (String.concat ";"
       (Array.to_list (Array.map string_of_int t.single_ops)))
    t.cross_ops t.cross_subops t.cross_locks

let register_metrics reg ?(prefix = "shard") t =
  Array.iteri
    (fun i _ ->
      Nr_obs.Metrics.counter reg
        ~name:(Printf.sprintf "%s%d_single_ops" prefix i)
        ~help:"single-key operations routed to this shard"
        (fun () -> t.single_ops.(i)))
    t.single_ops;
  Nr_obs.Metrics.counter reg ~name:(prefix ^ "_cross_ops")
    ~help:"cross-shard operations"
    (fun () -> t.cross_ops);
  Nr_obs.Metrics.counter reg ~name:(prefix ^ "_cross_subops")
    ~help:"per-shard sub-operations of cross-shard operations"
    (fun () -> t.cross_subops);
  Nr_obs.Metrics.counter reg ~name:(prefix ^ "_cross_locks")
    ~help:"shard write-locks taken by cross-shard operations"
    (fun () -> t.cross_locks);
  Nr_obs.Metrics.gauge reg ~name:(prefix ^ "_balance")
    ~help:"max/min per-shard single-op load (1.0 = balanced)"
    (fun () -> balance t)

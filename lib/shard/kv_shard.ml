(** The KV store as a shardable structure: routes for every command in
    {!Nr_kvstore.Command}, and split/merge for the four cross-shard ones
    (MGET / MSET / DBSIZE / FLUSHALL).

    Key-less commands (PING, SLOWLOG introspection reached directly)
    route as [Single ""] — any fixed key gives them a deterministic home
    shard without the coordinator. *)

module C = Nr_kvstore.Command
include Nr_kvstore.Store

let route : op -> Sharded.route = function
  | C.Ping | C.Slowlog_get | C.Slowlog_reset | C.Slowlog_len
  | C.Sync | C.Psync _ | C.Wait _ | C.Replack _
  (* session-state commands are answered before routing; reaching a shard
     just yields the store's polite refusal *)
  | C.Multi | C.Exec | C.Discard | C.Watch _ | C.Unwatch
  | C.Expire _ | C.Pexpire _ ->
      Sharded.Single ""
  | C.Get k
  | C.Set (k, _)
  | C.Del k
  | C.Exists k
  | C.Incr k
  | C.Incrby (k, _)
  | C.Zadd (k, _, _)
  | C.Zincrby (k, _, _)
  | C.Zrank (k, _)
  | C.Zscore (k, _)
  | C.Zcard k
  | C.Zrange (k, _, _)
  | C.Zrem (k, _)
  | C.Pexpireat (k, _)
  | C.Ttl k
  | C.Pttl k
  | C.Persist k
  | C.Getver k
  | C.Setver (k, _)
  | C.Expire_evict (k, _) ->
      Sharded.Single k
  | C.Txn_test ws ->
      (* standalone probe: home it on its first watched key (the sharded
         coordinator issues per-shard probes directly, never through here) *)
      Sharded.Single (match ws with (k, _) :: _ -> k | [] -> "")
  | C.Mget _ | C.Mset _ | C.Dbsize | C.Flushall
  (* TICK must advance every shard's logical clock; RESET every shard *)
  | C.Tick _ | C.Reset
  (* transactions are intercepted by the coordinator's txn support before
     routing; Cross documents "may touch anything" for completeness *)
  | C.Txn _ ->
      Sharded.Cross

(* Bucket [items] by shard of [key_of item], preserving relative order
   within a shard (MSET's later-wins semantics depends on it), ascending
   shard order, empty shards dropped. *)
let bucket ~shards ~shard_of ~key_of items =
  let qs = Array.make shards [] in
  List.iter (fun it -> qs.(shard_of (key_of it)) <- it :: qs.(shard_of (key_of it))) items;
  List.concat
    (List.init shards (fun i ->
         match qs.(i) with [] -> [] | l -> [ (i, List.rev l) ]))

let split op ~shards ~shard_of =
  match op with
  | C.Dbsize -> List.init shards (fun i -> (i, C.Dbsize))
  | C.Flushall -> List.init shards (fun i -> (i, C.Flushall))
  | C.Tick n -> List.init shards (fun i -> (i, C.Tick n))
  | C.Reset -> List.init shards (fun i -> (i, C.Reset))
  | C.Mget ks ->
      List.map
        (fun (i, ks) -> (i, C.Mget ks))
        (bucket ~shards ~shard_of ~key_of:Fun.id ks)
  | C.Mset ps ->
      List.map
        (fun (i, ps) -> (i, C.Mset ps))
        (bucket ~shards ~shard_of ~key_of:fst ps)
  | _ -> invalid_arg "Kv_shard.split: not a cross-shard command"

let merge op ~shards ~shard_of results =
  match op with
  | C.Dbsize ->
      C.Int
        (List.fold_left
           (fun acc (_, r) -> match r with C.Int n -> acc + n | _ -> acc)
           0 results)
  | C.Flushall | C.Mset _ | C.Reset -> C.Ok_reply
  | C.Tick _ ->
      (* every shard reports its (identical) advanced clock; any one will do *)
      (match results with (_, r) :: _ -> r | [] -> C.Int 0)
  | C.Mget ks ->
      (* each shard answered its keys in the order [split] sent them,
         i.e. original order restricted to the shard: replay the original
         key list, draining each shard's reply queue *)
      let qs = Array.make shards [] in
      List.iter
        (fun (i, r) ->
          match r with C.Array items -> qs.(i) <- items | _ -> ())
        results;
      C.Array
        (List.map
           (fun k ->
             let i = shard_of k in
             match qs.(i) with
             | r :: tl ->
                 qs.(i) <- tl;
                 r
             | [] -> C.Nil)
           ks)
  | _ -> invalid_arg "Kv_shard.merge: not a cross-shard command"

let txn : (op, result) Sharded.txn_support option =
  Some
    {
      Sharded.decompose =
        (function C.Txn (ws, body) -> Some (ws, body) | _ -> None);
      test = (fun ws -> C.Txn_test ws);
      passed = (function C.Int 1 -> true | _ -> false);
      abort = C.Nil;
      commit = (fun rs -> C.Array rs);
      lift = (fun c -> C.Txn ([], [ c ]));
      unlift = (function C.Array [ r ] -> r | r -> r);
    }

(** The KV store as a shardable structure: routes for every command in
    {!Nr_kvstore.Command}, and split/merge for the four cross-shard ones
    (MGET / MSET / DBSIZE / FLUSHALL).

    Key-less commands (PING, SLOWLOG introspection reached directly)
    route as [Single ""] — any fixed key gives them a deterministic home
    shard without the coordinator. *)

module C = Nr_kvstore.Command
include Nr_kvstore.Store

let route : op -> Sharded.route = function
  | C.Ping | C.Slowlog_get | C.Slowlog_reset | C.Slowlog_len
  | C.Sync | C.Psync _ | C.Wait _ | C.Replack _ ->
      (* replication handshakes are answered at the serving layer; routing
         them to a fixed shard just yields the store's polite refusal *)
      Sharded.Single ""
  | C.Get k
  | C.Set (k, _)
  | C.Del k
  | C.Exists k
  | C.Incr k
  | C.Incrby (k, _)
  | C.Zadd (k, _, _)
  | C.Zincrby (k, _, _)
  | C.Zrank (k, _)
  | C.Zscore (k, _)
  | C.Zcard k
  | C.Zrange (k, _, _)
  | C.Zrem (k, _) ->
      Sharded.Single k
  | C.Mget _ | C.Mset _ | C.Dbsize | C.Flushall -> Sharded.Cross

(* Bucket [items] by shard of [key_of item], preserving relative order
   within a shard (MSET's later-wins semantics depends on it), ascending
   shard order, empty shards dropped. *)
let bucket ~shards ~shard_of ~key_of items =
  let qs = Array.make shards [] in
  List.iter (fun it -> qs.(shard_of (key_of it)) <- it :: qs.(shard_of (key_of it))) items;
  List.concat
    (List.init shards (fun i ->
         match qs.(i) with [] -> [] | l -> [ (i, List.rev l) ]))

let split op ~shards ~shard_of =
  match op with
  | C.Dbsize -> List.init shards (fun i -> (i, C.Dbsize))
  | C.Flushall -> List.init shards (fun i -> (i, C.Flushall))
  | C.Mget ks ->
      List.map
        (fun (i, ks) -> (i, C.Mget ks))
        (bucket ~shards ~shard_of ~key_of:Fun.id ks)
  | C.Mset ps ->
      List.map
        (fun (i, ps) -> (i, C.Mset ps))
        (bucket ~shards ~shard_of ~key_of:fst ps)
  | _ -> invalid_arg "Kv_shard.split: not a cross-shard command"

let merge op ~shards ~shard_of results =
  match op with
  | C.Dbsize ->
      C.Int
        (List.fold_left
           (fun acc (_, r) -> match r with C.Int n -> acc + n | _ -> acc)
           0 results)
  | C.Flushall | C.Mset _ -> C.Ok_reply
  | C.Mget ks ->
      (* each shard answered its keys in the order [split] sent them,
         i.e. original order restricted to the shard: replay the original
         key list, draining each shard's reply queue *)
      let qs = Array.make shards [] in
      List.iter
        (fun (i, r) ->
          match r with C.Array items -> qs.(i) <- items | _ -> ())
        results;
      C.Array
        (List.map
           (fun k ->
             let i = shard_of k in
             match qs.(i) with
             | r :: tl ->
                 qs.(i) <- tl;
                 r
             | [] -> C.Nil)
           ks)
  | _ -> invalid_arg "Kv_shard.merge: not a cross-shard command"

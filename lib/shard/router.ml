(** Deterministic key-to-shard router.

    The hash is FNV-1a over the key bytes folded through a splitmix-style
    finalizer salted with the seed: pure OCaml computation, so routing
    costs zero virtual time on the simulator, and seeded, so the mapping
    is a function of [(seed, key)] alone — identical across runs,
    processes and machines, which is what lets a shard's replicas be
    prepopulated with exactly the keys the router will ever send there.

    [read_shard_of] exists for the checker: with the bypass mutation
    armed it misroutes {e single-key read-only} operations one shard
    over, the seeded bug a linearizability sweep must catch.  Updates
    (and all cross-shard ops) stay correctly routed, so the bug
    manifests precisely as reads consulting a shard that never saw the
    key — stale or missing values, never a torn write. *)

type t = {
  shards : int;
  seed : int;
  bypass : bool;  (** mutation: misroute single-key reads *)
}

let create ?(bypass = false) ~shards ~seed () =
  if shards < 1 then invalid_arg "Router.create: shards must be >= 1";
  { shards; seed; bypass }

let shards t = t.shards
let seed t = t.seed
let bypass t = t.bypass

let fnv_prime = 0x0100_0193
let fnv_offset = 0xCBF2_9CE4

let hash ~seed key =
  let h = ref (fnv_offset lxor (seed * 0x9E37_79B1)) in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * fnv_prime land max_int)
    key;
  (* splitmix-style avalanche so low bits are usable for [mod shards] *)
  let z = !h in
  let z = (z lxor (z lsr 30)) * 0xBF58_476D land max_int in
  let z = (z lxor (z lsr 27)) * 0x94D0_49BB land max_int in
  z lxor (z lsr 31)

let shard_of t key = hash ~seed:t.seed key mod t.shards

let read_shard_of t key =
  let s = shard_of t key in
  if t.bypass && t.shards > 1 then (s + 1) mod t.shards else s

(** Sequential skip list (Pugh) with rank support via per-link spans, as in
    Redis's zskiplist.  Serves as the paper's dictionary and priority-queue
    substrate and as the ordered half of the sorted set.

    Deterministic: levels come from a per-structure seeded PRNG, so NR
    replicas fed the same operations are structurally identical (§4). *)

module Make (K : Ordered.S) : sig
  type 'v t

  val create : ?seed:int -> unit -> 'v t
  (** An empty list; [seed] drives level generation. *)

  val length : 'v t -> int
  val is_empty : 'v t -> bool

  val copy : 'v t -> 'v t
  (** Structural deep copy (values shared), including the level-PRNG
      state: the copy behaves exactly like a structure that executed the
      original's operation history.  O(n) — much cheaper than replaying
      the inserts, which is what makes identically-populated NR replicas
      cheap to stamp out. *)

  val find : 'v t -> K.t -> 'v option
  val mem : 'v t -> K.t -> bool

  val insert : 'v t -> K.t -> 'v -> bool
  (** Insert if absent; [false] (and no change) when the key exists. *)

  val set : 'v t -> K.t -> 'v -> unit
  (** Insert or overwrite. *)

  val remove : 'v t -> K.t -> 'v option
  (** Remove and return the binding, if present. *)

  val min : 'v t -> (K.t * 'v) option
  (** Smallest key, O(1). *)

  val remove_min : 'v t -> (K.t * 'v) option
  (** Remove and return the smallest binding (priority-queue deleteMin). *)

  val rank : 'v t -> K.t -> int option
  (** 0-based rank: the number of strictly smaller keys; O(log n). *)

  val nth : 'v t -> int -> (K.t * 'v) option
  (** 0-based selection, the inverse of {!rank}; O(log n). *)

  val iter : (K.t -> 'v -> unit) -> 'v t -> unit
  val fold : ('acc -> K.t -> 'v -> 'acc) -> 'v t -> 'acc -> 'acc

  val to_list : 'v t -> (K.t * 'v) list
  (** Ascending key order. *)

  val validate : 'v t -> (unit, string) result
  (** Check sortedness, length agreement and that every span equals the
      bottom-level distance it claims to skip. *)
end

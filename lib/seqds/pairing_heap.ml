(** Sequential pairing heap (Fredman, Sedgewick, Sleator, Tarjan [26]): the
    paper's second priority-queue substrate.  [insert] and [find_min] are
    O(1); [remove_min] does the classic two-pass pairing of the root's
    children, O(log n) amortized. *)

module Make (K : Ordered.S) = struct
  type 'v node = { key : K.t; value : 'v; mutable children : 'v node list }
  type 'v t = { mutable root : 'v node option; mutable len : int }

  let create () = { root = None; len = 0 }
  let length t = t.len
  let is_empty t = t.len = 0

  (* Deep copy (values shared); child-list order is preserved, so the copy
     melds exactly like the original on every future operation. *)
  let rec copy_node n =
    { key = n.key; value = n.value; children = List.map copy_node n.children }

  let copy t = { root = Option.map copy_node t.root; len = t.len }

  let meld a b =
    if K.compare a.key b.key <= 0 then begin
      a.children <- b :: a.children;
      a
    end
    else begin
      b.children <- a :: b.children;
      b
    end

  let insert t key value =
    let node = { key; value; children = [] } in
    (match t.root with
    | None -> t.root <- Some node
    | Some r -> t.root <- Some (meld r node));
    t.len <- t.len + 1

  let find_min t =
    match t.root with Some r -> Some (r.key, r.value) | None -> None

  (* Two-pass: meld children pairwise left to right, then meld the pairs
     right to left. *)
  let rec merge_pairs = function
    | [] -> None
    | [ x ] -> Some x
    | a :: b :: rest -> (
        let ab = meld a b in
        match merge_pairs rest with
        | None -> Some ab
        | Some r -> Some (meld ab r))

  let remove_min t =
    match t.root with
    | None -> None
    | Some r ->
        t.root <- merge_pairs r.children;
        t.len <- t.len - 1;
        Some (r.key, r.value)

  let fold f t init =
    let rec go acc node =
      let acc = f acc node.key node.value in
      List.fold_left go acc node.children
    in
    match t.root with None -> init | Some r -> go init r

  let to_sorted_list t =
    let items = fold (fun acc k v -> (k, v) :: acc) t [] in
    List.sort (fun (a, _) (b, _) -> K.compare a b) items

  (* Heap-order invariant: every child's key >= its parent's. *)
  let validate t =
    let ok = ref (Ok ()) in
    let fail msg = if !ok = Ok () then ok := Error msg in
    let count = ref 0 in
    let rec go node =
      incr count;
      List.iter
        (fun child ->
          if K.compare child.key node.key < 0 then fail "heap order violated";
          go child)
        node.children
    in
    (match t.root with None -> () | Some r -> go r);
    if !count <> t.len then fail "length mismatch";
    !ok
end

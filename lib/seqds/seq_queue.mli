(** Sequential FIFO queue (two-list representation, amortized O(1)). *)

type 'v t

val create : unit -> 'v t
val length : 'v t -> int
val is_empty : 'v t -> bool
val enqueue : 'v t -> 'v -> unit
val dequeue : 'v t -> 'v option
val peek : 'v t -> 'v option

val to_list : 'v t -> 'v list
(** Front first. *)

(** FIFO queue as a black-box sequential structure.  Enqueues and
    dequeues hit opposite ends, so the contended lines are the two list
    heads rather than a single top-of-stack line. *)

type t = int Seq_queue.t
type op = Queue_ops.op
type result = Queue_ops.result

let create () = Seq_queue.create ()

let execute (t : t) : op -> result = function
  | Queue_ops.Enqueue v ->
      Seq_queue.enqueue t v;
      Queue_ops.Enqueued
  | Queue_ops.Dequeue -> Queue_ops.Dequeued (Seq_queue.dequeue t)
  | Queue_ops.Front -> Queue_ops.Fronted (Seq_queue.peek t)

let is_read_only = Queue_ops.is_read_only

let footprint (t : t) : op -> Nr_runtime.Footprint.t = function
  | Queue_ops.Enqueue _ ->
      (* tail-end line of the back list *)
      Nr_runtime.Footprint.v
        ~key:(Seq_queue.length t / 8)
        ~reads:1 ~writes:1 ~hot_write:true ()
  | Queue_ops.Dequeue ->
      (* front line; an occasional reversal walks the whole back list, but
         that cost is amortized into the constant here *)
      Nr_runtime.Footprint.v ~key:0 ~reads:1 ~writes:1 ~hot_write:true ()
  | Queue_ops.Front -> Nr_runtime.Footprint.v ~key:0 ~reads:1 ()

let lines (t : t) = max 64 (Seq_queue.length t)
let pp_op = Queue_ops.pp_op
let length = Seq_queue.length

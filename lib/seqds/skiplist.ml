(** Sequential skip list (Pugh [54]) with rank support via per-link spans
    (as in Redis's zskiplist), so it serves as the paper's dictionary, as a
    priority queue, and as the ordered half of the sorted set.

    Levels are drawn from a per-structure seeded PRNG: NR requires replicas
    fed the same operations to end in identical states, so all randomness
    is deterministic (paper §4). *)

module Make (K : Ordered.S) = struct
  let max_level = 32

  type 'v links = { fwd : 'v node option array; span : int array }
  and 'v node = { key : K.t; mutable value : 'v; links : 'v links }

  type 'v t = {
    head : 'v links;
    mutable level : int;
    mutable len : int;
    rng : Nr_workload.Prng.t;
    (* Reused predecessor/rank scratch for the *update* path (insert and
       remove are serialized by the caller — under NR, by the combiner
       lock), so mutating operations allocate only the inserted node.
       Read-side lookups ([rank], [nth]) keep local buffers: concurrent
       readers may share a replica on real domains. *)
    u_scratch : 'v links array;
    r_scratch : int array;
  }

  let create ?(seed = 0x5EED) () =
    let head =
      { fwd = Array.make max_level None; span = Array.make max_level 0 }
    in
    {
      head;
      level = 1;
      len = 0;
      rng = Nr_workload.Prng.create ~seed;
      u_scratch = Array.make max_level head;
      r_scratch = Array.make max_level 0;
    }

  let length t = t.len
  let is_empty t = t.len = 0

  (* Structural deep copy, values shared ([value] slots are copied
     shallowly): one bottom-level walk rebuilds every tower by appending
     each new node to the last new links record seen at each of its
     levels, and spans carry over verbatim.  The PRNG state is copied
     too, so a copy behaves exactly like a replica that executed the same
     operation history — NR replicas populated identically can be built
     once and copied, which is much cheaper than re-running the inserts. *)
  let copy t =
    let head =
      { fwd = Array.make max_level None; span = Array.copy t.head.span }
    in
    let last = Array.make max_level head in
    let rec clone = function
      | None -> ()
      | Some n ->
          let lvl = Array.length n.links.fwd in
          let node =
            {
              key = n.key;
              value = n.value;
              links =
                { fwd = Array.make lvl None; span = Array.copy n.links.span };
            }
          in
          for i = 0 to lvl - 1 do
            last.(i).fwd.(i) <- Some node;
            last.(i) <- node.links
          done;
          clone n.links.fwd.(0)
    in
    clone t.head.fwd.(0);
    {
      head;
      level = t.level;
      len = t.len;
      rng = Nr_workload.Prng.copy t.rng;
      u_scratch = Array.make max_level head;
      r_scratch = Array.make max_level 0;
    }

  (* Geometric with p = 1/4, like Redis. *)
  let random_level t =
    let lvl = ref 1 in
    while !lvl < max_level && Nr_workload.Prng.below t.rng 4 = 0 do
      incr lvl
    done;
    !lvl

  (* Walk down from the top level; [update.(i)] is the last links record at
     level [i] whose key is < [key], and [rank.(i)] the number of bottom
     links traversed to reach it. *)
  let find_path t key update rank =
    let x = ref t.head in
    let r = ref 0 in
    for i = t.level - 1 downto 0 do
      let continue = ref true in
      while !continue do
        match !x.fwd.(i) with
        | Some n when K.compare n.key key < 0 ->
            r := !r + !x.span.(i);
            x := n.links
        | Some _ | None -> continue := false
      done;
      rank.(i) <- !r;
      update.(i) <- !x
    done

  let find t key =
    let x = ref t.head in
    for i = t.level - 1 downto 0 do
      let continue = ref true in
      while !continue do
        match !x.fwd.(i) with
        | Some n when K.compare n.key key < 0 -> x := n.links
        | Some _ | None -> continue := false
      done
    done;
    match !x.fwd.(0) with
    | Some n when K.compare n.key key = 0 -> Some n.value
    | Some _ | None -> None

  let mem t key = find t key <> None

  let insert t key value =
    let update = t.u_scratch in
    let rank = t.r_scratch in
    find_path t key update rank;
    match update.(0).fwd.(0) with
    | Some n when K.compare n.key key = 0 -> false
    | Some _ | None ->
        let lvl = random_level t in
        if lvl > t.level then begin
          for i = t.level to lvl - 1 do
            rank.(i) <- 0;
            update.(i) <- t.head;
            t.head.span.(i) <- t.len
          done;
          t.level <- lvl
        end;
        let node =
          {
            key;
            value;
            links = { fwd = Array.make lvl None; span = Array.make lvl 0 };
          }
        in
        for i = 0 to lvl - 1 do
          node.links.fwd.(i) <- update.(i).fwd.(i);
          update.(i).fwd.(i) <- Some node;
          node.links.span.(i) <- update.(i).span.(i) - (rank.(0) - rank.(i));
          update.(i).span.(i) <- rank.(0) - rank.(i) + 1
        done;
        for i = lvl to t.level - 1 do
          update.(i).span.(i) <- update.(i).span.(i) + 1
        done;
        t.len <- t.len + 1;
        true

  let set t key value =
    let x = ref t.head in
    for i = t.level - 1 downto 0 do
      let continue = ref true in
      while !continue do
        match !x.fwd.(i) with
        | Some n when K.compare n.key key < 0 -> x := n.links
        | Some _ | None -> continue := false
      done
    done;
    match !x.fwd.(0) with
    | Some n when K.compare n.key key = 0 -> n.value <- value
    | Some _ | None -> ignore (insert t key value)

  (* Unlink [node], whose predecessor links are in [update]. *)
  let unlink t node update =
    for i = 0 to t.level - 1 do
      (match update.(i).fwd.(i) with
      | Some m when m == node ->
          update.(i).span.(i) <- update.(i).span.(i) + node.links.span.(i) - 1;
          update.(i).fwd.(i) <- node.links.fwd.(i)
      | Some _ | None -> update.(i).span.(i) <- update.(i).span.(i) - 1);
      ()
    done;
    while t.level > 1 && t.head.fwd.(t.level - 1) = None do
      t.level <- t.level - 1
    done;
    t.len <- t.len - 1

  let remove t key =
    let update = t.u_scratch in
    let rank = t.r_scratch in
    find_path t key update rank;
    match update.(0).fwd.(0) with
    | Some n when K.compare n.key key = 0 ->
        unlink t n update;
        Some n.value
    | Some _ | None -> None

  let min t =
    match t.head.fwd.(0) with Some n -> Some (n.key, n.value) | None -> None

  let remove_min t =
    match t.head.fwd.(0) with
    | None -> None
    | Some first ->
        for i = 0 to t.level - 1 do
          match t.head.fwd.(i) with
          | Some m when m == first ->
              t.head.span.(i) <- t.head.span.(i) + first.links.span.(i) - 1;
              t.head.fwd.(i) <- first.links.fwd.(i)
          | Some _ | None -> t.head.span.(i) <- t.head.span.(i) - 1
        done;
        while t.level > 1 && t.head.fwd.(t.level - 1) = None do
          t.level <- t.level - 1
        done;
        t.len <- t.len - 1;
        Some (first.key, first.value)

  (* 0-based rank: the number of keys strictly smaller than [key]. *)
  let rank t key =
    let update = Array.make max_level t.head in
    let rk = Array.make max_level 0 in
    find_path t key update rk;
    match update.(0).fwd.(0) with
    | Some n when K.compare n.key key = 0 -> Some rk.(0)
    | Some _ | None -> None

  (* 0-based selection. *)
  let nth t i =
    if i < 0 || i >= t.len then None
    else begin
      let target = i + 1 in
      let x = ref t.head in
      let traversed = ref 0 in
      let found = ref None in
      for lvl = t.level - 1 downto 0 do
        let continue = ref true in
        while !continue && !found = None do
          match !x.fwd.(lvl) with
          | Some n when !traversed + !x.span.(lvl) <= target ->
              traversed := !traversed + !x.span.(lvl);
              if !traversed = target then found := Some (n.key, n.value)
              else x := n.links
          | Some _ | None -> continue := false
        done
      done;
      !found
    end

  let iter f t =
    let x = ref t.head.fwd.(0) in
    let continue = ref true in
    while !continue do
      match !x with
      | Some n ->
          f n.key n.value;
          x := n.links.fwd.(0)
      | None -> continue := false
    done

  let fold f t init =
    let acc = ref init in
    iter (fun k v -> acc := f !acc k v) t;
    !acc

  let to_list t = List.rev (fold (fun acc k v -> (k, v) :: acc) t [])

  (* Structural invariant check for property tests: sorted strictly
     ascending, length agreement, and every span equal to the bottom-level
     distance it claims to skip. *)
  let validate t =
    let ok = ref (Ok ()) in
    let fail msg = if !ok = Ok () then ok := Error msg in
    let count = ref 0 in
    let prev = ref None in
    iter
      (fun k _ ->
        (match !prev with
        | Some p when K.compare p k >= 0 -> fail "keys not strictly ascending"
        | Some _ | None -> ());
        prev := Some k;
        incr count)
      t;
    if !count <> t.len then fail "length mismatch";
    (* a link of span [s] must land, after [s] bottom-level steps from its
       source, exactly on its target node *)
    let rec advance x k =
      if k = 0 then x
      else
        match x with
        | Some node -> advance node.links.fwd.(0) (k - 1)
        | None -> None
    in
    let check_links links =
      Array.iteri
        (fun lvl next ->
          match next with
          | Some target -> (
              let s = links.span.(lvl) in
              if s < 1 then fail "non-positive span on a live link"
              else
                match advance links.fwd.(0) (s - 1) with
                | Some landed when landed == target -> ()
                | Some _ | None -> fail "span mismatch")
          | None -> ())
        links.fwd
    in
    check_links t.head;
    let x = ref t.head.fwd.(0) in
    let continue = ref true in
    while !continue do
      match !x with
      | Some n ->
          check_links n.links;
          x := n.links.fwd.(0)
      | None -> continue := false
    done;
    for i = t.level to max_level - 1 do
      if t.head.fwd.(i) <> None then fail "links above current level"
    done;
    !ok
end

(** FIFO queue operation vocabulary: enqueue / dequeue / front.  [Front]
    is read-only so queue workloads exercise the read path of every
    engine, unlike the all-update stack vocabulary. *)

type op = Enqueue of int | Dequeue | Front
type result = Enqueued | Dequeued of int option | Fronted of int option

let is_read_only = function Front -> true | Enqueue _ | Dequeue -> false

let pp_op ppf = function
  | Enqueue v -> Format.fprintf ppf "enq(%d)" v
  | Dequeue -> Format.pp_print_string ppf "deq()"
  | Front -> Format.pp_print_string ppf "front()"

let pp_result ppf = function
  | Enqueued -> Format.pp_print_string ppf "enqueued"
  | Dequeued (Some v) -> Format.fprintf ppf "dequeued:%d" v
  | Dequeued None -> Format.pp_print_string ppf "dequeued:empty"
  | Fronted (Some v) -> Format.fprintf ppf "front:%d" v
  | Fronted None -> Format.pp_print_string ppf "front:empty"

(** AVL-tree dictionary as a black-box sequential structure — same
    [Dict_ops] vocabulary as {!Skiplist_dict}, so the whole harness (NR and
    all lock-based baselines) runs on it unchanged.  There is no practical
    lock-free AVL tree, which is precisely the situation NR targets. *)

module Tree = Avl.Make (Ordered.Int)

type t = int Tree.t
type op = Dict_ops.op
type result = Dict_ops.result

let create () = Tree.create ()

let execute (t : t) : op -> result = function
  | Dict_ops.Insert (k, v) -> Dict_ops.Added (Tree.insert t k v)
  | Dict_ops.Remove k -> Dict_ops.Removed (Tree.remove t k)
  | Dict_ops.Lookup k -> Dict_ops.Found (Tree.find t k)

let is_read_only = Dict_ops.is_read_only

let footprint (t : t) : op -> Nr_runtime.Footprint.t =
  (* a balanced tree path is ~1.44 log2 n nodes; several fit a line near
     the root, and rebalancing rewrites part of the traversed path *)
  let depth = Fp_util.ilog2 (Tree.length t + 2) in
  let body = max 1 (depth - 3) in
  function
  | Dict_ops.Insert (k, _) ->
      Nr_runtime.Footprint.v ~key:k ~reads:body
        ~writes:(max 1 (body / 2))
        ~spine_reads:3
        ~spine_writes:(Fp_util.spine_promotion k)
        ()
  | Dict_ops.Remove k ->
      Nr_runtime.Footprint.v ~key:k ~reads:body
        ~writes:(max 1 (body / 2))
        ~spine_reads:3
        ~spine_writes:(Fp_util.spine_promotion k)
        ()
  | Dict_ops.Lookup k ->
      Nr_runtime.Footprint.v ~key:k ~reads:body ~spine_reads:3 ()

let lines (t : t) = max 64 (Tree.length t)
let pp_op = Dict_ops.pp_op
let length = Tree.length
let to_list = Tree.to_list

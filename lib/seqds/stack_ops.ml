(** Stack operation vocabulary (paper §8.1.4): push / pop, all updates. *)

type op = Push of int | Pop
type result = Pushed | Popped of int option

let is_read_only (_ : op) = false

let pp_op ppf = function
  | Push v -> Format.fprintf ppf "push(%d)" v
  | Pop -> Format.pp_print_string ppf "pop()"

let pp_result ppf = function
  | Pushed -> Format.pp_print_string ppf "pushed"
  | Popped (Some v) -> Format.fprintf ppf "popped:%d" v
  | Popped None -> Format.pp_print_string ppf "popped:empty"

(** Pairing-heap priority queue as a black-box sequential structure (paper
    §8.1.2).  Unlike the skip-list queue it admits duplicate keys, which
    matches the original pairing-heap interface; [Inserted true] is always
    returned. *)

module Ph = Pairing_heap.Make (Ordered.Int)

type t = int Ph.t
type op = Pq_ops.op
type result = Pq_ops.result

let create () = Ph.create ()

let execute (t : t) : op -> result = function
  | Pq_ops.Insert (k, v) ->
      Ph.insert t k v;
      Pq_ops.Inserted true
  | Pq_ops.Delete_min -> Pq_ops.Removed (Ph.remove_min t)
  | Pq_ops.Find_min -> Pq_ops.Min (Ph.find_min t)

let is_read_only = Pq_ops.is_read_only

let footprint (t : t) : op -> Nr_runtime.Footprint.t =
  let len = Ph.length t in
  function
  | Pq_ops.Insert (k, _) ->
      (* melding with the root touches the root line: always hot *)
      Nr_runtime.Footprint.v ~key:k ~reads:1 ~writes:1 ~hot_write:true ()
  | Pq_ops.Delete_min ->
      (* two-pass pairing restructures the children list hanging off the
         root: heavy traffic in the entry area *)
      let m = Fp_util.pairing_merge_lines len in
      Nr_runtime.Footprint.v
        ~key:(match Ph.find_min t with Some (k, _) -> k | None -> 0)
        ~reads:m ~writes:(max 1 (m / 2)) ~hot_write:true ~spine_reads:2
        ~spine_writes:2 ()
  | Pq_ops.Find_min ->
      Nr_runtime.Footprint.v
        ~key:(match Ph.find_min t with Some (k, _) -> k | None -> 0)
        ~reads:1 ()

let lines (t : t) = max 64 (Ph.length t)
let pp_op = Pq_ops.pp_op
let length = Ph.length

let copy = Ph.copy

(** Sequential pairing heap (Fredman, Sedgewick, Sleator, Tarjan): the
    paper's second priority-queue substrate.  O(1) insert and find-min;
    two-pass remove-min, O(log n) amortized.  Duplicate keys allowed. *)

module Make (K : Ordered.S) : sig
  type 'v t

  val create : unit -> 'v t
  val length : 'v t -> int
  val is_empty : 'v t -> bool

  val copy : 'v t -> 'v t
  (** Deep copy (values shared), preserving child-list order so the copy
      melds exactly like the original. *)

  val insert : 'v t -> K.t -> 'v -> unit
  val find_min : 'v t -> (K.t * 'v) option
  val remove_min : 'v t -> (K.t * 'v) option

  val fold : ('acc -> K.t -> 'v -> 'acc) -> 'v t -> 'acc -> 'acc
  (** Heap order, not sorted. *)

  val to_sorted_list : 'v t -> (K.t * 'v) list

  val validate : 'v t -> (unit, string) result
  (** Heap-order and length invariants. *)
end

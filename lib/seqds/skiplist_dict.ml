(** Skip-list dictionary as a black-box sequential structure (paper
    §8.1.3). *)

module Sl = Skiplist.Make (Ordered.Int)

type t = int Sl.t
type op = Dict_ops.op
type result = Dict_ops.result

let create () = Sl.create ~seed:0xD1C7 ()

let execute (t : t) : op -> result = function
  | Dict_ops.Insert (k, v) -> Dict_ops.Added (Sl.insert t k v)
  | Dict_ops.Remove k -> Dict_ops.Removed (Sl.remove t k)
  | Dict_ops.Lookup k -> Dict_ops.Found (Sl.find t k)

let is_read_only = Dict_ops.is_read_only

let footprint (t : t) : op -> Nr_runtime.Footprint.t =
  let body = Fp_util.skiplist_body_reads (Sl.length t) in
  let spine = Fp_util.skiplist_spine_reads in
  function
  | Dict_ops.Insert (k, _) ->
      Nr_runtime.Footprint.v ~key:k ~reads:body ~writes:2 ~spine_reads:spine
        ~spine_writes:(Fp_util.spine_promotion k) ()
  | Dict_ops.Remove k ->
      Nr_runtime.Footprint.v ~key:k ~reads:body ~writes:2 ~spine_reads:spine
        ~spine_writes:(Fp_util.spine_promotion k) ()
  | Dict_ops.Lookup k ->
      Nr_runtime.Footprint.v ~key:k ~reads:body ~spine_reads:spine ()

let lines (t : t) = max 64 (Sl.length t)
let pp_op = Dict_ops.pp_op
let length = Sl.length
let to_list = Sl.to_list

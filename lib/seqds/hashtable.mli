(** Sequential chained hash table with doubling resize.

    Deterministic by construction — iteration order depends only on the
    insertion sequence, never on addresses — so it is safe inside NR
    replicas.  Keys use structural equality and [Hashtbl.hash] unless a
    custom hash is supplied. *)

type ('k, 'v) t

val create : ?initial_size:int -> ?hash:('k -> int) -> unit -> ('k, 'v) t
val length : ('k, 'v) t -> int

val bucket_count : ('k, 'v) t -> int
(** Current number of buckets (doubles once the load factor passes 3/4). *)

val find : ('k, 'v) t -> 'k -> 'v option
val mem : ('k, 'v) t -> 'k -> bool

val set : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or overwrite. *)

val add : ('k, 'v) t -> 'k -> 'v -> bool
(** Insert only if absent; [true] when added. *)

val remove : ('k, 'v) t -> 'k -> 'v option
(** Remove and return the previous binding, if any. *)

val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
val fold : ('acc -> 'k -> 'v -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
val to_list : ('k, 'v) t -> ('k * 'v) list

val validate : ('k, 'v) t -> (unit, string) result
(** Every key hashes to the bucket holding it; the size is consistent. *)

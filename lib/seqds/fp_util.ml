(** Footprint estimation helpers shared by the adapters. *)

let ilog2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 (max 1 n)

(* Distinct cache lines a skip-list search misses on: nodes are small (two
   or three fit a line), the top of the tower stays cache-resident, and
   only the lower-level hops hit fresh lines — roughly half of log2 n. *)
let skiplist_path_lines len = max 3 (3 * ilog2 (len + 2) / 4)

(* The topmost levels of the search path run through the structure's shared
   spine; the rest are key-specific body lines. *)
let skiplist_spine_reads = 3

let skiplist_body_reads len =
  max 1 (skiplist_path_lines len - skiplist_spine_reads)

(* Fraction of inserts/removes whose tower is tall enough to relink an
   upper (spine) level: p = 1/4 per level. *)
let spine_promotion key =
  let z = ref ((key * 0x9E3779B9) + 0x1B873593) in
  z := (!z lxor (!z lsr 30)) * 0x2545F4914F6CDD1D;
  if (!z lxor (!z lsr 27)) land 3 = 0 then 1 else 0

(* A pairing-heap remove_min pairs O(log n) children amortized. *)
let pairing_merge_lines len = max 1 (ilog2 (len + 2))

(* {2 State fingerprints}

   Order-sensitive integer hash-combining for the linearizability
   checker's memo table: specs fold their abstract state through
   [fp_combine] to get a cheap pre-filter key (exact comparison still
   backs it, so collisions cost time, not soundness). *)

let fp_empty = 0x27D4EB2F

let fp_combine h x =
  let h = (h lxor x) * 0x9E3779B1 in
  let h = (h lxor (h lsr 29)) * 0x485095C7 in
  (h lxor (h lsr 32)) land max_int

let fp_list fp h l = List.fold_left (fun h x -> fp_combine h (fp x)) h l

let fp_option fp h = function
  | None -> fp_combine h 0x5851F42D
  | Some x -> fp_combine h (fp x)

(** Sequential LIFO stack. *)

type 'v t

val create : unit -> 'v t
val length : 'v t -> int
val is_empty : 'v t -> bool
val push : 'v t -> 'v -> unit
val pop : 'v t -> 'v option
val peek : 'v t -> 'v option

val to_list : 'v t -> 'v list
(** Top first. *)

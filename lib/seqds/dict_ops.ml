(** Dictionary operation vocabulary (paper §8.1.3): insert / delete /
    lookup of random keys. *)

type op = Insert of int * int | Remove of int | Lookup of int

type result =
  | Added of bool
  | Removed of int option
  | Found of int option

let is_read_only = function Lookup _ -> true | Insert _ | Remove _ -> false

let pp_op ppf = function
  | Insert (k, v) -> Format.fprintf ppf "insert(%d,%d)" k v
  | Remove k -> Format.fprintf ppf "delete(%d)" k
  | Lookup k -> Format.fprintf ppf "lookup(%d)" k

let pp_result ppf = function
  | Added b -> Format.fprintf ppf "added:%b" b
  | Removed (Some v) -> Format.fprintf ppf "removed:%d" v
  | Removed None -> Format.pp_print_string ppf "removed:none"
  | Found (Some v) -> Format.fprintf ppf "found:%d" v
  | Found None -> Format.pp_print_string ppf "found:none"

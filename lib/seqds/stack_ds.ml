(** LIFO stack as a black-box sequential structure (paper §8.1.4).  Every
    operation writes the top-of-stack line — maximal operation contention,
    which is why the paper uses it as a stress case. *)

type t = int Seq_stack.t
type op = Stack_ops.op
type result = Stack_ops.result

let create () = Seq_stack.create ()

let execute (t : t) : op -> result = function
  | Stack_ops.Push v ->
      Seq_stack.push t v;
      Stack_ops.Pushed
  | Stack_ops.Pop -> Stack_ops.Popped (Seq_stack.pop t)

let is_read_only = Stack_ops.is_read_only

let footprint (t : t) (_ : op) =
  (* pushes and pops hit the lines just around the top of the stack *)
  Nr_runtime.Footprint.v
    ~key:(Seq_stack.length t / 8)
    ~reads:1 ~writes:1 ~hot_write:true ()

let lines (t : t) = max 64 (Seq_stack.length t)
let pp_op = Stack_ops.pp_op
let length = Seq_stack.length

(** Skip-list priority queue as a black-box sequential structure (paper
    §8.1.1).  Set semantics: inserting an existing key is a no-op returning
    [Inserted false], as in the lock-free skip-list queues it is compared
    against. *)

module Sl = Skiplist.Make (Ordered.Int)

type t = int Sl.t
type op = Pq_ops.op
type result = Pq_ops.result

let create () = Sl.create ~seed:0x51C1 ()

let execute (t : t) : op -> result = function
  | Pq_ops.Insert (k, v) -> Pq_ops.Inserted (Sl.insert t k v)
  | Pq_ops.Delete_min -> Pq_ops.Removed (Sl.remove_min t)
  | Pq_ops.Find_min -> Pq_ops.Min (Sl.min t)

let is_read_only = Pq_ops.is_read_only

let footprint (t : t) : op -> Nr_runtime.Footprint.t =
  let len = Sl.length t in
  function
  | Pq_ops.Insert (k, _) ->
      Nr_runtime.Footprint.v ~key:k
        ~reads:(Fp_util.skiplist_body_reads len)
        ~writes:2
        ~spine_reads:Fp_util.skiplist_spine_reads
        ~spine_writes:(Fp_util.spine_promotion k) ()
  | Pq_ops.Delete_min ->
      (* unlinking the minimum rewrites the head-area links that every
         search passes through: the defining contention of a PQ *)
      let key = match Sl.min t with Some (k, _) -> k | None -> 0 in
      Nr_runtime.Footprint.v ~key ~reads:2 ~writes:2 ~hot_write:true
        ~spine_reads:1 ~spine_writes:1 ()
  | Pq_ops.Find_min ->
      let key = match Sl.min t with Some (k, _) -> k | None -> 0 in
      Nr_runtime.Footprint.v ~key ~reads:1 ()

let lines (t : t) = max 64 (Sl.length t)
let pp_op = Pq_ops.pp_op
let length = Sl.length
let to_list = Sl.to_list

let copy = Sl.copy

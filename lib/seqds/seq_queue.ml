(** Sequential FIFO queue (two-list, amortized O(1)). *)

type 'v t = { mutable front : 'v list; mutable back : 'v list; mutable len : int }

let create () = { front = []; back = []; len = 0 }
let length t = t.len
let is_empty t = t.len = 0

let enqueue t v =
  t.back <- v :: t.back;
  t.len <- t.len + 1

let rec dequeue t =
  match t.front with
  | v :: rest ->
      t.front <- rest;
      t.len <- t.len - 1;
      Some v
  | [] ->
      if t.back = [] then None
      else begin
        t.front <- List.rev t.back;
        t.back <- [];
        dequeue t
      end

let peek t =
  match t.front with
  | v :: _ -> Some v
  | [] -> ( match List.rev t.back with v :: _ -> Some v | [] -> None)

let to_list t = t.front @ List.rev t.back

(** Ordered key types for the search structures. *)

module type S = sig
  type t

  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

module Int : S with type t = int = struct
  type t = int

  let compare = Int.compare
  let pp = Format.pp_print_int
end

(** Lexicographic pairs — used by the sorted set, whose elements are ordered
    by (score, member). *)
module Int_pair : S with type t = int * int = struct
  type t = int * int

  let compare (a1, b1) (a2, b2) =
    match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c

  let pp ppf (a, b) = Format.fprintf ppf "(%d,%d)" a b
end

module String : S with type t = string = struct
  type t = string

  let compare = String.compare
  let pp = Format.pp_print_string
end

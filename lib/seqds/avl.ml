(** Sequential AVL tree — a second ordered-dictionary substrate.

    NR's whole point is that the sequential structure is a black box: this
    balanced tree plugs into the same [Dict_ops] adapter as the skip list
    (see {!Avl_dict}), giving a concurrent NUMA-aware AVL tree for free —
    something with no practical lock-free counterpart.

    Purely functional nodes (rebuilt along the insertion path) with an
    imperative root; deterministic, as NR requires. *)

module Make (K : Ordered.S) = struct
  type 'v node = {
    key : K.t;
    value : 'v;
    left : 'v node option;
    right : 'v node option;
    height : int;
  }

  type 'v t = { mutable root : 'v node option; mutable len : int }

  let create () = { root = None; len = 0 }
  let length t = t.len
  let is_empty t = t.len = 0

  let height = function None -> 0 | Some n -> n.height

  let node key value left right =
    { key; value; left; right; height = 1 + max (height left) (height right) }

  let balance_factor n = height n.left - height n.right

  let rotate_right n =
    match n.left with
    | Some l -> node l.key l.value l.left (Some (node n.key n.value l.right n.right))
    | None -> n

  let rotate_left n =
    match n.right with
    | Some r -> node r.key r.value (Some (node n.key n.value n.left r.left)) r.right
    | None -> n

  let rebalance n =
    let bf = balance_factor n in
    if bf > 1 then
      let l = Option.get n.left in
      if balance_factor l >= 0 then rotate_right n
      else rotate_right (node n.key n.value (Some (rotate_left l)) n.right)
    else if bf < -1 then
      let r = Option.get n.right in
      if balance_factor r <= 0 then rotate_left n
      else rotate_left (node n.key n.value n.left (Some (rotate_right r)))
    else n

  let find t key =
    let rec go = function
      | None -> None
      | Some n ->
          let c = K.compare key n.key in
          if c = 0 then Some n.value
          else if c < 0 then go n.left
          else go n.right
    in
    go t.root

  let mem t key = find t key <> None

  exception Already_present

  let insert t key value =
    let rec go = function
      | None -> node key value None None
      | Some n ->
          let c = K.compare key n.key in
          if c = 0 then raise Already_present
          else if c < 0 then rebalance (node n.key n.value (Some (go n.left)) n.right)
          else rebalance (node n.key n.value n.left (Some (go n.right)))
    in
    match go t.root with
    | root ->
        t.root <- Some root;
        t.len <- t.len + 1;
        true
    | exception Already_present -> false

  let rec min_node n = match n.left with None -> n | Some l -> min_node l

  exception Absent

  let remove t key =
    let removed = ref None in
    let rec go = function
      | None -> raise Absent
      | Some n ->
          let c = K.compare key n.key in
          if c < 0 then Some (rebalance (node n.key n.value (go n.left) n.right))
          else if c > 0 then
            Some (rebalance (node n.key n.value n.left (go n.right)))
          else begin
            removed := Some n.value;
            match (n.left, n.right) with
            | None, r -> r
            | l, None -> l
            | Some _, Some r ->
                (* replace with the in-order successor *)
                let succ = min_node r in
                let rec drop_min = function
                  | None -> None
                  | Some m ->
                      if m.left = None then m.right
                      else
                        Some (rebalance (node m.key m.value (drop_min m.left) m.right))
                in
                Some (rebalance (node succ.key succ.value n.left (drop_min n.right)))
          end
    in
    match go t.root with
    | root ->
        t.root <- root;
        t.len <- t.len - 1;
        !removed
    | exception Absent -> None

  let min t =
    match t.root with None -> None | Some n -> (
      let m = min_node n in
      Some (m.key, m.value))

  let fold f t init =
    let rec go acc = function
      | None -> acc
      | Some n -> go (f (go acc n.left) n.key n.value) n.right
    in
    go init t.root

  let iter f t = fold (fun () k v -> f k v) t ()
  let to_list t = List.rev (fold (fun acc k v -> (k, v) :: acc) t [])

  (* AVL invariants: BST order, balance factors in [-1,1], exact heights,
     length agreement. *)
  let validate t =
    let ok = ref (Ok ()) in
    let fail msg = if !ok = Ok () then ok := Error msg in
    let count = ref 0 in
    let rec go lo hi = function
      | None -> 0
      | Some n ->
          incr count;
          (match lo with
          | Some l when K.compare n.key l <= 0 -> fail "BST order violated (low)"
          | _ -> ());
          (match hi with
          | Some h when K.compare n.key h >= 0 -> fail "BST order violated (high)"
          | _ -> ());
          let hl = go lo (Some n.key) n.left in
          let hr = go (Some n.key) hi n.right in
          if abs (hl - hr) > 1 then fail "unbalanced node";
          let h = 1 + max hl hr in
          if h <> n.height then fail "stale height";
          h
    in
    ignore (go None None t.root);
    if !count <> t.len then fail "length mismatch";
    !ok
end

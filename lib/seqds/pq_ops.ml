(** The priority-queue operation vocabulary of the paper's benchmark
    (§8.1): [insert(rnd, v)], [deleteMin()], [findMin()] — shared by the
    skip-list and pairing-heap adapters so baselines and NR run identical
    workloads on either substrate. *)

type op = Insert of int * int | Delete_min | Find_min

type result =
  | Inserted of bool  (** false when the key was already present *)
  | Removed of (int * int) option
  | Min of (int * int) option

let is_read_only = function
  | Find_min -> true
  | Insert _ | Delete_min -> false

let pp_op ppf = function
  | Insert (k, v) -> Format.fprintf ppf "insert(%d,%d)" k v
  | Delete_min -> Format.pp_print_string ppf "deleteMin()"
  | Find_min -> Format.pp_print_string ppf "findMin()"

let pp_result ppf = function
  | Inserted b -> Format.fprintf ppf "inserted:%b" b
  | Removed (Some (k, v)) -> Format.fprintf ppf "removed:(%d,%d)" k v
  | Removed None -> Format.pp_print_string ppf "removed:empty"
  | Min (Some (k, v)) -> Format.fprintf ppf "min:(%d,%d)" k v
  | Min None -> Format.pp_print_string ppf "min:empty"

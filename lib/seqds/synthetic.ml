(** The paper's synthetic data structure (§8.2): a buffer of [n] one-line
    entries where every operation touches [c] entries, one of which —
    entry 0 — is touched by {e every} operation (modeling the tail pointer
    of a stack, the root of a tree, the head of a skip list...).  Reads sum
    the entries; updates read-modify-write them, so reads genuinely return
    values that updates affect.

    Parameters arrive through the functor so the adapter fits the
    [Ds_intf.S] shape ([create : unit -> t]). *)

module type PARAMS = sig
  val n : int
  (** number of entries *)

  val c : int
  (** entries accessed per operation *)
end

module Make (P : PARAMS) = struct
  type t = { entries : int array }
  type op = Update of int | Read of int
  type result = int

  let () =
    if P.n <= 0 then invalid_arg "Synthetic: n must be > 0";
    if P.c <= 0 then invalid_arg "Synthetic: c must be > 0"

  let create () = { entries = Array.make P.n 0 }

  (* entry indices derived deterministically from the operation key; index
     0 (the contended entry) always participates *)
  let entry key i =
    if i = 0 then 0
    else begin
      let z = ref ((key * 0x9E3779B9) + (i * 0x85EBCA6B)) in
      z := (!z lxor (!z lsr 30)) * 0x2545F4914F6CDD1D;
      (!z lxor (!z lsr 27)) land max_int mod P.n
    end

  let execute t = function
    | Read key ->
        let acc = ref 0 in
        for i = 0 to P.c - 1 do
          acc := !acc + t.entries.(entry key i)
        done;
        !acc
    | Update key ->
        let acc = ref 0 in
        for i = 0 to P.c - 1 do
          let e = entry key i in
          let v = t.entries.(e) in
          acc := !acc + v;
          t.entries.(e) <- v + 1
        done;
        !acc

  let is_read_only = function Read _ -> true | Update _ -> false

  let footprint _t = function
    | Read key -> Nr_runtime.Footprint.v ~key ~reads:(P.c - 1 + 1) ()
    | Update key ->
        Nr_runtime.Footprint.v ~key ~reads:(P.c - 1) ~writes:(P.c - 1)
          ~hot_write:true ()

  let lines _t = P.n
  let pp_op ppf = function
    | Read k -> Format.fprintf ppf "read(%d)" k
    | Update k -> Format.fprintf ppf "update(%d)" k
end

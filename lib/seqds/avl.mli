(** Sequential AVL tree — a second ordered-dictionary substrate proving the
    black-box property: it plugs into the same adapters as the skip list
    and becomes a concurrent NUMA-aware balanced tree under NR, a structure
    with no practical lock-free counterpart. *)

module Make (K : Ordered.S) : sig
  type 'v t

  val create : unit -> 'v t
  val length : 'v t -> int
  val is_empty : 'v t -> bool
  val find : 'v t -> K.t -> 'v option
  val mem : 'v t -> K.t -> bool

  val insert : 'v t -> K.t -> 'v -> bool
  (** Insert if absent; [false] when the key exists. *)

  val remove : 'v t -> K.t -> 'v option
  val min : 'v t -> (K.t * 'v) option
  val iter : (K.t -> 'v -> unit) -> 'v t -> unit
  val fold : ('acc -> K.t -> 'v -> 'acc) -> 'v t -> 'acc -> 'acc

  val to_list : 'v t -> (K.t * 'v) list
  (** Ascending key order. *)

  val validate : 'v t -> (unit, string) result
  (** BST order, AVL balance, exact heights, length agreement. *)
end

(** Sequential LIFO stack. *)

type 'v t = { mutable items : 'v list; mutable len : int }

let create () = { items = []; len = 0 }
let length t = t.len
let is_empty t = t.len = 0

let push t v =
  t.items <- v :: t.items;
  t.len <- t.len + 1

let pop t =
  match t.items with
  | [] -> None
  | v :: rest ->
      t.items <- rest;
      t.len <- t.len - 1;
      Some v

let peek t = match t.items with [] -> None | v :: _ -> Some v
let to_list t = t.items

(** Sequential chained hash table with doubling resize — the lookup half of
    the sorted set (Redis keeps a dict next to the zskiplist) and the main
    keyspace index of the KV store.

    Deliberately deterministic: iteration order depends only on the
    insertion sequence, never on addresses, so NR replicas stay identical. *)

type ('k, 'v) t = {
  mutable buckets : ('k * 'v) list array;
  mutable len : int;
  hash : 'k -> int;
}

let create ?(initial_size = 16) ?(hash = Hashtbl.hash) () =
  let size = max 1 initial_size in
  { buckets = Array.make size []; len = 0; hash }

let length t = t.len
let bucket_count t = Array.length t.buckets
let index t k = t.hash k land max_int mod Array.length t.buckets

let resize t =
  let old = t.buckets in
  t.buckets <- Array.make (2 * Array.length old) [];
  Array.iter
    (fun chain ->
      List.iter
        (fun ((k, _) as kv) ->
          let i = index t k in
          t.buckets.(i) <- kv :: t.buckets.(i))
        (List.rev chain))
    old

let find t k =
  let rec go = function
    | [] -> None
    | (k', v) :: rest -> if k = k' then Some v else go rest
  in
  go t.buckets.(index t k)

let mem t k = find t k <> None

let set t k v =
  let i = index t k in
  let chain = t.buckets.(i) in
  if List.exists (fun (k', _) -> k = k') chain then
    t.buckets.(i) <-
      List.map (fun ((k', _) as kv) -> if k = k' then (k, v) else kv) chain
  else begin
    t.buckets.(i) <- (k, v) :: chain;
    t.len <- t.len + 1;
    if t.len > 3 * Array.length t.buckets / 4 then resize t
  end

let add t k v =
  if mem t k then false
  else begin
    set t k v;
    true
  end

let remove t k =
  let i = index t k in
  let found = ref None in
  let chain =
    List.filter
      (fun (k', v) ->
        if !found = None && k = k' then begin
          found := Some v;
          false
        end
        else true)
      t.buckets.(i)
  in
  (match !found with
  | Some _ ->
      t.buckets.(i) <- chain;
      t.len <- t.len - 1
  | None -> ());
  !found

let iter f t =
  Array.iter (fun chain -> List.iter (fun (k, v) -> f k v) chain) t.buckets

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f !acc k v) t;
  !acc

let to_list t = fold (fun acc k v -> (k, v) :: acc) t []

let validate t =
  let ok = ref (Ok ()) in
  let fail msg = if !ok = Ok () then ok := Error msg in
  let count = ref 0 in
  Array.iteri
    (fun i chain ->
      List.iter
        (fun (k, _) ->
          incr count;
          if index t k <> i then fail "key in wrong bucket")
        chain)
    t.buckets;
  if !count <> t.len then fail "length mismatch";
  !ok

(** Per-connection transaction session: the MULTI/EXEC/WATCH/DISCARD state
    machine, and the place relative expiries become absolute.

    The session never touches the store directly.  It answers
    session-state commands itself ([Reply]) and rewrites everything else
    into the command that should actually run ([Execute]) — for EXEC that
    is one compound {!Nr_kvstore.Command.Txn} entry, which the caller
    submits through the NR log like any other mutation.  Because the
    compound entry linearizes at a single log position, atomicity and
    isolation come for free (the paper's black-box trick; ROADMAP
    item 3): no concurrent reader can land between its body commands.

    WATCH is optimistic concurrency via version stamps: at WATCH time the
    session reads the key's current stamp through [exec_read] (a
    linearizable read), and the stamps ride inside the [Txn] entry, where
    every replica re-validates them at apply time. *)

module C = Nr_kvstore.Command

type t = {
  mutable watches : (string * int) list;  (* newest first *)
  mutable queue : C.t list option;  (* Some = in MULTI, newest first *)
  mutable dirty : bool;  (* a queued command failed to classify *)
}

type action = Reply of C.reply | Execute of C.t

let create () = { watches = []; queue = None; dirty = false }
let in_multi t = t.queue <> None

(** True when the command needs no session handling in the current state —
    the evloop run-to-completion fast path may execute it directly. *)
let passthrough t (cmd : C.t) =
  t.queue = None && C.class_of cmd <> C.Session_state

let reset t =
  t.watches <- [];
  t.queue <- None;
  t.dirty <- false

(* relative expiries become absolute deadlines at the last possible
   moment (EXEC / submission), against the *server* clock — the store's
   logical clock only advances on Tick entries and must never be used to
   anchor "now + 5s" *)
let normalize ~now_ms (cmd : C.t) : C.t =
  match cmd with
  | C.Expire (k, s) -> C.Pexpireat (k, now_ms + (1000 * s))
  | C.Pexpire (k, ms) -> C.Pexpireat (k, now_ms + ms)
  | c -> c

let step t ~exec_read ~now_ms (cmd : C.t) : action =
  match (t.queue, cmd) with
  (* ---- not in a MULTI block ---- *)
  | None, C.Multi ->
      t.queue <- Some [];
      t.dirty <- false;
      Reply C.Ok_reply
  | None, C.Exec -> Reply (C.Err "EXEC without MULTI")
  | None, C.Discard -> Reply (C.Err "DISCARD without MULTI")
  | None, C.Watch k -> (
      match exec_read (C.Getver k) with
      | C.Int v ->
          t.watches <- (k, v) :: List.remove_assoc k t.watches;
          Reply C.Ok_reply
      | C.Err e -> Reply (C.Err e)
      | _ -> Reply (C.Err "WATCH: unexpected reply reading version stamp"))
  | None, C.Unwatch ->
      t.watches <- [];
      Reply C.Ok_reply
  | None, (C.Expire _ | C.Pexpire _) -> Execute (normalize ~now_ms:(now_ms ()) cmd)
  | None, c -> Execute c
  (* ---- queuing inside MULTI ---- *)
  | Some _, C.Multi -> Reply (C.Err "MULTI calls can not be nested")
  | Some _, C.Watch _ -> Reply (C.Err "WATCH inside MULTI is not allowed")
  | Some _, C.Unwatch ->
      (* harmless inside MULTI: the stamps are consumed at EXEC anyway *)
      Reply C.Ok_reply
  | Some _, C.Discard ->
      reset t;
      Reply C.Ok_reply
  | Some q, C.Exec ->
      if t.dirty then begin
        reset t;
        Reply (C.Err "EXECABORT Transaction discarded because of previous errors.")
      end
      else begin
        let now = now_ms () in
        let body = List.rev_map (normalize ~now_ms:now) q in
        let watches = List.rev t.watches in
        reset t;
        Execute (C.Txn (watches, body))
      end
  | Some q, c -> (
      match C.class_of c with
      | C.Read | C.Write | C.Session_state ->
          (* Session_state here can only be EXPIRE/PEXPIRE (the rest were
             matched above); they queue and normalize at EXEC time *)
          t.queue <- Some (c :: q);
          Reply (C.Bulk "QUEUED")
      | C.Server_local ->
          t.dirty <- true;
          Reply
            (C.Err
               (Format.asprintf "%a is not allowed in transactions" C.pp c)))

(** A {!Nr_kvstore.Server.session_hook}: one session per connection,
    stepped in front of the server's normal execution path. *)
let hook ~exec ~clock =
  let t = create () in
  fun cmd ->
    if passthrough t cmd then None
    else
      Some
        (match step t ~exec_read:exec ~now_ms:clock cmd with
        | Reply r -> r
        | Execute c -> exec c)

(** Hierarchical timer wheel for key expiry, millisecond ticks.

    Four levels of 64 slots: level 0 resolves single milliseconds, each
    higher level covers 64x the span of the one below (~4.7 h total);
    further-out deadlines park in an overflow list rescanned when the top
    level cascades.  Everything is deterministic in (add, advance) order —
    no clock is read here; callers feed time in, so the same schedule on
    the simulator's virtual clock and on a wall clock produces the same
    eviction sequence.  [advance] returns due entries sorted by
    (deadline, key) so per-shard expiration order is reproducible.

    The wheel is an *optimistic index*, not the source of truth: entries
    are never removed on [Persist]/[Del]/overwrite.  A due entry is
    emitted with the deadline it was registered under, and the store's
    [Expire_evict] incarnation guard drops stale ones. *)

type t = {
  levels : (string * int) list array array;  (* 4 levels x 64 slots *)
  mutable overflow : (string * int) list;
  mutable due_now : (string * int) list;  (* already due when added *)
  mutable now : int;  (* last tick processed, ms *)
  mutable count : int;
}

let slot_bits = 6
let slots = 1 lsl slot_bits (* 64 *)
let nlevels = 4
let span l = 1 lsl (slot_bits * (l + 1))  (* ms covered by levels 0..l *)

let create ~start_ms () =
  {
    levels = Array.init nlevels (fun _ -> Array.make slots []);
    overflow = [];
    due_now = [];
    now = max 0 start_ms;
    count = 0;
  }

let size t = t.count
let is_empty t = t.count = 0
let now t = t.now

let place t ((_, d) as e) =
  let delta = d - t.now in
  if delta <= 0 then t.due_now <- e :: t.due_now
  else if delta >= span (nlevels - 1) then t.overflow <- e :: t.overflow
  else begin
    let rec level l = if delta < span l then l else level (l + 1) in
    let l = level 0 in
    let idx = (d asr (slot_bits * l)) land (slots - 1) in
    t.levels.(l).(idx) <- e :: t.levels.(l).(idx)
  end

let add t ~key ~deadline =
  place t (key, deadline);
  t.count <- t.count + 1

(** Advance virtual/wall time to [now]; return every entry whose deadline
    has passed, sorted by (deadline, key). *)
let advance t ~now:target =
  let due = ref t.due_now in
  t.due_now <- [];
  let cascade l idx =
    let es = t.levels.(l).(idx) in
    t.levels.(l).(idx) <- [];
    List.iter (place t) es
  in
  while t.now < target do
    t.now <- t.now + 1;
    let n = t.now in
    if n land (slots - 1) = 0 then begin
      if n land (span 1 - 1) = 0 then begin
        if n land (span 2 - 1) = 0 then begin
          cascade 3 ((n asr (slot_bits * 3)) land (slots - 1));
          let keep, move =
            List.partition (fun (_, d) -> d - n >= span (nlevels - 1)) t.overflow
          in
          t.overflow <- keep;
          List.iter (place t) move
        end;
        cascade 2 ((n asr (slot_bits * 2)) land (slots - 1))
      end;
      cascade 1 ((n asr slot_bits) land (slots - 1))
    end;
    let idx = n land (slots - 1) in
    let es = t.levels.(0).(idx) in
    t.levels.(0).(idx) <- [];
    due := es @ !due;
    (* entries placed into already-due slots by a cascade land in due_now *)
    if t.due_now <> [] then begin
      due := t.due_now @ !due;
      t.due_now <- []
    end
  done;
  let due = List.sort compare (List.map (fun (k, d) -> (d, k)) !due) in
  t.count <- t.count - List.length due;
  List.map (fun (d, k) -> (k, d)) due

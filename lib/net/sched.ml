(* Per-node work-stealing request scheduler.  One Chase–Lev deque per
   NUMA node, fed by a single producer (the event loop) and drained by
   [domains] executor domains.  A worker prefers its home node's queue
   (FIFO steals keep request order roughly arrival order) and steals from
   the other nodes when home is dry, probing victims in a seeded
   per-worker order so the steal schedule is reproducible: the same seed
   yields the same victim rotation, which the determinism test pins.

   Parking: a worker that finds every queue empty for a few rounds sleeps
   on a condition variable.  [submit] bumps the atomic queued count
   before signalling under the same mutex the sleeper checks it under, so
   wakeups are never lost.  Shutdown drains: workers exit only once
   stopping is set AND the queues are empty, so every accepted job runs. *)

type stats = {
  executed : int;  (** jobs run to completion (or raised) *)
  failed : int;  (** jobs that raised *)
  stolen : int;  (** jobs taken from a non-home node's queue *)
}

type t = {
  queues : (unit -> unit) Deque.t array;  (* one per node *)
  submit_mutex : Mutex.t;  (* serializes producers; uncontended in the server *)
  nodes : int;
  m : Mutex.t;
  work : Condition.t;
  done_c : Condition.t;
  mutable stopping : bool;
  mutable joined : bool;
  mutable joining : bool;
  mutable workers : unit Domain.t array;
  mutable started : bool;
  seed : int;
  queued : int Atomic.t;
  executed_n : int Atomic.t;
  failed_n : int Atomic.t;
  stolen_n : int Atomic.t;
}

(* splitmix-style mix: cheap, stateless, good enough to decorrelate the
   per-worker victim rotations *)
let mix x =
  (* splitmix64 constants, wrapped into OCaml's 63-bit int *)
  let x = x * 0x1E3779B97F4A7C15 in
  let x = (x lxor (x lsr 30)) * 0x3F58476D1CE4E5B9 in
  let x = (x lxor (x lsr 27)) * 0x14D049BB133111EB in
  x lxor (x lsr 31)

let worker t i () =
  Mutex.lock t.m;
  while not t.started do
    Condition.wait t.work t.m
  done;
  Mutex.unlock t.m;
  let home = i mod t.nodes in
  let rng = ref (mix (t.seed + (i * 7919) + 1)) in
  let next_rand () =
    rng := mix !rng;
    !rng land max_int
  in
  let try_take () =
    match Deque.steal t.queues.(home) with
    | Some _ as j -> j
    | None ->
        if t.nodes = 1 then None
        else begin
          (* probe the other nodes starting at a seeded offset *)
          let start = next_rand () mod t.nodes in
          let rec probe k =
            if k = t.nodes then None
            else
              let v = (start + k) mod t.nodes in
              if v = home then probe (k + 1)
              else
                match Deque.steal t.queues.(v) with
                | Some _ as j ->
                    Atomic.incr t.stolen_n;
                    j
                | None -> probe (k + 1)
          in
          probe 0
        end
  in
  let run job =
    Atomic.decr t.queued;
    (match job () with
    | () -> ()
    | exception _ -> Atomic.incr t.failed_n);
    Atomic.incr t.executed_n
  in
  let rec loop spins =
    match try_take () with
    | Some job ->
        run job;
        loop 0
    | None ->
        if spins < 64 then begin
          Domain.cpu_relax ();
          loop (spins + 1)
        end
        else begin
          Mutex.lock t.m;
          (* recheck under the lock: submit signals under it after the
             queued bump, so a sleep here cannot miss new work *)
          if Atomic.get t.queued = 0 && not t.stopping then
            Condition.wait t.work t.m;
          let stop_now = t.stopping && Atomic.get t.queued = 0 in
          Mutex.unlock t.m;
          if not stop_now then loop 0
        end
  in
  loop 0

let create ?(seed = 0) ?(queue_size_exp = 13) ?(autostart = true) ~domains
    ~nodes () =
  if domains <= 0 then invalid_arg "Sched.create: domains must be > 0";
  if nodes <= 0 then invalid_arg "Sched.create: nodes must be > 0";
  let t =
    {
      queues = Array.init nodes (fun _ -> Deque.create ~size_exp:queue_size_exp ());
      submit_mutex = Mutex.create ();
      nodes;
      m = Mutex.create ();
      work = Condition.create ();
      done_c = Condition.create ();
      stopping = false;
      joined = false;
      joining = false;
      workers = [||];
      started = autostart;
      seed;
      queued = Atomic.make 0;
      executed_n = Atomic.make 0;
      failed_n = Atomic.make 0;
      stolen_n = Atomic.make 0;
    }
  in
  t.workers <- Array.init domains (fun i -> Domain.spawn (worker t i));
  t

let start t =
  Mutex.lock t.m;
  t.started <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.m

let nodes t = t.nodes

let submit t ~node job =
  if t.stopping then invalid_arg "Sched.submit: scheduler is shut down";
  let q = t.queues.(((node mod t.nodes) + t.nodes) mod t.nodes) in
  Mutex.lock t.submit_mutex;
  (* a full run queue means the executors are saturated; throttling the
     producer here is the backpressure *)
  while not (Deque.push q job) do
    Domain.cpu_relax ()
  done;
  Mutex.unlock t.submit_mutex;
  Atomic.incr t.queued;
  Mutex.lock t.m;
  Condition.signal t.work;
  Mutex.unlock t.m

let backlog t = Atomic.get t.queued

let stats t =
  {
    executed = Atomic.get t.executed_n;
    failed = Atomic.get t.failed_n;
    stolen = Atomic.get t.stolen_n;
  }

(* Idempotent and safe from concurrent callers: the first caller joins,
   later callers wait for it to finish. *)
let shutdown t =
  Mutex.lock t.m;
  if t.joined then Mutex.unlock t.m
  else if t.joining then begin
    while not t.joined do
      Condition.wait t.done_c t.m
    done;
    Mutex.unlock t.m
  end
  else begin
    t.joining <- true;
    t.stopping <- true;
    t.started <- true;
    (* unstarted workers must run to drain and exit *)
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    Array.iter Domain.join t.workers;
    Mutex.lock t.m;
    t.joined <- true;
    Condition.broadcast t.done_c;
    Mutex.unlock t.m
  end

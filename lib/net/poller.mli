(** Level-triggered readiness notification: epoll(7) on Linux, a
    [Unix.select] fallback elsewhere (capped at FD_SETSIZE descriptors —
    size many-connection work by {!backend}). *)

type t

type interest = { read : bool; write : bool }

type backend = Epoll | Select

val create : unit -> t
val backend : t -> backend

val add : t -> Unix.file_descr -> interest -> unit
(** Register (or replace) the interest set for [fd].  Persistent until
    {!del}.  Raises [Invalid_argument] on an empty interest. *)

val del : t -> Unix.file_descr -> unit
(** Forget [fd].  Safe if the fd was never added or is already closed. *)

val wait : t -> timeout_ms:int -> Unix.file_descr list
(** Descriptors with at least one ready (or error/hangup) condition.
    [[]] on timeout or EINTR. *)

val close : t -> unit

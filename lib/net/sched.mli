(** Per-node work-stealing request scheduler: one Chase–Lev run queue per
    NUMA node fed by a single producer (the event loop), drained by a
    fixed set of executor domains that prefer their home node's queue and
    steal from the others in a seeded, reproducible victim order. *)

type t

type stats = {
  executed : int;  (** jobs run to completion (or raised) *)
  failed : int;  (** jobs that raised *)
  stolen : int;  (** jobs taken from a non-home node's queue *)
}

val create :
  ?seed:int ->
  ?queue_size_exp:int ->
  ?autostart:bool ->
  domains:int ->
  nodes:int ->
  unit ->
  t
(** Spawn [domains] executor domains over [nodes] run queues of
    [2^queue_size_exp] slots each (default 8192).  Worker [i]'s home node
    is [i mod nodes].  [seed] fixes every worker's steal-victim rotation.
    With [~autostart:false] the workers park until {!start} — submissions
    queue up meanwhile, which is how the determinism test pins a steal
    schedule. *)

val start : t -> unit
(** Release workers parked by [~autostart:false].  Idempotent. *)

val submit : t -> node:int -> (unit -> unit) -> unit
(** Enqueue a job on [node]'s run queue (wrapped into range).  Blocks
    (spinning) only when that queue is full — the executors are
    saturated and this is the backpressure.  Raises [Invalid_argument]
    after {!shutdown} has begun.  A job that raises is counted in
    {!stats} and never kills its worker. *)

val nodes : t -> int

val backlog : t -> int
(** Jobs submitted but not yet started (racy snapshot). *)

val stats : t -> stats

val shutdown : t -> unit
(** Drain every queue, then join the workers.  Idempotent and safe from
    concurrent callers: the first joins, the rest wait for it.  Do not
    race {!submit} against {!shutdown} — stop the producer first. *)

(* The event loop: an epoll/select readiness reactor running lightweight
   fibers over OCaml effects.  One OS thread (whoever calls [run]) owns
   the loop; each accepted connection becomes a fiber whose blocking
   points — socket readable, socket writable, a promise fulfilled by an
   executor domain — are effects.  The handler captures the continuation,
   parks it against the fd (or inside the promise) and returns to the
   loop, so a suspended connection costs two buffers and a continuation,
   not an OS thread: tens of thousands of connections fit in one loop.

   Cross-domain wakeups (promise fulfilment from a scheduler worker, and
   [stop] from anywhere) go through a mutex-protected ready list plus a
   self-pipe byte, the classic trick to interrupt a sleeping poller.

   Discipline inherited from the effects machinery: an effect handler
   must never [continue] a continuation inside [effc] — that would nest
   fiber frames on the handler stack.  Every resumption is queued as a
   thunk and run from the flat loop in [run]. *)

type 'a pstate =
  | Empty
  | Full of 'a
  | Waiting of ('a -> unit)  (* resumes the parked fiber via the loop *)

type 'a promise = { pm : Mutex.t; mutable pst : 'a pstate }

type _ Effect.t +=
  | Wait_read : Unix.file_descr -> unit Effect.t
  | Wait_write : Unix.file_descr -> unit Effect.t
  | Wait_promise : 'a promise -> 'a Effect.t

type stats = {
  accepted : int;  (** connections accepted over the loop's lifetime *)
  cur_conns : int;
  peak_conns : int;
  accept_errors : int;  (** transient accept failures (EMFILE bursts &c.) *)
  emfile_backoffs : int;  (** accept pauses forced by fd exhaustion *)
}

type t = {
  poller : Poller.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  wake_m : Mutex.t;
  mutable wake_armed : bool;  (* collapse bursts into one pipe byte *)
  ext_m : Mutex.t;
  mutable ext_ready : (unit -> unit) list;  (* cross-domain resumptions *)
  runnable : (unit -> unit) Queue.t;  (* loop-local resumptions *)
  waiting_read : (Unix.file_descr, (unit, unit) Effect.Deep.continuation) Hashtbl.t;
  waiting_write : (Unix.file_descr, (unit, unit) Effect.Deep.continuation) Hashtbl.t;
  conns : (Unix.file_descr, unit) Hashtbl.t;
  stopping : bool Atomic.t;
  running : bool Atomic.t;
  finished : bool Atomic.t;
  mutable loop_thread : int;  (* Thread.id of the [run] caller *)
  (* accept backoff after fd exhaustion *)
  mutable accept_paused_until : float;
  mutable accepted_n : int;
  mutable accept_errors_n : int;
  mutable emfile_backoffs_n : int;
  mutable peak_conns_n : int;
}

let create () =
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  {
    poller = Poller.create ();
    wake_r;
    wake_w;
    wake_m = Mutex.create ();
    wake_armed = false;
    ext_m = Mutex.create ();
    ext_ready = [];
    runnable = Queue.create ();
    waiting_read = Hashtbl.create 64;
    waiting_write = Hashtbl.create 16;
    conns = Hashtbl.create 64;
    stopping = Atomic.make false;
    running = Atomic.make false;
    finished = Atomic.make false;
    loop_thread = -1;
    accept_paused_until = 0.0;
    accepted_n = 0;
    accept_errors_n = 0;
    emfile_backoffs_n = 0;
    peak_conns_n = 0;
  }

let backend t = Poller.backend t.poller

let stats t =
  {
    accepted = t.accepted_n;
    cur_conns = Hashtbl.length t.conns;
    peak_conns = t.peak_conns_n;
    accept_errors = t.accept_errors_n;
    emfile_backoffs = t.emfile_backoffs_n;
  }

let wake t =
  Mutex.lock t.wake_m;
  let need = not t.wake_armed in
  if need then t.wake_armed <- true;
  Mutex.unlock t.wake_m;
  if need then
    (* EAGAIN (pipe full: a wake is already pending) and EBADF (the loop
       already tore the pipe down) both mean "no wake needed" *)
    try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ -> ()

(* --- promises ------------------------------------------------------- *)

let promise () = { pm = Mutex.create (); pst = Empty }

let fulfill t p v =
  Mutex.lock p.pm;
  match p.pst with
  | Empty ->
      p.pst <- Full v;
      Mutex.unlock p.pm
  | Waiting resume ->
      p.pst <- Full v;
      Mutex.unlock p.pm;
      Mutex.lock t.ext_m;
      t.ext_ready <- (fun () -> resume v) :: t.ext_ready;
      Mutex.unlock t.ext_m;
      wake t
  | Full _ ->
      Mutex.unlock p.pm;
      invalid_arg "Evloop.fulfill: promise already fulfilled"

(* --- fiber-side operations ------------------------------------------ *)

let await p = Effect.perform (Wait_promise p)
let wait_readable fd = Effect.perform (Wait_read fd)
let wait_writable fd = Effect.perform (Wait_write fd)

let rec read fd buf pos len =
  match Unix.read fd buf pos len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read fd buf pos len
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      wait_readable fd;
      read fd buf pos len

let write_all fd bytes =
  let len = Bytes.length bytes in
  let rec go off =
    if off < len then
      match Unix.write fd bytes off (len - off) with
      | 0 ->
          (* no forward progress without blocking: wait for the socket *)
          wait_writable fd;
          go off
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          wait_writable fd;
          go off
  in
  go 0

(* --- the loop ------------------------------------------------------- *)

let enqueue t thunk = Queue.push thunk t.runnable

(* Spawn [f] as a fiber.  Effects park the continuation and return to the
   loop; resumption thunks re-enter through [continue], which runs the
   fiber up to its next suspension point and then returns here. *)
let spawn t (f : unit -> unit) =
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> ());
      exnc =
        (fun e ->
          (* fiber bodies do their own cleanup via Fun.protect; anything
             escaping here is a handler bug worth hearing about *)
          Printf.eprintf "evloop: fiber raised %s\n%!" (Printexc.to_string e));
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Wait_read fd ->
              Some
                (fun (k : (b, unit) continuation) ->
                  Hashtbl.replace t.waiting_read fd k;
                  Poller.add t.poller fd { Poller.read = true; write = false })
          | Wait_write fd ->
              Some
                (fun (k : (b, unit) continuation) ->
                  Hashtbl.replace t.waiting_write fd k;
                  Poller.add t.poller fd { Poller.read = false; write = true })
          | Wait_promise p ->
              Some
                (fun (k : (b, unit) continuation) ->
                  Mutex.lock p.pm;
                  match p.pst with
                  | Full v ->
                      Mutex.unlock p.pm;
                      enqueue t (fun () -> continue k v)
                  | Empty ->
                      p.pst <- Waiting (fun v -> continue k v);
                      Mutex.unlock p.pm
                  | Waiting _ ->
                      Mutex.unlock p.pm;
                      invalid_arg "Evloop: promise awaited twice")
          | _ -> None);
    }

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let dispatch t fd =
  (match Hashtbl.find_opt t.waiting_read fd with
  | Some k ->
      Hashtbl.remove t.waiting_read fd;
      Poller.del t.poller fd;
      enqueue t (fun () -> Effect.Deep.continue k ())
  | None -> ());
  match Hashtbl.find_opt t.waiting_write fd with
  | Some k ->
      Hashtbl.remove t.waiting_write fd;
      Poller.del t.poller fd;
      enqueue t (fun () -> Effect.Deep.continue k ())
  | None -> ()

let accept_burst t ~listen ~handler =
  let continue_accepting = ref true in
  while !continue_accepting do
    match Unix.accept listen with
    | client, _ ->
        Unix.set_nonblock client;
        (try Unix.setsockopt client Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        t.accepted_n <- t.accepted_n + 1;
        Hashtbl.replace t.conns client ();
        if Hashtbl.length t.conns > t.peak_conns_n then
          t.peak_conns_n <- Hashtbl.length t.conns;
        spawn t (fun () ->
            Fun.protect
              ~finally:(fun () ->
                Hashtbl.remove t.conns client;
                Poller.del t.poller client;
                close_quietly client)
              (fun () ->
                try handler client
                with Unix.Unix_error _ | End_of_file -> ()))
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue_accepting := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
        (* out of descriptors: pause accepting so live connections can
           make progress and free some, instead of spinning on accept *)
        t.accept_errors_n <- t.accept_errors_n + 1;
        t.emfile_backoffs_n <- t.emfile_backoffs_n + 1;
        t.accept_paused_until <- Unix.gettimeofday () +. 0.05;
        Poller.del t.poller listen;
        continue_accepting := false
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        (* listening socket gone: shutting down *)
        Atomic.set t.stopping true;
        continue_accepting := false
    | exception Unix.Unix_error (_, _, _) ->
        (* ECONNABORTED and friends: the would-be client is gone; count
           it and keep accepting *)
        t.accept_errors_n <- t.accept_errors_n + 1
  done

let stop t =
  Atomic.set t.stopping true;
  wake t;
  (* wait for the loop to wind down — unless we ARE the loop thread (a
     handler asking to stop), which would deadlock *)
  if Atomic.get t.running && Thread.id (Thread.self ()) <> t.loop_thread then begin
    let deadline = Unix.gettimeofday () +. 5.0 in
    while (not (Atomic.get t.finished)) && Unix.gettimeofday () < deadline do
      wake t;
      Thread.yield ()
    done
  end

let run t ~listen ~handler =
  t.loop_thread <- Thread.id (Thread.self ());
  Atomic.set t.running true;
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  Unix.set_nonblock listen;
  Poller.add t.poller listen { Poller.read = true; write = false };
  Poller.add t.poller t.wake_r { Poller.read = true; write = false };
  let listen_parked = ref false in
  let drain_deadline = ref 0.0 in
  let finished = ref false in
  while not !finished do
    (* 1. imported cross-domain resumptions, oldest first *)
    Mutex.lock t.ext_m;
    let ext = List.rev t.ext_ready in
    t.ext_ready <- [];
    Mutex.unlock t.ext_m;
    List.iter (fun f -> f ()) ext;
    (* 2. loop-local resumptions (each may enqueue more) *)
    while not (Queue.is_empty t.runnable) do
      (Queue.pop t.runnable) ()
    done;
    (* 3. arm/park the accept gate *)
    let now = Unix.gettimeofday () in
    if Atomic.get t.stopping then begin
      if not !listen_parked then begin
        listen_parked := true;
        Poller.del t.poller listen;
        close_quietly listen;
        (* break every connection's pending read/write so its fiber
           finishes; fibers awaiting promises finish via fulfil *)
        Hashtbl.iter
          (fun fd () ->
            try Unix.shutdown fd Unix.SHUTDOWN_ALL
            with Unix.Unix_error _ -> ())
          t.conns;
        drain_deadline := now +. 2.0
      end
    end
    else if !listen_parked && now >= t.accept_paused_until then begin
      listen_parked := false;
      Poller.add t.poller listen { Poller.read = true; write = false }
    end
    else if (not !listen_parked) && t.accept_paused_until > now then begin
      listen_parked := true;
      Poller.del t.poller listen
    end;
    (* 4. exit test: stopped, every fiber done (or drain expired) *)
    if
      Atomic.get t.stopping
      && (Hashtbl.length t.conns = 0 || now > !drain_deadline)
      && Queue.is_empty t.runnable
    then finished := true
    else begin
      (* 5. sleep until readiness or a cross-domain wake *)
      let timeout_ms = if Atomic.get t.stopping then 20 else 50 in
      let ready = Poller.wait t.poller ~timeout_ms in
      Mutex.lock t.wake_m;
      t.wake_armed <- false;
      Mutex.unlock t.wake_m;
      List.iter
        (fun fd ->
          if fd = t.wake_r then begin
            let b = Bytes.create 64 in
            try
              while Unix.read t.wake_r b 0 64 > 0 do
                ()
              done
            with Unix.Unix_error _ -> ()
          end
          else if fd = listen then accept_burst t ~listen ~handler
          else dispatch t fd)
        ready
    end
  done;
  (* orphaned continuations (conns that outlived the drain window) are
     dropped; their sockets close here *)
  Hashtbl.iter (fun fd () -> close_quietly fd) t.conns;
  Hashtbl.reset t.conns;
  Hashtbl.reset t.waiting_read;
  Hashtbl.reset t.waiting_write;
  Poller.close t.poller;
  close_quietly t.wake_r;
  close_quietly t.wake_w;
  Atomic.set t.finished true

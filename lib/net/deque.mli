(** Chase–Lev work-stealing deque, SPMC flavour: one owner pushes/pops at
    the bottom, any domain steals FIFO from the top.  Fixed capacity —
    [push] reports fullness instead of growing. *)

type 'a t

val create : ?size_exp:int -> unit -> 'a t
(** Ring of [2^size_exp] slots (default 12 → 4096).  Raises
    [Invalid_argument] outside [1..20]. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> bool
(** Owner only.  [false] when the deque is full — nothing is enqueued. *)

val pop : 'a t -> 'a option
(** Owner only: take the most recently pushed item (LIFO). *)

val steal : 'a t -> 'a option
(** Any domain: take the oldest item (FIFO).  May return [None]
    spuriously when racing other consumers; retry or move on. *)

val length : 'a t -> int
(** Racy snapshot of the item count (exact when quiescent). *)

val is_empty : 'a t -> bool

(** An epoll/select readiness event loop running lightweight fibers over
    OCaml effects.  One thread calls {!run}; each accepted connection
    becomes a fiber whose blocking points (readable, writable, promise
    fulfilled) suspend the fiber and return to the loop, so a parked
    connection costs a continuation, not an OS thread.

    The fiber-side operations ({!read}, {!write_all}, {!await}) may only
    be called from inside a handler fiber — they perform effects the loop
    interprets.  {!fulfill} and {!stop} are thread-safe and may be called
    from any domain. *)

type t

type 'a promise

type stats = {
  accepted : int;  (** connections accepted over the loop's lifetime *)
  cur_conns : int;
  peak_conns : int;
  accept_errors : int;  (** transient accept failures (EMFILE bursts &c.) *)
  emfile_backoffs : int;  (** accept pauses forced by fd exhaustion *)
}

val create : unit -> t

val backend : t -> Poller.backend
(** [Epoll] on Linux; [Select] fallback caps the loop near 1024 fds. *)

val run : t -> listen:Unix.file_descr -> handler:(Unix.file_descr -> unit) -> unit
(** Accept connections on [listen] (made nonblocking) and run [handler]
    as a fiber per connection; the client fd is nonblocking and is closed
    by the loop when the handler returns or raises.  Returns after
    {!stop}: accepting ceases, open connections are shut down so their
    pending reads see EOF, and the loop drains remaining fibers (bounded).
    Ignores SIGPIPE process-wide (dead peers surface as EPIPE). *)

val stop : t -> unit
(** Ask the loop to wind down; blocks (bounded) until {!run} returns when
    called from another thread.  Callable from any domain, including a
    handler fiber's executor. *)

(** {2 Fiber-side operations} *)

val read : Unix.file_descr -> bytes -> int -> int -> int
(** Like [Unix.read], suspending the fiber instead of blocking; retries
    EINTR.  [0] means EOF. *)

val write_all : Unix.file_descr -> bytes -> unit
(** Write the whole buffer, suspending on a full socket, retrying EINTR
    and zero-length progress; raises on a dead peer. *)

val wait_readable : Unix.file_descr -> unit
val wait_writable : Unix.file_descr -> unit

val await : 'a promise -> 'a
(** Suspend until the promise is fulfilled.  Each promise may be awaited
    at most once. *)

(** {2 Cross-domain operations} *)

val promise : unit -> 'a promise

val fulfill : t -> 'a promise -> 'a -> unit
(** Fulfil from any domain; resumes the awaiting fiber via the loop.
    Raises [Invalid_argument] on a double fulfil. *)

val stats : t -> stats

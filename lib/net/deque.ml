(** A Chase–Lev work-stealing deque, SPMC flavour: one owner pushes (and
    may pop LIFO) at the bottom; any number of thieves steal FIFO from the
    top.  This is the run-queue shape the event loop feeds — the loop is
    the single producer, executor domains are the thieves — so the only
    contended operation is the thieves' CAS on [top].

    The buffer is a fixed-size ring of [Atomic.t] cells.  Chase–Lev's
    growable array is replaced by a capacity check: [push] returns [false]
    on a full deque and the caller decides (the scheduler spins briefly —
    a full run queue means the executors are saturated anyway).  Making
    every slot atomic costs an indirection per element but keeps the
    implementation free of data races under the OCaml memory model: all
    cross-domain communication goes through [Atomic], so the usual
    fenced-load subtleties of the C11 original do not arise.

    Safety of the unsynchronized-looking slot read in [steal]: the slot at
    position [t] can only be recycled after [top] has advanced past [t]
    (some consumer took it) {e and} the owner wrapped the ring around to
    [t + size].  Both paths move [top] beyond [t], so a thief that read a
    recycled value always fails its [compare_and_set top t (t+1)] and
    discards it.  [top] is monotonically increasing — no ABA. *)

type 'a t = {
  top : int Atomic.t;  (** next position to steal *)
  bottom : int Atomic.t;  (** next position to push *)
  buf : 'a option Atomic.t array;  (** position [i] lives in [i land mask] *)
  mask : int;
}

let create ?(size_exp = 12) () =
  if size_exp < 1 || size_exp > 20 then
    invalid_arg "Deque.create: size_exp out of range";
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Array.init (1 lsl size_exp) (fun _ -> Atomic.make None);
    mask = (1 lsl size_exp) - 1;
  }

let capacity t = t.mask + 1

(* Owner only.  [false] = full: [bottom - top] already spans the ring. *)
let push t x =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  if b - tp > t.mask then false
  else begin
    Atomic.set t.buf.(b land t.mask) (Some x);
    (* publishing [bottom] after the slot write is what lets a thief that
       observed the new [bottom] rely on seeing the slot contents *)
    Atomic.set t.bottom (b + 1);
    true
  end

(* Owner only: LIFO end.  Competes with thieves only for the last item. *)
let pop t =
  let b = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* empty; restore *)
    Atomic.set t.bottom tp;
    None
  end
  else if b > tp then begin
    let cell = t.buf.(b land t.mask) in
    let x = Atomic.get cell in
    Atomic.set cell None;
    x
  end
  else begin
    (* exactly one item: race thieves for it via [top] *)
    let won = Atomic.compare_and_set t.top tp (tp + 1) in
    Atomic.set t.bottom (tp + 1);
    if won then begin
      let cell = t.buf.(b land t.mask) in
      let x = Atomic.get cell in
      Atomic.set cell None;
      x
    end
    else None
  end

(* Any domain: FIFO end.  May fail spuriously under contention ([None]
   even though items remain) — callers treat [None] as "try elsewhere",
   which is exactly what a stealing scheduler does anyway. *)
let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then None
  else
    match Atomic.get t.buf.(tp land t.mask) with
    | None -> None (* lost a race; the item is (being) taken by someone *)
    | Some _ as x -> if Atomic.compare_and_set t.top tp (tp + 1) then x else None

let length t = max 0 (Atomic.get t.bottom - Atomic.get t.top)
let is_empty t = length t = 0

/* Minimal epoll bindings for the event loop.  Linux only: elsewhere every
 * stub reports "unsupported" and the OCaml side falls back to
 * Unix.select (which caps the loop at FD_SETSIZE descriptors — the
 * reason these stubs exist at all).
 *
 * File descriptors cross the boundary as plain ints: on Unix systems
 * OCaml's Unix.file_descr is an immediate int, and these stubs are only
 * ever compiled on Unix systems. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/threads.h>

#ifdef __linux__

#include <sys/epoll.h>
#include <unistd.h>
#include <errno.h>

#define NR_MAX_EVENTS 1024

/* -1 on failure: the caller falls back to select. */
CAMLprim value nr_epoll_create(value unit)
{
  (void)unit;
  return Val_long(epoll_create1(0));
}

/* op: 0 = add, 1 = mod, 2 = del; events: bit 0 = in, bit 1 = out.
 * Returns 0 on success, the (positive) errno on failure. */
CAMLprim value nr_epoll_ctl(value epfd, value op, value fd, value events)
{
  struct epoll_event ev;
  int ops[3] = { EPOLL_CTL_ADD, EPOLL_CTL_MOD, EPOLL_CTL_DEL };
  ev.events = 0;
  if (Long_val(events) & 1) ev.events |= EPOLLIN;
  if (Long_val(events) & 2) ev.events |= EPOLLOUT;
  ev.data.fd = Int_val(fd);
  if (epoll_ctl(Int_val(epfd), ops[Long_val(op)], Int_val(fd), &ev) == -1)
    return Val_long(errno);
  return Val_long(0);
}

/* Fills out_fds with ready descriptors (error/hangup conditions count as
 * ready: the subsequent read/write surfaces the failure).  Returns the
 * count, 0 on timeout, -1 on EINTR.  Releases the runtime lock around
 * the wait so executor domains keep running. */
CAMLprim value nr_epoll_wait(value epfd, value timeout_ms, value out_fds)
{
  CAMLparam3(epfd, timeout_ms, out_fds);
  static __thread struct epoll_event evs[NR_MAX_EVENTS];
  int max = Wosize_val(out_fds);
  int n, i;
  if (max > NR_MAX_EVENTS) max = NR_MAX_EVENTS;
  caml_release_runtime_system();
  n = epoll_wait(Int_val(epfd), evs, max, Int_val(timeout_ms));
  caml_acquire_runtime_system();
  if (n == -1)
    CAMLreturn(errno == EINTR ? Val_long(-1) : Val_long(-2));
  for (i = 0; i < n; i++)
    Field(out_fds, i) = Val_long(evs[i].data.fd);
  CAMLreturn(Val_long(n));
}

CAMLprim value nr_epoll_close(value epfd)
{
  close(Int_val(epfd));
  return Val_unit;
}

#else /* not __linux__ */

CAMLprim value nr_epoll_create(value unit)
{
  (void)unit;
  return Val_long(-1);
}

CAMLprim value nr_epoll_ctl(value epfd, value op, value fd, value events)
{
  (void)epfd; (void)op; (void)fd; (void)events;
  return Val_long(-1);
}

CAMLprim value nr_epoll_wait(value epfd, value timeout_ms, value out_fds)
{
  (void)epfd; (void)timeout_ms; (void)out_fds;
  return Val_long(-2);
}

CAMLprim value nr_epoll_close(value epfd)
{
  (void)epfd;
  return Val_unit;
}

#endif

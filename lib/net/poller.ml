(* Readiness notification behind one interface: epoll(7) where the C stub
   reports support (Linux), Unix.select elsewhere.  select caps the loop
   at FD_SETSIZE (1024) descriptors, which is exactly what the epoll
   backend exists to lift; [backend] lets callers size tests accordingly.

   Interests are level-triggered and persistent until [del].  An fd has
   one interest set at a time ([add] replaces).  Error/hangup conditions
   surface as readiness — the next read/write on the fd reports the
   failure, which is how the event loop learns about dead peers. *)

external epoll_create : unit -> int = "nr_epoll_create"
external epoll_ctl : int -> int -> int -> int -> int = "nr_epoll_ctl"
external epoll_wait_raw : int -> int -> int array -> int = "nr_epoll_wait"
external epoll_close : int -> unit = "nr_epoll_close"

(* On Unix, Unix.file_descr is represented as an int. *)
external int_of_fd : Unix.file_descr -> int = "%identity"
external fd_of_int : int -> Unix.file_descr = "%identity"

type interest = { read : bool; write : bool }

type backend = Epoll | Select

type t = {
  backend : backend;
  epfd : int;  (* epoll only *)
  out_fds : int array;  (* epoll only: preallocated result buffer *)
  interests : (Unix.file_descr, interest) Hashtbl.t;
      (* select: the wait sets; epoll: mirrors kernel state for add/del
         bookkeeping (whether to ADD or MOD) *)
}

let create () =
  let epfd = epoll_create () in
  let backend = if epfd >= 0 then Epoll else Select in
  {
    backend;
    epfd;
    out_fds = Array.make 1024 0;
    interests = Hashtbl.create 64;
  }

let backend t = t.backend

let mask i = (if i.read then 1 else 0) lor if i.write then 2 else 0

let add t fd i =
  if not (i.read || i.write) then invalid_arg "Poller.add: empty interest";
  let known = Hashtbl.mem t.interests fd in
  Hashtbl.replace t.interests fd i;
  match t.backend with
  | Select -> ()
  | Epoll ->
      let op = if known then 1 else 0 in
      let rc = epoll_ctl t.epfd op (int_of_fd fd) (mask i) in
      if rc <> 0 then begin
        (* reconcile a stale mirror: retry with the other op once *)
        let rc2 = epoll_ctl t.epfd (1 - op) (int_of_fd fd) (mask i) in
        if rc2 <> 0 then
          failwith (Printf.sprintf "Poller.add: epoll_ctl errno %d" rc2)
      end

let del t fd =
  if Hashtbl.mem t.interests fd then begin
    Hashtbl.remove t.interests fd;
    match t.backend with
    | Select -> ()
    | Epoll ->
        (* the fd may already be closed (kernel auto-deregisters); any
           error here is benign *)
        ignore (epoll_ctl t.epfd 2 (int_of_fd fd) 0)
  end

let wait t ~timeout_ms =
  match t.backend with
  | Epoll -> (
      match epoll_wait_raw t.epfd timeout_ms t.out_fds with
      | -1 -> [] (* EINTR: let the caller's loop come around again *)
      | -2 -> failwith "Poller.wait: epoll_wait failed"
      | n ->
          let rec collect i acc =
            if i < 0 then acc
            else collect (i - 1) (fd_of_int t.out_fds.(i) :: acc)
          in
          collect (n - 1) [])
  | Select -> (
      let rd, wr =
        Hashtbl.fold
          (fun fd i (rd, wr) ->
            ((if i.read then fd :: rd else rd),
             if i.write then fd :: wr else wr))
          t.interests ([], [])
      in
      match Unix.select rd wr [] (float_of_int timeout_ms /. 1000.) with
      | r, w, _ -> List.sort_uniq compare (r @ w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> [])

let close t =
  Hashtbl.reset t.interests;
  match t.backend with Epoll -> epoll_close t.epfd | Select -> ()

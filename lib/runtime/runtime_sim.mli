(** Simulator-backed runtime: cells are simulated cache lines, thread
    identity comes from the scheduler, and regions charge operation
    footprints against the machine model. *)

val make : Nr_sim.Sched.t -> Runtime_intf.t
(** Build a runtime bound to one simulation.  The returned module may only
    be used by threads spawned on that scheduler (except [cell]/[region],
    which may also run before {!Nr_sim.Sched.run} to build the initial
    state; they then allocate on node 0 unless [home] is given). *)

module Sched = Nr_sim.Sched
module Mem = Nr_sim.Mem
module Region = Nr_sim.Region
module Topology = Nr_sim.Topology

let make sched : Runtime_intf.t =
  let topo = Sched.topology sched in
  let stats = Sched.stats sched in
  let module R = struct
    type 'a cell = { line : Mem.line; mutable v : 'a }
    type region = Region.t

    let home_or_local = function
      | Some h -> Sched.fresh_line sched ~home:h
      | None -> Sched.fresh_line_local sched

    let cell ?home v = { line = home_or_local home; v }

    (* Accesses from outside a running simulation (setup, teardown, test
       inspection) are free: there is no thread to charge. *)
    let touch line kind = if Sched.running () then Sched.touch line kind

    (* The value is read or updated immediately after the effect resumes,
       with no intervening suspension point, so each access linearizes at
       its resume. *)
    let read c =
      touch c.line Mem.Read;
      c.v

    let write c v =
      touch c.line Mem.Write;
      c.v <- v

    let cas c expected desired =
      touch c.line Mem.Cas;
      if c.v == expected then (
        c.v <- desired;
        true)
      else (
        stats.Nr_sim.Sim_stats.cas_failures <-
          stats.Nr_sim.Sim_stats.cas_failures + 1;
        false)

    (* Free advisory read: no charge, no suspension. *)
    let peek c = c.v

    (* The guard runs after [touch]'s suspension point, in the same atomic
       region as the compare and the store — no other simulated thread can
       run between the check and the act. *)
    let guarded_cas c ~guard expected desired =
      touch c.line Mem.Cas;
      if guard () && c.v == expected then (
        c.v <- desired;
        true)
      else (
        stats.Nr_sim.Sim_stats.cas_failures <-
          stats.Nr_sim.Sim_stats.cas_failures + 1;
        false)

    let guarded_write c ~guard v =
      touch c.line Mem.Write;
      if guard () then (
        c.v <- v;
        true)
      else false

    let faa c n =
      touch c.line Mem.Cas;
      let old = c.v in
      c.v <- old + n;
      old

    let read_all cells =
      if Sched.running () then
        Sched.touch_batch
          (Array.map (fun c -> (c.line, Mem.Read)) cells);
      Array.map (fun c -> c.v) cells

    (* Scratch line buffer for the non-allocating batch reads.  One per
       runtime instance is enough: the gather below runs without a
       suspension point, and the scheduler consumes the array inside the
       effect handler before any other simulated thread can run, so a
       concurrent reuse can only overwrite lines that were already
       charged. *)
    let scratch_lines = ref [||]

    let ensure_scratch n =
      if Array.length !scratch_lines < n then
        scratch_lines :=
          Array.make (max n (2 * Array.length !scratch_lines))
            (Mem.line ~home:0)

    let read_all_into cells ~n ~dst =
      if Sched.running () then begin
        ensure_scratch n;
        let lines = !scratch_lines in
        for k = 0 to n - 1 do
          Array.unsafe_set lines k cells.(k).line
        done;
        Sched.touch_batch_kind lines ~n Mem.Read
      end;
      for k = 0 to n - 1 do
        dst.(k) <- cells.(k).v
      done

    let read_ints_into cells ~n ~dst =
      if Sched.running () then begin
        ensure_scratch n;
        let lines = !scratch_lines in
        for k = 0 to n - 1 do
          Array.unsafe_set lines k cells.(k).line
        done;
        Sched.touch_batch_kind lines ~n Mem.Read
      end;
      for k = 0 to n - 1 do
        dst.(k) <- (cells.(k).v : int)
      done

    (* Flat int cells: values in one unboxed array, line records
       materialized on first simulated access.  Laziness is safe here
       because the simulator is single-OS-thread — there is no racing
       materialization — and cost-transparent because a line that was never
       touched has never influenced the model: creating it at first touch
       leaves every charge identical to eager creation.  Setup-time
       accesses (outside a running simulation) are free, as for [cell],
       and materialize nothing. *)
    type icells = {
      vals : int array;
      ilines : Mem.line option array;
      ihome : int;
    }

    let icells ?home ~len init =
      let ihome =
        match home with
        | Some h -> h
        | None -> if Sched.running () then Sched.self_node () else 0
      in
      {
        vals = Array.make len init;
        ilines = Array.make len None;
        ihome;
      }

    let iline c i =
      match Array.unsafe_get c.ilines i with
      | Some l -> l
      | None ->
          let l = Mem.line ~home:c.ihome in
          Array.unsafe_set c.ilines i (Some l);
          l

    let iget c i =
      if Sched.running () then Sched.touch (iline c i) Mem.Read;
      c.vals.(i)

    let iset c i v =
      if Sched.running () then Sched.touch (iline c i) Mem.Write;
      c.vals.(i) <- v

    let icas c i expected desired =
      if Sched.running () then Sched.touch (iline c i) Mem.Cas;
      if c.vals.(i) = expected then (
        c.vals.(i) <- desired;
        true)
      else (
        stats.Nr_sim.Sim_stats.cas_failures <-
          stats.Nr_sim.Sim_stats.cas_failures + 1;
        false)

    let iread_into c ~idx ~n ~dst =
      if Sched.running () then begin
        ensure_scratch n;
        let lines = !scratch_lines in
        for k = 0 to n - 1 do
          Array.unsafe_set lines k (iline c idx.(k))
        done;
        Sched.touch_batch_kind lines ~n Mem.Read
      end;
      for k = 0 to n - 1 do
        dst.(k) <- c.vals.(idx.(k))
      done

    let region ?home ~lines () =
      let home =
        match home with
        | Some h -> h
        | None -> if Sched.running () then Sched.self_node () else 0
      in
      Region.create sched ~home ~lines

    let charges_footprints = true

    let touch_region r (fp : Footprint.t) =
      if Sched.running () then
        Region.touch r ~key:fp.key ~reads:fp.reads ~writes:fp.writes
          ~hot_write:fp.hot_write ~spine_reads:fp.spine_reads
          ~spine_writes:fp.spine_writes

    let yield () = if Sched.running () then Sched.yield ()
    let work n = if Sched.running () then Sched.work n

    (* Setup/teardown code outside the simulation runs as "thread 0". *)
    let tid () = if Sched.running () then Sched.self_tid () else 0
    let my_node () = if Sched.running () then Sched.self_node () else 0
    let node_of t = Topology.node_of_thread topo t
    let num_nodes () = topo.Topology.nodes
    let threads_per_node () = Topology.threads_per_node topo
    let max_threads () = Topology.max_threads topo
  end in
  (module R)

(** Cache-line footprint of one data-structure operation.

    Sequential data structures report, per operation, roughly how many cache
    lines the operation reads and writes and whether it touches the
    structure's hot entry-point line in write mode.  The simulator runtime
    charges this footprint against the structure's line region; the real
    (Domains) runtime ignores it, since real execution produces real memory
    traffic. *)

type t = {
  key : int;
      (** determines {e which} lines are touched; operations with equal keys
          touch the same lines *)
  reads : int;  (** body lines read *)
  writes : int;  (** body lines written *)
  hot_write : bool;  (** whether the hot line is written *)
  spine_reads : int;
      (** reads of the structure's {e spine} — the small set of lines (upper
          skip-list levels, root children, head area) that every operation
          traverses regardless of its key *)
  spine_writes : int;
      (** writes to spine lines; these invalidate every other node's cached
          copy of the structure's entry area, the heart of operation
          contention *)
}

val v :
  ?hot_write:bool ->
  ?writes:int ->
  ?spine_reads:int ->
  ?spine_writes:int ->
  key:int ->
  reads:int ->
  unit ->
  t
val read_only : t -> bool
val pp : Format.formatter -> t -> unit

(** Real-parallelism runtime over OCaml 5 domains.

    Cells are [Atomic.t] values; thread identity is domain-local state set by
    {!register} (or the {!parallel_run} helper); NUMA placement is virtual —
    OCaml has no portable affinity API, so node ids only label threads with
    the topology's fill-node-first policy.  Regions are free: real execution
    produces real memory traffic. *)

val make : Nr_sim.Topology.t -> Runtime_intf.t

val register : tid:int -> unit
(** Set the calling domain's thread id.  Must be called before using any
    identity-dependent runtime operation from that domain. *)

val parallel_run : nthreads:int -> (int -> unit) -> unit
(** [parallel_run ~nthreads body] spawns [nthreads] domains, registers tids
    [0..nthreads-1] and runs [body tid] in each, then joins them all.  The
    first exception raised by any body (if any) is re-raised. *)

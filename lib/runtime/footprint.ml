type t = {
  key : int;
  reads : int;
  writes : int;
  hot_write : bool;
  spine_reads : int;
  spine_writes : int;
}

let v ?(hot_write = false) ?(writes = 0) ?(spine_reads = 0)
    ?(spine_writes = 0) ~key ~reads () =
  if reads < 0 || writes < 0 || spine_reads < 0 || spine_writes < 0 then
    invalid_arg "Footprint.v: negative line count";
  { key; reads; writes; hot_write; spine_reads; spine_writes }

let read_only t = t.writes = 0 && (not t.hot_write) && t.spine_writes = 0

let pp ppf t =
  Format.fprintf ppf
    "key=%d reads=%d writes=%d hot_write=%b spine=%d/%d" t.key t.reads
    t.writes t.hot_write t.spine_reads t.spine_writes

module Topology = Nr_sim.Topology

let tid_key = Domain.DLS.new_key (fun () -> -1)
let yield_key = Domain.DLS.new_key (fun () -> ref 0)

let register ~tid = Domain.DLS.set tid_key tid

let current_tid () =
  let t = Domain.DLS.get tid_key in
  if t < 0 then
    invalid_arg "Runtime_domains: thread not registered (call register ~tid)";
  t

(* On a machine with fewer cores than domains (this container has one), pure
   spinning would burn a full OS quantum before the holder of a lock runs
   again; sleeping 1us every few iterations lets the OS scheduler rotate. *)
let yield () =
  let c = Domain.DLS.get yield_key in
  incr c;
  if !c land 255 = 0 then Unix.sleepf 1e-6 else Domain.cpu_relax ()

let work n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := Sys.opaque_identity (!acc + i)
  done;
  ignore (Sys.opaque_identity !acc)

let make topo : Runtime_intf.t =
  let module R = struct
    type 'a cell = 'a Atomic.t
    type region = unit

    let cell ?home v =
      ignore home;
      Atomic.make v

    let read = Atomic.get
    let write = Atomic.set
    let peek = Atomic.get
    let cas = Atomic.compare_and_set

    (* Advisory on domains: another domain may interleave between the guard
       and the mutation (see Runtime_intf).  The chaos protocol that needs
       real atomicity runs on the simulator only. *)
    let guarded_cas c ~guard expected desired =
      guard () && Atomic.compare_and_set c expected desired

    let guarded_write c ~guard v =
      if guard () then (
        Atomic.set c v;
        true)
      else false

    let faa = Atomic.fetch_and_add
    let read_all cells = Array.map Atomic.get cells

    let read_all_into cells ~n ~dst =
      for k = 0 to n - 1 do
        dst.(k) <- Atomic.get cells.(k)
      done

    (* Same loop, monomorphic: int stores skip the write barrier. *)
    let read_ints_into cells ~n ~dst =
      for k = 0 to n - 1 do
        dst.(k) <- (Atomic.get cells.(k) : int)
      done

    (* Eager [Atomic.t] per slot: a lazy table would need racy
       materialization (OCaml has no per-element CAS into a plain array),
       and real memory is only committed when written anyway. *)
    type icells = int Atomic.t array

    let icells ?home ~len init =
      ignore home;
      Array.init len (fun _ -> Atomic.make init)

    let iget (c : icells) i = Atomic.get c.(i)
    let iset (c : icells) i v = Atomic.set c.(i) v

    let icas (c : icells) i expected desired =
      Atomic.compare_and_set c.(i) expected desired

    let iread_into (c : icells) ~idx ~n ~dst =
      for k = 0 to n - 1 do
        dst.(k) <- Atomic.get c.(idx.(k))
      done

    let region ?home ~lines () =
      ignore home;
      ignore lines

    let charges_footprints = false
    let touch_region () _fp = ()
    let tid = current_tid
    let node_of t = Topology.node_of_thread topo t
    let my_node () = node_of (current_tid ())
    let num_nodes () = topo.Topology.nodes
    let threads_per_node () = Topology.threads_per_node topo
    let max_threads () = Topology.max_threads topo
    let yield = yield
    let work = work
  end in
  (module R)

let parallel_run ~nthreads body =
  if nthreads <= 0 then invalid_arg "parallel_run: nthreads must be > 0";
  let failure = Atomic.make None in
  let run tid () =
    register ~tid;
    try body tid
    with e ->
      ignore (Atomic.compare_and_set failure None (Some e))
  in
  let domains = Array.init nthreads (fun tid -> Domain.spawn (run tid)) in
  Array.iter Domain.join domains;
  match Atomic.get failure with None -> () | Some e -> raise e

(** The runtime abstraction all concurrency-control code is written against.

    Node Replication, the lock-based and lock-free baselines, and the
    synchronization primitives are functors over this signature, so the same
    algorithm source runs both on real OCaml 5 domains
    ({!Runtime_domains}) and inside the deterministic NUMA simulator
    ({!Runtime_sim}). *)

module type S = sig
  (** {2 Shared memory}

      A [cell] is one shared word occupying its own cache line (concurrency
      metadata is always padded to a line on real NUMA machines; the paper
      does the same, §5.7). *)

  type 'a cell

  val cell : ?home:int -> 'a -> 'a cell
  (** Allocate a cell.  [home] is the NUMA node whose memory backs it; it
      defaults to the calling thread's node (node-local allocation). *)

  val read : 'a cell -> 'a
  val write : 'a cell -> 'a -> unit

  val cas : 'a cell -> 'a -> 'a -> bool
  (** Compare-and-set with physical equality — use with immediate values
      (ints) or uniquely-allocated boxed values. *)

  val faa : int cell -> int -> int
  (** Fetch-and-add; returns the previous value. *)

  val read_all : 'a cell array -> 'a array
  (** Read a batch of {e independent} cells.  On hardware, independent
      misses overlap (memory-level parallelism); the simulator charges the
      batch in overlapping windows rather than serially.  All values are
      read at a single linearization point.  Use for scans of unrelated
      cells: combiner slots, per-reader lock flags. *)

  (** {2 Data-structure payload memory}

      A [region] stands for the payload memory of a structure replica; the
      simulator charges operation footprints against it, the domains runtime
      treats it as free (real execution pays real cache misses). *)

  type region

  val region : ?home:int -> lines:int -> unit -> region
  val touch_region : region -> Footprint.t -> unit

  (** {2 Thread identity and placement} *)

  val tid : unit -> int
  (** Calling thread's id in [0, max_threads). *)

  val my_node : unit -> int
  val node_of : int -> int
  val num_nodes : unit -> int
  val threads_per_node : unit -> int
  val max_threads : unit -> int

  (** {2 Time} *)

  val yield : unit -> unit
  (** One spin-wait iteration.  Every unbounded wait loop must yield. *)

  val work : int -> unit
  (** Roughly [n] cycles of node-local computation. *)
end

(** A first-class runtime. *)
type t = (module S)

(** The runtime abstraction all concurrency-control code is written against.

    Node Replication, the lock-based and lock-free baselines, and the
    synchronization primitives are functors over this signature, so the same
    algorithm source runs both on real OCaml 5 domains
    ({!Runtime_domains}) and inside the deterministic NUMA simulator
    ({!Runtime_sim}). *)

module type S = sig
  (** {2 Shared memory}

      A [cell] is one shared word occupying its own cache line (concurrency
      metadata is always padded to a line on real NUMA machines; the paper
      does the same, §5.7). *)

  type 'a cell

  val cell : ?home:int -> 'a -> 'a cell
  (** Allocate a cell.  [home] is the NUMA node whose memory backs it; it
      defaults to the calling thread's node (node-local allocation). *)

  val read : 'a cell -> 'a
  val write : 'a cell -> 'a -> unit

  val peek : 'a cell -> 'a
  (** Advisory, uncharged read: the current value without paying the
      modeled access cost (simulator) or any ordering guarantee beyond the
      atomic load itself (domains).  Use only to decide whether to attempt
      a charged operation — never as the operation's linearization point. *)

  val cas : 'a cell -> 'a -> 'a -> bool
  (** Compare-and-set with physical equality — use with immediate values
      (ints) or uniquely-allocated boxed values. *)

  val guarded_cas : 'a cell -> guard:(unit -> bool) -> 'a -> 'a -> bool
  (** [guarded_cas c ~guard expected desired] is {!cas} that additionally
      requires [guard ()] to hold, evaluated {e atomically with the
      mutation}: on the simulator the guard runs after the access charge's
      suspension point, in the same atomic region as the compare and the
      store, so no other simulated thread can run between the check and the
      act.  On domains the guard is evaluated immediately before the CAS
      and the pair is {e advisory} (another domain may interleave); the
      hardened-NR protocol that relies on atomicity is exercised on the
      simulator only.  The guard must be pure apart from reads of plain
      (uncharged) state and must not suspend. *)

  val guarded_write : 'a cell -> guard:(unit -> bool) -> 'a -> bool
  (** [guarded_write c ~guard v] writes [v] iff [guard ()] holds, with the
      same atomicity contract as {!guarded_cas}; returns whether the write
      happened. *)

  val faa : int cell -> int -> int
  (** Fetch-and-add; returns the previous value. *)

  val read_all : 'a cell array -> 'a array
  (** Read a batch of {e independent} cells.  On hardware, independent
      misses overlap (memory-level parallelism); the simulator charges the
      batch in overlapping windows rather than serially.  All values are
      read at a single linearization point.  Use for scans of unrelated
      cells: combiner slots, per-reader lock flags. *)

  val read_all_into : 'a cell array -> n:int -> dst:'a array -> unit
  (** [read_all_into cells ~n ~dst] is {!read_all} restricted to
      [cells.(0..n-1)], writing the values into [dst.(0..n-1)] instead of
      allocating a result: same single linearization point, same overlapped
      charging on the simulator, zero allocation on the steady-state path.
      [dst] must have length at least [n]. *)

  val read_ints_into : int cell array -> n:int -> dst:int array -> unit
  (** Int-cell fast path of {!read_all_into}: destination stores are
      unboxed (no write barrier), and the simulator charges the batch
      without building a per-call access descriptor.  Use on the hottest
      scans — log generation stamps, per-node tails, reader flags. *)

  (** {2 Int-cell arrays}

      An [icells] is a flat array of shared int cells — the storage behind
      the hottest per-slot metadata (log generation stamps).  Values live
      unboxed in one contiguous array, so a scan walks consecutive words
      instead of chasing one pointer per cell, and the simulator can
      materialize per-slot line records lazily: a mostly-idle array (a log
      sized for the worst case) costs its {e used} prefix, not its
      capacity. *)

  type icells

  val icells : ?home:int -> len:int -> int -> icells
  (** [icells ~home ~len init] allocates [len] shared int cells, each
      holding [init], homed like {!cell}. *)

  val iget : icells -> int -> int
  val iset : icells -> int -> int -> unit

  val icas : icells -> int -> int -> int -> bool
  (** [icas c i expected desired] — compare-and-set on one int cell.  Lets
      two writers racing to stamp the same slot (a recovering combiner
      refilling a hole vs. a stealer poisoning it) resolve consistently
      whichever order they run in. *)

  val iread_into : icells -> idx:int array -> n:int -> dst:int array -> unit
  (** Gather [idx.(0..n-1)] into [dst.(0..n-1)]: the {!read_ints_into}
      batch read (single linearization point, overlapped charging, zero
      allocation) over an index set instead of a cell array. *)

  (** {2 Data-structure payload memory}

      A [region] stands for the payload memory of a structure replica; the
      simulator charges operation footprints against it, the domains runtime
      treats it as free (real execution pays real cache misses). *)

  type region

  val region : ?home:int -> lines:int -> unit -> region
  val touch_region : region -> Footprint.t -> unit

  val charges_footprints : bool
  (** Whether {!touch_region} consumes footprints at all.  The simulator
      charges them against its cost model; the domains runtime pays real
      cache misses instead, so callers on its hot paths skip building the
      {!Footprint.t} — a per-operation allocation — entirely. *)

  (** {2 Thread identity and placement} *)

  val tid : unit -> int
  (** Calling thread's id in [0, max_threads). *)

  val my_node : unit -> int
  val node_of : int -> int
  val num_nodes : unit -> int
  val threads_per_node : unit -> int
  val max_threads : unit -> int

  (** {2 Time} *)

  val yield : unit -> unit
  (** One spin-wait iteration.  Every unbounded wait loop must yield. *)

  val work : int -> unit
  (** Roughly [n] cycles of node-local computation. *)
end

(** A first-class runtime. *)
type t = (module S)

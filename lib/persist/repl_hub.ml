(** Leader-side replica ACK tracking — the bookkeeping behind [WAIT].

    Followers periodically report their durable watermark with
    [REPLACK <id> <seq>], meaning: every log position [< seq] is durable
    on that follower (it has applied and — if it persists — fsynced the
    prefix).  The hub keeps one monotone watermark per follower id and
    answers the only question [WAIT n timeout] needs: how many distinct
    followers have acked at least a given target position?

    The hub never sleeps on a condition variable: [wait] is a bounded
    poll loop with an injectable clock and sleeper, so the server passes
    [Unix.gettimeofday]/[Thread.delay] while deterministic tests pass a
    virtual clock and count the polls.  Watermarks only advance — a
    late, reordered or replayed REPLACK can never regress the count a
    previous WAIT already observed. *)

type t = {
  m : Mutex.t;
  marks : (string, int) Hashtbl.t;  (** follower id -> acked watermark *)
  mutable acks_received : int;  (** REPLACK frames processed, for stats *)
}

let create () = { m = Mutex.create (); marks = Hashtbl.create 8; acks_received = 0 }

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(** Record a follower ack.  Monotone: a stale [seq] below the recorded
    watermark is ignored (acks can arrive out of order over a chain). *)
let ack t ~id ~seq =
  with_lock t (fun () ->
      t.acks_received <- t.acks_received + 1;
      match Hashtbl.find_opt t.marks id with
      | Some prev when prev >= seq -> ()
      | _ -> Hashtbl.replace t.marks id seq)

(** How many distinct followers have acked a watermark [>= seq]. *)
let acked t ~seq =
  with_lock t (fun () ->
      Hashtbl.fold (fun _ mark n -> if mark >= seq then n + 1 else n) t.marks 0)

(** Number of followers that have ever acked. *)
let followers t = with_lock t (fun () -> Hashtbl.length t.marks)

let acks_received t = with_lock t (fun () -> t.acks_received)

(** Drop a follower's watermark (its feed disconnected); it re-registers
    with its first REPLACK after reconnecting. *)
let forget t ~id = with_lock t (fun () -> Hashtbl.remove t.marks id)

(** Block until [>= n] followers have acked position [seq] or [timeout_ms]
    elapses; returns the count actually acked at return time — reaching
    the timeout is graceful degradation, not an error.  [n <= 0] returns
    immediately with the current count.  [now_ms]/[sleep_ms] default to
    the real clock; tests inject virtual ones. *)
let wait ?now_ms ?sleep_ms ?(poll_ms = 2) t ~seq ~n ~timeout_ms =
  let now_ms =
    match now_ms with
    | Some f -> f
    | None -> fun () -> int_of_float (Unix.gettimeofday () *. 1000.)
  in
  let sleep_ms =
    match sleep_ms with
    | Some f -> f
    | None -> fun ms -> Thread.delay (float_of_int ms /. 1000.)
  in
  let deadline = now_ms () + max 0 timeout_ms in
  let rec loop () =
    let have = acked t ~seq in
    if have >= n || n <= 0 then have
    else if now_ms () >= deadline then have
    else begin
      sleep_ms poll_ms;
      loop ()
    end
  in
  loop ()

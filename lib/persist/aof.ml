(** The append-only file: framed, checksummed operations streamed off the
    NR shared log's completed prefix, with group fsync.

    File layout: one {!Frame.Header} frame carrying the {e base} — the log
    position of the first op frame — followed by 'O' (op) and 'N'
    (poisoned no-op) frames at consecutive positions.  The durability
    watermark ([durable_seq]) advances only when an fsync returns: entries
    in [[base, durable_seq)] survive any crash, entries above ride the
    page cache and may be lost or torn (the CRC catches the tear on
    recovery).

    Fsync batching is the classic group-commit knob:
    - [Always]: fsync after every append — every reply is durable;
    - [Every_n n]: fsync once per [n] appends;
    - [Every_ms m]: fsync when [m] milliseconds passed since the last;
    - [Never]: leave it to snapshots and clean shutdown. *)

type fsync_policy = Always | Every_n of int | Every_ms of int | Never

let pp_policy ppf = function
  | Always -> Format.pp_print_string ppf "always"
  | Every_n n -> Format.fprintf ppf "every-n:%d" n
  | Every_ms m -> Format.fprintf ppf "every-ms:%d" m
  | Never -> Format.pp_print_string ppf "never"

let policy_of_string s =
  match String.lowercase_ascii s with
  | "always" -> Ok Always
  | "never" | "no" -> Ok Never
  | s -> (
      let num prefix =
        let p = String.length prefix in
        if String.length s > p && String.sub s 0 p = prefix then
          int_of_string_opt (String.sub s p (String.length s - p))
        else None
      in
      match (num "every-n:", num "every-ms:") with
      | Some n, _ when n > 0 -> Ok (Every_n n)
      | _, Some m when m > 0 -> Ok (Every_ms m)
      | _ ->
          Error
            (Printf.sprintf
               "bad fsync policy %S (always|every-n:N|every-ms:MS|never)" s))

type t = {
  fs : Vfs.t;
  name : string;
  policy : fsync_policy;
  now_ms : unit -> int;
  mutable file : Vfs.file;
  mutable base : int;
  mutable next_seq : int;  (** position the next appended op will take *)
  mutable durable_seq : int;  (** positions below this are fsynced *)
  mutable unsynced : int;
  mutable last_sync_ms : int;
  mutable fsyncs : int;  (** fsync calls issued, for benches *)
}

let base t = t.base
let next_seq t = t.next_seq
let durable_seq t = t.durable_seq
let fsyncs t = t.fsyncs

let sync t =
  if t.unsynced > 0 || t.durable_seq < t.next_seq then begin
    t.file.Vfs.fsync ();
    t.fsyncs <- t.fsyncs + 1;
    t.durable_seq <- t.next_seq;
    t.unsynced <- 0;
    t.last_sync_ms <- t.now_ms ()
  end

let maybe_sync t =
  match t.policy with
  | Always -> sync t
  | Every_n n -> if t.unsynced >= n then sync t
  | Every_ms m -> if t.now_ms () - t.last_sync_ms >= m then sync t
  | Never -> ()

(** Append one operation payload at the next position; applies the fsync
    policy.  A [None] payload appends a no-op frame, keeping positions
    aligned with a log that contains poisoned entries. *)
let append t payload =
  let frame =
    match payload with
    | Some p -> Frame.encode ~kind:Frame.Op ~seq:t.next_seq p
    | None -> Frame.encode ~kind:Frame.Noop ~seq:t.next_seq ""
  in
  t.file.Vfs.append frame;
  t.next_seq <- t.next_seq + 1;
  t.unsynced <- t.unsynced + 1;
  maybe_sync t

(** What a scan of the AOF bytes recovered. *)
type scanned = {
  s_base : int;
  s_entries : string option list;
      (** payloads at positions [s_base + i]; [None] = no-op frame *)
  s_valid_len : int;
  s_torn : bool;
}

(** Scan AOF bytes into the intact, position-contiguous prefix.  A torn
    tail (crash mid-write) and any out-of-sequence garbage after it are
    discarded; a file without a valid header is reported as an error. *)
let scan_bytes bytes =
  let { Frame.frames; valid_len; torn } = Frame.scan bytes in
  match frames with
  | (Frame.Header, base, fmt) :: rest when fmt = Frame.aof_format ->
      (* keep the longest prefix at consecutive positions; anything else
         is treated as a tear at that point *)
      let rec take acc expected consumed_len = function
        | (Frame.Op, seq, payload) :: tl when seq = expected ->
            take (Some payload :: acc) (expected + 1)
              (consumed_len
              + Frame.header_bytes + String.length payload)
              tl
        | (Frame.Noop, seq, _) :: tl when seq = expected ->
            take (None :: acc) (expected + 1)
              (consumed_len + Frame.header_bytes)
              tl
        | [] -> (List.rev acc, consumed_len, torn)
        | _ :: _ -> (List.rev acc, consumed_len, true)
      in
      let header_len = Frame.header_bytes + String.length fmt in
      let entries, consumed, torn = take [] base header_len rest in
      ignore valid_len;
      Ok { s_base = base; s_entries = entries; s_valid_len = consumed; s_torn = torn }
  | [] when bytes = "" && not torn ->
      Error `Empty
  | _ -> Error `Bad_header

(** Open (or create) the AOF under [fs], recovering its intact contents.
    A torn tail is truncated away — the file is atomically rewritten to
    its valid prefix before appends resume, so a recovered tear can never
    shadow later appends.  [start] gives the base for a fresh file. *)
let open_ fs ~name ~policy ~now_ms ~start =
  let fresh base =
    let header = Frame.encode ~kind:Frame.Header ~seq:base Frame.aof_format in
    fs.Vfs.write_atomic name header;
    let file = fs.Vfs.open_append name in
    ( {
        fs;
        name;
        policy;
        now_ms;
        file;
        base;
        next_seq = base;
        durable_seq = base;
        unsynced = 0;
        last_sync_ms = now_ms ();
        fsyncs = 0;
      },
      { s_base = base; s_entries = []; s_valid_len = 0; s_torn = false } )
  in
  match fs.Vfs.read_file name with
  | None -> Ok (fresh start)
  | Some bytes -> (
      match scan_bytes bytes with
      | Error `Empty -> Ok (fresh start)
      | Error `Bad_header -> Error "aof: invalid header"
      | Ok sc ->
          if sc.s_torn || sc.s_valid_len < String.length bytes then
            (* truncate the tear before appending over it *)
            fs.Vfs.write_atomic name (String.sub bytes 0 sc.s_valid_len);
          let file = fs.Vfs.open_append name in
          let next = sc.s_base + List.length sc.s_entries in
          Ok
            ( {
                fs;
                name;
                policy;
                now_ms;
                file;
                base = sc.s_base;
                next_seq = next;
                durable_seq = next;
                unsynced = 0;
                last_sync_ms = now_ms ();
                fsyncs = 0;
              },
              sc ))

(** Atomically replace the AOF with a fresh one based at [base] —
    compaction after a snapshot covering everything below [base]. *)
let rotate t ~base =
  t.file.Vfs.close ();
  let header = Frame.encode ~kind:Frame.Header ~seq:base Frame.aof_format in
  t.fs.Vfs.write_atomic t.name header;
  t.file <- t.fs.Vfs.open_append t.name;
  t.base <- base;
  t.next_seq <- base;
  t.durable_seq <- base;
  t.unsynced <- 0;
  t.last_sync_ms <- t.now_ms ()

let close t =
  sync t;
  t.file.Vfs.close ()

(** Re-read the on-disk (process view) frames in [[from, next_seq)] —
    the leader side of PSYNC catch-up reads shipped entries back off its
    own AOF rather than keeping a second in-memory copy. *)
let read_frames t ~from =
  if from < t.base then Error t.base
  else
    match t.fs.Vfs.read_file t.name with
    | None -> Error t.base
    | Some bytes -> (
        match scan_bytes bytes with
        | Error _ -> Error t.base
        | Ok sc ->
            let buf = Buffer.create 256 in
            List.iteri
              (fun i payload ->
                let seq = sc.s_base + i in
                if seq >= from then
                  Buffer.add_string buf
                    (match payload with
                    | Some p -> Frame.encode ~kind:Frame.Op ~seq p
                    | None -> Frame.encode ~kind:Frame.Noop ~seq ""))
              sc.s_entries;
            Ok (Buffer.contents buf))

(** Like {!rotate}, but keep the tail [[base, next_seq)]: the background
    compaction path snapshots the shadow at some [base] while appends keep
    landing, so by the time the snapshot is durable the AOF has grown past
    [base] and the live suffix must survive the rewrite.  The retained
    frames are re-encoded from the current file and written atomically
    together with the new header, then appends resume on the new file.
    Positions and [next_seq] are unchanged; the rewritten bytes are
    durable ([write_atomic]), so [durable_seq] jumps to [next_seq].
    Appends must be held off while this runs (the persistence mutex). *)
let rotate_from t ~base =
  if base < t.base || base > t.next_seq then
    invalid_arg "Aof.rotate_from: base outside [old base, next_seq]";
  (* flush so the re-read below sees every appended frame *)
  sync t;
  let keep =
    match read_frames t ~from:base with
    | Ok bytes -> bytes
    | Error _ -> failwith "Aof.rotate_from: cannot re-read live suffix"
  in
  t.file.Vfs.close ();
  let header = Frame.encode ~kind:Frame.Header ~seq:base Frame.aof_format in
  t.fs.Vfs.write_atomic t.name (header ^ keep);
  t.file <- t.fs.Vfs.open_append t.name;
  t.base <- base;
  t.durable_seq <- t.next_seq;
  t.unsynced <- 0;
  t.last_sync_ms <- t.now_ms ()

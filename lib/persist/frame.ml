(** Frame codec for durable streams: the append-only file, snapshot files
    and shipped replication batches are all sequences of these frames.

    Layout (little-endian):
    {v
      offset  size  field
      0       1     magic 0xA7
      1       1     kind: 'H' aof header | 'O' op | 'N' noop | 'S' snapshot
      2       8     seq (log position; for 'H'/'S': the base/covered prefix)
      10      4     payload length
      14      4     CRC-32 over bytes [1, 14) ++ payload
      18      len   payload
    v}

    The CRC covers everything after the magic, so a torn tail — a frame
    cut mid-write by a crash, or bytes the page cache flushed partially —
    fails the checksum and scanning stops there.  Every complete frame
    before the tear is intact by construction (frames are appended in
    order and fsync barriers never reorder within a file). *)

type kind = Header | Op | Noop | Snapshot

let char_of_kind = function
  | Header -> 'H'
  | Op -> 'O'
  | Noop -> 'N'
  | Snapshot -> 'S'

let kind_of_char = function
  | 'H' -> Some Header
  | 'O' -> Some Op
  | 'N' -> Some Noop
  | 'S' -> Some Snapshot
  | _ -> None

let magic = '\xA7'
let header_bytes = 18

(** Format tags carried by 'H' and 'S' frames, versioning the layouts. *)
let aof_format = "nr-aof/1"

let snapshot_format = "nr-snapshot/1"

let encode ~kind ~seq payload =
  let len = String.length payload in
  let b = Bytes.create (header_bytes + len) in
  Bytes.set b 0 magic;
  Bytes.set b 1 (char_of_kind kind);
  Bytes.set_int64_le b 2 (Int64.of_int seq);
  Bytes.set_int32_le b 10 (Int32.of_int len);
  Bytes.blit_string payload 0 b header_bytes len;
  let head = Bytes.sub_string b 1 13 in
  let crc = Crc32.update (Crc32.digest head) payload ~pos:0 ~len in
  Bytes.set_int32_le b 14 (Int32.of_int crc);
  Bytes.unsafe_to_string b

type decoded =
  | Entry of { kind : kind; seq : int; payload : string; next : int }
  | End  (** clean end of stream *)
  | Torn  (** incomplete or corrupt from this position on *)

let decode s ~pos =
  let n = String.length s in
  if pos >= n then End
  else if pos + header_bytes > n || s.[pos] <> magic then Torn
  else
    match kind_of_char s.[pos + 1] with
    | None -> Torn
    | Some kind ->
        let b = Bytes.unsafe_of_string s in
        let seq = Int64.to_int (Bytes.get_int64_le b (pos + 2)) in
        let len = Int32.to_int (Bytes.get_int32_le b (pos + 10)) in
        let crc = Int32.to_int (Bytes.get_int32_le b (pos + 14)) land 0xFFFFFFFF in
        if len < 0 || pos + header_bytes + len > n then Torn
        else
          let crc' =
            Crc32.update
              (Crc32.update 0 s ~pos:(pos + 1) ~len:13)
              s ~pos:(pos + header_bytes) ~len
          in
          if crc' <> crc then Torn
          else
            Entry
              {
                kind;
                seq;
                payload = String.sub s (pos + header_bytes) len;
                next = pos + header_bytes + len;
              }

type scan = {
  frames : (kind * int * string) list;  (** (kind, seq, payload), in order *)
  valid_len : int;  (** bytes up to the last intact frame *)
  torn : bool;  (** a torn tail was discarded *)
}

(** Scan a byte stream into its intact frame prefix; everything from the
    first torn frame on is reported discarded, never partially used. *)
let scan s =
  let rec go pos acc =
    match decode s ~pos with
    | Entry { kind; seq; payload; next } -> go next ((kind, seq, payload) :: acc)
    | End -> { frames = List.rev acc; valid_len = pos; torn = false }
    | Torn -> { frames = List.rev acc; valid_len = pos; torn = true }
  in
  go 0 []

(** Storage abstraction for the durability layer: the handful of
    file-system operations the AOF writer, snapshotter and recovery need,
    as a record of closures so the same code runs over real files
    ({!real}) and over the crash-injecting in-memory model
    ({!Sim_fs.fs}).

    Durability contract:
    - [file.append] buffers at the OS (or model) level; bytes are only
      guaranteed to survive a crash after [file.fsync] returns.
    - [write_atomic] replaces a file all-or-nothing and durably (real
      backend: write temp, fsync, rename over).
    - [read_file] sees every appended byte, synced or not — it reads the
      {e process} view, not the crash view. *)

type file = {
  append : string -> unit;
  fsync : unit -> unit;
  close : unit -> unit;
}

type t = {
  open_append : string -> file;  (** create if missing, append at end *)
  read_file : string -> string option;  (** whole file; [None] if missing *)
  write_atomic : string -> string -> unit;  (** durable all-or-nothing replace *)
  remove : string -> unit;  (** no-op if missing *)
  exists : string -> bool;
}

(** Real files under [root] (created if missing).  Appends go through
    [Unix.write] directly — unbuffered, so [read_file] observes them
    immediately — and [fsync] maps to the system call. *)
let real ~root =
  if not (Sys.file_exists root) then Unix.mkdir root 0o755;
  let path name = Filename.concat root name in
  let fsync_dir () =
    (* persist the rename itself where the OS requires it; best-effort *)
    match Unix.openfile root [ Unix.O_RDONLY ] 0 with
    | fd ->
        (try Unix.fsync fd with Unix.Unix_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  in
  {
    open_append =
      (fun name ->
        let fd =
          Unix.openfile (path name)
            [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
            0o644
        in
        {
          append =
            (fun s ->
              let b = Bytes.unsafe_of_string s in
              let len = Bytes.length b in
              let rec go off =
                if off < len then
                  let n = Unix.write fd b off (len - off) in
                  go (off + n)
              in
              go 0);
          fsync = (fun () -> Unix.fsync fd);
          close = (fun () -> try Unix.close fd with Unix.Unix_error _ -> ());
        });
    read_file =
      (fun name ->
        match open_in_bin (path name) with
        | ic ->
            let n = in_channel_length ic in
            let s = really_input_string ic n in
            close_in ic;
            Some s
        | exception Sys_error _ -> None);
    write_atomic =
      (fun name content ->
        let tmp = path (name ^ ".tmp") in
        let fd =
          Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
        in
        let b = Bytes.unsafe_of_string content in
        let len = Bytes.length b in
        let rec go off =
          if off < len then
            let n = Unix.write fd b off (len - off) in
            go (off + n)
        in
        go 0;
        Unix.fsync fd;
        Unix.close fd;
        Unix.rename tmp (path name);
        fsync_dir ());
    remove =
      (fun name -> try Sys.remove (path name) with Sys_error _ -> ());
    exists = (fun name -> Sys.file_exists (path name));
  }

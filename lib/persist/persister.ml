(** The durability engine: tails the NR shared log's completed prefix
    into an append-only file, maintains a {e shadow replica} for exact
    snapshots, recovers after a crash, and serves the leader side of
    log-shipping replication.

    {2 Shadow replica}

    Snapshots must be bound to an exact log position, but an NR replica
    can never be dumped at one — combiners on other nodes advance it
    concurrently.  Instead the persister replays every tapped op into its
    own private sequential {!Nr_kvstore.Store}.  The shadow is exactly
    the state after positions [[0, cursor)], so dumping it {e is} a
    consistent cut, with no quiescing of the concurrent instance.  This
    is NR's black-box property paying for itself a second time: the same
    op stream that builds per-node replicas builds the durable one.

    {2 Crash-safe compaction}

    [snapshot_now] orders: dump shadow at [cursor] → [write_atomic] the
    snapshot (covers everything below [cursor], hence every entry in the
    AOF) → replace the AOF with a fresh one based at [cursor].  A crash
    at any interleaving leaves either the old pair intact or the new
    snapshot with the old (wholly covered, merely redundant) AOF.

    {2 Recovery invariant}

    [create] rebuilds: load snapshot (if any) into a fresh shadow, replay
    the AOF suffix above it, discard the torn tail by checksum, and
    rewrite the file so the tear can never shadow later appends.  The
    recovered state equals a sequential replay of positions
    [[0, cursor)] — the property the crash-recovery qcheck sweep checks
    against the oracle.

    The persister is not thread-safe: callers serialise [observe],
    [handle_sync] and [snapshot_now] externally (the server wraps them in
    one mutex). *)

module Store = Nr_kvstore.Store
module Command = Nr_kvstore.Command
module Resp = Nr_kvstore.Resp

type t = {
  fs : Vfs.t;
  aof : Aof.t;
  mutable shadow : Store.t;
  snapshot_every : int option;
  background : bool;  (** compaction runs via the [compaction_*] seam *)
  mutable since_snapshot : int;
  mutable compacting : bool;  (** a background compaction is in flight *)
}

let aof_file = "aof"

(** Serialised form of one log entry: the command re-encoded as a RESP
    request — the same bytes a client would send, so replay is the
    ordinary parse + execute path and the stream is client-debuggable. *)
let encode_op cmd = Resp.encode_request (Command.to_strings cmd)

let decode_op payload =
  match Resp.parse_request payload with
  | Resp.Parsed (tokens, _) -> Command.of_strings tokens
  | Resp.Incomplete -> Error "op payload: truncated"
  | Resp.Invalid e -> Error ("op payload: " ^ e)

let apply_payload shadow payload =
  match decode_op payload with
  | Ok cmd ->
      ignore (Store.execute shadow cmd);
      Ok ()
  | Error e -> Error e

(** What recovery found, for logs and tests. *)
type recovery = {
  snapshot_upto : int option;  (** covered prefix of the loaded snapshot *)
  replayed : int;  (** AOF entries applied on top of it *)
  torn : bool;  (** a torn AOF tail was discarded *)
}

let create fs ~policy ~now_ms ?snapshot_every ?(background = false) () =
  let ( let* ) = Result.bind in
  let* snap = Snapshot.load fs in
  let shadow = Store.create () in
  let* shadow_seq =
    match snap with
    | None -> Ok 0
    | Some (upto, dump) ->
        let* () = Store.load shadow dump in
        Ok upto
  in
  let* aof, scanned =
    Aof.open_ fs ~name:aof_file ~policy ~now_ms ~start:shadow_seq
  in
  if Aof.base aof > shadow_seq then
    Error
      (Printf.sprintf
         "recovery: aof starts at %d but snapshot only covers %d (gap)"
         (Aof.base aof) shadow_seq)
  else begin
    (* replay the suffix above the snapshot; entries below are redundant *)
    let replayed = ref 0 in
    let* () =
      List.fold_left
        (fun acc (i, payload) ->
          let* () = acc in
          let seq = scanned.Aof.s_base + i in
          match payload with
          | Some p when seq >= shadow_seq ->
              incr replayed;
              apply_payload shadow p
          | _ -> Ok ())
        (Ok ())
        (List.mapi (fun i p -> (i, p)) scanned.Aof.s_entries)
    in
    let aof_end = Aof.next_seq aof in
    (* a crash after the snapshot turned durable but before compaction
       synced nothing new can leave the AOF ending below the snapshot:
       re-base it so appends resume exactly at the recovered position *)
    if aof_end < shadow_seq then Aof.rotate aof ~base:shadow_seq;
    let t =
      {
        fs;
        aof;
        shadow;
        snapshot_every;
        background;
        since_snapshot = 0;
        compacting = false;
      }
    in
    Ok
      ( t,
        {
          snapshot_upto = Option.map fst snap;
          replayed = !replayed;
          torn = scanned.Aof.s_torn;
        } )
  end

(** Next log position the persister expects — tap the NR log from here. *)
let cursor t = Aof.next_seq t.aof

(** Positions below this survive any crash (fsynced or snapshot-covered). *)
let durable_seq t = Aof.durable_seq t.aof

let shadow t = t.shadow

(** First position still held by the AOF; everything below is covered by
    the snapshot only.  Moves forward at each compaction. *)
let aof_base t = Aof.base t.aof

let dump t = Store.dump t.shadow
let fingerprint t = Store.fingerprint t.shadow
let fsyncs t = Aof.fsyncs t.aof

(** Snapshot the shadow at [cursor] and compact the AOF (see module doc
    for the crash-ordering argument). *)
let snapshot_now t =
  let upto = cursor t in
  Aof.sync t.aof;
  Snapshot.write t.fs ~upto (Store.dump t.shadow);
  Aof.rotate t.aof ~base:upto;
  t.since_snapshot <- 0

let maybe_snapshot t =
  if not t.background then
    match t.snapshot_every with
    | Some n when t.since_snapshot >= n -> snapshot_now t
    | _ -> ()

(** {2 Background compaction seam}

    With [~background:true], [observe] never compacts inline; instead the
    server polls [compaction_due] and, when it fires, drives the
    three-step seam so only the bracketing steps hold the persistence
    mutex while the slow snapshot write runs unlocked:
    {ol
    {- [compaction_begin] (under the mutex) — marks a compaction in
       flight and captures a consistent cut: the current cursor and the
       shadow's dump at it;}
    {- [compaction_write] (OFF the mutex) — writes the snapshot
       atomically; appends proceed concurrently and simply land above the
       cut;}
    {- [compaction_finish] (under the mutex) — rewrites the AOF keeping
       the live suffix above the cut ({!Aof.rotate_from}).}}

    Crash ordering mirrors the inline path: before step 2 completes the
    old snapshot+AOF pair is intact; between 2 and 3 the new snapshot
    merely covers a redundant AOF prefix; after 3 the pair is compacted.
    [reset_to] must not be called while a compaction is in flight. *)

let compaction_due t =
  t.background
  && (not t.compacting)
  &&
  match t.snapshot_every with
  | Some n -> t.since_snapshot >= n
  | None -> false

let compacting t = t.compacting

let compaction_begin t =
  t.compacting <- true;
  let upto = cursor t in
  (upto, Store.dump t.shadow)

let compaction_write t ~upto ~dump = Snapshot.write t.fs ~upto dump

let compaction_finish t ~upto =
  Aof.rotate_from t.aof ~base:upto;
  t.since_snapshot <- cursor t - upto;
  t.compacting <- false

(** Rebase the whole persistent state onto a leader image (a follower
    that received [FULLRESYNC upto dump]): replace the shadow, persist
    the image as a snapshot covering [upto], and rotate the AOF to start
    there, so subsequent [observe]s append at the leader's coordinates
    and recovery replays the image + suffix.  Must not race an in-flight
    background compaction (the server only compacts as a leader). *)
let reset_to t ~upto ~dump =
  let ( let* ) = Result.bind in
  let fresh = Store.create () in
  let* () = Store.load fresh dump in
  t.shadow <- fresh;
  Snapshot.write t.fs ~upto dump;
  Aof.rotate t.aof ~base:upto;
  t.since_snapshot <- 0;
  Ok ()

(** Absorb ops tapped from the log at exactly [cursor t]: append each to
    the AOF (poisoned [None] entries become no-op frames, keeping
    positions aligned), replay it into the shadow, then apply the fsync
    policy and the snapshot cadence. *)
let observe t ops =
  List.iter
    (fun op ->
      let payload = Option.map encode_op op in
      Aof.append t.aof payload;
      (match op with
      | Some cmd -> ignore (Store.execute t.shadow cmd)
      | None -> ());
      t.since_snapshot <- t.since_snapshot + 1)
    ops;
  maybe_snapshot t

(** Force everything appended so far durable (clean shutdown, or an
    [always]-policy barrier). *)
let sync t = Aof.sync t.aof

let close t = Aof.close t.aof

(** Leader side of replication.  [SYNC] always sends a full image;
    [PSYNC off] continues with framed entries from [off] when the AOF
    still holds them, else falls back to a full resync:
    {ul
    {- [Array [Bulk "CONTINUE"; Int off; Bulk frames]] — apply the
       frames, next offset is [off + count];}
    {- [Array [Bulk "FULLRESYNC"; Int upto; Bulk dump]] — replace local
       state with the dump, next offset is [upto].}} *)
let handle_sync t cmd =
  let full () =
    Command.Array
      [
        Command.Bulk "FULLRESYNC";
        Command.Int (cursor t);
        Command.Bulk (Store.dump t.shadow);
      ]
  in
  match cmd with
  | Command.Sync -> Some (full ())
  | Command.Psync from -> (
      if from > cursor t then Some (full ())
      else
        match Aof.read_frames t.aof ~from with
        | Ok frames ->
            Some
              (Command.Array
                 [ Command.Bulk "CONTINUE"; Command.Int from; Command.Bulk frames ])
        | Error _ -> Some (full ()))
  | _ -> None

(** CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the frame
    checksum of the append-only file.  Pure OCaml, table-driven; values
    fit in 32 bits of a native [int]. *)

val digest : string -> int
(** CRC of the whole string ([digest "123456789" = 0xCBF43926]). *)

val update : int -> string -> pos:int -> len:int -> int
(** Extend a running CRC with a substring; [update 0 s ~pos:0
    ~len:(String.length s) = digest s]. *)

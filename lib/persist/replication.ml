(** Follower side of log-shipping replication.

    A follower keeps one long-lived connection to the leader and polls
    [PSYNC <offset>].  The leader ({!Persister.handle_sync}) answers
    either [CONTINUE] — a batch of checksummed frames from that offset,
    the very bytes its AOF holds — or [FULLRESYNC] — a complete store
    dump when the offset was compacted away.  {!apply} folds either reply
    into the follower's local state through an [exec] function, so the
    local state can be a plain {!Nr_kvstore.Store} (tests) or a full NR
    instance (the server): replication is just another client of the
    black box.

    Offsets are NR log positions.  After [CONTINUE] the new offset is one
    past the last frame applied; after [FULLRESYNC] it is the dump's
    covered prefix.  Applying is idempotent at the batch level only —
    frames below the current offset are skipped, so a retried poll never
    double-applies. *)

module Store = Nr_kvstore.Store
module Command = Nr_kvstore.Command
module Resp = Nr_kvstore.Resp

(** Fold one leader reply into local state.  [exec] receives every
    replayed update; returns the new replication offset.

    [on_op] (if given) sees each frame actually applied, in position
    order, as [Some cmd] / [None] (no-op) — an AOF-keeping follower
    feeds these straight into its persister so its local AOF stays at
    the leader's coordinates.  [on_full ~upto ~dump] fires after a full
    resync replays cleanly, so the same follower can rebase its
    persistent state ({!Persister.reset_to}); its error aborts the
    apply.  [strict] (default off) refuses a [FULLRESYNC] whose [upto]
    is below the current offset: a durable follower must never regress
    its watermark just because it reconnected to a lagging parent —
    the caller treats the error as a failed poll and retries
    elsewhere. *)
let apply ?on_op ?on_full ?(strict = false) ~exec ~offset
    (reply : Command.reply) =
  let ( let* ) = Result.bind in
  let decode_payload payload =
    match Resp.parse_request payload with
    | Resp.Parsed (tokens, _) -> (
        match Command.of_strings tokens with
        | Ok cmd -> Ok cmd
        | Error e -> Error ("replication: bad op: " ^ e))
    | Resp.Incomplete | Resp.Invalid _ ->
        Error "replication: torn op payload"
  in
  let observe op = match on_op with Some f -> f op | None -> () in
  match reply with
  | Command.Array [ Command.Bulk "CONTINUE"; Command.Int from; Command.Bulk frames ]
    ->
      if from > offset then
        Error
          (Printf.sprintf "replication: leader skipped ahead (%d > %d)" from
             offset)
      else
        let { Frame.frames = fs; torn; _ } = Frame.scan frames in
        if torn then Error "replication: torn frame batch"
        else
          List.fold_left
            (fun acc (kind, seq, payload) ->
              let* off = acc in
              if seq <> off then
                if seq < off then Ok off (* already applied; skip *)
                else Error (Printf.sprintf "replication: gap at %d" seq)
              else
                match kind with
                | Frame.Op ->
                    let* cmd = decode_payload payload in
                    ignore (exec cmd);
                    observe (Some cmd);
                    Ok (off + 1)
                | Frame.Noop ->
                    observe None;
                    Ok (off + 1)
                | Frame.Header | Frame.Snapshot ->
                    Error "replication: unexpected frame kind")
            (Ok offset) fs
  | Command.Array [ Command.Bulk "FULLRESYNC"; Command.Int upto; Command.Bulk dump ]
    ->
      if strict && upto < offset then
        Error
          (Printf.sprintf
             "replication: full resync would regress offset (%d < %d)" upto
             offset)
      else begin
        (* hard reset, not FLUSHALL: flushing bumps version stamps, and
           stamps of keys the leader never versioned would survive the
           dump's SETVER section, skewing later WATCH verdicts (and the
           fingerprint) *)
        ignore (exec Command.Reset);
        let n = String.length dump in
        let rec go pos =
          if pos >= n then Ok ()
          else
            match Resp.parse_request ~pos dump with
            | Resp.Parsed (tokens, consumed) -> (
                match Command.of_strings tokens with
                | Ok cmd ->
                    ignore (exec cmd);
                    go (pos + consumed)
                | Error e -> Error ("replication: bad dump entry: " ^ e))
            | Resp.Incomplete | Resp.Invalid _ ->
                Error "replication: torn full-resync dump"
        in
        let* () = go 0 in
        let* () =
          match on_full with Some f -> f ~upto ~dump | None -> Ok ()
        in
        Ok upto
      end
  | Command.Err e -> Error ("replication: leader error: " ^ e)
  | _ -> Error "replication: unrecognized sync reply"

(** {2 Transport} — a blocking RESP client over one connection. *)

type conn = {
  fd : Unix.file_descr;
  mutable buf : Buffer.t;  (** bytes read but not yet parsed *)
}

(** Open a connection to [host:port].  [connect_timeout_ms] bounds the
    TCP handshake (non-blocking connect + select — a black-holed leader
    fails fast instead of hanging the follower loop for minutes);
    [read_timeout_ms] arms [SO_RCVTIMEO] so a stalled leader surfaces as
    a recv error the retry path can back off from. *)
let connect ?connect_timeout_ms ?read_timeout_ms ~host ~port () =
  match Unix.getaddrinfo host (string_of_int port) [ Unix.AI_SOCKTYPE SOCK_STREAM ]
  with
  | [] -> Error (Printf.sprintf "replication: cannot resolve %s:%d" host port)
  | ai :: _ -> (
      let fd = Unix.socket ai.ai_family ai.ai_socktype ai.ai_protocol in
      let do_connect () =
        match connect_timeout_ms with
        | None -> Unix.connect fd ai.ai_addr
        | Some ms -> (
            Unix.set_nonblock fd;
            (try Unix.connect fd ai.ai_addr
             with Unix.Unix_error ((EINPROGRESS | EWOULDBLOCK | EAGAIN), _, _)
             -> (
               let _, writable, _ =
                 Unix.select [] [ fd ] [] (float_of_int ms /. 1000.)
               in
               if writable = [] then
                 raise (Unix.Unix_error (ETIMEDOUT, "connect", host));
               match Unix.getsockopt_error fd with
               | None -> ()
               | Some e -> raise (Unix.Unix_error (e, "connect", host))));
            Unix.clear_nonblock fd)
      in
      match
        do_connect ();
        Option.iter
          (fun ms ->
            Unix.setsockopt_float fd SO_RCVTIMEO (float_of_int ms /. 1000.))
          read_timeout_ms
      with
      | () -> Ok { fd; buf = Buffer.create 4096 }
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "replication: connect %s:%d: %s" host port
               (Unix.error_message e)))

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* Same contract as [Server.write_all]: retry zero-byte returns (the old
   code spun forever at the same offset) and EINTR instead of dropping
   the link; real errors raise to the caller. *)
let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match Unix.write fd b off (len - off) with
      | 0 ->
          Thread.yield ();
          go off
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(** Send one command and block for its reply.  Buffered: reply bytes
    beyond the first reply are kept for the next call. *)
let request conn cmd =
  match write_all conn.fd (Resp.encode_request (Command.to_strings cmd)) with
  | exception Unix.Unix_error (e, _, _) ->
      Error ("replication: send: " ^ Unix.error_message e)
  | () ->
      let chunk = Bytes.create 65536 in
      let rec loop () =
        match Resp.parse_reply (Buffer.contents conn.buf) with
        | Resp.RParsed (reply, consumed) ->
            let rest =
              let s = Buffer.contents conn.buf in
              String.sub s consumed (String.length s - consumed)
            in
            Buffer.clear conn.buf;
            Buffer.add_string conn.buf rest;
            Ok reply
        | Resp.RInvalid e -> Error ("replication: bad reply: " ^ e)
        | Resp.RIncomplete -> (
            match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
            | 0 -> Error "replication: leader closed connection"
            | n ->
                Buffer.add_subbytes conn.buf chunk 0 n;
                loop ()
            | exception Unix.Unix_error (e, _, _) ->
                Error ("replication: recv: " ^ Unix.error_message e))
      in
      loop ()

(** One poll round: [PSYNC offset] over an existing connection, folding
    the reply into [exec].  Returns the new offset. *)
let poll ?on_op ?on_full ?strict conn ~exec ~offset =
  match request conn (Command.Psync offset) with
  | Ok reply -> apply ?on_op ?on_full ?strict ~exec ~offset reply
  | Error _ as e -> e

(** {2 Sessions} — the hardened reconnect path.

    A [session] owns the follower's view of {e where the leader might
    be}: an ordered list of candidate endpoints (the configured leader
    first, then peers that may be promoted after a failover).  Each
    {!step} either applies one poll round or reports a failure together
    with a jittered exponential backoff delay ({!Nr_sync.Backoff.Timed})
    — the session never sleeps itself, so the server loop owns the clock
    and tests can drive it with a virtual one.  On failure the live
    connection is dropped and the {e next} endpoint becomes the
    candidate, so a promoted leader is found without restart; on success
    the backoff resets. *)

type endpoint = { host : string; port : int }

let pp_endpoint ppf { host; port } = Format.fprintf ppf "%s:%d" host port

(** Parse ["host:port,host:port,..."] (a bare ["host"] defaults to
    [default_port]). *)
let endpoints_of_string ?(default_port = 6379) s =
  let parse one =
    match String.rindex_opt one ':' with
    | None when one <> "" -> Ok { host = one; port = default_port }
    | Some i -> (
        let host = String.sub one 0 i in
        let port = String.sub one (i + 1) (String.length one - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && host <> "" -> Ok { host; port = p }
        | _ -> Error (Printf.sprintf "bad endpoint %S" one))
    | None -> Error (Printf.sprintf "bad endpoint %S" one)
  in
  let parts =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  if parts = [] then Error "no endpoints"
  else
    List.fold_left
      (fun acc p ->
        Result.bind acc (fun eps -> Result.map (fun e -> e :: eps) (parse p)))
      (Ok []) parts
    |> Result.map List.rev

type session = {
  endpoints : endpoint array;
  mutable idx : int;  (** endpoint the next (re)connect will try *)
  mutable conn : conn option;
  backoff : Nr_sync.Backoff.Timed.t;
  connect_timeout_ms : int option;
  read_timeout_ms : int option;
  mutable offset : int;
  mutable polls : int;  (** successful poll rounds *)
  mutable errors : int;  (** failed rounds (connect or poll) *)
}

let make_session ?backoff ?connect_timeout_ms ?read_timeout_ms ~endpoints
    ~offset () =
  if endpoints = [] then invalid_arg "Replication.make_session: no endpoints";
  {
    endpoints = Array.of_list endpoints;
    idx = 0;
    conn = None;
    backoff =
      (match backoff with
      | Some b -> b
      | None -> Nr_sync.Backoff.Timed.create ());
    connect_timeout_ms;
    read_timeout_ms;
    offset;
    polls = 0;
    errors = 0;
  }

(** The endpoint currently targeted — the best known leader address,
    what a READONLY rejection should redirect clients to. *)
let leader s = s.endpoints.(s.idx)

let offset s = s.offset
let set_offset s off = s.offset <- off
let connected s = s.conn <> None
let consecutive_failures s = Nr_sync.Backoff.Timed.failures s.backoff
let total_failures s = Nr_sync.Backoff.Timed.total_failures s.backoff
let polls s = s.polls
let errors s = s.errors

let drop_conn s =
  (match s.conn with Some c -> close c | None -> ());
  s.conn <- None

(** The outcome of one {!step}: applied up to a new offset, or failed
    with the backoff delay (ms) the caller should sleep before the next
    step, which will try the next candidate endpoint. *)
type step_result = Applied of int | Retry_after of int * string

let fail s msg =
  drop_conn s;
  s.errors <- s.errors + 1;
  s.idx <- (s.idx + 1) mod Array.length s.endpoints;
  Retry_after (Nr_sync.Backoff.Timed.next_ms s.backoff, msg)

(** One round of the follower loop: (re)connect if needed, PSYNC at the
    session offset, fold the reply via [exec]/[on_op]/[on_full]. *)
let step ?on_op ?on_full ?strict s ~exec =
  let ep = s.endpoints.(s.idx) in
  let conn_r =
    match s.conn with
    | Some c -> Ok c
    | None -> (
        match
          connect ?connect_timeout_ms:s.connect_timeout_ms
            ?read_timeout_ms:s.read_timeout_ms ~host:ep.host ~port:ep.port ()
        with
        | Ok c ->
            s.conn <- Some c;
            Ok c
        | Error e -> Error e)
  in
  match conn_r with
  | Error e -> fail s e
  | Ok conn -> (
      match poll ?on_op ?on_full ?strict conn ~exec ~offset:s.offset with
      | Ok off ->
          s.offset <- off;
          s.polls <- s.polls + 1;
          Nr_sync.Backoff.Timed.reset s.backoff;
          Applied off
      | Error e -> fail s e)

(** Report this follower's durable watermark up the chain:
    [REPLACK id seq] on the session's live connection.  The parent
    forwards its own (possibly lower) watermark further up, so acks
    propagate leaderward hop by hop.  A send failure drops the
    connection; the next {!step} reconnects. *)
let ack s ~id ~seq =
  match s.conn with
  | None -> Error "replication: not connected"
  | Some c -> (
      match request c (Command.Replack (id, seq)) with
      | Ok (Command.Err e) -> Error ("replication: ack rejected: " ^ e)
      | Ok _ -> Ok ()
      | Error e ->
          drop_conn s;
          Error e)

(** Follower side of log-shipping replication.

    A follower keeps one long-lived connection to the leader and polls
    [PSYNC <offset>].  The leader ({!Persister.handle_sync}) answers
    either [CONTINUE] — a batch of checksummed frames from that offset,
    the very bytes its AOF holds — or [FULLRESYNC] — a complete store
    dump when the offset was compacted away.  {!apply} folds either reply
    into the follower's local state through an [exec] function, so the
    local state can be a plain {!Nr_kvstore.Store} (tests) or a full NR
    instance (the server): replication is just another client of the
    black box.

    Offsets are NR log positions.  After [CONTINUE] the new offset is one
    past the last frame applied; after [FULLRESYNC] it is the dump's
    covered prefix.  Applying is idempotent at the batch level only —
    frames below the current offset are skipped, so a retried poll never
    double-applies. *)

module Store = Nr_kvstore.Store
module Command = Nr_kvstore.Command
module Resp = Nr_kvstore.Resp

(** Fold one leader reply into local state.  [exec] receives every
    replayed update; returns the new replication offset. *)
let apply ~exec ~offset (reply : Command.reply) =
  let ( let* ) = Result.bind in
  let exec_payload payload =
    match Resp.parse_request payload with
    | Resp.Parsed (tokens, _) -> (
        match Command.of_strings tokens with
        | Ok cmd ->
            ignore (exec cmd);
            Ok ()
        | Error e -> Error ("replication: bad op: " ^ e))
    | Resp.Incomplete | Resp.Invalid _ ->
        Error "replication: torn op payload"
  in
  match reply with
  | Command.Array [ Command.Bulk "CONTINUE"; Command.Int from; Command.Bulk frames ]
    ->
      if from > offset then
        Error
          (Printf.sprintf "replication: leader skipped ahead (%d > %d)" from
             offset)
      else
        let { Frame.frames = fs; torn; _ } = Frame.scan frames in
        if torn then Error "replication: torn frame batch"
        else
          List.fold_left
            (fun acc (kind, seq, payload) ->
              let* off = acc in
              if seq <> off then
                if seq < off then Ok off (* already applied; skip *)
                else Error (Printf.sprintf "replication: gap at %d" seq)
              else
                match kind with
                | Frame.Op ->
                    let* () = exec_payload payload in
                    Ok (off + 1)
                | Frame.Noop -> Ok (off + 1)
                | Frame.Header | Frame.Snapshot ->
                    Error "replication: unexpected frame kind")
            (Ok offset) fs
  | Command.Array [ Command.Bulk "FULLRESYNC"; Command.Int upto; Command.Bulk dump ]
    ->
      ignore (exec Command.Flushall);
      let n = String.length dump in
      let rec go pos =
        if pos >= n then Ok upto
        else
          match Resp.parse_request ~pos dump with
          | Resp.Parsed (tokens, consumed) -> (
              match Command.of_strings tokens with
              | Ok cmd ->
                  ignore (exec cmd);
                  go (pos + consumed)
              | Error e -> Error ("replication: bad dump entry: " ^ e))
          | Resp.Incomplete | Resp.Invalid _ ->
              Error "replication: torn full-resync dump"
      in
      go 0
  | Command.Err e -> Error ("replication: leader error: " ^ e)
  | _ -> Error "replication: unrecognized sync reply"

(** {2 Transport} — a blocking RESP client over one connection. *)

type conn = {
  fd : Unix.file_descr;
  mutable buf : Buffer.t;  (** bytes read but not yet parsed *)
}

let connect ~host ~port =
  match Unix.getaddrinfo host (string_of_int port) [ Unix.AI_SOCKTYPE SOCK_STREAM ]
  with
  | [] -> Error (Printf.sprintf "replication: cannot resolve %s:%d" host port)
  | ai :: _ -> (
      let fd = Unix.socket ai.ai_family ai.ai_socktype ai.ai_protocol in
      match Unix.connect fd ai.ai_addr with
      | () -> Ok { fd; buf = Buffer.create 4096 }
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "replication: connect %s:%d: %s" host port
               (Unix.error_message e)))

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      let n = Unix.write fd b off (len - off) in
      go (off + n)
  in
  go 0

(** Send one command and block for its reply.  Buffered: reply bytes
    beyond the first reply are kept for the next call. *)
let request conn cmd =
  match write_all conn.fd (Resp.encode_request (Command.to_strings cmd)) with
  | exception Unix.Unix_error (e, _, _) ->
      Error ("replication: send: " ^ Unix.error_message e)
  | () ->
      let chunk = Bytes.create 65536 in
      let rec loop () =
        match Resp.parse_reply (Buffer.contents conn.buf) with
        | Resp.RParsed (reply, consumed) ->
            let rest =
              let s = Buffer.contents conn.buf in
              String.sub s consumed (String.length s - consumed)
            in
            Buffer.clear conn.buf;
            Buffer.add_string conn.buf rest;
            Ok reply
        | Resp.RInvalid e -> Error ("replication: bad reply: " ^ e)
        | Resp.RIncomplete -> (
            match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
            | 0 -> Error "replication: leader closed connection"
            | n ->
                Buffer.add_subbytes conn.buf chunk 0 n;
                loop ()
            | exception Unix.Unix_error (e, _, _) ->
                Error ("replication: recv: " ^ Unix.error_message e))
      in
      loop ()

(** One poll round: [PSYNC offset] over an existing connection, folding
    the reply into [exec].  Returns the new offset. *)
let poll conn ~exec ~offset =
  match request conn (Command.Psync offset) with
  | Ok reply -> apply ~exec ~offset reply
  | Error _ as e -> e

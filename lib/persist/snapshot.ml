(** Point-in-time snapshots: a {!Nr_kvstore.Store.dump} bound to an exact
    log position, written as a single checksummed frame via
    [write_atomic] — so a snapshot is always either the complete new
    image or the untouched previous one, never a half-written mix.

    The frame's [seq] is the {e covered prefix}: replaying the dump
    reproduces the effect of every log position below it.  Payload is the
    format tag, a newline, then the dump bytes. *)

let file = "snapshot"

let write fs ~upto dump =
  let payload = Frame.snapshot_format ^ "\n" ^ dump in
  fs.Vfs.write_atomic file (Frame.encode ~kind:Frame.Snapshot ~seq:upto payload)

(** [load fs] returns [Ok (Some (upto, dump))], [Ok None] when no snapshot
    exists, or [Error _] on a corrupt file (CRC failure, wrong frame kind
    or format tag).  A torn snapshot is a hard error rather than silently
    ignored: [write_atomic] promises all-or-nothing, so a tear here means
    the storage broke its contract. *)
let load fs =
  match fs.Vfs.read_file file with
  | None -> Ok None
  | Some bytes -> (
      match Frame.decode bytes ~pos:0 with
      | Frame.Entry { kind = Frame.Snapshot; seq; payload; next }
        when next = String.length bytes -> (
          match String.index_opt payload '\n' with
          | Some i when String.sub payload 0 i = Frame.snapshot_format ->
              let dump =
                String.sub payload (i + 1) (String.length payload - i - 1)
              in
              Ok (Some (seq, dump))
          | _ -> Error "snapshot: unknown format tag")
      | Frame.Entry _ -> Error "snapshot: trailing garbage or wrong frame kind"
      | Frame.End | Frame.Torn -> Error "snapshot: corrupt frame")

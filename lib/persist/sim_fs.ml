(** In-memory file system with an explicit durability model and
    deterministic crash injection — the substrate the crash-recovery
    qcheck sweep runs on.

    Every file carries two regions: [durable] (bytes an fsync committed)
    and [pending] (appended but unsynced).  [read_file] returns both —
    the process view — while a crash keeps [durable] plus a {e seeded
    prefix} of [pending]: the page cache may have flushed any amount of
    the unsynced tail, including a torn half-frame, which is exactly the
    corruption the frame CRCs must catch.

    Crash points are injected via {!Nr_sim.Fault_plan}: every mutating
    operation (append, fsync, atomic write, remove) is one effect point,
    numbered from 1, and the plan's kill machinery ([kills_at] with
    tid 0, or probabilistic [kill_prob]) decides where the process dies.
    This buys the same seeded determinism as the scheduler's fault
    injection: a plan replays byte-identically, so every counterexample
    is a fixed regression test.

    - kill at an {b append} ("mid-write"): the bytes reach [pending]
      first, so any prefix of them may survive;
    - kill at an {b fsync} ("mid-fsync"): a prefix of [pending] is
      committed, the rest lost — the fsync never returns, so the writer
      must not have acked;
    - kill at a {b write_atomic} ("mid-snapshot"): the replace is
      all-or-nothing — the old content survives intact;
    - kill at a {b remove} ("mid-truncate"): a seeded coin decides
      whether the unlink hit the disk. *)

exception Crashed

type sfile = { mutable durable : string; mutable pending : Buffer.t }

type t = {
  files : (string, sfile) Hashtbl.t;
  mutable armed : Nr_sim.Fault_plan.armed option;
  rng : Nr_workload.Prng.t;  (** torn-tail lengths and unlink coins *)
  mutable io : int;  (** effect points so far *)
  mutable crashed : bool;
}

let create ?plan () =
  let plan = Option.value plan ~default:Nr_sim.Fault_plan.none in
  {
    files = Hashtbl.create 8;
    armed =
      (if plan = Nr_sim.Fault_plan.none then None
       else Some (Nr_sim.Fault_plan.arm plan ~max_threads:1));
    rng = Nr_workload.Prng.create ~seed:(plan.Nr_sim.Fault_plan.seed lxor 0x5EED);
    io = 0;
    crashed = false;
  }

let io_points t = t.io

let file t name =
  match Hashtbl.find_opt t.files name with
  | Some f -> f
  | None ->
      let f = { durable = ""; pending = Buffer.create 64 } in
      Hashtbl.replace t.files name f;
      f

(* Freeze the crash image: per file, the durable bytes plus a seeded
   prefix of the unsynced tail. *)
let crash t =
  t.crashed <- true;
  Hashtbl.iter
    (fun _ f ->
      let pend = Buffer.contents f.pending in
      let kept = Nr_workload.Prng.below t.rng (String.length pend + 1) in
      f.durable <- f.durable ^ String.sub pend 0 kept;
      Buffer.clear f.pending)
    t.files;
  raise Crashed

(* One effect point; dies here if the armed plan says so. *)
let tick t =
  if t.crashed then raise Crashed;
  t.io <- t.io + 1;
  match t.armed with
  | None -> ()
  | Some armed -> (
      match
        Nr_sim.Fault_plan.decide armed ~tid:0 ~now:t.io Nr_sim.Fault_plan.Work
      with
      | Nr_sim.Fault_plan.Die -> crash t
      | _ -> ())

(** Reboot after a {!Crashed}: what survived is now the files' content and
    the fault plan is disarmed, so recovery code runs over the crash image
    without further injection. *)
let reboot t =
  t.crashed <- false;
  t.armed <- None

let fs t : Vfs.t =
  {
    open_append =
      (fun name ->
        let f = file t name in
        {
          Vfs.append =
            (fun s ->
              Buffer.add_string f.pending s;
              tick t);
          fsync =
            (fun () ->
              tick t;
              f.durable <- f.durable ^ Buffer.contents f.pending;
              Buffer.clear f.pending);
          close = (fun () -> ());
        });
    read_file =
      (fun name ->
        match Hashtbl.find_opt t.files name with
        | Some f -> Some (f.durable ^ Buffer.contents f.pending)
        | None -> None);
    write_atomic =
      (fun name content ->
        tick t;
        let f = file t name in
        f.durable <- content;
        Buffer.clear f.pending);
    remove =
      (fun name ->
        (* decide survival before the kill check so the coin stream does
           not depend on whether this point crashes *)
        let gone = Nr_workload.Prng.below t.rng 2 = 0 in
        match tick t with
        | () -> Hashtbl.remove t.files name
        | exception Crashed ->
            if gone then Hashtbl.remove t.files name;
            raise Crashed);
    exists = (fun name -> Hashtbl.mem t.files name);
  }

(* CRC-32 (IEEE 802.3): reflected, poly 0xEDB88320, init/xorout 0xFFFFFFFF. *)

let table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let update crc s ~pos ~len =
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c :=
      Array.unsafe_get table ((!c lxor Char.code (String.unsafe_get s i)) land 0xFF)
      lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let digest s = update 0 s ~pos:0 ~len:(String.length s)

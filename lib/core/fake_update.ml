(** "Fake update operations" (paper §6): some updates become read-only
    during execution — removing a non-existent key, re-inserting a present
    one.  Black-box methods must classify operations at invocation time, so
    such operations otherwise pay the full update path (log append, every
    replica).  The paper proposes — but does not implement — first
    attempting them as a read and falling back to the real update; this is
    that wrapper.

    Correctness: the probe runs as an ordinary linearizable read-only
    operation.  When it is conclusive (e.g. [lookup] finds nothing, so
    [remove] would return "absent"), the whole update linearizes at the
    probe's linearization point and its result is derived from the probe.
    Otherwise the real update runs; the probe's outcome is discarded, so a
    racing change between probe and update is harmless. *)

module Make (Seq : Ds_intf.S) = struct
  type probe = {
    as_read : Seq.op -> Seq.op option;
        (** [as_read op] is a {e read-only} operation whose result can
            prove the update [op] to be a no-op; [None] when [op] has no
            cheap probe *)
    conclusive : Seq.op -> Seq.result -> Seq.result option;
        (** [conclusive op probe_result] is [Some r] when the probe proves
            the update unnecessary and the update's result is [r] *)
  }

  (** [wrap probe exec] is an executor with the same semantics as [exec]
      that serves probe-conclusive updates from the local replica. *)
  let wrap probe (exec : Seq.op -> Seq.result) : Seq.op -> Seq.result =
   fun op ->
    if Seq.is_read_only op then exec op
    else
      match probe.as_read op with
      | None -> exec op
      | Some read_op -> (
          assert (Seq.is_read_only read_op);
          match probe.conclusive op (exec read_op) with
          | Some result -> result
          | None -> exec op)
end

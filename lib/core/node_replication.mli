(** Node Replication: the black-box transformation from a sequential data
    structure to a linearizable, NUMA-aware concurrent one (the paper's
    central contribution, §4–§5).

    {[
      module R = (val Nr_runtime.Runtime_domains.make topology)
      module C = Nr_core.Node_replication.Make (R) (My_sequential_structure)

      let t = C.create (fun () -> My_sequential_structure.create ())
      (* C.execute t op — concurrently, from any thread *)
    ]}

    One replica of the structure lives on each NUMA node; replicas are
    synchronized through a shared log.  Within a node, update operations are
    batched by a flat-combining leader; read-only operations run on the
    local replica under a distributed readers-writer lock after a freshness
    check against the log's completed prefix. *)

module Make (R : Nr_runtime.Runtime_intf.S) (Seq : Ds_intf.S) : sig
  type t
  (** A concurrent, replicated instance of [Seq]. *)

  val create : ?cfg:Config.t -> (unit -> Seq.t) -> t
  (** [create factory] builds one replica per NUMA node by calling
      [factory] once per node.  The factory must be deterministic — every
      call must produce an identical structure (including any PRNG seeds) —
      so that replicas stay equal under identical operation sequences.
      Prepopulate inside the factory; it is far cheaper than executing the
      initial operations through the log. *)

  val execute : t -> Seq.op -> Seq.result
  (** The paper's [ExecuteConcurrent]: linearizable, callable from any
      registered thread.  Read-only operations (per [Seq.is_read_only])
      never touch the log. *)

  val refresh_local : t -> unit
  (** Bring the calling thread's replica up to the log's completed prefix
      if it lags; useful to bound read latency on mostly-idle nodes. *)

  val run_dedicated_combiner : t -> stop:(unit -> bool) -> unit
  (** The paper's optional dedicated combiner (§4): loop refreshing the
      calling thread's node until [stop ()]; run one per node on otherwise
      idle threads to keep inactive replicas from holding the log back. *)

  val config : t -> Config.t
  val num_replicas : t -> int

  val stats : t -> Stats.t
  (** Aggregated operation counters (approximate on real domains). *)

  val log_tail : t -> int
  val completed : t -> int
  val local_tail : t -> int -> int

  (** Quiescent-only introspection for tests and tooling: correct only
      while no operations are in flight. *)
  module Unsafe : sig
    val replica : t -> int -> Seq.t
    (** Direct access to one node's replica. *)

    val sync : t -> unit
    (** Replay every replica up to the completed prefix.  In liveness
        mode, batches stranded in flight by a dead combiner are first
        finished post-mortem (quiescence makes this safe without locks),
        so every replica ends on a log-prefix state. *)

    val log_entries : ?upto:int -> t -> Seq.op option list * int
    (** [(suffix, wrapped)]: the operations below [upto] (default: the
        completed prefix) still resident in the log, oldest first, plus
        the count of older entries already recycled (0 until the log
        wraps).  A [None] element is a poisoned or unresolved entry —
        skipped identically by every replica; only possible in liveness
        mode. *)

    val log_tap : ?upto:int -> t -> from:int -> (Seq.op option list, int) result
    (** Monotonic cursor over the completed prefix — the change-feed API
        shared by the AOF writer and follower log shipping.  [Ok ops] are
        the operations at log positions [[from, upto)] (default [upto]:
        the completed prefix), oldest first; the caller's next cursor is
        [from + List.length ops].  [None] elements are poisoned entries,
        exactly as in {!log_entries}.

        {b Wrap/lap semantics.}  The log is a ring of [Config.log_size]
        entries: position [i] lives in slot [i mod size] and is recycled
        once the tail passes [i + size].  A tap that lags the appenders by
        more than one lap therefore finds its entries gone; such calls
        return [Error oldest], where [oldest] is the lowest position still
        resident — the tapper must resynchronize (e.g. snapshot the
        structure) and restart from a cursor [>= oldest].  The lap check
        brackets the read, so a batch the appenders overran mid-read is
        rejected rather than silently returned with recycled holes.
        Unlike the rest of this module, [log_tap] is safe concurrently
        with in-flight operations: it only reads entries below the
        completed prefix, which are immutable until recycled. *)
  end
end

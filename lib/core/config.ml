(** NR tuning parameters and the ablation toggles of paper §8.5 (fig. 13).
    The defaults enable every technique, i.e. full NR. *)

(** Patience budgets for the hardened (liveness) mode.  Each is a number
    of backoff rounds a waiter tolerates before concluding the thread it
    is waiting on has stalled or died and taking recovery action. *)
type liveness = {
  slot_patience : int;
      (** rounds a waiter spins on its response slot before trying to
          steal the combiner lock and finish the batch itself *)
  hole_patience : int;
      (** rounds a replayer waits on an unfilled log entry before
          poisoning the hole so the log can advance past a dead writer *)
  full_patience : int;
      (** rounds a combiner waits on a full log before refreshing the
          laggard replica remotely instead of spinning *)
}

(** Seeded correctness bugs for checker validation: each mutation disables
    one protocol step that linearizability depends on, so a checker that
    cannot flag the mutated build is not looking hard enough. *)
type mutation =
  | Stale_reads
      (** skip the [completedTail] freshness wait on the read path: a
          reader may consult a replica that has not yet applied updates
          that completed before the read was issued *)
  | Router_bypass
      (** sharded NR only: route single-key read-only operations to the
          wrong shard, so a read consults a replica that never saw the
          key's updates.  Plain NR ignores it (a single instance has no
          router to bypass). *)
  | Skip_read_validate
      (** optimistic readers skip the post-read stamp check: a read whose
          unlocked replica access raced a combiner's replay can return a
          value computed on the stale pre-replay replica while the
          deferred freshness check (which runs {e after} the access)
          passes against the freshly advanced local tail.  Requires
          [optimistic_reads]. *)

type t = {
  log_size : int;  (** shared log capacity in entries (paper uses 1M) *)
  min_batch : int;
      (** a combiner with fewer outstanding operations than this refreshes
          the local replica from the log and rescans before appending *)
  min_batch_retries : int;  (** how many times to rescan for [min_batch] *)
  replay_window : int;
      (** log entries a replayer fetches per overlapped batch (streaming
          prefetch of consecutive log lines) *)
  flat_combining : bool;
      (** #1: batch a node's operations through a combiner.  When disabled,
          every thread appends its own operation to the log and applies it
          under the writer lock. *)
  read_optimization : bool;
      (** #2: readers wait only for [completedTail].  When disabled they
          wait for [logTail]. *)
  separate_replica_lock : bool;
      (** #3: protect the replica with a readers-writer lock distinct from
          the combiner lock, so readers run while the combiner fills the
          log.  When disabled the combiner lock protects the replica. *)
  parallel_replica_update : bool;
      (** #4: combiners on different nodes update their replicas in
          parallel.  When disabled a combiner waits for [completedTail] to
          reach its batch before taking the writer lock, serializing
          replica updates. *)
  distributed_rwlock : bool;
      (** #5: use the distributed readers-writer lock of §5.5.  When
          disabled, use a centralized reader-count lock. *)
  shards : int;
      (** number of independent NR instances the key space is
          hash-partitioned across ({!Nr_shard}); 1 = plain NR, a single
          log.  Plain [Node_replication] ignores the field — it describes
          the sharded wrapper built around it. *)
  router_seed : int;
      (** seed of the sharded router's key hash: determines the
          key-to-shard mapping, deterministically. *)
  cna_lock : bool;
      (** serialize writers through a Compact NUMA-Aware queue lock
          (Dice & Kogan): waiters are partitioned into a main queue and a
          secondary queue of remote-node waiters, and the holder prefers
          handing off to a waiter on its own node, splicing the secondary
          queue back after [cna_threshold] consecutive local handoffs so
          remote waiters cannot starve.  Replaces the combiner-lock
          spinlock (legacy mode only — the hardened protocol needs the
          stealable lock's generations) and always serializes the
          distributed rwlock's writer side.  Off = the legacy locks,
          charge sequences byte-identical. *)
  cna_threshold : int;
      (** consecutive intra-node handoffs a CNA lock performs before it
          splices the secondary (remote) queue back into the main queue —
          the fairness bound on remote-waiter bypassing *)
  optimistic_reads : bool;
      (** seqlock read path: readers sample a per-replica version stamp,
          run the operation on the replica {e without} taking a reader
          slot, then validate freshness + stamp equality after the fact,
          falling back to the rwlock slot path after bounded retries.
          Requires [separate_replica_lock] (the stamp brackets the writer
          lock).  Off = the slot path only, charge sequences
          byte-identical. *)
  read_patience : int option;
      (** [Some cap] arms truncated exponential backoff (max exponent
          [cap]) in the distributed rwlock's reader spin loops and bounds
          the optimistic-read retry count by [cap]; [None] keeps the
          legacy exact-spin loops (byte-identical) and the default
          optimistic retry bound.  Shared so one knob tunes both ends of
          the read path's patience. *)
  liveness : liveness option;
      (** [Some _] arms the hardened combiner protocol (stealable combiner
          lock, slot-timeout handoff, hole poisoning, bounded log-full
          wait) — meant for runs under fault injection.  [None] keeps the
          legacy protocol on charge sequences byte-identical to a build
          without the feature. *)
  mutation : mutation option;
      (** [Some _] plants the named bug — exists only so the checker can
          prove it flags a broken build; [None] (the default) is correct
          NR. *)
}

let default =
  {
    log_size = 1 lsl 16;
    min_batch = 1;
    min_batch_retries = 4;
    replay_window = 8;
    flat_combining = true;
    read_optimization = true;
    separate_replica_lock = true;
    parallel_replica_update = true;
    distributed_rwlock = true;
    shards = 1;
    router_seed = 0x5EED;
    cna_lock = false;
    cna_threshold = 8;
    optimistic_reads = false;
    read_patience = None;
    liveness = None;
    mutation = None;
  }

let robust =
  {
    default with
    liveness =
      Some { slot_patience = 64; hole_patience = 64; full_patience = 32 };
  }

let validate t =
  if t.log_size < 2 then invalid_arg "Config: log_size must be >= 2";
  if t.min_batch < 1 then invalid_arg "Config: min_batch must be >= 1";
  if t.min_batch_retries < 0 then
    invalid_arg "Config: min_batch_retries must be >= 0";
  if t.replay_window < 1 then
    invalid_arg "Config: replay_window must be >= 1";
  if t.shards < 1 then invalid_arg "Config: shards must be >= 1";
  if t.cna_threshold < 1 then
    invalid_arg "Config: cna_threshold must be >= 1";
  (match t.read_patience with
  | Some p when p < 1 -> invalid_arg "Config: read_patience must be >= 1"
  | _ -> ());
  (* The stamp brackets the replica writer lock; with the combiner lock
     doubling as the replica lock there is no writer section to bracket
     (a combiner mutates the replica without ever calling acquire_write),
     so an "optimistic" read could validate against an even stamp while a
     combine is mid-batch. *)
  if t.optimistic_reads && not t.separate_replica_lock then
    invalid_arg "Config: optimistic_reads requires separate_replica_lock";
  if t.mutation = Some Skip_read_validate && not t.optimistic_reads then
    invalid_arg "Config: Skip_read_validate requires optimistic_reads";
  match t.liveness with
  | None -> ()
  | Some l ->
      (* The hardened protocol is written for the full-NR configuration:
         with flat combining off there is no combiner to hand off, and
         with the combiner lock doubling as the replica lock a steal would
         race the replica update itself. *)
      if not (t.flat_combining && t.separate_replica_lock) then
        invalid_arg
          "Config: liveness requires flat_combining and \
           separate_replica_lock";
      if l.slot_patience < 1 || l.hole_patience < 1 || l.full_patience < 1
      then invalid_arg "Config: liveness patience values must be >= 1"

let pp ppf t =
  Format.fprintf ppf
    "log_size=%d min_batch=%d fc=%b read_opt=%b sep_lock=%b par_update=%b \
     dist_rw=%b%t%t%a"
    t.log_size t.min_batch t.flat_combining t.read_optimization
    t.separate_replica_lock t.parallel_replica_update t.distributed_rwlock
    (fun ppf ->
      if t.shards <> 1 then
        Format.fprintf ppf " shards=%d router_seed=%#x" t.shards t.router_seed)
    (fun ppf ->
      if t.cna_lock then Format.fprintf ppf " cna=%d" t.cna_threshold;
      if t.optimistic_reads then Format.fprintf ppf " opt_reads";
      match t.read_patience with
      | Some p -> Format.fprintf ppf " patience=%d" p
      | None -> ())
    (fun ppf -> function
      | None -> ()
      | Some l ->
          Format.fprintf ppf " liveness=%d/%d/%d" l.slot_patience
            l.hole_patience l.full_patience)
    t.liveness;
  match t.mutation with
  | None -> ()
  | Some Stale_reads -> Format.fprintf ppf " MUTATION=stale_reads"
  | Some Router_bypass -> Format.fprintf ppf " MUTATION=router_bypass"
  | Some Skip_read_validate ->
      Format.fprintf ppf " MUTATION=skip_read_validate"

(** NR tuning parameters and the ablation toggles of paper §8.5 (fig. 13).
    The defaults enable every technique, i.e. full NR. *)

type t = {
  log_size : int;  (** shared log capacity in entries (paper uses 1M) *)
  min_batch : int;
      (** a combiner with fewer outstanding operations than this refreshes
          the local replica from the log and rescans before appending *)
  min_batch_retries : int;  (** how many times to rescan for [min_batch] *)
  replay_window : int;
      (** log entries a replayer fetches per overlapped batch (streaming
          prefetch of consecutive log lines) *)
  flat_combining : bool;
      (** #1: batch a node's operations through a combiner.  When disabled,
          every thread appends its own operation to the log and applies it
          under the writer lock. *)
  read_optimization : bool;
      (** #2: readers wait only for [completedTail].  When disabled they
          wait for [logTail]. *)
  separate_replica_lock : bool;
      (** #3: protect the replica with a readers-writer lock distinct from
          the combiner lock, so readers run while the combiner fills the
          log.  When disabled the combiner lock protects the replica. *)
  parallel_replica_update : bool;
      (** #4: combiners on different nodes update their replicas in
          parallel.  When disabled a combiner waits for [completedTail] to
          reach its batch before taking the writer lock, serializing
          replica updates. *)
  distributed_rwlock : bool;
      (** #5: use the distributed readers-writer lock of §5.5.  When
          disabled, use a centralized reader-count lock. *)
}

let default =
  {
    log_size = 1 lsl 16;
    min_batch = 1;
    min_batch_retries = 4;
    replay_window = 8;
    flat_combining = true;
    read_optimization = true;
    separate_replica_lock = true;
    parallel_replica_update = true;
    distributed_rwlock = true;
  }

let validate t =
  if t.log_size < 2 then invalid_arg "Config: log_size must be >= 2";
  if t.min_batch < 1 then invalid_arg "Config: min_batch must be >= 1";
  if t.min_batch_retries < 0 then
    invalid_arg "Config: min_batch_retries must be >= 0";
  if t.replay_window < 1 then
    invalid_arg "Config: replay_window must be >= 1"

let pp ppf t =
  Format.fprintf ppf
    "log_size=%d min_batch=%d fc=%b read_opt=%b sep_lock=%b par_update=%b \
     dist_rw=%b"
    t.log_size t.min_batch t.flat_combining t.read_optimization
    t.separate_replica_lock t.parallel_replica_update t.distributed_rwlock

(** Operation counters for one NR instance.

    Counters are plain mutable fields: in the simulator they are exact (the
    scheduler is single-threaded and they cost nothing in the model); on real
    domains they are racy but only used for reporting. *)

type t = {
  mutable updates : int;  (** update operations executed *)
  mutable reads : int;  (** read-only operations executed *)
  mutable combines : int;  (** batches flushed by combiners *)
  mutable combined_ops : int;  (** total operations across all batches *)
  mutable max_batch : int;  (** largest batch observed *)
  mutable reader_refreshes : int;
      (** times a reader refreshed the replica itself *)
  mutable log_full_stalls : int;  (** append attempts stalled on a full log *)
}

let create () =
  {
    updates = 0;
    reads = 0;
    combines = 0;
    combined_ops = 0;
    max_batch = 0;
    reader_refreshes = 0;
    log_full_stalls = 0;
  }

let record_batch t n =
  t.combines <- t.combines + 1;
  t.combined_ops <- t.combined_ops + n;
  if n > t.max_batch then t.max_batch <- n

let avg_batch t =
  if t.combines = 0 then 0.0
  else float_of_int t.combined_ops /. float_of_int t.combines

let add acc x =
  acc.updates <- acc.updates + x.updates;
  acc.reads <- acc.reads + x.reads;
  acc.combines <- acc.combines + x.combines;
  acc.combined_ops <- acc.combined_ops + x.combined_ops;
  acc.max_batch <- max acc.max_batch x.max_batch;
  acc.reader_refreshes <- acc.reader_refreshes + x.reader_refreshes;
  acc.log_full_stalls <- acc.log_full_stalls + x.log_full_stalls

let pp ppf t =
  Format.fprintf ppf
    "updates=%d reads=%d combines=%d avg_batch=%.2f max_batch=%d \
     reader_refreshes=%d log_full_stalls=%d"
    t.updates t.reads t.combines (avg_batch t) t.max_batch t.reader_refreshes
    t.log_full_stalls

(** Operation counters for one NR instance.

    Counters are plain mutable fields: in the simulator they are exact (the
    scheduler is single-threaded and they cost nothing in the model); on real
    domains they are racy but only used for reporting. *)

type t = {
  mutable updates : int;  (** update operations executed *)
  mutable reads : int;  (** read-only operations executed *)
  mutable combines : int;  (** batches flushed by combiners *)
  mutable combined_ops : int;  (** total operations across all batches *)
  mutable max_batch : int;  (** largest batch observed *)
  mutable reader_refreshes : int;
      (** times a reader refreshed the replica itself *)
  mutable log_full_stalls : int;  (** append attempts stalled on a full log *)
  mutable combiner_steals : int;
      (** combiner locks stolen from a stalled or dead leader *)
  mutable batches_recovered : int;
      (** in-flight batches finished by a thread other than their leader *)
  mutable reposts : int;
      (** operations re-submitted after their log entry was poisoned *)
  mutable poisoned : int;  (** log holes poisoned past a dead writer *)
  mutable remote_refreshes : int;
      (** laggard replicas refreshed remotely during a bounded
          log-full wait *)
  mutable opt_reads : int;
      (** reads served optimistically (no reader-slot acquire) *)
  mutable opt_retries : int;
      (** optimistic attempts invalidated by a concurrent stamp bump *)
  mutable opt_fallbacks : int;
      (** reads that gave up on the optimistic path (stale replica or
          retries exhausted) and took the rwlock slot path *)
  mutable cna_local_handoffs : int;
      (** CNA lock grants to a waiter on the holder's node *)
  mutable cna_remote_handoffs : int;
      (** CNA lock grants to a waiter on another node *)
  mutable cna_splices : int;
      (** CNA fairness events: secondary queue spliced/promoted *)
}

let create () =
  {
    updates = 0;
    reads = 0;
    combines = 0;
    combined_ops = 0;
    max_batch = 0;
    reader_refreshes = 0;
    log_full_stalls = 0;
    combiner_steals = 0;
    batches_recovered = 0;
    reposts = 0;
    poisoned = 0;
    remote_refreshes = 0;
    opt_reads = 0;
    opt_retries = 0;
    opt_fallbacks = 0;
    cna_local_handoffs = 0;
    cna_remote_handoffs = 0;
    cna_splices = 0;
  }

let record_batch t n =
  t.combines <- t.combines + 1;
  t.combined_ops <- t.combined_ops + n;
  if n > t.max_batch then t.max_batch <- n

let avg_batch t =
  if t.combines = 0 then 0.0
  else float_of_int t.combined_ops /. float_of_int t.combines

(* {2 Derived summary}

   [avg_batch] of an accumulated record is already throughput-weighted:
   summing [combined_ops] and [combines] before dividing weighs each
   node's average by how many batches it actually flushed, rather than
   averaging per-node averages. *)

let total_ops t = t.updates + t.reads

let update_ratio t =
  if total_ops t = 0 then 0.0
  else float_of_int t.updates /. float_of_int (total_ops t)

let ops_per_combine t =
  if t.combines = 0 then 0.0
  else float_of_int (total_ops t) /. float_of_int t.combines

let add acc x =
  acc.updates <- acc.updates + x.updates;
  acc.reads <- acc.reads + x.reads;
  acc.combines <- acc.combines + x.combines;
  acc.combined_ops <- acc.combined_ops + x.combined_ops;
  acc.max_batch <- max acc.max_batch x.max_batch;
  acc.reader_refreshes <- acc.reader_refreshes + x.reader_refreshes;
  acc.log_full_stalls <- acc.log_full_stalls + x.log_full_stalls;
  acc.combiner_steals <- acc.combiner_steals + x.combiner_steals;
  acc.batches_recovered <- acc.batches_recovered + x.batches_recovered;
  acc.reposts <- acc.reposts + x.reposts;
  acc.poisoned <- acc.poisoned + x.poisoned;
  acc.remote_refreshes <- acc.remote_refreshes + x.remote_refreshes;
  acc.opt_reads <- acc.opt_reads + x.opt_reads;
  acc.opt_retries <- acc.opt_retries + x.opt_retries;
  acc.opt_fallbacks <- acc.opt_fallbacks + x.opt_fallbacks;
  acc.cna_local_handoffs <- acc.cna_local_handoffs + x.cna_local_handoffs;
  acc.cna_remote_handoffs <- acc.cna_remote_handoffs + x.cna_remote_handoffs;
  acc.cna_splices <- acc.cna_splices + x.cna_splices

let pp ppf t =
  Format.fprintf ppf
    "ops=%d (%.0f%% updates) combines=%d avg_batch=%.2f max_batch=%d \
     ops/combine=%.2f reader_refreshes=%d log_full_stalls=%d"
    (total_ops t)
    (100.0 *. update_ratio t)
    t.combines (avg_batch t) t.max_batch (ops_per_combine t)
    t.reader_refreshes t.log_full_stalls;
  (* liveness counters only appear when the hardened protocol fired *)
  if
    t.combiner_steals + t.batches_recovered + t.reposts + t.poisoned
    + t.remote_refreshes > 0
  then
    Format.fprintf ppf
      " steals=%d recovered=%d reposts=%d poisoned=%d remote_refreshes=%d"
      t.combiner_steals t.batches_recovered t.reposts t.poisoned
      t.remote_refreshes;
  (* optimistic-read counters only appear when the path is armed *)
  if t.opt_reads + t.opt_retries + t.opt_fallbacks > 0 then
    Format.fprintf ppf " opt_reads=%d opt_retries=%d opt_fallbacks=%d"
      t.opt_reads t.opt_retries t.opt_fallbacks;
  (* CNA handoff locality only appears when a CNA lock fired *)
  if t.cna_local_handoffs + t.cna_remote_handoffs + t.cna_splices > 0 then
    Format.fprintf ppf " cna_handoffs=%d/%d(local/remote) cna_splices=%d"
      t.cna_local_handoffs t.cna_remote_handoffs t.cna_splices

(* {2 Run-scoped collection}

   [Node_replication.create] registers a closure returning its accumulated
   stats; the experiment driver brackets a run with [start_collection] /
   [collect] to surface combiner behaviour without threading the NR
   instance through every experiment's setup signature.  Registration is a
   no-op outside a collection window, so instances built by tests or
   servers leak nothing. *)

let collectors : (unit -> t) list ref = ref []
let collecting = ref false

let start_collection () =
  collectors := [];
  collecting := true

let register_collector f = if !collecting then collectors := f :: !collectors

let collect () =
  collecting := false;
  match !collectors with
  | [] -> None
  | fs ->
      let acc = create () in
      List.iter (fun f -> add acc (f ())) fs;
      collectors := [];
      Some acc

(* Adapt the counters into the unified metrics registry; closures read the
   live record, so register once and dump whenever. *)
let register_metrics reg ?(prefix = "nr") t =
  let c name read = Nr_obs.Metrics.counter reg ~name:(prefix ^ "_" ^ name) read in
  let g name read = Nr_obs.Metrics.gauge reg ~name:(prefix ^ "_" ^ name) read in
  c "updates" (fun () -> t.updates);
  c "reads" (fun () -> t.reads);
  c "combines" (fun () -> t.combines);
  c "combined_ops" (fun () -> t.combined_ops);
  c "max_batch" (fun () -> t.max_batch);
  c "reader_refreshes" (fun () -> t.reader_refreshes);
  c "log_full_stalls" (fun () -> t.log_full_stalls);
  c "combiner_steals" (fun () -> t.combiner_steals);
  c "batches_recovered" (fun () -> t.batches_recovered);
  c "reposts" (fun () -> t.reposts);
  c "poisoned" (fun () -> t.poisoned);
  c "remote_refreshes" (fun () -> t.remote_refreshes);
  c "opt_reads" (fun () -> t.opt_reads);
  c "opt_retries" (fun () -> t.opt_retries);
  c "opt_fallbacks" (fun () -> t.opt_fallbacks);
  c "cna_local_handoffs" (fun () -> t.cna_local_handoffs);
  c "cna_remote_handoffs" (fun () -> t.cna_remote_handoffs);
  c "cna_splices" (fun () -> t.cna_splices);
  g "avg_batch" (fun () -> avg_batch t);
  g "update_ratio" (fun () -> update_ratio t)

(** The NUMA-aware shared log (paper §5.1, §5.6).

    A circular buffer of operation entries.  Combiners reserve a batch of
    entries with a single CAS on [tail], then fill them; consumers detect a
    filled entry by its generation stamp ([gen = index / size] — the
    "alternating bit" of §5.6 generalized to a lap counter, which makes
    stale entries from a previous lap unmistakable).  [completed] is the
    index below which every operation has been executed by the combiner that
    appended it; readers only wait for [completed], never [tail] (§5.3).

    Recycling (§5.6): an appender may only reuse an entry once every node's
    [local_tail] has moved past it.  [log_min] caches the minimum local
    tail; it is recomputed lazily, only when an append would otherwise not
    fit, so the common path reads a single uncontended cell. *)

module Make (R : Nr_runtime.Runtime_intf.S) = struct
  type 'op entry = {
    op : 'op;
    gen : int;  (** lap number: entry at absolute index [i] has gen [i/size] *)
    origin_node : int;
    origin_slot : int;
  }

  type 'op t = {
    entries : 'op entry option R.cell array;
    tail : int R.cell;
    completed : int R.cell;
    log_min : int R.cell;
    local_tails : int R.cell array;
    size : int;
  }

  let create ?(home = 0) ~size ~nodes () =
    if size < 2 then invalid_arg "Log.create: size must be >= 2";
    if nodes < 1 then invalid_arg "Log.create: nodes must be >= 1";
    {
      entries = Array.init size (fun _ -> R.cell ~home None);
      tail = R.cell ~home 0;
      completed = R.cell ~home 0;
      log_min = R.cell ~home 0;
      local_tails = Array.init nodes (fun node -> R.cell ~home:node 0);
      size;
    }

  let size t = t.size
  let tail t = R.read t.tail
  let completed t = R.read t.completed
  let local_tail t node = R.read t.local_tails.(node)
  let set_local_tail t node v = R.write t.local_tails.(node) v

  let get t i =
    match R.read t.entries.(i mod t.size) with
    | Some e when e.gen = i / t.size -> Some e
    | Some _ | None -> None

  (* Fetch entries [i, i+n) in one overlapped batch: replaying consumers
     stream through consecutive log lines, which the hardware prefetcher
     pipelines (§5.7: "log cache lines do not ping pong ... a combiner
     typically writes a full cache line before others attempt to read
     it").  Unfilled entries come back as [None]. *)
  let get_batch t i n =
    let raw = R.read_all (Array.init n (fun k -> t.entries.((i + k) mod t.size))) in
    Array.mapi
      (fun k e ->
        match e with
        | Some e when e.gen = (i + k) / t.size -> Some e
        | Some _ | None -> None)
      raw

  let fill t i ~op ~origin_node ~origin_slot =
    R.write
      t.entries.(i mod t.size)
      (Some { op; gen = i / t.size; origin_node; origin_slot })

  (* Reserve [n] consecutive entries; [on_full] is invoked (outside any
     lock we hold) when the log has no room, giving NR a chance to advance
     this node's replica so its local tail stops holding the log back. *)
  let rec reserve t n ~on_full =
    let tl = R.read t.tail in
    if tl + n - R.read t.log_min > t.size then begin
      let m =
        Array.fold_left
          (fun acc c -> min acc (R.read c))
          max_int t.local_tails
      in
      R.write t.log_min m;
      if tl + n - m > t.size then begin
        on_full ();
        R.yield ();
        reserve t n ~on_full
      end
      else attempt t n tl ~on_full
    end
    else attempt t n tl ~on_full

  and attempt t n tl ~on_full =
    if R.cas t.tail tl (tl + n) then tl else reserve t n ~on_full

  (* [batch] pairs each operation with its originating combiner slot. *)
  let append t batch ~origin_node ~on_full =
    let n = Array.length batch in
    if n = 0 then invalid_arg "Log.append: empty batch";
    if n > t.size then invalid_arg "Log.append: batch larger than the log";
    let start = reserve t n ~on_full in
    Array.iteri
      (fun k (op, slot) ->
        fill t (start + k) ~op ~origin_node ~origin_slot:slot)
      batch;
    start

  (* Advance [completed] to at least [target]. *)
  let advance_completed t target =
    let rec loop () =
      let c = R.read t.completed in
      if c >= target then ()
      else if R.cas t.completed c target then ()
      else loop ()
    in
    loop ()
end

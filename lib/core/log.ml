(** The NUMA-aware shared log (paper §5.1, §5.6, §5.7).

    A circular buffer of operation entries.  Combiners reserve a batch of
    entries with a single CAS on [tail], then fill them; consumers detect a
    filled entry by its generation stamp ([gen = index / size] — the
    "alternating bit" of §5.6 generalized to a lap counter, which makes
    stale entries from a previous lap unmistakable).  [completed] is the
    index below which every operation has been executed by the combiner that
    appended it; readers only wait for [completed], never [tail] (§5.3).

    Memory layout (§5.7): entries live in parallel {e flat} arrays — a plain
    [ops] slot array, a plain packed-[origins] int array, and a flat
    shared int-cell array ([R.icells]) of generation stamps.  The gen stamp doubles as the filled
    flag: a slot is published by writing its lap number, so the steady-state
    append path allocates nothing and each entry costs exactly one shared
    write to fill and one shared read to consume.  The op payload rides in
    the slot's plain array: on the simulator it travels "with" the gen line
    for free, mirroring the paper's single-cache-line entries; on real
    domains the gen cell is the [Atomic.t] whose write publishes the plain
    stores (release/acquire through the OCaml memory model).  Recycling is
    safe without clearing: an entry may only be reused once every node's
    [local_tail] passed it, and a consumer at index [i] pins its node's
    local tail at or below [i], so a slot's plain payload is never
    overwritten while some node may still read it.

    Recycling (§5.6): an appender may only reuse an entry once every node's
    [local_tail] has moved past it.  [log_min] caches the minimum local
    tail; it is recomputed lazily, only when an append would otherwise not
    fit, so the common path reads a single uncontended cell.  The recompute
    reads every per-node tail in one overlapped batch ([read_ints_into]) —
    independent lines, so the misses pipeline as on real hardware. *)

module Make (R : Nr_runtime.Runtime_intf.S) = struct
  (* Boxed view of one entry, for tests and introspection only; the hot
     paths use the flat accessors below and never build this record. *)
  type 'op entry = {
    op : 'op;
    gen : int;  (** lap number: entry at absolute index [i] has gen [i/size] *)
    origin_node : int;
    origin_slot : int;
  }

  type 'op t = {
    ops : 'op option array;
        (** plain payload slots; hold the very [Some] box the requester
            allocated, so filling is a pointer store *)
    origins : int array;  (** packed [node lsl origin_shift lor slot] *)
    gens : R.icells;  (** lap stamp per slot; [-1] = never filled *)
    tail : int R.cell;
    completed : int R.cell;
    log_min : int R.cell;
    local_tails : int R.cell array;
    tails_buf : int array;  (** scratch for the [log_min] recompute *)
    size : int;
  }

  let origin_shift = 16
  let origin_slot_mask = (1 lsl origin_shift) - 1

  let create ?(home = 0) ~size ~nodes () =
    if size < 2 then invalid_arg "Log.create: size must be >= 2";
    if nodes < 1 then invalid_arg "Log.create: nodes must be >= 1";
    {
      ops = Array.make size None;
      origins = Array.make size 0;
      gens = R.icells ~home ~len:size (-1);
      tail = R.cell ~home 0;
      completed = R.cell ~home 0;
      log_min = R.cell ~home 0;
      local_tails = Array.init nodes (fun node -> R.cell ~home:node 0);
      tails_buf = Array.make nodes 0;
      size;
    }

  let size t = t.size
  let tail t = R.read t.tail
  let completed t = R.read t.completed
  let local_tail t node = R.read t.local_tails.(node)
  let set_local_tail t node v = R.write t.local_tails.(node) v

  (* {2 Flat entry access}

     Protocol: check [is_filled] (or a [read_filled] scan) first — the gen
     read is the shared access and, on domains, the acquire that makes the
     plain payload reads below safe.  The accessors themselves touch only
     plain memory and are free in the simulator's cost model, like the rest
     of a cache line after its first word arrives. *)

  let is_filled t i = R.iget t.gens (i mod t.size) = i / t.size

  (* {2 Hole poisoning (hardened mode)}

     A reserved-but-unfilled entry whose writer died would stall every
     replayer forever.  Hardened replayers resolve such a hole by stamping
     it with the {e poison stamp} for its lap, [-(lap + 2)] — distinct
     from every lap number (>= 0), from "never filled" (-1), and from any
     other lap's poison.  Because fill and poison race through CASes on
     the same stamp cell, whichever lands first decides the entry for
     everyone: the stamp value itself records the outcome, so a late
     filler learns its op was poisoned (and its requester must repost) and
     a late poisoner learns the entry is live. *)

  let poison_stamp t i = -((i / t.size) + 2)
  let is_poisoned t i = R.iget t.gens (i mod t.size) = poison_stamp t i

  (* Race fill vs. poison to resolve entry [i]; [stamp] is the caller's
     desired outcome.  Returns the winning stamp.  Terminates in at most
     two rounds: once resolved, a stamp never changes until recycling —
     and a stamp from a later lap (the entry was resolved {e and}
     recycled while the caller was stalled) is returned as-is rather than
     fought over, so a long-dispossessed zombie can never restamp a
     recycled entry. *)
  let rec resolve_stamp t i stamp =
    let j = i mod t.size in
    let lap = i / t.size in
    let p = poison_stamp t i in
    let cur = R.iget t.gens j in
    if cur = lap || cur = p then cur
    else if cur > lap || cur < p then cur (* recycled past our lap *)
    else if R.icas t.gens j cur stamp then stamp
    else resolve_stamp t i stamp

  (* (Re-)fill entry [i], racing concurrent fillers of the same op and
     hole-poisoners.  The payload is stored {e after} winning the stamp
     CAS, in the same atomic region, so exactly the winner publishes it:
     a zombie combiner whose scratch arrays were re-used for a newer
     batch retries with the wrong op, loses the already-resolved stamp
     check, and never touches the payload.  Returns [false] iff the entry
     ended up poisoned (the op must be reposted); an entry already
     recycled past this lap reads as filled — only a zombie whose batch a
     stealer fully finished can observe that, and it ignores the result. *)
  let rec fill_checked t i ~op ~origin_node ~origin_slot =
    let j = i mod t.size in
    let lap = i / t.size in
    let p = poison_stamp t i in
    let cur = R.iget t.gens j in
    if cur = lap then true
    else if cur = p then false
    else if cur > lap || cur < p then true (* recycled past our lap *)
    else if R.icas t.gens j cur lap then begin
      t.ops.(j) <- Some op;
      t.origins.(j) <- (origin_node lsl origin_shift) lor origin_slot;
      true
    end
    else fill_checked t i ~op ~origin_node ~origin_slot

  (* Poison the hole at [i]; returns [true] iff this call resolved it
      (for the poisoned counter — losing the race means no hole existed
      anymore). *)
  let poison t i =
    let p = poison_stamp t i in
    resolve_stamp t i p = p

  let op_at t i =
    match t.ops.(i mod t.size) with
    | Some op -> op
    | None -> invalid_arg "Log.op_at: unfilled entry"

  let origin_node_at t i = t.origins.(i mod t.size) lsr origin_shift
  let origin_slot_at t i = t.origins.(i mod t.size) land origin_slot_mask

  (* Boxed lookup for tests/introspection; allocates. *)
  let get t i =
    let j = i mod t.size in
    let lap = i / t.size in
    if R.iget t.gens j <> lap then None
    else
      match t.ops.(j) with
      | None -> None
      | Some op ->
          Some
            {
              op;
              gen = lap;
              origin_node = t.origins.(j) lsr origin_shift;
              origin_slot = t.origins.(j) land origin_slot_mask;
            }

  (* {2 Batched consumption}

     A [batch] is a caller-owned scratch buffer for gen scans, so a replay
     window costs one overlapped read batch and zero allocations (§5.7:
     replaying consumers stream through consecutive log lines, which the
     hardware prefetcher pipelines).  Not thread-safe: one [batch] per
     replayer. *)

  type batch = { mutable idx : int array; mutable stamps : int array }

  let batch () = { idx = [||]; stamps = [||] }

  let ensure_batch b n =
    if Array.length b.idx < n then begin
      let cap = max n (2 * Array.length b.idx) in
      b.idx <- Array.make cap 0;
      b.stamps <- Array.make cap (-1)
    end

  let rec filled_prefix stamps ~i ~size k n =
    if k < n && Array.unsafe_get stamps k = (i + k) / size then
      filled_prefix stamps ~i ~size (k + 1) n
    else k

  (* Read the gen stamps of entries [i, i+n) in one overlapped batch and
     return how many are {e consecutively} filled from [i].  Entries past
     the first hole are invisible to replay anyway (§5.1/§5.3), so a
     prefix count is all consumers need. *)
  let read_filled t b i n =
    if n = 0 then 0
    else begin
      ensure_batch b n;
      for k = 0 to n - 1 do
        Array.unsafe_set b.idx k ((i + k) mod t.size)
      done;
      R.iread_into t.gens ~idx:b.idx ~n ~dst:b.stamps;
      filled_prefix b.stamps ~i ~size:t.size 0 n
    end

  (* Hardened-replay variant of [read_filled]: the prefix count also
     admits poisoned entries (they are resolved — there is nothing to
     wait for), and [batch_is_poisoned] distinguishes them per entry from
     the stamps already fetched, without another shared read. *)
  let rec resolved_prefix t stamps ~i k n =
    if k < n then begin
      let s = Array.unsafe_get stamps k in
      let idx = i + k in
      if s = idx / t.size || s = poison_stamp t idx then
        resolved_prefix t stamps ~i (k + 1) n
      else k
    end
    else k

  let read_resolved t b i n =
    if n = 0 then 0
    else begin
      ensure_batch b n;
      for k = 0 to n - 1 do
        Array.unsafe_set b.idx k ((i + k) mod t.size)
      done;
      R.iread_into t.gens ~idx:b.idx ~n ~dst:b.stamps;
      resolved_prefix t b.stamps ~i 0 n
    end

  (* Valid for offsets within the prefix a [read_resolved] just returned:
     every poison stamp is <= -2, every lap stamp >= 0. *)
  let batch_is_poisoned b k = b.stamps.(k) < -1

  (* {2 Appending} *)

  (* Fill one reserved entry: plain payload stores, then the gen write
     publishes the slot. *)
  let fill t i ~op ~origin_node ~origin_slot =
    let j = i mod t.size in
    t.ops.(j) <- Some op;
    t.origins.(j) <- (origin_node lsl origin_shift) lor origin_slot;
    R.iset t.gens j (i / t.size)

  (* Fill a reserved range [start, start+n) in one pass from the combiner's
     scratch buffers.  [ops.(k)] holds the [Some] box taken from the
     requesting slot, so the payload store re-uses it — the append path
     allocates nothing. *)
  let fill_batch t ~start ~n ~ops ~slots ~origin_node =
    let packed_node = origin_node lsl origin_shift in
    for k = 0 to n - 1 do
      let i = start + k in
      let j = i mod t.size in
      t.ops.(j) <- Array.unsafe_get ops k;
      t.origins.(j) <- packed_node lor Array.unsafe_get slots k;
      R.iset t.gens j (i / t.size)
    done

  let recompute_log_min t =
    let n = Array.length t.local_tails in
    R.read_ints_into t.local_tails ~n ~dst:t.tails_buf;
    let m = ref max_int in
    for k = 0 to n - 1 do
      if Array.unsafe_get t.tails_buf k < !m then
        m := Array.unsafe_get t.tails_buf k
    done;
    (* [tails_buf] is shared by concurrent reservers; that is safe because
       local tails only grow, so any mix of genuinely-read values is a
       lower bound on every node's current tail. *)
    R.write t.log_min !m;
    !m

  (* Reserve [n] consecutive entries; [on_full] is invoked (outside any
     lock we hold) when the log has no room, giving NR a chance to advance
     this node's replica so its local tail stops holding the log back. *)
  let rec reserve t n ~on_full =
    let tl = R.read t.tail in
    if tl + n - R.read t.log_min > t.size then begin
      let m = recompute_log_min t in
      if tl + n - m > t.size then begin
        on_full ();
        R.yield ();
        reserve t n ~on_full
      end
      else attempt t n tl ~on_full
    end
    else attempt t n tl ~on_full

  and attempt t n tl ~on_full =
    if R.cas t.tail tl (tl + n) then tl else reserve t n ~on_full

  (* Hardened reserve: the tail CAS carries an ownership [guard], checked
     atomically with the reservation, so a combiner that was dispossessed
     while waiting can never commit entries it no longer owns — its
     stealer may already be recovering the batch.  Returns [-1] when the
     guard failed.  [on_full] may return [false] to abandon (bounded
     log-full wait). *)
  let rec reserve_guarded t n ~guard ~on_full =
    if not (guard ()) then -1
    else begin
      let tl = R.read t.tail in
      if tl + n - R.read t.log_min > t.size then begin
        let m = recompute_log_min t in
        if tl + n - m > t.size then
          if on_full () then begin
            R.yield ();
            reserve_guarded t n ~guard ~on_full
          end
          else -1
        else attempt_guarded t n tl ~guard ~on_full
      end
      else attempt_guarded t n tl ~guard ~on_full
    end

  and attempt_guarded t n tl ~guard ~on_full =
    (* [guard_ok] separates "guard refused" (abandon) from "lost the CAS
       race" (retry): [guarded_cas] reports both as [false]. *)
    let guard_ok = ref true in
    let g () =
      let v = guard () in
      if not v then guard_ok := false;
      v
    in
    if R.guarded_cas t.tail ~guard:g tl (tl + n) then tl
    else if not !guard_ok then -1
    else reserve_guarded t n ~guard ~on_full

  (* Reserve-and-fill a batch from caller-owned scratch ([ops]/[slots]
     prefixes of length [n]); the combiner's append path. *)
  let append_batch t ~ops ~slots ~n ~origin_node ~on_full =
    if n = 0 then invalid_arg "Log.append_batch: empty batch";
    if n > t.size then invalid_arg "Log.append_batch: batch larger than log";
    let start = reserve t n ~on_full in
    fill_batch t ~start ~n ~ops ~slots ~origin_node;
    start

  (* Single-op append for the no-flat-combining path (ablation #1). *)
  let append1 t op ~origin_node ~origin_slot ~on_full =
    let start = reserve t 1 ~on_full in
    fill t start ~op ~origin_node ~origin_slot;
    start

  (* [batch] pairs each operation with its originating combiner slot.
     Tuple-array convenience kept for tests; allocates. *)
  let append t batch ~origin_node ~on_full =
    let n = Array.length batch in
    if n = 0 then invalid_arg "Log.append: empty batch";
    if n > t.size then invalid_arg "Log.append: batch larger than the log";
    let start = reserve t n ~on_full in
    Array.iteri
      (fun k (op, slot) ->
        fill t (start + k) ~op ~origin_node ~origin_slot:slot)
      batch;
    start

  (* Advance [completed] to at least [target]: one CAS per batch in the
     common case — the re-read after a lost race usually shows another
     combiner already carried [completed] past [target]. *)
  let rec advance_completed t target =
    let c = R.read t.completed in
    if c >= target then ()
    else if R.cas t.completed c target then ()
    else advance_completed t target
end

(** The black-box sequential data structure interface (paper §4).

    NR expects a sequential implementation exposing three generic methods:
    [Create() -> ptr], [Execute(ptr, op, args) -> result] and
    [IsReadOnly(ptr, op) -> bool].  In OCaml these become a module with an
    abstract state type, an operation type and an [execute] function.

    Requirements on [execute] (paper §4): it must produce side effects only
    on the data structure, must not block, and must be deterministic — two
    replicas fed the same operation sequence must reach equal states and
    return equal results.  Structures using randomization (e.g. skip-list
    levels) must draw from a PRNG seeded identically in every replica. *)

module type S = sig
  type t
  (** The sequential data structure. *)

  type op
  (** One operation (constructor + arguments). *)

  type result
  (** An operation's return value. *)

  val create : unit -> t
  (** A fresh, empty structure.  Called once per replica, so it must be
      deterministic across calls. *)

  val execute : t -> op -> result
  (** Apply [op].  Must not block and must touch only [t]. *)

  val is_read_only : op -> bool
  (** Whether [op] never modifies the structure.  Read-only operations are
      executed on the local replica without going through the log. *)

  val footprint : t -> op -> Nr_runtime.Footprint.t
  (** Approximate cache-line footprint of executing [op] now — consumed by
      the simulator runtime, ignored on real domains. *)

  val lines : t -> int
  (** Current payload size in cache lines (sizes the simulator's line
      region for a replica). *)

  val pp_op : Format.formatter -> op -> unit
end

(** Convenience: a sequential structure whose footprint information is
    irrelevant (real-domains-only usage). *)
module No_footprint (X : sig
  type t
  type op
  type result

  val create : unit -> t
  val execute : t -> op -> result
  val is_read_only : op -> bool
end) : S with type t = X.t and type op = X.op and type result = X.result =
struct
  include X

  let footprint _t _op = Nr_runtime.Footprint.v ~key:0 ~reads:1 ()
  let lines _t = 64
  let pp_op ppf _ = Format.pp_print_string ppf "<op>"
end

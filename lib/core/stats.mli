(** Operation counters for one NR instance.

    {b Racy-counter caveat}: counters are plain mutable fields.  In the
    simulator they are exact — the scheduler is single-OS-thread and
    increments cost no virtual time.  On real domains concurrent
    increments can race and undercount; they are kept plain anyway because
    they exist only for reporting, and atomics on these paths would
    perturb the very behaviour being measured. *)

type t = {
  mutable updates : int;  (** update operations executed *)
  mutable reads : int;  (** read-only operations executed *)
  mutable combines : int;  (** batches flushed by combiners *)
  mutable combined_ops : int;  (** total operations across all batches *)
  mutable max_batch : int;  (** largest batch observed *)
  mutable reader_refreshes : int;
      (** times a reader refreshed the replica itself *)
  mutable log_full_stalls : int;  (** append attempts stalled on a full log *)
  mutable combiner_steals : int;
      (** combiner locks stolen from a stalled or dead leader *)
  mutable batches_recovered : int;
      (** in-flight batches finished by a thread other than their leader *)
  mutable reposts : int;
      (** operations re-submitted after their log entry was poisoned *)
  mutable poisoned : int;  (** log holes poisoned past a dead writer *)
  mutable remote_refreshes : int;
      (** laggard replicas refreshed remotely during a bounded
          log-full wait *)
  mutable opt_reads : int;
      (** reads served optimistically (no reader-slot acquire) *)
  mutable opt_retries : int;
      (** optimistic attempts invalidated by a concurrent stamp bump *)
  mutable opt_fallbacks : int;
      (** reads that gave up on the optimistic path (stale replica or
          retries exhausted) and took the rwlock slot path *)
  mutable cna_local_handoffs : int;
      (** CNA lock grants to a waiter on the holder's node *)
  mutable cna_remote_handoffs : int;
      (** CNA lock grants to a waiter on another node *)
  mutable cna_splices : int;
      (** CNA fairness events: secondary queue spliced/promoted *)
}

val create : unit -> t

val record_batch : t -> int -> unit
(** Count one flushed batch of the given size. *)

val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc].  Derived quantities of the
    result are throughput-weighted: {!avg_batch} divides summed
    [combined_ops] by summed [combines], weighing each node by the batches
    it actually flushed. *)

(** {2 Derived summary} *)

val avg_batch : t -> float
val total_ops : t -> int

val update_ratio : t -> float
(** updates / total ops, 0 when empty *)

val ops_per_combine : t -> float

val pp : Format.formatter -> t -> unit

(** {2 Run-scoped collection}

    {!Node_replication.Make.create} registers its stats here; an
    experiment driver brackets a run with {!start_collection} and
    {!collect} to obtain the accumulated counters without threading the
    NR instance through setup signatures.  Registration outside a
    collection window is a no-op.  Not synchronized: bracket runs from
    the orchestrating thread only. *)

val start_collection : unit -> unit
val register_collector : (unit -> t) -> unit

val collect : unit -> t option
(** Ends the window; [None] when no NR instance registered (baselines). *)

val register_metrics : Nr_obs.Metrics.t -> ?prefix:string -> t -> unit
(** Register every counter (prefixed, default ["nr"]) plus derived gauges
    in a metrics registry; values are read live at dump time. *)

(** Node Replication (paper §4–§5): the black-box transformation from a
    sequential data structure to a linearizable NUMA-aware concurrent one.

    One replica of the structure lives on each NUMA node.  Within a node,
    threads batch update operations through a flat-combining leader; across
    nodes, combiners synchronize through the shared log.  Read-only
    operations run on the local replica under a distributed readers-writer
    lock after checking freshness against the log's [completed] tail.

    The functor takes the runtime (real domains or the simulator) and the
    sequential structure; the result exposes a single concurrent [execute]
    — the paper's [ExecuteConcurrent]. *)

module Make (R : Nr_runtime.Runtime_intf.S) (Seq : Ds_intf.S) = struct
  module Spin = Nr_sync.Spinlock.Make (R)
  module Rw_dist = Nr_sync.Rwlock_dist.Make (R)
  module Rw_simple = Nr_sync.Rwlock_simple.Make (R)
  module Log = Log.Make (R)

  type rwlock = Dist of Rw_dist.t | Simple of Rw_simple.t

  type slot = {
    request : Seq.op option R.cell;
    response : Seq.result option R.cell;
  }

  type node_state = {
    node : int;
    replica : Seq.t;
    reg : R.region;
    combiner_lock : Spin.t;
    rw : rwlock;
    slots : slot array;
    stats : Stats.t;
    (* {2 Combiner scratch} — per-node reusable buffers so the combine /
       replay hot paths allocate nothing in steady state (§5.7: the
       machinery must stay leaner than the operations it batches).  All of
       it is only touched under this node's combiner or writer lock. *)
    req_cells : Seq.op option R.cell array;
        (** the [request] cells of [slots], gathered once at creation so a
            scan is a single overlapped batch read *)
    req_buf : Seq.op option array;  (** scratch for scan results *)
    batch_ops : Seq.op option array;
        (** collected batch: the very [Some] boxes the requesters wrote *)
    batch_slots : int array;  (** originating slot of each batch entry *)
    replay_buf : Log.batch;  (** gen-scan scratch for replay windows *)
    mutable on_full_combiner : unit -> unit;
        (** hoisted [on_full] closures: allocated once per node, not once
            per append *)
    mutable on_full_helper : unit -> unit;
  }

  type t = {
    cfg : Config.t;
    log : Seq.op Log.t;
    node_states : node_state array;
  }

  (* {2 Replica access under the chosen locking regime}

     With [separate_replica_lock] (#3) the replica is guarded by the
     readers-writer lock and the combiner lock only elects the combiner;
     without it, the combiner lock itself guards the replica, so the
     writer-side operations below become no-ops for a thread that already
     holds the combiner lock. *)

  (* [combiner] says whether the caller already holds [ns]'s combiner
     lock: without the separate replica lock (#3 disabled), the combiner
     lock IS the replica lock, so a caller that does not hold it yet must
     take it here (reader-side refreshes, no-flat-combining updaters, the
     dedicated combiner). *)
  let acquire_write t ns ~combiner =
    if t.cfg.separate_replica_lock then
      match ns.rw with
      | Dist l -> Rw_dist.write_lock l
      | Simple l -> Rw_simple.write_lock l
    else if not combiner then Spin.lock ns.combiner_lock

  let release_write t ns ~combiner =
    if t.cfg.separate_replica_lock then
      match ns.rw with
      | Dist l -> Rw_dist.write_unlock l
      | Simple l -> Rw_simple.write_unlock l
    else if not combiner then Spin.unlock ns.combiner_lock

  let acquire_read t ns slot_idx =
    if t.cfg.separate_replica_lock then
      match ns.rw with
      | Dist l -> Rw_dist.read_lock l slot_idx
      | Simple l -> Rw_simple.read_lock l
    else Spin.lock ns.combiner_lock

  let release_read t ns slot_idx =
    if t.cfg.separate_replica_lock then
      match ns.rw with
      | Dist l -> Rw_dist.read_unlock l slot_idx
      | Simple l -> Rw_simple.read_unlock l
    else Spin.unlock ns.combiner_lock

  (* {2 Executing operations on a replica} *)

  (* [Footprint.t] is a per-operation record; only build it on runtimes
     that charge it (the simulator).  On domains the replica's real cache
     misses are the cost model, and the combiner applies a whole batch
     without allocating. *)
  let apply ns op =
    if R.charges_footprints then
      R.touch_region ns.reg (Seq.footprint ns.replica op);
    Seq.execute ns.replica op

  (* Replay log entries [local_tail, upto) onto [ns]'s replica.  Caller
     must hold the replica's write-side lock.  [wait_holes] selects the
     combiner behaviour (block on a reserved-but-unfilled entry, §5.1)
     versus the reader behaviour (stop early, §5.3).

     Response delivery: with flat combining, a node's own operations are
     applied by its combiner from the local slots, never from the log, so
     replay always discards results.  Without it (ablation #1), whichever
     thread replays an entry first must post the result to the originating
     slot — including helpers from other nodes. *)
  (* Apply entry [i] (which must be filled) and, when delivering, post the
     result to the originating slot. *)
  let replay_one t ns ~deliver i =
    let res = apply ns (Log.op_at t.log i) in
    if deliver && Log.origin_node_at t.log i = ns.node then
      R.write ns.slots.(Log.origin_slot_at t.log i).response (Some res)

  (* The loop state (position, bounds, flags) rides in the arguments of
     top-level tail-recursive functions: no state refs and no closures are
     allocated per replay — a [let rec] {e inside} [replay] would cost a
     closure record per call, which on the domains runtime is the hot
     path's entire allocation budget. *)
  let rec replay_run t ns deliver j stop_at =
    if j < stop_at then begin
      replay_one t ns ~deliver j;
      replay_run t ns deliver (j + 1) stop_at
    end

  let rec replay_window t ns deliver upto wait_holes i =
    if i >= upto then i
    else begin
      let n = min t.cfg.replay_window (upto - i) in
      (* one overlapped gen scan per window, into the node's scratch *)
      let filled = Log.read_filled t.log ns.replay_buf i n in
      let stop_at = i + filled in
      replay_run t ns deliver i stop_at;
      if filled = n then replay_window t ns deliver upto wait_holes stop_at
      else if not wait_holes then stop_at
      else if
        (* wait for the missing entry to be filled, then re-fetch the
           window from the new position *)
        Log.is_filled t.log stop_at
      then begin
        replay_one t ns ~deliver stop_at;
        replay_window t ns deliver upto wait_holes (stop_at + 1)
      end
      else begin
        R.yield ();
        replay_window t ns deliver upto wait_holes stop_at
      end
    end

  let replay t ns ~upto ~wait_holes =
    let deliver = not t.cfg.flat_combining in
    let start = Log.local_tail t.log ns.node in
    let fin = replay_window t ns deliver upto wait_holes start in
    if fin <> start then Log.set_local_tail t.log ns.node fin;
    fin

  (* When an append stalls because the log is full, advance replicas so
     their local tails stop holding the log back: first our own, then any
     laggard node with no active combiner — the paper's inactive-replica
     problem (§6), solved here by helping instead of a dedicated combiner.
     Helping another node requires both its combiner lock (so we never race
     an in-flight combiner whose own batch must come from its local slots)
     and its writer lock; [try_lock] keeps this deadlock-free. *)
  let help_advance t ns ~combiner =
    ns.stats.Stats.log_full_stalls <- ns.stats.Stats.log_full_stalls + 1;
    if Nr_obs.Sink.tracing () then
      Nr_obs.Sink.span_begin ~tid:(R.tid ()) ~node:ns.node ~cat:"nr"
        "log_full_stall";
    let target = Log.tail t.log in
    acquire_write t ns ~combiner;
    ignore (replay t ns ~upto:target ~wait_holes:false);
    release_write t ns ~combiner;
    Array.iter
      (fun other ->
        if
          other.node <> ns.node
          && Log.local_tail t.log other.node < target
          && Spin.try_lock other.combiner_lock
        then begin
          acquire_write t other ~combiner:true;
          ignore (replay t other ~upto:target ~wait_holes:false);
          release_write t other ~combiner:true;
          Spin.unlock other.combiner_lock
        end)
      t.node_states;
    if Nr_obs.Sink.tracing () then
      Nr_obs.Sink.span_end ~tid:(R.tid ()) ~node:ns.node ~cat:"nr"
        ~arg:Nr_obs.Sink.no_arg "log_full_stall"

  let create ?(cfg = Config.default) replica_factory =
    Config.validate cfg;
    let nodes = R.num_nodes () in
    let spn = R.threads_per_node () in
    let log = Log.create ~home:0 ~size:cfg.log_size ~nodes () in
    let make_node node =
      let replica = replica_factory () in
      let slots =
        Array.init spn (fun _ ->
            {
              request = R.cell ~home:node None;
              response = R.cell ~home:node None;
            })
      in
      (* a combiner scans once plus up to [min_batch_retries] rescans, and
         a drained slot cannot repost before its response arrives, so the
         batch never exceeds this capacity *)
      let batch_cap = spn * (cfg.min_batch_retries + 1) in
      {
        node;
        replica;
        reg = R.region ~home:node ~lines:(max 1 (Seq.lines replica)) ();
        combiner_lock = Spin.create ~home:node ();
        rw =
          (if cfg.distributed_rwlock then
             Dist (Rw_dist.create ~home:node ~readers:spn ())
           else Simple (Rw_simple.create ~home:node ()));
        slots;
        stats = Stats.create ();
        req_cells = Array.map (fun s -> s.request) slots;
        req_buf = Array.make spn None;
        batch_ops = Array.make batch_cap None;
        batch_slots = Array.make batch_cap 0;
        replay_buf = Log.batch ();
        on_full_combiner = ignore;
        on_full_helper = ignore;
      }
    in
    let t = { cfg; log; node_states = Array.init nodes make_node } in
    Array.iter
      (fun ns ->
        ns.on_full_combiner <- (fun () -> help_advance t ns ~combiner:true);
        ns.on_full_helper <- (fun () -> help_advance t ns ~combiner:false))
      t.node_states;
    Stats.register_collector (fun () ->
        let acc = Stats.create () in
        Array.iter (fun ns -> Stats.add acc ns.stats) t.node_states;
        acc);
    t

  (* Refresh the replica up to [completed]; used by a waiting combiner
     (MIN_BATCH, §5.2) and by readers that find no active combiner. *)
  let refresh t ns ~combiner =
    acquire_write t ns ~combiner;
    ignore (replay t ns ~upto:(Log.completed t.log) ~wait_holes:false);
    release_write t ns ~combiner

  (* {2 The combiner (§5.2)} *)

  (* Drain this node's request slots into its batch scratch starting at
     index [count]; returns the new count.  One overlapped read of every
     slot cell, no allocation: the collected entries are the requesters'
     own [Some] boxes. *)
  let rec collect_reqs ns spn i c =
    if i = spn then c
    else
      match Array.unsafe_get ns.req_buf i with
      | Some _ as req ->
          R.write ns.slots.(i).request None;
          ns.batch_ops.(c) <- req;
          ns.batch_slots.(c) <- i;
          collect_reqs ns spn (i + 1) (c + 1)
      | None -> collect_reqs ns spn (i + 1) c

  let scan_slots ns count =
    let spn = Array.length ns.req_cells in
    R.read_all_into ns.req_cells ~n:spn ~dst:ns.req_buf;
    collect_reqs ns spn 0 count

  (* Batch size is an int counter threaded through tail calls — no list,
     no length recomputation, no state refs; top-level for the same
     no-closure reason as [replay_window]. *)
  let rec min_batch t ns count retries =
    if count >= t.cfg.min_batch || retries = 0 then count
    else begin
      (* too small a batch: refresh the replica rather than idle (§5.2) *)
      refresh t ns ~combiner:true;
      min_batch t ns (scan_slots ns count) (retries - 1)
    end

  (* Execute a combined batch from the node-local slots; returns the
     response for [my_idx]'s own operation.  The only allocations are the
     [Some] response boxes handed to waiters. *)
  let rec apply_batch t ns n my_idx k own =
    if k = n then own
    else begin
      let own =
        match ns.batch_ops.(k) with
        | Some op ->
            let res = apply ns op in
            let idx = ns.batch_slots.(k) in
            if idx = my_idx then Some res
            else begin
              R.write ns.slots.(idx).response (Some res);
              own
            end
        | None -> assert false
      in
      (* drop the box so the GC does not retain consumed operations *)
      ns.batch_ops.(k) <- None;
      apply_batch t ns n my_idx (k + 1) own
    end

  (* Runs with the combiner lock held; releases it before returning. *)
  let combine t ns my_idx =
    if Nr_obs.Sink.tracing () then
      Nr_obs.Sink.span_begin ~tid:(R.tid ()) ~node:ns.node ~cat:"nr" "combine";
    let n = min_batch t ns (scan_slots ns 0) t.cfg.min_batch_retries in
    Stats.record_batch ns.stats n;
    let start =
      Log.append_batch t.log ~ops:ns.batch_ops ~slots:ns.batch_slots ~n
        ~origin_node:ns.node ~on_full:ns.on_full_combiner
    in
    if Nr_obs.Sink.tracing () then
      Nr_obs.Sink.instant ~tid:(R.tid ()) ~node:ns.node ~cat:"nr" ~arg:n
        "append";
    let end_ = start + n in
    if not t.cfg.parallel_replica_update then
      (* ablation #4: serialize replica updates across nodes *)
      while Log.completed t.log < start do
        R.yield ()
      done;
    acquire_write t ns ~combiner:true;
    ignore (replay t ns ~upto:start ~wait_holes:true);
    Log.set_local_tail t.log ns.node end_;
    (* one CAS carries [completed] over the whole batch *)
    Log.advance_completed t.log end_;
    (* execute own batch from the node-local slots, not from the log *)
    let own = apply_batch t ns n my_idx 0 None in
    release_write t ns ~combiner:true;
    (* batch size rides on the end event so the span is self-describing *)
    if Nr_obs.Sink.tracing () then
      Nr_obs.Sink.span_end ~tid:(R.tid ()) ~node:ns.node ~cat:"nr" ~arg:n
        "combine";
    Spin.unlock ns.combiner_lock;
    match own with
    | Some r -> r
    | None ->
        (* own request consumed by min-batch rescan logic is impossible:
           we posted before locking and hold the lock throughout *)
        assert false

  let rec wait_or_combine t ns my_idx =
    let slot = ns.slots.(my_idx) in
    if Spin.try_lock ns.combiner_lock then
      match R.read slot.response with
      | Some r ->
          (* a previous combiner served us just before we got the lock *)
          Spin.unlock ns.combiner_lock;
          r
      | None -> combine t ns my_idx
    else slot_wait t ns my_idx slot

  (* top-level (not a [let rec] under [wait_or_combine]) so waiting for a
     combiner allocates nothing *)
  and slot_wait t ns my_idx slot =
    match R.read slot.response with
    | Some r -> r
    | None ->
        if Spin.locked ns.combiner_lock then begin
          R.yield ();
          slot_wait t ns my_idx slot
        end
        else wait_or_combine t ns my_idx

  let execute_update t ns my_idx op =
    ns.stats.Stats.updates <- ns.stats.Stats.updates + 1;
    let slot = ns.slots.(my_idx) in
    R.write slot.response None;
    R.write slot.request (Some op);
    wait_or_combine t ns my_idx

  (* Ablation #1: no flat combining — each thread appends its own operation
     and applies the log itself under the writer lock.  Entries carry their
     origin so whichever same-node thread replays an entry first posts the
     response to its owner. *)
  let execute_update_nofc t ns my_idx op =
    ns.stats.Stats.updates <- ns.stats.Stats.updates + 1;
    let slot = ns.slots.(my_idx) in
    R.write slot.response None;
    let start =
      Log.append1 t.log op ~origin_node:ns.node ~origin_slot:my_idx
        ~on_full:ns.on_full_helper
    in
    if Nr_obs.Sink.tracing () then
      Nr_obs.Sink.instant ~tid:(R.tid ()) ~node:ns.node ~cat:"nr" ~arg:1
        "append";
    acquire_write t ns ~combiner:false;
    ignore (replay t ns ~upto:(start + 1) ~wait_holes:true);
    Log.advance_completed t.log (start + 1);
    release_write t ns ~combiner:false;
    let rec take () =
      match R.read slot.response with
      | Some r -> r
      | None ->
          R.yield ();
          take ()
    in
    take ()

  (* {2 Read-only operations (§5.3, §5.4)} *)

  let execute_read t ns my_idx op =
    ns.stats.Stats.reads <- ns.stats.Stats.reads + 1;
    let read_tail =
      if t.cfg.read_optimization then Log.completed t.log else Log.tail t.log
    in
    while Log.local_tail t.log ns.node < read_tail do
      (* If a combiner is active it will refresh the replica; otherwise we
         take the writer lock and refresh it ourselves. *)
      if Spin.locked ns.combiner_lock then R.yield ()
      else begin
        ns.stats.Stats.reader_refreshes <- ns.stats.Stats.reader_refreshes + 1;
        if Nr_obs.Sink.tracing () then
          Nr_obs.Sink.instant ~tid:(R.tid ()) ~node:ns.node ~cat:"nr"
            ~arg:Nr_obs.Sink.no_arg "reader_refresh";
        acquire_write t ns ~combiner:false;
        if Log.local_tail t.log ns.node < read_tail then
          ignore (replay t ns ~upto:read_tail ~wait_holes:false);
        release_write t ns ~combiner:false
      end
    done;
    acquire_read t ns my_idx;
    let r = apply ns op in
    release_read t ns my_idx;
    r

  (* {2 The concurrent entry point (paper's ExecuteConcurrent)} *)

  let execute t op =
    let node = R.my_node () in
    let ns = t.node_states.(node) in
    let my_idx = R.tid () mod R.threads_per_node () in
    if Seq.is_read_only op then execute_read t ns my_idx op
    else if t.cfg.flat_combining then execute_update t ns my_idx op
    else execute_update_nofc t ns my_idx op

  (* {2 Dedicated combiner support (§4, optional optimization)}

     A dedicated per-node refresher thread can keep a replica fresh even
     when its node executes no operations, bounding read latency and
     preventing an idle node from holding the log back.  Spawn one thread
     per node (with a tid placed on that node) running
     [run_dedicated_combiner] — or call [refresh_local] at any cadence. *)

  (* Bring the calling thread's node up to [completed] if it lags. *)
  let refresh_local t =
    let ns = t.node_states.(R.my_node ()) in
    if Log.local_tail t.log ns.node < Log.completed t.log then
      refresh t ns ~combiner:false

  (* Loop refreshing the local replica until [stop] returns true. *)
  let run_dedicated_combiner t ~stop =
    while not (stop ()) do
      refresh_local t;
      R.yield ()
    done

  (* {2 Introspection} *)

  let config t = t.cfg
  let num_replicas t = Array.length t.node_states
  let log_tail t = Log.tail t.log
  let completed t = Log.completed t.log
  let local_tail t node = Log.local_tail t.log node

  let stats t =
    let acc = Stats.create () in
    Array.iter (fun ns -> Stats.add acc ns.stats) t.node_states;
    acc

  (** Quiescent-only introspection, for tests and memory accounting. *)
  module Unsafe = struct
    let replica t node = t.node_states.(node).replica

    (* Bring every replica up to [completed].  Must be called from a
       runtime thread while no other operations are in flight. *)
    let sync t =
      Array.iter
        (fun ns ->
          ignore
            (replay t ns ~upto:(Log.completed t.log) ~wait_holes:false
              ))
        t.node_states

    let log_entries t =
      let upto = Log.completed t.log in
      List.init upto (fun i ->
          match Log.get t.log i with
          | Some e -> e.Log.op
          | None -> invalid_arg "log_entries: recycled or unfilled entry")
  end
end

(** Node Replication (paper §4–§5): the black-box transformation from a
    sequential data structure to a linearizable NUMA-aware concurrent one.

    One replica of the structure lives on each NUMA node.  Within a node,
    threads batch update operations through a flat-combining leader; across
    nodes, combiners synchronize through the shared log.  Read-only
    operations run on the local replica under a distributed readers-writer
    lock after checking freshness against the log's [completed] tail.

    The functor takes the runtime (real domains or the simulator) and the
    sequential structure; the result exposes a single concurrent [execute]
    — the paper's [ExecuteConcurrent]. *)

module Make (R : Nr_runtime.Runtime_intf.S) (Seq : Ds_intf.S) = struct
  module Spin = Nr_sync.Stealable_lock.Make (R)
  module Backoff = Nr_sync.Backoff.Make (R)
  module Rw_dist = Nr_sync.Rwlock_dist.Make (R)
  module Rw_simple = Nr_sync.Rwlock_simple.Make (R)
  module Cna = Nr_sync.Cna_lock.Make (R)
  module Log = Log.Make (R)

  type rwlock = Dist of Rw_dist.t | Simple of Rw_simple.t

  type slot = {
    request : Seq.op option R.cell;
    response : Seq.result option R.cell;
    mutable seq : int;
        (** hardened mode: incarnation of the posted request, bumped on
            every (re)post; response deliveries are guarded on the seq
            they were collected under, so a delivery racing a repost of
            the same slot can never satisfy the wrong incarnation.
            Untouched in legacy mode. *)
  }

  (* Hardened-mode batch lifecycle, tracked in plain fields of
     [node_state] (free in the simulator's cost model; the descriptor is
     only read and written under ownership rules spelled out at each
     site). *)
  let if_idle = 0
  let if_filling = 1
  let if_applying = 2

  type node_state = {
    node : int;
    replica : Seq.t;
    reg : R.region;
    combiner_lock : Spin.t;
    cna : Cna.t option;
        (** [Some _] replaces the combiner spinlock with a CNA queue lock
            ([cfg.cna_lock], legacy mode only — the hardened protocol
            needs the stealable lock's generations); [combiner_lock] is
            then never touched *)
    stamp : int R.cell;
        (** per-replica seqlock version ([cfg.optimistic_reads]): odd
            while a writer-lock section is open, bumped on both edges so
            an optimistic reader can validate that the replica did not
            change across its unlocked access *)
    rw : rwlock;
    slots : slot array;
    stats : Stats.t;
    (* {2 Combiner scratch} — per-node reusable buffers so the combine /
       replay hot paths allocate nothing in steady state (§5.7: the
       machinery must stay leaner than the operations it batches).  All of
       it is only touched under this node's combiner or writer lock. *)
    req_cells : Seq.op option R.cell array;
        (** the [request] cells of [slots], gathered once at creation so a
            scan is a single overlapped batch read *)
    req_buf : Seq.op option array;  (** scratch for scan results *)
    batch_ops : Seq.op option array;
        (** collected batch: the very [Some] boxes the requesters wrote *)
    batch_slots : int array;  (** originating slot of each batch entry *)
    replay_buf : Log.batch;  (** gen-scan scratch for replay windows *)
    mutable on_full_combiner : unit -> unit;
        (** hoisted [on_full] closures: allocated once per node, not once
            per append *)
    mutable on_full_helper : unit -> unit;
    (* {2 Hardened-mode in-flight batch descriptor}

       Published by the combiner so that, should it stall or die, the
       waiter that steals its lock can finish the batch.  All fields are
       plain: [inflight_start] is stored in the same atomic region as the
       log-tail CAS that commits the reservation, so an observer holding
       the (stolen) combiner lock sees either no reservation or the full
       descriptor.  [batch_seqs]/[batch_res] extend the combiner scratch:
       the slot incarnations the batch was collected under, and the
       results of already-applied operations so a recoverer can (re)deliver
       them idempotently. *)
    mutable inflight_gen : int;  (** owning lock tenure; 0 = none *)
    mutable inflight_state : int;  (** [if_idle] / [if_filling] / [if_applying] *)
    mutable inflight_start : int;  (** committed log start, [-1] before *)
    mutable inflight_n : int;
    mutable inflight_applied : int;  (** next batch offset to apply *)
    batch_seqs : int array;
    batch_res : Seq.result option array;
  }

  type t = {
    cfg : Config.t;
    log : Seq.op Log.t;
    node_states : node_state array;
  }

  (* {2 Replica access under the chosen locking regime}

     With [separate_replica_lock] (#3) the replica is guarded by the
     readers-writer lock and the combiner lock only elects the combiner;
     without it, the combiner lock itself guards the replica, so the
     writer-side operations below become no-ops for a thread that already
     holds the combiner lock. *)

  (* Combiner-lock dispatch: [cfg.cna_lock] (legacy mode) swaps the
     spinlock for a CNA queue lock; the match on the option field is pure
     OCaml, so with [cna = None] every charge sequence is identical to
     the direct [Spin] calls. *)
  let clock_try ns =
    match ns.cna with
    | None -> Spin.try_lock ns.combiner_lock <> 0
    | Some l -> Cna.try_lock l

  let clock_locked ns =
    match ns.cna with
    | None -> Spin.locked ns.combiner_lock
    | Some l -> Cna.locked l

  let clock_lock ns =
    match ns.cna with
    | None -> ignore (Spin.lock ns.combiner_lock)
    | Some l -> Cna.lock l

  let clock_unlock ns =
    match ns.cna with
    | None -> Spin.unlock_quiet ns.combiner_lock
    | Some l -> Cna.unlock l

  (* [combiner] says whether the caller already holds [ns]'s combiner
     lock: without the separate replica lock (#3 disabled), the combiner
     lock IS the replica lock, so a caller that does not hold it yet must
     take it here (reader-side refreshes, no-flat-combining updaters, the
     dedicated combiner). *)
  let acquire_write t ns ~combiner =
    (if t.cfg.separate_replica_lock then
       match ns.rw with
       | Dist l -> Rw_dist.write_lock l
       | Simple l -> Rw_simple.write_lock l
     else if not combiner then clock_lock ns);
    (* seqlock open edge: every replica mutation path — combines,
       refreshes, recoveries, steals — funnels through this writer lock,
       so bumping here covers them all.  The holder is the stamp's sole
       writer, making the peek free. *)
    if t.cfg.optimistic_reads then R.write ns.stamp (R.peek ns.stamp + 1)

  let release_write t ns ~combiner =
    (* seqlock close edge, before the lock drops *)
    if t.cfg.optimistic_reads then R.write ns.stamp (R.peek ns.stamp + 1);
    if t.cfg.separate_replica_lock then
      match ns.rw with
      | Dist l -> Rw_dist.write_unlock l
      | Simple l -> Rw_simple.write_unlock l
    else if not combiner then clock_unlock ns

  let acquire_read t ns slot_idx =
    if t.cfg.separate_replica_lock then
      match ns.rw with
      | Dist l -> Rw_dist.read_lock l slot_idx
      | Simple l -> Rw_simple.read_lock l
    else clock_lock ns

  let release_read t ns slot_idx =
    if t.cfg.separate_replica_lock then
      match ns.rw with
      | Dist l -> Rw_dist.read_unlock l slot_idx
      | Simple l -> Rw_simple.read_unlock l
    else clock_unlock ns

  (* Fold the handoff-locality counters of every CNA lock a node owns
     (combiner lock and/or rwlock writer side) into a stats record — the
     locks count locally so the hot path never touches [Stats]. *)
  let merge_cna_stats acc ns =
    let add (s : Nr_sync.Cna_lock.snapshot) =
      acc.Stats.cna_local_handoffs <-
        acc.Stats.cna_local_handoffs + s.Nr_sync.Cna_lock.local_handoffs;
      acc.Stats.cna_remote_handoffs <-
        acc.Stats.cna_remote_handoffs + s.Nr_sync.Cna_lock.remote_handoffs;
      acc.Stats.cna_splices <-
        acc.Stats.cna_splices + s.Nr_sync.Cna_lock.splices
    in
    (match ns.cna with Some l -> add (Cna.snapshot l) | None -> ());
    match ns.rw with
    | Dist l -> (
        match Rw_dist.writer_cna_snapshot l with
        | Some s -> add s
        | None -> ())
    | Simple _ -> ()

  (* {2 Executing operations on a replica} *)

  (* [Footprint.t] is a per-operation record; only build it on runtimes
     that charge it (the simulator).  On domains the replica's real cache
     misses are the cost model, and the combiner applies a whole batch
     without allocating. *)
  let apply ns op =
    if R.charges_footprints then
      R.touch_region ns.reg (Seq.footprint ns.replica op);
    Seq.execute ns.replica op

  (* Replay log entries [local_tail, upto) onto [ns]'s replica.  Caller
     must hold the replica's write-side lock.  [wait_holes] selects the
     combiner behaviour (block on a reserved-but-unfilled entry, §5.1)
     versus the reader behaviour (stop early, §5.3).

     Response delivery: with flat combining, a node's own operations are
     applied by its combiner from the local slots, never from the log, so
     replay always discards results.  Without it (ablation #1), whichever
     thread replays an entry first must post the result to the originating
     slot — including helpers from other nodes. *)
  (* Apply entry [i] (which must be filled) and, when delivering, post the
     result to the originating slot. *)
  let replay_one t ns ~deliver i =
    let res = apply ns (Log.op_at t.log i) in
    if deliver && Log.origin_node_at t.log i = ns.node then
      R.write ns.slots.(Log.origin_slot_at t.log i).response (Some res)

  (* The loop state (position, bounds, flags) rides in the arguments of
     top-level tail-recursive functions: no state refs and no closures are
     allocated per replay — a [let rec] {e inside} [replay] would cost a
     closure record per call, which on the domains runtime is the hot
     path's entire allocation budget. *)
  let rec replay_run t ns deliver j stop_at =
    if j < stop_at then begin
      replay_one t ns ~deliver j;
      replay_run t ns deliver (j + 1) stop_at
    end

  let rec replay_window t ns deliver upto wait_holes i =
    if i >= upto then i
    else begin
      let n = min t.cfg.replay_window (upto - i) in
      (* one overlapped gen scan per window, into the node's scratch *)
      let filled = Log.read_filled t.log ns.replay_buf i n in
      let stop_at = i + filled in
      replay_run t ns deliver i stop_at;
      if filled = n then replay_window t ns deliver upto wait_holes stop_at
      else if not wait_holes then stop_at
      else if
        (* wait for the missing entry to be filled, then re-fetch the
           window from the new position *)
        Log.is_filled t.log stop_at
      then begin
        replay_one t ns ~deliver stop_at;
        replay_window t ns deliver upto wait_holes (stop_at + 1)
      end
      else begin
        R.yield ();
        replay_window t ns deliver upto wait_holes stop_at
      end
    end

  let replay t ns ~upto ~wait_holes =
    let deliver = not t.cfg.flat_combining in
    let start = Log.local_tail t.log ns.node in
    let fin = replay_window t ns deliver upto wait_holes start in
    if fin <> start then Log.set_local_tail t.log ns.node fin;
    fin

  (* When an append stalls because the log is full, advance replicas so
     their local tails stop holding the log back: first our own, then any
     laggard node with no active combiner — the paper's inactive-replica
     problem (§6), solved here by helping instead of a dedicated combiner.
     Helping another node requires both its combiner lock (so we never race
     an in-flight combiner whose own batch must come from its local slots)
     and its writer lock; [try_lock] keeps this deadlock-free. *)
  let help_advance t ns ~combiner =
    ns.stats.Stats.log_full_stalls <- ns.stats.Stats.log_full_stalls + 1;
    if Nr_obs.Sink.tracing () then
      Nr_obs.Sink.span_begin ~tid:(R.tid ()) ~node:ns.node ~cat:"nr"
        "log_full_stall";
    let target = Log.tail t.log in
    acquire_write t ns ~combiner;
    ignore (replay t ns ~upto:target ~wait_holes:false);
    release_write t ns ~combiner;
    Array.iter
      (fun other ->
        if
          other.node <> ns.node
          && Log.local_tail t.log other.node < target
          && clock_try other
        then begin
          acquire_write t other ~combiner:true;
          ignore (replay t other ~upto:target ~wait_holes:false);
          release_write t other ~combiner:true;
          clock_unlock other
        end)
      t.node_states;
    if Nr_obs.Sink.tracing () then
      Nr_obs.Sink.span_end ~tid:(R.tid ()) ~node:ns.node ~cat:"nr"
        ~arg:Nr_obs.Sink.no_arg "log_full_stall"

  let create ?(cfg = Config.default) replica_factory =
    Config.validate cfg;
    let nodes = R.num_nodes () in
    let spn = R.threads_per_node () in
    let log = Log.create ~home:0 ~size:cfg.log_size ~nodes () in
    let make_node node =
      let replica = replica_factory () in
      let slots =
        Array.init spn (fun _ ->
            {
              request = R.cell ~home:node None;
              response = R.cell ~home:node None;
              seq = 0;
            })
      in
      (* a combiner scans once plus up to [min_batch_retries] rescans, and
         a drained slot cannot repost before its response arrives, so the
         batch never exceeds this capacity *)
      let batch_cap = spn * (cfg.min_batch_retries + 1) in
      {
        node;
        replica;
        reg = R.region ~home:node ~lines:(max 1 (Seq.lines replica)) ();
        combiner_lock = Spin.create ~home:node ();
        cna =
          (if
             cfg.cna_lock
             && match cfg.liveness with None -> true | Some _ -> false
           then Some (Cna.create ~home:node ~threshold:cfg.cna_threshold ())
           else None);
        stamp = R.cell ~home:node 0;
        rw =
          (if cfg.distributed_rwlock then
             Dist
               (Rw_dist.create ~home:node ~readers:spn
                  ?writer_cna:
                    (if cfg.cna_lock then Some cfg.cna_threshold else None)
                  ?patience:cfg.read_patience ())
           else Simple (Rw_simple.create ~home:node ()));
        slots;
        stats = Stats.create ();
        req_cells = Array.map (fun s -> s.request) slots;
        req_buf = Array.make spn None;
        batch_ops = Array.make batch_cap None;
        batch_slots = Array.make batch_cap 0;
        replay_buf = Log.batch ();
        on_full_combiner = ignore;
        on_full_helper = ignore;
        inflight_gen = 0;
        inflight_state = if_idle;
        inflight_start = -1;
        inflight_n = 0;
        inflight_applied = 0;
        batch_seqs = Array.make batch_cap 0;
        batch_res = Array.make batch_cap None;
      }
    in
    let t = { cfg; log; node_states = Array.init nodes make_node } in
    Array.iter
      (fun ns ->
        ns.on_full_combiner <- (fun () -> help_advance t ns ~combiner:true);
        ns.on_full_helper <- (fun () -> help_advance t ns ~combiner:false))
      t.node_states;
    Stats.register_collector (fun () ->
        let acc = Stats.create () in
        Array.iter
          (fun ns ->
            Stats.add acc ns.stats;
            merge_cna_stats acc ns)
          t.node_states;
        acc);
    t

  (* Refresh the replica up to [completed]; used by a waiting combiner
     (MIN_BATCH, §5.2) and by readers that find no active combiner. *)
  let refresh t ns ~combiner =
    acquire_write t ns ~combiner;
    ignore (replay t ns ~upto:(Log.completed t.log) ~wait_holes:false);
    release_write t ns ~combiner

  (* {2 The combiner (§5.2)} *)

  (* Drain this node's request slots into its batch scratch starting at
     index [count]; returns the new count.  One overlapped read of every
     slot cell, no allocation: the collected entries are the requesters'
     own [Some] boxes. *)
  let rec collect_reqs ns spn i c =
    if i = spn then c
    else
      match Array.unsafe_get ns.req_buf i with
      | Some _ as req ->
          R.write ns.slots.(i).request None;
          ns.batch_ops.(c) <- req;
          ns.batch_slots.(c) <- i;
          collect_reqs ns spn (i + 1) (c + 1)
      | None -> collect_reqs ns spn (i + 1) c

  let scan_slots ns count =
    let spn = Array.length ns.req_cells in
    R.read_all_into ns.req_cells ~n:spn ~dst:ns.req_buf;
    collect_reqs ns spn 0 count

  (* Batch size is an int counter threaded through tail calls — no list,
     no length recomputation, no state refs; top-level for the same
     no-closure reason as [replay_window]. *)
  let rec min_batch t ns count retries =
    if count >= t.cfg.min_batch || retries = 0 then count
    else begin
      (* too small a batch: refresh the replica rather than idle (§5.2) *)
      refresh t ns ~combiner:true;
      min_batch t ns (scan_slots ns count) (retries - 1)
    end

  (* Execute a combined batch from the node-local slots; returns the
     response for [my_idx]'s own operation.  The only allocations are the
     [Some] response boxes handed to waiters. *)
  let rec apply_batch t ns n my_idx k own =
    if k = n then own
    else begin
      let own =
        match ns.batch_ops.(k) with
        | Some op ->
            let res = apply ns op in
            let idx = ns.batch_slots.(k) in
            if idx = my_idx then Some res
            else begin
              R.write ns.slots.(idx).response (Some res);
              own
            end
        | None -> assert false
      in
      (* drop the box so the GC does not retain consumed operations *)
      ns.batch_ops.(k) <- None;
      apply_batch t ns n my_idx (k + 1) own
    end

  (* Runs with the combiner lock held; releases it before returning. *)
  let combine t ns my_idx =
    if Nr_obs.Sink.tracing () then
      Nr_obs.Sink.span_begin ~tid:(R.tid ()) ~node:ns.node ~cat:"nr" "combine";
    let n = min_batch t ns (scan_slots ns 0) t.cfg.min_batch_retries in
    Stats.record_batch ns.stats n;
    let start =
      Log.append_batch t.log ~ops:ns.batch_ops ~slots:ns.batch_slots ~n
        ~origin_node:ns.node ~on_full:ns.on_full_combiner
    in
    if Nr_obs.Sink.tracing () then
      Nr_obs.Sink.instant ~tid:(R.tid ()) ~node:ns.node ~cat:"nr" ~arg:n
        "append";
    let end_ = start + n in
    if not t.cfg.parallel_replica_update then
      (* ablation #4: serialize replica updates across nodes *)
      while Log.completed t.log < start do
        R.yield ()
      done;
    acquire_write t ns ~combiner:true;
    ignore (replay t ns ~upto:start ~wait_holes:true);
    Log.set_local_tail t.log ns.node end_;
    (* one CAS carries [completed] over the whole batch *)
    Log.advance_completed t.log end_;
    (* execute own batch from the node-local slots, not from the log *)
    let own = apply_batch t ns n my_idx 0 None in
    release_write t ns ~combiner:true;
    (* batch size rides on the end event so the span is self-describing *)
    if Nr_obs.Sink.tracing () then
      Nr_obs.Sink.span_end ~tid:(R.tid ()) ~node:ns.node ~cat:"nr" ~arg:n
        "combine";
    clock_unlock ns;
    match own with
    | Some r -> r
    | None ->
        (* own request consumed by min-batch rescan logic is impossible:
           we posted before locking and hold the lock throughout *)
        assert false

  let rec wait_or_combine t ns my_idx =
    let slot = ns.slots.(my_idx) in
    if clock_try ns then
      match R.read slot.response with
      | Some r ->
          (* a previous combiner served us just before we got the lock *)
          clock_unlock ns;
          r
      | None -> combine t ns my_idx
    else slot_wait t ns my_idx slot

  (* top-level (not a [let rec] under [wait_or_combine]) so waiting for a
     combiner allocates nothing *)
  and slot_wait t ns my_idx slot =
    match R.read slot.response with
    | Some r -> r
    | None ->
        if clock_locked ns then begin
          R.yield ();
          slot_wait t ns my_idx slot
        end
        else wait_or_combine t ns my_idx

  let execute_update t ns my_idx op =
    ns.stats.Stats.updates <- ns.stats.Stats.updates + 1;
    let slot = ns.slots.(my_idx) in
    R.write slot.response None;
    R.write slot.request (Some op);
    wait_or_combine t ns my_idx

  (* {2 The hardened combiner (liveness mode)}

     Armed by [Config.liveness].  The legacy protocol above assumes every
     thread keeps running: a combiner that stalls mid-batch wedges its
     node, a dead thread that reserved log entries wedges every replayer,
     and waiters spin forever.  The hardened protocol tolerates both,
     against the simulator's fault injector:

     - the combiner lock is stealable ({!Nr_sync.Stealable_lock}): a
       waiter whose patience runs out dispossesses the stuck tenure and
       {e recovers} its published in-flight batch;
     - the log-tail CAS that commits a reservation carries an ownership
       guard, so a dispossessed combiner can never commit entries its
       stealer does not know about — the in-flight descriptor is published
       in the same atomic region as the commit;
     - log holes left by dead writers are {e poisoned} after a patience
       bound; every replica skips poisoned entries identically and their
       requesters repost;
     - responses are delivered under per-slot incarnation numbers, so a
       late delivery from a dispossessed combiner cannot satisfy a
       reposted request;
     - the apply phase is serialized by the replica writer lock and
       tracked by [inflight_applied], so the original combiner and a
       recoverer each apply every operation exactly once between them.

     These paths are entirely separate from the legacy ones: with
     [liveness = None] nothing here runs and every charge sequence is
     byte-identical to the pre-hardening code. *)

  (* Hardened replay: like [replay_window], but poisoned entries are
     skipped (they are resolved — nothing to wait for) and a hole that
     stays open for [patience] rounds is poisoned so the log advances
     past its dead writer.  [patience < 0] stops at the first hole, for
     contexts that replay only resolved prefixes (completed-bounded
     refreshes, quiescent sync). *)
  let rec replay_window_h t ns upto patience rounds i =
    if i >= upto then i
    else begin
      let n = min t.cfg.replay_window (upto - i) in
      let resolved = Log.read_resolved t.log ns.replay_buf i n in
      (* [replay_buf] is only touched under this node's writer lock, so
         the stamps stay valid across the charged applies below *)
      for k = 0 to resolved - 1 do
        if not (Log.batch_is_poisoned ns.replay_buf k) then
          replay_one t ns ~deliver:false (i + k)
      done;
      let stop_at = i + resolved in
      if resolved = n then replay_window_h t ns upto patience 0 stop_at
      else if patience < 0 then stop_at
      else if rounds >= patience then begin
        if Log.poison t.log stop_at then begin
          ns.stats.Stats.poisoned <- ns.stats.Stats.poisoned + 1;
          if Nr_obs.Sink.tracing () then
            Nr_obs.Sink.instant ~tid:(R.tid ()) ~node:ns.node ~cat:"nr"
              ~arg:Nr_obs.Sink.no_arg "poison"
        end;
        replay_window_h t ns upto patience 0 stop_at
      end
      else begin
        R.yield ();
        replay_window_h t ns upto patience (rounds + 1) stop_at
      end
    end

  let replay_h t ns ~upto ~patience =
    let start = Log.local_tail t.log ns.node in
    let fin = replay_window_h t ns upto patience 0 start in
    if fin <> start then Log.set_local_tail t.log ns.node fin;
    fin

  (* Complete the in-flight batch published under tenure [gen]: replay
     the foreign prefix, apply whatever the previous holder had not
     applied yet, deliver the responses, then jump the local tail over
     the batch.  Runs under the node's writer lock, which serializes the
     original (possibly dispossessed) combiner against any recoverer:
     whoever holds the lock advances [inflight_applied]; the other finds
     nothing left.  The [gen] tag keeps a resumed zombie from adopting a
     {e newer} descriptor its stealer published after finishing this
     one. *)
  let finish_batch t ns ~gen ~patience =
    acquire_write t ns ~combiner:true;
    if
      ns.inflight_state <> if_idle
      && ns.inflight_gen = gen
      && ns.inflight_start >= 0
    then begin
      let start = ns.inflight_start and n = ns.inflight_n in
      let end_ = start + n in
      ns.inflight_state <- if_applying;
      ignore (replay_h t ns ~upto:start ~patience);
      (* apply before the local-tail jump: while our tail sits at [start]
         the range cannot be recycled, so the poison checks below read
         this lap's stamps *)
      for k = ns.inflight_applied to n - 1 do
        (match ns.batch_ops.(k) with
        | Some op ->
            (* an entry that lost its fill/poison race is skipped by every
               replica alike; its requester reposts *)
            if not (Log.is_poisoned t.log (start + k)) then
              ns.batch_res.(k) <- Some (apply ns op)
        | None -> ());
        ns.inflight_applied <- k + 1
      done;
      (* own batch is applied from the scratch, not the log: jump over it
         (all local-tail writes happen under this writer lock, so the
         plain store cannot regress a concurrent advance) *)
      Log.set_local_tail t.log ns.node end_;
      Log.advance_completed t.log end_;
      (* (re)deliver under the collected incarnations: a requester that
         already consumed its response and reposted carries a newer seq,
         so a stale redelivery falls out at the guard *)
      for k = 0 to n - 1 do
        match ns.batch_res.(k) with
        | Some _ as res ->
            let slot = ns.slots.(ns.batch_slots.(k)) in
            let sq = ns.batch_seqs.(k) in
            ignore
              (R.guarded_write slot.response
                 ~guard:(fun () -> slot.seq = sq)
                 res)
        | None -> ()
      done;
      for k = 0 to n - 1 do
        ns.batch_ops.(k) <- None;
        ns.batch_res.(k) <- None
      done;
      ns.inflight_state <- if_idle;
      ns.inflight_gen <- 0
    end;
    release_write t ns ~combiner:true

  (* Adopt whatever batch a previous tenure left behind; called with the
     combiner lock held (freshly acquired or stolen).  The dispossessed
     combiner may still be running: every step is idempotent against it
     (poison-respecting refills, writer-lock-serialized apply, guarded
     delivery). *)
  let recover t ns ~patience =
    if ns.inflight_state <> if_idle then begin
      let gen = ns.inflight_gen in
      ns.stats.Stats.batches_recovered <-
        ns.stats.Stats.batches_recovered + 1;
      if Nr_obs.Sink.tracing () then
        Nr_obs.Sink.instant ~tid:(R.tid ()) ~node:ns.node ~cat:"nr"
          ~arg:Nr_obs.Sink.no_arg "batch_recover";
      if ns.inflight_start >= 0 then begin
        let start = ns.inflight_start and n = ns.inflight_n in
        for k = 0 to n - 1 do
          match ns.batch_ops.(k) with
          | Some op ->
              ignore
                (Log.fill_checked t.log (start + k) ~op ~origin_node:ns.node
                   ~origin_slot:ns.batch_slots.(k))
          | None -> ()
        done;
        finish_batch t ns ~gen ~patience
      end
      else begin
        (* the reservation never committed (the guarded tail CAS makes
           that airtight), so the log holds nothing of this batch; the
           drained requests are lost and their owners repost on their own
           patience timeout *)
        ns.inflight_state <- if_idle;
        ns.inflight_gen <- 0
      end
    end

  (* Hardened log-full help: advance our own replica (poisoning holes so
     a dead writer cannot wedge the log), then laggard remote replicas —
     through their combiner locks when free and, once [steal_laggards]
     (the bounded wait's escalation), by stealing a lock that stayed
     stuck across the whole patience window and recovering its batch
     remotely. *)
  let help_advance_h t ns ~patience ~steal_laggards =
    ns.stats.Stats.log_full_stalls <- ns.stats.Stats.log_full_stalls + 1;
    if Nr_obs.Sink.tracing () then
      Nr_obs.Sink.span_begin ~tid:(R.tid ()) ~node:ns.node ~cat:"nr"
        "log_full_stall";
    let target = Log.tail t.log in
    acquire_write t ns ~combiner:true;
    ignore (replay_h t ns ~upto:target ~patience);
    release_write t ns ~combiner:true;
    Array.iter
      (fun other ->
        if
          other.node <> ns.node
          && Log.local_tail t.log other.node < target
        then begin
          let g = Spin.try_lock other.combiner_lock in
          let g =
            if g <> 0 || not steal_laggards then g
            else begin
              let held = Spin.read_gen other.combiner_lock in
              if held land 1 = 1 then begin
                let g' = Spin.steal other.combiner_lock ~gen:held in
                if g' <> 0 then begin
                  other.stats.Stats.combiner_steals <-
                    other.stats.Stats.combiner_steals + 1;
                  if Nr_obs.Sink.tracing () then
                    Nr_obs.Sink.instant ~tid:(R.tid ()) ~node:other.node
                      ~cat:"nr" ~arg:Nr_obs.Sink.no_arg "remote_steal"
                end;
                g'
              end
              else 0
            end
          in
          if g <> 0 then begin
            ns.stats.Stats.remote_refreshes <-
              ns.stats.Stats.remote_refreshes + 1;
            recover t other ~patience;
            acquire_write t other ~combiner:true;
            ignore (replay_h t other ~upto:target ~patience);
            release_write t other ~combiner:true;
            ignore (Spin.unlock other.combiner_lock ~gen:g)
          end
        end)
      t.node_states;
    if Nr_obs.Sink.tracing () then
      Nr_obs.Sink.span_end ~tid:(R.tid ()) ~node:ns.node ~cat:"nr"
        ~arg:Nr_obs.Sink.no_arg "log_full_stall"

  (* Hardened slot drain: each request is taken with a CAS guarded on our
     still owning the tenure, and the plain scratch stores ride in the
     same atomic region, so a dispossessed combiner can neither lose a
     request silently nor stomp its stealer's scratch.  Returns [-1] when
     dispossessed. *)
  let rec collect_reqs_h t ns gen spn i c =
    if i = spn then c
    else
      match Array.unsafe_get ns.req_buf i with
      | Some _ as req ->
          if
            R.guarded_cas
              ns.slots.(i).request
              ~guard:(fun () -> ns.inflight_gen = gen)
              req None
          then begin
            ns.batch_ops.(c) <- req;
            ns.batch_slots.(c) <- i;
            ns.batch_seqs.(c) <- ns.slots.(i).seq;
            collect_reqs_h t ns gen spn (i + 1) (c + 1)
          end
          else if ns.inflight_gen <> gen then -1
          else collect_reqs_h t ns gen spn (i + 1) c
      | None -> collect_reqs_h t ns gen spn (i + 1) c

  let scan_slots_h t ns gen count =
    let spn = Array.length ns.req_cells in
    R.read_all_into ns.req_cells ~n:spn ~dst:ns.req_buf;
    if ns.inflight_gen <> gen then -1
    else collect_reqs_h t ns gen spn 0 count

  let refresh_h t ns =
    acquire_write t ns ~combiner:true;
    ignore (replay_h t ns ~upto:(Log.completed t.log) ~patience:(-1));
    release_write t ns ~combiner:true

  let rec min_batch_h t ns gen count retries =
    if count < 0 then -1
    else if count >= t.cfg.min_batch || retries = 0 then count
    else begin
      refresh_h t ns;
      if ns.inflight_gen <> gen then -1
      else min_batch_h t ns gen (scan_slots_h t ns gen count) (retries - 1)
    end

  (* Hardened combine, holding tenure [gen].  Publishes the in-flight
     descriptor before touching any scratch, commits the reservation with
     an ownership-guarded CAS (the descriptor's [inflight_start] is
     stored in the same atomic region as a successful commit), fills with
     poison-respecting CASes and finishes under the writer lock.  Always
     consumes the tenure: unlocks on completion, and on dispossession the
     stealer has already recovered — everything past the commit is
     idempotent.  Never returns its own response; the caller re-reads its
     slot. *)
  let combine_h t ns gen (lv : Config.liveness) =
    if Nr_obs.Sink.tracing () then
      Nr_obs.Sink.span_begin ~tid:(R.tid ()) ~node:ns.node ~cat:"nr" "combine";
    ns.inflight_gen <- gen;
    ns.inflight_state <- if_filling;
    ns.inflight_start <- -1;
    ns.inflight_n <- 0;
    ns.inflight_applied <- 0;
    let n =
      min_batch_h t ns gen (scan_slots_h t ns gen 0) t.cfg.min_batch_retries
    in
    if n <= 0 then begin
      (* dispossessed ([-1]) or nothing to combine: retire the tenure if
         it is still ours (plain check-and-store, atomic in the model) *)
      if n = 0 && ns.inflight_gen = gen then begin
        ns.inflight_state <- if_idle;
        ns.inflight_gen <- 0;
        ignore (Spin.unlock ns.combiner_lock ~gen)
      end;
      if Nr_obs.Sink.tracing () then
        Nr_obs.Sink.span_end ~tid:(R.tid ()) ~node:ns.node ~cat:"nr"
          ~arg:(max n 0) "combine"
    end
    else begin
      Stats.record_batch ns.stats n;
      ns.inflight_n <- n;
      let full_rounds = ref 0 in
      let on_full () =
        incr full_rounds;
        help_advance_h t ns ~patience:lv.Config.hole_patience
          ~steal_laggards:(!full_rounds >= lv.Config.full_patience);
        if !full_rounds >= lv.Config.full_patience then full_rounds := 0;
        true
      in
      let guard () = Spin.peek_gen ns.combiner_lock = gen in
      let start = Log.reserve_guarded t.log n ~guard ~on_full in
      if start >= 0 then begin
        (* no suspension point since the commit: publishing [start] here
           is atomic with the reservation *)
        ns.inflight_start <- start;
        for k = 0 to n - 1 do
          match ns.batch_ops.(k) with
          | Some op ->
              ignore
                (Log.fill_checked t.log (start + k) ~op ~origin_node:ns.node
                   ~origin_slot:ns.batch_slots.(k))
          | None -> ()
        done;
        if Nr_obs.Sink.tracing () then
          Nr_obs.Sink.instant ~tid:(R.tid ()) ~node:ns.node ~cat:"nr" ~arg:n
            "append";
        if not t.cfg.parallel_replica_update then
          while Log.completed t.log < start do
            R.yield ()
          done;
        finish_batch t ns ~gen ~patience:lv.Config.hole_patience;
        ignore (Spin.unlock ns.combiner_lock ~gen)
      end;
      (* [start < 0]: the tenure was stolen mid-wait — the stealer owns
         descriptor and lock now; nothing to undo, nothing to unlock *)
      if Nr_obs.Sink.tracing () then
        Nr_obs.Sink.span_end ~tid:(R.tid ()) ~node:ns.node ~cat:"nr" ~arg:n
          "combine"
    end

  (* Hardened update wait loop: track the lock tenure; a tenure that
     stays unchanged across [slot_patience] backoff rounds without
     serving us is presumed stuck and stolen.  On becoming combiner
     (acquire or steal) we first [recover] the predecessor's batch — only
     after that settles is "no response and no pending request" proof
     that our operation will never be applied, making the repost safe. *)
  let rec update_wait t ns slot op lv b rounds last_gen =
    match R.read slot.response with
    | Some r -> r
    | None ->
        let g = Spin.read_gen ns.combiner_lock in
        if g land 1 = 0 then begin
          let gen = Spin.try_lock ns.combiner_lock in
          if gen <> 0 then become_combiner t ns slot op lv b gen
          else update_wait t ns slot op lv b rounds last_gen
        end
        else if g <> last_gen then begin
          (* new tenure: it may serve us — restart the patience window *)
          Backoff.reset b;
          Backoff.once b;
          update_wait t ns slot op lv b 0 g
        end
        else if rounds >= lv.Config.slot_patience then begin
          let gen = Spin.steal ns.combiner_lock ~gen:g in
          if gen <> 0 then begin
            ns.stats.Stats.combiner_steals <-
              ns.stats.Stats.combiner_steals + 1;
            if Nr_obs.Sink.tracing () then
              Nr_obs.Sink.instant ~tid:(R.tid ()) ~node:ns.node ~cat:"nr"
                ~arg:Nr_obs.Sink.no_arg "combiner_steal";
            become_combiner t ns slot op lv b gen
          end
          else update_wait t ns slot op lv b 0 last_gen
        end
        else begin
          Backoff.once b;
          update_wait t ns slot op lv b (rounds + 1) last_gen
        end

  and become_combiner t ns slot op lv b gen =
    recover t ns ~patience:lv.Config.hole_patience;
    match R.read slot.response with
    | Some r ->
        ignore (Spin.unlock ns.combiner_lock ~gen);
        r
    | None ->
        if R.read slot.request = None then begin
          (* our request was drained but, post-recovery, neither applied
             nor pending: its entry was poisoned or its batch abandoned
             pre-commit.  Re-submit under a fresh incarnation. *)
          ns.stats.Stats.reposts <- ns.stats.Stats.reposts + 1;
          if Nr_obs.Sink.tracing () then
            Nr_obs.Sink.instant ~tid:(R.tid ()) ~node:ns.node ~cat:"nr"
              ~arg:Nr_obs.Sink.no_arg "repost";
          slot.seq <- slot.seq + 1;
          R.write slot.request (Some op)
        end;
        combine_h t ns gen lv;
        Backoff.reset b;
        update_wait t ns slot op lv b 0 0

  let execute_update_h t ns my_idx op lv =
    ns.stats.Stats.updates <- ns.stats.Stats.updates + 1;
    let slot = ns.slots.(my_idx) in
    slot.seq <- slot.seq + 1;
    R.write slot.response None;
    R.write slot.request (Some op);
    update_wait t ns slot op lv (Backoff.create ()) 0 0

  (* Ablation #1: no flat combining — each thread appends its own operation
     and applies the log itself under the writer lock.  Entries carry their
     origin so whichever same-node thread replays an entry first posts the
     response to its owner. *)
  let execute_update_nofc t ns my_idx op =
    ns.stats.Stats.updates <- ns.stats.Stats.updates + 1;
    let slot = ns.slots.(my_idx) in
    R.write slot.response None;
    let start =
      Log.append1 t.log op ~origin_node:ns.node ~origin_slot:my_idx
        ~on_full:ns.on_full_helper
    in
    if Nr_obs.Sink.tracing () then
      Nr_obs.Sink.instant ~tid:(R.tid ()) ~node:ns.node ~cat:"nr" ~arg:1
        "append";
    acquire_write t ns ~combiner:false;
    ignore (replay t ns ~upto:(start + 1) ~wait_holes:true);
    Log.advance_completed t.log (start + 1);
    release_write t ns ~combiner:false;
    let rec take () =
      match R.read slot.response with
      | Some r -> r
      | None ->
          R.yield ();
          take ()
    in
    take ()

  (* {2 Read-only operations (§5.3, §5.4)} *)

  (* The log position a read must observe: [completed] with the read
     optimization (#2), the raw tail without it.  The stale-reads
     mutation pretends the replica is always fresh enough. *)
  let read_target t =
    match t.cfg.mutation with
    | Some Config.Stale_reads -> 0
    | Some Config.Router_bypass | Some Config.Skip_read_validate | None ->
        if t.cfg.read_optimization then Log.completed t.log
        else Log.tail t.log

  (* The slot path body, shared by the legacy entry point and the
     optimistic path's fallback (which has already counted the read). *)
  let execute_read_slow t ns my_idx op =
    let read_tail = read_target t in
    while Log.local_tail t.log ns.node < read_tail do
      (* If a combiner is active it will refresh the replica; otherwise we
         take the writer lock and refresh it ourselves. *)
      if clock_locked ns then R.yield ()
      else begin
        ns.stats.Stats.reader_refreshes <- ns.stats.Stats.reader_refreshes + 1;
        if Nr_obs.Sink.tracing () then
          Nr_obs.Sink.instant ~tid:(R.tid ()) ~node:ns.node ~cat:"nr"
            ~arg:Nr_obs.Sink.no_arg "reader_refresh";
        acquire_write t ns ~combiner:false;
        if Log.local_tail t.log ns.node < read_tail then
          ignore (replay t ns ~upto:read_tail ~wait_holes:false);
        release_write t ns ~combiner:false
      end
    done;
    acquire_read t ns my_idx;
    let r = apply ns op in
    release_read t ns my_idx;
    r

  let execute_read t ns my_idx op =
    ns.stats.Stats.reads <- ns.stats.Stats.reads + 1;
    execute_read_slow t ns my_idx op

  (* Hardened read: like [execute_read], but the refresh wait tracks the
     combiner-lock tenure — a tenure that stays unchanged across
     [slot_patience] backoff rounds while the replica lags is presumed
     stuck, stolen, and its batch recovered; and self-refreshes poison
     holes after [hole_patience], so a lone surviving reader still gets a
     fresh replica when every writer on the node is dead. *)
  let execute_read_slow_h t ns my_idx op (lv : Config.liveness) =
    let read_tail = read_target t in
    let b = Backoff.create () in
    let rec wait rounds last_gen =
      if Log.local_tail t.log ns.node < read_tail then begin
        let g = Spin.read_gen ns.combiner_lock in
        if g land 1 = 0 then begin
          ns.stats.Stats.reader_refreshes <-
            ns.stats.Stats.reader_refreshes + 1;
          if Nr_obs.Sink.tracing () then
            Nr_obs.Sink.instant ~tid:(R.tid ()) ~node:ns.node ~cat:"nr"
              ~arg:Nr_obs.Sink.no_arg "reader_refresh";
          acquire_write t ns ~combiner:false;
          if Log.local_tail t.log ns.node < read_tail then
            ignore
              (replay_h t ns ~upto:read_tail
                 ~patience:lv.Config.hole_patience);
          release_write t ns ~combiner:false;
          wait rounds last_gen
        end
        else if g <> last_gen then begin
          Backoff.reset b;
          Backoff.once b;
          wait 0 g
        end
        else if rounds >= lv.Config.slot_patience then begin
          let gen = Spin.steal ns.combiner_lock ~gen:g in
          if gen <> 0 then begin
            ns.stats.Stats.combiner_steals <-
              ns.stats.Stats.combiner_steals + 1;
            if Nr_obs.Sink.tracing () then
              Nr_obs.Sink.instant ~tid:(R.tid ()) ~node:ns.node ~cat:"nr"
                ~arg:Nr_obs.Sink.no_arg "combiner_steal";
            recover t ns ~patience:lv.Config.hole_patience;
            ignore (Spin.unlock ns.combiner_lock ~gen)
          end;
          Backoff.reset b;
          wait 0 0
        end
        else begin
          Backoff.once b;
          wait (rounds + 1) last_gen
        end
      end
    in
    wait 0 0;
    acquire_read t ns my_idx;
    let r = apply ns op in
    release_read t ns my_idx;
    r

  let execute_read_h t ns my_idx op lv =
    ns.stats.Stats.reads <- ns.stats.Stats.reads + 1;
    execute_read_slow_h t ns my_idx op lv

  (* {2 Optimistic local reads (seqlock fast path)}

     With [Config.optimistic_reads] a read first tries to run against the
     local replica {e without} acquiring a reader slot, validated by the
     per-replica seqlock stamp:

     - read the stamp [s1]; an odd value means a writer section is open,
       so back off and retry;
     - run the read-only operation directly on the replica (no lock);
     - check freshness: the replica's [local_tail] must have reached the
       read's target position.  This check deliberately happens {e after}
       the unlocked read — sound because of the next step;
     - re-read the stamp: if it still equals [s1], no writer section
       opened anywhere in the span, so the replica (and [local_tail],
       which only moves inside writer sections) were constant across it,
       and the freshness observed mid-span vouches for the very state the
       read saw.  A changed stamp invalidates the attempt: retry.

     Stale replica (freshness fails on a quiet replica) or exhausted
     retries fall back to the slot path, which refreshes as usual.  The
     retry budget is [Config.read_patience] when set — the same knob that
     caps the rwlock reader backoff — else [default_opt_retries].

     The [Skip_read_validate] mutation omits the final stamp re-check,
     re-introducing the torn-read window this protocol exists to close;
     [bin/lincheck] demonstrates the resulting violations. *)

  let default_opt_retries = 3

  let rec opt_attempt t ns op ~read_tail ~skip_validate retries_left =
    let s1 = R.read ns.stamp in
    if s1 land 1 = 1 && not skip_validate then
      opt_retry t ns op ~read_tail ~skip_validate retries_left
    else
      let r = apply ns op in
      if Log.local_tail t.log ns.node < read_tail then
        (* Replica genuinely stale (or torn): let the slot path refresh. *)
        None
      else if skip_validate || R.read ns.stamp = s1 then begin
        ns.stats.Stats.opt_reads <- ns.stats.Stats.opt_reads + 1;
        Some r
      end
      else opt_retry t ns op ~read_tail ~skip_validate retries_left

  and opt_retry t ns op ~read_tail ~skip_validate retries_left =
    if retries_left <= 0 then None
    else begin
      ns.stats.Stats.opt_retries <- ns.stats.Stats.opt_retries + 1;
      R.yield ();
      opt_attempt t ns op ~read_tail ~skip_validate (retries_left - 1)
    end

  let opt_config t =
    let skip_validate = t.cfg.mutation = Some Config.Skip_read_validate in
    let retries =
      match t.cfg.read_patience with
      | Some p -> p
      | None -> default_opt_retries
    in
    (skip_validate, retries)

  let execute_read_opt t ns my_idx op =
    ns.stats.Stats.reads <- ns.stats.Stats.reads + 1;
    let read_tail = read_target t in
    let skip_validate, retries = opt_config t in
    match opt_attempt t ns op ~read_tail ~skip_validate retries with
    | Some r -> r
    | None ->
        ns.stats.Stats.opt_fallbacks <- ns.stats.Stats.opt_fallbacks + 1;
        execute_read_slow t ns my_idx op

  let execute_read_opt_h t ns my_idx op lv =
    ns.stats.Stats.reads <- ns.stats.Stats.reads + 1;
    let read_tail = read_target t in
    let skip_validate, retries = opt_config t in
    match opt_attempt t ns op ~read_tail ~skip_validate retries with
    | Some r -> r
    | None ->
        ns.stats.Stats.opt_fallbacks <- ns.stats.Stats.opt_fallbacks + 1;
        execute_read_slow_h t ns my_idx op lv

  (* {2 The concurrent entry point (paper's ExecuteConcurrent)} *)

  let execute t op =
    let node = R.my_node () in
    let ns = t.node_states.(node) in
    let my_idx = R.tid () mod R.threads_per_node () in
    match t.cfg.liveness with
    | None ->
        if Seq.is_read_only op then
          if t.cfg.optimistic_reads then execute_read_opt t ns my_idx op
          else execute_read t ns my_idx op
        else if t.cfg.flat_combining then execute_update t ns my_idx op
        else execute_update_nofc t ns my_idx op
    | Some lv ->
        (* [Config.validate] guarantees flat combining in liveness mode *)
        if Seq.is_read_only op then
          if t.cfg.optimistic_reads then execute_read_opt_h t ns my_idx op lv
          else execute_read_h t ns my_idx op lv
        else execute_update_h t ns my_idx op lv

  (* {2 Dedicated combiner support (§4, optional optimization)}

     A dedicated per-node refresher thread can keep a replica fresh even
     when its node executes no operations, bounding read latency and
     preventing an idle node from holding the log back.  Spawn one thread
     per node (with a tid placed on that node) running
     [run_dedicated_combiner] — or call [refresh_local] at any cadence. *)

  (* Bring the calling thread's node up to [completed] if it lags. *)
  let refresh_local t =
    let ns = t.node_states.(R.my_node ()) in
    if Log.local_tail t.log ns.node < Log.completed t.log then
      match t.cfg.liveness with
      | None -> refresh t ns ~combiner:false
      | Some _ ->
          (* [completed] implies everything below is resolved, so no
             patience is needed — stop at the first (impossible) hole *)
          acquire_write t ns ~combiner:false;
          ignore
            (replay_h t ns ~upto:(Log.completed t.log) ~patience:(-1));
          release_write t ns ~combiner:false

  (* Loop refreshing the local replica until [stop] returns true. *)
  let run_dedicated_combiner t ~stop =
    while not (stop ()) do
      refresh_local t;
      R.yield ()
    done

  (* {2 Introspection} *)

  let config t = t.cfg
  let num_replicas t = Array.length t.node_states
  let log_tail t = Log.tail t.log
  let completed t = Log.completed t.log
  let local_tail t node = Log.local_tail t.log node

  let stats t =
    let acc = Stats.create () in
    Array.iter
      (fun ns ->
        Stats.add acc ns.stats;
        merge_cna_stats acc ns)
      t.node_states;
    acc

  (** Quiescent-only introspection, for tests and memory accounting. *)
  module Unsafe = struct
    let replica t node = t.node_states.(node).replica

    (* Post-mortem completion of batches whose combiner (and every would-be
       stealer) died: quiescence means dead lock holders never resume, so
       the work happens without taking any lock.  Entries of every
       in-flight range are resolved first — afterwards no hole can remain
       below any batch start, since in liveness mode every committed range
       has a descriptor — then each batch is finished exactly like
       [finish_batch] minus delivery. *)
    let finish_inflight t =
      Array.iter
        (fun ns ->
          if ns.inflight_state <> if_idle && ns.inflight_start >= 0 then
            for k = 0 to ns.inflight_n - 1 do
              match ns.batch_ops.(k) with
              | Some op ->
                  ignore
                    (Log.fill_checked t.log (ns.inflight_start + k) ~op
                       ~origin_node:ns.node ~origin_slot:ns.batch_slots.(k))
              | None -> ()
            done)
        t.node_states;
      Array.iter
        (fun ns ->
          if ns.inflight_state <> if_idle then begin
            (if ns.inflight_start >= 0 then begin
               let start = ns.inflight_start and n = ns.inflight_n in
               ignore (replay_h t ns ~upto:start ~patience:0);
               for k = ns.inflight_applied to n - 1 do
                 (match ns.batch_ops.(k) with
                 | Some op ->
                     if not (Log.is_poisoned t.log (start + k)) then
                       ignore (apply ns op)
                 | None -> ());
                 ns.inflight_applied <- k + 1
               done;
               Log.set_local_tail t.log ns.node (start + n);
               Log.advance_completed t.log (start + n)
             end);
            ns.inflight_state <- if_idle;
            ns.inflight_gen <- 0
          end)
        t.node_states

    (* Bring every replica up to [completed].  Must be called from a
       runtime thread while no other operations are in flight.  In
       liveness mode this first finishes any batch stranded by a dead
       combiner, so replicas end on a clean log-prefix state. *)
    let sync t =
      (match t.cfg.liveness with Some _ -> finish_inflight t | None -> ());
      Array.iter
        (fun ns ->
          match t.cfg.liveness with
          | None ->
              ignore
                (replay t ns ~upto:(Log.completed t.log) ~wait_holes:false)
          | Some _ ->
              ignore
                (replay_h t ns ~upto:(Log.completed t.log) ~patience:(-1)))
        t.node_states

    (* Read the resident ops in [lo, hi), oldest first; [None] marks a
       poisoned (or concurrently recycled) entry. *)
    let read_ops t lo hi =
      List.init (hi - lo) (fun k ->
          match Log.get t.log (lo + k) with
          | Some e -> Some e.Log.op
          | None -> None)

    (* The still-resident completed suffix of the log, oldest first, with
       an explicit count of entries already recycled out from under it.
       [None] elements are poisoned entries (hardened mode; never
       observed with [liveness = None]). *)
    let log_entries ?upto t =
      let upto =
        match upto with Some u -> u | None -> Log.completed t.log
      in
      let wrapped = max 0 (upto - Log.size t.log) in
      (read_ops t wrapped upto, wrapped)

    (* Monotonic cursor over the completed prefix: the shared tap the AOF
       writer and the follower shipper advance instead of re-scanning from
       the head.  The lap check brackets the read — entries the appenders
       recycled mid-read would surface as [None], so the tail is re-read
       afterwards and the whole batch rejected if the cursor was overrun. *)
    let log_tap ?upto t ~from =
      let upto =
        match upto with Some u -> u | None -> Log.completed t.log
      in
      let oldest = max 0 (Log.tail t.log - Log.size t.log) in
      if from < oldest then Error oldest
      else begin
        let ops = read_ops t from upto in
        let oldest' = max 0 (Log.tail t.log - Log.size t.log) in
        if from < oldest' then Error oldest' else Ok ops
      end
  end
end

(** Baseline [NA]: a NUMA-aware stack in the style of Calciu, Gottschlich &
    Herlihy [17] — per-node {e two-sided} elimination in front of a
    delegated global stack.

    Both sides advertise: a pusher first tries to satisfy a waiting popper
    ([Want] slot), else publishes its value ([Offer]) and waits; a popper
    first tries to claim a published value, else advertises [Want] and
    waits to be handed one ([Given]).  A matched pair completes entirely
    inside one node — no global synchronization at all — which is what lets
    the NA stack keep scaling where every other method (including NR) pays
    cross-node traffic.  Unmatched operations are delegated: a per-node
    lock funnels them to the shared Treiber stack so at most one thread per
    node competes on the global top pointer.

    Elimination is linearizable for stacks: a push immediately followed by
    the pop that consumed it can linearize back-to-back at the moment of
    the exchange. *)

module Make (R : Nr_runtime.Runtime_intf.S) = struct
  module Treiber = Lf_stack.Make (R)
  module Spin = Nr_sync.Spinlock.Make (R)

  type 'v slot_state =
    | Nothing
    | Offer of 'v  (** a pusher waits with this value *)
    | Taken  (** a popper consumed the offer *)
    | Want  (** a popper waits for a value *)
    | Given of 'v  (** a pusher fulfilled the want *)

  type stats = {
    mutable push_eliminated : int;
    mutable push_global : int;
    mutable pop_eliminated : int;
    mutable pop_global : int;
  }

  type 'v t = {
    global : 'v Treiber.t;
    delegate : Spin.t array;
    elim : 'v slot_state R.cell array array;  (** [node][slot] *)
    window : int;  (** yields a waiter spends before giving up *)
    rounds : int;  (** advertise/wait attempts before going global *)
    stats : stats;  (** approximate on real domains; exact in the sim *)
  }

  let create ?(home = 0) ?(window = 64) ?(rounds = 6) () =
    let nodes = R.num_nodes () in
    let spn = R.threads_per_node () in
    {
      global = Treiber.create ~home ();
      delegate = Array.init nodes (fun node -> Spin.create ~home:node ());
      elim =
        Array.init nodes (fun node ->
            Array.init spn (fun _ -> R.cell ~home:node Nothing));
      window;
      rounds;
      stats =
        {
          push_eliminated = 0;
          push_global = 0;
          pop_eliminated = 0;
          pop_global = 0;
        };
    }

  let my_slot t =
    let node = R.my_node () in
    (t.elim.(node), R.tid () mod R.threads_per_node ())

  let global_push t v =
    let lock = t.delegate.(R.my_node ()) in
    Spin.lock lock;
    Treiber.push t.global v;
    Spin.unlock lock;
    t.stats.push_global <- t.stats.push_global + 1

  let global_pop t =
    let lock = t.delegate.(R.my_node ()) in
    Spin.lock lock;
    let r = Treiber.pop t.global in
    Spin.unlock lock;
    t.stats.pop_global <- t.stats.pop_global + 1;
    r

  let push t value =
    let slots, idx = my_slot t in
    let n = Array.length slots in
    let rec round r =
      if r >= t.rounds then global_push t value
      else begin
        (* fast path: hand the value to a waiting popper anywhere on the
           node (slot scan overlaps like a hardware-prefetched sweep) *)
        let rec serve k states =
          if k >= n then advertise ()
          else begin
            let j = (idx + k) mod n in
            match states.(j) with
            | Want ->
                if R.cas slots.(j) Want (Given value) then
                  t.stats.push_eliminated <- t.stats.push_eliminated + 1
                else serve (k + 1) states
            | Nothing | Offer _ | Taken | Given _ -> serve (k + 1) states
          end
        and advertise () =
          let cell = slots.(idx) in
          let offer = Offer value in
          R.write cell offer;
          let taken = ref false in
          let i = ref 0 in
          while (not !taken) && !i < t.window do
            incr i;
            if R.read cell == Taken then taken := true else R.yield ()
          done;
          if !taken then begin
            t.stats.push_eliminated <- t.stats.push_eliminated + 1;
            R.write cell Nothing
          end
          else if R.cas cell offer Nothing then round (r + 1)
          else begin
            (* claimed between the last check and the CAS *)
            while R.read cell != Taken do
              R.yield ()
            done;
            t.stats.push_eliminated <- t.stats.push_eliminated + 1;
            R.write cell Nothing
          end
        in
        serve 0 (R.read_all slots)
      end
    in
    round 0

  let pop t =
    let slots, idx = my_slot t in
    let n = Array.length slots in
    let rec round r =
      if r >= t.rounds then global_pop t
      else begin
        (* fast path: claim a published offer anywhere on the node *)
        let rec claim k states =
          if k >= n then advertise ()
          else begin
            let j = (idx + k) mod n in
            match states.(j) with
            | Offer v as offer ->
                if R.cas slots.(j) offer Taken then begin
                  t.stats.pop_eliminated <- t.stats.pop_eliminated + 1;
                  Some v
                end
                else claim (k + 1) states
            | Nothing | Want | Taken | Given _ -> claim (k + 1) states
          end
        and advertise () =
          let cell = slots.(idx) in
          R.write cell Want;
          let got = ref None in
          let i = ref 0 in
          while !got = None && !i < t.window do
            incr i;
            (match R.read cell with
            | Given v -> got := Some v
            | Nothing | Offer _ | Taken | Want -> R.yield ())
          done;
          match !got with
          | Some v ->
              t.stats.pop_eliminated <- t.stats.pop_eliminated + 1;
              R.write cell Nothing;
              Some v
          | None ->
              if R.cas cell Want Nothing then round (r + 1)
              else begin
                (* a pusher fulfilled us between the check and the CAS *)
                let rec take () =
                  match R.read cell with
                  | Given v ->
                      t.stats.pop_eliminated <- t.stats.pop_eliminated + 1;
                      R.write cell Nothing;
                      Some v
                  | Nothing | Offer _ | Taken | Want ->
                      R.yield ();
                      take ()
                in
                take ()
              end
        in
        claim 0 (R.read_all slots)
      end
    in
    round 0

  let length t = Treiber.length t.global
end

(** Baseline [LF] for the dictionary: the lock-free skip list of Herlihy &
    Shavit [37, ch. 14], built from CAS on marked successor records.

    Each next-pointer cell holds an immutable [(successor, marked)] record;
    marking a node's successors logically deletes it, and traversals snip
    marked nodes as they pass.  CAS compares records physically, so every
    state change allocates a fresh record — the OCaml analogue of
    [AtomicMarkableReference], with the GC standing in for safe memory
    reclamation (the paper's LF numbers also omit reclamation costs).

    Tower heights derive deterministically from the key so that concurrent
    threads need no shared PRNG. *)

module Make (R : Nr_runtime.Runtime_intf.S) = struct
  module Backoff = Nr_sync.Backoff.Make (R)

  let max_level = 20

  type node = {
    key : int;
    value : int;
    level : int;
    next : succ R.cell array;
  }

  and succ = { n : node; marked : bool }

  type t = { head : node; tail : node }

  let level_of_key key =
    (* geometric(1/4) from a hash of the key *)
    let z = ref ((key * 0x9E3779B9) + 0x7F4A7C15) in
    z := (!z lxor (!z lsr 30)) * 0x2545F4914F6CDD1D;
    let h = ref (!z lxor (!z lsr 27)) in
    let lvl = ref 1 in
    while !lvl < max_level && !h land 3 = 0 do
      incr lvl;
      h := !h lsr 2
    done;
    !lvl

  let create ?(home = 0) () =
    (* the tail's own next pointers are never followed: every traversal
       stops on reaching the tail *)
    let tail = { key = max_int; value = 0; level = max_level; next = [||] } in
    let head =
      {
        key = min_int;
        value = 0;
        level = max_level;
        next =
          Array.init max_level (fun _ -> R.cell ~home { n = tail; marked = false });
      }
    in
    { head; tail }

  (* Herlihy-Shavit [find]: locate the window for [key] on every level,
     snipping marked nodes on the way.  Returns the predecessor nodes and
     the exact successor records read from them (needed for physical CAS),
     plus whether the key is present at the bottom level. *)
  exception Retry

  let find t key preds succ_records =
    let rec attempt () =
      try
        let pred = ref t.head in
        for lvl = max_level - 1 downto 0 do
          let curr = ref (R.read !pred.next.(lvl)) in
          let rec advance () =
            (* the record we hold is [pred]'s outgoing pointer: if it is
               marked, [pred] itself was deleted under us, and a snip CAS
               expecting this record would overwrite the mark — silently
               resurrecting a removed node.  (The original algorithm's
               AtomicMarkableReference CAS fails here because it expects
               mark = false.)  Restart instead. *)
            if (!curr).marked then raise Retry;
            let c = (!curr).n in
            if c == t.tail then ()
            else begin
              let s = R.read c.next.(lvl) in
              if s.marked then begin
                (* [c] is logically deleted: snip it out *)
                let repl = { n = s.n; marked = false } in
                if R.cas !pred.next.(lvl) !curr repl then begin
                  curr := repl;
                  advance ()
                end
                else begin
                  (* someone else changed the window: re-read; only a
                     marked predecessor forces a restart *)
                  let fresh = R.read !pred.next.(lvl) in
                  if fresh.marked then raise Retry
                  else begin
                    curr := fresh;
                    advance ()
                  end
                end
              end
              else if c.key < key then begin
                pred := c;
                curr := s;
                advance ()
              end
            end
          in
          advance ();
          preds.(lvl) <- !pred;
          succ_records.(lvl) <- !curr
        done;
        let bottom = succ_records.(0).n in
        bottom != t.tail && bottom.key = key
      with Retry -> attempt ()
    in
    attempt ()

  let find_node t key =
    (* wait-free traversal, no snipping (Herlihy-Shavit [contains]) *)
    let pred = ref t.head in
    let curr = ref t.head in
    for lvl = max_level - 1 downto 0 do
      curr := (R.read !pred.next.(lvl)).n;
      let rec advance () =
        if !curr == t.tail then ()
        else begin
          let s = R.read !curr.next.(lvl) in
          if s.marked then begin
            curr := s.n;
            advance ()
          end
          else if !curr.key < key then begin
            pred := !curr;
            curr := s.n;
            advance ()
          end
        end
      in
      advance ()
    done;
    if !curr != t.tail && !curr.key = key then Some !curr else None

  let mem t key = find_node t key <> None

  let get t key =
    match find_node t key with Some n -> Some n.value | None -> None

  let add t key value =
    if key = min_int || key = max_int then
      invalid_arg "Lf_skiplist.add: reserved sentinel key";
    let preds = Array.make max_level t.head in
    let succs = Array.make max_level (R.read t.head.next.(0)) in
    let rec loop () =
      if find t key preds succs then false
      else begin
        let level = level_of_key key in
        let node =
          {
            key;
            value;
            level;
            next =
              Array.init level (fun lvl ->
                  R.cell { n = succs.(lvl).n; marked = false });
          }
        in
        let expected = succs.(0) in
        if not (R.cas preds.(0).next.(0) expected { n = node; marked = false })
        then loop ()
        else begin
          (* link the upper levels; find () refreshes the window on
             failure and also heals anything a concurrent remove did *)
          for lvl = 1 to level - 1 do
            let rec link () =
              if
                R.cas preds.(lvl).next.(lvl) succs.(lvl)
                  { n = node; marked = false }
              then ()
              else begin
                ignore (find t key preds succs);
                link ()
              end
            in
            link ()
          done;
          true
        end
      end
    in
    loop ()

  let remove t key =
    let preds = Array.make max_level t.head in
    let succs = Array.make max_level (R.read t.head.next.(0)) in
    if not (find t key preds succs) then None
    else begin
      let node = succs.(0).n in
      (* mark the upper levels top-down *)
      for lvl = node.level - 1 downto 1 do
        let rec mark () =
          let s = R.read node.next.(lvl) in
          if not s.marked then
            if R.cas node.next.(lvl) s { n = s.n; marked = true } then ()
            else mark ()
        in
        mark ()
      done;
      (* the bottom-level mark is the linearization point; only the thread
         whose CAS succeeds returns the value *)
      let rec mark_bottom () =
        let s = R.read node.next.(0) in
        if s.marked then None
        else if R.cas node.next.(0) s { n = s.n; marked = true } then begin
          (* physically unlink via find *)
          ignore (find t key preds succs);
          Some node.value
        end
        else mark_bottom ()
      in
      mark_bottom ()
    end

  (* Lotan-Shavit deleteMin: walk the bottom level past logically-deleted
     nodes and win (mark) the first live one.  Physical cleanup is
     amortized, as practical implementations do: most removals just grow
     the marked prefix (snipped wholesale once long enough), and every
     [cleanup_period]-th removal pays for a full [find]-based unlink that
     restructures the head towers — the head-area contention the paper's
     evaluation revolves around. *)
  let prefix_snip_threshold = 16
  let cleanup_period = 2

  let remove_min t =
    let b = Backoff.create ~max_exp:8 () in
    let head_rec = R.read t.head.next.(0) in
    let rec walk curr prefix_len =
      if curr == t.tail then None
      else begin
        let s = R.read curr.next.(0) in
        if s.marked then walk s.n (prefix_len + 1)
        else if R.cas curr.next.(0) s { n = s.n; marked = true } then begin
          (* we own [curr]: mark its upper levels so traversals skip it *)
          for lvl = curr.level - 1 downto 1 do
            let rec mark () =
              let su = R.read curr.next.(lvl) in
              if not su.marked then
                if R.cas curr.next.(lvl) su { n = su.n; marked = true } then ()
                else mark ()
            in
            mark ()
          done;
          if curr.key land (cleanup_period - 1) = 0 then begin
            (* full physical unlink through the head towers *)
            let preds = Array.make max_level t.head in
            let succs = Array.make max_level head_rec in
            ignore (find t curr.key preds succs)
          end
          else if prefix_len >= prefix_snip_threshold then
            (* unlink the marked prefix in one shot; harmless if the head
               moved meanwhile *)
            ignore
              (R.cas t.head.next.(0) head_rec { n = s.n; marked = false });
          Some (curr.key, curr.value)
        end
        else begin
          (* CAS failure: someone marked or inserted after [curr]; back
             off to thin the herd, then re-read *)
          Backoff.once b;
          walk curr prefix_len
        end
      end
    in
    walk head_rec.n 0

  let min t =
    let rec walk curr =
      if curr == t.tail then None
      else begin
        let s = R.read curr.next.(0) in
        if s.marked then walk s.n else Some (curr.key, curr.value)
      end
    in
    walk (R.read t.head.next.(0)).n

  (* Quiescent-only helpers for tests. *)
  let to_list t =
    let rec go acc node =
      if node == t.tail then List.rev acc
      else begin
        let s = R.read node.next.(0) in
        let acc = if s.marked then acc else (node.key, node.value) :: acc in
        go acc s.n
      end
    in
    go [] (R.read t.head.next.(0)).n

  let length t = List.length (to_list t)
end

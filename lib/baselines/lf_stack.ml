(** Baseline [LF] for the stack: Treiber's lock-free stack [61] with
    exponential backoff.  Memory reclamation is the garbage collector's
    job, which matches the paper's optimistic treatment of LF baselines
    (they run without hazard pointers / epochs too). *)

module Make (R : Nr_runtime.Runtime_intf.S) = struct
  module Backoff = Nr_sync.Backoff.Make (R)

  type 'v node = { value : 'v; next : 'v node option }
  type 'v t = { top : 'v node option R.cell }

  let create ?(home = 0) () = { top = R.cell ~home None }

  let push t value =
    let b = Backoff.create () in
    let rec loop () =
      let cur = R.read t.top in
      if R.cas t.top cur (Some { value; next = cur }) then ()
      else begin
        Backoff.once b;
        loop ()
      end
    in
    loop ()

  let pop t =
    let b = Backoff.create () in
    let rec loop () =
      match R.read t.top with
      | None -> None
      | Some n as cur ->
          if R.cas t.top cur n.next then Some n.value
          else begin
            Backoff.once b;
            loop ()
          end
    in
    loop ()

  let peek t = match R.read t.top with Some n -> Some n.value | None -> None

  let length t =
    (* O(n); quiescent use only *)
    let rec go acc = function
      | None -> acc
      | Some n -> go (acc + 1) n.next
    in
    go 0 (R.read t.top)
end

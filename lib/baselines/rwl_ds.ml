(** Baseline [RWL] (paper fig. 4): one big readers-writer lock.  Reads run
    in parallel; updates serialize.  Uses the same distributed
    readers-writer lock as NR (§5.5), as the paper does, so the comparison
    isolates NR's replication and log rather than lock quality. *)

module Make (R : Nr_runtime.Runtime_intf.S) (Seq : Nr_core.Ds_intf.S) =
struct
  module Rw = Nr_sync.Rwlock_dist.Make (R)

  type t = { ds : Seq.t; reg : R.region; rw : Rw.t }

  let create ?(home = 0) factory =
    let ds = factory () in
    {
      ds;
      reg = R.region ~home ~lines:(max 1 (Seq.lines ds)) ();
      rw = Rw.create ~home ~readers:(R.max_threads ()) ();
    }

  let execute t op =
    if Seq.is_read_only op then begin
      let slot = R.tid () in
      Rw.read_lock t.rw slot;
      R.touch_region t.reg (Seq.footprint t.ds op);
      let r = Seq.execute t.ds op in
      Rw.read_unlock t.rw slot;
      r
    end
    else begin
      Rw.write_lock t.rw;
      R.touch_region t.reg (Seq.footprint t.ds op);
      let r = Seq.execute t.ds op in
      Rw.write_unlock t.rw;
      r
    end

  let unsafe_ds t = t.ds
end

(** Baselines [FC] and [FC+] (paper fig. 4): flat combining (Hendler et
    al. [30]) over the whole machine — one slot per thread, one combiner
    lock, a single shared structure.  [FC+] additionally serves read-only
    operations through the distributed readers-writer lock instead of the
    combiner.

    NR uses the same combining idea {e per node}; here it is global, which
    is exactly why it stops scaling across node boundaries: every slot scan
    walks cache lines written on every node. *)

module Make (R : Nr_runtime.Runtime_intf.S) (Seq : Nr_core.Ds_intf.S) =
struct
  module Spin = Nr_sync.Spinlock.Make (R)
  module Rw = Nr_sync.Rwlock_dist.Make (R)

  type slot = {
    request : Seq.op option R.cell;
    response : Seq.result option R.cell;
  }

  type t = {
    ds : Seq.t;
    reg : R.region;
    slots : slot array;
    lock : Spin.t;
    rw : Rw.t;
    rw_reads : bool;  (** true = FC+ *)
  }

  (* [slots] is the publication-list length: like the original flat
     combining, only threads that registered appear on the list, so pass
     the number of running threads (defaults to the whole machine). *)
  let create ?(home = 0) ?(rw_reads = false) ?slots factory =
    let ds = factory () in
    let nslots =
      match slots with Some n -> max 1 n | None -> R.max_threads ()
    in
    {
      ds;
      reg = R.region ~home ~lines:(max 1 (Seq.lines ds)) ();
      slots =
        Array.init nslots (fun _ ->
            { request = R.cell ~home None; response = R.cell ~home None });
      lock = Spin.create ~home ();
      rw = Rw.create ~home ~readers:(R.max_threads ()) ();
      rw_reads;
    }

  let apply t op =
    R.touch_region t.reg (Seq.footprint t.ds op);
    Seq.execute t.ds op

  (* Scan the publication slots in NUMA-node order (the paper notes its FC
     performs operations in node order to reduce NUMA traffic; slots are
     laid out tid-major, which is node-major under fill-first placement).
     The canonical flat-combining implementation [30] walks a linked
     publication list, so the scan is a chain of dependent reads — one
     cache-line fetch after another across the whole machine.  This is
     exactly the cost that stops machine-wide FC from scaling past a node,
     and why NR combines per node instead. *)
  let combine t my_idx =
    let own = ref None in
    if t.rw_reads then Rw.write_lock t.rw;
    Array.iteri
      (fun i slot ->
        match R.read slot.request with
        | Some op ->
            R.write slot.request None;
            let res = apply t op in
            if i = my_idx then own := Some res
            else R.write slot.response (Some res)
        | None -> ())
      t.slots;
    if t.rw_reads then Rw.write_unlock t.rw;
    Spin.unlock t.lock;
    !own

  let rec wait_or_combine t my_idx =
    let slot = t.slots.(my_idx) in
    if Spin.try_lock t.lock then
      match R.read slot.response with
      | Some r ->
          Spin.unlock t.lock;
          r
      | None -> (
          match combine t my_idx with
          | Some r -> r
          | None ->
              (* own request must have been in the scan *)
              assert false)
    else
      let rec wait () =
        match R.read slot.response with
        | Some r -> r
        | None ->
            if Spin.locked t.lock then begin
              R.yield ();
              wait ()
            end
            else wait_or_combine t my_idx
      in
      wait ()

  let execute t op =
    if t.rw_reads && Seq.is_read_only op then begin
      let slot = R.tid () in
      Rw.read_lock t.rw slot;
      let r = apply t op in
      Rw.read_unlock t.rw slot;
      r
    end
    else begin
      let my_idx = R.tid () in
      let slot = t.slots.(my_idx) in
      R.write slot.response None;
      R.write slot.request (Some op);
      wait_or_combine t my_idx
    end

  let unsafe_ds t = t.ds
end

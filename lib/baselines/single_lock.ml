(** Baseline [SL] (paper fig. 4): one big spin lock around the sequential
    structure.  Simple, correct, and the usual victim of operation
    contention — every operation serializes, and the lock line ping-pongs
    across nodes. *)

module Make (R : Nr_runtime.Runtime_intf.S) (Seq : Nr_core.Ds_intf.S) =
struct
  module Spin = Nr_sync.Spinlock.Make (R)

  type t = { ds : Seq.t; reg : R.region; lock : Spin.t }

  let create ?(home = 0) factory =
    let ds = factory () in
    {
      ds;
      reg = R.region ~home ~lines:(max 1 (Seq.lines ds)) ();
      lock = Spin.create ~home ();
    }

  let execute t op =
    Spin.lock t.lock;
    R.touch_region t.reg (Seq.footprint t.ds op);
    let r = Seq.execute t.ds op in
    Spin.unlock t.lock;
    r

  (** Quiescent-only access, for tests. *)
  let unsafe_ds t = t.ds
end

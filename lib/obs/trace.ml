(* Per-thread ring-buffer event recorder with a Chrome trace_event
   exporter.

   Each thread id owns a fixed-capacity ring; recording overwrites the
   oldest event when full (drop-oldest), so a trace always holds the most
   recent window of activity and recording never allocates: event records
   are preallocated and mutated in place.

   Timestamps come from the [now] closure supplied at creation — virtual
   cycles under the simulator, monotonic nanoseconds on real domains — so
   the export of a deterministic simulation is byte-identical across runs.
   The exporter maps NUMA nodes to Chrome "processes" and thread ids to
   Chrome "threads", loadable in Perfetto or chrome://tracing. *)

type event = {
  mutable name : string;
  mutable cat : string;
  mutable ph : char; (* 'B' begin | 'E' end | 'i' instant | 'X' complete *)
  mutable ts : int;
  mutable dur : int; (* 'X' events only *)
  mutable pid : int; (* NUMA node *)
  mutable tid : int;
  mutable arg : int; (* no_arg = absent *)
}

let no_arg = min_int

type ring = {
  events : event array;
  mutable next : int; (* next slot to overwrite *)
  mutable recorded : int; (* total events ever recorded *)
}

(* Each thread gets two rings: complete slices ('X' — the scheduler's
   run/spin slices, emitted on every simulated quantum) and discrete
   events (spans and instants — combines, stalls, refreshes, orders of
   magnitude rarer).  Separating them keeps the firehose of scheduler
   slices from evicting the rare events a trace is usually opened for. *)
type t = {
  spans : ring array; (* 'B' / 'E' / 'i', indexed by tid *)
  slices : ring array; (* 'X', indexed by tid *)
  capacity : int;
  now : unit -> int;
}

let fresh_event () =
  { name = ""; cat = ""; ph = 'i'; ts = 0; dur = 0; pid = 0; tid = 0;
    arg = no_arg }

let create ?(capacity = 4096) ~threads ~now () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be > 0";
  if threads <= 0 then invalid_arg "Trace.create: threads must be > 0";
  let rings () =
    Array.init threads (fun _ ->
        { events = Array.init capacity (fun _ -> fresh_event ());
          next = 0; recorded = 0 })
  in
  { spans = rings (); slices = rings (); capacity; now }

let threads t = Array.length t.spans
let now t = t.now ()

let emit t ~tid ~node ~cat ~ph ~ts ~dur ~arg name =
  if tid >= 0 && tid < Array.length t.spans then begin
    let r = if ph = 'X' then t.slices.(tid) else t.spans.(tid) in
    let e = r.events.(r.next) in
    e.name <- name;
    e.cat <- cat;
    e.ph <- ph;
    e.ts <- ts;
    e.dur <- dur;
    e.pid <- node;
    e.tid <- tid;
    e.arg <- arg;
    r.next <- (if r.next + 1 = t.capacity then 0 else r.next + 1);
    r.recorded <- r.recorded + 1
  end

let span_begin t ~tid ~node ~cat name =
  emit t ~tid ~node ~cat ~ph:'B' ~ts:(t.now ()) ~dur:0 ~arg:no_arg name

let span_end t ~tid ~node ~cat ~arg name =
  emit t ~tid ~node ~cat ~ph:'E' ~ts:(t.now ()) ~dur:0 ~arg name

let instant t ~tid ~node ~cat ~arg name =
  emit t ~tid ~node ~cat ~ph:'i' ~ts:(t.now ()) ~dur:0 ~arg name

let slice t ~tid ~node ~cat ~ts ~dur name =
  emit t ~tid ~node ~cat ~ph:'X' ~ts ~dur ~arg:no_arg name

let sum_rings f rings = Array.fold_left (fun acc r -> acc + f r) 0 rings

let recorded t =
  sum_rings (fun r -> r.recorded) t.spans
  + sum_rings (fun r -> r.recorded) t.slices

let dropped t =
  let d r = max 0 (r.recorded - t.capacity) in
  sum_rings d t.spans + sum_rings d t.slices

(* Oldest-to-newest iteration over one ring. *)
let iter_ring t r f =
  let stored = min r.recorded t.capacity in
  let start = if r.recorded <= t.capacity then 0 else r.next in
  for i = 0 to stored - 1 do
    f r.events.((start + i) mod t.capacity)
  done

(* tid order; per tid the discrete events first, then the slices, each
   oldest-to-newest — a fixed order, so exports are deterministic. *)
let iter t f =
  for tid = 0 to Array.length t.spans - 1 do
    iter_ring t t.spans.(tid) f;
    iter_ring t t.slices.(tid) f
  done

(* {2 Chrome trace_event export} *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_event buf sep e =
  Buffer.add_string buf !sep;
  sep := ",\n";
  Buffer.add_string buf "{\"name\":\"";
  escape buf e.name;
  Buffer.add_string buf "\",\"cat\":\"";
  escape buf e.cat;
  Buffer.add_string buf "\",\"ph\":\"";
  Buffer.add_char buf e.ph;
  Buffer.add_string buf "\",\"ts\":";
  Buffer.add_string buf (string_of_int e.ts);
  if e.ph = 'X' then begin
    Buffer.add_string buf ",\"dur\":";
    Buffer.add_string buf (string_of_int e.dur)
  end;
  if e.ph = 'i' then Buffer.add_string buf ",\"s\":\"t\"";
  Buffer.add_string buf ",\"pid\":";
  Buffer.add_string buf (string_of_int e.pid);
  Buffer.add_string buf ",\"tid\":";
  Buffer.add_string buf (string_of_int e.tid);
  if e.arg <> no_arg then begin
    Buffer.add_string buf ",\"args\":{\"v\":";
    Buffer.add_string buf (string_of_int e.arg);
    Buffer.add_string buf "}"
  end;
  Buffer.add_string buf "}"

(* Export is deterministic: process metadata for each NUMA node seen (pid
   ascending), then every ring in tid order, each oldest-to-newest. *)
let to_chrome_buffer t buf =
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\n\"traceEvents\":[\n";
  let sep = ref "" in
  let nodes = Hashtbl.create 8 in
  iter t (fun e ->
      if not (Hashtbl.mem nodes e.pid) then Hashtbl.add nodes e.pid ());
  let pids = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) nodes []) in
  List.iter
    (fun pid ->
      Buffer.add_string buf !sep;
      sep := ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"node %d\"}}"
           pid pid))
    pids;
  iter t (fun e -> add_event buf sep e);
  Buffer.add_string buf "\n]}\n"

let to_chrome_string t =
  let buf = Buffer.create 65536 in
  to_chrome_buffer t buf;
  Buffer.contents buf

let write_chrome t oc = output_string oc (to_chrome_string t)

(* Global observability hooks.

   Instrumented code (the scheduler, the NR combiner, the KV server) calls
   the emitters below unconditionally; each one is a single ref read plus a
   branch when nothing is installed, so instrumentation costs nothing when
   observability is off — and in the simulator it never costs virtual time
   either, because emitters perform no effects.

   The sink is process-global: the driver or binary installs a trace for
   the duration of a run and uninstalls it after.  All emitter arguments
   are plain ints and strings (no options), so a disabled call site does
   not even allocate. *)

let active : Trace.t option ref = ref None
let metrics_flag = ref false

let install_trace t = active := Some t
let uninstall_trace () = active := None
let trace () = !active
let tracing () = !active <> None

let request_metrics b = metrics_flag := b
let metrics_requested () = !metrics_flag

let no_arg = Trace.no_arg

let span_begin ~tid ~node ~cat name =
  match !active with
  | None -> ()
  | Some t -> Trace.span_begin t ~tid ~node ~cat name

let span_end ~tid ~node ~cat ~arg name =
  match !active with
  | None -> ()
  | Some t -> Trace.span_end t ~tid ~node ~cat ~arg name

let instant ~tid ~node ~cat ~arg name =
  match !active with
  | None -> ()
  | Some t -> Trace.instant t ~tid ~node ~cat ~arg name

let slice ~tid ~node ~cat ~ts ~dur name =
  match !active with
  | None -> ()
  | Some t -> Trace.slice t ~tid ~node ~cat ~ts ~dur name

(* Log-bucketed latency histogram (HDR-style).

   Values are non-negative integers in whatever unit the caller uses
   (simulator cycles, wall-clock nanoseconds).  The first [sub_count]
   values get exact unit buckets; every octave above that is split into
   [sub_count] sub-buckets, bounding the relative quantile error at
   1/sub_count (~3%).  Recording touches one array slot and a few scalar
   fields — no allocation, so it is safe on benchmark hot paths and inside
   the simulator (where it costs no virtual time). *)

let sub_bits = 5
let sub_count = 1 lsl sub_bits (* 32 sub-buckets per octave *)

(* Indices 0..sub_count-1 are exact; octave o >= sub_bits contributes
   sub_count buckets starting at (o - sub_bits + 1) * sub_count. *)
let nbuckets = ((63 - sub_bits) * sub_count) + sub_count

type t = {
  counts : int array;
  mutable total : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  { counts = Array.make nbuckets 0; total = 0; sum = 0; min_v = max_int;
    max_v = 0 }

let clear t =
  Array.fill t.counts 0 nbuckets 0;
  t.total <- 0;
  t.sum <- 0;
  t.min_v <- max_int;
  t.max_v <- 0

(* Position of the highest set bit; ints only, so no allocation. *)
let rec msb_loop v acc = if v > 1 then msb_loop (v lsr 1) (acc + 1) else acc

let index_of v =
  if v < sub_count then v
  else
    let o = msb_loop v 0 in
    let shift = o - sub_bits in
    ((o - sub_bits + 1) lsl sub_bits) + ((v lsr shift) - sub_count)

(* Lower bound of bucket [i] — the value reported for quantiles.  Exact for
   values below [sub_count]. *)
let value_of_index i =
  if i < sub_count then i
  else
    let o = (i lsr sub_bits) - 1 + sub_bits in
    let rem = i land (sub_count - 1) in
    (sub_count + rem) lsl (o - sub_bits)

let record t v =
  let v = if v < 0 then 0 else v in
  t.counts.(index_of v) <- t.counts.(index_of v) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.total
let sum t = t.sum
let min_value t = if t.total = 0 then 0 else t.min_v
let max_value t = t.max_v
let mean t = if t.total = 0 then 0.0 else float_of_int t.sum /. float_of_int t.total

let merge ~into src =
  for i = 0 to nbuckets - 1 do
    into.counts.(i) <- into.counts.(i) + src.counts.(i)
  done;
  into.total <- into.total + src.total;
  into.sum <- into.sum + src.sum;
  if src.total > 0 && src.min_v < into.min_v then into.min_v <- src.min_v;
  if src.max_v > into.max_v then into.max_v <- src.max_v

let quantile t q =
  if t.total = 0 then 0
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank =
      let r = int_of_float (ceil (q *. float_of_int t.total)) in
      if r < 1 then 1 else if r > t.total then t.total else r
    in
    let i = ref 0 and cum = ref 0 in
    while !cum < rank do
      cum := !cum + t.counts.(!i);
      incr i
    done;
    value_of_index (!i - 1)
  end

let pp ppf t =
  if t.total = 0 then Format.pp_print_string ppf "empty"
  else
    Format.fprintf ppf
      "count=%d mean=%.1f p50=%d p90=%d p99=%d p99.9=%d max=%d" t.total
      (mean t) (quantile t 0.5) (quantile t 0.9) (quantile t 0.99)
      (quantile t 0.999) t.max_v

(** Fixed-capacity slowest-N command log, modeled on Redis's SLOWLOG.

    Keeps the N slowest commands seen (Redis keeps the N most recent above
    a threshold; slowest-N is the more useful view for a bounded run).
    Command text is built lazily — the closure passed to {!note} only runs
    when the entry is admitted — so commands below the threshold pay one
    integer compare.  Thread-safe: admission is mutex-guarded. *)

type entry = {
  id : int;  (** admission order, unique *)
  duration : int;  (** caller's unit; the KV server uses nanoseconds *)
  command : string;
}

type t

val create : ?capacity:int -> ?threshold:int -> unit -> t
(** [capacity] defaults to 32 entries; [threshold] (same unit as
    durations, default 0) gates admission. *)

val capacity : t -> int
val threshold : t -> int
val set_threshold : t -> int -> unit
val length : t -> int

val note : t -> duration:int -> (unit -> string) -> unit
(** [note t ~duration describe] admits the command when [duration] is at
    least the threshold and among the N slowest seen. *)

val entries : t -> entry list
(** Slowest first; ties broken by admission order. *)

val reset : t -> unit
val pp : Format.formatter -> t -> unit

(** Wall-clock time source for the domains runtime (nanoseconds).

    Backed by [Unix.gettimeofday] — the stdlib has no monotonic clock and
    the project adds no dependency for one — so it can step under NTP
    adjustment; {!elapsed_ns} clamps negative intervals to zero.  The
    simulator never uses this module: virtual time comes from the
    scheduler. *)

val now_ns : unit -> int
val elapsed_ns : since:int -> int

(** Global observability hooks.

    Instrumented layers (simulator scheduler, NR combiner, KV server) call
    the emitters unconditionally; when no trace is installed each call is
    one ref read and a branch — no allocation, and under the simulator no
    virtual time (emitters perform no effects).  A binary installs a trace
    around a run and uninstalls it afterwards.

    The sink is process-global and not synchronized: install/uninstall
    from the main thread only.  Concurrent {e emission} is safe because
    every thread id writes its own trace ring. *)

val install_trace : Trace.t -> unit
val uninstall_trace : unit -> unit
val trace : unit -> Trace.t option
val tracing : unit -> bool

val request_metrics : bool -> unit
(** Ask reporting paths (the harness driver) to print a metrics dump after
    each measured point. *)

val metrics_requested : unit -> bool

val no_arg : int

(** Emitters — no-ops when no trace is installed. *)

val span_begin : tid:int -> node:int -> cat:string -> string -> unit
val span_end : tid:int -> node:int -> cat:string -> arg:int -> string -> unit
val instant : tid:int -> node:int -> cat:string -> arg:int -> string -> unit
val slice : tid:int -> node:int -> cat:string -> ts:int -> dur:int -> string -> unit

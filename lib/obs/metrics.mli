(** Unified metrics registry: named counters and gauges backed by closures.

    Stats live where they always lived (mutable records inside the NR
    instance, the simulator, the KV store); a registry only holds names and
    read closures, so registration costs nothing on any hot path.  Names
    are unique — re-registering a name replaces it — and dumps are sorted
    by name, making the output deterministic. *)

type t

type kind = Counter | Gauge

val create : unit -> t

val counter : t -> name:string -> ?help:string -> (unit -> int) -> unit
(** A monotonically increasing integer (operation counts, stalls...). *)

val gauge : t -> name:string -> ?help:string -> (unit -> float) -> unit
(** A point-in-time float (throughput, averages...). *)

val int_gauge : t -> name:string -> ?help:string -> (unit -> int) -> unit

val histogram : t -> name:string -> Histogram.t -> unit
(** Register derived metrics of a histogram: [name_count], [name_mean] and
    [name_p50]/[_p90]/[_p99]/[_p999]/[_max] (in the histogram's unit). *)

val length : t -> int

val dump : Format.formatter -> t -> unit
(** Text dump, one [name value] line per metric, sorted by name. *)

val to_json : t -> string
(** A single JSON object mapping names to current values, sorted. *)

(* Unified metrics registry.

   A metric is a name plus a closure that reads the current value from
   whatever mutable stats record owns it — registration is cheap and the
   cost of a metric is only paid when a dump is requested.  Names are
   unique (re-registering replaces) and dumps are sorted by name, so the
   text and JSON outputs are deterministic. *)

type kind = Counter | Gauge

type value = Int of (unit -> int) | Float of (unit -> float)

type metric = { name : string; kind : kind; help : string; value : value }

type t = { mutable metrics : metric list }

let create () = { metrics = [] }

let add t m =
  t.metrics <- m :: List.filter (fun x -> x.name <> m.name) t.metrics

let counter t ~name ?(help = "") read =
  add t { name; kind = Counter; help; value = Int read }

let gauge t ~name ?(help = "") read =
  add t { name; kind = Gauge; help; value = Float read }

let int_gauge t ~name ?(help = "") read =
  add t { name; kind = Gauge; help; value = Int read }

(* Expose a histogram as derived gauges: count plus the standard quantiles
   (in the histogram's own unit). *)
let histogram t ~name (h : Histogram.t) =
  counter t ~name:(name ^ "_count") (fun () -> Histogram.count h);
  gauge t ~name:(name ^ "_mean") (fun () -> Histogram.mean h);
  int_gauge t ~name:(name ^ "_p50") (fun () -> Histogram.quantile h 0.5);
  int_gauge t ~name:(name ^ "_p90") (fun () -> Histogram.quantile h 0.9);
  int_gauge t ~name:(name ^ "_p99") (fun () -> Histogram.quantile h 0.99);
  int_gauge t ~name:(name ^ "_p999") (fun () -> Histogram.quantile h 0.999);
  int_gauge t ~name:(name ^ "_max") (fun () -> Histogram.max_value h)

let sorted t =
  List.sort (fun a b -> compare a.name b.name) t.metrics

let length t = List.length t.metrics

let read_string m =
  match m.value with
  | Int f -> string_of_int (f ())
  | Float f -> Printf.sprintf "%.3f" (f ())

let dump ppf t =
  List.iter
    (fun m -> Format.fprintf ppf "%-40s %s@." m.name (read_string m))
    (sorted t)

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{";
  List.iteri
    (fun i m ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf (Printf.sprintf "\n  %S: %s" m.name (read_string m)))
    (sorted t);
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

(** Log-bucketed latency histogram (HDR-style).

    Values are non-negative integers in the caller's unit — simulator cycles
    or wall-clock nanoseconds.  Small values (below 32) get exact buckets;
    above that every power-of-two octave is split into 32 sub-buckets, so a
    reported quantile is at most ~3% below the true value.  {!record} is
    allocation-free: one array increment plus scalar updates.

    Not thread-safe; give each thread its own histogram and {!merge}. *)

type t

val create : unit -> t
val clear : t -> unit

val record : t -> int -> unit
(** Record one value (negative values are clamped to 0). *)

val count : t -> int
val sum : t -> int

val min_value : t -> int
(** Smallest recorded value; 0 when empty. *)

val max_value : t -> int
(** Largest recorded value (exact, not bucketed); 0 when empty. *)

val mean : t -> float

val merge : into:t -> t -> unit
(** [merge ~into src] adds [src]'s recordings to [into].  Merging is exact:
    quantiles of the result equal quantiles of a histogram that recorded the
    union of both value streams. *)

val quantile : t -> float -> int
(** [quantile t q] for [q] in [0,1] returns the lower bound of the bucket
    holding the value at rank [ceil (q * count)].  Monotone in [q]; 0 when
    empty. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: count, mean, p50/p90/p99/p99.9, max. *)

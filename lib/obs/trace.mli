(** Per-thread ring-buffer event recorder with a Chrome [trace_event]
    exporter.

    Each thread id owns two bounded rings — one for complete slices
    (['X'], the scheduler's high-frequency run/spin quanta) and one for
    discrete events (spans and instants, orders of magnitude rarer) — so
    the slice firehose cannot evict the rare events a trace is usually
    opened for.  When a ring fills, recording overwrites its oldest event
    (drop-oldest), so a trace holds the most recent window of activity and
    recording never allocates.  Timestamps come from the
    [now] closure given at creation: virtual cycles under the simulator,
    monotonic nanoseconds on real domains.  Exporting a deterministic
    simulation yields byte-identical output across runs.

    Concurrent recording is safe as long as each thread only records under
    its own [tid] (every tid has a private ring). *)

type t

(** Raw event, exposed for tests and custom exporters. *)
type event = {
  mutable name : string;
  mutable cat : string;
  mutable ph : char;  (** 'B' begin, 'E' end, 'i' instant, 'X' complete *)
  mutable ts : int;
  mutable dur : int;  (** 'X' events only *)
  mutable pid : int;  (** NUMA node *)
  mutable tid : int;
  mutable arg : int;  (** {!no_arg} when absent *)
}

val no_arg : int
(** Sentinel for "no argument" ([min_int]). *)

val create : ?capacity:int -> threads:int -> now:(unit -> int) -> unit -> t
(** [create ~threads ~now ()] allocates two rings of [capacity] (default
    4096) events each per thread id in [0, threads). *)

val threads : t -> int

val now : t -> int
(** The trace's current timestamp (calls the [now] closure). *)

val span_begin : t -> tid:int -> node:int -> cat:string -> string -> unit
val span_end : t -> tid:int -> node:int -> cat:string -> arg:int -> string -> unit
val instant : t -> tid:int -> node:int -> cat:string -> arg:int -> string -> unit

val slice : t -> tid:int -> node:int -> cat:string -> ts:int -> dur:int -> string -> unit
(** A complete span with explicit start and duration (Chrome ['X']). *)

val recorded : t -> int
(** Total events ever recorded, including overwritten ones. *)

val dropped : t -> int
(** Events lost to drop-oldest overwriting. *)

val iter : t -> (event -> unit) -> unit
(** Visit retained events in a fixed order: tids ascending; per tid the
    discrete events first, then the slices, each oldest-to-newest. *)

val to_chrome_buffer : t -> Buffer.t -> unit
val to_chrome_string : t -> string
val write_chrome : t -> out_channel -> unit
(** Chrome [trace_event] JSON ("JSON object format"): NUMA nodes appear as
    processes, thread ids as threads.  Open in Perfetto
    ({:https://ui.perfetto.dev}) or chrome://tracing. *)

(* Fixed-capacity slowest-N command log, modeled on Redis's SLOWLOG.

   Unlike Redis (which keeps the N most recent entries above a threshold)
   this keeps the N slowest, which is the more useful view for a bounded
   benchmark run.  The command text is built lazily: the closure only runs
   when the entry is actually admitted, so fast commands never pay for
   formatting.  A mutex guards admission — the KV server calls [note] from
   concurrent worker threads. *)

type entry = { id : int; duration : int; command : string }

type t = {
  mutable entries : entry array; (* used prefix of length [len] *)
  mutable len : int;
  mutable next_id : int;
  mutable threshold : int;
  capacity : int;
  lock : Mutex.t;
}

let dummy = { id = -1; duration = -1; command = "" }

let create ?(capacity = 32) ?(threshold = 0) () =
  if capacity <= 0 then invalid_arg "Slowlog.create: capacity must be > 0";
  {
    entries = Array.make capacity dummy;
    len = 0;
    next_id = 0;
    threshold;
    capacity;
    lock = Mutex.create ();
  }

let capacity t = t.capacity
let threshold t = t.threshold
let set_threshold t n = t.threshold <- n
let length t = t.len

let min_slot t =
  let m = ref 0 in
  for i = 1 to t.len - 1 do
    if t.entries.(i).duration < t.entries.(!m).duration then m := i
  done;
  !m

let note t ~duration command =
  if duration >= t.threshold then begin
    Mutex.lock t.lock;
    (if t.len < t.capacity then begin
       t.entries.(t.len) <-
         { id = t.next_id; duration; command = command () };
       t.len <- t.len + 1;
       t.next_id <- t.next_id + 1
     end
     else
       let m = min_slot t in
       if duration > t.entries.(m).duration then begin
         t.entries.(m) <- { id = t.next_id; duration; command = command () };
         t.next_id <- t.next_id + 1
       end);
    Mutex.unlock t.lock
  end

let entries t =
  Mutex.lock t.lock;
  let l = Array.to_list (Array.sub t.entries 0 t.len) in
  Mutex.unlock t.lock;
  List.sort
    (fun a b ->
      if a.duration <> b.duration then compare b.duration a.duration
      else compare a.id b.id)
    l

let reset t =
  Mutex.lock t.lock;
  t.len <- 0;
  Mutex.unlock t.lock

let pp ppf t =
  List.iter
    (fun e ->
      Format.fprintf ppf "#%d %dns %s@." e.id e.duration e.command)
    (entries t)

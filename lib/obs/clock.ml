(* Wall-clock time source for the domains runtime.

   OCaml's stdlib has no monotonic clock; [Unix.gettimeofday] is the best
   portable source available without adding a dependency (mtime-style).
   It can step backwards under NTP adjustment, so durations are clamped at
   zero.  The simulator never uses this module — virtual time comes from
   the scheduler. *)

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let elapsed_ns ~since =
  let d = now_ns () - since in
  if d < 0 then 0 else d

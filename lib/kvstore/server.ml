(** A small RESP-speaking TCP front end.  Connections are handed to the
    worker pool; every parsed command goes through a caller-supplied
    executor, so the same server runs over an NR-wrapped store, a
    lock-wrapped store, or a bare one (single worker).  Server-local
    commands (replication SYNC/PSYNC, observability) can be intercepted by
    an optional [special] handler before they reach the executor.

    The paper bypasses the RPC layer when measuring (§8.3) — this server
    exists for the runnable example, not for the benchmarks. *)

type t = {
  sock : Unix.file_descr;
  pool : Thread_pool.t;
  exec : Command.t -> Command.reply;
  special : (Command.t -> Command.reply option) option;
  obs : Kv_obs.t option;
  mutable stop : bool;
  (* connection registry for shutdown: long-lived handlers (a follower's
     replication link stays open for the server's whole life) block in
     [Unix.read]; joining the pool without first breaking those reads
     deadlocks shutdown.  [conns] tracks every live client socket and
     [inflight] counts replies mid-write, so shutdown can drain the
     writes, then shut the sockets down to unblock the reads. *)
  conns_mutex : Mutex.t;
  conns : (Unix.file_descr, unit) Hashtbl.t;
  mutable inflight : int;
}

(* SLOWLOG and friends are answered here, not by the replicated store;
   everything else is timed around the executor when observability is on. *)
let run_command t cmd =
  match
    match t.special with Some f -> f cmd | None -> None
  with
  | Some reply -> reply
  | None -> (
      match t.obs with
      | None -> t.exec cmd
      | Some obs -> (
          match cmd with
          | Command.Slowlog_get -> Kv_obs.slowlog_reply obs
          | Command.Slowlog_len ->
              Command.Int (Nr_obs.Slowlog.length (Kv_obs.slowlog obs))
          | Command.Slowlog_reset ->
              Nr_obs.Slowlog.reset (Kv_obs.slowlog obs);
              Command.Ok_reply
          | cmd ->
              let t0 = Nr_obs.Clock.now_ns () in
              let reply = t.exec cmd in
              Kv_obs.observe obs cmd
                ~duration_ns:(Nr_obs.Clock.elapsed_ns ~since:t0);
              reply))

(* Replies can be far larger than one [Unix.write] accepts (snapshot
   streams, shipped frame batches): loop until every byte is out. *)
let write_all fd bytes =
  let len = Bytes.length bytes in
  let rec go off =
    if off < len then begin
      let n = Unix.write fd bytes off (len - off) in
      if n > 0 then go (off + n)
    end
  in
  go 0

let register_conn t client =
  Mutex.lock t.conns_mutex;
  let accepted = not t.stop in
  if accepted then Hashtbl.replace t.conns client ();
  Mutex.unlock t.conns_mutex;
  accepted

let deregister_conn t client =
  Mutex.lock t.conns_mutex;
  Hashtbl.remove t.conns client;
  Mutex.unlock t.conns_mutex

(* Bracket a reply write so shutdown can wait for in-flight replies —
   a streaming reply is never cut off mid-frame by closing the socket
   under it. *)
let send_reply t client reply =
  Mutex.lock t.conns_mutex;
  t.inflight <- t.inflight + 1;
  Mutex.unlock t.conns_mutex;
  let finally () =
    Mutex.lock t.conns_mutex;
    t.inflight <- t.inflight - 1;
    Mutex.unlock t.conns_mutex
  in
  match
    let buf = Buffer.create 64 in
    Resp.encode_reply_buf buf reply;
    write_all client (Buffer.to_bytes buf)
  with
  | () -> finally ()
  | exception e ->
      finally ();
      raise e

let handle_connection t client =
  if not (register_conn t client) then begin
    try Unix.close client with Unix.Unix_error _ -> ()
  end
  else begin
    let buf = Buffer.create 256 in
    let chunk = Bytes.create 4096 in
    let rec serve () =
      (* parse as many complete requests as the buffer holds *)
      let rec drain () =
        let data = Buffer.contents buf in
        match Resp.parse_request data with
        | Resp.Parsed (tokens, consumed) ->
            let reply =
              match Command.of_strings tokens with
              | Ok cmd -> run_command t cmd
              | Error e -> Command.Err e
            in
            let rest =
              String.sub data consumed (String.length data - consumed)
            in
            Buffer.clear buf;
            Buffer.add_string buf rest;
            send_reply t client reply;
            drain ()
        | Resp.Incomplete -> true
        | Resp.Invalid e ->
            send_reply t client (Command.Err e);
            false
      in
      if drain () then begin
        let n = Unix.read client chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          serve ()
        end
      end
    in
    (try serve () with Unix.Unix_error _ | End_of_file -> ());
    deregister_conn t client;
    try Unix.close client with Unix.Unix_error _ -> ()
  end

let create ?obs ?special ~port ~workers exec =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock 64;
  {
    sock;
    pool = Thread_pool.create ~workers ();
    exec;
    special;
    obs;
    stop = false;
    conns_mutex = Mutex.create ();
    conns = Hashtbl.create 16;
    inflight = 0;
  }

let obs t = t.obs
let pool_stats t = Thread_pool.stats t.pool

let port t =
  match Unix.getsockname t.sock with
  | Unix.ADDR_INET (_, p) -> p
  | Unix.ADDR_UNIX _ -> invalid_arg "Server.port: unix socket"

(** Accept loop; returns when {!shutdown} is called from another thread. *)
let serve t =
  while not t.stop do
    match Unix.accept t.sock with
    | client, _ ->
        if t.stop then (try Unix.close client with Unix.Unix_error _ -> ())
        else if
          not (Thread_pool.try_submit t.pool (fun () -> handle_connection t client))
        then begin
          (* saturated pool: shed the connection with an explicit error
             instead of stalling the accept loop behind slow handlers *)
          let out =
            Bytes.of_string
              (Resp.encode_reply (Command.Err "BUSY server overloaded"))
          in
          (try ignore (Unix.write client out 0 (Bytes.length out))
           with Unix.Unix_error _ -> ());
          try Unix.close client with Unix.Unix_error _ -> ()
        end
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        t.stop <- true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let shutdown t =
  let p = try Some (port t) with Invalid_argument _ -> None in
  Mutex.lock t.conns_mutex;
  t.stop <- true;
  Mutex.unlock t.conns_mutex;
  (* closing a listening socket does not reliably wake a blocked accept();
     poke it with a throwaway connection first *)
  (match p with
  | Some p -> (
      try
        let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_loopback, p))
         with Unix.Unix_error _ -> ());
        Unix.close s
      with Unix.Unix_error _ -> ())
  | None -> ());
  (try Unix.close t.sock with Unix.Unix_error _ -> ());
  (* drain in-flight replies (bounded wait: a reply stuck on a dead peer
     must not wedge shutdown), then break every lingering connection's
     blocked read so its handler can exit — otherwise joining the pool
     deadlocks behind a follower's long-lived replication link *)
  let deadline = Unix.gettimeofday () +. 2.0 in
  let rec wait_drained () =
    Mutex.lock t.conns_mutex;
    let busy = t.inflight > 0 in
    if busy && Unix.gettimeofday () < deadline then begin
      Mutex.unlock t.conns_mutex;
      Thread.yield ();
      wait_drained ()
    end
    else begin
      (* still holding the mutex: no new reply can begin (stop is set and
         registration is refused), so the sweep below is complete *)
      Hashtbl.iter
        (fun fd () ->
          try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
        t.conns;
      Mutex.unlock t.conns_mutex
    end
  in
  wait_drained ();
  Thread_pool.shutdown t.pool

(** A RESP-speaking TCP front end.  Two serving modes share the parsing,
    execution and observability layers:

    - [Pool] (the default, the paper's §7 shape): blocking sockets, one
      worker-pool job per connection.  Caps concurrent connections at the
      pool size and sheds the excess with BUSY errors.
    - [Evloop]: an epoll readiness event loop running one lightweight
      fiber per connection (nonblocking sockets, pipelined RESP parsing,
      batched reply writes), with parsed request batches executed on
      per-node work-stealing run queues.  One process sustains thousands
      of connections with [workers] executor domains.

    Every parsed command goes through a caller-supplied executor, so the
    same server runs over an NR-wrapped store, a lock-wrapped store, or a
    bare one.  Server-local commands (replication SYNC/PSYNC,
    observability) can be intercepted by an optional [special] handler
    before they reach the executor.

    The paper bypasses the RPC layer when measuring (§8.3) — this server
    exists for the runnable example and the open-loop server bench, not
    for the simulator benchmarks. *)

type net = Pool | Evloop

type session_hook =
  exec:(Command.t -> Command.reply) ->
  clock:(unit -> int) ->
  Command.t ->
  Command.reply option
(** Per-connection command interceptor, created once per connection and
    consulted before the executor: [Some r] answers the command itself
    (MULTI queueing, WATCH bookkeeping, EXPIRE normalization…), [None]
    hands it through untouched.  [exec] runs a command on the server's
    normal path (the session uses it for WATCH stamp reads and for the
    compound entry EXEC submits); [clock] is the server's millisecond
    clock.  The hook lives above the store, so the fast path for
    connections with no session state is one [passthrough] test. *)

type stats = {
  accept_errors : int;
      (** transient accept failures survived (EMFILE/ECONNABORTED bursts) *)
  emfile_backoffs : int;  (** accept pauses forced by fd exhaustion *)
  ev_conns : int;  (** evloop: connections accepted *)
  ev_batches : int;  (** evloop: request batches submitted *)
  ev_requests : int;  (** evloop: pipelined requests executed *)
}

type t = {
  sock : Unix.file_descr;
  net : net;
  pool : Thread_pool.t option;  (* Pool mode *)
  ev : Nr_net.Evloop.t option;  (* Evloop mode *)
  sched : Nr_net.Sched.t option;  (* Evloop mode *)
  nodes : int;
  exec : Command.t -> Command.reply;
  special : (Command.t -> Command.reply option) option;
  session : session_hook option;
  clock : unit -> int;
  obs : Kv_obs.t option;
  mutable stop : bool;
  mutable shut : bool;  (* shutdown already ran (idempotence) *)
  (* connection registry for pool-mode shutdown: long-lived handlers (a
     follower's replication link stays open for the server's whole life)
     block in [Unix.read]; joining the pool without first breaking those
     reads deadlocks shutdown.  [conns] tracks every live client socket
     and [inflight] counts replies mid-write, so shutdown can drain the
     writes, then shut the sockets down to unblock the reads.  (The
     evloop tracks its own connections.) *)
  conns_mutex : Mutex.t;
  conns : (Unix.file_descr, unit) Hashtbl.t;
  mutable inflight : int;
  (* stats (mutated from the accept loop / evloop fibers) *)
  mutable accept_errors : int;
  mutable ev_batches : int;
  mutable ev_requests : int;
  mutable next_node : int;  (* evloop: round-robin connection → node *)
}

(* SLOWLOG and friends are answered here, not by the replicated store;
   everything else is timed around the executor when observability is on. *)
let run_command t cmd =
  match
    match t.special with Some f -> f cmd | None -> None
  with
  | Some reply -> reply
  | None -> (
      match t.obs with
      | None -> t.exec cmd
      | Some obs -> (
          match cmd with
          | Command.Slowlog_get -> Kv_obs.slowlog_reply obs
          | Command.Slowlog_len ->
              Command.Int (Nr_obs.Slowlog.length (Kv_obs.slowlog obs))
          | Command.Slowlog_reset ->
              Nr_obs.Slowlog.reset (Kv_obs.slowlog obs);
              Command.Ok_reply
          | cmd ->
              let t0 = Nr_obs.Clock.now_ns () in
              let reply = t.exec cmd in
              Kv_obs.observe obs cmd
                ~duration_ns:(Nr_obs.Clock.elapsed_ns ~since:t0);
              reply))

(* Instantiate the per-connection session (if the server has one) and
   compose it in front of [run_command].  Connections that never touch
   session state pay one predicate call per command. *)
let conn_exec t =
  match t.session with
  | None -> fun cmd -> run_command t cmd
  | Some hook ->
      let sess = hook ~exec:(run_command t) ~clock:t.clock in
      fun cmd ->
        (match sess cmd with Some r -> r | None -> run_command t cmd)

(* Replies can be far larger than one [Unix.write] accepts (snapshot
   streams, shipped frame batches): loop until every byte is out.
   A zero-byte return must be retried, not treated as done — stopping
   there silently truncates the reply mid-frame — and EINTR must not
   kill the connection.  Any other error is real and raises.  [?write]
   exists so tests can inject short/zero/EINTR writes deterministically. *)
let write_all ?(write = Unix.write) fd bytes =
  let len = Bytes.length bytes in
  let rec go off =
    if off < len then
      match write fd bytes off (len - off) with
      | 0 ->
          (* no progress but no error either (never observed from TCP
             sockets, but the API allows it): yield and retry *)
          Thread.yield ();
          go off
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let register_conn t client =
  Mutex.lock t.conns_mutex;
  let accepted = not t.stop in
  if accepted then Hashtbl.replace t.conns client ();
  Mutex.unlock t.conns_mutex;
  accepted

let deregister_conn t client =
  Mutex.lock t.conns_mutex;
  Hashtbl.remove t.conns client;
  Mutex.unlock t.conns_mutex

(* Bracket a reply write so shutdown can wait for in-flight replies —
   a streaming reply is never cut off mid-frame by closing the socket
   under it. *)
let send_reply t client reply =
  Mutex.lock t.conns_mutex;
  t.inflight <- t.inflight + 1;
  Mutex.unlock t.conns_mutex;
  let finally () =
    Mutex.lock t.conns_mutex;
    t.inflight <- t.inflight - 1;
    Mutex.unlock t.conns_mutex
  in
  match
    let buf = Buffer.create 64 in
    Resp.encode_reply_buf buf reply;
    write_all client (Buffer.to_bytes buf)
  with
  | () -> finally ()
  | exception e ->
      finally ();
      raise e

(* Parse every complete request in [data] starting at 0, via the offset
   API — one pass, no per-request buffer rebuild.  Returns the consumed
   prefix length; on a protocol error the remaining input is garbage and
   the connection must close. *)
let handle_connection t client =
  if not (register_conn t client) then begin
    try Unix.close client with Unix.Unix_error _ -> ()
  end
  else begin
    let buf = Buffer.create 256 in
    let chunk = Bytes.create 4096 in
    let exec = conn_exec t in
    let rec serve () =
      (* parse as many complete requests as the buffer holds: O(total)
         over a pipelined burst — the cursor walks [data] once and the
         buffer is compacted once per read, not once per request *)
      let data = Buffer.contents buf in
      let len = String.length data in
      let rec drain pos =
        match Resp.parse_request ~pos data with
        | Resp.Parsed (tokens, consumed) ->
            let reply =
              match Command.of_strings tokens with
              | Ok cmd -> exec cmd
              | Error e -> Command.Err e
            in
            send_reply t client reply;
            drain (pos + consumed)
        | Resp.Incomplete -> Some pos
        | Resp.Invalid e ->
            send_reply t client (Command.Err e);
            None
      in
      match drain 0 with
      | None -> ()
      | Some pos ->
          if pos > 0 then begin
            Buffer.clear buf;
            Buffer.add_substring buf data pos (len - pos)
          end;
          let n = Unix.read client chunk 0 (Bytes.length chunk) in
          if n > 0 then begin
            Buffer.add_subbytes buf chunk 0 n;
            serve ()
          end
    in
    (try serve () with Unix.Unix_error _ | End_of_file -> ());
    deregister_conn t client;
    try Unix.close client with Unix.Unix_error _ -> ()
  end

(* --- evloop mode ---------------------------------------------------- *)

(* One fiber per connection: read a chunk, parse every complete pipelined
   request, submit the whole batch to the connection's home node's run
   queue as one job, await the replies, write them back in one batch.
   Same-node batches execute back-to-back on one executor domain, so the
   network layer feeds NR's flat combiner aligned bursts.

   Latency fast path: a lone command arriving while the run queues are
   empty executes inline on the loop thread (run to completion) instead
   of paying the two cross-domain wakeups that dominate a quiet-server
   round trip.  Only store-bound commands qualify — server-local ones
   must never stall the loop (WAIT blocks for its timeout, SYNC streams
   a snapshot) — and any backlog means the batch path's ordering and
   combiner alignment matter more than the hop. *)
let handle_connection_ev t sched ev ~node client =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 8192 in
  let out = Buffer.create 1024 in
  (* the session is only ever stepped by one job at a time: the fiber
     awaits a batch's replies before parsing more of the connection *)
  let exec = conn_exec t in
  let exec_one parsed =
    match parsed with
    | Ok cmd -> (
        try exec cmd
        with e ->
          Command.Err
            (Printf.sprintf "internal error: %s" (Printexc.to_string e)))
    | Error e -> Command.Err e
  in
  let submit_and_reply reqs =
    let cmds = Array.of_list (List.map Command.of_strings reqs) in
    let fast =
      Array.length cmds = 1
      && (match cmds.(0) with
         | Ok c -> not (Command.is_server_local c)
         | Error _ -> true)
      && Nr_net.Sched.backlog sched = 0
    in
    let replies =
      if fast then Array.map exec_one cmds
      else begin
        let p = Nr_net.Evloop.promise () in
        (* the job must fulfil on every path or the fiber parks forever *)
        Nr_net.Sched.submit sched ~node (fun () ->
            Nr_net.Evloop.fulfill ev p (Array.map exec_one cmds));
        t.ev_batches <- t.ev_batches + 1;
        Nr_net.Evloop.await p
      end
    in
    t.ev_requests <- t.ev_requests + Array.length cmds;
    Buffer.clear out;
    Array.iter (Resp.encode_reply_buf out) replies;
    Nr_net.Evloop.write_all client (Buffer.to_bytes out)
  in
  let rec serve () =
    let n = Nr_net.Evloop.read client chunk 0 (Bytes.length chunk) in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      let data = Buffer.contents buf in
      let len = String.length data in
      let rec collect pos acc =
        match Resp.parse_request ~pos data with
        | Resp.Parsed (tokens, consumed) ->
            collect (pos + consumed) (tokens :: acc)
        | Resp.Incomplete -> Ok (pos, List.rev acc)
        | Resp.Invalid e -> Error (List.rev acc, e)
      in
      match collect 0 [] with
      | Ok (pos, reqs) ->
          if pos > 0 then begin
            Buffer.clear buf;
            Buffer.add_substring buf data pos (len - pos)
          end;
          if reqs <> [] then submit_and_reply reqs;
          serve ()
      | Error (reqs, e) ->
          (* answer the parsed prefix, report the protocol error, close *)
          if reqs <> [] then submit_and_reply reqs;
          Buffer.clear out;
          Resp.encode_reply_buf out (Command.Err e);
          Nr_net.Evloop.write_all client (Buffer.to_bytes out)
    end
  in
  serve ()

(* --- lifecycle ------------------------------------------------------ *)

let create ?obs ?special ?session ?(clock = fun () -> 0) ?(net = Pool)
    ?(nodes = 1) ~port ~workers exec =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock (match net with Pool -> 64 | Evloop -> 512);
  let pool, ev, sched =
    match net with
    | Pool -> (Some (Thread_pool.create ~workers ()), None, None)
    | Evloop ->
        ( None,
          Some (Nr_net.Evloop.create ()),
          Some
            (Nr_net.Sched.create ~seed:0x5EED ~domains:workers
               ~nodes:(max 1 nodes) ()) )
  in
  {
    sock;
    net;
    pool;
    ev;
    sched;
    nodes = max 1 nodes;
    exec;
    special;
    session;
    clock;
    obs;
    stop = false;
    shut = false;
    conns_mutex = Mutex.create ();
    conns = Hashtbl.create 16;
    inflight = 0;
    accept_errors = 0;
    ev_batches = 0;
    ev_requests = 0;
    next_node = 0;
  }

let obs t = t.obs

let pool_stats t =
  match t.pool with
  | Some p -> Thread_pool.stats p
  | None -> { Thread_pool.executed = 0; failed = 0; rejected = 0 }

let sched_stats t = Option.map Nr_net.Sched.stats t.sched

let stats t =
  let ev_conns, emfile =
    match t.ev with
    | Some ev ->
        let s = Nr_net.Evloop.stats ev in
        (s.Nr_net.Evloop.accepted, s.Nr_net.Evloop.emfile_backoffs)
    | None -> (0, 0)
  in
  let ev_errors =
    match t.ev with
    | Some ev -> (Nr_net.Evloop.stats ev).Nr_net.Evloop.accept_errors
    | None -> 0
  in
  {
    accept_errors = t.accept_errors + ev_errors;
    emfile_backoffs = emfile;
    ev_conns;
    ev_batches = t.ev_batches;
    ev_requests = t.ev_requests;
  }

let port t =
  match Unix.getsockname t.sock with
  | Unix.ADDR_INET (_, p) -> p
  | Unix.ADDR_UNIX _ -> invalid_arg "Server.port: unix socket"

(* What the accept loop does with an accept error.  EBADF/EINVAL mean the
   listening socket was closed under us: stop.  fd exhaustion heals only
   if existing connections get CPU to finish, so back off; everything
   else (ECONNABORTED, a peer vanishing mid-handshake, transient
   ENOBUFS/ENOMEM/EPERM bursts) is the peer's problem, not a reason to
   kill [serve]. *)
let accept_error_policy : Unix.error -> [ `Stop | `Ignore | `Backoff of float ]
    = function
  | Unix.EBADF | Unix.EINVAL -> `Stop
  | Unix.EINTR -> `Ignore
  | Unix.EMFILE | Unix.ENFILE -> `Backoff 0.05
  | _ -> `Ignore

(** Accept loop; returns when {!shutdown} is called from another thread. *)
let serve_pool t pool =
  while not t.stop do
    match Unix.accept t.sock with
    | client, _ ->
        if t.stop then (try Unix.close client with Unix.Unix_error _ -> ())
        else if
          not (Thread_pool.try_submit pool (fun () -> handle_connection t client))
        then begin
          (* saturated pool: shed the connection with an explicit error
             instead of stalling the accept loop behind slow handlers *)
          let out =
            Bytes.of_string
              (Resp.encode_reply (Command.Err "BUSY server overloaded"))
          in
          (try ignore (Unix.write client out 0 (Bytes.length out))
           with Unix.Unix_error _ -> ());
          try Unix.close client with Unix.Unix_error _ -> ()
        end
    | exception Unix.Unix_error (err, _, _) -> (
        match accept_error_policy err with
        | `Stop -> t.stop <- true
        | `Ignore -> if err <> Unix.EINTR then t.accept_errors <- t.accept_errors + 1
        | `Backoff delay ->
            t.accept_errors <- t.accept_errors + 1;
            Thread.delay delay)
  done

let serve t =
  match (t.net, t.pool, t.ev, t.sched) with
  | Pool, Some pool, _, _ -> serve_pool t pool
  | Evloop, _, Some ev, Some sched ->
      Nr_net.Evloop.run ev ~listen:t.sock
        ~handler:(fun client ->
          let node = t.next_node in
          t.next_node <- (t.next_node + 1) mod t.nodes;
          handle_connection_ev t sched ev ~node client)
  | _ -> assert false

let shutdown t =
  let first =
    Mutex.lock t.conns_mutex;
    let f = not t.shut in
    t.shut <- true;
    t.stop <- true;
    Mutex.unlock t.conns_mutex;
    f
  in
  if first then
    match t.net with
    | Evloop ->
        (match t.ev with Some ev -> Nr_net.Evloop.stop ev | None -> ());
        (try Unix.close t.sock with Unix.Unix_error _ -> ());
        (match t.sched with Some s -> Nr_net.Sched.shutdown s | None -> ())
    | Pool ->
        let p = try Some (port t) with Invalid_argument _ -> None in
        (* closing a listening socket does not reliably wake a blocked
           accept(); poke it with a throwaway connection first *)
        (match p with
        | Some p -> (
            try
              let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
              (try
                 Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_loopback, p))
               with Unix.Unix_error _ -> ());
              Unix.close s
            with Unix.Unix_error _ -> ())
        | None -> ());
        (try Unix.close t.sock with Unix.Unix_error _ -> ());
        (* drain in-flight replies (bounded wait: a reply stuck on a dead
           peer must not wedge shutdown), then break every lingering
           connection's blocked read so its handler can exit — otherwise
           joining the pool deadlocks behind a follower's long-lived
           replication link *)
        let deadline = Unix.gettimeofday () +. 2.0 in
        let rec wait_drained () =
          Mutex.lock t.conns_mutex;
          let busy = t.inflight > 0 in
          if busy && Unix.gettimeofday () < deadline then begin
            Mutex.unlock t.conns_mutex;
            Thread.yield ();
            wait_drained ()
          end
          else begin
            (* still holding the mutex: no new reply can begin (stop is
               set and registration is refused), so the sweep below is
               complete *)
            Hashtbl.iter
              (fun fd () ->
                try Unix.shutdown fd Unix.SHUTDOWN_ALL
                with Unix.Unix_error _ -> ())
              t.conns;
            Mutex.unlock t.conns_mutex
          end
        in
        wait_drained ();
        (match t.pool with Some p -> Thread_pool.shutdown p | None -> ())

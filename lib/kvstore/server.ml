(** A small RESP-speaking TCP front end.  Connections are handed to the
    worker pool; every parsed command goes through a caller-supplied
    executor, so the same server runs over an NR-wrapped store, a
    lock-wrapped store, or a bare one (single worker).

    The paper bypasses the RPC layer when measuring (§8.3) — this server
    exists for the runnable example, not for the benchmarks. *)

type t = {
  sock : Unix.file_descr;
  pool : Thread_pool.t;
  exec : Command.t -> Command.reply;
  obs : Kv_obs.t option;
  mutable stop : bool;
}

(* SLOWLOG and friends are answered here, not by the replicated store;
   everything else is timed around the executor when observability is on. *)
let run_command t cmd =
  match t.obs with
  | None -> t.exec cmd
  | Some obs -> (
      match cmd with
      | Command.Slowlog_get -> Kv_obs.slowlog_reply obs
      | Command.Slowlog_len ->
          Command.Int (Nr_obs.Slowlog.length (Kv_obs.slowlog obs))
      | Command.Slowlog_reset ->
          Nr_obs.Slowlog.reset (Kv_obs.slowlog obs);
          Command.Ok_reply
      | cmd ->
          let t0 = Nr_obs.Clock.now_ns () in
          let reply = t.exec cmd in
          Kv_obs.observe obs cmd ~duration_ns:(Nr_obs.Clock.elapsed_ns ~since:t0);
          reply)

let handle_connection t client =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec serve () =
    (* parse as many complete requests as the buffer holds *)
    let rec drain () =
      let data = Buffer.contents buf in
      match Resp.parse_request data with
      | Resp.Parsed (tokens, consumed) ->
          let reply =
            match Command.of_strings tokens with
            | Ok cmd -> run_command t cmd
            | Error e -> Command.Err e
          in
          let rest = String.sub data consumed (String.length data - consumed) in
          Buffer.clear buf;
          Buffer.add_string buf rest;
          let out = Bytes.of_string (Resp.encode_reply reply) in
          let _ = Unix.write client out 0 (Bytes.length out) in
          drain ()
      | Resp.Incomplete -> true
      | Resp.Invalid e ->
          let out = Bytes.of_string (Resp.encode_reply (Command.Err e)) in
          let _ = Unix.write client out 0 (Bytes.length out) in
          false
    in
    if drain () then begin
      let n = Unix.read client chunk 0 (Bytes.length chunk) in
      if n > 0 then begin
        Buffer.add_subbytes buf chunk 0 n;
        serve ()
      end
    end
  in
  (try serve () with Unix.Unix_error _ | End_of_file -> ());
  try Unix.close client with Unix.Unix_error _ -> ()

let create ?obs ~port ~workers exec =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock 64;
  { sock; pool = Thread_pool.create ~workers (); exec; obs; stop = false }

let obs t = t.obs
let pool_stats t = Thread_pool.stats t.pool

let port t =
  match Unix.getsockname t.sock with
  | Unix.ADDR_INET (_, p) -> p
  | Unix.ADDR_UNIX _ -> invalid_arg "Server.port: unix socket"

(** Accept loop; returns when {!shutdown} is called from another thread. *)
let serve t =
  while not t.stop do
    match Unix.accept t.sock with
    | client, _ ->
        if t.stop then (try Unix.close client with Unix.Unix_error _ -> ())
        else if
          not (Thread_pool.try_submit t.pool (fun () -> handle_connection t client))
        then begin
          (* saturated pool: shed the connection with an explicit error
             instead of stalling the accept loop behind slow handlers *)
          let out =
            Bytes.of_string
              (Resp.encode_reply (Command.Err "BUSY server overloaded"))
          in
          (try ignore (Unix.write client out 0 (Bytes.length out))
           with Unix.Unix_error _ -> ());
          try Unix.close client with Unix.Unix_error _ -> ()
        end
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        t.stop <- true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let shutdown t =
  let p = try Some (port t) with Invalid_argument _ -> None in
  t.stop <- true;
  (* closing a listening socket does not reliably wake a blocked accept();
     poke it with a throwaway connection first *)
  (match p with
  | Some p -> (
      try
        let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_loopback, p))
         with Unix.Unix_error _ -> ());
        Unix.close s
      with Unix.Unix_error _ -> ())
  | None -> ());
  (try Unix.close t.sock with Unix.Unix_error _ -> ());
  Thread_pool.shutdown t.pool

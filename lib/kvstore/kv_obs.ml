(* KV-store observability: per-command-class latency histograms plus a
   slowest-N command log, shared by the RESP server's worker threads.

   Latencies are wall-clock nanoseconds measured around the executor call
   (the NR/lock/bare execution, not socket I/O).  Histograms are guarded
   by a mutex — workers are real domains — which is fine at server
   command rates; the benchmark hot paths in the harness use per-thread
   histograms instead. *)

type t = {
  read_latency : Nr_obs.Histogram.t;  (* read-only commands *)
  write_latency : Nr_obs.Histogram.t; (* update commands *)
  slowlog : Nr_obs.Slowlog.t;
  lock : Mutex.t;
}

let create ?(slowlog_capacity = 32) ?(slowlog_threshold = 0) () =
  {
    read_latency = Nr_obs.Histogram.create ();
    write_latency = Nr_obs.Histogram.create ();
    slowlog =
      Nr_obs.Slowlog.create ~capacity:slowlog_capacity
        ~threshold:slowlog_threshold ();
    lock = Mutex.create ();
  }

let slowlog t = t.slowlog
let read_latency t = t.read_latency
let write_latency t = t.write_latency

let observe t cmd ~duration_ns =
  Mutex.lock t.lock;
  (if Command.is_read_only cmd then
     Nr_obs.Histogram.record t.read_latency duration_ns
   else Nr_obs.Histogram.record t.write_latency duration_ns);
  Mutex.unlock t.lock;
  Nr_obs.Slowlog.note t.slowlog ~duration:duration_ns (fun () ->
      Format.asprintf "%a" Command.pp cmd)

(* Reply for SLOWLOG GET, Redis-style: one [id, duration_us, command]
   entry per admitted command, slowest first. *)
let slowlog_reply t =
  Command.Array
    (List.map
       (fun (e : Nr_obs.Slowlog.entry) ->
         Command.Array
           [
             Command.Int e.id;
             Command.Int (e.duration / 1000);
             Command.Bulk e.command;
           ])
       (Nr_obs.Slowlog.entries t.slowlog))

let register_metrics t reg =
  Nr_obs.Metrics.histogram reg ~name:"kv_read_latency_ns" t.read_latency;
  Nr_obs.Metrics.histogram reg ~name:"kv_write_latency_ns" t.write_latency;
  Nr_obs.Metrics.counter reg ~name:"kv_slowlog_len" (fun () ->
      Nr_obs.Slowlog.length t.slowlog)

let pp ppf t =
  Format.fprintf ppf "reads:  %a@.writes: %a@.slowlog:@.%a"
    Nr_obs.Histogram.pp t.read_latency Nr_obs.Histogram.pp t.write_latency
    Nr_obs.Slowlog.pp t.slowlog

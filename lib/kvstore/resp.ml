(** RESP2 (REdis Serialization Protocol) codec — enough of the wire format
    for real clients to talk to the demo server: request arrays of bulk
    strings in, the five RESP reply types out. *)

type parse_result =
  | Parsed of string list * int  (** tokens, bytes consumed *)
  | Incomplete
  | Invalid of string

let crlf = "\r\n"

(* Find "\r\n" starting at [pos]; return index of '\r'. *)
let find_crlf s pos =
  let n = String.length s in
  let rec go i =
    if i + 1 >= n then None
    else if s.[i] = '\r' && s.[i + 1] = '\n' then Some i
    else go (i + 1)
  in
  go pos

let parse_int s ~start ~stop =
  match int_of_string_opt (String.sub s start (stop - start)) with
  | Some n -> Ok n
  | None -> Error "protocol error: expected integer"

(** Parse one request starting at [pos].  Accepts the RESP array-of-bulk
    form and, like Redis, a plain inline command line. *)
let parse_request ?(pos = 0) (s : string) : parse_result =
  let n = String.length s in
  if pos >= n then Incomplete
  else if s.[pos] = '*' then begin
    match find_crlf s (pos + 1) with
    | None -> Incomplete
    | Some e -> (
        match parse_int s ~start:(pos + 1) ~stop:e with
        | Error m -> Invalid m
        | Ok count when count < 0 -> Invalid "protocol error: negative array"
        | Ok count ->
            let rec items k cursor acc =
              if k = 0 then Parsed (List.rev acc, cursor - pos)
              else if cursor >= n then Incomplete
              else if s.[cursor] <> '$' then
                Invalid "protocol error: expected bulk string"
              else
                match find_crlf s (cursor + 1) with
                | None -> Incomplete
                | Some e2 -> (
                    match parse_int s ~start:(cursor + 1) ~stop:e2 with
                    | Error m -> Invalid m
                    | Ok len when len < 0 ->
                        Invalid "protocol error: negative bulk length"
                    | Ok len ->
                        let body = e2 + 2 in
                        if body + len + 2 > n then Incomplete
                        else if
                          s.[body + len] <> '\r' || s.[body + len + 1] <> '\n'
                        then Invalid "protocol error: bad bulk terminator"
                        else
                          items (k - 1)
                            (body + len + 2)
                            (String.sub s body len :: acc))
            in
            items count (e + 2) [])
  end
  else begin
    (* inline command *)
    match find_crlf s pos with
    | None -> Incomplete
    | Some e ->
        let line = String.sub s pos (e - pos) in
        let tokens =
          String.split_on_char ' ' line |> List.filter (fun t -> t <> "")
        in
        if tokens = [] then Invalid "protocol error: empty inline command"
        else Parsed (tokens, e + 2 - pos)
  end

(** Streaming reply encoder: appends to [buf] without intermediate
    strings, so megabyte-sized binary-safe bulk payloads (snapshot
    streams, shipped log frame batches) cost one buffer grow instead of
    the O(n^2) concatenation the naive nested encoder would pay.  Bulk
    strings are length-prefixed, never scanned — any byte value,
    including CR, LF and NUL, passes through verbatim. *)
let rec encode_reply_buf buf (r : Command.reply) : unit =
  match r with
  | Command.Ok_reply -> Buffer.add_string buf "+OK\r\n"
  | Command.Pong -> Buffer.add_string buf "+PONG\r\n"
  | Command.Int n ->
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int n);
      Buffer.add_string buf crlf
  | Command.Bulk s ->
      Buffer.add_char buf '$';
      Buffer.add_string buf (string_of_int (String.length s));
      Buffer.add_string buf crlf;
      Buffer.add_string buf s;
      Buffer.add_string buf crlf
  | Command.Nil -> Buffer.add_string buf "$-1\r\n"
  | Command.Err e ->
      Buffer.add_string buf "-ERR ";
      Buffer.add_string buf e;
      Buffer.add_string buf crlf
  | Command.Array rs ->
      Buffer.add_char buf '*';
      Buffer.add_string buf (string_of_int (List.length rs));
      Buffer.add_string buf crlf;
      List.iter (encode_reply_buf buf) rs

let encode_reply (r : Command.reply) : string =
  let buf = Buffer.create 64 in
  encode_reply_buf buf r;
  Buffer.contents buf

type reply_result =
  | RParsed of Command.reply * int  (** reply, bytes consumed *)
  | RIncomplete
  | RInvalid of string

(** Decode one reply starting at [pos] — the inverse of {!encode_reply}.
    [+OK]/[+PONG] map back to their dedicated constructors and [-ERR m]
    back to [Err m], so [parse_reply (encode_reply r) = RParsed (r, _)]
    for every reply the store produces (the round-trip property). *)
let parse_reply ?(pos = 0) (s : string) : reply_result =
  let n = String.length s in
  (* absolute cursor in, [Ok (reply, absolute cursor after)] out *)
  let rec one cursor =
    if cursor >= n then Error `Incomplete
    else
      match s.[cursor] with
      | '+' | '-' | ':' -> (
          match find_crlf s (cursor + 1) with
          | None -> Error `Incomplete
          | Some e -> (
              let body = String.sub s (cursor + 1) (e - cursor - 1) in
              let fin = e + 2 in
              match s.[cursor] with
              | '+' -> (
                  match body with
                  | "OK" -> Ok (Command.Ok_reply, fin)
                  | "PONG" -> Ok (Command.Pong, fin)
                  | _ -> Error (`Invalid "protocol error: unknown status"))
              | '-' ->
                  let m =
                    if String.length body >= 4 && String.sub body 0 4 = "ERR "
                    then String.sub body 4 (String.length body - 4)
                    else body
                  in
                  Ok (Command.Err m, fin)
              | _ -> (
                  match int_of_string_opt body with
                  | Some v -> Ok (Command.Int v, fin)
                  | None -> Error (`Invalid "protocol error: bad integer"))))
      | '$' -> (
          match find_crlf s (cursor + 1) with
          | None -> Error `Incomplete
          | Some e -> (
              match parse_int s ~start:(cursor + 1) ~stop:e with
              | Error m -> Error (`Invalid m)
              | Ok -1 -> Ok (Command.Nil, e + 2)
              | Ok len when len < 0 ->
                  Error (`Invalid "protocol error: negative bulk length")
              | Ok len ->
                  let body = e + 2 in
                  if body + len + 2 > n then Error `Incomplete
                  else if s.[body + len] <> '\r' || s.[body + len + 1] <> '\n'
                  then Error (`Invalid "protocol error: bad bulk terminator")
                  else Ok (Command.Bulk (String.sub s body len), body + len + 2)
              ))
      | '*' -> (
          match find_crlf s (cursor + 1) with
          | None -> Error `Incomplete
          | Some e -> (
              match parse_int s ~start:(cursor + 1) ~stop:e with
              | Error m -> Error (`Invalid m)
              | Ok count when count < 0 ->
                  Error (`Invalid "protocol error: negative array")
              | Ok count ->
                  let rec items k cursor acc =
                    if k = 0 then Ok (Command.Array (List.rev acc), cursor)
                    else
                      match one cursor with
                      | Ok (r, cursor) -> items (k - 1) cursor (r :: acc)
                      | Error _ as err -> err
                  in
                  items count (e + 2) []))
      | _ -> Error (`Invalid "protocol error: unexpected reply type")
  in
  match one pos with
  | Ok (r, fin) -> RParsed (r, fin - pos)
  | Error `Incomplete -> RIncomplete
  | Error (`Invalid m) -> RInvalid m

let encode_request tokens =
  Printf.sprintf "*%d%s%s" (List.length tokens) crlf
    (String.concat ""
       (List.map
          (fun t -> Printf.sprintf "$%d%s%s%s" (String.length t) crlf t crlf)
          tokens))

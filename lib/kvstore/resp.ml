(** RESP2 (REdis Serialization Protocol) codec — enough of the wire format
    for real clients to talk to the demo server: request arrays of bulk
    strings in, the five RESP reply types out. *)

type parse_result =
  | Parsed of string list * int  (** tokens, bytes consumed *)
  | Incomplete
  | Invalid of string

let crlf = "\r\n"

(* Find "\r\n" starting at [pos]; return index of '\r'. *)
let find_crlf s pos =
  let n = String.length s in
  let rec go i =
    if i + 1 >= n then None
    else if s.[i] = '\r' && s.[i + 1] = '\n' then Some i
    else go (i + 1)
  in
  go pos

let parse_int s ~start ~stop =
  match int_of_string_opt (String.sub s start (stop - start)) with
  | Some n -> Ok n
  | None -> Error "protocol error: expected integer"

(** Parse one request starting at [pos].  Accepts the RESP array-of-bulk
    form and, like Redis, a plain inline command line. *)
let parse_request ?(pos = 0) (s : string) : parse_result =
  let n = String.length s in
  if pos >= n then Incomplete
  else if s.[pos] = '*' then begin
    match find_crlf s (pos + 1) with
    | None -> Incomplete
    | Some e -> (
        match parse_int s ~start:(pos + 1) ~stop:e with
        | Error m -> Invalid m
        | Ok count when count < 0 -> Invalid "protocol error: negative array"
        | Ok count ->
            let rec items k cursor acc =
              if k = 0 then Parsed (List.rev acc, cursor - pos)
              else if cursor >= n then Incomplete
              else if s.[cursor] <> '$' then
                Invalid "protocol error: expected bulk string"
              else
                match find_crlf s (cursor + 1) with
                | None -> Incomplete
                | Some e2 -> (
                    match parse_int s ~start:(cursor + 1) ~stop:e2 with
                    | Error m -> Invalid m
                    | Ok len when len < 0 ->
                        Invalid "protocol error: negative bulk length"
                    | Ok len ->
                        let body = e2 + 2 in
                        if body + len + 2 > n then Incomplete
                        else if
                          s.[body + len] <> '\r' || s.[body + len + 1] <> '\n'
                        then Invalid "protocol error: bad bulk terminator"
                        else
                          items (k - 1)
                            (body + len + 2)
                            (String.sub s body len :: acc))
            in
            items count (e + 2) [])
  end
  else begin
    (* inline command *)
    match find_crlf s pos with
    | None -> Incomplete
    | Some e ->
        let line = String.sub s pos (e - pos) in
        let tokens =
          String.split_on_char ' ' line |> List.filter (fun t -> t <> "")
        in
        if tokens = [] then Invalid "protocol error: empty inline command"
        else Parsed (tokens, e + 2 - pos)
  end

let rec encode_reply (r : Command.reply) : string =
  match r with
  | Command.Ok_reply -> "+OK" ^ crlf
  | Command.Pong -> "+PONG" ^ crlf
  | Command.Int n -> Printf.sprintf ":%d%s" n crlf
  | Command.Bulk s -> Printf.sprintf "$%d%s%s%s" (String.length s) crlf s crlf
  | Command.Nil -> "$-1" ^ crlf
  | Command.Err e -> Printf.sprintf "-ERR %s%s" e crlf
  | Command.Array rs ->
      Printf.sprintf "*%d%s%s" (List.length rs) crlf
        (String.concat "" (List.map encode_reply rs))

let encode_request tokens =
  Printf.sprintf "*%d%s%s" (List.length tokens) crlf
    (String.concat ""
       (List.map
          (fun t -> Printf.sprintf "$%d%s%s%s" (String.length t) crlf t crlf)
          tokens))

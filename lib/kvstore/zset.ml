(** Sorted set — the Redis data type the paper evaluates (§8.3).

    Exactly like Redis, a sorted set couples {e two} structures that must be
    updated atomically by each request: a hash table for O(1) member lookup
    and a skip list ordered by (score, member) for rank and range queries.
    This coupling is why the paper's black-box methods matter here: lock-free
    algorithms cannot atomically update two structures (paper §6, "Coupled
    data structures").

    Members and scores are integers, as in the paper's benchmark driver
    (random uniformly-distributed items). *)

module Sl = Nr_seqds.Skiplist.Make (Nr_seqds.Ordered.Int_pair)

type t = {
  dict : (int, int) Nr_seqds.Hashtable.t;  (** member -> score *)
  index : unit Sl.t;  (** (score, member) ordered *)
}

let create ?(seed = 0x25E7) () =
  {
    dict = Nr_seqds.Hashtable.create ();
    index = Sl.create ~seed ();
  }

let cardinal t = Nr_seqds.Hashtable.length t.dict
let score t member = Nr_seqds.Hashtable.find t.dict member

(** Add or update a member; returns [true] when the member is new. *)
let add t ~member ~score:s =
  match Nr_seqds.Hashtable.find t.dict member with
  | Some old when old = s -> false
  | Some old ->
      ignore (Sl.remove t.index (old, member));
      ignore (Sl.insert t.index (s, member) ());
      Nr_seqds.Hashtable.set t.dict member s;
      false
  | None ->
      ignore (Sl.insert t.index (s, member) ());
      Nr_seqds.Hashtable.set t.dict member s;
      true

(** ZINCRBY: add [delta] to the member's score (0 if absent); returns the
    new score.  Like Redis, deletes and reinserts in the index. *)
let incrby t ~member ~delta =
  let old = Option.value (score t member) ~default:0 in
  let updated = old + delta in
  (match Nr_seqds.Hashtable.find t.dict member with
  | Some _ -> ignore (Sl.remove t.index (old, member))
  | None -> ());
  ignore (Sl.insert t.index (updated, member) ());
  Nr_seqds.Hashtable.set t.dict member updated;
  updated

(** ZRANK: 0-based position in score order, [None] if absent. *)
let rank t member =
  match score t member with
  | None -> None
  | Some s -> Sl.rank t.index (s, member)

(** ZRANGE: members with ranks in [start, stop], inclusive. *)
let range t ~start ~stop =
  let n = cardinal t in
  let start = if start < 0 then max 0 (n + start) else start in
  let stop = if stop < 0 then n + stop else min stop (n - 1) in
  let rec collect i acc =
    if i > stop then List.rev acc
    else
      match Sl.nth t.index i with
      | Some ((s, member), ()) -> collect (i + 1) ((member, s) :: acc)
      | None -> List.rev acc
  in
  if start > stop then [] else collect start []

let remove t member =
  match score t member with
  | None -> false
  | Some s ->
      ignore (Sl.remove t.index (s, member));
      ignore (Nr_seqds.Hashtable.remove t.dict member);
      true

let to_list t = range t ~start:0 ~stop:(cardinal t - 1)

(* The two halves must agree exactly. *)
let validate t =
  let ok = ref (Ok ()) in
  let fail msg = if !ok = Ok () then ok := Error msg in
  if Nr_seqds.Hashtable.length t.dict <> Sl.length t.index then
    fail "dict/index cardinality mismatch";
  Nr_seqds.Hashtable.iter
    (fun member s ->
      if not (Sl.mem t.index (s, member)) then fail "member missing in index")
    t.dict;
  (match Sl.validate t.index with Ok () -> () | Error e -> fail e);
  !ok

(** The in-memory store: a keyspace mapping string keys to strings or
    sorted sets, executing {!Command.t} — and packaged as a black-box
    sequential structure ([Ds_intf.S]) so NR and the baselines can make the
    whole store concurrent exactly as the paper does with Redis (§7: "20
    lines of wrapper code per structure").

    Treating the keyspace + all its sorted sets as one sequential structure
    is the paper's "coupled data structures" answer (§6): each command
    atomically updates the hash table and the skip list inside a zset. *)

type value = Str of string | Zset of Zset.t

type t = {
  keyspace : (string, value) Nr_seqds.Hashtable.t;
  mutable zset_seed : int;  (** deterministic seeds for new zsets *)
  expires : (string, int) Nr_seqds.Hashtable.t;
      (** absolute ms deadlines; a key may sit here logically dead until a
          logged [Expire_evict] or a mutation materializes the removal *)
  versions : (string, int) Nr_seqds.Hashtable.t;
      (** monotone per-key version stamps for WATCH; never reset on delete
          (ABA protection), bumped only by effective, logged mutations so
          every replica agrees on every stamp *)
  mutable now_ms : int;
      (** logical clock: advanced only by logged [Tick] entries (monotone
          max), the only notion of time mutations may consult — replicas
          applying the same log prefix always agree on it *)
}

type op = Command.t
type result = Command.reply

(* {2 Process-global knobs}

   [read_clock]: optional wall-clock sampler consulted by the *read* path
   only — a key reads as expired once its deadline passes
   [max now_ms (sample ())], so the server can observe expirations between
   wheel ticks.  Mutations never sample it (they would diverge across
   replicas applying at different wall times).  [None] (the default) keeps
   reads purely logical: bit-for-bit the pre-TTL behavior when no expiry
   commands are issued.

   [expire_skip_log]: the planted [Expire_skip_log] mutation — a read that
   observes an expired key "helpfully" deletes it from the local replica
   (bumping its stamp) without logging the eviction, the classic
   expiry-not-propagated bug.  Replica version stamps diverge and the
   lincheck WATCH/GETVER coverage flags it. *)

let read_clock : (unit -> int) option ref = ref None
let expire_skip_log = ref false

let create () =
  {
    keyspace = Nr_seqds.Hashtable.create ();
    zset_seed = 0x25E7;
    expires = Nr_seqds.Hashtable.create ();
    versions = Nr_seqds.Hashtable.create ();
    now_ms = 0;
  }

let bump t k =
  Nr_seqds.Hashtable.set t.versions k
    (1 + Option.value ~default:0 (Nr_seqds.Hashtable.find t.versions k))

let version t k = Option.value ~default:0 (Nr_seqds.Hashtable.find t.versions k)
let deadline t k = Nr_seqds.Hashtable.find t.expires k

(** The read path's view of "now": the logical clock, advanced by the
    sampler when one is installed.  [logical] forces pure logical time —
    used inside transaction bodies so a logged [Txn] replays identically
    on every replica. *)
let read_now ~logical t =
  match (logical, !read_clock) with
  | false, Some f -> max t.now_ms (f ())
  | _ -> t.now_ms

let dead_at t k ~now =
  match deadline t k with Some d -> d <= now | None -> false

(** Dead for mutation purposes: logical clock only. *)
let mutation_dead t k = dead_at t k ~now:t.now_ms

(** Materialize a logically-expired key on the *mutation* path (same log
    position on every replica, hence deterministic).  Returns true if a
    purge happened; callers fold the purge into their own single version
    bump for the command. *)
let purge_if_dead t k =
  if mutation_dead t k then begin
    ignore (Nr_seqds.Hashtable.remove t.keyspace k);
    ignore (Nr_seqds.Hashtable.remove t.expires k);
    true
  end
  else false

let dbsize_raw t = Nr_seqds.Hashtable.length t.keyspace

(** Live keys only: a key past its (read-visible) deadline no longer
    counts even before a wheel eviction materializes the removal. *)
let dbsize ?(logical = false) t =
  if Nr_seqds.Hashtable.length t.expires = 0 then dbsize_raw t
  else
    let now = read_now ~logical t in
    Nr_seqds.Hashtable.fold
      (fun acc k _ -> if dead_at t k ~now then acc else acc + 1)
      t.keyspace 0

let zset_of t key =
  match Nr_seqds.Hashtable.find t.keyspace key with
  | Some (Zset z) -> Ok z
  | Some (Str _) ->
      Error "WRONGTYPE operation against a key holding the wrong kind of value"
  | None -> Error "__missing__"

let get_or_make_zset t key =
  match zset_of t key with
  | Ok z -> Ok z
  | Error "__missing__" ->
      t.zset_seed <- t.zset_seed + 1;
      let z = Zset.create ~seed:t.zset_seed () in
      Nr_seqds.Hashtable.set t.keyspace key (Zset z);
      Ok z
  | Error e -> Error e

(* [logical]: inside a logged [Txn] body every read must use the logical
   clock only, so the compound entry replays identically on every replica
   and on AOF recovery. *)
let rec exec ~logical t (cmd : op) : result =
  let open Command in
  (* the wall sampler is consulted lazily — a command over keys with no
     deadline never pays for it (nor perturbs it in tests) *)
  let now = lazy (read_now ~logical t) in
  let dead k =
    match deadline t k with Some d -> d <= Lazy.force now | None -> false
  in
  (* the read path's masked lookup: a key past its read-visible deadline
     answers as missing but is *not* removed — reads never mutate (paper
     §4); materialization is a logged Expire_evict or a later mutation *)
  let read_find k =
    if dead k then begin
      if !expire_skip_log then begin
        (* planted Expire_skip_log bug: apply the expiry locally, without
           logging it — this replica's stamp now disagrees with the rest *)
        ignore (Nr_seqds.Hashtable.remove t.keyspace k);
        ignore (Nr_seqds.Hashtable.remove t.expires k);
        bump t k
      end;
      None
    end
    else Nr_seqds.Hashtable.find t.keyspace k
  in
  let with_zset key f =
    match read_find key with
    | Some (Zset z) -> f z
    | Some (Str _) ->
        Err "WRONGTYPE operation against a key holding the wrong kind of value"
    | None -> Nil
  in
  match cmd with
  | Ping -> Pong
  | Get k -> (
      match read_find k with
      | Some (Str s) -> Bulk s
      | Some (Zset _) ->
          Err "WRONGTYPE operation against a key holding the wrong kind of value"
      | None -> Nil)
  | Set (k, v) ->
      ignore (Nr_seqds.Hashtable.remove t.expires k);
      Nr_seqds.Hashtable.set t.keyspace k (Str v);
      bump t k;
      Ok_reply
  | Del k ->
      if purge_if_dead t k then begin
        bump t k;
        Int 0
      end
      else (
        match Nr_seqds.Hashtable.remove t.keyspace k with
        | Some _ ->
            ignore (Nr_seqds.Hashtable.remove t.expires k);
            bump t k;
            Int 1
        | None -> Int 0)
  | Exists k -> Int (match read_find k with Some _ -> 1 | None -> 0)
  | Incr k -> exec ~logical t (Incrby (k, 1))
  | Incrby (k, n) ->
      if purge_if_dead t k then begin
        Nr_seqds.Hashtable.set t.keyspace k (Str (string_of_int n));
        bump t k;
        Int n
      end
      else (
        match Nr_seqds.Hashtable.find t.keyspace k with
        | Some (Str s) -> (
            match int_of_string_opt s with
            | Some v ->
                let v = v + n in
                Nr_seqds.Hashtable.set t.keyspace k (Str (string_of_int v));
                bump t k;
                Int v
            | None -> Err "value is not an integer or out of range")
        | Some (Zset _) ->
            Err
              "WRONGTYPE operation against a key holding the wrong kind of value"
        | None ->
            Nr_seqds.Hashtable.set t.keyspace k (Str (string_of_int n));
            bump t k;
            Int n)
  | Zadd (k, s, m) -> (
      ignore (purge_if_dead t k);
      match get_or_make_zset t k with
      | Ok z ->
          let added = Zset.add z ~member:m ~score:s in
          bump t k;
          Int (if added then 1 else 0)
      | Error e -> Err e)
  | Zincrby (k, d, m) -> (
      ignore (purge_if_dead t k);
      match get_or_make_zset t k with
      | Ok z ->
          let v = Zset.incrby z ~member:m ~delta:d in
          bump t k;
          Int v
      | Error e -> Err e)
  | Zrank (k, m) ->
      with_zset k (fun z ->
          match Zset.rank z m with Some r -> Int r | None -> Nil)
  | Zscore (k, m) ->
      with_zset k (fun z ->
          match Zset.score z m with Some s -> Int s | None -> Nil)
  | Zcard k -> (
      match read_find k with
      | Some (Zset z) -> Int (Zset.cardinal z)
      | Some (Str _) ->
          Err "WRONGTYPE operation against a key holding the wrong kind of value"
      | None -> Int 0)
  | Zrange (k, a, b) ->
      with_zset k (fun z ->
          Array
            (List.concat_map
               (fun (m, s) -> [ Int m; Int s ])
               (Zset.range z ~start:a ~stop:b)))
  | Zrem (k, m) ->
      if purge_if_dead t k then Nil
      else
        with_zset k (fun z ->
            let hit = Zset.remove z m in
            if hit then bump t k;
            Int (if hit then 1 else 0))
  | Mget ks ->
      (* like Redis: a wrong-typed key yields nil, never an error *)
      Array
        (List.map
           (fun k ->
             match read_find k with
             | Some (Str s) -> Bulk s
             | Some (Zset _) | None -> Nil)
           ks)
  | Mset ps ->
      List.iter
        (fun (k, v) ->
          ignore (Nr_seqds.Hashtable.remove t.expires k);
          Nr_seqds.Hashtable.set t.keyspace k (Str v);
          bump t k)
        ps;
      Ok_reply
  | Dbsize -> Int (dbsize ~logical t)
  | Slowlog_get | Slowlog_reset | Slowlog_len ->
      (* answered by the serving layer; a store reached directly (tests,
         bare executors) reports the misrouting instead of crashing *)
      Err "SLOWLOG is handled by the server"
  | Sync | Psync _ ->
      Err "SYNC is handled by the server"
  | Wait _ | Replack _ ->
      Err "WAIT is handled by the server"
  | Multi | Exec | Discard | Watch _ | Unwatch ->
      Err "MULTI is handled by the server"
  | Expire _ | Pexpire _ ->
      (* relative expiries are session-normalized to absolute PEXPIREAT
         before they may reach the log; anything else is a misroute *)
      Err "EXPIRE is handled by the server"
  | Pexpireat (k, d) ->
      if purge_if_dead t k then begin
        bump t k;
        Int 0
      end
      else if not (Nr_seqds.Hashtable.mem t.keyspace k) then Int 0
      else if deadline t k = Some d then Int 1
      else begin
        Nr_seqds.Hashtable.set t.expires k d;
        bump t k;
        Int 1
      end
  | Persist k ->
      if purge_if_dead t k then begin
        bump t k;
        Int 0
      end
      else if Nr_seqds.Hashtable.mem t.keyspace k && deadline t k <> None
      then begin
        ignore (Nr_seqds.Hashtable.remove t.expires k);
        bump t k;
        Int 1
      end
      else Int 0
  | Ttl k | Pttl k -> (
      match read_find k with
      | None -> Int (-2)
      | Some _ -> (
          match deadline t k with
          | None -> Int (-1)
          | Some d -> (
              let ms = d - Lazy.force now in
              match cmd with
              | Ttl _ -> Int ((ms + 999) / 1000)
              | _ -> Int ms)))
  | Getver k -> Int (version t k)
  | Setver (k, v) ->
      (* absolute assignment: a dump's SETVER section comes after all data
         lines and covers every versioned key, so replay — whether into a
         fresh store or over a flushed one whose Flushall bumps inflated
         stamps — lands exactly on the dumping store's values *)
      Nr_seqds.Hashtable.set t.versions k v;
      Ok_reply
  | Tick n ->
      t.now_ms <- max t.now_ms n;
      Int t.now_ms
  | Expire_evict (k, d) ->
      (* incarnation guard: only evict if the deadline is still the one the
         wheel saw — a Set/Persist/re-expire in between makes this a no-op *)
      if deadline t k = Some d then begin
        ignore (Nr_seqds.Hashtable.remove t.keyspace k);
        ignore (Nr_seqds.Hashtable.remove t.expires k);
        bump t k;
        Int 1
      end
      else Int 0
  | Txn_test ws ->
      Int (if List.for_all (fun (k, v) -> version t k = v) ws then 1 else 0)
  | Txn (ws, cmds) ->
      if List.for_all (fun (k, v) -> version t k = v) ws then
        Array (List.map (exec ~logical:true t) cmds)
      else Nil
  | Flushall ->
      let keys =
        Nr_seqds.Hashtable.fold (fun acc k _ -> k :: acc) t.keyspace []
      in
      List.iter
        (fun k ->
          ignore (Nr_seqds.Hashtable.remove t.keyspace k);
          ignore (Nr_seqds.Hashtable.remove t.expires k);
          bump t k)
        keys;
      Ok_reply
  | Reset ->
      let clear tbl =
        let keys = Nr_seqds.Hashtable.fold (fun acc k _ -> k :: acc) tbl [] in
        List.iter (fun k -> ignore (Nr_seqds.Hashtable.remove tbl k)) keys
      in
      clear t.keyspace;
      clear t.expires;
      clear t.versions;
      t.now_ms <- 0;
      Ok_reply

let execute t cmd = exec ~logical:false t cmd

let is_read_only = Command.is_read_only

(* ZRANK/ZINCRBY footprints: a hash probe plus a skip-list path, with the
   lines determined by the member so skewed workloads contend (paper §8.3
   uses uniform members over a 10k-item set). *)
let footprint t (cmd : op) =
  let open Command in
  let zset_len key =
    match zset_of t key with Ok z -> Zset.cardinal z | Error _ -> 0
  in
  let path key = Nr_seqds.Fp_util.skiplist_path_lines (zset_len key) in
  let fpkey key m = (Hashtbl.hash key * 0x85EBCA6B) + m in
  match cmd with
  | Ping -> Nr_runtime.Footprint.v ~key:0 ~reads:1 ()
  | Get k | Exists k ->
      Nr_runtime.Footprint.v ~key:(Hashtbl.hash k) ~reads:2 ()
  | Set (k, _) | Del k | Incr k | Incrby (k, _) ->
      Nr_runtime.Footprint.v ~key:(Hashtbl.hash k) ~reads:2 ~writes:1 ()
  | Zadd (k, _, m) | Zincrby (k, _, m) ->
      (* delete + reinsert in the zskiplist plus the dict update *)
      Nr_runtime.Footprint.v ~key:(fpkey k m)
        ~reads:(2 + path k)
        ~writes:4 ~spine_reads:3
        ~spine_writes:(Nr_seqds.Fp_util.spine_promotion m)
        ()
  | Zrank (k, m) | Zscore (k, m) ->
      Nr_runtime.Footprint.v ~key:(fpkey k m) ~reads:(2 + path k)
        ~spine_reads:3 ()
  | Zcard k -> Nr_runtime.Footprint.v ~key:(Hashtbl.hash k) ~reads:2 ()
  | Zrange (k, a, b) ->
      Nr_runtime.Footprint.v ~key:(fpkey k a)
        ~reads:(2 + path k + max 0 (b - a))
        ()
  | Zrem (k, m) ->
      Nr_runtime.Footprint.v ~key:(fpkey k m) ~reads:(2 + path k) ~writes:4 ()
  | Mget ks ->
      Nr_runtime.Footprint.v ~key:(Hashtbl.hash ks)
        ~reads:(2 * List.length ks)
        ()
  | Mset ps ->
      Nr_runtime.Footprint.v ~key:(Hashtbl.hash ps)
        ~reads:(2 * List.length ps)
        ~writes:(List.length ps) ()
  | Dbsize | Slowlog_get | Slowlog_reset | Slowlog_len | Sync | Psync _
  | Wait _ | Replack _ ->
      Nr_runtime.Footprint.v ~key:0 ~reads:1 ()
  | Multi | Exec | Discard | Watch _ | Unwatch ->
      Nr_runtime.Footprint.v ~key:0 ~reads:1 ()
  | Expire (k, _) | Pexpire (k, _) | Ttl k | Pttl k | Getver k ->
      Nr_runtime.Footprint.v ~key:(Hashtbl.hash k) ~reads:2 ()
  | Pexpireat (k, _) | Persist k | Expire_evict (k, _) | Setver (k, _) ->
      Nr_runtime.Footprint.v ~key:(Hashtbl.hash k) ~reads:2 ~writes:1 ()
  | Tick _ -> Nr_runtime.Footprint.v ~key:0 ~reads:1 ~writes:1 ()
  | Txn_test ws ->
      Nr_runtime.Footprint.v ~key:(Hashtbl.hash ws)
        ~reads:(1 + (2 * List.length ws))
        ()
  | Txn (ws, cmds) ->
      (* one compound entry: the watch probes plus a flat estimate for the
         body — the point of the exercise is that this is *one* combiner
         handoff regardless of body length.  The line key hashes the body
         itself so distinct transactions touch distinct simulated lines,
         exactly as their commands would individually. *)
      Nr_runtime.Footprint.v
        ~key:(Hashtbl.hash (ws, cmds))
        ~reads:((2 * List.length ws) + (2 * List.length cmds))
        ~writes:(max 1 (List.length cmds))
        ()
  | Flushall | Reset ->
      Nr_runtime.Footprint.v ~key:0 ~reads:(dbsize_raw t)
        ~writes:(dbsize_raw t) ~hot_write:true ()

(* {2 Snapshot codec} — the store serialized as the command stream that
   rebuilds it: one RESP-encoded SET per string key, one ZADD per sorted-set
   member, keys in lexicographic order so the bytes depend only on the
   logical content (never on hash-table iteration order).  This is the
   payload of durability snapshots and of replication full resyncs; being
   plain RESP requests, [load] is just the ordinary parse + execute path. *)

let dump t =
  let buf = Buffer.create 256 in
  let keys =
    List.sort compare
      (Nr_seqds.Hashtable.fold (fun acc k _ -> k :: acc) t.keyspace [])
  in
  List.iter
    (fun k ->
      (match Nr_seqds.Hashtable.find t.keyspace k with
      | Some (Str v) -> Buffer.add_string buf (Resp.encode_request [ "SET"; k; v ])
      | Some (Zset z) ->
          List.iter
            (fun (m, s) ->
              Buffer.add_string buf
                (Resp.encode_request
                   [ "ZADD"; k; string_of_int s; string_of_int m ]))
            (Zset.to_list z)
      | None -> ());
      match Nr_seqds.Hashtable.find t.expires k with
      | Some d ->
          Buffer.add_string buf
            (Resp.encode_request [ "PEXPIREAT"; k; string_of_int d ])
      | None -> ())
    keys;
  (* version stamps, including deleted-but-once-versioned keys: a
     FULLRESYNC'd follower must reach the same WATCH verdicts as the
     leader.  [Setver] assigns absolutely and this section follows every
     data line, so it overrides replay-accumulated bumps no matter how
     the target store arrived here (fresh recovery or flush-and-reload). *)
  let vkeys =
    List.sort compare
      (Nr_seqds.Hashtable.fold (fun acc k _ -> k :: acc) t.versions [])
  in
  List.iter
    (fun k ->
      Buffer.add_string buf
        (Resp.encode_request [ "SETVER"; k; string_of_int (version t k) ]))
    vkeys;
  if t.now_ms > 0 then
    Buffer.add_string buf
      (Resp.encode_request [ "TICK"; string_of_int t.now_ms ]);
  Buffer.contents buf

(** Replay a {!dump} stream into [t] (which need not be empty: replication
    full resyncs flush first, recovery starts from a fresh store). *)
let load t s =
  let n = String.length s in
  let rec go pos =
    if pos >= n then Ok ()
    else
      match Resp.parse_request ~pos s with
      | Resp.Parsed (tokens, consumed) -> (
          match Command.of_strings tokens with
          | Ok cmd ->
              ignore (execute t cmd);
              go (pos + consumed)
          | Error e -> Error (Printf.sprintf "snapshot stream: %s" e))
      | Resp.Incomplete -> Error "snapshot stream: truncated"
      | Resp.Invalid e -> Error (Printf.sprintf "snapshot stream: %s" e)
  in
  go 0

(** Logical fingerprint (FNV-1a over {!dump}): equal iff the stores hold
    the same keys, values and sorted sets — independent of the physical
    layout, so a replica rebuilt by replaying a shipped log fingerprints
    identically to the original. *)
let fingerprint t =
  let s = dump t in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    s;
  !h

(** All (key, absolute-ms deadline) pairs — wheel reseeding after
    recovery.  Stale entries are harmless: {!Command.Expire_evict} carries
    the deadline it saw and the store ignores mismatches. *)
let expirations t =
  List.sort compare
    (Nr_seqds.Hashtable.fold (fun acc k d -> (k, d) :: acc) t.expires [])

let logical_now t = t.now_ms

let lines t =
  let zset_lines =
    Nr_seqds.Hashtable.fold
      (fun acc _ v -> match v with Zset z -> acc + (2 * Zset.cardinal z) | Str _ -> acc)
      t.keyspace 0
  in
  max 64 ((2 * dbsize t) + zset_lines)

let pp_op = Command.pp

(** The in-memory store: a keyspace mapping string keys to strings or
    sorted sets, executing {!Command.t} — and packaged as a black-box
    sequential structure ([Ds_intf.S]) so NR and the baselines can make the
    whole store concurrent exactly as the paper does with Redis (§7: "20
    lines of wrapper code per structure").

    Treating the keyspace + all its sorted sets as one sequential structure
    is the paper's "coupled data structures" answer (§6): each command
    atomically updates the hash table and the skip list inside a zset. *)

type value = Str of string | Zset of Zset.t

type t = {
  keyspace : (string, value) Nr_seqds.Hashtable.t;
  mutable zset_seed : int;  (** deterministic seeds for new zsets *)
}

type op = Command.t
type result = Command.reply

let create () =
  { keyspace = Nr_seqds.Hashtable.create (); zset_seed = 0x25E7 }

let dbsize t = Nr_seqds.Hashtable.length t.keyspace

let zset_of t key =
  match Nr_seqds.Hashtable.find t.keyspace key with
  | Some (Zset z) -> Ok z
  | Some (Str _) ->
      Error "WRONGTYPE operation against a key holding the wrong kind of value"
  | None -> Error "__missing__"

let get_or_make_zset t key =
  match zset_of t key with
  | Ok z -> Ok z
  | Error "__missing__" ->
      t.zset_seed <- t.zset_seed + 1;
      let z = Zset.create ~seed:t.zset_seed () in
      Nr_seqds.Hashtable.set t.keyspace key (Zset z);
      Ok z
  | Error e -> Error e

let rec execute t (cmd : op) : result =
  let open Command in
  let with_zset key f =
    match zset_of t key with
    | Ok z -> f z
    | Error "__missing__" -> Nil
    | Error e -> Err e
  in
  match cmd with
  | Ping -> Pong
  | Get k -> (
      match Nr_seqds.Hashtable.find t.keyspace k with
      | Some (Str s) -> Bulk s
      | Some (Zset _) ->
          Err "WRONGTYPE operation against a key holding the wrong kind of value"
      | None -> Nil)
  | Set (k, v) ->
      Nr_seqds.Hashtable.set t.keyspace k (Str v);
      Ok_reply
  | Del k -> Int (match Nr_seqds.Hashtable.remove t.keyspace k with
                  | Some _ -> 1
                  | None -> 0)
  | Exists k -> Int (if Nr_seqds.Hashtable.mem t.keyspace k then 1 else 0)
  | Incr k -> execute t (Incrby (k, 1))
  | Incrby (k, n) -> (
      match Nr_seqds.Hashtable.find t.keyspace k with
      | Some (Str s) -> (
          match int_of_string_opt s with
          | Some v ->
              let v = v + n in
              Nr_seqds.Hashtable.set t.keyspace k (Str (string_of_int v));
              Int v
          | None -> Err "value is not an integer or out of range")
      | Some (Zset _) ->
          Err "WRONGTYPE operation against a key holding the wrong kind of value"
      | None ->
          Nr_seqds.Hashtable.set t.keyspace k (Str (string_of_int n));
          Int n)
  | Zadd (k, s, m) -> (
      match get_or_make_zset t k with
      | Ok z -> Int (if Zset.add z ~member:m ~score:s then 1 else 0)
      | Error e -> Err e)
  | Zincrby (k, d, m) -> (
      match get_or_make_zset t k with
      | Ok z -> Int (Zset.incrby z ~member:m ~delta:d)
      | Error e -> Err e)
  | Zrank (k, m) ->
      with_zset k (fun z ->
          match Zset.rank z m with Some r -> Int r | None -> Nil)
  | Zscore (k, m) ->
      with_zset k (fun z ->
          match Zset.score z m with Some s -> Int s | None -> Nil)
  | Zcard k -> (
      match zset_of t k with
      | Ok z -> Int (Zset.cardinal z)
      | Error "__missing__" -> Int 0
      | Error e -> Err e)
  | Zrange (k, a, b) ->
      with_zset k (fun z ->
          Array
            (List.concat_map
               (fun (m, s) -> [ Int m; Int s ])
               (Zset.range z ~start:a ~stop:b)))
  | Zrem (k, m) ->
      with_zset k (fun z -> Int (if Zset.remove z m then 1 else 0))
  | Mget ks ->
      (* like Redis: a wrong-typed key yields nil, never an error *)
      Array
        (List.map
           (fun k ->
             match Nr_seqds.Hashtable.find t.keyspace k with
             | Some (Str s) -> Bulk s
             | Some (Zset _) | None -> Nil)
           ks)
  | Mset ps ->
      List.iter (fun (k, v) -> Nr_seqds.Hashtable.set t.keyspace k (Str v)) ps;
      Ok_reply
  | Dbsize -> Int (dbsize t)
  | Slowlog_get | Slowlog_reset | Slowlog_len ->
      (* answered by the serving layer; a store reached directly (tests,
         bare executors) reports the misrouting instead of crashing *)
      Err "SLOWLOG is handled by the server"
  | Sync | Psync _ ->
      Err "SYNC is handled by the server"
  | Wait _ | Replack _ ->
      Err "WAIT is handled by the server"
  | Flushall ->
      let keys =
        Nr_seqds.Hashtable.fold (fun acc k _ -> k :: acc) t.keyspace []
      in
      List.iter (fun k -> ignore (Nr_seqds.Hashtable.remove t.keyspace k)) keys;
      Ok_reply

let is_read_only = Command.is_read_only

(* ZRANK/ZINCRBY footprints: a hash probe plus a skip-list path, with the
   lines determined by the member so skewed workloads contend (paper §8.3
   uses uniform members over a 10k-item set). *)
let footprint t (cmd : op) =
  let open Command in
  let zset_len key =
    match zset_of t key with Ok z -> Zset.cardinal z | Error _ -> 0
  in
  let path key = Nr_seqds.Fp_util.skiplist_path_lines (zset_len key) in
  let fpkey key m = (Hashtbl.hash key * 0x85EBCA6B) + m in
  match cmd with
  | Ping -> Nr_runtime.Footprint.v ~key:0 ~reads:1 ()
  | Get k | Exists k ->
      Nr_runtime.Footprint.v ~key:(Hashtbl.hash k) ~reads:2 ()
  | Set (k, _) | Del k | Incr k | Incrby (k, _) ->
      Nr_runtime.Footprint.v ~key:(Hashtbl.hash k) ~reads:2 ~writes:1 ()
  | Zadd (k, _, m) | Zincrby (k, _, m) ->
      (* delete + reinsert in the zskiplist plus the dict update *)
      Nr_runtime.Footprint.v ~key:(fpkey k m)
        ~reads:(2 + path k)
        ~writes:4 ~spine_reads:3
        ~spine_writes:(Nr_seqds.Fp_util.spine_promotion m)
        ()
  | Zrank (k, m) | Zscore (k, m) ->
      Nr_runtime.Footprint.v ~key:(fpkey k m) ~reads:(2 + path k)
        ~spine_reads:3 ()
  | Zcard k -> Nr_runtime.Footprint.v ~key:(Hashtbl.hash k) ~reads:2 ()
  | Zrange (k, a, b) ->
      Nr_runtime.Footprint.v ~key:(fpkey k a)
        ~reads:(2 + path k + max 0 (b - a))
        ()
  | Zrem (k, m) ->
      Nr_runtime.Footprint.v ~key:(fpkey k m) ~reads:(2 + path k) ~writes:4 ()
  | Mget ks ->
      Nr_runtime.Footprint.v ~key:(Hashtbl.hash ks)
        ~reads:(2 * List.length ks)
        ()
  | Mset ps ->
      Nr_runtime.Footprint.v ~key:(Hashtbl.hash ps)
        ~reads:(2 * List.length ps)
        ~writes:(List.length ps) ()
  | Dbsize | Slowlog_get | Slowlog_reset | Slowlog_len | Sync | Psync _
  | Wait _ | Replack _ ->
      Nr_runtime.Footprint.v ~key:0 ~reads:1 ()
  | Flushall ->
      Nr_runtime.Footprint.v ~key:0 ~reads:(dbsize t) ~writes:(dbsize t)
        ~hot_write:true ()

(* {2 Snapshot codec} — the store serialized as the command stream that
   rebuilds it: one RESP-encoded SET per string key, one ZADD per sorted-set
   member, keys in lexicographic order so the bytes depend only on the
   logical content (never on hash-table iteration order).  This is the
   payload of durability snapshots and of replication full resyncs; being
   plain RESP requests, [load] is just the ordinary parse + execute path. *)

let dump t =
  let buf = Buffer.create 256 in
  let keys =
    List.sort compare
      (Nr_seqds.Hashtable.fold (fun acc k _ -> k :: acc) t.keyspace [])
  in
  List.iter
    (fun k ->
      match Nr_seqds.Hashtable.find t.keyspace k with
      | Some (Str v) -> Buffer.add_string buf (Resp.encode_request [ "SET"; k; v ])
      | Some (Zset z) ->
          List.iter
            (fun (m, s) ->
              Buffer.add_string buf
                (Resp.encode_request
                   [ "ZADD"; k; string_of_int s; string_of_int m ]))
            (Zset.to_list z)
      | None -> ())
    keys;
  Buffer.contents buf

(** Replay a {!dump} stream into [t] (which need not be empty: replication
    full resyncs flush first, recovery starts from a fresh store). *)
let load t s =
  let n = String.length s in
  let rec go pos =
    if pos >= n then Ok ()
    else
      match Resp.parse_request ~pos s with
      | Resp.Parsed (tokens, consumed) -> (
          match Command.of_strings tokens with
          | Ok cmd ->
              ignore (execute t cmd);
              go (pos + consumed)
          | Error e -> Error (Printf.sprintf "snapshot stream: %s" e))
      | Resp.Incomplete -> Error "snapshot stream: truncated"
      | Resp.Invalid e -> Error (Printf.sprintf "snapshot stream: %s" e)
  in
  go 0

(** Logical fingerprint (FNV-1a over {!dump}): equal iff the stores hold
    the same keys, values and sorted sets — independent of the physical
    layout, so a replica rebuilt by replaying a shipped log fingerprints
    identically to the original. *)
let fingerprint t =
  let s = dump t in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    s;
  !h

let lines t =
  let zset_lines =
    Nr_seqds.Hashtable.fold
      (fun acc _ v -> match v with Zset z -> acc + (2 * Zset.cardinal z) | Str _ -> acc)
      t.keyspace 0
  in
  max 64 ((2 * dbsize t) + zset_lines)

let pp_op = Command.pp

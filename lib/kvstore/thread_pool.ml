(** A domains-backed worker pool with a shared work queue — the "thread
    pool and work queuing" the paper added to Redis (§7).  Jobs are
    arbitrary thunks; [submit] blocks only if the queue is at capacity,
    [try_submit] sheds instead of blocking. *)

type stats = {
  executed : int;  (** jobs that ran to completion (or raised) *)
  failed : int;  (** jobs that raised *)
  rejected : int;  (** [try_submit] calls refused on a full queue *)
}

type t = {
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  nonfull : Condition.t;
  capacity : int;
  mutable closed : bool;
  mutable joining : bool;  (* a shutdown caller is joining the domains *)
  mutable joined : bool;  (* the join finished *)
  all_done : Condition.t;
  mutable workers : unit Domain.t array;
  mutable on_error : exn -> unit;
  (* counters are mutated under [mutex] ([executed]/[failed] by workers,
     [rejected] by producers), so [stats] reads are exact *)
  mutable executed : int;
  mutable failed : int;
  mutable rejected : int;
}

let default_on_error exn =
  Printf.eprintf "thread_pool: job raised %s\n%!" (Printexc.to_string exn)

let worker t () =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.nonempty t.mutex
    done;
    if Queue.is_empty t.queue && t.closed then Mutex.unlock t.mutex
    else begin
      let job = Queue.pop t.queue in
      Condition.signal t.nonfull;
      Mutex.unlock t.mutex;
      let err =
        match job () with
        | () -> None
        | exception exn -> Some exn
      in
      Mutex.lock t.mutex;
      t.executed <- t.executed + 1;
      (match err with Some _ -> t.failed <- t.failed + 1 | None -> ());
      Mutex.unlock t.mutex;
      (match err with
      | Some exn -> (
          (* the hook must not kill the worker, whatever it does *)
          try t.on_error exn with _ -> ())
      | None -> ());
      loop ()
    end
  in
  loop ()

let create ?(capacity = 1024) ?(on_error = default_on_error) ~workers () =
  if workers <= 0 then invalid_arg "Thread_pool.create: workers must be > 0";
  let t =
    {
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      nonfull = Condition.create ();
      capacity;
      closed = false;
      joining = false;
      joined = false;
      all_done = Condition.create ();
      workers = [||];
      on_error;
      executed = 0;
      failed = 0;
      rejected = 0;
    }
  in
  t.workers <- Array.init workers (fun _ -> Domain.spawn (worker t));
  t

let set_on_error t f = t.on_error <- f

let submit t job =
  Mutex.lock t.mutex;
  (* [closed] must be re-checked after every wake-up: a producer parked on
     a full queue can otherwise outsleep [shutdown] and enqueue a job into
     the closed pool, where it is silently dropped once the workers exit *)
  while (not t.closed) && Queue.length t.queue >= t.capacity do
    Condition.wait t.nonfull t.mutex
  done;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Thread_pool.submit: pool is closed"
  end;
  Queue.push job t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.mutex

let try_submit t job =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Thread_pool.try_submit: pool is closed"
  end;
  if Queue.length t.queue >= t.capacity then begin
    t.rejected <- t.rejected + 1;
    Mutex.unlock t.mutex;
    false
  end
  else begin
    Queue.push job t.queue;
    Condition.signal t.nonempty;
    Mutex.unlock t.mutex;
    true
  end

let stats t =
  Mutex.lock t.mutex;
  let s = { executed = t.executed; failed = t.failed; rejected = t.rejected } in
  Mutex.unlock t.mutex;
  s

(** Close the queue and wait for the workers to drain it.  Idempotent and
    safe from concurrent callers: domains are joined exactly once (a
    double [Domain.join] raises); the first caller joins, any later or
    concurrent caller waits for that join to finish and then returns. *)
let shutdown t =
  Mutex.lock t.mutex;
  if t.joined then Mutex.unlock t.mutex
  else if t.joining then begin
    while not t.joined do
      Condition.wait t.all_done t.mutex
    done;
    Mutex.unlock t.mutex
  end
  else begin
    t.joining <- true;
    t.closed <- true;
    Condition.broadcast t.nonempty;
    (* producers blocked in [submit] on a full queue must fail fast rather
       than wait for draining workers to happen to signal them *)
    Condition.broadcast t.nonfull;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    Mutex.lock t.mutex;
    t.joined <- true;
    Condition.broadcast t.all_done;
    Mutex.unlock t.mutex
  end

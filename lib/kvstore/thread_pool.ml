(** A domains-backed worker pool with a shared work queue — the "thread
    pool and work queuing" the paper added to Redis (§7).  Jobs are
    arbitrary thunks; [submit] blocks only if the queue is at capacity. *)

type t = {
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  nonfull : Condition.t;
  capacity : int;
  mutable closed : bool;
  mutable workers : unit Domain.t array;
}

let worker t () =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.nonempty t.mutex
    done;
    if Queue.is_empty t.queue && t.closed then Mutex.unlock t.mutex
    else begin
      let job = Queue.pop t.queue in
      Condition.signal t.nonfull;
      Mutex.unlock t.mutex;
      (try job () with _ -> ());
      loop ()
    end
  in
  loop ()

let create ?(capacity = 1024) ~workers () =
  if workers <= 0 then invalid_arg "Thread_pool.create: workers must be > 0";
  let t =
    {
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      nonfull = Condition.create ();
      capacity;
      closed = false;
      workers = [||];
    }
  in
  t.workers <- Array.init workers (fun _ -> Domain.spawn (worker t));
  t

let submit t job =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Thread_pool.submit: pool is closed"
  end;
  while Queue.length t.queue >= t.capacity do
    Condition.wait t.nonfull t.mutex
  done;
  Queue.push job t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.mutex

(** Close the queue and wait for the workers to drain it. *)
let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.workers

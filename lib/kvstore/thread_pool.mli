(** A domains-backed worker pool with a bounded shared work queue — the
    "thread pool and work queuing" the paper added to Redis (§7). *)

type t

val create : ?capacity:int -> workers:int -> unit -> t
(** Spawn [workers] domains serving a queue of at most [capacity] pending
    jobs (default 1024). *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue a job; blocks while the queue is full.  Exceptions raised by
    the job are swallowed.  Raises [Invalid_argument] after {!shutdown}. *)

val shutdown : t -> unit
(** Close the queue, drain remaining jobs and join the workers. *)

(** A domains-backed worker pool with a bounded shared work queue — the
    "thread pool and work queuing" the paper added to Redis (§7). *)

type t

type stats = {
  executed : int;  (** jobs that ran to completion (or raised) *)
  failed : int;  (** jobs that raised an exception *)
  rejected : int;  (** {!try_submit} calls refused on a full queue *)
}

val create :
  ?capacity:int -> ?on_error:(exn -> unit) -> workers:int -> unit -> t
(** Spawn [workers] domains serving a queue of at most [capacity] pending
    jobs (default 1024).  A job that raises is counted in {!stats} and
    reported to [on_error] (default: one line to stderr); the exception
    never kills the worker. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue a job; blocks while the queue is full.  Raises
    [Invalid_argument] after {!shutdown} — including when the shutdown
    happens while the caller is blocked waiting for queue space: the job
    is refused, never silently enqueued into the closed pool. *)

val try_submit : t -> (unit -> unit) -> bool
(** Non-blocking [submit]: [false] (and a bump of the rejected counter)
    instead of waiting when the queue is at capacity — the caller sheds
    the work.  Raises [Invalid_argument] after {!shutdown}. *)

val set_on_error : t -> (exn -> unit) -> unit
(** Replace the error hook (e.g. to route job failures into a server
    metric).  Applies to jobs dequeued after the call. *)

val stats : t -> stats
(** Exact snapshot of the pool counters. *)

val shutdown : t -> unit
(** Close the queue, drain remaining jobs and join the workers.  Producers
    blocked in {!submit} are woken and fail fast.  Idempotent and safe
    from concurrent callers: the workers are joined exactly once; a
    second (or concurrent) call waits for the first to finish and
    returns normally instead of re-joining the domains. *)

(** KV-store observability: read/write latency histograms plus a
    slowest-N command log, shared by the RESP server's worker threads.

    Durations are wall-clock nanoseconds around the executor call (not
    socket I/O).  Histogram recording is mutex-guarded (workers are real
    domains); the slowlog has its own internal lock. *)

type t

val create : ?slowlog_capacity:int -> ?slowlog_threshold:int -> unit -> t
(** [slowlog_threshold] is in nanoseconds (default 0: admit anything slow
    enough to rank). *)

val observe : t -> Command.t -> duration_ns:int -> unit
(** Record one executed command: latency into the read or write histogram
    (by {!Command.is_read_only}) and a slowlog admission attempt. *)

val slowlog : t -> Nr_obs.Slowlog.t
val read_latency : t -> Nr_obs.Histogram.t
val write_latency : t -> Nr_obs.Histogram.t

val slowlog_reply : t -> Command.reply
(** Redis-style SLOWLOG GET reply: array of [id, duration_us, command]
    entries, slowest first. *)

val register_metrics : t -> Nr_obs.Metrics.t -> unit
val pp : Format.formatter -> t -> unit

(** A RESP-speaking TCP front end for the store.  Connections are served by
    a worker pool; every parsed command goes through a caller-supplied
    executor, so the same server runs over an NR-wrapped store, a
    lock-wrapped one, or a bare one. *)

type t

val create :
  ?obs:Kv_obs.t ->
  ?special:(Command.t -> Command.reply option) ->
  port:int ->
  workers:int ->
  (Command.t -> Command.reply) ->
  t
(** Bind 127.0.0.1:[port] ([0] picks any free port) and spawn the worker
    pool.  Does not start accepting; call {!serve}.

    With [obs], every executed command is timed into the observability
    state and the SLOWLOG GET/RESET/LEN commands are answered by the
    server itself (they never reach the store).  Without it, SLOWLOG
    commands fall through to the executor.

    [special] runs before everything else on each parsed command; a
    [Some reply] answers the command at the serving layer (replication
    SYNC/PSYNC, custom introspection), [None] falls through to the
    normal path.  It is called from worker threads concurrently. *)

val obs : t -> Kv_obs.t option

val port : t -> int
(** The bound port (useful with [port:0]). *)

val pool_stats : t -> Thread_pool.stats
(** Worker-pool counters: jobs executed/failed, connections shed.  A
    connection handed to a saturated pool is refused with a RESP
    [BUSY] error and closed instead of blocking the accept loop. *)

val serve : t -> unit
(** Accept loop; returns after {!shutdown} is called from another thread. *)

val shutdown : t -> unit
(** Stop accepting, close the listening socket, drain in-flight replies
    (bounded wait), break any lingering connections' blocked reads and
    join the workers.  Safe with long-lived client connections — e.g. a
    follower's replication link — which previously deadlocked the join
    behind their blocked [read]. *)

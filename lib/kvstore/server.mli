(** A RESP-speaking TCP front end for the store, with two serving modes:

    - [Pool]: blocking sockets, one worker-pool job per connection (the
      paper's §7 thread-pool shape).  Concurrency is capped at the pool
      size; excess connections are shed with a RESP [BUSY] error.
    - [Evloop]: an epoll readiness event loop with one lightweight fiber
      per connection — nonblocking sockets, pipelined RESP parsing and
      batched reply writes — dispatching parsed request batches to
      per-node work-stealing run queues drained by [workers] executor
      domains.  Thousands of concurrent connections per process.

    Every parsed command goes through a caller-supplied executor, so the
    same server runs over an NR-wrapped store, a lock-wrapped one, or a
    bare one. *)

type t

type net = Pool | Evloop

type session_hook =
  exec:(Command.t -> Command.reply) ->
  clock:(unit -> int) ->
  Command.t ->
  Command.reply option
(** Per-connection command interceptor, instantiated once per accepted
    connection: [Some r] answers the command at the session layer (MULTI
    queueing, WATCH stamp bookkeeping, relative-expiry normalization),
    [None] falls through to the executor.  [exec] runs a command on the
    server's normal path — the session uses it for WATCH stamp reads and
    for the compound entry EXEC submits; [clock] is the server's
    millisecond clock.  See {!Nr_txn.Session.hook}. *)

type stats = {
  accept_errors : int;
      (** transient accept failures survived (EMFILE/ECONNABORTED bursts) *)
  emfile_backoffs : int;  (** accept pauses forced by fd exhaustion *)
  ev_conns : int;  (** evloop: connections accepted *)
  ev_batches : int;  (** evloop: request batches submitted to the scheduler *)
  ev_requests : int;  (** evloop: pipelined requests executed *)
}

val create :
  ?obs:Kv_obs.t ->
  ?special:(Command.t -> Command.reply option) ->
  ?session:session_hook ->
  ?clock:(unit -> int) ->
  ?net:net ->
  ?nodes:int ->
  port:int ->
  workers:int ->
  (Command.t -> Command.reply) ->
  t
(** Bind 127.0.0.1:[port] ([0] picks any free port) and spawn the
    executors ([net] defaults to [Pool]).  Does not start accepting; call
    {!serve}.

    [session] enables per-connection transaction sessions (MULTI / EXEC /
    DISCARD / WATCH / UNWATCH and relative EXPIRE/PEXPIRE); without it
    those commands fall through to the executor, whose store answers them
    with a polite refusal.  [clock] (milliseconds, default the constant
    0) anchors relative expiries; servers with real TTL support pass a
    monotonic wall clock.

    In [Evloop] mode, [nodes] (default 1) is the number of per-node run
    queues; connections are pinned round-robin to a node at accept time
    so a connection's pipelined batches execute on its home node and feed
    the NR combiner aligned bursts.

    With [obs], every executed command is timed into the observability
    state and the SLOWLOG GET/RESET/LEN commands are answered by the
    server itself (they never reach the store).  Without it, SLOWLOG
    commands fall through to the executor.

    [special] runs before everything else on each parsed command; a
    [Some reply] answers the command at the serving layer (replication
    SYNC/PSYNC, custom introspection), [None] falls through to the
    normal path.  It is called from worker/executor threads concurrently. *)

val obs : t -> Kv_obs.t option

val port : t -> int
(** The bound port (useful with [port:0]). *)

val pool_stats : t -> Thread_pool.stats
(** Worker-pool counters (all zero in [Evloop] mode): jobs
    executed/failed, connections shed.  A connection handed to a
    saturated pool is refused with a RESP [BUSY] error and closed
    instead of blocking the accept loop. *)

val sched_stats : t -> Nr_net.Sched.stats option
(** Work-stealing scheduler counters ([None] in [Pool] mode). *)

val stats : t -> stats
(** Front-end counters: accept-error survivals, fd-exhaustion backoffs,
    and (evloop) connection/batch/request totals. *)

val serve : t -> unit
(** Accept loop (pool) or event loop (evloop); returns after {!shutdown}
    is called from another thread. *)

val shutdown : t -> unit
(** Stop accepting, close the listening socket, drain in-flight replies
    (bounded wait), break any lingering connections' blocked reads and
    join the executors.  Safe with long-lived client connections — e.g.
    a follower's replication link.  Idempotent: a second call returns
    immediately instead of re-joining the executor domains. *)

val write_all :
  ?write:(Unix.file_descr -> bytes -> int -> int -> int) ->
  Unix.file_descr ->
  bytes ->
  unit
(** Write the whole buffer: loops over short writes, retries zero-byte
    returns and EINTR instead of silently truncating the reply, raises on
    a real error.  [?write] lets tests inject short/zero/EINTR writes.
    Exposed for the replication layer and the regression tests. *)

val accept_error_policy : Unix.error -> [ `Stop | `Ignore | `Backoff of float ]
(** How the pool accept loop classifies an [accept] failure: EBADF/EINVAL
    mean the listening socket is gone ([`Stop]); EMFILE/ENFILE back off
    briefly so existing connections can finish and free fds; everything
    else — ECONNABORTED bursts, transient ENOBUFS — is survived.
    Exposed for the regression tests. *)

(** Sorted set — the Redis data type the paper evaluates (§8.3).

    Couples a hash table (O(1) member lookup) with a rank-indexed skip list
    ordered by (score, member); every update maintains both atomically,
    which is exactly the "coupled data structures" situation where
    black-box methods shine (§6).  Members and scores are integers. *)

type t

val create : ?seed:int -> unit -> t
(** [seed] drives the skip list's deterministic leveling. *)

val cardinal : t -> int

val score : t -> int -> int option
(** Score of a member, [None] if absent. *)

val add : t -> member:int -> score:int -> bool
(** Insert or update; [true] when the member is new (Redis ZADD). *)

val incrby : t -> member:int -> delta:int -> int
(** Add [delta] to the member's score (0 if absent); returns the new score
    (Redis ZINCRBY). *)

val rank : t -> int -> int option
(** 0-based position in (score, member) order (Redis ZRANK). *)

val range : t -> start:int -> stop:int -> (int * int) list
(** Members with ranks in [start, stop] inclusive as (member, score);
    negative indices count from the end (Redis ZRANGE). *)

val remove : t -> int -> bool
(** Remove a member; [true] if it was present (Redis ZREM). *)

val to_list : t -> (int * int) list
(** All (member, score) pairs in rank order. *)

val validate : t -> (unit, string) result
(** Check that the hash table and the skip list agree exactly. *)

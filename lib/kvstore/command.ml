(** The store's command vocabulary: the subset of Redis the paper's
    macro-benchmark exercises (sorted sets via ZRANK / ZINCRBY, §8.3) plus
    enough of the string commands for a usable store.

    [is_read_only] is the classification the black-box methods need at
    invocation time (paper §4); note the Redis subtlety the paper calls out:
    a read must never mutate, so anything resembling lazy rehashing belongs
    on the update path only. *)

type t =
  | Ping
  | Get of string
  | Set of string * string
  | Del of string
  | Exists of string
  | Incr of string
  | Incrby of string * int
  | Zadd of string * int * int  (** key, score, member *)
  | Zincrby of string * int * int  (** key, delta, member *)
  | Zrank of string * int  (** key, member *)
  | Zscore of string * int
  | Zcard of string
  | Zrange of string * int * int
  | Zrem of string * int
  | Mget of string list  (** multi-key GET; one reply slot per key, in order *)
  | Mset of (string * string) list
      (** multi-key SET, atomic; later bindings of a repeated key win *)
  | Dbsize
  | Flushall
  | Slowlog_get
  | Slowlog_reset
  | Slowlog_len
  | Sync  (** full resynchronization: snapshot stream + replication offset *)
  | Psync of int
      (** partial resync from a replication offset; the leader answers
          with a CONTINUE frame batch or demotes to a full resync *)
  | Wait of int * int
      (** [WAIT n timeout_ms]: block until >= n followers have acked this
          connection's write position, or the timeout elapses; replies with
          the count actually acked (graceful degradation, never an error) *)
  | Replack of string * int
      (** [REPLACK id seq]: a follower reporting that its durable state
          covers log positions < [seq]; feeds the leader's per-follower
          ack watermarks that WAIT counts *)
  (* -- transactions (per-connection session state; see lib/txn) -- *)
  | Multi  (** open a transaction block; subsequent commands are queued *)
  | Exec
      (** submit the queued block as one compound {!Txn} log entry —
          atomic and isolated because it linearizes at a single log
          position (the paper's compound-op trick, ROADMAP item 3) *)
  | Discard  (** drop the queued block and all watches *)
  | Watch of string
      (** optimistic concurrency: record the key's current version stamp;
          EXEC aborts if any watched stamp moved by apply time *)
  | Unwatch
  (* -- expiry (TTL) -- *)
  | Expire of string * int  (** key, relative seconds; session-normalized *)
  | Pexpire of string * int  (** key, relative milliseconds *)
  | Pexpireat of string * int
      (** key, absolute ms deadline — the only expiry-setting form that
          reaches the store/log, so replicas agree on deadlines *)
  | Ttl of string
  | Pttl of string
  | Persist of string  (** drop a key's deadline *)
  (* -- internal plumbing (log/replication frames, never typed by users) -- *)
  | Getver of string  (** read a key's version stamp (0 if never touched) *)
  | Setver of string * int
      (** snapshot replay: raise a key's version counter to an absolute
          value so FULLRESYNC'd followers reach identical WATCH verdicts *)
  | Tick of int
      (** advance the store's logical clock to [max now n]; the only way
          mutations ever observe time, so replay is deterministic *)
  | Expire_evict of string * int
      (** wheel-driven eviction: delete key iff its deadline still equals
          the stamp (incarnation guard makes stale wheel entries no-ops) *)
  | Txn_test of (string * int) list
      (** read-only probe: do all (key, version) watch stamps still hold? *)
  | Txn of (string * int) list * t list
      (** the compound entry EXEC submits: watch stamps + queued body *)
  | Reset
      (** hard reset (keyspace, deadlines, version stamps, logical clock) —
          the prologue of a FULLRESYNC, where FLUSHALL won't do because
          flushing bumps version stamps and stamps of keys the leader
          never saw cannot be overridden by the dump *)

type reply =
  | Ok_reply
  | Pong
  | Int of int
  | Bulk of string
  | Nil
  | Array of reply list
  | Err of string

(** Where a command is answered.  This single classification drives every
    derived table — [is_read_only], [is_server_local], the kv_server
    READONLY gate, and the evloop fast-path filter — so a new constructor
    that is missing here is a compile error, not a silent misroute. *)
type cls =
  | Read  (** read-only, routed through the replicated store *)
  | Write  (** mutating, routed through the replicated store (logged) *)
  | Server_local
      (** answered by the serving layer (observability, replication) *)
  | Session_state
      (** answered or rewritten by the per-connection transaction/clock
          session (MULTI/EXEC/WATCH, relative-expiry normalization) *)

let rec class_of = function
  | Ping | Get _ | Exists _ | Zrank _ | Zscore _ | Zcard _ | Zrange _
  | Mget _ | Dbsize | Ttl _ | Pttl _ | Getver _ | Txn_test _ ->
      Read
  | Set _ | Del _ | Incr _ | Incrby _ | Zadd _ | Zincrby _ | Zrem _
  | Mset _ | Flushall | Pexpireat _ | Persist _ | Setver _ | Tick _
  | Expire_evict _ | Reset ->
      Write
  | Slowlog_get | Slowlog_reset | Slowlog_len | Sync | Psync _ | Wait _
  | Replack _ ->
      Server_local
  | Multi | Exec | Discard | Watch _ | Unwatch | Expire _ | Pexpire _ ->
      Session_state
  | Txn (_, cmds) ->
      (* an all-read transaction may take the (linearizable) read path;
         anything else must be logged *)
      if List.for_all (fun c -> class_of c = Read) cmds then Read else Write

let is_read_only c =
  match class_of c with
  | Read | Server_local | Session_state -> true
  | Write -> false

(** Commands answered before the replicated store (by the serving layer or
    the connection session) — also the set gated out of the evloop
    run-to-completion fast path. *)
let is_server_local c =
  match class_of c with
  | Server_local | Session_state -> true
  | Read | Write -> false

let rec pp ppf = function
  | Ping -> Format.pp_print_string ppf "PING"
  | Get k -> Format.fprintf ppf "GET %s" k
  | Set (k, v) -> Format.fprintf ppf "SET %s %s" k v
  | Del k -> Format.fprintf ppf "DEL %s" k
  | Exists k -> Format.fprintf ppf "EXISTS %s" k
  | Incr k -> Format.fprintf ppf "INCR %s" k
  | Incrby (k, n) -> Format.fprintf ppf "INCRBY %s %d" k n
  | Zadd (k, s, m) -> Format.fprintf ppf "ZADD %s %d %d" k s m
  | Zincrby (k, d, m) -> Format.fprintf ppf "ZINCRBY %s %d %d" k d m
  | Zrank (k, m) -> Format.fprintf ppf "ZRANK %s %d" k m
  | Zscore (k, m) -> Format.fprintf ppf "ZSCORE %s %d" k m
  | Zcard k -> Format.fprintf ppf "ZCARD %s" k
  | Zrange (k, a, b) -> Format.fprintf ppf "ZRANGE %s %d %d" k a b
  | Zrem (k, m) -> Format.fprintf ppf "ZREM %s %d" k m
  | Mget ks -> Format.fprintf ppf "MGET %s" (String.concat " " ks)
  | Mset ps ->
      Format.fprintf ppf "MSET %s"
        (String.concat " " (List.concat_map (fun (k, v) -> [ k; v ]) ps))
  | Dbsize -> Format.pp_print_string ppf "DBSIZE"
  | Flushall -> Format.pp_print_string ppf "FLUSHALL"
  | Slowlog_get -> Format.pp_print_string ppf "SLOWLOG GET"
  | Slowlog_reset -> Format.pp_print_string ppf "SLOWLOG RESET"
  | Slowlog_len -> Format.pp_print_string ppf "SLOWLOG LEN"
  | Sync -> Format.pp_print_string ppf "SYNC"
  | Psync off -> Format.fprintf ppf "PSYNC %d" off
  | Wait (n, ms) -> Format.fprintf ppf "WAIT %d %d" n ms
  | Replack (id, seq) -> Format.fprintf ppf "REPLACK %s %d" id seq
  | Multi -> Format.pp_print_string ppf "MULTI"
  | Exec -> Format.pp_print_string ppf "EXEC"
  | Discard -> Format.pp_print_string ppf "DISCARD"
  | Watch k -> Format.fprintf ppf "WATCH %s" k
  | Unwatch -> Format.pp_print_string ppf "UNWATCH"
  | Expire (k, s) -> Format.fprintf ppf "EXPIRE %s %d" k s
  | Pexpire (k, ms) -> Format.fprintf ppf "PEXPIRE %s %d" k ms
  | Pexpireat (k, ms) -> Format.fprintf ppf "PEXPIREAT %s %d" k ms
  | Ttl k -> Format.fprintf ppf "TTL %s" k
  | Pttl k -> Format.fprintf ppf "PTTL %s" k
  | Persist k -> Format.fprintf ppf "PERSIST %s" k
  | Getver k -> Format.fprintf ppf "GETVER %s" k
  | Setver (k, v) -> Format.fprintf ppf "SETVER %s %d" k v
  | Tick n -> Format.fprintf ppf "TICK %d" n
  | Expire_evict (k, d) -> Format.fprintf ppf "EVICT %s %d" k d
  | Txn_test ws ->
      Format.fprintf ppf "TXNTEST %s"
        (String.concat " "
           (List.concat_map (fun (k, v) -> [ k; string_of_int v ]) ws))
  | Reset -> Format.pp_print_string ppf "RESETSTORE"
  | Txn (ws, cmds) ->
      Format.fprintf ppf "TXN [%s] {%s}"
        (String.concat " "
           (List.concat_map (fun (k, v) -> [ k; string_of_int v ]) ws))
        (String.concat "; "
           (List.map (fun c -> Format.asprintf "%a" pp c) cmds))

let rec pp_reply ppf = function
  | Ok_reply -> Format.pp_print_string ppf "OK"
  | Pong -> Format.pp_print_string ppf "PONG"
  | Int n -> Format.fprintf ppf "(integer) %d" n
  | Bulk s -> Format.fprintf ppf "%S" s
  | Nil -> Format.pp_print_string ppf "(nil)"
  | Array rs ->
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
           pp_reply)
        rs
  | Err e -> Format.fprintf ppf "(error) %s" e

(** Parse a tokenized request (e.g. from the RESP layer). *)
let rec of_strings tokens =
  let int s =
    match int_of_string_opt s with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "value is not an integer: %S" s)
  in
  let ( let* ) = Result.bind in
  (* [k1 v1 ... kn vn] -> [(k1, v1); ...] with integer stamps *)
  let rec stamp_pairs = function
    | [] -> Ok []
    | [ _ ] -> Error "odd number of watch-stamp tokens"
    | k :: v :: rest ->
        let* v = int v in
        let* tl = stamp_pairs rest in
        Ok ((k, v) :: tl)
  in
  let split_at n l =
    let rec go acc n = function
      | rest when n = 0 -> Ok (List.rev acc, rest)
      | [] -> Error "truncated TXN frame"
      | x :: rest -> go (x :: acc) (n - 1) rest
    in
    go [] n l
  in
  match List.map String.lowercase_ascii tokens, tokens with
  | [ "ping" ], _ -> Ok Ping
  | [ "get"; _ ], [ _; k ] -> Ok (Get k)
  | [ "set"; _; _ ], [ _; k; v ] -> Ok (Set (k, v))
  | [ "del"; _ ], [ _; k ] -> Ok (Del k)
  | [ "exists"; _ ], [ _; k ] -> Ok (Exists k)
  | [ "incr"; _ ], [ _; k ] -> Ok (Incr k)
  | [ "incrby"; _; _ ], [ _; k; n ] ->
      let* n = int n in
      Ok (Incrby (k, n))
  | [ "zadd"; _; _; _ ], [ _; k; s; m ] ->
      let* s = int s in
      let* m = int m in
      Ok (Zadd (k, s, m))
  | [ "zincrby"; _; _; _ ], [ _; k; d; m ] ->
      let* d = int d in
      let* m = int m in
      Ok (Zincrby (k, d, m))
  | [ "zrank"; _; _ ], [ _; k; m ] ->
      let* m = int m in
      Ok (Zrank (k, m))
  | [ "zscore"; _; _ ], [ _; k; m ] ->
      let* m = int m in
      Ok (Zscore (k, m))
  | [ "zcard"; _ ], [ _; k ] -> Ok (Zcard k)
  | [ "zrange"; _; _; _ ], [ _; k; a; b ] ->
      let* a = int a in
      let* b = int b in
      Ok (Zrange (k, a, b))
  | [ "zrem"; _; _ ], [ _; k; m ] ->
      let* m = int m in
      Ok (Zrem (k, m))
  | "mget" :: _, _ :: keys ->
      if keys = [] then Error "wrong number of arguments for 'mget' command"
      else Ok (Mget keys)
  | "mset" :: _, _ :: kvs ->
      let rec pairs = function
        | [] -> Ok []
        | [ _ ] -> Error "wrong number of arguments for 'mset' command"
        | k :: v :: rest ->
            let* tl = pairs rest in
            Ok ((k, v) :: tl)
      in
      if kvs = [] then Error "wrong number of arguments for 'mset' command"
      else
        let* ps = pairs kvs in
        Ok (Mset ps)
  | [ "dbsize" ], _ -> Ok Dbsize
  | [ "flushall" ], _ -> Ok Flushall
  | [ "slowlog"; "get" ], _ -> Ok Slowlog_get
  | [ "slowlog"; "reset" ], _ -> Ok Slowlog_reset
  | [ "slowlog"; "len" ], _ -> Ok Slowlog_len
  | [ "sync" ], _ -> Ok Sync
  | [ "psync"; _ ], [ _; off ] ->
      let* off = int off in
      Ok (Psync off)
  | [ "wait"; _; _ ], [ _; n; ms ] ->
      let* n = int n in
      let* ms = int ms in
      Ok (Wait (n, ms))
  | [ "replack"; _; _ ], [ _; id; seq ] ->
      let* seq = int seq in
      Ok (Replack (id, seq))
  | [ "multi" ], _ -> Ok Multi
  | [ "exec" ], _ -> Ok Exec
  | [ "discard" ], _ -> Ok Discard
  | [ "watch"; _ ], [ _; k ] -> Ok (Watch k)
  | [ "unwatch" ], _ -> Ok Unwatch
  | [ "expire"; _; _ ], [ _; k; s ] ->
      let* s = int s in
      Ok (Expire (k, s))
  | [ "pexpire"; _; _ ], [ _; k; ms ] ->
      let* ms = int ms in
      Ok (Pexpire (k, ms))
  | [ "pexpireat"; _; _ ], [ _; k; ms ] ->
      let* ms = int ms in
      Ok (Pexpireat (k, ms))
  | [ "ttl"; _ ], [ _; k ] -> Ok (Ttl k)
  | [ "pttl"; _ ], [ _; k ] -> Ok (Pttl k)
  | [ "persist"; _ ], [ _; k ] -> Ok (Persist k)
  | [ "getver"; _ ], [ _; k ] -> Ok (Getver k)
  | [ "setver"; _; _ ], [ _; k; v ] ->
      let* v = int v in
      Ok (Setver (k, v))
  | [ "resetstore" ], _ -> Ok Reset
  | [ "tick"; _ ], [ _; n ] ->
      let* n = int n in
      Ok (Tick n)
  | [ "evict"; _; _ ], [ _; k; d ] ->
      let* d = int d in
      Ok (Expire_evict (k, d))
  | "txntest" :: _, _ :: stamps ->
      let* ws = stamp_pairs stamps in
      Ok (Txn_test ws)
  | "txn" :: _, _ :: rest -> (
      (* TXN <nwatches> k1 v1 .. <ncmds> <ntok> tok.. <ntok> tok..
         — flat tokens with explicit counts, so the compound entry rides
         the ordinary RESP request framing through Aof/Persister *)
      match rest with
      | nw :: rest ->
          let* nw = int nw in
          let* stamps, rest = split_at (2 * nw) rest in
          let* ws = stamp_pairs stamps in
          let* rest =
            match rest with
            | nc :: rest ->
                let* nc = int nc in
                Ok (nc, rest)
            | [] -> Error "truncated TXN frame"
          in
          let nc, rest = rest in
          let rec cmds acc n rest =
            if n = 0 then
              if rest = [] then Ok (List.rev acc)
              else Error "trailing tokens after TXN frame"
            else
              match rest with
              | nt :: rest ->
                  let* nt = int nt in
                  let* toks, rest = split_at nt rest in
                  let* c = of_strings toks in
                  cmds (c :: acc) (n - 1) rest
              | [] -> Error "truncated TXN frame"
          in
          let* body = cmds [] nc rest in
          Ok (Txn (ws, body))
      | [] -> Error "truncated TXN frame")
  | cmd :: _, _ -> Error (Printf.sprintf "unknown command %S" cmd)
  | [], _ -> Error "empty command"

(** Inverse of {!of_strings} (up to command-name case): the token list a
    client would send.  [of_strings (to_strings c) = Ok c] for every
    command — the RESP round-trip property tests lean on this. *)
let rec to_strings = function
  | Ping -> [ "PING" ]
  | Get k -> [ "GET"; k ]
  | Set (k, v) -> [ "SET"; k; v ]
  | Del k -> [ "DEL"; k ]
  | Exists k -> [ "EXISTS"; k ]
  | Incr k -> [ "INCR"; k ]
  | Incrby (k, n) -> [ "INCRBY"; k; string_of_int n ]
  | Zadd (k, s, m) -> [ "ZADD"; k; string_of_int s; string_of_int m ]
  | Zincrby (k, d, m) -> [ "ZINCRBY"; k; string_of_int d; string_of_int m ]
  | Zrank (k, m) -> [ "ZRANK"; k; string_of_int m ]
  | Zscore (k, m) -> [ "ZSCORE"; k; string_of_int m ]
  | Zcard k -> [ "ZCARD"; k ]
  | Zrange (k, a, b) -> [ "ZRANGE"; k; string_of_int a; string_of_int b ]
  | Zrem (k, m) -> [ "ZREM"; k; string_of_int m ]
  | Mget ks -> "MGET" :: ks
  | Mset ps -> "MSET" :: List.concat_map (fun (k, v) -> [ k; v ]) ps
  | Dbsize -> [ "DBSIZE" ]
  | Flushall -> [ "FLUSHALL" ]
  | Slowlog_get -> [ "SLOWLOG"; "GET" ]
  | Slowlog_reset -> [ "SLOWLOG"; "RESET" ]
  | Slowlog_len -> [ "SLOWLOG"; "LEN" ]
  | Sync -> [ "SYNC" ]
  | Psync off -> [ "PSYNC"; string_of_int off ]
  | Wait (n, ms) -> [ "WAIT"; string_of_int n; string_of_int ms ]
  | Replack (id, seq) -> [ "REPLACK"; id; string_of_int seq ]
  | Multi -> [ "MULTI" ]
  | Exec -> [ "EXEC" ]
  | Discard -> [ "DISCARD" ]
  | Watch k -> [ "WATCH"; k ]
  | Unwatch -> [ "UNWATCH" ]
  | Expire (k, s) -> [ "EXPIRE"; k; string_of_int s ]
  | Pexpire (k, ms) -> [ "PEXPIRE"; k; string_of_int ms ]
  | Pexpireat (k, ms) -> [ "PEXPIREAT"; k; string_of_int ms ]
  | Ttl k -> [ "TTL"; k ]
  | Pttl k -> [ "PTTL"; k ]
  | Persist k -> [ "PERSIST"; k ]
  | Getver k -> [ "GETVER"; k ]
  | Setver (k, v) -> [ "SETVER"; k; string_of_int v ]
  | Tick n -> [ "TICK"; string_of_int n ]
  | Reset -> [ "RESETSTORE" ]
  | Expire_evict (k, d) -> [ "EVICT"; k; string_of_int d ]
  | Txn_test ws ->
      "TXNTEST"
      :: List.concat_map (fun (k, v) -> [ k; string_of_int v ]) ws
  | Txn (ws, cmds) ->
      ("TXN" :: string_of_int (List.length ws)
      :: List.concat_map (fun (k, v) -> [ k; string_of_int v ]) ws)
      @ string_of_int (List.length cmds)
        :: List.concat_map
             (fun c ->
               let toks = to_strings c in
               string_of_int (List.length toks) :: toks)
             cmds

(** One value per constructor, for table-driven totality tests (the
    compile-time guarantee is {!class_of}'s wildcard-free match; this list
    lets tests pin the derived classifications and the wire round-trip). *)
let exemplars =
  [
    Ping; Get "k"; Set ("k", "v"); Del "k"; Exists "k"; Incr "k";
    Incrby ("k", 2); Zadd ("k", 1, 2); Zincrby ("k", 1, 2); Zrank ("k", 2);
    Zscore ("k", 2); Zcard "k"; Zrange ("k", 0, 1); Zrem ("k", 2);
    Mget [ "a"; "b" ]; Mset [ ("a", "1"); ("b", "2") ]; Dbsize; Flushall;
    Slowlog_get; Slowlog_reset; Slowlog_len; Sync; Psync 3; Wait (1, 50);
    Replack ("id", 7); Multi; Exec; Discard; Watch "k"; Unwatch;
    Expire ("k", 5); Pexpire ("k", 500); Pexpireat ("k", 1500); Ttl "k";
    Pttl "k"; Persist "k"; Getver "k"; Setver ("k", 3); Tick 9;
    Expire_evict ("k", 1500); Reset;
    Txn_test [ ("a", 1); ("b", 0) ];
    Txn ([ ("a", 1) ], [ Set ("a", "2"); Get "b"; Expire ("a", 3) ]);
  ]

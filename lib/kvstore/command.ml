(** The store's command vocabulary: the subset of Redis the paper's
    macro-benchmark exercises (sorted sets via ZRANK / ZINCRBY, §8.3) plus
    enough of the string commands for a usable store.

    [is_read_only] is the classification the black-box methods need at
    invocation time (paper §4); note the Redis subtlety the paper calls out:
    a read must never mutate, so anything resembling lazy rehashing belongs
    on the update path only. *)

type t =
  | Ping
  | Get of string
  | Set of string * string
  | Del of string
  | Exists of string
  | Incr of string
  | Incrby of string * int
  | Zadd of string * int * int  (** key, score, member *)
  | Zincrby of string * int * int  (** key, delta, member *)
  | Zrank of string * int  (** key, member *)
  | Zscore of string * int
  | Zcard of string
  | Zrange of string * int * int
  | Zrem of string * int
  | Mget of string list  (** multi-key GET; one reply slot per key, in order *)
  | Mset of (string * string) list
      (** multi-key SET, atomic; later bindings of a repeated key win *)
  | Dbsize
  | Flushall
  | Slowlog_get
  | Slowlog_reset
  | Slowlog_len
  | Sync  (** full resynchronization: snapshot stream + replication offset *)
  | Psync of int
      (** partial resync from a replication offset; the leader answers
          with a CONTINUE frame batch or demotes to a full resync *)
  | Wait of int * int
      (** [WAIT n timeout_ms]: block until >= n followers have acked this
          connection's write position, or the timeout elapses; replies with
          the count actually acked (graceful degradation, never an error) *)
  | Replack of string * int
      (** [REPLACK id seq]: a follower reporting that its durable state
          covers log positions < [seq]; feeds the leader's per-follower
          ack watermarks that WAIT counts *)

type reply =
  | Ok_reply
  | Pong
  | Int of int
  | Bulk of string
  | Nil
  | Array of reply list
  | Err of string

let is_read_only = function
  | Ping | Get _ | Exists _ | Zrank _ | Zscore _ | Zcard _ | Zrange _
  | Mget _ | Dbsize | Slowlog_get | Slowlog_len | Sync | Psync _ | Wait _
  | Replack _ ->
      true
  | Set _ | Del _ | Incr _ | Incrby _ | Zadd _ | Zincrby _ | Zrem _
  | Mset _ | Flushall | Slowlog_reset ->
      false

(** Commands answered by the serving layer itself (observability,
    replication), never routed through the replicated store. *)
let is_server_local = function
  | Slowlog_get | Slowlog_reset | Slowlog_len | Sync | Psync _ | Wait _
  | Replack _ ->
      true
  | _ -> false

let pp ppf = function
  | Ping -> Format.pp_print_string ppf "PING"
  | Get k -> Format.fprintf ppf "GET %s" k
  | Set (k, v) -> Format.fprintf ppf "SET %s %s" k v
  | Del k -> Format.fprintf ppf "DEL %s" k
  | Exists k -> Format.fprintf ppf "EXISTS %s" k
  | Incr k -> Format.fprintf ppf "INCR %s" k
  | Incrby (k, n) -> Format.fprintf ppf "INCRBY %s %d" k n
  | Zadd (k, s, m) -> Format.fprintf ppf "ZADD %s %d %d" k s m
  | Zincrby (k, d, m) -> Format.fprintf ppf "ZINCRBY %s %d %d" k d m
  | Zrank (k, m) -> Format.fprintf ppf "ZRANK %s %d" k m
  | Zscore (k, m) -> Format.fprintf ppf "ZSCORE %s %d" k m
  | Zcard k -> Format.fprintf ppf "ZCARD %s" k
  | Zrange (k, a, b) -> Format.fprintf ppf "ZRANGE %s %d %d" k a b
  | Zrem (k, m) -> Format.fprintf ppf "ZREM %s %d" k m
  | Mget ks -> Format.fprintf ppf "MGET %s" (String.concat " " ks)
  | Mset ps ->
      Format.fprintf ppf "MSET %s"
        (String.concat " " (List.concat_map (fun (k, v) -> [ k; v ]) ps))
  | Dbsize -> Format.pp_print_string ppf "DBSIZE"
  | Flushall -> Format.pp_print_string ppf "FLUSHALL"
  | Slowlog_get -> Format.pp_print_string ppf "SLOWLOG GET"
  | Slowlog_reset -> Format.pp_print_string ppf "SLOWLOG RESET"
  | Slowlog_len -> Format.pp_print_string ppf "SLOWLOG LEN"
  | Sync -> Format.pp_print_string ppf "SYNC"
  | Psync off -> Format.fprintf ppf "PSYNC %d" off
  | Wait (n, ms) -> Format.fprintf ppf "WAIT %d %d" n ms
  | Replack (id, seq) -> Format.fprintf ppf "REPLACK %s %d" id seq

let rec pp_reply ppf = function
  | Ok_reply -> Format.pp_print_string ppf "OK"
  | Pong -> Format.pp_print_string ppf "PONG"
  | Int n -> Format.fprintf ppf "(integer) %d" n
  | Bulk s -> Format.fprintf ppf "%S" s
  | Nil -> Format.pp_print_string ppf "(nil)"
  | Array rs ->
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
           pp_reply)
        rs
  | Err e -> Format.fprintf ppf "(error) %s" e

(** Parse a tokenized request (e.g. from the RESP layer). *)
let of_strings tokens =
  let int s =
    match int_of_string_opt s with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "value is not an integer: %S" s)
  in
  let ( let* ) = Result.bind in
  match List.map String.lowercase_ascii tokens, tokens with
  | [ "ping" ], _ -> Ok Ping
  | [ "get"; _ ], [ _; k ] -> Ok (Get k)
  | [ "set"; _; _ ], [ _; k; v ] -> Ok (Set (k, v))
  | [ "del"; _ ], [ _; k ] -> Ok (Del k)
  | [ "exists"; _ ], [ _; k ] -> Ok (Exists k)
  | [ "incr"; _ ], [ _; k ] -> Ok (Incr k)
  | [ "incrby"; _; _ ], [ _; k; n ] ->
      let* n = int n in
      Ok (Incrby (k, n))
  | [ "zadd"; _; _; _ ], [ _; k; s; m ] ->
      let* s = int s in
      let* m = int m in
      Ok (Zadd (k, s, m))
  | [ "zincrby"; _; _; _ ], [ _; k; d; m ] ->
      let* d = int d in
      let* m = int m in
      Ok (Zincrby (k, d, m))
  | [ "zrank"; _; _ ], [ _; k; m ] ->
      let* m = int m in
      Ok (Zrank (k, m))
  | [ "zscore"; _; _ ], [ _; k; m ] ->
      let* m = int m in
      Ok (Zscore (k, m))
  | [ "zcard"; _ ], [ _; k ] -> Ok (Zcard k)
  | [ "zrange"; _; _; _ ], [ _; k; a; b ] ->
      let* a = int a in
      let* b = int b in
      Ok (Zrange (k, a, b))
  | [ "zrem"; _; _ ], [ _; k; m ] ->
      let* m = int m in
      Ok (Zrem (k, m))
  | "mget" :: _, _ :: keys ->
      if keys = [] then Error "wrong number of arguments for 'mget' command"
      else Ok (Mget keys)
  | "mset" :: _, _ :: kvs ->
      let rec pairs = function
        | [] -> Ok []
        | [ _ ] -> Error "wrong number of arguments for 'mset' command"
        | k :: v :: rest ->
            let* tl = pairs rest in
            Ok ((k, v) :: tl)
      in
      if kvs = [] then Error "wrong number of arguments for 'mset' command"
      else
        let* ps = pairs kvs in
        Ok (Mset ps)
  | [ "dbsize" ], _ -> Ok Dbsize
  | [ "flushall" ], _ -> Ok Flushall
  | [ "slowlog"; "get" ], _ -> Ok Slowlog_get
  | [ "slowlog"; "reset" ], _ -> Ok Slowlog_reset
  | [ "slowlog"; "len" ], _ -> Ok Slowlog_len
  | [ "sync" ], _ -> Ok Sync
  | [ "psync"; _ ], [ _; off ] ->
      let* off = int off in
      Ok (Psync off)
  | [ "wait"; _; _ ], [ _; n; ms ] ->
      let* n = int n in
      let* ms = int ms in
      Ok (Wait (n, ms))
  | [ "replack"; _; _ ], [ _; id; seq ] ->
      let* seq = int seq in
      Ok (Replack (id, seq))
  | cmd :: _, _ -> Error (Printf.sprintf "unknown command %S" cmd)
  | [], _ -> Error "empty command"

(** Inverse of {!of_strings} (up to command-name case): the token list a
    client would send.  [of_strings (to_strings c) = Ok c] for every
    command — the RESP round-trip property tests lean on this. *)
let to_strings = function
  | Ping -> [ "PING" ]
  | Get k -> [ "GET"; k ]
  | Set (k, v) -> [ "SET"; k; v ]
  | Del k -> [ "DEL"; k ]
  | Exists k -> [ "EXISTS"; k ]
  | Incr k -> [ "INCR"; k ]
  | Incrby (k, n) -> [ "INCRBY"; k; string_of_int n ]
  | Zadd (k, s, m) -> [ "ZADD"; k; string_of_int s; string_of_int m ]
  | Zincrby (k, d, m) -> [ "ZINCRBY"; k; string_of_int d; string_of_int m ]
  | Zrank (k, m) -> [ "ZRANK"; k; string_of_int m ]
  | Zscore (k, m) -> [ "ZSCORE"; k; string_of_int m ]
  | Zcard k -> [ "ZCARD"; k ]
  | Zrange (k, a, b) -> [ "ZRANGE"; k; string_of_int a; string_of_int b ]
  | Zrem (k, m) -> [ "ZREM"; k; string_of_int m ]
  | Mget ks -> "MGET" :: ks
  | Mset ps -> "MSET" :: List.concat_map (fun (k, v) -> [ k; v ]) ps
  | Dbsize -> [ "DBSIZE" ]
  | Flushall -> [ "FLUSHALL" ]
  | Slowlog_get -> [ "SLOWLOG"; "GET" ]
  | Slowlog_reset -> [ "SLOWLOG"; "RESET" ]
  | Slowlog_len -> [ "SLOWLOG"; "LEN" ]
  | Sync -> [ "SYNC" ]
  | Psync off -> [ "PSYNC"; string_of_int off ]
  | Wait (n, ms) -> [ "WAIT"; string_of_int n; string_of_int ms ]
  | Replack (id, seq) -> [ "REPLACK"; id; string_of_int seq ]

type t = {
  name : string;
  nodes : int;
  cores_per_node : int;
  smt : int;
  ghz : float;
  incomplete_directory : bool;
  l3_mb : float;
}

let custom ?(name = "custom") ?(smt = 1) ?(ghz = 2.0)
    ?(incomplete_directory = false) ?(l3_mb = 16.0) ~nodes ~cores_per_node ()
    =
  if nodes <= 0 || cores_per_node <= 0 || smt <= 0 then
    invalid_arg "Topology.custom: nodes, cores_per_node and smt must be > 0";
  { name; nodes; cores_per_node; smt; ghz; incomplete_directory; l3_mb }

let intel =
  {
    name = "intel-xeon-e7-4850v3";
    nodes = 4;
    cores_per_node = 14;
    smt = 2;
    ghz = 2.2;
    incomplete_directory = false;
    l3_mb = 35.0;
  }

let amd =
  {
    name = "amd-magny-cours";
    nodes = 8;
    cores_per_node = 6;
    smt = 1;
    ghz = 1.9;
    incomplete_directory = true;
    l3_mb = 10.0;
  }

let tiny =
  {
    name = "tiny-2x2";
    nodes = 2;
    cores_per_node = 2;
    smt = 1;
    ghz = 2.0;
    incomplete_directory = false;
    l3_mb = 4.0;
  }

let l3_lines t = int_of_float (t.l3_mb *. 1024.0 *. 1024.0 /. 64.0)

let threads_per_node t = t.cores_per_node * t.smt
let max_threads t = t.nodes * threads_per_node t

let check_tid t tid =
  if tid < 0 || tid >= max_threads t then
    invalid_arg
      (Printf.sprintf "Topology: thread id %d out of range [0,%d)" tid
         (max_threads t))

let node_of_thread t tid =
  check_tid t tid;
  tid / threads_per_node t

let core_of_thread t tid =
  check_tid t tid;
  let node = tid / threads_per_node t in
  let local = tid mod threads_per_node t in
  (node * t.cores_per_node) + (local mod t.cores_per_node)

let cycles_per_us t = t.ghz *. 1000.0

let pp ppf t =
  Format.fprintf ppf "%s: %d nodes x %d cores x %d SMT at %.1f GHz%s" t.name
    t.nodes t.cores_per_node t.smt t.ghz
    (if t.incomplete_directory then " (incomplete directory)" else "")

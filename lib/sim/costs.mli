(** Latency model for the NUMA simulator.

    All costs are in CPU cycles.  The defaults approximate the published
    load-to-use latencies of a 4-socket Intel Xeon: an L1 hit is a few cycles,
    a shared-LLC hit within the node a few tens, and any transfer that crosses
    the socket interconnect a few hundreds, with dirty (modified-elsewhere)
    transfers costlier than clean ones. *)

type t = {
  l1_hit : int;  (** line present and last touched by this very core *)
  l3_hit : int;  (** line cached somewhere within this node *)
  remote_clean : int;  (** clean copy must come from another node *)
  remote_dirty : int;  (** modified copy must come from another node *)
  mem_local : int;  (** uncached, home memory on this node *)
  mem_remote : int;  (** uncached, home memory on a remote node *)
  upgrade : int;
      (** invalidating remote Shared copies to gain write ownership — an
          RFO upgrade is cheaper than a full remote data transfer *)
  cas_extra : int;  (** extra cycles for an atomic read-modify-write *)
  yield : int;  (** cost of one spin-wait iteration (pause + branch) *)
  probe : int;
      (** broadcast-probe penalty added to node-local cache-to-cache hits when
          the topology has an incomplete directory (paper §8.4) *)
}

val default : t

val scaled : float -> t
(** [scaled f] multiplies every latency (except [yield]) by [f]. *)

val pp : Format.formatter -> t -> unit

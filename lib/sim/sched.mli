(** Deterministic cooperative scheduler for the NUMA simulator.

    Simulated threads are OCaml functions that interact with the simulated
    machine through effects: every shared-memory access ({!touch}), local
    computation ({!work}) and spin-wait iteration ({!yield}) suspends the
    thread, charges it the modeled latency, and reschedules it at its new
    virtual time.  The scheduler always resumes the thread with the smallest
    virtual time, so interleavings are deterministic and all threads progress
    at comparable virtual rates — like cores of a real machine.

    The scheduler is strictly single-OS-thread; at most one simulation may be
    running at a time per domain. *)

type t

val create : ?costs:Costs.t -> Topology.t -> t
val topology : t -> Topology.t
val costs : t -> Costs.t
val stats : t -> Sim_stats.t

val spawn : t -> tid:int -> (unit -> unit) -> unit
(** Register a simulated thread pinned (by the topology's fill-node-first
    policy) according to its [tid].  Must be called before {!run}. *)

val run : t -> unit
(** Run every spawned thread to completion.  Raises [Invalid_argument] if a
    simulation is already running.  A thread killed by an armed fault plan
    counts as completed: its continuation is dropped at its next effect
    point and never resumed. *)

val set_tie_break : t -> salt:int -> unit
(** Perturb the scheduling order of simultaneous events: the insertion
    sequence is xor'd with [salt] in every tie comparison, so a non-zero
    salt deterministically reorders same-time events within aligned blocks
    of insertions while salt [0] (the default) keeps pure FIFO order —
    byte-identical to the unsalted scheduler.  The schedule explorer sweeps
    salts to enumerate distinct interleavings from one seed.  Must be
    called before any thread is queued (the event heap must be empty);
    raises [Invalid_argument] otherwise. *)

val set_fault_plan : t -> Fault_plan.t option -> unit
(** Arm (or with [None] disarm) a fault-injection plan.  Must be called
    before {!run}.  With no plan armed every effect point keeps its
    original charge sequence — the only added cost is one pointer
    comparison — so seeded runs are byte-identical to a scheduler without
    the feature. *)

val fault_stats : t -> Fault_plan.stats option
(** Counters of the armed plan's injected faults, or [None] when no plan
    is armed. *)

(** {2 Operations available inside simulated threads}

    All of the following raise [Invalid_argument] when called outside a
    running simulation. *)

val touch : Mem.line -> Mem.kind -> unit
(** Charge one cache-line access. *)

val touch_batch : (Mem.line * Mem.kind) array -> unit
(** Charge a batch of {e independent} accesses: they overlap in windows of
    the modeled memory-level parallelism instead of serializing through the
    thread.  Use for scans of unrelated cells (combiner slots, reader
    flags). *)

val touch_batch_kind : Mem.line array -> n:int -> Mem.kind -> unit
(** {!touch_batch} for a uniform access kind over [lines.(0..n-1)], without
    a per-call descriptor allocation.  The array is consumed before the
    effect suspends, so callers may overwrite it as soon as the call
    returns — which makes a single reused scratch buffer safe even when
    other simulated threads run during the charge. *)

val work : int -> unit
(** Charge [n] cycles of node-local computation. *)

val yield : unit -> unit
(** Charge one spin-wait iteration.  Any unbounded wait loop must yield so
    that virtual time advances. *)

val now : unit -> int
(** Virtual time (cycles) of the calling thread. *)

val self_tid : unit -> int
val self_node : unit -> int
val self_core : unit -> int

val running : unit -> bool
(** Whether the caller is executing inside a simulation. *)

val fresh_line : t -> home:int -> Mem.line
(** Allocate a line backed by node [home]'s memory. *)

val fresh_line_local : t -> Mem.line
(** Allocate a line homed at the calling thread's node (or node 0 when
    called outside the simulation) — models node-local allocation. *)

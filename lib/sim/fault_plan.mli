(** Deterministic, seeded fault injection for the simulator.

    A plan is pure data describing adversarial scheduling events —
    stalls, whole-core preemptions, permanent thread death, cost jitter —
    injected at the scheduler's effect points.  Probabilistic faults draw
    from per-thread splitmix64 streams seeded from [seed], so a run
    replays byte-identically from the same plan; explicit
    [(tid, nth effect point)] triggers give tests surgical control.
    Arm a plan with {!Sched.set_fault_plan}; with none installed the
    scheduler is unchanged. *)

type point = Touch | Work | Yield

type t = {
  seed : int;
  stall_prob : float;  (** per effect point; 0 disables *)
  stall_cycles : int;
  preempt_prob : float;
  preempt_cycles : int;  (** parks the thread's whole core *)
  jitter_prob : float;
  jitter_max : int;  (** uniform extra cost in [1, jitter_max] *)
  kill_prob : float;  (** permanent thread death *)
  stalls_at : (int * int * int) list;
      (** explicit [(tid, nth effect point, cycles)] triggers *)
  kills_at : (int * int) list;  (** explicit [(tid, nth effect point)] *)
  only_tids : int list;
      (** restrict probabilistic faults to these tids; [[]] = all *)
  horizon : int;
      (** kill any thread whose virtual time passes this; 0 = unbounded *)
}

val none : t
(** All-zero plan: every fault disabled.  Build plans with record update:
    [{ none with seed = 7; stall_prob = 1e-3; stall_cycles = 20_000 }]. *)

type stats = {
  mutable stalls : int;
  mutable preempts : int;
  mutable jitters : int;
  mutable kills : int;
  mutable horizon_kills : int;
  mutable injected_cycles : int;
}

val stats_create : unit -> stats
val pp_stats : Format.formatter -> stats -> unit

(** {2 Scheduler-side machinery} — used by {!Sched}; not part of the
    public surface most callers need. *)

type action = Nothing | Stall of int | Preempt of int | Die

type armed

val arm : t -> max_threads:int -> armed
val decide : armed -> tid:int -> now:int -> point -> action

val stats : armed -> stats

(** Machine topologies for the NUMA simulator.

    A topology describes a NUMA machine: a set of nodes, each with a number
    of cores, each core running one or more hardware threads (SMT).  Thread
    placement follows the paper's policy: fill all hardware threads of a node
    (including hyperthreads) before moving to the next node. *)

type t = {
  name : string;  (** human-readable machine name *)
  nodes : int;  (** number of NUMA nodes *)
  cores_per_node : int;  (** physical cores per node *)
  smt : int;  (** hardware threads per core *)
  ghz : float;  (** clock frequency, used to convert cycles to time *)
  incomplete_directory : bool;
      (** model an incomplete cache directory (AMD Magny-Cours, paper §8.4):
          cache-to-cache sharing within a node still broadcasts probes, adding
          latency even to node-local sharing *)
  l3_mb : float;  (** per-node shared last-level cache size *)
}

val intel : t
(** The paper's primary testbed: 4-node Intel Xeon E7-4850v3,
    14 cores per node, 2-way SMT — 112 hardware threads at 2.2 GHz. *)

val amd : t
(** The paper's secondary testbed (§8.4): 8-node AMD Magny-Cours,
    6 cores per node, no SMT — 48 threads at 1.9 GHz, incomplete directory. *)

val tiny : t
(** A small 2x2 machine for unit tests. *)

val custom :
  ?name:string ->
  ?smt:int ->
  ?ghz:float ->
  ?incomplete_directory:bool ->
  ?l3_mb:float ->
  nodes:int ->
  cores_per_node:int ->
  unit ->
  t

val max_threads : t -> int
(** Total hardware threads on the machine. *)

val threads_per_node : t -> int
(** Hardware threads per node ([cores_per_node * smt]). *)

val node_of_thread : t -> int -> int
(** [node_of_thread t tid] is the NUMA node that thread [tid] is pinned to
    under fill-node-first placement.  Raises [Invalid_argument] if [tid] is
    outside [0, max_threads t). *)

val core_of_thread : t -> int -> int
(** [core_of_thread t tid] is the global core index of thread [tid]; two SMT
    sibling threads share a core. *)

val cycles_per_us : t -> float
(** Clock cycles per microsecond. *)

val l3_lines : t -> int
(** Per-node last-level cache capacity in 64-byte lines. *)

val pp : Format.formatter -> t -> unit

type t = {
  mutable l1_hits : int;
  mutable l3_hits : int;
  mutable remote_clean : int;
  mutable remote_dirty : int;
  mutable mem_local : int;
  mutable mem_remote : int;
  mutable cas_ops : int;
  mutable cas_failures : int;
  mutable cycles_memory : int;
  mutable cycles_work : int;
  mutable cycles_spin : int;
}

let create () =
  {
    l1_hits = 0;
    l3_hits = 0;
    remote_clean = 0;
    remote_dirty = 0;
    mem_local = 0;
    mem_remote = 0;
    cas_ops = 0;
    cas_failures = 0;
    cycles_memory = 0;
    cycles_work = 0;
    cycles_spin = 0;
  }

let reset t =
  t.l1_hits <- 0;
  t.l3_hits <- 0;
  t.remote_clean <- 0;
  t.remote_dirty <- 0;
  t.mem_local <- 0;
  t.mem_remote <- 0;
  t.cas_ops <- 0;
  t.cas_failures <- 0;
  t.cycles_memory <- 0;
  t.cycles_work <- 0;
  t.cycles_spin <- 0

let total_accesses t =
  t.l1_hits + t.l3_hits + t.remote_clean + t.remote_dirty + t.mem_local
  + t.mem_remote

let remote_transfers t = t.remote_clean + t.remote_dirty + t.mem_remote

let add acc x =
  acc.l1_hits <- acc.l1_hits + x.l1_hits;
  acc.l3_hits <- acc.l3_hits + x.l3_hits;
  acc.remote_clean <- acc.remote_clean + x.remote_clean;
  acc.remote_dirty <- acc.remote_dirty + x.remote_dirty;
  acc.mem_local <- acc.mem_local + x.mem_local;
  acc.mem_remote <- acc.mem_remote + x.mem_remote;
  acc.cas_ops <- acc.cas_ops + x.cas_ops;
  acc.cas_failures <- acc.cas_failures + x.cas_failures;
  acc.cycles_memory <- acc.cycles_memory + x.cycles_memory;
  acc.cycles_work <- acc.cycles_work + x.cycles_work;
  acc.cycles_spin <- acc.cycles_spin + x.cycles_spin

(* Adapt the counters into the unified metrics registry; closures read the
   live record, so register once and dump whenever. *)
let register_metrics reg ?(prefix = "sim") t =
  let c name read = Nr_obs.Metrics.counter reg ~name:(prefix ^ "_" ^ name) read in
  c "l1_hits" (fun () -> t.l1_hits);
  c "l3_hits" (fun () -> t.l3_hits);
  c "remote_clean" (fun () -> t.remote_clean);
  c "remote_dirty" (fun () -> t.remote_dirty);
  c "mem_local" (fun () -> t.mem_local);
  c "mem_remote" (fun () -> t.mem_remote);
  c "remote_transfers" (fun () -> remote_transfers t);
  c "cas_ops" (fun () -> t.cas_ops);
  c "cas_failures" (fun () -> t.cas_failures);
  c "cycles_memory" (fun () -> t.cycles_memory);
  c "cycles_work" (fun () -> t.cycles_work);
  c "cycles_spin" (fun () -> t.cycles_spin)

let pp ppf t =
  Format.fprintf ppf
    "l1=%d l3=%d rclean=%d rdirty=%d mem=%d/%d cas=%d(fail %d) cycles \
     mem=%d work=%d spin=%d"
    t.l1_hits t.l3_hits t.remote_clean t.remote_dirty t.mem_local t.mem_remote
    t.cas_ops t.cas_failures t.cycles_memory t.cycles_work t.cycles_spin

type t = {
  lines : Mem.line array;
  hot : Mem.line;
  spine : Mem.line array;
      (** the structure's entry area — upper index levels, root children —
          read by every operation and occasionally written by updates *)
  evict_below : int;
      (** lines whose selection hash falls below this threshold behave as
          capacity misses: the structure exceeds the node's LLC, so a
          proportional fraction of its working set is never cache-resident
          (paper §8.2.3: throughput drops ~50% once outside L3) *)
}

let spine_size = 12

let create sched ~home ~lines =
  if lines <= 0 then invalid_arg "Region.create: lines must be > 0";
  let capacity = Topology.l3_lines (Sched.topology sched) in
  {
    lines = Array.init lines (fun _ -> Sched.fresh_line sched ~home);
    hot = Sched.fresh_line sched ~home;
    spine = Array.init spine_size (fun _ -> Sched.fresh_line sched ~home);
    evict_below = max 0 (lines - capacity);
  }

let line_count t = Array.length t.lines

(* splitmix-style finalizer (63-bit constants): decorrelates (key, step).
   Pure shadowing, no state ref: this runs a few times per simulated
   operation, so a ref cell here was a measurable allocation site. *)
let mix key step =
  let z = (key * 0x9E3779B9) + (step * 0x85EBCA6B) + 0x7F4A7C15 in
  let z = (z lxor (z lsr 30)) * 0x2545F4914F6CDD1D in
  let z = z lxor (z lsr 27) in
  z land max_int

let touch_body t idx kind =
  let line = t.lines.(idx) in
  if idx < t.evict_below then begin
    (* capacity miss: the line was evicted since it was last used *)
    line.Mem.owner <- -1;
    line.Mem.sharers <- 0;
    line.Mem.last_core <- -1
  end;
  Sched.touch line kind

let touch t ~key ~reads ~writes ~hot_write ~spine_reads ~spine_writes =
  let n = Array.length t.lines in
  let s = Array.length t.spine in
  Sched.touch t.hot (if hot_write then Mem.Write else Mem.Read);
  (* descend through the entry area first, like any real traversal *)
  for i = 0 to spine_reads - 1 do
    Sched.touch t.spine.(i mod s) Mem.Read
  done;
  for i = 0 to reads - 1 do
    touch_body t (mix key i mod n) Mem.Read
  done;
  (* written lines are a prefix of the lines the operation read, as a real
     update writes nodes it just traversed *)
  for i = 0 to writes - 1 do
    touch_body t (mix key i mod n) Mem.Write
  done;
  (* spine writes pick key-dependent entry lines, so different updates
     invalidate different parts of the entry area *)
  for i = 0 to spine_writes - 1 do
    Sched.touch t.spine.(mix key (1000 + i) mod s) Mem.Write
  done

open Effect
open Effect.Deep

type thread = { tid : int; node : int; core : int; mutable time : int }

type t = {
  topo : Topology.t;
  costs : Costs.t;
  stats : Sim_stats.t;
  q : (unit -> unit) Eventq.t;
  mutable pending : (thread * (unit -> unit)) list;
  mutable active : bool;
}

type _ Effect.t +=
  | Touch : Mem.line * Mem.kind -> unit Effect.t
  | Touch_batch : (Mem.line * Mem.kind) array -> unit Effect.t
  | Work : int -> unit Effect.t
  | Yield : unit Effect.t

(* Outstanding misses a core can overlap (memory-level parallelism): a
   batch of independent accesses proceeds in windows of this many. *)
let mlp = 8

let create ?(costs = Costs.default) topo =
  {
    topo;
    costs;
    stats = Sim_stats.create ();
    q = Eventq.create ();
    pending = [];
    active = false;
  }

let topology t = t.topo
let costs t = t.costs
let stats t = t.stats

(* The scheduler is single-OS-thread by construction; these globals identify
   the running simulation and the thread being resumed. *)
let cur_sched : t option ref = ref None
let cur_thread : thread option ref = ref None

let self () =
  match !cur_thread with
  | Some th -> th
  | None -> invalid_arg "Sched: called outside a simulated thread"

let running () = !cur_thread <> None
let now () = (self ()).time
let self_tid () = (self ()).tid
let self_node () = (self ()).node
let self_core () = (self ()).core
let touch line kind = perform (Touch (line, kind))

let touch_batch accesses =
  if Array.length accesses > 0 then perform (Touch_batch accesses)

let work n = if n > 0 then perform (Work n)
let yield () = perform Yield

let fresh_line _t ~home = Mem.line ~home

let fresh_line_local t =
  let home = match !cur_thread with Some th -> th.node | None -> 0 in
  fresh_line t ~home

let spawn t ~tid fn =
  let node = Topology.node_of_thread t.topo tid in
  let core = Topology.core_of_thread t.topo tid in
  let th = { tid; node; core; time = 0 } in
  t.pending <- (th, fn) :: t.pending

(* Each thread body runs under a deep handler: an effect computes the
   latency, advances the thread's clock, stashes the continuation in the
   event queue and returns control to the scheduler loop. *)
let handler t th =
  {
    retc = (fun () -> ());
    exnc = raise;
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Touch (line, kind) ->
            Some
              (fun (k : (a, unit) continuation) ->
                th.time <-
                  Mem.access t.topo t.costs t.stats ~node:th.node
                    ~core:th.core ~now:th.time line kind;
                Eventq.add t.q ~time:th.time (fun () ->
                    cur_thread := Some th;
                    continue k ()))
        | Touch_batch accesses ->
            Some
              (fun (k : (a, unit) continuation) ->
                (* independent accesses overlap in windows of [mlp] *)
                let n = Array.length accesses in
                let i = ref 0 in
                while !i < n do
                  let stop = min n (!i + mlp) in
                  let window_start = th.time in
                  let window_end = ref window_start in
                  while !i < stop do
                    let line, kind = accesses.(!i) in
                    let fin =
                      Mem.access t.topo t.costs t.stats ~node:th.node
                        ~core:th.core ~now:window_start line kind
                    in
                    if fin > !window_end then window_end := fin;
                    incr i
                  done;
                  th.time <- !window_end
                done;
                Eventq.add t.q ~time:th.time (fun () ->
                    cur_thread := Some th;
                    continue k ()))
        | Work n ->
            Some
              (fun (k : (a, unit) continuation) ->
                let n = max 1 n in
                (* run-slice for the tracer: no effect, so no virtual cost *)
                Nr_obs.Sink.slice ~tid:th.tid ~node:th.node ~cat:"sched"
                  ~ts:th.time ~dur:n "run";
                th.time <- th.time + n;
                t.stats.cycles_work <- t.stats.cycles_work + n;
                Eventq.add t.q ~time:th.time (fun () ->
                    cur_thread := Some th;
                    continue k ()))
        | Yield ->
            Some
              (fun (k : (a, unit) continuation) ->
                Nr_obs.Sink.slice ~tid:th.tid ~node:th.node ~cat:"sched"
                  ~ts:th.time ~dur:t.costs.yield "spin";
                th.time <- th.time + t.costs.yield;
                t.stats.cycles_spin <- t.stats.cycles_spin + t.costs.yield;
                Eventq.add t.q ~time:th.time (fun () ->
                    cur_thread := Some th;
                    continue k ()))
        | _ -> None);
  }

let run t =
  if !cur_sched <> None then
    invalid_arg "Sched.run: a simulation is already running";
  t.active <- true;
  List.iter
    (fun (th, fn) ->
      Eventq.add t.q ~time:th.time (fun () ->
          cur_thread := Some th;
          match_with fn () (handler t th)))
    (List.rev t.pending);
  t.pending <- [];
  cur_sched := Some t;
  Fun.protect
    ~finally:(fun () ->
      cur_sched := None;
      cur_thread := None;
      t.active <- false)
    (fun () ->
      while not (Eventq.is_empty t.q) do
        let _time, go = Eventq.pop t.q in
        go ()
      done)

open Effect
open Effect.Deep

type thread = {
  tid : int;
  node : int;
  core : int;
  mutable time : int;
  mutable dead : bool;
      (** set by an armed fault plan; a dead thread's next suspension is
          final — the handler drops its continuation instead of queuing it *)
  mutable as_opt : thread option;
      (** [Some self], built once at spawn so resuming a thread does not
          allocate a fresh option per event *)
}

(* A suspended thread waiting to be resumed at its virtual time.  The
   scheduler keeps its own specialized binary heap (rather than a generic
   [Eventq.t] of closures), split into parallel arrays: the ordering keys
   (time, seq) live in two flat [int array]s so every sift comparison is an
   unboxed array load — no record deref, no write barrier — while the boxed
   payload record only moves when a key does.  Thread {e starts} never
   enter the heap — [run] launches the spawned bodies in spawn order before
   draining it, which is exactly the order the old start events popped
   in. *)
type event = { eth : thread; ek : (unit, unit) continuation }

type t = {
  topo : Topology.t;
  costs : Costs.t;
  stats : Sim_stats.t;
  mutable ktime : int array;  (** heap keys: due times *)
  mutable kseq : int array;  (** heap keys: tie-breaking insertion order *)
  mutable evs : event array;  (** heap payloads, same slot as their key *)
  mutable hsize : int;
  mutable hseq : int;
  mutable salt : int;
      (** xor'd into [kseq] in tie comparisons; 0 (the default) keeps pure
          FIFO order among same-time events, a non-zero salt
          deterministically reorders them — the schedule explorer's
          bounded-reorder knob *)
  mutable start_floor : int;
      (** 0 while spawned-but-unstarted threads remain (they are due at
          virtual time 0, so running threads must suspend as if those
          starts were queued); [max_int] afterwards *)
  mutable pending : (thread * (unit -> unit)) list;
  mutable active : bool;
  mutable faults : faults option;
      (** armed fault plan; [None] keeps every hot path on its original
          charge sequence (one pointer comparison per effect point) *)
}

(* Armed fault-injection state: the plan's per-thread decision streams
   plus the per-core park deadlines that model whole-core preemption. *)
and faults = {
  armed : Fault_plan.armed;
  core_until : int array;  (** global core index -> parked until *)
}

(* The only effect: "another thread is due to run before my new time".
   Latency accounting happens {e inline} in [touch]/[work]/[yield] at
   perform-time — exactly where the old per-effect handler charged it — so
   moving it out of the handler changes no access ordering.  The effect
   itself only parks the continuation in the event heap. *)
type _ Effect.t += Suspend : unit Effect.t

(* Outstanding misses a core can overlap (memory-level parallelism): a
   batch of independent accesses proceeds in windows of this many. *)
let mlp = 8

let create ?(costs = Costs.default) topo =
  {
    topo;
    costs;
    stats = Sim_stats.create ();
    ktime = [||];
    kseq = [||];
    evs = [||];
    hsize = 0;
    hseq = 0;
    salt = 0;
    start_floor = max_int;
    pending = [];
    active = false;
    faults = None;
  }

let topology t = t.topo
let costs t = t.costs
let stats t = t.stats

let set_fault_plan t = function
  | None -> t.faults <- None
  | Some plan ->
      let max_threads = Topology.max_threads t.topo in
      (* one slot per core; core ids are global in the topology *)
      t.faults <-
        Some
          {
            armed = Fault_plan.arm plan ~max_threads;
            core_until = Array.make max_threads 0;
          }

let set_tie_break t ~salt =
  if t.hsize > 0 then
    invalid_arg "Sched.set_tie_break: event heap is not empty";
  t.salt <- salt

let fault_stats t =
  match t.faults with
  | None -> None
  | Some f -> Some (Fault_plan.stats f.armed)

(* {2 The event heap: a binary min-heap on (time, seq)}

   Sifts move the hole, not the element: the inserted/displaced entry is
   written exactly once, at its final slot, and every comparison on the way
   reads only the flat key arrays. *)

let heap_grow t ev =
  let cap = Array.length t.evs in
  if cap = 0 then begin
    t.ktime <- Array.make 64 0;
    t.kseq <- Array.make 64 0;
    t.evs <- Array.make 64 ev
  end
  else begin
    let ktime = Array.make (2 * cap) 0 in
    let kseq = Array.make (2 * cap) 0 in
    let evs = Array.make (2 * cap) ev in
    Array.blit t.ktime 0 ktime 0 cap;
    Array.blit t.kseq 0 kseq 0 cap;
    Array.blit t.evs 0 evs 0 cap;
    t.ktime <- ktime;
    t.kseq <- kseq;
    t.evs <- evs
  end

let heap_add t ~time th k =
  let ev = { eth = th; ek = k } in
  if t.hsize = Array.length t.evs then heap_grow t ev;
  let seq = t.hseq in
  t.hseq <- seq + 1;
  let kt = t.ktime and ks = t.kseq and evs = t.evs and salt = t.salt in
  (* sift the hole up *)
  let i = ref t.hsize in
  t.hsize <- !i + 1;
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let p = (!i - 1) / 2 in
    let pt = Array.unsafe_get kt p in
    if time < pt || (time = pt && seq lxor salt < Array.unsafe_get ks p lxor salt)
    then begin
      Array.unsafe_set kt !i pt;
      Array.unsafe_set ks !i (Array.unsafe_get ks p);
      Array.unsafe_set evs !i (Array.unsafe_get evs p);
      i := p
    end
    else continue_ := false
  done;
  Array.unsafe_set kt !i time;
  Array.unsafe_set ks !i seq;
  Array.unsafe_set evs !i ev

let heap_pop t =
  let top = t.evs.(0) in
  let n = t.hsize - 1 in
  t.hsize <- n;
  if n > 0 then begin
    let kt = t.ktime and ks = t.kseq and evs = t.evs and salt = t.salt in
    (* re-insert the last entry at the root, sifting the hole down *)
    let time = Array.unsafe_get kt n and seq = Array.unsafe_get ks n in
    let last = Array.unsafe_get evs n in
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 in
      if l >= n then continue_ := false
      else begin
        (* pick the smaller child *)
        let r = l + 1 in
        let c =
          if r < n then begin
            let lt = Array.unsafe_get kt l and rt = Array.unsafe_get kt r in
            if
              rt < lt
              || rt = lt
                 && Array.unsafe_get ks r lxor salt
                    < Array.unsafe_get ks l lxor salt
            then r
            else l
          end
          else l
        in
        let ct = Array.unsafe_get kt c in
        if ct < time || (ct = time && Array.unsafe_get ks c lxor salt < seq lxor salt)
        then begin
          Array.unsafe_set kt !i ct;
          Array.unsafe_set ks !i (Array.unsafe_get ks c);
          Array.unsafe_set evs !i (Array.unsafe_get evs c);
          i := c
        end
        else continue_ := false
      end
    done;
    Array.unsafe_set kt !i time;
    Array.unsafe_set ks !i seq;
    Array.unsafe_set evs !i last
  end;
  top

(* The scheduler is single-OS-thread by construction; these globals identify
   the running simulation and the thread being resumed. *)
let cur_sched : t option ref = ref None
let cur_thread : thread option ref = ref None

let self () =
  match !cur_thread with
  | Some th -> th
  | None -> invalid_arg "Sched: called outside a simulated thread"

let sched () =
  match !cur_sched with
  | Some t -> t
  | None -> invalid_arg "Sched: no simulation is running"

let running () = !cur_thread <> None
let now () = (self ()).time
let self_tid () = (self ()).tid
let self_node () = (self ()).node
let self_core () = (self ()).core

(* Hand the CPU back to the scheduler iff some other thread's event is due
   at or before our new time.  When we are still strictly the earliest,
   the old scheduler would enqueue us and immediately pop us again (a
   fresh event carries the largest sequence number, so a tie also favors
   the queued thread) — skipping that round-trip resumes the {e same}
   thread the heap would have picked, so interleavings are unchanged, but
   the continuation capture, event record and heap traffic of the
   round-trip disappear from the common case. *)
let maybe_suspend t th =
  let tmin =
    if t.hsize = 0 then t.start_floor else Array.unsafe_get t.ktime 0
  in
  let tmin = if t.start_floor < tmin then t.start_floor else tmin in
  if th.time >= tmin then perform Suspend

(* Apply the armed fault plan at one effect point: float the thread past
   its core's park deadline, then let the plan stall, preempt, jitter or
   kill it.  Runs after the charge, before the suspension decision. *)
let fault_point f th point =
  let cu = Array.unsafe_get f.core_until th.core in
  if cu > th.time then th.time <- cu;
  match Fault_plan.decide f.armed ~tid:th.tid ~now:th.time point with
  | Fault_plan.Nothing -> ()
  | Fault_plan.Stall k ->
      Nr_obs.Sink.slice ~tid:th.tid ~node:th.node ~cat:"fault" ~ts:th.time
        ~dur:k "stall";
      th.time <- th.time + k
  | Fault_plan.Preempt k ->
      Nr_obs.Sink.slice ~tid:th.tid ~node:th.node ~cat:"fault" ~ts:th.time
        ~dur:k "preempt";
      let until = th.time + k in
      Array.unsafe_set f.core_until th.core until;
      th.time <- until
  | Fault_plan.Die ->
      Nr_obs.Sink.instant ~tid:th.tid ~node:th.node ~cat:"fault"
        ~arg:Nr_obs.Sink.no_arg "die";
      th.dead <- true

(* The per-effect-point epilogue: with no plan armed this is exactly
   [maybe_suspend]; with one armed, injection runs first and a killed
   thread suspends unconditionally so the handler can drop it. *)
let after_charge t th point =
  match t.faults with
  | None -> maybe_suspend t th
  | Some f ->
      fault_point f th point;
      if th.dead then perform Suspend else maybe_suspend t th

let touch line kind =
  let th = self () in
  let t = sched () in
  th.time <-
    Mem.access t.topo t.costs t.stats ~node:th.node ~core:th.core
      ~now:th.time line kind;
  after_charge t th Fault_plan.Touch

(* Independent accesses overlap in windows of [mlp]. *)
let touch_batch accesses =
  let n = Array.length accesses in
  if n > 0 then begin
    let th = self () in
    let t = sched () in
    let i = ref 0 in
    while !i < n do
      let stop = min n (!i + mlp) in
      let window_start = th.time in
      let window_end = ref window_start in
      while !i < stop do
        let line, kind = accesses.(!i) in
        let fin =
          Mem.access t.topo t.costs t.stats ~node:th.node ~core:th.core
            ~now:window_start line kind
        in
        if fin > !window_end then window_end := fin;
        incr i
      done;
      th.time <- !window_end
    done;
    after_charge t th Fault_plan.Touch
  end

(* Same overlapped-window charging, for a uniform access kind over
   [lines.(0..n-1)].  The array is consumed here, before any suspension,
   so callers may reuse their scratch buffer as soon as the call
   returns. *)
let touch_batch_kind lines ~n kind =
  if n > 0 then begin
    let th = self () in
    let t = sched () in
    let i = ref 0 in
    while !i < n do
      let stop = min n (!i + mlp) in
      let window_start = th.time in
      let window_end = ref window_start in
      while !i < stop do
        let fin =
          Mem.access t.topo t.costs t.stats ~node:th.node ~core:th.core
            ~now:window_start lines.(!i) kind
        in
        if fin > !window_end then window_end := fin;
        incr i
      done;
      th.time <- !window_end
    done;
    after_charge t th Fault_plan.Touch
  end

let work n =
  if n > 0 then begin
    let th = self () in
    let t = sched () in
    let n = max 1 n in
    (* run-slice for the tracer: local computation, no memory cost *)
    Nr_obs.Sink.slice ~tid:th.tid ~node:th.node ~cat:"sched" ~ts:th.time
      ~dur:n "run";
    th.time <- th.time + n;
    t.stats.cycles_work <- t.stats.cycles_work + n;
    after_charge t th Fault_plan.Work
  end

let yield () =
  let th = self () in
  let t = sched () in
  Nr_obs.Sink.slice ~tid:th.tid ~node:th.node ~cat:"sched" ~ts:th.time
    ~dur:t.costs.yield "spin";
  th.time <- th.time + t.costs.yield;
  t.stats.cycles_spin <- t.stats.cycles_spin + t.costs.yield;
  after_charge t th Fault_plan.Yield

let fresh_line _t ~home = Mem.line ~home

let fresh_line_local t =
  let home = match !cur_thread with Some th -> th.node | None -> 0 in
  fresh_line t ~home

let spawn t ~tid fn =
  let node = Topology.node_of_thread t.topo tid in
  let core = Topology.core_of_thread t.topo tid in
  let th = { tid; node; core; time = 0; dead = false; as_opt = None } in
  th.as_opt <- Some th;
  t.pending <- (th, fn) :: t.pending

(* Each thread body runs under a deep handler whose only job is to park
   [Suspend]ed continuations in the event heap; costs were already charged
   inline by the operation that performed the effect.  The handler arm is
   allocated once per thread, not once per effect. *)
let handler t th =
  let arm =
    Some
      (fun (k : (unit, unit) continuation) ->
        (* dropping a dead thread's continuation is its death: the fiber is
           never resumed and the GC reclaims it *)
        if not th.dead then heap_add t ~time:th.time th k)
  in
  {
    retc = (fun () -> ());
    exnc = raise;
    effc =
      (fun (type a) (eff : a Effect.t) :
           ((a, unit) continuation -> unit) option ->
        match eff with Suspend -> arm | _ -> None);
  }

let run t =
  if !cur_sched <> None then
    invalid_arg "Sched.run: a simulation is already running";
  t.active <- true;
  let pending = List.rev t.pending in
  t.pending <- [];
  cur_sched := Some t;
  Fun.protect
    ~finally:(fun () ->
      cur_sched := None;
      cur_thread := None;
      t.start_floor <- max_int;
      t.active <- false)
    (fun () ->
      (* While unstarted threads remain they are due at time 0, so threads
         already running must suspend on every charge — just as when the
         starts sat in the queue. *)
      t.start_floor <- 0;
      let rec start = function
        | [] -> t.start_floor <- max_int
        | [ (th, fn) ] ->
            (* last start: nothing later in the start list can force a
               suspension anymore *)
            t.start_floor <- max_int;
            cur_thread := th.as_opt;
            match_with fn () (handler t th)
        | (th, fn) :: rest ->
            cur_thread := th.as_opt;
            match_with fn () (handler t th);
            start rest
      in
      start pending;
      while t.hsize > 0 do
        let ev = heap_pop t in
        cur_thread := ev.eth.as_opt;
        continue ev.ek ()
      done)

type kind = Read | Write | Cas

type line = {
  home : int;
  mutable owner : int;
  mutable sharers : int;
  mutable last_core : int;
  mutable busy_until : int;
      (** completion time of the last ownership transfer of this line: the
          coherence protocol serializes transfers, which is what makes a
          contended line a throughput bottleneck on real machines *)
}

let line ~home =
  { home; owner = -1; sharers = 0; last_core = -1; busy_until = 0 }

(* The probe penalty models an incomplete cache directory (paper §8.4): on
   AMD Magny-Cours, node-local cache-to-cache transfers still broadcast
   snoop probes across the interconnect, so even intra-node sharing pays a
   cross-node latency. *)
let probe_penalty topo (c : Costs.t) =
  if topo.Topology.incomplete_directory then c.probe else 0

(* Returns (cost, is_local_hit). *)
let read_cost topo (c : Costs.t) (st : Sim_stats.t) ~node ~core l =
  let my_bit = 1 lsl node in
  if l.owner = node || l.sharers land my_bit <> 0 then
    if l.last_core = core then (
      st.l1_hits <- st.l1_hits + 1;
      (c.l1_hit, true))
    else (
      st.l3_hits <- st.l3_hits + 1;
      (c.l3_hit + probe_penalty topo c, true))
  else if l.owner >= 0 then (
    (* dirty in a remote cache: transfer and downgrade to shared *)
    st.remote_dirty <- st.remote_dirty + 1;
    l.sharers <- l.sharers lor (1 lsl l.owner);
    l.owner <- -1;
    (c.remote_dirty, false))
  else if l.sharers <> 0 then (
    st.remote_clean <- st.remote_clean + 1;
    (c.remote_clean, false))
  else if l.home = node then (
    st.mem_local <- st.mem_local + 1;
    (c.mem_local, false))
  else (
    st.mem_remote <- st.mem_remote + 1;
    (c.mem_remote, false))

let write_cost topo (c : Costs.t) (st : Sim_stats.t) ~node ~core l =
  let my_bit = 1 lsl node in
  let others_shared = l.sharers land lnot my_bit <> 0 in
  if l.owner = node && not others_shared then
    if l.last_core = core then (
      st.l1_hits <- st.l1_hits + 1;
      c.l1_hit)
    else (
      st.l3_hits <- st.l3_hits + 1;
      c.l3_hit + probe_penalty topo c)
  else if l.owner >= 0 && l.owner <> node then (
    st.remote_dirty <- st.remote_dirty + 1;
    c.remote_dirty)
  else if others_shared then (
    (* invalidate remote shared copies: an upgrade, no data transfer *)
    st.remote_clean <- st.remote_clean + 1;
    c.upgrade)
  else if l.sharers land my_bit <> 0 || l.owner = node then (
    (* shared only locally: upgrade *)
    st.l3_hits <- st.l3_hits + 1;
    c.l3_hit + probe_penalty topo c)
  else if l.home = node then (
    st.mem_local <- st.mem_local + 1;
    c.mem_local)
  else (
    st.mem_remote <- st.mem_remote + 1;
    c.mem_remote)

(* Issue cost of a store that misses: the store buffer hides the transfer
   latency from the writing thread. *)
let store_issue = 20

(* [access ... ~now] returns the time at which the issuing thread may
   proceed.

   - Reads stall the thread for the load-to-use latency; misses additionally
     queue behind the line's previous ownership transfer (the coherence
     protocol serializes transfers, which is what makes a contended line a
     throughput bottleneck).
   - Writes retire through the store buffer: the thread only pays a small
     issue cost, while the ownership transfer completes in the background —
     its latency is felt by the {e next} thread that touches the line.
   - Atomic read-modify-writes (CAS and friends) are full fences: they stall
     for the whole serialized transfer. *)
let access topo costs stats ~node ~core ~now l kind =
  let finish =
    match kind with
    | Read ->
        let cost, local = read_cost topo costs stats ~node ~core l in
        l.sharers <- l.sharers lor (1 lsl node);
        if local then now + cost
        else begin
          let start = max now l.busy_until in
          let fin = start + cost in
          l.busy_until <- fin;
          fin
        end
    | Write ->
        let cost = write_cost topo costs stats ~node ~core l in
        l.owner <- node;
        l.sharers <- 1 lsl node;
        l.busy_until <- max now l.busy_until + cost;
        now + min cost store_issue
    | Cas ->
        stats.cas_ops <- stats.cas_ops + 1;
        let cost =
          write_cost topo costs stats ~node ~core l + costs.cas_extra
        in
        l.owner <- node;
        l.sharers <- 1 lsl node;
        let start = max now l.busy_until in
        let fin = start + cost in
        l.busy_until <- fin;
        fin
  in
  l.last_core <- core;
  stats.cycles_memory <- stats.cycles_memory + (finish - now);
  finish

type 'a event = { time : int; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a event array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }
let is_empty t = t.size = 0
let length t = t.size

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = max 16 (2 * Array.length t.heap) in
  let heap = Array.make cap t.heap.(0) in
  Array.blit t.heap 0 heap 0 t.size;
  t.heap <- heap

let add t ~time payload =
  let ev = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.size = Array.length t.heap then
    if t.size = 0 then t.heap <- Array.make 16 ev else grow t;
  (* sift up *)
  let i = ref t.size in
  t.size <- t.size + 1;
  t.heap.(!i) <- ev;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before ev t.heap.(parent) then (
      t.heap.(!i) <- t.heap.(parent);
      t.heap.(parent) <- ev;
      i := parent)
    else continue := false
  done

let pop t =
  if t.size = 0 then invalid_arg "Eventq.pop: empty";
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then (
    let last = t.heap.(t.size) in
    t.heap.(0) <- last;
    (* sift down *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
      if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
      if !smallest <> !i then (
        let tmp = t.heap.(!i) in
        t.heap.(!i) <- t.heap.(!smallest);
        t.heap.(!smallest) <- tmp;
        i := !smallest)
      else continue := false
    done);
  (top.time, top.payload)

let min_time t = if t.size = 0 then None else Some t.heap.(0).time

(* {2 Non-allocating variants for the scheduler's per-event loop} *)

let min_time_or t default = if t.size = 0 then default else t.heap.(0).time

let pop_payload t =
  if t.size = 0 then invalid_arg "Eventq.pop: empty";
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then (
    let last = t.heap.(t.size) in
    t.heap.(0) <- last;
    (* sift down *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
      if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
      if !smallest <> !i then (
        let tmp = t.heap.(!i) in
        t.heap.(!i) <- t.heap.(!smallest);
        t.heap.(!smallest) <- tmp;
        i := !smallest)
      else continue := false
    done);
  top.payload

type 'a event = { time : int; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a event array;
  mutable size : int;
  mutable next_seq : int;
  salt : int;
      (* xor'd into [seq] before tie comparisons: 0 is the identity (pure
         FIFO among simultaneous events); a non-zero salt deterministically
         reorders same-time events within aligned blocks of
         [2^ceil(log2 salt)] insertions — the schedule explorer's bounded
         reorder *)
  dummy : 'a event;
      (* filler for vacated and never-yet-used slots, so the heap array
         retains no reference to popped events (their payloads are often
         closures over live state) *)
}

(* The dummy's payload is [()] smuggled past the type checker: it is only
   ever stored in slots at index >= size, which no operation reads. *)
let make_dummy () = { time = min_int; seq = min_int; payload = Obj.obj (Obj.repr ()) }

let create ?(salt = 0) () =
  { heap = [||]; size = 0; next_seq = 0; salt; dummy = make_dummy () }

let is_empty t = t.size = 0
let length t = t.size

let before t a b =
  a.time < b.time || (a.time = b.time && a.seq lxor t.salt < b.seq lxor t.salt)

let grow t =
  let cap = max 16 (2 * Array.length t.heap) in
  (* dummy filler: duplicating a live event reference here would retain it
     past its pop *)
  let heap = Array.make cap t.dummy in
  Array.blit t.heap 0 heap 0 t.size;
  t.heap <- heap

let add t ~time payload =
  let ev = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.size = Array.length t.heap then grow t;
  (* sift up *)
  let i = ref t.size in
  t.size <- t.size + 1;
  t.heap.(!i) <- ev;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before t ev t.heap.(parent) then (
      t.heap.(!i) <- t.heap.(parent);
      t.heap.(parent) <- ev;
      i := parent)
    else continue := false
  done

(* Shared removal: extract the root, re-seat the last element, and clear
   the vacated slot [t.size] so the popped event becomes unreachable. *)
let remove_top t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then (
    let last = t.heap.(t.size) in
    t.heap.(0) <- last;
    (* sift down *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && before t t.heap.(l) t.heap.(!smallest) then smallest := l;
      if r < t.size && before t t.heap.(r) t.heap.(!smallest) then smallest := r;
      if !smallest <> !i then (
        let tmp = t.heap.(!i) in
        t.heap.(!i) <- t.heap.(!smallest);
        t.heap.(!smallest) <- tmp;
        i := !smallest)
      else continue := false
    done);
  t.heap.(t.size) <- t.dummy;
  top

let pop t =
  if t.size = 0 then invalid_arg "Eventq.pop: empty";
  let top = remove_top t in
  (top.time, top.payload)

let min_time t = if t.size = 0 then None else Some t.heap.(0).time

(* {2 Non-allocating variants for per-event loops} *)

let min_time_or t default = if t.size = 0 then default else t.heap.(0).time

let pop_payload t =
  if t.size = 0 then invalid_arg "Eventq.pop: empty";
  (remove_top t).payload

(** A region of simulated cache lines standing in for a data structure's
    payload memory.

    The simulator executes real sequential data structures for semantics, but
    their memory traffic must still be charged against the machine model.  A
    region owns [lines] simulated cache lines (all homed at one node) plus one
    designated {e hot} line standing for the structure's entry point (skip
    list head, tree root, stack top...).  {!touch} charges one operation's
    footprint: the hot line plus a key-determined set of body lines, so
    operations on the same key hit the same lines — which is what makes
    skewed (zipf) workloads contend in the model exactly as they do on real
    hardware. *)

type t

val create : Sched.t -> home:int -> lines:int -> t
(** [create sched ~home ~lines] allocates a region of [lines] cache lines
    homed at node [home]. *)

val touch :
  t ->
  key:int ->
  reads:int ->
  writes:int ->
  hot_write:bool ->
  spine_reads:int ->
  spine_writes:int ->
  unit
(** Charge one operation: a hot-line access (write when [hot_write]),
    [spine_reads]/[spine_writes] on the structure's shared entry area, and
    [reads]/[writes] body-line accesses derived deterministically from
    [key].  Must run inside a simulated thread. *)

val line_count : t -> int

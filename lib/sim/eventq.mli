(** A deterministic event queue for the simulator: a binary min-heap ordered
    by (time, insertion sequence), so simultaneous events run in the order
    they were scheduled and a run is reproducible. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val add : 'a t -> time:int -> 'a -> unit

val pop : 'a t -> int * 'a
(** Removes and returns the earliest event as [(time, payload)].
    Raises [Invalid_argument] if the queue is empty. *)

val min_time : 'a t -> int option

val min_time_or : 'a t -> int -> int
(** [min_time_or t default] is {!min_time} without the option allocation:
    the earliest event time, or [default] when the queue is empty. *)

val pop_payload : 'a t -> 'a
(** {!pop} without the tuple allocation, for callers that track time
    elsewhere. *)

(** A deterministic event queue for the simulator: a binary min-heap ordered
    by (time, insertion sequence), so simultaneous events run in the order
    they were scheduled and a run is reproducible. *)

type 'a t

val create : ?salt:int -> unit -> 'a t
(** [salt] perturbs the tie-break among same-time events: 0 (the default)
    is pure FIFO; a non-zero salt xors the insertion sequence before
    comparing, deterministically reordering simultaneous events within
    aligned blocks of [2^ceil(log2 salt)] insertions.  The schedule
    explorer sweeps salts to enumerate distinct interleavings; ordering
    across different times is unaffected. *)

val is_empty : 'a t -> bool
val length : 'a t -> int
val add : 'a t -> time:int -> 'a -> unit

val pop : 'a t -> int * 'a
(** Removes and returns the earliest event as [(time, payload)].
    Raises [Invalid_argument] if the queue is empty. *)

val min_time : 'a t -> int option

val min_time_or : 'a t -> int -> int
(** [min_time_or t default] is {!min_time} without the option allocation:
    the earliest event time, or [default] when the queue is empty. *)

val pop_payload : 'a t -> 'a
(** {!pop} without the tuple allocation, for callers that track time
    elsewhere. *)

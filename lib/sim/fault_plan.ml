(** Deterministic, seeded fault injection for the simulator.

    A plan describes adversarial scheduling events to inject at the
    scheduler's effect points (every {!Sched.touch}, {!Sched.work} and
    {!Sched.yield}): thread stalls of a fixed length, long preemptions
    that park a whole core, permanent thread death, and small cost
    jitter.  Faults fire either probabilistically — each thread draws
    from its own splitmix64 stream seeded from [seed] and its tid, so a
    thread's decisions depend only on its own effect-point count and the
    whole schedule replays byte-identically from the seed — or at
    explicit [(tid, nth effect point)] triggers for surgical tests
    (e.g. stalling a combiner exactly mid-batch).

    A plan is pure data; {!Sched.set_fault_plan} arms it.  With no plan
    installed the scheduler's hot paths are unchanged (one pointer
    comparison per effect point, no allocation, no extra charges). *)

type point = Touch | Work | Yield

type t = {
  seed : int;
  stall_prob : float;  (** per effect point; 0 disables *)
  stall_cycles : int;  (** stall length when a stall fires *)
  preempt_prob : float;
  preempt_cycles : int;  (** the thread's whole core parks this long *)
  jitter_prob : float;
  jitter_max : int;  (** uniform extra cost in [1, jitter_max] *)
  kill_prob : float;  (** permanent thread death *)
  stalls_at : (int * int * int) list;
      (** explicit triggers: [(tid, nth effect point, cycles)] *)
  kills_at : (int * int) list;  (** [(tid, nth effect point)] *)
  only_tids : int list;
      (** restrict probabilistic faults to these tids; [[]] = all *)
  horizon : int;
      (** kill any thread whose virtual time passes this; 0 = unbounded.
          A safety net so that a chaos schedule that strands waiters on a
          dead lock holder still terminates. *)
}

let none =
  {
    seed = 0;
    stall_prob = 0.0;
    stall_cycles = 0;
    preempt_prob = 0.0;
    preempt_cycles = 0;
    jitter_prob = 0.0;
    jitter_max = 0;
    kill_prob = 0.0;
    stalls_at = [];
    kills_at = [];
    only_tids = [];
    horizon = 0;
  }

(** Counters accumulated while a plan is armed. *)
type stats = {
  mutable stalls : int;
  mutable preempts : int;
  mutable jitters : int;
  mutable kills : int;  (** deaths from [kill_prob] / [kills_at] *)
  mutable horizon_kills : int;
  mutable injected_cycles : int;  (** total virtual cycles added *)
}

let stats_create () =
  {
    stalls = 0;
    preempts = 0;
    jitters = 0;
    kills = 0;
    horizon_kills = 0;
    injected_cycles = 0;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "stalls=%d preempts=%d jitters=%d kills=%d horizon_kills=%d \
     injected_cycles=%d"
    s.stalls s.preempts s.jitters s.kills s.horizon_kills s.injected_cycles

(* {2 Per-thread decision streams}

   splitmix64 (Steele et al.), same generator the workload PRNG uses, but
   self-contained so the simulator keeps its dependency-free layering.
   One state per thread, advanced once per armed effect point. *)

let sm64_next st =
  let z = Int64.add !st 0x9E3779B97F4A7C15L in
  st := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits53 = (1 lsl 53) - 1
let draw53 st = Int64.to_int (sm64_next st) land bits53

(* Cumulative 53-bit thresholds so one draw decides stall / preempt /
   jitter / kill per effect point. *)
type thresholds = { t_stall : int; t_preempt : int; t_jitter : int; t_kill : int }

let clamp01 p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p

let thresholds plan =
  let scale p = int_of_float (clamp01 p *. float_of_int (bits53 + 1)) in
  let a = scale plan.stall_prob in
  let b = a + scale plan.preempt_prob in
  let c = b + scale plan.jitter_prob in
  let d = c + scale plan.kill_prob in
  { t_stall = a; t_preempt = b; t_jitter = c; t_kill = d }

(** What the scheduler should do at one effect point. *)
type action =
  | Nothing
  | Stall of int  (** add this many cycles to the thread *)
  | Preempt of int  (** park the thread's core this long *)
  | Die

(* Per-thread armed state. *)
type armed = {
  plan : t;
  thr : thresholds;
  rngs : int64 ref array;  (** one stream per tid *)
  counts : int array;  (** effect points seen per tid *)
  eligible : bool array;  (** tid participates in probabilistic faults *)
  mutable sched_stalls : (int * int * int) list;  (** remaining explicit *)
  mutable sched_kills : (int * int) list;
  stats : stats;
}

let arm plan ~max_threads =
  {
    plan;
    thr = thresholds plan;
    rngs =
      Array.init max_threads (fun tid ->
          ref (Int64.of_int (plan.seed lxor ((tid + 1) * 0x9E3779B9))));
    counts = Array.make max_threads 0;
    eligible =
      Array.init max_threads (fun tid ->
          plan.only_tids = [] || List.mem tid plan.only_tids);
    sched_stalls = plan.stalls_at;
    sched_kills = plan.kills_at;
    stats = stats_create ();
  }

(* Decide the action for [tid]'s next effect point.  [now] is the thread's
   virtual time after the charge.  Explicit triggers take precedence, then
   the horizon, then one probabilistic draw. *)
let decide a ~tid ~now (_point : point) =
  let c = a.counts.(tid) + 1 in
  a.counts.(tid) <- c;
  let explicit_kill = List.mem (tid, c) a.sched_kills in
  if explicit_kill then begin
    a.sched_kills <- List.filter (( <> ) (tid, c)) a.sched_kills;
    a.stats.kills <- a.stats.kills + 1;
    Die
  end
  else
    match
      List.find_opt (fun (t, n, _) -> t = tid && n = c) a.sched_stalls
    with
    | Some ((_, _, k) as trig) ->
        a.sched_stalls <- List.filter (( <> ) trig) a.sched_stalls;
        a.stats.stalls <- a.stats.stalls + 1;
        a.stats.injected_cycles <- a.stats.injected_cycles + k;
        Stall k
    | None ->
        if a.plan.horizon > 0 && now > a.plan.horizon then begin
          a.stats.horizon_kills <- a.stats.horizon_kills + 1;
          Die
        end
        else if (not a.eligible.(tid)) || a.thr.t_kill = 0 then Nothing
        else begin
          let u = draw53 a.rngs.(tid) in
          if u < a.thr.t_stall then begin
            a.stats.stalls <- a.stats.stalls + 1;
            a.stats.injected_cycles <-
              a.stats.injected_cycles + a.plan.stall_cycles;
            Stall a.plan.stall_cycles
          end
          else if u < a.thr.t_preempt then begin
            a.stats.preempts <- a.stats.preempts + 1;
            a.stats.injected_cycles <-
              a.stats.injected_cycles + a.plan.preempt_cycles;
            Preempt a.plan.preempt_cycles
          end
          else if u < a.thr.t_jitter then begin
            let k = 1 + (draw53 a.rngs.(tid) mod max 1 a.plan.jitter_max) in
            a.stats.jitters <- a.stats.jitters + 1;
            a.stats.injected_cycles <- a.stats.injected_cycles + k;
            Stall k
          end
          else if u < a.thr.t_kill then begin
            a.stats.kills <- a.stats.kills + 1;
            Die
          end
          else Nothing
        end

let stats a = a.stats

type t = {
  l1_hit : int;
  l3_hit : int;
  remote_clean : int;
  remote_dirty : int;
  mem_local : int;
  mem_remote : int;
  upgrade : int;
  cas_extra : int;
  yield : int;
  probe : int;
}

let default =
  {
    l1_hit = 4;
    l3_hit = 30;
    remote_clean = 200;
    remote_dirty = 320;
    mem_local = 120;
    mem_remote = 280;
    upgrade = 110;
    cas_extra = 12;
    yield = 25;
    probe = 120;
  }

let scaled f =
  let s x = max 1 (int_of_float (float_of_int x *. f)) in
  {
    l1_hit = s default.l1_hit;
    l3_hit = s default.l3_hit;
    remote_clean = s default.remote_clean;
    remote_dirty = s default.remote_dirty;
    mem_local = s default.mem_local;
    mem_remote = s default.mem_remote;
    upgrade = s default.upgrade;
    cas_extra = s default.cas_extra;
    yield = default.yield;
    probe = s default.probe;
  }

let pp ppf c =
  Format.fprintf ppf
    "l1=%d l3=%d remote_clean=%d remote_dirty=%d mem_local=%d mem_remote=%d"
    c.l1_hit c.l3_hit c.remote_clean c.remote_dirty c.mem_local c.mem_remote

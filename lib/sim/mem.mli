(** Cache-line state for the NUMA simulator.

    Each simulated cache line carries a MESI-like summary at node granularity:
    at most one node may hold the line Modified ([owner]), any set of nodes may
    hold it Shared ([sharers] bitmask), and [last_core] approximates L1
    residency.  [access] computes the latency of a read, write or atomic
    update by a given (node, core) and applies the coherence transition. *)

type kind = Read | Write | Cas

type line = {
  home : int;  (** node whose memory backs this line *)
  mutable owner : int;  (** node holding the line Modified, or -1 *)
  mutable sharers : int;  (** bitmask of nodes holding a Shared copy *)
  mutable last_core : int;  (** global core that last touched the line *)
  mutable busy_until : int;
      (** completion time of the line's last ownership transfer; transfers
          serialize, so a contended line is a genuine bottleneck *)
}

val line : home:int -> line
(** A fresh line, present in no cache. *)

val access :
  Topology.t ->
  Costs.t ->
  Sim_stats.t ->
  node:int ->
  core:int ->
  now:int ->
  line ->
  kind ->
  int
(** [access topo costs stats ~node ~core ~now line kind] returns the
    completion time of an access issued at [now], updating the line's
    coherence state, its transfer queue and the statistics counters.
    Cache-hit reads complete at [now + hit_cost]; ownership transfers and
    atomic operations additionally wait for the line's previous transfer. *)

(** Counters collected by the simulator during a run: one bucket per access
    class, plus cache-line transfer counts.  These mirror the hardware
    performance counters the paper consults (§8.1.1: "NR had the fewest L3
    cache misses served from remote caches"). *)

type t = {
  mutable l1_hits : int;
  mutable l3_hits : int;
  mutable remote_clean : int;
  mutable remote_dirty : int;
  mutable mem_local : int;
  mutable mem_remote : int;
  mutable cas_ops : int;
  mutable cas_failures : int;
  mutable cycles_memory : int;  (** total cycles spent in memory accesses *)
  mutable cycles_work : int;  (** total cycles spent in local computation *)
  mutable cycles_spin : int;  (** total cycles spent spinning / yielding *)
}

val create : unit -> t
val reset : t -> unit
val total_accesses : t -> int

val remote_transfers : t -> int
(** Accesses that crossed the node interconnect. *)

val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc]. *)

val register_metrics : Nr_obs.Metrics.t -> ?prefix:string -> t -> unit
(** Register every counter (prefixed, default ["sim"]) in a metrics
    registry; values are read live at dump time. *)

val pp : Format.formatter -> t -> unit

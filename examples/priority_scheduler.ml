(* A deadline scheduler built on an NR-wrapped pairing-heap priority queue —
   the paper's motivating kernel use case ("priority queues for
   scheduling", section 1).

   Run with:  dune exec examples/priority_scheduler.exe

   Producer domains submit jobs with deadlines; worker domains repeatedly
   take the most urgent job.  The priority queue is the paper's black-box
   pairing heap; NR makes it linearizable, so no job is ever run twice or
   lost even though every worker hammers deleteMin — the textbook
   operation-contention workload. *)

module Pq = Nr_seqds.Pairing_pq

let () =
  let topo = Nr_sim.Topology.tiny in
  let module R = (val Nr_runtime.Runtime_domains.make topo) in
  let module Queue = Nr_core.Node_replication.Make (R) (Pq) in
  let q = Queue.create (fun () -> Pq.create ()) in

  let producers = 2 and workers = 2 in
  let jobs_per_producer = 2_000 in
  let total_jobs = producers * jobs_per_producer in
  let executed = Array.make (producers + workers) [] in
  let submitted = Atomic.make 0 in
  let done_jobs = Atomic.make 0 in

  Nr_runtime.Runtime_domains.parallel_run ~nthreads:(producers + workers)
    (fun tid ->
      if tid < producers then begin
        (* producer: submit jobs with pseudo-random deadlines; the job id
           rides in the value *)
        let rng = Nr_workload.Prng.create ~seed:(tid + 1) in
        for i = 1 to jobs_per_producer do
          let deadline = Nr_workload.Prng.below rng 1_000_000 in
          let job_id = (tid * 1_000_000) + i in
          ignore
            (Queue.execute q (Nr_seqds.Pq_ops.Insert (deadline, job_id)));
          Atomic.incr submitted
        done
      end
      else begin
        (* worker: drain the most urgent job until all jobs are handled *)
        while Atomic.get done_jobs < total_jobs do
          match Queue.execute q Nr_seqds.Pq_ops.Delete_min with
          | Nr_seqds.Pq_ops.Removed (Some (_deadline, job_id)) ->
              executed.(tid) <- job_id :: executed.(tid);
              Atomic.incr done_jobs
          | Nr_seqds.Pq_ops.Removed None ->
              (* queue momentarily empty: producers still running *)
              Domain.cpu_relax ()
          | _ -> assert false
        done
      end);

  (* no job lost, none executed twice *)
  let all = Array.to_list executed |> List.concat in
  let distinct = List.sort_uniq compare all in
  Printf.printf "submitted %d jobs, executed %d distinct (%d total)\n"
    (Atomic.get submitted) (List.length distinct) (List.length all);
  assert (List.length all = total_jobs);
  assert (List.length distinct = total_jobs);
  Printf.printf "NR stats: %s\n"
    (Format.asprintf "%a" Nr_core.Stats.pp (Queue.stats q));
  print_endline "priority_scheduler OK"

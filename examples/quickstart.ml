(* Quickstart: turn a plain sequential data structure into a linearizable
   concurrent one with Node Replication.

   Run with:  dune exec examples/quickstart.exe

   The recipe is the paper's three-method interface (section 4): provide
   [create], [execute] and [is_read_only], apply the [Node_replication.Make]
   functor, and call [execute] from as many threads as you like. *)

(* 1. Any sequential structure.  Here: a tiny event histogram. *)
module Histogram = struct
  type t = { counts : (string, int) Nr_seqds.Hashtable.t }
  type op = Record of string | Count of string | Total

  type result = int

  let create () = { counts = Nr_seqds.Hashtable.create () }

  let execute t = function
    | Record label ->
        let c = Option.value (Nr_seqds.Hashtable.find t.counts label) ~default:0 in
        Nr_seqds.Hashtable.set t.counts label (c + 1);
        c + 1
    | Count label ->
        Option.value (Nr_seqds.Hashtable.find t.counts label) ~default:0
    | Total -> Nr_seqds.Hashtable.fold (fun acc _ c -> acc + c) t.counts 0

  let is_read_only = function Record _ -> false | Count _ | Total -> true

  (* Only used by the NUMA simulator; harmless defaults are fine when you
     run on real domains. *)
  let footprint _t = function
    | Record l -> Nr_runtime.Footprint.v ~key:(Hashtbl.hash l) ~reads:1 ~writes:1 ()
    | Count l -> Nr_runtime.Footprint.v ~key:(Hashtbl.hash l) ~reads:1 ()
    | Total -> Nr_runtime.Footprint.v ~key:0 ~reads:8 ()

  let lines t = max 16 (Nr_seqds.Hashtable.length t.counts)

  let pp_op ppf = function
    | Record l -> Format.fprintf ppf "record %s" l
    | Count l -> Format.fprintf ppf "count %s" l
    | Total -> Format.fprintf ppf "total"
end

let () =
  (* 2. Pick a runtime.  Real OCaml domains, with a virtual NUMA topology
        that assigns threads to nodes. *)
  let topo = Nr_sim.Topology.tiny in
  let module R = (val Nr_runtime.Runtime_domains.make topo) in

  (* 3. Apply the black-box transformation. *)
  let module Concurrent_histogram =
    Nr_core.Node_replication.Make (R) (Histogram)
  in
  let hist = Concurrent_histogram.create (fun () -> Histogram.create ()) in

  (* 4. Hammer it from several domains. *)
  let labels = [| "get"; "put"; "del" |] in
  let nthreads = 4 in
  let per_thread = 5_000 in
  Nr_runtime.Runtime_domains.parallel_run ~nthreads (fun tid ->
      let rng = Nr_workload.Prng.create ~seed:tid in
      for _ = 1 to per_thread do
        let label = labels.(Nr_workload.Prng.below rng (Array.length labels)) in
        ignore (Concurrent_histogram.execute hist (Histogram.Record label));
        (* reads are served from the local replica *)
        ignore (Concurrent_histogram.execute hist (Histogram.Count label))
      done);

  (* 5. Linearizability means no lost updates, ever. *)
  Nr_runtime.Runtime_domains.register ~tid:0;
  let total = Concurrent_histogram.execute hist Histogram.Total in
  Printf.printf "recorded %d events from %d threads (expected %d)\n" total
    nthreads (nthreads * per_thread);
  Array.iter
    (fun l ->
      Printf.printf "  %-4s %d\n" l
        (Concurrent_histogram.execute hist (Histogram.Count l)))
    labels;
  Printf.printf "NR stats: %s\n"
    (Format.asprintf "%a" Nr_core.Stats.pp (Concurrent_histogram.stats hist));
  assert (total = nthreads * per_thread);
  print_endline "quickstart OK"

(* A tour of the NUMA machine simulator: the same algorithm code runs on a
   simulated 4-node, 112-hyperthread server, and the cost model shows *why*
   NR wins — remote cache-line transfers.

   Run with:  dune exec examples/numa_sim_tour.exe *)

module S = Nr_sim.Sched
module T = Nr_sim.Topology

(* One contended counter structure, two methods. *)
module Counter = struct
  type t = { mutable v : int }
  type op = Incr | Get
  type result = int

  let create () = { v = 0 }

  let execute t = function
    | Incr ->
        t.v <- t.v + 1;
        t.v
    | Get -> t.v

  let is_read_only = function Get -> true | Incr -> false

  let footprint _ op =
    Nr_runtime.Footprint.v ~key:0 ~reads:1
      ~writes:(match op with Incr -> 1 | Get -> 0)
      ()

  let lines _ = 4
  let pp_op ppf _ = Format.pp_print_string ppf "op"
end

let run_method name build =
  let topo = T.intel in
  let threads = T.max_threads topo in
  let sched = S.create topo in
  let rt = Nr_runtime.Runtime_sim.make sched in
  let exec = build rt in
  let stop = int_of_float (100.0 *. T.cycles_per_us topo) in
  let ops = Array.make threads 0 in
  for tid = 0 to threads - 1 do
    let rng = Nr_workload.Prng.create ~seed:tid in
    S.spawn sched ~tid (fun () ->
        while S.now () < stop do
          (* 10% updates *)
          if Nr_workload.Prng.below rng 10 = 0 then
            ignore (exec Counter.Incr)
          else ignore (exec Counter.Get);
          ops.(tid) <- ops.(tid) + 1
        done)
  done;
  S.run sched;
  let total = Array.fold_left ( + ) 0 ops in
  let st = S.stats sched in
  Printf.printf
    "%-14s %8.1f ops/us   remote transfers: %8d   L1/L3 hits: %9d\n" name
    (float_of_int total /. 100.0)
    (Nr_sim.Sim_stats.remote_transfers st)
    (st.Nr_sim.Sim_stats.l1_hits + st.Nr_sim.Sim_stats.l3_hits)

let () =
  print_endline "112 simulated hyperthreads on 4 NUMA nodes, 10% updates:";
  run_method "spinlock (SL)" (fun rt ->
      let module R = (val rt : Nr_runtime.Runtime_intf.S) in
      let module M = Nr_baselines.Single_lock.Make (R) (Counter) in
      let t = M.create (fun () -> Counter.create ()) in
      M.execute t);
  run_method "NR" (fun rt ->
      let module R = (val rt : Nr_runtime.Runtime_intf.S) in
      let module M = Nr_core.Node_replication.Make (R) (Counter) in
      let t = M.create (fun () -> Counter.create ()) in
      M.execute t);
  print_endline
    "NR turns most accesses into node-local cache hits; the lock bounces \
     its line across the interconnect.";
  print_endline "numa_sim_tour OK"

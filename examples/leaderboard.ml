(* A game leaderboard on the KV store's sorted sets, made concurrent the
   way the paper treats Redis (section 7): wrap the *whole store* — hash
   table and skip list coupled inside each sorted set — as one black-box
   sequential structure under NR.  The wrapper really is a few lines.

   Run with:  dune exec examples/leaderboard.exe *)

open Nr_kvstore

let () =
  let topo = Nr_sim.Topology.tiny in
  let module R = (val Nr_runtime.Runtime_domains.make topo) in
  (* the paper's "20 lines of wrapper code" moment: *)
  let module Db = Nr_core.Node_replication.Make (R) (Store) in
  let db = Db.create (fun () -> Store.create ()) in
  let exec = Db.execute db in

  let players = 500 in
  let nthreads = 4 in
  let rounds = 2_000 in

  (* concurrent score updates (ZINCRBY) and rank queries (ZRANK): updates
     atomically maintain both the hash table and the skip list inside the
     sorted set — something per-structure lock-free algorithms cannot do *)
  Nr_runtime.Runtime_domains.parallel_run ~nthreads (fun tid ->
      let rng = Nr_workload.Prng.create ~seed:(tid * 17 + 3) in
      for _ = 1 to rounds do
        let player = Nr_workload.Prng.below rng players in
        let points = 1 + Nr_workload.Prng.below rng 10 in
        (match exec (Command.Zincrby ("scores", points, player)) with
        | Command.Int _ -> ()
        | r -> failwith (Format.asprintf "%a" Command.pp_reply r));
        match exec (Command.Zrank ("scores", player)) with
        | Command.Int _ | Command.Nil -> ()
        | r -> failwith (Format.asprintf "%a" Command.pp_reply r)
      done);

  Nr_runtime.Runtime_domains.register ~tid:0;
  (match exec (Command.Zcard "scores") with
  | Command.Int n -> Printf.printf "%d players on the board\n" n
  | _ -> assert false);
  print_endline "top 5 (member, score):";
  (match exec (Command.Zrange ("scores", -5, -1)) with
  | Command.Array items ->
      let rec pairs = function
        | Command.Int m :: Command.Int s :: rest ->
            Printf.printf "  player %-4d %d points\n" m s;
            pairs rest
        | [] -> ()
        | _ -> assert false
      in
      pairs (List.rev items |> List.rev)
  | _ -> assert false);
  (* every replica's sorted set is internally consistent *)
  Db.Unsafe.sync db;
  for node = 0 to Db.num_replicas db - 1 do
    match
      Store.execute (Db.Unsafe.replica db node) (Command.Zcard "scores")
    with
    | Command.Int n -> assert (n <= players && n > 0)
    | _ -> assert false
  done;
  print_endline "leaderboard OK"

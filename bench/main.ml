(* Benchmark entry point: regenerates every table and figure of the
   paper's evaluation (section 8) on the NUMA simulator, then runs one
   Bechamel micro-benchmark per figure family on the real-domains runtime.

     dune exec bench/main.exe                 # everything, default scale
     dune exec bench/main.exe -- fig5 fig7    # selected figures
     dune exec bench/main.exe -- --list
     NR_BENCH_SCALE=quick|default|paper       # effort knob *)

open Nr_harness

(* --- Bechamel micro-benchmarks: single-threaded latency of the kernel
   operation behind each figure family, on real domains. ------------- *)

let micro_tests () =
  let open Bechamel in
  let topo = Nr_sim.Topology.tiny in
  let rt = Nr_runtime.Runtime_domains.make topo in
  let module R = (val rt) in
  Nr_runtime.Runtime_domains.register ~tid:0;
  let rng = Nr_workload.Prng.create ~seed:42 in
  (* fig5: skip-list PQ op through NR *)
  let module Nr_pq = Nr_core.Node_replication.Make (R) (Nr_seqds.Skiplist_pq) in
  let nr_pq = Nr_pq.create (fun () -> Nr_seqds.Skiplist_pq.create ()) in
  let fig5 =
    Test.make ~name:"fig5-nr-skiplist-pq-op"
      (Staged.stage (fun () ->
           ignore
             (Nr_pq.execute nr_pq
                (Nr_seqds.Pq_ops.Insert (Nr_workload.Prng.below rng 100000, 1)));
           ignore (Nr_pq.execute nr_pq Nr_seqds.Pq_ops.Delete_min)))
  in
  (* fig6: pairing heap op through NR *)
  let module Nr_ph = Nr_core.Node_replication.Make (R) (Nr_seqds.Pairing_pq) in
  let nr_ph = Nr_ph.create (fun () -> Nr_seqds.Pairing_pq.create ()) in
  let fig6 =
    Test.make ~name:"fig6-nr-pairing-heap-op"
      (Staged.stage (fun () ->
           ignore
             (Nr_ph.execute nr_ph
                (Nr_seqds.Pq_ops.Insert (Nr_workload.Prng.below rng 100000, 1)));
           ignore (Nr_ph.execute nr_ph Nr_seqds.Pq_ops.Delete_min)))
  in
  (* fig7: dictionary lookup/insert through NR *)
  let module Nr_dict =
    Nr_core.Node_replication.Make (R) (Nr_seqds.Skiplist_dict)
  in
  let nr_dict = Nr_dict.create (fun () -> Nr_seqds.Skiplist_dict.create ()) in
  let fig7 =
    Test.make ~name:"fig7-nr-dict-op"
      (Staged.stage (fun () ->
           let k = Nr_workload.Prng.below rng 100000 in
           ignore (Nr_dict.execute nr_dict (Nr_seqds.Dict_ops.Insert (k, k)));
           ignore (Nr_dict.execute nr_dict (Nr_seqds.Dict_ops.Lookup k))))
  in
  (* fig8: lock-free stack push/pop *)
  let module Lf = Nr_baselines.Lf_stack.Make (R) in
  let lf_stack = Lf.create () in
  let fig8 =
    Test.make ~name:"fig8-treiber-push-pop"
      (Staged.stage (fun () ->
           Lf.push lf_stack 1;
           ignore (Lf.pop lf_stack)))
  in
  (* fig9/10: synthetic structure op *)
  let module Syn = Nr_seqds.Synthetic.Make (struct
    let n = 100_000
    let c = 8
  end) in
  let syn = Syn.create () in
  let fig9 =
    Test.make ~name:"fig9-synthetic-update"
      (Staged.stage (fun () ->
           ignore (Syn.execute syn (Syn.Update (Nr_workload.Prng.next rng)))))
  in
  (* fig11/12: sorted-set command through NR over the whole store *)
  let module Nr_store = Nr_core.Node_replication.Make (R) (Nr_kvstore.Store) in
  let nr_store =
    Nr_store.create (fun () ->
        let s = Nr_kvstore.Store.create () in
        for m = 0 to 999 do
          ignore
            (Nr_kvstore.Store.execute s (Nr_kvstore.Command.Zadd ("z", m, m)))
        done;
        s)
  in
  let fig11 =
    Test.make ~name:"fig11-nr-zincrby-zrank"
      (Staged.stage (fun () ->
           let m = Nr_workload.Prng.below rng 1000 in
           ignore
             (Nr_store.execute nr_store (Nr_kvstore.Command.Zincrby ("z", 1, m)));
           ignore (Nr_store.execute nr_store (Nr_kvstore.Command.Zrank ("z", m)))))
  in
  (* fig14: NR with flat combining disabled *)
  let module Nr_ab = Nr_core.Node_replication.Make (R) (Nr_seqds.Skiplist_pq) in
  let nr_ab =
    Nr_ab.create
      ~cfg:{ Nr_core.Config.default with flat_combining = false }
      (fun () -> Nr_seqds.Skiplist_pq.create ())
  in
  let fig14 =
    Test.make ~name:"fig14-nr-no-flat-combining-op"
      (Staged.stage (fun () ->
           ignore
             (Nr_ab.execute nr_ab
                (Nr_seqds.Pq_ops.Insert (Nr_workload.Prng.below rng 100000, 1)));
           ignore (Nr_ab.execute nr_ab Nr_seqds.Pq_ops.Delete_min)))
  in
  [ fig5; fig6; fig7; fig8; fig9; fig11; fig14 ]

let run_micro () =
  let open Bechamel in
  Format.printf "=== bechamel micro-benchmarks (1 thread, real domains) ===@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analysis = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> Format.printf "%-32s %12.1f ns/op@." name est
          | Some [] | None -> Format.printf "%-32s (no estimate)@." name)
        analysis)
    (micro_tests ());
  Format.printf "@."

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--list" args then begin
    List.iter
      (fun g -> Printf.printf "%-10s %s\n" g.Figures.id g.Figures.description)
      Figures.groups;
    exit 0
  end;
  let params = Params.of_env () in
  Format.printf "# Node Replication benchmark suite@.";
  Format.printf "# topology: %a@." Nr_sim.Topology.pp params.Params.topo;
  Format.printf
    "# scale: %d items, threads %s, %.0f us measure window (virtual time)@.@."
    params.Params.population
    (String.concat "," (List.map string_of_int params.Params.threads))
    params.Params.measure_us;
  let t0 = Unix.gettimeofday () in
  let wanted =
    List.filter (fun a -> a <> "--micro" && a <> "--no-micro") args
  in
  (match wanted with
  | [] -> Figures.run_all params
  | ids ->
      List.iter
        (fun id ->
          match Figures.find id with
          | Some g ->
              Format.printf "=== %s: %s ===@." g.Figures.id
                g.Figures.description;
              g.Figures.run params
          | None -> Printf.eprintf "unknown figure id %S (try --list)\n" id)
        ids);
  if not (List.mem "--no-micro" args) then run_micro ();
  Format.printf "# total wall time: %.1f s@." (Unix.gettimeofday () -. t0)

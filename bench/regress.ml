(* Perf-regression bench: a fixed deterministic sweep on the NUMA simulator
   (wall-clock timed) plus single-operation micro-benchmarks on real domains
   with allocation accounting.  Writes BENCH_nr.json at the invocation
   directory so every PR records its before/after numbers.

     dune exec bench/regress.exe              # default scale
     NR_BENCH_SCALE=quick|default|paper       # effort knob
     NR_BENCH_OUT=path.json                   # output location

   The sweep is fig5a-style (skip-list priority queue through NR, Intel
   preset, e=0) at three thread counts crossing the first node boundary,
   run at 0% and 100% updates so both the read path and the combiner/log
   path are timed.  Simulated throughput per point is deterministic — any
   change in [ops_per_us] means the simulation semantics moved, while
   [wall_ms] tracks how fast the simulator itself executes.  The domains
   micro-benchmarks report ns/op and minor-heap words/op of a combiner
   round trip, isolating NR's own allocation from the structure's. *)

open Nr_harness

type scale = {
  scale_name : string;
  population : int;
  warmup_us : float;
  measure_us : float;
  micro_iters : int;
}

let scale_of_env () =
  match Sys.getenv_opt "NR_BENCH_SCALE" with
  (* Populations are kept small relative to the measure window so that
     wall time is dominated by simulated hot-path execution, not by the
     (unmeasured, pure-OCaml) replica prepopulation in each point's
     setup — the bench gauges the machinery, not skip-list inserts. *)
  | Some "quick" ->
      {
        scale_name = "quick";
        population = 1_000;
        warmup_us = 5.0;
        measure_us = 40.0;
        micro_iters = 20_000;
      }
  | Some "paper" ->
      {
        scale_name = "paper";
        population = 20_000;
        warmup_us = 40.0;
        measure_us = 400.0;
        micro_iters = 200_000;
      }
  | Some "default" | None ->
      {
        scale_name = "default";
        population = 5_000;
        warmup_us = 20.0;
        measure_us = 150.0;
        micro_iters = 100_000;
      }
  | Some other ->
      Printf.eprintf
        "NR_BENCH_SCALE=%s not recognized (quick|default|paper); using \
         default scale\n\
         %!"
        other;
      {
        scale_name = "default";
        population = 5_000;
        warmup_us = 20.0;
        measure_us = 150.0;
        micro_iters = 100_000;
      }

(* Three points crossing the first node boundary of the Intel preset. *)
let threads_axis = [ 1; 28; 56 ]
let update_pcts = [ 0; 100 ]

let params_of scale =
  {
    Params.topo = Nr_sim.Topology.intel;
    threads = threads_axis;
    warmup_us = scale.warmup_us;
    measure_us = scale.measure_us;
    population = scale.population;
    seed = 0xA5A5;
    latency = false;
  }

type point = {
  update_pct : int;
  threads : int;
  total_ops : int;
  ops_per_us : float;
  remote_transfers : int;
}

let run_sweep scale =
  let params = params_of scale in
  let t0 = Unix.gettimeofday () in
  let points =
    List.concat_map
      (fun update_pct ->
        List.map
          (fun threads ->
            let r =
              Driver.run_sim ~topo:params.Params.topo ~threads
                ~warmup_us:params.Params.warmup_us
                ~measure_us:params.Params.measure_us
                (Exp_pq.Sl_exp.setup_black_box params Method.NR ~update_pct
                   ~e:0 ~threads)
            in
            {
              update_pct;
              threads;
              total_ops = r.Driver.total_ops;
              ops_per_us = r.Driver.ops_per_us;
              remote_transfers = r.Driver.remote_transfers;
            })
          params.Params.threads)
      update_pcts
  in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  (wall_ms, points)

(* --- optimistic-read sweep ----------------------------------------- *)

(* The CNA/optimistic-read PR's headline claim, pinned: the fig5a-style
   pure-read workload with the seqlock read path on must beat the same
   workload with it off at every multi-threaded point (readers skip the
   rwlock slot acquire/release), and cna+opt must not regress it. *)

type read_point = {
  rp_label : string;
  rp_threads : int;
  rp_total_ops : int;
  rp_ops_per_us : float;
}

let read_cfgs =
  [
    ("opt-off", Nr_core.Config.default);
    ( "opt-on",
      {
        Nr_core.Config.default with
        optimistic_reads = true;
        read_patience = Some 4;
      } );
    ( "cna+opt",
      {
        Nr_core.Config.default with
        optimistic_reads = true;
        read_patience = Some 4;
        cna_lock = true;
      } );
  ]

let run_read_sweep scale =
  let params = params_of scale in
  let t0 = Unix.gettimeofday () in
  let points =
    List.concat_map
      (fun (label, cfg) ->
        List.map
          (fun threads ->
            let setup rt =
              let exec =
                Exp_pq.Sl_exp.W.build rt Method.NR ~cfg ~threads
                  ~factory:(Exp_pq.Sl_exp.factory params) ()
              in
              Exp_pq.Sl_exp.body params ~update_pct:0 ~e:0 ~exec rt
            in
            let r =
              Driver.run_sim ~topo:params.Params.topo ~threads
                ~warmup_us:params.Params.warmup_us
                ~measure_us:params.Params.measure_us setup
            in
            {
              rp_label = label;
              rp_threads = threads;
              rp_total_ops = r.Driver.total_ops;
              rp_ops_per_us = r.Driver.ops_per_us;
            })
          [ 28; 56 ])
      read_cfgs
  in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  (wall_ms, points)

(* --- sharded update-heavy point ------------------------------------ *)

(* The sharding PR's headline claim, pinned: 100%-update uniform KV at the
   two-node thread count, plain NR vs S in {1,4}.  S=1 must match plain
   NR's op count exactly (passthrough), and S=4's throughput jumping means
   the per-shard logs are really independent. *)

type shard_point = {
  label : string;
  sp_threads : int;
  sp_total_ops : int;
  sp_ops_per_us : float;
}

let run_shard_sweep scale =
  let params = params_of scale in
  let threads = 56 in
  let t0 = Unix.gettimeofday () in
  let run ~label setup =
    let r =
      Driver.run_sim ~topo:params.Params.topo ~threads
        ~warmup_us:params.Params.warmup_us ~measure_us:params.Params.measure_us
        setup
    in
    {
      label;
      sp_threads = threads;
      sp_total_ops = r.Driver.total_ops;
      sp_ops_per_us = r.Driver.ops_per_us;
    }
  in
  let points =
    run ~label:"NR"
      (Exp_shard.setup_plain params ~multi_pct:0 ~update_pct:100 ~threads)
    :: List.map
         (fun shards ->
           run
             ~label:(Printf.sprintf "S=%d" shards)
             (Exp_shard.setup_sharded params ~shards ~multi_pct:0
                ~update_pct:100 ~threads))
         [ 1; 4 ]
  in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  (wall_ms, points)

(* --- durability sweep ---------------------------------------------- *)

(* The persistence layer priced hermetically: a fixed mixed op stream
   logged through the persister over the in-memory Sim_fs (no real IO, no
   temp files), one point per fsync policy.  [fsyncs] is fully
   deterministic — any drift means the group-commit semantics moved — and
   [ops_per_us] tracks the CPU cost of framing + CRC + shadow replay. *)

type durable_point = {
  dp_policy : string;
  dp_ops : int;
  dp_fsyncs : int;
  dp_ops_per_us : float;
}

let durable_policies =
  [
    Nr_persist.Aof.Always;
    Nr_persist.Aof.Every_n 8;
    Nr_persist.Aof.Every_n 64;
    Nr_persist.Aof.Never;
  ]

let run_durable_sweep scale =
  let n = max 1_000 (scale.micro_iters / 4) in
  let op i =
    if i mod 4 = 0 then
      Nr_kvstore.Command.Zadd ("z" ^ string_of_int (i mod 64), i mod 1000, i)
    else Nr_kvstore.Command.Set ("k" ^ string_of_int (i mod 512), string_of_int i)
  in
  let t0 = Unix.gettimeofday () in
  let points =
    List.map
      (fun policy ->
        let sim = Nr_persist.Sim_fs.create () in
        let fs = Nr_persist.Sim_fs.fs sim in
        (* virtual clock: one ms per append keeps every-ms policies
           deterministic too, should the axis ever grow one *)
        let clock = ref 0 in
        let now_ms () = !clock in
        match Nr_persist.Persister.create fs ~policy ~now_ms () with
        | Error e -> failwith e
        | Ok (p, _) ->
            let t0 = Unix.gettimeofday () in
            for i = 0 to n - 1 do
              incr clock;
              Nr_persist.Persister.observe p [ Some (op i) ]
            done;
            let dt_us = (Unix.gettimeofday () -. t0) *. 1e6 in
            let fsyncs = Nr_persist.Persister.fsyncs p in
            Nr_persist.Persister.close p;
            {
              dp_policy = Format.asprintf "%a" Nr_persist.Aof.pp_policy policy;
              dp_ops = n;
              dp_fsyncs = fsyncs;
              dp_ops_per_us = float_of_int n /. dt_us;
            })
      durable_policies
  in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  (wall_ms, points)

(* --- server front-end sweep ---------------------------------------- *)

(* The network PR's headline claim, pinned on real TCP: the evloop front
   end sustains several times more live concurrent connections than the
   pool (which fundamentally holds [workers] at a time — every other
   accepted connection waits behind them), at comparable single-client
   tail latency.

   Capacity phase: open C connections and hold every one open, send one
   PING per connection, count replies within a deadline.  The pool
   serves exactly [workers]; the evloop serves all C.  Latency phase:
   one blocking client, K sequential PINGs, RTT percentiles.  Both
   phases run against each serving mode on the same executor. *)

type server_point = {
  sv_mode : string;
  sv_workers : int;
  sv_conns_attempted : int;
  sv_conns_sustained : int;
  sv_pings : int;
  sv_p50_us : float;
  sv_p99_us : float;
}

let run_server_mode ~net ~mode_name ~conns ~pings ~workers =
  let store = Nr_kvstore.Store.create () in
  let m = Mutex.create () in
  let exec cmd =
    Mutex.lock m;
    let r = Nr_kvstore.Store.execute store cmd in
    Mutex.unlock m;
    r
  in
  let server = Nr_kvstore.Server.create ~net ~port:0 ~workers exec in
  let port = Nr_kvstore.Server.port server in
  let serve_thread = Thread.create (fun () -> Nr_kvstore.Server.serve server) () in
  Thread.delay 0.05;
  let connect () =
    let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    s
  in
  let ping = Bytes.of_string "PING\r\n" in
  (* capacity: every connection stays open while each sends one PING *)
  let socks = Array.init conns (fun _ -> connect ()) in
  Array.iter
    (fun s ->
      Unix.set_nonblock s;
      try ignore (Unix.write s ping 0 6) with Unix.Unix_error _ -> ())
    socks;
  let served = Array.make conns false in
  let got = Array.make conns 0 in
  let buf = Bytes.create 16 in
  let deadline = Unix.gettimeofday () +. 3.0 in
  let remaining = ref conns in
  while !remaining > 0 && Unix.gettimeofday () < deadline do
    let progressed = ref false in
    Array.iteri
      (fun i s ->
        if not served.(i) then
          match Unix.read s buf 0 (7 - got.(i)) with
          | 0 -> served.(i) <- true (* closed on us: not sustained *)
          | k ->
              got.(i) <- got.(i) + k;
              progressed := true;
              if got.(i) >= 7 then begin
                served.(i) <- true;
                decr remaining
              end
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
              ()
          | exception Unix.Unix_error _ -> served.(i) <- true)
      socks;
    if not !progressed then Thread.delay 0.01
  done;
  let sustained = conns - !remaining in
  Array.iter (fun s -> try Unix.close s with Unix.Unix_error _ -> ()) socks;
  Thread.delay 0.05;
  (* latency: one quiet blocking client, K sequential round trips; the
     warmup absorbs one-time costs (accept, fiber spawn, first-touch).
     A single p99 draw on a shared machine swings 2-3x (scheduler and GC
     spikes land on different samples each run), so take the best of
     three trials per mode — the noise-floor estimate both modes are
     judged by equally. *)
  let latency_trial () =
    let s = connect () in
    let rtts = Array.make pings 0.0 in
    let rbuf = Bytes.create 16 in
    let round () =
      ignore (Unix.write s ping 0 6);
      let n = ref 0 in
      while !n < 7 do
        let k = Unix.read s rbuf !n (7 - !n) in
        if k = 0 then failwith "server closed mid-ping";
        n := !n + k
      done
    in
    for _ = 1 to max 20 (pings / 10) do
      round ()
    done;
    for i = 0 to pings - 1 do
      let t0 = Nr_obs.Clock.now_ns () in
      round ();
      rtts.(i) <- float_of_int (Nr_obs.Clock.elapsed_ns ~since:t0) /. 1e3
    done;
    Unix.close s;
    Array.sort compare rtts;
    let pct p =
      rtts.(min (pings - 1) (int_of_float (p *. float_of_int pings)))
    in
    (pct 0.50, pct 0.99)
  in
  let p50, p99 =
    let best = ref (latency_trial ()) in
    for _ = 2 to 3 do
      let t = latency_trial () in
      if snd t < snd !best then best := t
    done;
    !best
  in
  Nr_kvstore.Server.shutdown server;
  Thread.join serve_thread;
  {
    sv_mode = mode_name;
    sv_workers = workers;
    sv_conns_attempted = conns;
    sv_conns_sustained = sustained;
    sv_pings = pings;
    sv_p50_us = p50;
    sv_p99_us = p99;
  }

(* Open-loop phase: arrivals are clock-driven, not reply-driven.  A
   closed-loop client (like the latency phase above) can never overload
   the server — it waits for each reply before sending again, so measured
   throughput saturates at capacity and says nothing about behavior past
   it.  Here requests arrive at a fixed offered rate across a handful of
   pipelined connections regardless of how fast replies come back; when
   the server falls behind, TCP backpressure pushes EAGAIN into the
   sender and those arrivals are counted as shed.  Goodput is replies
   completed within the measurement window — the number that should stay
   near capacity (not collapse) when offered load exceeds it. *)

type open_point = {
  ol_mode : string;
  ol_rate : int;  (** offered arrivals per second *)
  ol_offered : int;
  ol_sent : int;
  ol_replies : int;
  ol_goodput_per_s : float;
}

let run_open_loop ~net ~mode_name ~rate ~duration_s ~conns ~workers =
  let store = Nr_kvstore.Store.create () in
  let m = Mutex.create () in
  let exec cmd =
    Mutex.lock m;
    let r = Nr_kvstore.Store.execute store cmd in
    Mutex.unlock m;
    r
  in
  let server = Nr_kvstore.Server.create ~net ~port:0 ~workers exec in
  let port = Nr_kvstore.Server.port server in
  let serve_thread =
    Thread.create (fun () -> Nr_kvstore.Server.serve server) ()
  in
  Thread.delay 0.05;
  let socks =
    Array.init conns (fun _ ->
        let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.set_nonblock s;
        s)
  in
  let ping = "PING\r\n" in
  let plen = String.length ping in
  (* replies are uniform "+PONG\r\n": counting is byte arithmetic *)
  let rlen = 7 in
  let reply_bytes = Array.make conns 0 in
  let rbuf = Bytes.create 65536 in
  let drain i =
    let rec go () =
      match Unix.read socks.(i) rbuf 0 (Bytes.length rbuf) with
      | 0 -> ()
      | k ->
          reply_bytes.(i) <- reply_bytes.(i) + k;
          go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
    in
    go ()
  in
  let offered = ref 0 and sent = ref 0 in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. duration_s in
  let next = ref 0 in
  let now = ref t0 in
  while !now < deadline do
    (* arrivals owed by the clock, delivered in bounded bursts *)
    let due =
      let target = int_of_float ((!now -. t0) *. float_of_int rate) in
      min (target - !offered) 256
    in
    if due > 0 then begin
      offered := !offered + due;
      let batch = Bytes.of_string (String.concat "" (List.init due (fun _ -> ping))) in
      let i = !next in
      next := (!next + 1) mod conns;
      (match Unix.write socks.(i) batch 0 (Bytes.length batch) with
      | k -> sent := !sent + (k / plen)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          (* the pipe is full: this burst is shed, not queued *)
          ())
    end;
    for i = 0 to conns - 1 do
      drain i
    done;
    if due <= 0 then Thread.delay 0.0002;
    now := Unix.gettimeofday ()
  done;
  (* short grace: replies to requests sent inside the window still count *)
  let grace = Unix.gettimeofday () +. 0.2 in
  while Unix.gettimeofday () < grace do
    for i = 0 to conns - 1 do
      drain i
    done;
    Thread.delay 0.002
  done;
  Array.iter (fun s -> try Unix.close s with Unix.Unix_error _ -> ()) socks;
  Nr_kvstore.Server.shutdown server;
  Thread.join serve_thread;
  let replies = Array.fold_left (fun a b -> a + (b / rlen)) 0 reply_bytes in
  {
    ol_mode = mode_name;
    ol_rate = rate;
    ol_offered = !offered;
    ol_sent = !sent;
    ol_replies = replies;
    ol_goodput_per_s = float_of_int replies /. duration_s;
  }

let run_server_sweep scale =
  (* connection counts sized to the poller: the select fallback caps the
     loop below FD_SETSIZE *)
  let backend =
    let p = Nr_net.Poller.create () in
    let b = Nr_net.Poller.backend p in
    Nr_net.Poller.close p;
    b
  in
  let conns =
    match (backend, scale.scale_name) with
    | Nr_net.Poller.Select, _ -> 128
    | Nr_net.Poller.Epoll, "quick" -> 128
    | Nr_net.Poller.Epoll, _ -> 512
  in
  let pings = max 100 (scale.micro_iters / 500) in
  let workers = 4 in
  let t0 = Unix.gettimeofday () in
  let points =
    [
      run_server_mode ~net:Nr_kvstore.Server.Pool ~mode_name:"pool" ~conns
        ~pings ~workers;
      run_server_mode ~net:Nr_kvstore.Server.Evloop ~mode_name:"evloop" ~conns
        ~pings ~workers;
    ]
  in
  (* overload point: offer well past single-mutex-store capacity and see
     what each front end actually completes *)
  let rate, duration_s =
    if scale.scale_name = "quick" then (100_000, 0.4) else (250_000, 0.8)
  in
  let open_points =
    [
      run_open_loop ~net:Nr_kvstore.Server.Pool ~mode_name:"pool" ~rate
        ~duration_s ~conns:4 ~workers;
      run_open_loop ~net:Nr_kvstore.Server.Evloop ~mode_name:"evloop" ~rate
        ~duration_s ~conns:4 ~workers;
    ]
  in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  (wall_ms, points, open_points)

(* --- domains micro-benchmarks ------------------------------------- *)

(* A counter whose operations carry no payload: the words/op measured on
   it are NR's own combiner/log overhead plus the option boxes at the
   slot API, with no structure allocation mixed in. *)
module Counter = struct
  type t = { mutable v : int }
  type op = Incr | Get
  type result = int

  let create () = { v = 0 }

  let execute t = function
    | Incr ->
        t.v <- t.v + 1;
        t.v
    | Get -> t.v

  let is_read_only = function Get -> true | Incr -> false
  let footprint _ _ = Nr_runtime.Footprint.v ~key:0 ~reads:1 ()
  let lines _ = 4
  let pp_op ppf _ = Format.pp_print_string ppf "op"
end

type micro = { name : string; ns_per_op : float; minor_words_per_op : float }

let time_micro ~name ~iters body =
  for _ = 1 to max 1 (iters / 10) do
    body ()
  done;
  let w0 = Gc.minor_words () in
  let t0 = Nr_obs.Clock.now_ns () in
  for _ = 1 to iters do
    body ()
  done;
  let dt = Nr_obs.Clock.elapsed_ns ~since:t0 in
  let dw = Gc.minor_words () -. w0 in
  {
    name;
    ns_per_op = float_of_int dt /. float_of_int iters;
    minor_words_per_op = dw /. float_of_int iters;
  }

let run_micros scale =
  let topo = Nr_sim.Topology.tiny in
  let rt = Nr_runtime.Runtime_domains.make topo in
  let module R = (val rt) in
  Nr_runtime.Runtime_domains.register ~tid:0;
  let module Nr_ctr = Nr_core.Node_replication.Make (R) (Counter) in
  let ctr = Nr_ctr.create (fun () -> Counter.create ()) in
  let m1 =
    time_micro ~name:"nr-counter-update" ~iters:scale.micro_iters (fun () ->
        ignore (Nr_ctr.execute ctr Counter.Incr))
  in
  let m2 =
    time_micro ~name:"nr-counter-read" ~iters:scale.micro_iters (fun () ->
        ignore (Nr_ctr.execute ctr Counter.Get))
  in
  let module Nr_pq = Nr_core.Node_replication.Make (R) (Nr_seqds.Skiplist_pq) in
  let nr_pq = Nr_pq.create (fun () -> Nr_seqds.Skiplist_pq.create ()) in
  let rng = Nr_workload.Prng.create ~seed:42 in
  let m3 =
    time_micro ~name:"nr-skiplist-pq-pair" ~iters:(scale.micro_iters / 4)
      (fun () ->
        ignore
          (Nr_pq.execute nr_pq
             (Nr_seqds.Pq_ops.Insert (Nr_workload.Prng.below rng 100_000, 1)));
        ignore (Nr_pq.execute nr_pq Nr_seqds.Pq_ops.Delete_min))
  in
  [ m1; m2; m3 ]

(* --- JSON emission (hand-rolled; the repo has no JSON dependency) -- *)

(* One level of history: if the output file already holds a previous run,
   embed it (minus its own [previous]) so a single file shows the
   before/after of the latest change.  The marker is stable because this
   program always writes [previous] last. *)
let strip_previous s =
  let marker = ",\n  \"previous\":" in
  let mlen = String.length marker in
  let n = String.length s in
  let rec find i =
    if i + mlen > n then None
    else if String.sub s i mlen = marker then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i -> String.trim (String.sub s 0 i) ^ "\n}"
  | None -> String.trim s

let read_file path =
  if Sys.file_exists path then (
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Some s)
  else None

let emit ~out ~scale ~wall_ms ~points ~read_wall_ms ~read_points
    ~shard_wall_ms ~shard_points ~durable_wall_ms ~durable_points
    ~server_wall_ms ~server_points ~open_points ~micros =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"nr-regress/6\",\n";
  add "  \"scale\": %S,\n" scale.scale_name;
  add "  \"sim_sweep\": {\n";
  add
    "    \"workload\": \"fig5a-style skip-list PQ via NR, Intel preset, \
     e=0, update_pct in {0,100}\",\n";
  add "    \"seed\": %d,\n" (params_of scale).Params.seed;
  add "    \"wall_ms\": %.1f,\n" wall_ms;
  add "    \"points\": [\n";
  List.iteri
    (fun i p ->
      add
        "      {\"update_pct\": %d, \"threads\": %d, \"total_ops\": %d, \
         \"ops_per_us\": %.4f, \"remote_transfers\": %d}%s\n"
        p.update_pct p.threads p.total_ops p.ops_per_us p.remote_transfers
        (if i = List.length points - 1 then "" else ","))
    points;
  add "    ]\n";
  add "  },\n";
  add "  \"read_sweep\": {\n";
  add
    "    \"workload\": \"fig5a-style skip-list PQ, 0%% updates, Intel \
     preset, seqlock read path off/on and with the CNA lock\",\n";
  add "    \"wall_ms\": %.1f,\n" read_wall_ms;
  add "    \"points\": [\n";
  List.iteri
    (fun i p ->
      add
        "      {\"series\": %S, \"threads\": %d, \"total_ops\": %d, \
         \"ops_per_us\": %.4f}%s\n"
        p.rp_label p.rp_threads p.rp_total_ops p.rp_ops_per_us
        (if i = List.length read_points - 1 then "" else ","))
    read_points;
  add "    ]\n";
  add "  },\n";
  add "  \"shard_sweep\": {\n";
  add
    "    \"workload\": \"100%% updates, uniform KV, Intel preset, plain NR \
     vs sharded S in {1,4}\",\n";
  add "    \"wall_ms\": %.1f,\n" shard_wall_ms;
  add "    \"points\": [\n";
  List.iteri
    (fun i p ->
      add
        "      {\"series\": %S, \"threads\": %d, \"total_ops\": %d, \
         \"ops_per_us\": %.4f}%s\n"
        p.label p.sp_threads p.sp_total_ops p.sp_ops_per_us
        (if i = List.length shard_points - 1 then "" else ","))
    shard_points;
  add "    ]\n";
  add "  },\n";
  add "  \"durable_sweep\": {\n";
  add
    "    \"workload\": \"mixed SET/ZADD stream through the persister over \
     Sim_fs, one point per fsync policy\",\n";
  add "    \"wall_ms\": %.1f,\n" durable_wall_ms;
  add "    \"points\": [\n";
  List.iteri
    (fun i p ->
      add
        "      {\"policy\": %S, \"ops\": %d, \"fsyncs\": %d, \"ops_per_us\": \
         %.4f}%s\n"
        p.dp_policy p.dp_ops p.dp_fsyncs p.dp_ops_per_us
        (if i = List.length durable_points - 1 then "" else ","))
    durable_points;
  add "    ]\n";
  add "  },\n";
  add "  \"server_sweep\": {\n";
  add
    "    \"workload\": \"real-TCP PING front end: capacity (connections \
     held open, one PING each, replies within deadline) and single-client \
     RTT percentiles, pool vs evloop\",\n";
  add "    \"wall_ms\": %.1f,\n" server_wall_ms;
  add "    \"points\": [\n";
  List.iteri
    (fun i p ->
      add
        "      {\"mode\": %S, \"workers\": %d, \"conns_attempted\": %d, \
         \"conns_sustained\": %d, \"pings\": %d, \"p50_us\": %.1f, \
         \"p99_us\": %.1f}%s\n"
        p.sv_mode p.sv_workers p.sv_conns_attempted p.sv_conns_sustained
        p.sv_pings p.sv_p50_us p.sv_p99_us
        (if i = List.length server_points - 1 then "" else ","))
    server_points;
  add "    ],\n";
  add
    "    \"open_loop\": [\n";
  List.iteri
    (fun i p ->
      add
        "      {\"mode\": %S, \"offered_per_s\": %d, \"offered\": %d, \
         \"sent\": %d, \"replies\": %d, \"goodput_per_s\": %.0f}%s\n"
        p.ol_mode p.ol_rate p.ol_offered p.ol_sent p.ol_replies
        p.ol_goodput_per_s
        (if i = List.length open_points - 1 then "" else ","))
    open_points;
  add "    ]\n";
  add "  },\n";
  add "  \"domains_micro\": [\n";
  List.iteri
    (fun i m ->
      add
        "    {\"name\": %S, \"ns_per_op\": %.1f, \"minor_words_per_op\": \
         %.2f}%s\n"
        m.name m.ns_per_op m.minor_words_per_op
        (if i = List.length micros - 1 then "" else ","))
    micros;
  add "  ]";
  (match read_file out with
  | Some old ->
      add ",\n  \"previous\": ";
      (* indent is cosmetic; embed the stripped object verbatim *)
      add "%s" (strip_previous old);
      add "\n"
  | None -> add "\n");
  add "}\n";
  let oc = open_out_bin out in
  output_string oc (Buffer.contents buf);
  close_out oc

let () =
  let scale = scale_of_env () in
  let out =
    match Sys.getenv_opt "NR_BENCH_OUT" with
    | Some p -> p
    | None -> "BENCH_nr.json"
  in
  Format.printf "# NR perf-regression bench (scale %s)@." scale.scale_name;
  let wall_ms, points = run_sweep scale in
  Format.printf "sim sweep: %.1f ms wall@." wall_ms;
  List.iter
    (fun p ->
      Format.printf "  upd=%3d%% threads=%3d  %8.4f ops/us  (%d ops)@."
        p.update_pct p.threads p.ops_per_us p.total_ops)
    points;
  let read_wall_ms, read_points = run_read_sweep scale in
  Format.printf "read sweep: %.1f ms wall@." read_wall_ms;
  List.iter
    (fun p ->
      Format.printf "  %-8s threads=%3d  %8.4f ops/us  (%d ops)@." p.rp_label
        p.rp_threads p.rp_ops_per_us p.rp_total_ops)
    read_points;
  let shard_wall_ms, shard_points = run_shard_sweep scale in
  Format.printf "shard sweep: %.1f ms wall@." shard_wall_ms;
  List.iter
    (fun p ->
      Format.printf "  %-5s threads=%3d  %8.4f ops/us  (%d ops)@." p.label
        p.sp_threads p.sp_ops_per_us p.sp_total_ops)
    shard_points;
  let durable_wall_ms, durable_points = run_durable_sweep scale in
  Format.printf "durable sweep: %.1f ms wall@." durable_wall_ms;
  List.iter
    (fun p ->
      Format.printf "  %-12s %8.4f ops/us  (%d ops, %d fsyncs)@." p.dp_policy
        p.dp_ops_per_us p.dp_ops p.dp_fsyncs)
    durable_points;
  let server_wall_ms, server_points, open_points = run_server_sweep scale in
  Format.printf "server sweep: %.1f ms wall@." server_wall_ms;
  List.iter
    (fun p ->
      Format.printf
        "  %-7s workers=%d  sustained %d/%d conns  p50 %.1f us  p99 %.1f us@."
        p.sv_mode p.sv_workers p.sv_conns_sustained p.sv_conns_attempted
        p.sv_p50_us p.sv_p99_us)
    server_points;
  List.iter
    (fun p ->
      Format.printf
        "  %-7s open-loop @%d/s  offered %d  sent %d  replies %d  goodput \
         %.0f/s@."
        p.ol_mode p.ol_rate p.ol_offered p.ol_sent p.ol_replies
        p.ol_goodput_per_s)
    open_points;
  let micros = run_micros scale in
  List.iter
    (fun m ->
      Format.printf "  %-22s %8.1f ns/op  %8.2f minor words/op@." m.name
        m.ns_per_op m.minor_words_per_op)
    micros;
  emit ~out ~scale ~wall_ms ~points ~read_wall_ms ~read_points ~shard_wall_ms
    ~shard_points ~durable_wall_ms ~durable_points ~server_wall_ms
    ~server_points ~open_points ~micros;
  Format.printf "wrote %s@." out

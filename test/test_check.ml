(* Linearizability checker tests: WGL verdicts on handcrafted histories,
   schedule-explorer sweeps over every substrate × engine, and the
   mutation-catch guarantee — a seeded NR bug must produce a violation
   with a byte-identical replay. *)

module H = Nr_check.History
module Spec = Nr_check.Spec
module E = Nr_check.Explore
module So = Nr_seqds.Stack_ops
module Do = Nr_seqds.Dict_ops
module Po = Nr_seqds.Pq_ops

let ev tid op inv ret res = { H.tid; op; inv; res; ret }
let pending tid op inv = { H.tid; op; inv; res = None; ret = max_int }

module Stack_check = Nr_check.Wgl.Make (Spec.Stack)
module Queue_check = Nr_check.Wgl.Make (Spec.Queue)
module Dict_check = Nr_check.Wgl.Make (Spec.Dict_key)
module Pq_check = Nr_check.Wgl.Make (Spec.Pq)

let stack_verdict evs = Stack_check.check (Array.of_list evs)

let is_lin = function Stack_check.Linearizable -> true | _ -> false

(* --- WGL on handcrafted histories --- *)

let test_wgl_concurrent_ok () =
  (* pop overlaps push(1): popping 1 is explained by push-first order *)
  let h =
    [
      ev 0 (So.Push 1) 0 10 (Some So.Pushed);
      ev 1 So.Pop 5 15 (Some (So.Popped (Some 1)));
    ]
  in
  Alcotest.(check bool) "overlapping ok" true (is_lin (stack_verdict h))

let test_wgl_real_time_violation () =
  (* the pop RETURNED before push(1) was even invoked: no legal order *)
  let h =
    [
      ev 1 So.Pop 0 5 (Some (So.Popped (Some 1)));
      ev 0 (So.Push 1) 10 20 (Some So.Pushed);
    ]
  in
  match stack_verdict h with
  | Stack_check.Violation m ->
      (* the minimizer drops the push: a pop returning 1 with no push
         anywhere is already inexplicable on its own *)
      Alcotest.(check int) "shrunk to the lone pop" 1 (Array.length m)
  | _ -> Alcotest.fail "expected a violation"

let test_wgl_duplicate_pop_violation () =
  (* one push, two non-overlapping pops both claiming its value *)
  let h =
    [
      ev 0 (So.Push 1) 0 5 (Some So.Pushed);
      ev 1 So.Pop 10 15 (Some (So.Popped (Some 1)));
      ev 2 So.Pop 20 25 (Some (So.Popped (Some 1)));
    ]
  in
  (match stack_verdict h with
  | Stack_check.Violation m ->
      (* the first pop is droppable: pop->Some 1 then pop->Some 1 again
         is already inexplicable with a single push *)
      Alcotest.(check bool) "minimized" true (Array.length m <= 3)
  | _ -> Alcotest.fail "expected a violation");
  (* same history with distinct pop results is fine *)
  let ok =
    [
      ev 0 (So.Push 1) 0 5 (Some So.Pushed);
      ev 1 So.Pop 10 15 (Some (So.Popped (Some 1)));
      ev 2 So.Pop 20 25 (Some (So.Popped None));
    ]
  in
  Alcotest.(check bool) "distinct results ok" true (is_lin (stack_verdict ok))

let test_wgl_pending_linearized () =
  (* the push never returned (thread died), yet its effect is visible:
     the checker must be willing to linearize the pending op *)
  let h =
    [
      pending 0 (So.Push 7) 0;
      ev 1 So.Pop 100 110 (Some (So.Popped (Some 7)));
    ]
  in
  Alcotest.(check bool) "pending effect visible" true (is_lin (stack_verdict h))

let test_wgl_pending_dropped () =
  (* ...and equally willing to drop it entirely *)
  let h =
    [
      pending 0 (So.Push 7) 0;
      ev 1 So.Pop 100 110 (Some (So.Popped None));
    ]
  in
  Alcotest.(check bool) "pending effect absent" true (is_lin (stack_verdict h))

let test_wgl_queue_fifo () =
  let module Qo = Nr_seqds.Queue_ops in
  let lin evs =
    match Queue_check.check (Array.of_list evs) with
    | Queue_check.Linearizable -> true
    | _ -> false
  in
  (* sequential enq 1, enq 2: dequeue must respect FIFO *)
  let base v1 =
    [
      ev 0 (Qo.Enqueue 1) 0 5 (Some Qo.Enqueued);
      ev 0 (Qo.Enqueue 2) 10 15 (Some Qo.Enqueued);
      ev 1 Qo.Dequeue 20 25 (Some (Qo.Dequeued (Some v1)));
    ]
  in
  Alcotest.(check bool) "fifo ok" true (lin (base 1));
  Alcotest.(check bool) "lifo rejected" false (lin (base 2))

let test_wgl_dict_stale_read () =
  let lin evs =
    match Dict_check.check (Array.of_list evs) with
    | Dict_check.Linearizable -> true
    | _ -> false
  in
  let h =
    [
      ev 0 (Do.Insert (1, 1)) 0 5 (Some (Do.Added true));
      ev 1 (Do.Lookup 1) 10 15 (Some (Do.Found None));
    ]
  in
  Alcotest.(check bool) "stale read rejected" false (lin h);
  let ok =
    [
      ev 0 (Do.Insert (1, 1)) 0 5 (Some (Do.Added true));
      ev 1 (Do.Lookup 1) 10 15 (Some (Do.Found (Some 1)));
    ]
  in
  Alcotest.(check bool) "fresh read ok" true (lin ok)

let test_wgl_pq_min_ties () =
  let lin evs =
    match Pq_check.check (Array.of_list evs) with
    | Pq_check.Linearizable -> true
    | _ -> false
  in
  (* two pairs share the minimal key: either may come out first *)
  let h last =
    [
      ev 0 (Po.Insert (1, 10)) 0 5 (Some (Po.Inserted true));
      ev 0 (Po.Insert (1, 20)) 10 15 (Some (Po.Inserted true));
      ev 1 Po.Delete_min 20 25 (Some (Po.Removed (Some (1, 20))));
      ev 1 Po.Delete_min 30 35 (Some (Po.Removed (Some (1, last))));
    ]
  in
  Alcotest.(check bool) "either tie order ok" true (lin (h 10));
  Alcotest.(check bool) "but not a duplicate" false (lin (h 20))

(* --- explorer sweeps (quick scale) --- *)

let quick_sweep (sweep : ?budget:int -> topo:string -> threads:int ->
    seeds:int list -> salts:int list -> plans:string list ->
    ops_per_thread:int -> key_space:int -> engines:E.engine list ->
    mutation:bool -> unit -> E.sweep_result) ~engines ~plans ~ops () =
  sweep ~budget:2_000_000 ~topo:"tiny" ~threads:4 ~seeds:[ 1; 2 ]
    ~salts:[ 0; 21 ] ~plans ~ops_per_thread:ops ~key_space:4 ~engines
    ~mutation:false ()

let check_clean name (sr : E.sweep_result) =
  (match sr.E.counterexample with
  | Some cx -> Alcotest.failf "%s: %s" name (E.replay_command cx)
  | None -> ());
  Alcotest.(check bool) (name ^ ": ran") true (sr.E.checked > 0)

let test_explore_black_box () =
  let engines = [ E.Nr; E.Nr_robust; E.Fc; E.Fcplus; E.Rwl; E.Sl ] in
  let plans = [ "none"; "jitter:1"; "stall:1"; "preempt:1" ] in
  check_clean "stack"
    (quick_sweep E.Run_stack.sweep ~engines ~plans ~ops:5 ());
  check_clean "queue"
    (quick_sweep E.Run_queue.sweep ~engines ~plans ~ops:5 ());
  check_clean "dict" (quick_sweep E.Run_dict.sweep ~engines ~plans ~ops:5 ());
  check_clean "pq" (quick_sweep E.Run_pq.sweep ~engines ~plans ~ops:5 ())

let test_explore_lock_free () =
  let plans = [ "none"; "jitter:1"; "preempt:1" ] in
  check_clean "stack lf/na"
    (quick_sweep E.Run_stack.sweep ~engines:[ E.Lf; E.Na ] ~plans ~ops:5 ());
  check_clean "dict lf"
    (quick_sweep E.Run_dict.sweep ~engines:[ E.Lf ] ~plans ~ops:5 ());
  (* substrates without a lock-free baseline are skipped, not failed *)
  let sr = quick_sweep E.Run_queue.sweep ~engines:[ E.Lf ] ~plans ~ops:5 () in
  Alcotest.(check int) "queue has no LF baseline" 0 sr.E.checked

let test_explore_robust_faults () =
  (* steals and deaths actually fire, and histories stay linearizable *)
  let sweep ~plans =
    E.Run_dict.sweep ~budget:2_000_000 ~topo:"tiny" ~threads:4
      ~seeds:[ 1; 2; 3; 4; 5 ] ~salts:[ 0; 21 ] ~plans ~ops_per_thread:25
      ~key_space:4 ~engines:[ E.Nr_robust ] ~mutation:false ()
  in
  let sr = sweep ~plans:[ "steal:1"; "death:1" ] in
  check_clean "robust under steal/death plans" sr;
  Alcotest.(check bool) "deaths injected" true (sr.E.kills > 0);
  Alcotest.(check bool) "steals or kills exercised" true
    (sr.E.steals + sr.E.kills > 0)

let mutation_sweep () =
  E.Run_dict.sweep ~budget:2_000_000 ~topo:"tiny" ~threads:4
    ~seeds:[ 1; 2; 3; 4; 5 ] ~salts:[ 0; 21; 1365 ]
    ~plans:[ "none"; "jitter:1"; "stall:1" ] ~ops_per_thread:6 ~key_space:4
    ~engines:[ E.Nr ] ~mutation:true ()

let test_mutation_caught () =
  match (mutation_sweep ()).E.counterexample with
  | None ->
      Alcotest.fail "stale-reads mutation survived the lincheck sweep"
  | Some cx ->
      Alcotest.(check string) "on the dict substrate" "dict" cx.E.substrate;
      (* the counterexample replays byte-identically from its tuple *)
      let replayed =
        E.Run_dict.check_one ~budget:2_000_000 ~topo:cx.E.topo
          ~threads:cx.E.threads ~seed:cx.E.seed ~salt:cx.E.salt ~plan:cx.E.plan
          ~ops_per_thread:cx.E.ops_per_thread ~key_space:cx.E.key_space
          ~engine:E.Nr ~mutation:true ()
      in
      (match replayed with
      | Some cx' ->
          Alcotest.(check string) "identical minimal history" cx.E.history
            cx'.E.history
      | None -> Alcotest.fail "counterexample did not replay");
      (* and the same tuple without the mutation is clean *)
      let clean =
        E.Run_dict.check_one ~budget:2_000_000 ~topo:cx.E.topo
          ~threads:cx.E.threads ~seed:cx.E.seed ~salt:cx.E.salt ~plan:cx.E.plan
          ~ops_per_thread:cx.E.ops_per_thread ~key_space:cx.E.key_space
          ~engine:E.Nr ~mutation:false ()
      in
      Alcotest.(check bool) "unmutated build is linearizable" true
        (clean = None)

(* --- sharded engine --------------------------------------------------- *)

let test_explore_sharded () =
  let plans = [ "none"; "stall:1" ] in
  (* kv exercises the cross-shard coordinator (MGET/MSET in its op mix);
     dict exercises single-key routing over a partitioned integer space *)
  check_clean "kv sharded"
    (quick_sweep E.Run_kv.sweep ~engines:[ E.Sharded ] ~plans ~ops:5 ());
  check_clean "dict sharded"
    (quick_sweep E.Run_dict.sweep ~engines:[ E.Sharded ] ~plans ~ops:5 ());
  (* substrates without a sharded wrapper are skipped, not failed *)
  let sr = quick_sweep E.Run_stack.sweep ~engines:[ E.Sharded ] ~plans ~ops:5 () in
  Alcotest.(check int) "stack has no sharded wrapper" 0 sr.E.checked

let test_router_bypass_caught () =
  let sr =
    E.Run_kv.sweep ~budget:2_000_000 ~topo:"tiny" ~threads:4
      ~seeds:[ 1; 2; 3; 4; 5 ] ~salts:[ 0; 21 ] ~plans:[ "none"; "stall:1" ]
      ~ops_per_thread:6 ~key_space:4 ~engines:[ E.Sharded ] ~mutation:true ()
  in
  match sr.E.counterexample with
  | None -> Alcotest.fail "router-bypass mutation survived the lincheck sweep"
  | Some cx ->
      Alcotest.(check string) "on the kv substrate" "kv" cx.E.substrate;
      let clean =
        E.Run_kv.check_one ~budget:2_000_000 ~topo:cx.E.topo
          ~threads:cx.E.threads ~seed:cx.E.seed ~salt:cx.E.salt ~plan:cx.E.plan
          ~ops_per_thread:cx.E.ops_per_thread ~key_space:cx.E.key_space
          ~engine:E.Sharded ~mutation:false ()
      in
      Alcotest.(check bool) "honest router is linearizable" true (clean = None)

let test_salt_changes_schedule () =
  (* different salts must be able to produce different interleavings.
     NR under the empty plan is the right probe: combiner handoffs wake
     several waiters at the same simulated instant, so the tie-break
     actually has ties to reorder (a serialized SL run has none). *)
  let hist salt =
    match
      E.Run_stack.run_once ~topo:"tiny" ~threads:4 ~seed:1 ~salt ~plan:"none"
        ~ops_per_thread:5 ~key_space:4 ~engine:E.Nr ~mutation:false ()
    with
    | Some (evs, _) ->
        Array.map (fun e -> (e.H.tid, e.H.inv, e.H.ret)) evs
    | None -> Alcotest.fail "NR must exist"
  in
  let h0 = hist 0 and h0' = hist 0 and h1 = hist 21 in
  Alcotest.(check bool) "salt 0 deterministic" true (h0 = h0');
  Alcotest.(check bool) "salt 21 deterministic" true (h1 = hist 21);
  Alcotest.(check bool) "salt perturbs the schedule" true (h0 <> h1)

let suite =
  [
    Alcotest.test_case "wgl: concurrent ops ok" `Quick test_wgl_concurrent_ok;
    Alcotest.test_case "wgl: real-time violation" `Quick
      test_wgl_real_time_violation;
    Alcotest.test_case "wgl: duplicate pop" `Quick
      test_wgl_duplicate_pop_violation;
    Alcotest.test_case "wgl: pending linearized" `Quick
      test_wgl_pending_linearized;
    Alcotest.test_case "wgl: pending dropped" `Quick test_wgl_pending_dropped;
    Alcotest.test_case "wgl: queue fifo" `Quick test_wgl_queue_fifo;
    Alcotest.test_case "wgl: dict stale read" `Quick test_wgl_dict_stale_read;
    Alcotest.test_case "wgl: pq min ties" `Quick test_wgl_pq_min_ties;
    Alcotest.test_case "explore: black-box engines" `Slow
      test_explore_black_box;
    Alcotest.test_case "explore: lock-free baselines" `Quick
      test_explore_lock_free;
    Alcotest.test_case "explore: robust under steals/deaths" `Slow
      test_explore_robust_faults;
    Alcotest.test_case "mutation caught with replayable cx" `Slow
      test_mutation_caught;
    Alcotest.test_case "explore: sharded engine over kv and dict" `Slow
      test_explore_sharded;
    Alcotest.test_case "router bypass caught on kv" `Slow
      test_router_bypass_caught;
    Alcotest.test_case "salt perturbs schedules deterministically" `Quick
      test_salt_changes_schedule;
  ]

(* Cross-topology NR behaviour, config validation, driver over real
   domains, and the families registry edge cases. *)

module S = Nr_sim.Sched
module T = Nr_sim.Topology

module Counter = struct
  type t = { mutable v : int }
  type op = Incr | Get
  type result = int

  let create () = { v = 0 }

  let execute t = function
    | Incr ->
        t.v <- t.v + 1;
        t.v
    | Get -> t.v

  let is_read_only = function Get -> true | Incr -> false
  let footprint _ _ = Nr_runtime.Footprint.v ~key:0 ~reads:1 ()
  let lines _ = 4
  let pp_op ppf _ = Format.pp_print_string ppf "op"
end

let run_counter topo threads per_thread =
  let sched = S.create topo in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module NR = Nr_core.Node_replication.Make (R) (Counter) in
  let nr = NR.create (fun () -> Counter.create ()) in
  let results = Array.make threads [] in
  for tid = 0 to threads - 1 do
    S.spawn sched ~tid (fun () ->
        for _ = 1 to per_thread do
          results.(tid) <- NR.execute nr Counter.Incr :: results.(tid)
        done)
  done;
  S.run sched;
  let all = Array.to_list results |> List.concat |> List.sort compare in
  Alcotest.(check (list int))
    (Printf.sprintf "permutation on %s" topo.T.name)
    (List.init (threads * per_thread) (fun i -> i + 1))
    all

let test_nr_on_amd () = run_counter T.amd 48 30
let test_nr_on_custom_topology () =
  run_counter (T.custom ~nodes:8 ~cores_per_node:2 ~smt:2 ()) 32 30

let test_config_validation () =
  let bad cfg =
    let sched = S.create T.tiny in
    let module R = (val Nr_runtime.Runtime_sim.make sched) in
    let module NR = Nr_core.Node_replication.Make (R) (Counter) in
    match NR.create ~cfg (fun () -> Counter.create ()) with
    | _ -> Alcotest.fail "invalid config accepted"
    | exception Invalid_argument _ -> ()
  in
  bad { Nr_core.Config.default with log_size = 1 };
  bad { Nr_core.Config.default with min_batch = 0 };
  bad { Nr_core.Config.default with replay_window = 0 };
  bad { Nr_core.Config.default with min_batch_retries = -1 }

let test_families_rejects_structure_specific () =
  let sched = S.create T.tiny in
  let rt = Nr_runtime.Runtime_sim.make sched in
  let module W = Nr_harness.Families.Wrap (Nr_seqds.Skiplist_pq) in
  List.iter
    (fun m ->
      try
        ignore
          (W.build rt m ~factory:(fun () -> Nr_seqds.Skiplist_pq.create ()) ()
            : Nr_seqds.Pq_ops.op -> Nr_seqds.Pq_ops.result);
        Alcotest.fail "structure-specific method accepted as black-box"
      with Invalid_argument _ -> ())
    [ Nr_harness.Method.LF; Nr_harness.Method.NA ]

let test_driver_domains () =
  let r =
    Nr_harness.Driver.run_domains ~topo:T.tiny ~threads:2 ~warmup_s:0.01
      ~measure_s:0.05 (fun rt ~tid ->
        ignore tid;
        let module R = (val rt : Nr_runtime.Runtime_intf.S) in
        fun () -> R.work 50)
  in
  Alcotest.(check bool) "made progress" true (r.Nr_harness.Driver.total_ops > 0)

let test_stats_accumulate () =
  let a = Nr_core.Stats.create () in
  let b = Nr_core.Stats.create () in
  Nr_core.Stats.record_batch b 5;
  Nr_core.Stats.record_batch b 3;
  b.Nr_core.Stats.updates <- 7;
  Nr_core.Stats.add a b;
  Alcotest.(check int) "combines" 2 a.Nr_core.Stats.combines;
  Alcotest.(check int) "ops" 8 a.Nr_core.Stats.combined_ops;
  Alcotest.(check int) "max batch" 5 a.Nr_core.Stats.max_batch;
  Alcotest.(check bool) "avg" true
    (abs_float (Nr_core.Stats.avg_batch a -. 4.0) < 1e-9)

let test_costs_scaling () =
  let c = Nr_sim.Costs.scaled 2.0 in
  Alcotest.(check int) "latencies scale" (2 * Nr_sim.Costs.default.Nr_sim.Costs.l3_hit)
    c.Nr_sim.Costs.l3_hit;
  Alcotest.(check int) "yield untouched" Nr_sim.Costs.default.Nr_sim.Costs.yield
    c.Nr_sim.Costs.yield

let test_sim_scaled_costs_run () =
  (* the simulator accepts a custom cost table end to end *)
  let sched = S.create ~costs:(Nr_sim.Costs.scaled 0.5) T.tiny in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let c = R.cell 0 in
  S.spawn sched ~tid:0 (fun () ->
      for _ = 1 to 100 do
        ignore (R.faa c 1)
      done);
  S.run sched;
  Alcotest.(check int) "ops applied" 100 (R.read c)

let suite =
  [
    Alcotest.test_case "NR on AMD topology" `Quick test_nr_on_amd;
    Alcotest.test_case "NR on custom topology" `Quick test_nr_on_custom_topology;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "families rejects LF/NA" `Quick
      test_families_rejects_structure_specific;
    Alcotest.test_case "driver over domains" `Slow test_driver_domains;
    Alcotest.test_case "stats accumulate" `Quick test_stats_accumulate;
    Alcotest.test_case "cost scaling" `Quick test_costs_scaling;
    Alcotest.test_case "scaled costs end-to-end" `Quick test_sim_scaled_costs_run;
  ]

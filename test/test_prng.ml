(* PRNG, zipf and workload-mix tests. *)

open Nr_workload

let test_determinism () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 1000 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let eq = ref 0 in
  for _ = 1 to 1000 do
    if Prng.next_int64 a = Prng.next_int64 b then incr eq
  done;
  Alcotest.(check bool) "streams differ" true (!eq < 5)

let test_below_bounds () =
  let rng = Prng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let v = Prng.below rng 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_below_invalid () =
  let rng = Prng.create ~seed:7 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.below: bound must be > 0")
    (fun () -> ignore (Prng.below rng 0))

let test_float_range () =
  let rng = Prng.create ~seed:9 in
  for _ = 1 to 10_000 do
    let f = Prng.float rng in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_below_uniformity () =
  let rng = Prng.create ~seed:11 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Prng.below rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      if abs (c - expected) > expected / 5 then
        Alcotest.failf "bucket %d skewed: %d vs %d" i c expected)
    buckets

let test_split_independence () =
  let parent = Prng.create ~seed:3 in
  let child = Prng.split parent in
  let eq = ref 0 in
  for _ = 1 to 1000 do
    if Prng.next_int64 parent = Prng.next_int64 child then incr eq
  done;
  Alcotest.(check bool) "split streams decorrelated" true (!eq < 5)

let test_copy () =
  let a = Prng.create ~seed:5 in
  ignore (Prng.next a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copies continue identically" (Prng.next_int64 a)
    (Prng.next_int64 b)

(* --- zipf --- *)

let test_zipf_pmf_sums_to_one () =
  let z = Zipf.create ~theta:1.5 ~n:1000 () in
  let total = ref 0.0 in
  for k = 0 to 999 do
    total := !total +. Zipf.pmf z k
  done;
  Alcotest.(check bool) "pmf sums to 1" true (abs_float (!total -. 1.0) < 1e-9)

let test_zipf_rank0_hottest () =
  let z = Zipf.create ~theta:1.5 ~n:1000 () in
  for k = 1 to 999 do
    if Zipf.pmf z k > Zipf.pmf z (k - 1) +. 1e-12 then
      Alcotest.failf "pmf not decreasing at rank %d" k
  done

let test_zipf_sample_distribution () =
  let z = Zipf.create ~theta:1.5 ~n:10_000 () in
  let rng = Prng.create ~seed:13 in
  let n = 100_000 in
  let hits0 = ref 0 in
  for _ = 1 to n do
    let k = Zipf.sample z rng in
    if k < 0 || k >= 10_000 then Alcotest.fail "sample out of range";
    if k = 0 then incr hits0
  done;
  let expected = Zipf.pmf z 0 *. float_of_int n in
  let observed = float_of_int !hits0 in
  if abs_float (observed -. expected) > expected *. 0.1 then
    Alcotest.failf "rank-0 frequency %f far from expected %f" observed expected

let test_zipf_theta_skew () =
  (* larger theta concentrates more mass on rank 0 *)
  let z1 = Zipf.create ~theta:1.0 ~n:1000 () in
  let z2 = Zipf.create ~theta:2.0 ~n:1000 () in
  Alcotest.(check bool) "theta=2 hotter head" true (Zipf.pmf z2 0 > Zipf.pmf z1 0)

(* --- op mix --- *)

let test_op_mix_extremes () =
  let rng = Prng.create ~seed:17 in
  for _ = 1 to 1000 do
    (match Op_mix.sample ~update_percent:0 rng with
    | Op_mix.Read -> ()
    | Op_mix.Add | Op_mix.Remove -> Alcotest.fail "0%% updates produced update");
    match Op_mix.sample ~update_percent:100 rng with
    | Op_mix.Read -> Alcotest.fail "100%% updates produced read"
    | Op_mix.Add | Op_mix.Remove -> ()
  done

let test_op_mix_ratio () =
  let rng = Prng.create ~seed:19 in
  let updates = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    match Op_mix.sample ~update_percent:10 rng with
    | Op_mix.Add | Op_mix.Remove -> incr updates
    | Op_mix.Read -> ()
  done;
  let ratio = float_of_int !updates /. float_of_int n in
  Alcotest.(check bool) "about 10% updates" true
    (ratio > 0.08 && ratio < 0.12)

let test_op_mix_invalid () =
  let rng = Prng.create ~seed:21 in
  Alcotest.check_raises "percent 101"
    (Invalid_argument "Op_mix.sample: update_percent must be in [0,100]")
    (fun () -> ignore (Op_mix.sample ~update_percent:101 rng))

(* --- key dist --- *)

let test_key_dist () =
  let rng = Prng.create ~seed:23 in
  let u = Key_dist.uniform 100 in
  for _ = 1 to 1000 do
    let k = Key_dist.sample u rng in
    Alcotest.(check bool) "uniform in range" true (k >= 0 && k < 100)
  done;
  Alcotest.(check int) "space" 100 (Key_dist.space u);
  let z = Key_dist.zipf ~theta:1.5 ~n:50 () in
  Alcotest.(check int) "zipf space" 50 (Key_dist.space z);
  Alcotest.(check string) "uniform name" "uniform" (Key_dist.name u)

let suite =
  [
    Alcotest.test_case "prng determinism" `Quick test_determinism;
    Alcotest.test_case "prng seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "prng below bounds" `Quick test_below_bounds;
    Alcotest.test_case "prng below invalid" `Quick test_below_invalid;
    Alcotest.test_case "prng float range" `Quick test_float_range;
    Alcotest.test_case "prng uniformity" `Quick test_below_uniformity;
    Alcotest.test_case "prng split" `Quick test_split_independence;
    Alcotest.test_case "prng copy" `Quick test_copy;
    Alcotest.test_case "zipf pmf sums to 1" `Quick test_zipf_pmf_sums_to_one;
    Alcotest.test_case "zipf decreasing pmf" `Quick test_zipf_rank0_hottest;
    Alcotest.test_case "zipf sampling" `Quick test_zipf_sample_distribution;
    Alcotest.test_case "zipf theta skew" `Quick test_zipf_theta_skew;
    Alcotest.test_case "op mix extremes" `Quick test_op_mix_extremes;
    Alcotest.test_case "op mix ratio" `Quick test_op_mix_ratio;
    Alcotest.test_case "op mix invalid" `Quick test_op_mix_invalid;
    Alcotest.test_case "key distributions" `Quick test_key_dist;
  ]

(* Tests for the extension features: the AVL tree substrate, the paper's
   fake-update wrapper (§6), and the dedicated combiner (§4). *)

module S = Nr_sim.Sched
module T = Nr_sim.Topology
module Avl = Nr_seqds.Avl.Make (Nr_seqds.Ordered.Int)

let check_valid = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "AVL invariant broken: %s" e

let test_avl_basic () =
  let t = Avl.create () in
  Alcotest.(check bool) "insert" true (Avl.insert t 5 50);
  Alcotest.(check bool) "insert dup" false (Avl.insert t 5 51);
  Alcotest.(check (option int)) "find" (Some 50) (Avl.find t 5);
  Alcotest.(check (option int)) "find absent" None (Avl.find t 7);
  Alcotest.(check (option int)) "remove" (Some 50) (Avl.remove t 5);
  Alcotest.(check (option int)) "remove absent" None (Avl.remove t 5);
  Alcotest.(check int) "empty" 0 (Avl.length t);
  check_valid (Avl.validate t)

let test_avl_balance () =
  (* ascending insertion is the classic unbalancing adversary *)
  let t = Avl.create () in
  for i = 1 to 1024 do
    ignore (Avl.insert t i i)
  done;
  check_valid (Avl.validate t);
  Alcotest.(check (list (pair int int)))
    "sorted"
    (List.init 1024 (fun i -> (i + 1, i + 1)))
    (Avl.to_list t);
  Alcotest.(check (option (pair int int))) "min" (Some (1, 1)) (Avl.min t)

let avl_model_test =
  QCheck.Test.make ~count:300 ~name:"avl vs assoc model"
    QCheck.(list (pair (int_bound 60) bool))
    (fun ops ->
      let t = Avl.create () in
      let model = ref [] in
      List.iter
        (fun (k, insert) ->
          if insert then begin
            let added = Avl.insert t k k in
            if added <> not (List.mem_assoc k !model) then
              QCheck.Test.fail_report "insert result";
            if added then model := (k, k) :: !model
          end
          else begin
            let r = Avl.remove t k in
            if r <> List.assoc_opt k !model then
              QCheck.Test.fail_report "remove result";
            model := List.remove_assoc k !model
          end)
        ops;
      (match Avl.validate t with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_report e);
      Avl.to_list t = List.sort compare !model)

let test_avl_dict_under_nr () =
  (* the same Dict_ops workload the skip list runs, on the AVL substrate *)
  let sched = S.create T.intel in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module NR = Nr_core.Node_replication.Make (R) (Nr_seqds.Avl_dict) in
  let nr = NR.create (fun () -> Nr_seqds.Avl_dict.create ()) in
  for tid = 0 to 15 do
    let rng = Nr_workload.Prng.create ~seed:(tid + 1) in
    S.spawn sched ~tid (fun () ->
        for _ = 1 to 80 do
          let k = Nr_workload.Prng.below rng 64 in
          match Nr_workload.Prng.below rng 3 with
          | 0 -> ignore (NR.execute nr (Nr_seqds.Dict_ops.Insert (k, k)))
          | 1 -> ignore (NR.execute nr (Nr_seqds.Dict_ops.Remove k))
          | _ -> ignore (NR.execute nr (Nr_seqds.Dict_ops.Lookup k))
        done)
  done;
  S.run sched;
  NR.Unsafe.sync nr;
  let reference = Nr_seqds.Avl_dict.to_list (NR.Unsafe.replica nr 0) in
  for node = 1 to NR.num_replicas nr - 1 do
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "replica %d converged" node)
      reference
      (Nr_seqds.Avl_dict.to_list (NR.Unsafe.replica nr node))
  done

(* --- fake updates --- *)

let test_fake_update_wrapper () =
  let sched = S.create T.tiny in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module NR = Nr_core.Node_replication.Make (R) (Nr_seqds.Skiplist_dict) in
  let module Fake = Nr_core.Fake_update.Make (Nr_seqds.Skiplist_dict) in
  let nr = NR.create (fun () -> Nr_seqds.Skiplist_dict.create ()) in
  (* removes of absent keys are proven no-ops by a lookup *)
  let probe =
    {
      Fake.as_read =
        (function
        | Nr_seqds.Dict_ops.Remove k -> Some (Nr_seqds.Dict_ops.Lookup k)
        | Nr_seqds.Dict_ops.Insert _ | Nr_seqds.Dict_ops.Lookup _ -> None);
      conclusive =
        (fun _op result ->
          match result with
          | Nr_seqds.Dict_ops.Found None -> Some (Nr_seqds.Dict_ops.Removed None)
          | _ -> None);
    }
  in
  let exec = Fake.wrap probe (fun op -> NR.execute nr op) in
  S.spawn sched ~tid:0 (fun () ->
      Alcotest.(check bool) "remove absent is fake" true
        (exec (Nr_seqds.Dict_ops.Remove 1) = Nr_seqds.Dict_ops.Removed None);
      ignore (exec (Nr_seqds.Dict_ops.Insert (1, 10)));
      Alcotest.(check bool) "remove present is real" true
        (exec (Nr_seqds.Dict_ops.Remove 1) = Nr_seqds.Dict_ops.Removed (Some 10));
      Alcotest.(check bool) "gone afterwards" true
        (exec (Nr_seqds.Dict_ops.Lookup 1) = Nr_seqds.Dict_ops.Found None));
  S.run sched;
  (* the fake remove never reached the log *)
  let stats = NR.stats nr in
  Alcotest.(check int) "only 2 real updates" 2 stats.Nr_core.Stats.updates

(* --- dedicated combiner --- *)

let test_dedicated_combiner_keeps_idle_node_fresh () =
  let sched = S.create T.tiny in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module NR = Nr_core.Node_replication.Make (R) (Nr_seqds.Skiplist_dict) in
  let nr = NR.create (fun () -> Nr_seqds.Skiplist_dict.create ()) in
  let writers_done = ref false in
  (* node 0 (tids 0-1) writes; node 1's only activity is its dedicated
     combiner (tid 2), which must keep replica 1 fresh anyway *)
  S.spawn sched ~tid:0 (fun () ->
      for k = 1 to 200 do
        ignore (NR.execute nr (Nr_seqds.Dict_ops.Insert (k, k)))
      done;
      writers_done := true);
  S.spawn sched ~tid:2 (fun () ->
      NR.run_dedicated_combiner nr ~stop:(fun () ->
          !writers_done
          && NR.local_tail nr 1 >= NR.completed nr));
  S.run sched;
  Alcotest.(check bool) "idle replica caught up" true
    (NR.local_tail nr 1 >= 200);
  Alcotest.(check int) "replica 1 complete" 200
    (Nr_seqds.Skiplist_dict.length (NR.Unsafe.replica nr 1))

let suite =
  [
    Alcotest.test_case "avl basic" `Quick test_avl_basic;
    Alcotest.test_case "avl balance" `Quick test_avl_balance;
    QCheck_alcotest.to_alcotest avl_model_test;
    Alcotest.test_case "avl dict under NR" `Quick test_avl_dict_under_nr;
    Alcotest.test_case "fake update wrapper" `Quick test_fake_update_wrapper;
    Alcotest.test_case "dedicated combiner" `Quick
      test_dedicated_combiner_keeps_idle_node_fresh;
  ]

(* Node Replication correctness tests, on the simulator (deterministic
   interleavings at 112-thread scale) and on real domains.

   Linearizability oracles used:
   - counter increments: the multiset of returned values must be exactly
     {1..N} (each update's return value is its linearization index);
   - priority queue: every successful deleteMin returns a distinct inserted
     element; after quiescence the remaining elements complete the multiset;
   - read freshness: a read that starts after an update completed must
     observe it (checked via a monotonically increasing counter: reads never
     observe a value smaller than the last value the same thread saw). *)

module S = Nr_sim.Sched
module T = Nr_sim.Topology

module Counter = struct
  type t = { mutable v : int }
  type op = Incr | Get
  type result = int

  let create () = { v = 0 }

  let execute t = function
    | Incr ->
        t.v <- t.v + 1;
        t.v
    | Get -> t.v

  let is_read_only = function Get -> true | Incr -> false

  let footprint _ op =
    Nr_runtime.Footprint.v ~key:0 ~reads:1
      ~writes:(match op with Incr -> 1 | Get -> 0)
      ()

  let lines _ = 4

  let pp_op ppf = function
    | Incr -> Format.pp_print_string ppf "incr"
    | Get -> Format.pp_print_string ppf "get"
end

(* Run a counter workload under a given NR config; verify full
   linearizability of updates and read monotonicity per thread. *)
let counter_scenario ?(cfg = Nr_core.Config.default) ~topo ~threads ~per_thread
    () =
  let sched = S.create topo in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module NR = Nr_core.Node_replication.Make (R) (Counter) in
  let nr = NR.create ~cfg (fun () -> Counter.create ()) in
  let results = Array.make threads [] in
  let monotonic = ref true in
  for tid = 0 to threads - 1 do
    S.spawn sched ~tid (fun () ->
        let last_read = ref 0 in
        for _ = 1 to per_thread do
          let r = NR.execute nr Counter.Incr in
          results.(tid) <- r :: results.(tid);
          let g = NR.execute nr Counter.Get in
          (* the read follows our own completed increment: it must be at
             least as large as that increment's value *)
          if g < r || g < !last_read then monotonic := false;
          last_read := g
        done)
  done;
  S.run sched;
  let all = Array.to_list results |> List.concat |> List.sort compare in
  let n = threads * per_thread in
  Alcotest.(check (list int)) "increment results are a permutation of 1..N"
    (List.init n (fun i -> i + 1))
    all;
  Alcotest.(check bool) "reads monotone and fresh" true !monotonic;
  (* all replicas converge *)
  NR.Unsafe.sync nr;
  for node = 0 to NR.num_replicas nr - 1 do
    Alcotest.(check int)
      (Printf.sprintf "replica %d converged" node)
      n
      (NR.Unsafe.replica nr node).Counter.v
  done;
  NR.stats nr

let test_counter_basic () =
  ignore (counter_scenario ~topo:T.intel ~threads:56 ~per_thread:60 ())

let test_counter_tiny_topo () =
  ignore (counter_scenario ~topo:T.tiny ~threads:4 ~per_thread:200 ())

let test_counter_single_thread () =
  ignore (counter_scenario ~topo:T.intel ~threads:1 ~per_thread:100 ())

let test_counter_small_log_wraps () =
  (* a tiny log (barely above the max batch size) forces constant
     wrap-around and recycling *)
  let cfg = { Nr_core.Config.default with log_size = 32 } in
  ignore (counter_scenario ~cfg ~topo:T.intel ~threads:32 ~per_thread:50 ())

let test_counter_min_batch () =
  let cfg = { Nr_core.Config.default with min_batch = 8; min_batch_retries = 3 } in
  ignore (counter_scenario ~cfg ~topo:T.intel ~threads:56 ~per_thread:40 ())

(* every ablation configuration must remain correct *)
let ablation_configs =
  [
    ("no flat combining", { Nr_core.Config.default with flat_combining = false });
    ( "no read optimization",
      { Nr_core.Config.default with read_optimization = false } );
    ( "combined replica lock",
      { Nr_core.Config.default with separate_replica_lock = false } );
    ( "serial replica update",
      { Nr_core.Config.default with parallel_replica_update = false } );
    ( "simple rwlock",
      { Nr_core.Config.default with distributed_rwlock = false } );
  ]

let test_ablations_correct () =
  List.iter
    (fun (_name, cfg) ->
      ignore (counter_scenario ~cfg ~topo:T.intel ~threads:24 ~per_thread:30 ()))
    ablation_configs

let test_combining_happens () =
  let stats = counter_scenario ~topo:T.intel ~threads:56 ~per_thread:60 () in
  Alcotest.(check bool) "batches formed" true (stats.Nr_core.Stats.max_batch > 1)

(* --- priority queue oracle --- *)

let test_pq_unique_removals () =
  let sched = S.create T.intel in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module NR = Nr_core.Node_replication.Make (R) (Nr_seqds.Skiplist_pq) in
  let nr = NR.create (fun () -> Nr_seqds.Skiplist_pq.create ()) in
  let threads = 28 in
  let per_thread = 50 in
  let inserted = Array.make threads [] in
  let removed = Array.make threads [] in
  for tid = 0 to threads - 1 do
    S.spawn sched ~tid (fun () ->
        for i = 1 to per_thread do
          (* unique keys per thread *)
          let key = (tid * 1_000_000) + i in
          (match NR.execute nr (Nr_seqds.Pq_ops.Insert (key, tid)) with
          | Nr_seqds.Pq_ops.Inserted true -> inserted.(tid) <- key :: inserted.(tid)
          | Nr_seqds.Pq_ops.Inserted false -> Alcotest.fail "unique key rejected"
          | _ -> Alcotest.fail "bad insert result");
          if i mod 2 = 0 then
            match NR.execute nr Nr_seqds.Pq_ops.Delete_min with
            | Nr_seqds.Pq_ops.Removed (Some (k, _)) ->
                removed.(tid) <- k :: removed.(tid)
            | Nr_seqds.Pq_ops.Removed None -> ()
            | _ -> Alcotest.fail "bad deleteMin result"
        done)
  done;
  S.run sched;
  let all_inserted =
    Array.to_list inserted |> List.concat |> List.sort compare
  in
  let all_removed = Array.to_list removed |> List.concat |> List.sort compare in
  (* no element removed twice *)
  Alcotest.(check (list int)) "removals distinct"
    (List.sort_uniq compare all_removed)
    all_removed;
  (* every removal was inserted *)
  List.iter
    (fun k ->
      if not (List.mem k all_inserted) then
        Alcotest.failf "removed %d was never inserted" k)
    all_removed;
  (* remaining elements = inserted \ removed, on every replica *)
  NR.Unsafe.sync nr;
  let expected =
    List.filter (fun k -> not (List.mem k all_removed)) all_inserted
  in
  for node = 0 to NR.num_replicas nr - 1 do
    let remaining =
      List.map fst (Nr_seqds.Skiplist_pq.to_list (NR.Unsafe.replica nr node))
    in
    Alcotest.(check (list int))
      (Printf.sprintf "replica %d contents" node)
      expected remaining
  done

(* the log, replayed into a fresh sequential structure, reproduces every
   replica: NR is a faithful state machine replication *)
let test_log_replay_oracle () =
  let sched = S.create T.tiny in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module NR = Nr_core.Node_replication.Make (R) (Nr_seqds.Skiplist_dict) in
  let nr = NR.create (fun () -> Nr_seqds.Skiplist_dict.create ()) in
  for tid = 0 to 3 do
    let rng = Nr_workload.Prng.create ~seed:(tid + 1) in
    S.spawn sched ~tid (fun () ->
        for _ = 1 to 100 do
          let k = Nr_workload.Prng.below rng 50 in
          match Nr_workload.Prng.below rng 3 with
          | 0 -> ignore (NR.execute nr (Nr_seqds.Dict_ops.Insert (k, k)))
          | 1 -> ignore (NR.execute nr (Nr_seqds.Dict_ops.Remove k))
          | _ -> ignore (NR.execute nr (Nr_seqds.Dict_ops.Lookup k))
        done)
  done;
  S.run sched;
  NR.Unsafe.sync nr;
  let fresh = Nr_seqds.Skiplist_dict.create () in
  let entries, wrapped = NR.Unsafe.log_entries nr in
  Alcotest.(check int) "log did not wrap" 0 wrapped;
  List.iter
    (fun op ->
      match op with
      | Some op -> ignore (Nr_seqds.Skiplist_dict.execute fresh op)
      | None -> Alcotest.fail "poisoned entry in legacy mode")
    entries;
  let expected = Nr_seqds.Skiplist_dict.to_list fresh in
  for node = 0 to NR.num_replicas nr - 1 do
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "replica %d = log replay" node)
      expected
      (Nr_seqds.Skiplist_dict.to_list (NR.Unsafe.replica nr node))
  done

(* --- real domains --- *)

let test_domains_counter () =
  let topo = T.tiny in
  let module R = (val Nr_runtime.Runtime_domains.make topo) in
  let module NR = Nr_core.Node_replication.Make (R) (Counter) in
  let nr = NR.create (fun () -> Counter.create ()) in
  let threads = 4 in
  let per_thread = 300 in
  let results = Array.make threads [] in
  Nr_runtime.Runtime_domains.parallel_run ~nthreads:threads (fun tid ->
      for _ = 1 to per_thread do
        let r = NR.execute nr Counter.Incr in
        results.(tid) <- r :: results.(tid);
        ignore (NR.execute nr Counter.Get)
      done);
  let all = Array.to_list results |> List.concat |> List.sort compare in
  let n = threads * per_thread in
  Alcotest.(check int) "count" n (List.length all);
  Alcotest.(check (list int)) "permutation" (List.init n (fun i -> i + 1)) all

let test_domains_coupled_structures () =
  (* the paper's "coupled data structures" claim: NR atomically updates a
     zset's hash table and skip list because they form one structure *)
  let topo = T.tiny in
  let module R = (val Nr_runtime.Runtime_domains.make topo) in
  let module NR = Nr_core.Node_replication.Make (R) (Nr_kvstore.Store) in
  let nr = NR.create (fun () -> Nr_kvstore.Store.create ()) in
  let threads = 4 in
  Nr_runtime.Runtime_domains.parallel_run ~nthreads:threads (fun tid ->
      for i = 1 to 100 do
        ignore
          (NR.execute nr (Nr_kvstore.Command.Zincrby ("z", 1, (tid * 200) + i)));
        ignore (NR.execute nr (Nr_kvstore.Command.Zrank ("z", (tid * 200) + i)))
      done);
  (* quiesce and check zset internal consistency on each replica *)
  NR.Unsafe.sync nr;
  for node = 0 to NR.num_replicas nr - 1 do
    let store = NR.Unsafe.replica nr node in
    match Nr_kvstore.Store.execute store (Nr_kvstore.Command.Zcard "z") with
    | Nr_kvstore.Command.Int n ->
        Alcotest.(check int) "all members present" (threads * 100) n
    | _ -> Alcotest.fail "zcard failed"
  done

let suite =
  [
    Alcotest.test_case "counter 56 threads" `Quick test_counter_basic;
    Alcotest.test_case "counter tiny topology" `Quick test_counter_tiny_topo;
    Alcotest.test_case "counter single thread" `Quick test_counter_single_thread;
    Alcotest.test_case "counter with log wrap" `Quick test_counter_small_log_wraps;
    Alcotest.test_case "counter with min batch" `Quick test_counter_min_batch;
    Alcotest.test_case "all ablation configs correct" `Quick test_ablations_correct;
    Alcotest.test_case "combining happens" `Quick test_combining_happens;
    Alcotest.test_case "pq removals unique" `Quick test_pq_unique_removals;
    Alcotest.test_case "log replay oracle" `Quick test_log_replay_oracle;
    Alcotest.test_case "domains counter" `Slow test_domains_counter;
    Alcotest.test_case "domains coupled structures" `Slow
      test_domains_coupled_structures;
  ]

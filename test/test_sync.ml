(* Synchronization primitive tests, run on the simulator where thousands of
   interleavings are explored deterministically. *)

module S = Nr_sim.Sched
module T = Nr_sim.Topology

let with_sim topo threads body =
  let sched = S.create topo in
  let rt = Nr_runtime.Runtime_sim.make sched in
  let module R = (val rt) in
  for tid = 0 to threads - 1 do
    S.spawn sched ~tid (body rt ~tid)
  done;
  S.run sched

let test_spinlock_mutual_exclusion () =
  let sched = S.create T.intel in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module Spin = Nr_sync.Spinlock.Make (R) in
  let lock = Spin.create () in
  (* a non-atomic counter: only mutual exclusion keeps it consistent *)
  let unprotected = ref 0 in
  let iters = 200 in
  let threads = 16 in
  for tid = 0 to threads - 1 do
    S.spawn sched ~tid (fun () ->
        for _ = 1 to iters do
          Spin.lock lock;
          let v = !unprotected in
          R.yield ();
          (* adversarial: dwell inside the critical section *)
          unprotected := v + 1;
          Spin.unlock lock
        done)
  done;
  S.run sched;
  Alcotest.(check int) "no lost updates" (threads * iters) !unprotected

let test_spinlock_trylock () =
  let sched = S.create T.tiny in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module Spin = Nr_sync.Spinlock.Make (R) in
  let lock = Spin.create () in
  S.spawn sched ~tid:0 (fun () ->
      Alcotest.(check bool) "acquire" true (Spin.try_lock lock);
      Alcotest.(check bool) "re-acquire fails" false (Spin.try_lock lock);
      Alcotest.(check bool) "locked" true (Spin.locked lock);
      Spin.unlock lock;
      Alcotest.(check bool) "acquire after unlock" true (Spin.try_lock lock);
      Spin.unlock lock);
  S.run sched

(* Generic readers-writer lock exercise: readers must never observe a
   torn (odd) value; the writer writes in two steps. *)
let rw_exercise ~make_ops =
  let sched = S.create T.intel in
  let rt = Nr_runtime.Runtime_sim.make sched in
  let module R = (val rt) in
  let value = ref 0 in
  let torn = ref false in
  let read_lock, read_unlock, write_lock, write_unlock = make_ops rt in
  let threads = 12 in
  for tid = 0 to threads - 1 do
    S.spawn sched ~tid (fun () ->
        for _ = 1 to 100 do
          if tid < 4 then begin
            (* writer: makes the value momentarily odd *)
            write_lock ();
            incr value;
            R.yield ();
            incr value;
            write_unlock ()
          end
          else begin
            read_lock tid;
            if !value land 1 = 1 then torn := true;
            read_unlock tid
          end
        done)
  done;
  S.run sched;
  Alcotest.(check bool) "no torn reads" false !torn;
  Alcotest.(check int) "writer updates kept" (4 * 100 * 2) !value

let test_rwlock_dist () =
  rw_exercise ~make_ops:(fun rt ->
      let module R = (val rt) in
      let module Rw = Nr_sync.Rwlock_dist.Make (R) in
      let l = Rw.create ~readers:28 () in
      ( (fun tid -> Rw.read_lock l (tid mod 28)),
        (fun tid -> Rw.read_unlock l (tid mod 28)),
        (fun () -> Rw.write_lock l),
        fun () -> Rw.write_unlock l ))

let test_rwlock_simple () =
  rw_exercise ~make_ops:(fun rt ->
      let module R = (val rt) in
      let module Rw = Nr_sync.Rwlock_simple.Make (R) in
      let l = Rw.create () in
      ( (fun _ -> Rw.read_lock l),
        (fun _ -> Rw.read_unlock l),
        (fun () -> Rw.write_lock l),
        fun () -> Rw.write_unlock l ))

let test_rwlock_dist_parallel_readers () =
  (* readers on distinct slots must be able to hold the lock at once *)
  let sched = S.create T.tiny in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module Rw = Nr_sync.Rwlock_dist.Make (R) in
  let l = Rw.create ~readers:4 () in
  let inside = ref 0 in
  let max_inside = ref 0 in
  for tid = 0 to 3 do
    S.spawn sched ~tid (fun () ->
        for _ = 1 to 50 do
          Rw.read_lock l tid;
          incr inside;
          if !inside > !max_inside then max_inside := !inside;
          R.yield ();
          decr inside;
          Rw.read_unlock l tid
        done)
  done;
  S.run sched;
  Alcotest.(check bool) "readers overlapped" true (!max_inside > 1)

let test_backoff_grows () =
  let sched = S.create T.tiny in
  let module R = (val Nr_runtime.Runtime_sim.make sched) in
  let module B = Nr_sync.Backoff.Make (R) in
  let t1 = ref 0 and t2 = ref 0 in
  S.spawn sched ~tid:0 (fun () ->
      let b = B.create ~max_exp:4 () in
      let t0 = S.now () in
      B.once b;
      t1 := S.now () - t0;
      let t0 = S.now () in
      B.once b;
      B.once b;
      B.once b;
      t2 := S.now () - t0);
  S.run sched;
  Alcotest.(check bool) "backoff grows" true (!t2 > !t1)

let _ = with_sim

let suite =
  [
    Alcotest.test_case "spinlock mutual exclusion" `Quick
      test_spinlock_mutual_exclusion;
    Alcotest.test_case "spinlock try_lock" `Quick test_spinlock_trylock;
    Alcotest.test_case "distributed rwlock" `Quick test_rwlock_dist;
    Alcotest.test_case "simple rwlock" `Quick test_rwlock_simple;
    Alcotest.test_case "dist rwlock parallel readers" `Quick
      test_rwlock_dist_parallel_readers;
    Alcotest.test_case "backoff grows" `Quick test_backoff_grows;
  ]

(* Second-wave property tests: randomized NR configurations under the
   linearizability oracle, skip-list rank/selection laws, RESP fuzzing,
   memory-model invariants. *)

module S = Nr_sim.Sched
module T = Nr_sim.Topology

module Counter = struct
  type t = { mutable v : int }
  type op = Incr | Get
  type result = int

  let create () = { v = 0 }

  let execute t = function
    | Incr ->
        t.v <- t.v + 1;
        t.v
    | Get -> t.v

  let is_read_only = function Get -> true | Incr -> false
  let footprint _ _ = Nr_runtime.Footprint.v ~key:0 ~reads:1 ()
  let lines _ = 4
  let pp_op ppf _ = Format.pp_print_string ppf "op"
end

(* --- random NR configurations stay linearizable --- *)

let config_gen =
  QCheck.Gen.(
    let* log_size = oneofl [ 64; 128; 1024; 65536 ] in
    let* min_batch = oneofl [ 1; 2; 8 ] in
    let* replay_window = oneofl [ 1; 4; 8 ] in
    let* flat_combining = bool in
    let* read_optimization = bool in
    let* separate_replica_lock = bool in
    let* parallel_replica_update = bool in
    let* distributed_rwlock = bool in
    return
      {
        Nr_core.Config.log_size;
        min_batch;
        min_batch_retries = 2;
        replay_window;
        flat_combining;
        read_optimization;
        separate_replica_lock;
        parallel_replica_update;
        distributed_rwlock;
        liveness = None;
        mutation = None;
      })

let print_config c = Format.asprintf "%a" Nr_core.Config.pp c

let nr_config_linearizable =
  QCheck.Test.make ~count:30 ~name:"NR linearizable under any configuration"
    (QCheck.make config_gen ~print:print_config)
    (fun cfg ->
      let threads = 12 and per_thread = 25 in
      let sched = S.create T.intel in
      let module R = (val Nr_runtime.Runtime_sim.make sched) in
      let module NR = Nr_core.Node_replication.Make (R) (Counter) in
      let nr = NR.create ~cfg (fun () -> Counter.create ()) in
      let results = Array.make threads [] in
      for tid = 0 to threads - 1 do
        S.spawn sched ~tid (fun () ->
            for _ = 1 to per_thread do
              results.(tid) <- NR.execute nr Counter.Incr :: results.(tid);
              ignore (NR.execute nr Counter.Get)
            done)
      done;
      S.run sched;
      let all = Array.to_list results |> List.concat |> List.sort compare in
      all = List.init (threads * per_thread) (fun i -> i + 1))

(* --- skip list selection laws --- *)

module Sl = Nr_seqds.Skiplist.Make (Nr_seqds.Ordered.Int)

let sl_rank_nth_inverse =
  QCheck.Test.make ~count:200 ~name:"skiplist nth inverts rank"
    QCheck.(list (int_bound 500))
    (fun keys ->
      let t = Sl.create ~seed:3 () in
      List.iter (fun k -> ignore (Sl.insert t k k)) keys;
      let items = Sl.to_list t in
      List.for_all
        (fun (k, _) ->
          match Sl.rank t k with
          | Some r -> (
              match Sl.nth t r with
              | Some (k', _) -> k = k'
              | None -> false)
          | None -> false)
        items)

let sl_rank_counts_smaller =
  QCheck.Test.make ~count:200 ~name:"skiplist rank = #smaller keys"
    QCheck.(pair (list (int_bound 300)) (int_bound 300))
    (fun (keys, probe) ->
      let t = Sl.create ~seed:5 () in
      List.iter (fun k -> ignore (Sl.insert t k k)) keys;
      let distinct = List.sort_uniq compare keys in
      match Sl.rank t probe with
      | Some r -> r = List.length (List.filter (fun k -> k < probe) distinct)
      | None -> not (List.mem probe distinct))

(* --- RESP never crashes on junk and parses its own output --- *)

let resp_fuzz =
  QCheck.Test.make ~count:500 ~name:"resp parser total on junk"
    QCheck.(string_of_size (QCheck.Gen.int_bound 64))
    (fun junk ->
      match Nr_kvstore.Resp.parse_request junk with
      | Nr_kvstore.Resp.Parsed _ | Nr_kvstore.Resp.Incomplete
      | Nr_kvstore.Resp.Invalid _ ->
          true)

let resp_roundtrip =
  QCheck.Test.make ~count:300 ~name:"resp request roundtrip"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 6) (string_of_size (QCheck.Gen.int_bound 20)))
    (fun tokens ->
      match Nr_kvstore.Resp.parse_request (Nr_kvstore.Resp.encode_request tokens) with
      | Nr_kvstore.Resp.Parsed (tokens', _) -> tokens = tokens'
      | _ -> false)

(* --- memory-model invariants under random access sequences --- *)

let access_gen =
  QCheck.Gen.(
    triple (int_bound 3) (int_bound 55)
      (oneofl [ Nr_sim.Mem.Read; Nr_sim.Mem.Write; Nr_sim.Mem.Cas ]))

let mem_invariants =
  QCheck.Test.make ~count:300 ~name:"memory model line-state invariants"
    (QCheck.make
       QCheck.Gen.(list_size (int_bound 60) access_gen)
       ~print:(fun l -> Printf.sprintf "<%d accesses>" (List.length l)))
    (fun accesses ->
      let topo = T.intel in
      let costs = Nr_sim.Costs.default in
      let st = Nr_sim.Sim_stats.create () in
      let line = Nr_sim.Mem.line ~home:0 in
      let now = ref 0 in
      List.for_all
        (fun (node, core_raw, kind) ->
          let core = (node * 14) + (core_raw mod 14) in
          let fin =
            Nr_sim.Mem.access topo costs st ~node ~core ~now:!now line kind
          in
          let monotone = fin >= !now in
          now := fin;
          let owner_ok =
            line.Nr_sim.Mem.owner = -1
            || line.Nr_sim.Mem.sharers = 1 lsl line.Nr_sim.Mem.owner
          in
          let writer_owns =
            match kind with
            | Nr_sim.Mem.Write | Nr_sim.Mem.Cas ->
                line.Nr_sim.Mem.owner = node
            | Nr_sim.Mem.Read -> line.Nr_sim.Mem.sharers land (1 lsl node) <> 0
          in
          monotone && owner_ok && writer_owns)
        accesses)

(* --- zipf statistics --- *)

let zipf_head_mass =
  QCheck.Test.make ~count:20 ~name:"zipf 1.5 concentrates on the head"
    (QCheck.make QCheck.Gen.(int_range 100 5000) ~print:string_of_int)
    (fun n ->
      let z = Nr_workload.Zipf.create ~theta:1.5 ~n () in
      (* the top 5% of ranks carry most of the mass for theta=1.5 *)
      let top = max 1 (n / 20) in
      let mass = ref 0.0 in
      for k = 0 to top - 1 do
        mass := !mass +. Nr_workload.Zipf.pmf z k
      done;
      !mass > 0.5)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      nr_config_linearizable;
      sl_rank_nth_inverse;
      sl_rank_counts_smaller;
      resp_fuzz;
      resp_roundtrip;
      mem_invariants;
      zipf_head_mass;
    ]

(* Second-wave property tests: randomized NR configurations under the
   linearizability oracle, skip-list rank/selection laws, RESP fuzzing,
   memory-model invariants. *)

module S = Nr_sim.Sched
module T = Nr_sim.Topology

module Counter = struct
  type t = { mutable v : int }
  type op = Incr | Get
  type result = int

  let create () = { v = 0 }

  let execute t = function
    | Incr ->
        t.v <- t.v + 1;
        t.v
    | Get -> t.v

  let is_read_only = function Get -> true | Incr -> false
  let footprint _ _ = Nr_runtime.Footprint.v ~key:0 ~reads:1 ()
  let lines _ = 4
  let pp_op ppf _ = Format.pp_print_string ppf "op"
end

(* --- random NR configurations stay linearizable --- *)

let config_gen =
  QCheck.Gen.(
    let* log_size = oneofl [ 64; 128; 1024; 65536 ] in
    let* min_batch = oneofl [ 1; 2; 8 ] in
    let* replay_window = oneofl [ 1; 4; 8 ] in
    let* flat_combining = bool in
    let* read_optimization = bool in
    let* separate_replica_lock = bool in
    let* parallel_replica_update = bool in
    let* distributed_rwlock = bool in
    return
      {
        Nr_core.Config.log_size;
        min_batch;
        min_batch_retries = 2;
        replay_window;
        flat_combining;
        read_optimization;
        separate_replica_lock;
        parallel_replica_update;
        distributed_rwlock;
        shards = 1;
        router_seed = 0x5EED;
        liveness = None;
        mutation = None;
        cna_lock = false;
        cna_threshold = 8;
        optimistic_reads = false;
        read_patience = None;
      })

let print_config c = Format.asprintf "%a" Nr_core.Config.pp c

let nr_config_linearizable =
  QCheck.Test.make ~count:30 ~name:"NR linearizable under any configuration"
    (QCheck.make config_gen ~print:print_config)
    (fun cfg ->
      let threads = 12 and per_thread = 25 in
      let sched = S.create T.intel in
      let module R = (val Nr_runtime.Runtime_sim.make sched) in
      let module NR = Nr_core.Node_replication.Make (R) (Counter) in
      let nr = NR.create ~cfg (fun () -> Counter.create ()) in
      let results = Array.make threads [] in
      for tid = 0 to threads - 1 do
        S.spawn sched ~tid (fun () ->
            for _ = 1 to per_thread do
              results.(tid) <- NR.execute nr Counter.Incr :: results.(tid);
              ignore (NR.execute nr Counter.Get)
            done)
      done;
      S.run sched;
      let all = Array.to_list results |> List.concat |> List.sort compare in
      all = List.init (threads * per_thread) (fun i -> i + 1))

(* --- skip list selection laws --- *)

module Sl = Nr_seqds.Skiplist.Make (Nr_seqds.Ordered.Int)

let sl_rank_nth_inverse =
  QCheck.Test.make ~count:200 ~name:"skiplist nth inverts rank"
    QCheck.(list (int_bound 500))
    (fun keys ->
      let t = Sl.create ~seed:3 () in
      List.iter (fun k -> ignore (Sl.insert t k k)) keys;
      let items = Sl.to_list t in
      List.for_all
        (fun (k, _) ->
          match Sl.rank t k with
          | Some r -> (
              match Sl.nth t r with
              | Some (k', _) -> k = k'
              | None -> false)
          | None -> false)
        items)

let sl_rank_counts_smaller =
  QCheck.Test.make ~count:200 ~name:"skiplist rank = #smaller keys"
    QCheck.(pair (list (int_bound 300)) (int_bound 300))
    (fun (keys, probe) ->
      let t = Sl.create ~seed:5 () in
      List.iter (fun k -> ignore (Sl.insert t k k)) keys;
      let distinct = List.sort_uniq compare keys in
      match Sl.rank t probe with
      | Some r -> r = List.length (List.filter (fun k -> k < probe) distinct)
      | None -> not (List.mem probe distinct))

(* --- RESP never crashes on junk and parses its own output --- *)

let resp_fuzz =
  QCheck.Test.make ~count:500 ~name:"resp parser total on junk"
    QCheck.(string_of_size (QCheck.Gen.int_bound 64))
    (fun junk ->
      match Nr_kvstore.Resp.parse_request junk with
      | Nr_kvstore.Resp.Parsed _ | Nr_kvstore.Resp.Incomplete
      | Nr_kvstore.Resp.Invalid _ ->
          true)

let resp_roundtrip =
  QCheck.Test.make ~count:300 ~name:"resp request roundtrip"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 6) (string_of_size (QCheck.Gen.int_bound 20)))
    (fun tokens ->
      match Nr_kvstore.Resp.parse_request (Nr_kvstore.Resp.encode_request tokens) with
      | Nr_kvstore.Resp.Parsed (tokens', _) -> tokens = tokens'
      | _ -> false)

(* --- memory-model invariants under random access sequences --- *)

let access_gen =
  QCheck.Gen.(
    triple (int_bound 3) (int_bound 55)
      (oneofl [ Nr_sim.Mem.Read; Nr_sim.Mem.Write; Nr_sim.Mem.Cas ]))

let mem_invariants =
  QCheck.Test.make ~count:300 ~name:"memory model line-state invariants"
    (QCheck.make
       QCheck.Gen.(list_size (int_bound 60) access_gen)
       ~print:(fun l -> Printf.sprintf "<%d accesses>" (List.length l)))
    (fun accesses ->
      let topo = T.intel in
      let costs = Nr_sim.Costs.default in
      let st = Nr_sim.Sim_stats.create () in
      let line = Nr_sim.Mem.line ~home:0 in
      let now = ref 0 in
      List.for_all
        (fun (node, core_raw, kind) ->
          let core = (node * 14) + (core_raw mod 14) in
          let fin =
            Nr_sim.Mem.access topo costs st ~node ~core ~now:!now line kind
          in
          let monotone = fin >= !now in
          now := fin;
          let owner_ok =
            line.Nr_sim.Mem.owner = -1
            || line.Nr_sim.Mem.sharers = 1 lsl line.Nr_sim.Mem.owner
          in
          let writer_owns =
            match kind with
            | Nr_sim.Mem.Write | Nr_sim.Mem.Cas ->
                line.Nr_sim.Mem.owner = node
            | Nr_sim.Mem.Read -> line.Nr_sim.Mem.sharers land (1 lsl node) <> 0
          in
          monotone && owner_ok && writer_owns)
        accesses)

(* --- zipf statistics --- *)

let zipf_head_mass =
  QCheck.Test.make ~count:20 ~name:"zipf 1.5 concentrates on the head"
    (QCheck.make QCheck.Gen.(int_range 100 5000) ~print:string_of_int)
    (fun n ->
      let z = Nr_workload.Zipf.create ~theta:1.5 ~n () in
      (* the top 5% of ranks carry most of the mass for theta=1.5 *)
      let top = max 1 (n / 20) in
      let mass = ref 0.0 in
      for k = 0 to top - 1 do
        mass := !mass +. Nr_workload.Zipf.pmf z k
      done;
      !mass > 0.5)

let zipf_mass_sums_to_one =
  QCheck.Test.make ~count:20 ~name:"zipf pmf sums to ~1"
    (QCheck.make
       QCheck.Gen.(pair (int_range 10 3000) (oneofl [ 0.5; 0.99; 1.5 ]))
       ~print:(fun (n, th) -> Printf.sprintf "n=%d theta=%g" n th))
    (fun (n, theta) ->
      let z = Nr_workload.Zipf.create ~theta ~n () in
      let mass = ref 0.0 in
      for k = 0 to n - 1 do
        mass := !mass +. Nr_workload.Zipf.pmf z k
      done;
      Float.abs (!mass -. 1.0) < 1e-9)

let key_dist_in_range =
  QCheck.Test.make ~count:100 ~name:"key_dist samples stay in [0, n)"
    (QCheck.make
       QCheck.Gen.(triple (int_range 1 2000) bool (int_bound 1000))
       ~print:(fun (n, zipfian, seed) ->
         Printf.sprintf "n=%d zipf=%b seed=%d" n zipfian seed))
    (fun (n, zipfian, seed) ->
      let d =
        if zipfian then Nr_workload.Key_dist.zipf ~n ()
        else Nr_workload.Key_dist.uniform n
      in
      let rng = Nr_workload.Prng.create ~seed in
      Nr_workload.Key_dist.space d = n
      && List.for_all
           (fun _ ->
             let k = Nr_workload.Key_dist.sample d rng in
             k >= 0 && k < n)
           (List.init 200 Fun.id))

(* --- router hash: pure function of (seed, key) --- *)

let router_hash_stable =
  QCheck.Test.make ~count:300 ~name:"router hash stable and in shard range"
    (QCheck.make
       QCheck.Gen.(
         triple (int_bound 0xFFFF)
           (string_size (int_bound 32))
           (int_range 1 16))
       ~print:(fun (seed, k, s) ->
         Printf.sprintf "seed=%d key=%S shards=%d" seed k s))
    (fun (seed, key, shards) ->
      let h = Nr_shard.Router.hash ~seed key in
      let r = Nr_shard.Router.create ~shards ~seed () in
      let r' = Nr_shard.Router.create ~shards ~seed () in
      h = Nr_shard.Router.hash ~seed key
      && h >= 0
      && Nr_shard.Router.shard_of r key = Nr_shard.Router.shard_of r' key
      && Nr_shard.Router.shard_of r key >= 0
      && Nr_shard.Router.shard_of r key < shards)

(* --- RESP replies and commands decode back to themselves --- *)

let reply_gen =
  QCheck.Gen.(
    let module C = Nr_kvstore.Command in
    (* Err text travels on a CRLF-terminated line, so keep it line-safe;
       Bulk is length-prefixed and may carry anything. *)
    let line = string_size ~gen:(char_range 'a' 'z') (int_bound 12) in
    let scalar =
      frequency
        [
          (1, return C.Ok_reply);
          (1, return C.Pong);
          (2, map (fun n -> C.Int n) int);
          (3, map (fun s -> C.Bulk s) (string_size (int_bound 16)));
          (2, return C.Nil);
          (1, map (fun s -> C.Err s) line);
        ]
    in
    (* depth 2 nests arrays inside arrays — the EXEC reply shape: a
       transaction whose body contains ZRANGE/MGET answers comes back as
       an array of arrays *)
    let rec tree depth =
      if depth = 0 then scalar
      else
        frequency
          [
            (4, scalar);
            (1, map (fun rs -> C.Array rs) (list_size (int_bound 4) (tree (depth - 1))));
          ]
    in
    tree 2)

let reply_roundtrip =
  QCheck.Test.make ~count:300 ~name:"resp reply roundtrip"
    (QCheck.make reply_gen ~print:(fun r ->
         String.escaped (Nr_kvstore.Resp.encode_reply r)))
    (fun r ->
      let s = Nr_kvstore.Resp.encode_reply r in
      match Nr_kvstore.Resp.parse_reply s with
      | Nr_kvstore.Resp.RParsed (r', consumed) ->
          r = r' && consumed = String.length s
      | _ -> false)

(* Replication ships whole store images inside one bulk ([FULLRESYNC]
   dumps, [CONTINUE] frame batches), so the reply encoder must stay
   binary-safe and linear well past ordinary reply sizes. *)
let big_bulk_roundtrip =
  QCheck.Test.make ~count:12 ~name:"resp bulk binary-safe at snapshot sizes"
    (QCheck.make
       QCheck.Gen.(
         let* n = oneofl [ 1 lsl 10; 1 lsl 16; 1 lsl 20 ] in
         string_size (return n))
       ~print:(fun s -> Printf.sprintf "<%d bytes>" (String.length s)))
    (fun s ->
      let module C = Nr_kvstore.Command in
      let r = C.Array [ C.Bulk "CONTINUE"; C.Int 7; C.Bulk s ] in
      let wire = Nr_kvstore.Resp.encode_reply r in
      match Nr_kvstore.Resp.parse_reply wire with
      | Nr_kvstore.Resp.RParsed (r', consumed) ->
          r = r' && consumed = String.length wire
      | _ -> false)

let command_gen =
  QCheck.Gen.(
    let module C = Nr_kvstore.Command in
    let key = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
    let value = string_size (int_bound 12) in
    oneof
      [
        return C.Ping;
        return C.Sync;
        map (fun n -> C.Psync n) int;
        map (fun k -> C.Get k) key;
        map2 (fun k v -> C.Set (k, v)) key value;
        map (fun k -> C.Del k) key;
        map (fun k -> C.Exists k) key;
        map (fun k -> C.Incr k) key;
        map2 (fun k n -> C.Incrby (k, n)) key int;
        map3 (fun k s m -> C.Zadd (k, s, m)) key int int;
        map3 (fun k d m -> C.Zincrby (k, d, m)) key int int;
        map2 (fun k m -> C.Zrank (k, m)) key int;
        map2 (fun k m -> C.Zscore (k, m)) key int;
        map (fun k -> C.Zcard k) key;
        map3 (fun k a b -> C.Zrange (k, a, b)) key int int;
        map2 (fun k m -> C.Zrem (k, m)) key int;
        map (fun ks -> C.Mget ks) (list_size (int_range 1 5) key);
        map
          (fun ps -> C.Mset ps)
          (list_size (int_range 1 5) (pair key value));
        return C.Dbsize;
        return C.Flushall;
        return C.Slowlog_get;
        return C.Slowlog_reset;
        return C.Slowlog_len;
        map2 (fun n ms -> C.Wait (n, ms)) (int_bound 16) (int_bound 10_000);
        map2 (fun id seq -> C.Replack (id, seq)) key nat;
        return C.Multi;
        return C.Exec;
        return C.Discard;
        map (fun k -> C.Watch k) key;
        return C.Unwatch;
        map2 (fun k s -> C.Expire (k, s)) key nat;
        map2 (fun k ms -> C.Pexpire (k, ms)) key nat;
        map2 (fun k d -> C.Pexpireat (k, d)) key nat;
        map (fun k -> C.Ttl k) key;
        map (fun k -> C.Pttl k) key;
        map (fun k -> C.Persist k) key;
        map (fun k -> C.Getver k) key;
        map2 (fun k v -> C.Setver (k, v)) key nat;
        map (fun ms -> C.Tick ms) nat;
        map2 (fun k d -> C.Expire_evict (k, d)) key nat;
        map
          (fun ws -> C.Txn_test ws)
          (list_size (int_range 1 3) (pair key nat));
        (* one level of nesting: bodies are plain commands, the codec's
           count-prefixed token framing must delimit them unambiguously *)
        map2
          (fun ws body -> C.Txn (ws, body))
          (list_size (int_bound 2) (pair key nat))
          (list_size (int_range 1 4)
             (oneof
                [
                  map (fun k -> C.Get k) key;
                  map2 (fun k v -> C.Set (k, v)) key value;
                  map (fun k -> C.Del k) key;
                  map2 (fun k d -> C.Pexpireat (k, d)) key nat;
                  map (fun ks -> C.Mget ks) (list_size (int_range 1 3) key);
                ]));
      ])

let command_roundtrip =
  QCheck.Test.make ~count:300 ~name:"command to_strings/of_strings roundtrip"
    (QCheck.make command_gen ~print:(fun c ->
         String.concat " " (Nr_kvstore.Command.to_strings c)))
    (fun c ->
      Nr_kvstore.Command.of_strings (Nr_kvstore.Command.to_strings c) = Ok c)

(* --- every constructor: wire roundtrip + classification coherence ---

   [Command.exemplars] has one value per constructor, so this pins two
   table-driven totality facts for the whole command alphabet at once:
   the wire codec inverts itself, and the derived predicates
   ([is_read_only], [is_server_local], the kv_server READONLY gate) stay
   consistent views of the single [class_of] classification. *)

let exemplar_totality () =
  let module C = Nr_kvstore.Command in
  List.iter
    (fun c ->
      let name = Format.asprintf "%a" C.pp c in
      Alcotest.(check bool)
        (name ^ " wire roundtrip") true
        (C.of_strings (C.to_strings c) = Ok c);
      (* is_read_only / is_server_local are projections of class_of *)
      let cls = C.class_of c in
      Alcotest.(check bool)
        (name ^ " read-only derives from class") true
        (C.is_read_only c = (cls <> C.Write));
      Alcotest.(check bool)
        (name ^ " server-local derives from class") true
        (C.is_server_local c
        = (cls = C.Server_local || cls = C.Session_state));
      (* the replica write gate refuses exactly the logged commands *)
      Alcotest.(check bool)
        (name ^ " READONLY gate = not read-only") true
        ((not (C.is_read_only c)) = (cls = C.Write)))
    C.exemplars;
  (* a transaction is logged iff its body writes *)
  let module C = Nr_kvstore.Command in
  Alcotest.(check bool)
    "all-read txn takes the read path" true
    (C.class_of (C.Txn ([], [ C.Get "a"; C.Mget [ "b" ] ])) = C.Read);
  Alcotest.(check bool)
    "writing txn is logged" false
    (C.is_read_only (C.Txn ([], [ C.Get "a"; C.Set ("b", "1") ])))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      nr_config_linearizable;
      sl_rank_nth_inverse;
      sl_rank_counts_smaller;
      resp_fuzz;
      resp_roundtrip;
      mem_invariants;
      zipf_head_mass;
      zipf_mass_sums_to_one;
      key_dist_in_range;
      router_hash_stable;
      reply_roundtrip;
      big_bulk_roundtrip;
      command_roundtrip;
    ]
  @ [
      Alcotest.test_case "command exemplar totality" `Quick exemplar_totality;
    ]

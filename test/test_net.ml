(* Network front-end tests: the Chase–Lev run-queue deque, the seeded
   work-stealing scheduler, the four server bugfix regressions
   (write_all truncation, O(n^2) pipelining, accept-error policy,
   double shutdown), the evloop serving mode end-to-end — including a
   1k-concurrent-connection smoke and a linearizability check of
   histories recorded through the evloop — and the pool-mode golden
   reply bytes the evloop must reproduce. *)

open Nr_kvstore
module Deque = Nr_net.Deque
module Sched = Nr_net.Sched
module Evloop = Nr_net.Evloop

(* --- deque ---------------------------------------------------------- *)

let test_deque_basic () =
  let d = Deque.create ~size_exp:4 () in
  Alcotest.(check bool) "empty" true (Deque.is_empty d);
  Alcotest.(check int) "capacity" 16 (Deque.capacity d);
  Alcotest.(check bool) "push 1" true (Deque.push d 1);
  Alcotest.(check bool) "push 2" true (Deque.push d 2);
  Alcotest.(check bool) "push 3" true (Deque.push d 3);
  Alcotest.(check int) "length" 3 (Deque.length d);
  (* owner pops LIFO *)
  Alcotest.(check (option int)) "pop lifo" (Some 3) (Deque.pop d);
  (* thieves steal FIFO *)
  Alcotest.(check (option int)) "steal fifo" (Some 1) (Deque.steal d);
  Alcotest.(check (option int)) "pop last" (Some 2) (Deque.pop d);
  Alcotest.(check (option int)) "pop empty" None (Deque.pop d);
  Alcotest.(check (option int)) "steal empty" None (Deque.steal d)

let test_deque_full () =
  let d = Deque.create ~size_exp:2 () in
  for i = 1 to 4 do
    Alcotest.(check bool) (Printf.sprintf "push %d" i) true (Deque.push d i)
  done;
  Alcotest.(check bool) "push refused at capacity" false (Deque.push d 5);
  ignore (Deque.steal d);
  Alcotest.(check bool) "push after steal" true (Deque.push d 5)

(* Sequential model check: against a reference deque, any interleaving of
   owner pushes/pops and (single-threaded) steals agrees. *)
let deque_model_test =
  QCheck.Test.make ~name:"deque sequential model" ~count:300
    QCheck.(list (int_range 0 2))
    (fun script ->
      let d = Deque.create ~size_exp:8 () in
      let model = ref [] in
      (* model: list with head = bottom (owner end), tail = top *)
      let next = ref 0 in
      List.for_all
        (fun action ->
          match action with
          | 0 ->
              incr next;
              let pushed = Deque.push d !next in
              if pushed then model := !next :: !model;
              pushed || List.length !model >= 256
          | 1 -> (
              let got = Deque.pop d in
              match (!model, got) with
              | [], None -> true
              | x :: tl, Some y when x = y ->
                  model := tl;
                  true
              | _ -> false)
          | _ -> (
              let got = Deque.steal d in
              match (List.rev !model, got) with
              | [], None -> true
              | x :: tl, Some y when x = y ->
                  model := List.rev tl;
                  true
              | _ -> false))
        script)

(* Concurrency: one owner pushing + popping, several thieves stealing;
   every pushed value is consumed exactly once. *)
let test_deque_concurrent_steal () =
  let d = Deque.create ~size_exp:10 () in
  let n = 20_000 in
  let thieves = 3 in
  let stop = Atomic.make false in
  let stolen = Array.init thieves (fun _ -> ref []) in
  let thief slot () =
    while not (Atomic.get stop) do
      match Deque.steal d with
      | Some v -> slot := v :: !slot
      | None -> Domain.cpu_relax ()
    done;
    (* final sweep so nothing is left behind *)
    let rec sweep () =
      match Deque.steal d with
      | Some v ->
          slot := v :: !slot;
          sweep ()
      | None -> ()
    in
    sweep ()
  in
  let doms = Array.init thieves (fun i -> Domain.spawn (thief stolen.(i))) in
  let popped = ref [] in
  let i = ref 1 in
  while !i <= n do
    if Deque.push d !i then incr i else Domain.cpu_relax ();
    (* owner occasionally takes from its own end too *)
    if !i mod 7 = 0 then
      match Deque.pop d with
      | Some v -> popped := v :: !popped
      | None -> ()
  done;
  Atomic.set stop true;
  Array.iter Domain.join doms;
  let all =
    List.concat (!popped :: Array.to_list (Array.map (fun r -> !r) stolen))
  in
  Alcotest.(check int) "every value consumed exactly once" n (List.length all);
  let sorted = List.sort compare all in
  let expected = List.init n (fun i -> i + 1) in
  Alcotest.(check bool) "no duplicates, no losses" true (sorted = expected)

(* --- scheduler ------------------------------------------------------ *)

let test_sched_runs_jobs () =
  let s = Sched.create ~domains:2 ~nodes:2 () in
  let hits = Atomic.make 0 in
  for i = 0 to 99 do
    Sched.submit s ~node:(i mod 2) (fun () -> Atomic.incr hits)
  done;
  (* one raising job: counted as failed, worker survives *)
  Sched.submit s ~node:0 (fun () -> failwith "boom");
  Sched.submit s ~node:0 (fun () -> Atomic.incr hits);
  Sched.shutdown s;
  Alcotest.(check int) "all jobs ran" 101 (Atomic.get hits);
  let st = Sched.stats s in
  Alcotest.(check int) "executed" 102 st.Sched.executed;
  Alcotest.(check int) "failed" 1 st.Sched.failed

let test_sched_shutdown_idempotent () =
  let s = Sched.create ~domains:2 ~nodes:1 () in
  Sched.submit s ~node:0 (fun () -> ());
  Sched.shutdown s;
  Sched.shutdown s;
  (* concurrent double shutdown from fresh domains must not raise either *)
  let s2 = Sched.create ~domains:1 ~nodes:1 () in
  let d1 = Domain.spawn (fun () -> Sched.shutdown s2) in
  let d2 = Domain.spawn (fun () -> Sched.shutdown s2) in
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check bool) "submit refused after shutdown" true
    (match Sched.submit s ~node:0 (fun () -> ()) with
    | () -> false
    | exception Invalid_argument _ -> true)

(* Determinism: with ~autostart:false every submission lands before any
   worker moves, so a single worker's execution order — home queue first,
   then steals in the seeded victim rotation — is a pure function of the
   seed.  Same seed, same order; and jobs on foreign nodes are stolen. *)
let run_sched_schedule ~seed =
  let s =
    Sched.create ~seed ~autostart:false ~domains:1 ~nodes:3 ()
  in
  let order = ref [] in
  let m = Mutex.create () in
  for i = 0 to 29 do
    Sched.submit s ~node:(i mod 3) (fun () ->
        Mutex.lock m;
        order := i :: !order;
        Mutex.unlock m)
  done;
  Sched.start s;
  Sched.shutdown s;
  let st = Sched.stats s in
  (List.rev !order, st.Sched.stolen)

let test_sched_deterministic_steals () =
  let o1, stolen1 = run_sched_schedule ~seed:42 in
  let o2, stolen2 = run_sched_schedule ~seed:42 in
  Alcotest.(check (list int)) "same seed, same execution order" o1 o2;
  Alcotest.(check int) "same seed, same steal count" stolen1 stolen2;
  Alcotest.(check int) "every job ran" 30 (List.length o1);
  Alcotest.(check bool) "foreign-node jobs were stolen" true (stolen1 > 0)

(* --- write_all (reply truncation regression) ------------------------ *)

(* The old write_all treated a 0-byte write as completion and let EINTR
   kill the connection.  Drive the new one with an injected write that
   exercises short writes, a zero-byte return and EINTR, and assert the
   whole buffer still goes out, in order. *)
let test_write_all_injected () =
  let sent = Buffer.create 64 in
  let step = ref 0 in
  let script = [| 3; -1 (* EINTR *); 0 (* no progress *); 5; 100 |] in
  let fake_write _fd bytes off len =
    let action =
      if !step < Array.length script then script.(!step) else max_int
    in
    incr step;
    match action with
    | -1 -> raise (Unix.Unix_error (Unix.EINTR, "write", ""))
    | k ->
        let n = min (min k len) 7 in
        (* cap so the tail takes several calls *)
        let n = if k = 100 then min len 7 else n in
        Buffer.add_subbytes sent bytes off n;
        n
  in
  let payload = Bytes.init 64 (fun i -> Char.chr (65 + (i mod 26))) in
  Server.write_all ~write:fake_write Unix.stdout payload;
  Alcotest.(check string) "all bytes, in order" (Bytes.to_string payload)
    (Buffer.contents sent);
  Alcotest.(check bool) "zero-byte write was retried" true (!step > 5)

let test_write_all_raises_on_real_error () =
  let fake_write _ _ _ _ = raise (Unix.Unix_error (Unix.EPIPE, "write", "")) in
  Alcotest.(check bool) "EPIPE propagates" true
    (match Server.write_all ~write:fake_write Unix.stdout (Bytes.create 8) with
    | () -> false
    | exception Unix.Unix_error (Unix.EPIPE, _, _) -> true)

(* Same bug through a real kernel path: a socketpair with a tiny send
   buffer forces many short writes; a slow reader drains.  Every byte
   must arrive, in order. *)
let test_write_all_tiny_sndbuf () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.setsockopt_int a Unix.SO_SNDBUF 4096
   with Unix.Unix_error _ -> ());
  let n = 1 lsl 20 in
  let payload = Bytes.init n (fun i -> Char.chr (i land 0xff)) in
  let received = Buffer.create n in
  let reader =
    Thread.create
      (fun () ->
        let chunk = Bytes.create 8192 in
        let rec go () =
          let k = Unix.read b chunk 0 8192 in
          if k > 0 then begin
            Buffer.add_subbytes received chunk 0 k;
            (* keep the writer bumping into a full buffer *)
            if Buffer.length received mod 65536 < 8192 then Thread.delay 0.001;
            go ()
          end
        in
        (try go () with Unix.Unix_error _ -> ());
        Unix.close b)
      ()
  in
  Server.write_all a payload;
  Unix.shutdown a Unix.SHUTDOWN_SEND;
  Thread.join reader;
  Unix.close a;
  Alcotest.(check int) "length" n (Buffer.length received);
  Alcotest.(check bool) "content identical" true
    (Buffer.contents received = Bytes.to_string payload)

(* --- accept-error policy -------------------------------------------- *)

let test_accept_error_policy () =
  let check name err expect =
    Alcotest.(check bool) name true (Server.accept_error_policy err = expect)
  in
  check "EBADF stops" Unix.EBADF `Stop;
  check "EINVAL stops" Unix.EINVAL `Stop;
  check "EMFILE backs off" Unix.EMFILE (`Backoff 0.05);
  check "ENFILE backs off" Unix.ENFILE (`Backoff 0.05);
  check "ECONNABORTED survived" Unix.ECONNABORTED `Ignore;
  check "ENOBUFS survived" Unix.ENOBUFS `Ignore;
  check "EINTR survived" Unix.EINTR `Ignore

(* --- server helpers ------------------------------------------------- *)

let with_server ?obs ?(net = Server.Pool) ?(nodes = 1) ?(workers = 2) exec f =
  let server = Server.create ?obs ~net ~nodes ~port:0 ~workers exec in
  let port = Server.port server in
  let serve_thread = Thread.create (fun () -> Server.serve server) () in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown server;
      Thread.join serve_thread)
    (fun () -> f server port)

let connect port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  sock

let read_exactly sock n =
  let buf = Bytes.create n in
  let rec go off =
    if off < n then begin
      let k = Unix.read sock buf off (n - off) in
      if k = 0 then failwith "unexpected EOF";
      go (off + k)
    end
  in
  go 0;
  Bytes.to_string buf

let store_exec () =
  let store = Store.create () in
  let m = Mutex.create () in
  fun cmd ->
    Mutex.lock m;
    let r = Store.execute store cmd in
    Mutex.unlock m;
    r

(* --- O(n^2) pipelining regression ----------------------------------- *)

(* 10k INCRs pipelined in one burst: replies must come back complete and
   in submission order (:1 ... :10000).  Before the fix the drain loop
   rebuilt the buffer per request (quadratic) and could truncate replies. *)
let pipelined_burst_expected n =
  let b = Buffer.create (n * 8) in
  for i = 1 to n do
    Buffer.add_string b (Printf.sprintf ":%d\r\n" i)
  done;
  Buffer.contents b

let run_pipelined_burst ~net () =
  let n = 10_000 in
  with_server ~net (store_exec ()) (fun _server port ->
      let sock = connect port in
      let req = Buffer.create (n * 32) in
      for _ = 1 to n do
        Buffer.add_string req (Resp.encode_request [ "INCR"; "ctr" ])
      done;
      let payload = Bytes.of_string (Buffer.contents req) in
      let expected = pipelined_burst_expected n in
      (* reply reader runs concurrently so neither side's socket buffer
         deadlocks the burst *)
      let got = ref "" in
      let reader =
        Thread.create
          (fun () -> got := read_exactly sock (String.length expected))
          ()
      in
      Server.write_all sock payload;
      Thread.join reader;
      Unix.close sock;
      Alcotest.(check int) "reply byte count" (String.length expected)
        (String.length !got);
      Alcotest.(check bool) "replies complete and in order" true
        (!got = expected))

let test_pipelined_burst_pool () = run_pipelined_burst ~net:Server.Pool ()
let test_pipelined_burst_evloop () = run_pipelined_burst ~net:Server.Evloop ()

(* --- double shutdown ------------------------------------------------ *)

let test_thread_pool_double_shutdown () =
  let pool = Thread_pool.create ~workers:2 () in
  let hits = Atomic.make 0 in
  Thread_pool.submit pool (fun () -> Atomic.incr hits);
  Thread_pool.shutdown pool;
  (* second call must be a no-op, not a double Domain.join *)
  Thread_pool.shutdown pool;
  (* concurrent callers: one joins, the other waits *)
  let pool2 = Thread_pool.create ~workers:2 () in
  let d1 = Domain.spawn (fun () -> Thread_pool.shutdown pool2) in
  let d2 = Domain.spawn (fun () -> Thread_pool.shutdown pool2) in
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check int) "job ran before close" 1 (Atomic.get hits)

let run_server_double_shutdown ~net () =
  let server = Server.create ~net ~port:0 ~workers:2 (fun _ -> Command.Pong) in
  let port = Server.port server in
  let serve_thread = Thread.create (fun () -> Server.serve server) () in
  let sock = connect port in
  let out = Bytes.of_string (Resp.encode_request [ "PING" ]) in
  Server.write_all sock out;
  Alcotest.(check string) "served before shutdown" "+PONG\r\n"
    (read_exactly sock 7);
  Server.shutdown server;
  Server.shutdown server;
  (* and once more from another domain, racing nothing *)
  let d = Domain.spawn (fun () -> Server.shutdown server) in
  Domain.join d;
  Thread.join serve_thread;
  Unix.close sock

let test_server_double_shutdown_pool () =
  run_server_double_shutdown ~net:Server.Pool ()

let test_server_double_shutdown_evloop () =
  run_server_double_shutdown ~net:Server.Evloop ()

(* --- evloop end-to-end ---------------------------------------------- *)

let test_evloop_basic_commands () =
  with_server ~net:Server.Evloop (store_exec ()) (fun _server port ->
      let sock = connect port in
      Server.write_all sock (Bytes.of_string (Resp.encode_request [ "PING" ]));
      Alcotest.(check string) "pong" "+PONG\r\n" (read_exactly sock 7);
      Server.write_all sock
        (Bytes.of_string (Resp.encode_request [ "SET"; "k"; "v" ]));
      Alcotest.(check string) "set" "+OK\r\n" (read_exactly sock 5);
      Server.write_all sock
        (Bytes.of_string (Resp.encode_request [ "GET"; "k" ]));
      Alcotest.(check string) "get" "$1\r\nv\r\n" (read_exactly sock 7);
      Unix.close sock)

(* A protocol error mid-stream: the parsed prefix is answered, the error
   is reported, and the connection closes. *)
let test_evloop_protocol_error_closes () =
  with_server ~net:Server.Evloop (store_exec ()) (fun _server port ->
      let sock = connect port in
      Server.write_all sock
        (Bytes.of_string (Resp.encode_request [ "PING" ] ^ "*1\r\n:nope\r\n"));
      Alcotest.(check string) "prefix answered" "+PONG\r\n"
        (read_exactly sock 7);
      let buf = Bytes.create 256 in
      let n = Unix.read sock buf 0 256 in
      let reply = Bytes.sub_string buf 0 n in
      Alcotest.(check bool) "protocol error reported" true
        (String.length reply >= 4 && String.sub reply 0 4 = "-ERR");
      (* then EOF *)
      Alcotest.(check int) "closed" 0 (Unix.read sock buf 0 256);
      Unix.close sock)

(* Many concurrent connections, all alive at once, each answered.  This
   is what the pool fundamentally cannot do (it holds [workers]
   connections) and the reason the evloop exists.  Sized to the poller:
   1k+ needs epoll; under the select fallback stay below FD_SETSIZE. *)
let test_evloop_concurrent_connections () =
  with_server ~net:Server.Evloop ~workers:2
    (fun _ -> Command.Pong)
    (fun server port ->
      (* size by poller backend: 1k+ concurrent fds needs epoll; the
         select fallback caps the whole loop at FD_SETSIZE *)
      let n =
        let p = Nr_net.Poller.create () in
        let b = Nr_net.Poller.backend p in
        Nr_net.Poller.close p;
        match b with Nr_net.Poller.Epoll -> 1000 | Nr_net.Poller.Select -> 200
      in
      let socks = Array.init n (fun _ -> connect port) in
      (* every socket connected and held open simultaneously *)
      Array.iter
        (fun s ->
          Server.write_all s (Bytes.of_string (Resp.encode_request [ "PING" ])))
        socks;
      Array.iter
        (fun s ->
          Alcotest.(check string) "pong" "+PONG\r\n" (read_exactly s 7))
        socks;
      let st = Server.stats server in
      Alcotest.(check bool)
        (Printf.sprintf "accepted all (%d)" st.Server.ev_conns)
        true
        (st.Server.ev_conns >= n);
      Array.iter Unix.close socks)

(* --- linearizability through the evloop ----------------------------- *)

(* Four client threads hammer two keys through the evloop front end over
   real TCP; each records (invocation ns, reply, return ns).  The merged
   history must be linearizable against the sequential KV spec — the
   batched scheduler path must not reorder a connection's requests or
   lose a write. *)
let test_evloop_lincheck () =
  let module H = Nr_check.History in
  let module W = Nr_check.Wgl.Make (Nr_check.Spec.Kv) in
  with_server ~net:Server.Evloop ~nodes:2 (store_exec ()) (fun _server port ->
      let nthreads = 4 in
      let per_thread = 40 in
      let recs = Array.make nthreads [] in
      let clients =
        Array.init nthreads (fun tid ->
            Thread.create
              (fun () ->
                let rng = Random.State.make [| 0xC0FFEE + tid |] in
                let sock = connect port in
                let events = ref [] in
                for i = 0 to per_thread - 1 do
                  let key =
                    if Random.State.bool rng then "x" else "y"
                  in
                  let cmd =
                    match Random.State.int rng 4 with
                    | 0 -> Command.Get key
                    | 1 ->
                        Command.Set (key, Printf.sprintf "t%d.%d" tid i)
                    | 2 -> Command.Del key
                    | _ -> Command.Exists key
                  in
                  let inv = Nr_obs.Clock.now_ns () in
                  Server.write_all sock
                    (Bytes.of_string
                       (Resp.encode_request (Command.to_strings cmd)));
                  (* read exactly one reply *)
                  let b = Buffer.create 64 in
                  let chunk = Bytes.create 256 in
                  let rec read_reply () =
                    match Resp.parse_reply (Buffer.contents b) with
                    | Resp.RParsed (reply, _) -> reply
                    | Resp.RIncomplete ->
                        let k = Unix.read sock chunk 0 256 in
                        if k = 0 then failwith "EOF mid-reply";
                        Buffer.add_subbytes b chunk 0 k;
                        read_reply ()
                    | Resp.RInvalid m -> failwith m
                  in
                  let reply = read_reply () in
                  let ret = Nr_obs.Clock.now_ns () in
                  events :=
                    { H.tid; op = cmd; inv; res = Some reply; ret } :: !events
                done;
                Unix.close sock;
                recs.(tid) <- List.rev !events)
              ())
      in
      Array.iter Thread.join clients;
      let h = H.create () in
      Array.iter (fun evs -> List.iter (fun e -> H.push h e) evs) recs;
      match W.check ~budget:5_000_000 (H.events h) with
      | W.Linearizable -> ()
      | W.Violation _ -> Alcotest.fail "evloop history not linearizable"
      | W.Budget_exhausted -> Alcotest.fail "lincheck budget exhausted")

(* --- golden reply bytes: pool pinned, evloop identical -------------- *)

(* The scripted workload's exact reply bytes through the pool path — the
   zero-overhead guard that this PR left the default mode untouched —
   and the requirement that the evloop produces the same bytes for the
   same script. *)
let golden_script =
  [
    [ "PING" ];
    [ "SET"; "k"; "hello" ];
    [ "GET"; "k" ];
    [ "EXISTS"; "k" ];
    [ "INCR"; "n" ];
    [ "INCRBY"; "n"; "41" ];
    [ "MSET"; "a"; "1"; "b"; "2" ];
    [ "MGET"; "a"; "b"; "missing" ];
    [ "ZADD"; "z"; "10"; "7" ];
    [ "ZRANK"; "z"; "7" ];
    [ "DEL"; "k" ];
    [ "GET"; "k" ];
    [ "DBSIZE" ];
    [ "NOSUCH" ];
  ]

let golden_expected =
  "+PONG\r\n" ^ "+OK\r\n" ^ "$5\r\nhello\r\n" ^ ":1\r\n" ^ ":1\r\n" ^ ":42\r\n"
  ^ "+OK\r\n" ^ "*3\r\n$1\r\n1\r\n$1\r\n2\r\n$-1\r\n" ^ ":1\r\n" ^ ":0\r\n"
  ^ ":1\r\n" ^ "$-1\r\n" ^ ":4\r\n" ^ "-ERR unknown command \"nosuch\"\r\n"

let run_golden ~net () =
  with_server ~net (store_exec ()) (fun _server port ->
      let sock = connect port in
      let req = String.concat "" (List.map Resp.encode_request golden_script) in
      Server.write_all sock (Bytes.of_string req);
      let got = read_exactly sock (String.length golden_expected) in
      Unix.close sock;
      Alcotest.(check string) "reply bytes" golden_expected got)

let test_golden_pool () = run_golden ~net:Server.Pool ()
let test_golden_evloop () = run_golden ~net:Server.Evloop ()

let suite =
  [
    Alcotest.test_case "deque basic" `Quick test_deque_basic;
    Alcotest.test_case "deque full" `Quick test_deque_full;
    QCheck_alcotest.to_alcotest deque_model_test;
    Alcotest.test_case "deque concurrent steal" `Slow
      test_deque_concurrent_steal;
    Alcotest.test_case "sched runs jobs" `Slow test_sched_runs_jobs;
    Alcotest.test_case "sched shutdown idempotent" `Slow
      test_sched_shutdown_idempotent;
    Alcotest.test_case "sched deterministic steal schedule" `Slow
      test_sched_deterministic_steals;
    Alcotest.test_case "write_all injected short/zero/EINTR" `Quick
      test_write_all_injected;
    Alcotest.test_case "write_all raises on real error" `Quick
      test_write_all_raises_on_real_error;
    Alcotest.test_case "write_all tiny SNDBUF" `Slow test_write_all_tiny_sndbuf;
    Alcotest.test_case "accept error policy" `Quick test_accept_error_policy;
    Alcotest.test_case "pipelined burst in order (pool)" `Slow
      test_pipelined_burst_pool;
    Alcotest.test_case "pipelined burst in order (evloop)" `Slow
      test_pipelined_burst_evloop;
    Alcotest.test_case "thread pool double shutdown" `Slow
      test_thread_pool_double_shutdown;
    Alcotest.test_case "server double shutdown (pool)" `Slow
      test_server_double_shutdown_pool;
    Alcotest.test_case "server double shutdown (evloop)" `Slow
      test_server_double_shutdown_evloop;
    Alcotest.test_case "evloop basic commands" `Slow test_evloop_basic_commands;
    Alcotest.test_case "evloop protocol error closes" `Slow
      test_evloop_protocol_error_closes;
    Alcotest.test_case "evloop 1k concurrent connections" `Slow
      test_evloop_concurrent_connections;
    Alcotest.test_case "evloop linearizability" `Slow test_evloop_lincheck;
    Alcotest.test_case "golden reply bytes (pool pinned)" `Slow
      test_golden_pool;
    Alcotest.test_case "golden reply bytes (evloop identical)" `Slow
      test_golden_evloop;
  ]

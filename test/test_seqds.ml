(* Sequential data structure tests: skip list (with rank/span machinery),
   pairing heap, hash table, stack, queue, synthetic buffer.  Model-based
   property tests via qcheck compare each structure against a simple
   reference implementation. *)

module Sl = Nr_seqds.Skiplist.Make (Nr_seqds.Ordered.Int)
module Ph = Nr_seqds.Pairing_heap.Make (Nr_seqds.Ordered.Int)
module Ht = Nr_seqds.Hashtable

let check_valid name = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: invariant broken: %s" name e

(* --- skip list: units --- *)

let test_sl_basic () =
  let t = Sl.create ~seed:1 () in
  Alcotest.(check bool) "empty" true (Sl.is_empty t);
  Alcotest.(check bool) "insert new" true (Sl.insert t 5 50);
  Alcotest.(check bool) "insert dup" false (Sl.insert t 5 51);
  Alcotest.(check (option int)) "find" (Some 50) (Sl.find t 5);
  Alcotest.(check (option int)) "find absent" None (Sl.find t 6);
  Alcotest.(check int) "length" 1 (Sl.length t);
  Alcotest.(check (option int)) "remove" (Some 50) (Sl.remove t 5);
  Alcotest.(check (option int)) "remove absent" None (Sl.remove t 5);
  Alcotest.(check bool) "empty again" true (Sl.is_empty t);
  check_valid "basic" (Sl.validate t)

let test_sl_order () =
  let t = Sl.create ~seed:2 () in
  let keys = [ 9; 3; 7; 1; 5; 8; 2; 6; 4; 0 ] in
  List.iter (fun k -> ignore (Sl.insert t k (k * 10))) keys;
  Alcotest.(check (list (pair int int)))
    "sorted"
    (List.init 10 (fun i -> (i, i * 10)))
    (Sl.to_list t);
  check_valid "order" (Sl.validate t)

let test_sl_min () =
  let t = Sl.create ~seed:3 () in
  List.iter (fun k -> ignore (Sl.insert t k k)) [ 5; 2; 8 ];
  Alcotest.(check (option (pair int int))) "min" (Some (2, 2)) (Sl.min t);
  Alcotest.(check (option (pair int int)))
    "remove_min" (Some (2, 2)) (Sl.remove_min t);
  Alcotest.(check (option (pair int int))) "next min" (Some (5, 5)) (Sl.min t);
  check_valid "min" (Sl.validate t)

let test_sl_remove_min_drains_sorted () =
  let t = Sl.create ~seed:4 () in
  let rng = Nr_workload.Prng.create ~seed:99 in
  let keys = List.init 500 (fun _ -> Nr_workload.Prng.below rng 10_000) in
  List.iter (fun k -> ignore (Sl.insert t k k)) keys;
  let drained = ref [] in
  let rec drain () =
    match Sl.remove_min t with
    | Some (k, _) ->
        drained := k :: !drained;
        drain ()
    | None -> ()
  in
  drain ();
  let got = List.rev !drained in
  Alcotest.(check (list int)) "drained in order" (List.sort_uniq compare keys) got;
  check_valid "drained" (Sl.validate t)

let test_sl_rank_and_nth () =
  let t = Sl.create ~seed:5 () in
  for i = 0 to 99 do
    ignore (Sl.insert t (2 * i) i)
  done;
  for i = 0 to 99 do
    Alcotest.(check (option int))
      (Printf.sprintf "rank of %d" (2 * i))
      (Some i)
      (Sl.rank t (2 * i));
    match Sl.nth t i with
    | Some (k, _) -> Alcotest.(check int) "nth key" (2 * i) k
    | None -> Alcotest.failf "nth %d missing" i
  done;
  Alcotest.(check (option int)) "rank absent" None (Sl.rank t 1);
  Alcotest.(check bool) "nth out of range" true (Sl.nth t 100 = None);
  Alcotest.(check bool) "nth negative" true (Sl.nth t (-1) = None)

let test_sl_set () =
  let t = Sl.create ~seed:6 () in
  Sl.set t 1 10;
  Sl.set t 1 20;
  Alcotest.(check (option int)) "set overwrites" (Some 20) (Sl.find t 1);
  Alcotest.(check int) "no duplicate" 1 (Sl.length t)

let test_sl_determinism () =
  (* identical op sequences on identically-seeded lists produce identical
     structures — required by NR's replica contract *)
  let build () =
    let t = Sl.create ~seed:7 () in
    for i = 0 to 999 do
      ignore (Sl.insert t ((i * 37) mod 1000) i)
    done;
    for i = 0 to 299 do
      ignore (Sl.remove t ((i * 11) mod 1000))
    done;
    t
  in
  let a = build () and b = build () in
  Alcotest.(check (list (pair int int)))
    "identical replicas" (Sl.to_list a) (Sl.to_list b)

(* --- skip list: qcheck model test --- *)

type sl_op = Ins of int * int | Rem of int | Find of int | RemMin

let sl_op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun k v -> Ins (k, v)) (int_bound 50) (int_bound 1000));
        (3, map (fun k -> Rem k) (int_bound 50));
        (2, map (fun k -> Find k) (int_bound 50));
        (1, return RemMin);
      ])

let pp_sl_op = function
  | Ins (k, v) -> Printf.sprintf "Ins(%d,%d)" k v
  | Rem k -> Printf.sprintf "Rem %d" k
  | Find k -> Printf.sprintf "Find %d" k
  | RemMin -> "RemMin"

let sl_model_test =
  QCheck.Test.make ~count:300 ~name:"skiplist vs sorted-assoc model"
    (QCheck.make
       QCheck.Gen.(list_size (int_bound 200) sl_op_gen)
       ~print:(fun ops -> String.concat ";" (List.map pp_sl_op ops)))
    (fun ops ->
      let t = Sl.create ~seed:11 () in
      let model = ref [] in
      List.iter
        (fun op ->
          match op with
          | Ins (k, v) ->
              let added = Sl.insert t k v in
              let expected = not (List.mem_assoc k !model) in
              if added <> expected then QCheck.Test.fail_report "insert result";
              if added then model := List.sort compare ((k, v) :: !model)
          | Rem k ->
              let r = Sl.remove t k in
              let expected = List.assoc_opt k !model in
              if r <> expected then QCheck.Test.fail_report "remove result";
              model := List.remove_assoc k !model
          | Find k ->
              if Sl.find t k <> List.assoc_opt k !model then
                QCheck.Test.fail_report "find result"
          | RemMin -> (
              let r = Sl.remove_min t in
              match (!model, r) with
              | [], None -> ()
              | (mk, mv) :: rest, Some (k, v) when k = mk && v = mv ->
                  model := rest
              | _ -> QCheck.Test.fail_report "remove_min result"))
        ops;
      (match Sl.validate t with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_report e);
      Sl.to_list t = !model)

(* --- pairing heap --- *)

let test_ph_basic () =
  let t = Ph.create () in
  Alcotest.(check bool) "empty" true (Ph.is_empty t);
  Ph.insert t 5 "five";
  Ph.insert t 2 "two";
  Ph.insert t 8 "eight";
  Alcotest.(check (option (pair int string)))
    "find_min" (Some (2, "two")) (Ph.find_min t);
  Alcotest.(check (option (pair int string)))
    "remove_min" (Some (2, "two")) (Ph.remove_min t);
  Alcotest.(check int) "length" 2 (Ph.length t);
  check_valid "ph basic" (Ph.validate t)

let test_ph_duplicates () =
  let t = Ph.create () in
  Ph.insert t 1 "a";
  Ph.insert t 1 "b";
  Alcotest.(check int) "two entries" 2 (Ph.length t);
  ignore (Ph.remove_min t);
  ignore (Ph.remove_min t);
  Alcotest.(check bool) "drained" true (Ph.is_empty t)

let ph_heapsort_test =
  QCheck.Test.make ~count:300 ~name:"pairing heap sorts"
    QCheck.(list (int_bound 1000))
    (fun keys ->
      let t = Ph.create () in
      List.iter (fun k -> Ph.insert t k k) keys;
      (match Ph.validate t with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_report e);
      let rec drain acc =
        match Ph.remove_min t with
        | Some (k, _) -> drain (k :: acc)
        | None -> List.rev acc
      in
      drain [] = List.sort compare keys)

(* --- hashtable --- *)

let test_ht_basic () =
  let t = Ht.create () in
  Alcotest.(check bool) "add" true (Ht.add t "a" 1);
  Alcotest.(check bool) "add dup" false (Ht.add t "a" 2);
  Alcotest.(check (option int)) "find" (Some 1) (Ht.find t "a");
  Ht.set t "a" 3;
  Alcotest.(check (option int)) "set overwrites" (Some 3) (Ht.find t "a");
  Alcotest.(check (option int)) "remove" (Some 3) (Ht.remove t "a");
  Alcotest.(check (option int)) "remove absent" None (Ht.remove t "a");
  Alcotest.(check int) "empty" 0 (Ht.length t)

let test_ht_resize () =
  let t = Ht.create ~initial_size:2 () in
  for i = 0 to 999 do
    Ht.set t i (i * 2)
  done;
  Alcotest.(check int) "length" 1000 (Ht.length t);
  Alcotest.(check bool) "resized" true (Ht.bucket_count t > 2);
  for i = 0 to 999 do
    Alcotest.(check (option int)) "lookup" (Some (i * 2)) (Ht.find t i)
  done;
  check_valid "ht resize" (Ht.validate t)

let ht_model_test =
  QCheck.Test.make ~count:300 ~name:"hashtable vs assoc model"
    QCheck.(list (pair (int_bound 30) (option (int_bound 100))))
    (fun ops ->
      let t = Ht.create ~initial_size:1 () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          match v with
          | Some v ->
              Ht.set t k v;
              Hashtbl.replace model k v
          | None ->
              ignore (Ht.remove t k);
              Hashtbl.remove model k)
        ops;
      (match Ht.validate t with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_report e);
      Ht.length t = Hashtbl.length model
      && Hashtbl.fold (fun k v acc -> acc && Ht.find t k = Some v) model true)

(* --- stack & queue --- *)

let test_stack () =
  let t = Nr_seqds.Seq_stack.create () in
  Alcotest.(check (option int)) "pop empty" None (Nr_seqds.Seq_stack.pop t);
  Nr_seqds.Seq_stack.push t 1;
  Nr_seqds.Seq_stack.push t 2;
  Alcotest.(check (option int)) "peek" (Some 2) (Nr_seqds.Seq_stack.peek t);
  Alcotest.(check (option int)) "lifo" (Some 2) (Nr_seqds.Seq_stack.pop t);
  Alcotest.(check (option int)) "lifo2" (Some 1) (Nr_seqds.Seq_stack.pop t);
  Alcotest.(check int) "len" 0 (Nr_seqds.Seq_stack.length t)

let test_queue () =
  let t = Nr_seqds.Seq_queue.create () in
  Alcotest.(check (option int)) "dequeue empty" None (Nr_seqds.Seq_queue.dequeue t);
  List.iter (Nr_seqds.Seq_queue.enqueue t) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "peek" (Some 1) (Nr_seqds.Seq_queue.peek t);
  Alcotest.(check (option int)) "fifo1" (Some 1) (Nr_seqds.Seq_queue.dequeue t);
  Nr_seqds.Seq_queue.enqueue t 4;
  Alcotest.(check (option int)) "fifo2" (Some 2) (Nr_seqds.Seq_queue.dequeue t);
  Alcotest.(check (option int)) "fifo3" (Some 3) (Nr_seqds.Seq_queue.dequeue t);
  Alcotest.(check (option int)) "fifo4" (Some 4) (Nr_seqds.Seq_queue.dequeue t);
  Alcotest.(check bool) "empty" true (Nr_seqds.Seq_queue.is_empty t)

let queue_model_test =
  QCheck.Test.make ~count:300 ~name:"queue vs list model"
    QCheck.(list (option (int_bound 100)))
    (fun ops ->
      let t = Nr_seqds.Seq_queue.create () in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some v ->
              Nr_seqds.Seq_queue.enqueue t v;
              model := !model @ [ v ];
              true
          | None -> (
              let r = Nr_seqds.Seq_queue.dequeue t in
              match (!model, r) with
              | [], None -> true
              | x :: rest, Some y when x = y ->
                  model := rest;
                  true
              | _ -> false))
        ops)

(* --- synthetic --- *)

let test_synthetic () =
  let module Syn = Nr_seqds.Synthetic.Make (struct
    let n = 64
    let c = 4
  end) in
  let t = Syn.create () in
  Alcotest.(check int) "read of zeros" 0 (Syn.execute t (Syn.Read 123));
  ignore (Syn.execute t (Syn.Update 123));
  Alcotest.(check int) "read after update" 4 (Syn.execute t (Syn.Read 123));
  Alcotest.(check bool) "read is read-only" true (Syn.is_read_only (Syn.Read 1));
  Alcotest.(check bool) "update is not" false (Syn.is_read_only (Syn.Update 1));
  (* entry 0 is hot: every op touches it *)
  ignore (Syn.execute t (Syn.Update 999));
  let r = Syn.execute t (Syn.Read 123) in
  Alcotest.(check bool) "hot entry shared" true (r > 4)

(* --- adapters: footprints well-formed --- *)

let test_footprints () =
  let t = Nr_seqds.Skiplist_pq.create () in
  for i = 1 to 1000 do
    ignore (Nr_seqds.Skiplist_pq.execute t (Nr_seqds.Pq_ops.Insert (i, i)))
  done;
  let fp = Nr_seqds.Skiplist_pq.footprint t (Nr_seqds.Pq_ops.Insert (5000, 1)) in
  Alcotest.(check bool) "insert reads > 0" true (fp.Nr_runtime.Footprint.reads > 0);
  let fp2 = Nr_seqds.Skiplist_pq.footprint t Nr_seqds.Pq_ops.Find_min in
  Alcotest.(check bool) "findMin read-only" true
    (Nr_runtime.Footprint.read_only fp2);
  let fp3 = Nr_seqds.Skiplist_pq.footprint t Nr_seqds.Pq_ops.Delete_min in
  Alcotest.(check bool) "deleteMin writes hot" true fp3.Nr_runtime.Footprint.hot_write

let suite =
  [
    Alcotest.test_case "skiplist basic" `Quick test_sl_basic;
    Alcotest.test_case "skiplist order" `Quick test_sl_order;
    Alcotest.test_case "skiplist min" `Quick test_sl_min;
    Alcotest.test_case "skiplist drain sorted" `Quick test_sl_remove_min_drains_sorted;
    Alcotest.test_case "skiplist rank/nth" `Quick test_sl_rank_and_nth;
    Alcotest.test_case "skiplist set" `Quick test_sl_set;
    Alcotest.test_case "skiplist determinism" `Quick test_sl_determinism;
    QCheck_alcotest.to_alcotest sl_model_test;
    Alcotest.test_case "pairing heap basic" `Quick test_ph_basic;
    Alcotest.test_case "pairing heap duplicates" `Quick test_ph_duplicates;
    QCheck_alcotest.to_alcotest ph_heapsort_test;
    Alcotest.test_case "hashtable basic" `Quick test_ht_basic;
    Alcotest.test_case "hashtable resize" `Quick test_ht_resize;
    QCheck_alcotest.to_alcotest ht_model_test;
    Alcotest.test_case "stack" `Quick test_stack;
    Alcotest.test_case "queue" `Quick test_queue;
    QCheck_alcotest.to_alcotest queue_model_test;
    Alcotest.test_case "synthetic" `Quick test_synthetic;
    Alcotest.test_case "adapter footprints" `Quick test_footprints;
  ]

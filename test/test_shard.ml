(* Sharded NR: router determinism and balance, the S=1 passthrough
   identity, S>=4 update-heavy speedup, cross-shard atomicity, and the
   pure route/split/merge plumbing against a single plain store. *)

open Nr_shard

(* --- router -------------------------------------------------------- *)

(* Golden values pin the hash across refactors: a silent change to the
   key-to-shard mapping would invalidate every recorded sharded figure. *)
let test_router_golden () =
  let check k expect =
    Alcotest.(check int)
      (Printf.sprintf "hash %S" k)
      expect
      (Router.hash ~seed:0x5EED k)
  in
  check "k0" 0x2a3e9c8509f0b478;
  check "k1" 0x04dbe50376c9bd71;
  check "alpha" 0x35a707c438227a27;
  check "" 0x292e8655197cbbe1;
  Alcotest.(check int)
    "seed changes the mapping" 0x3acdd6cf129e6925
    (Router.hash ~seed:7 "k0");
  Alcotest.(check bool)
    "hash is non-negative" true
    (List.for_all
       (fun k -> Router.hash ~seed:0x5EED k >= 0)
       [ "k0"; ""; "\xff\xff\xff\xff\xff\xff\xff\xff" ])

let test_router_deterministic () =
  let r1 = Router.create ~shards:8 ~seed:0x5EED () in
  let r2 = Router.create ~shards:8 ~seed:0x5EED () in
  for i = 0 to 999 do
    let k = Nr_workload.String_keys.key i in
    Alcotest.(check int) k (Router.shard_of r1 k) (Router.shard_of r2 k)
  done;
  Alcotest.check_raises "shards < 1 rejected"
    (Invalid_argument "Router.create: shards must be >= 1") (fun () ->
      ignore (Router.create ~shards:0 ~seed:1 ()))

let test_router_balance () =
  List.iter
    (fun shards ->
      let r = Router.create ~shards ~seed:0x5EED () in
      let counts = Array.make shards 0 in
      let n = 4096 in
      for i = 0 to n - 1 do
        let s = Router.shard_of r (Nr_workload.String_keys.key i) in
        counts.(s) <- counts.(s) + 1
      done;
      let fair = n / shards in
      Array.iteri
        (fun s c ->
          Alcotest.(check bool)
            (Printf.sprintf "shard %d/%d within 2x of fair share (%d vs %d)" s
               shards c fair)
            true
            (c > fair / 2 && c < fair * 2))
        counts)
    [ 2; 3; 4; 8 ]

let test_router_bypass () =
  let r = Router.create ~bypass:true ~shards:4 ~seed:0x5EED () in
  let honest = Router.create ~shards:4 ~seed:0x5EED () in
  for i = 0 to 99 do
    let k = Nr_workload.String_keys.key i in
    Alcotest.(check int)
      "updates still routed home" (Router.shard_of honest k)
      (Router.shard_of r k);
    Alcotest.(check int)
      "reads misrouted one shard over"
      ((Router.shard_of r k + 1) mod 4)
      (Router.read_shard_of r k)
  done;
  let one = Router.create ~bypass:true ~shards:1 ~seed:0x5EED () in
  Alcotest.(check int) "bypass is inert at S=1" 0 (Router.read_shard_of one "k")

(* --- pure route/split/merge vs a single plain store ----------------- *)

(* Drive random command sequences through S plain stores using only the
   router plus [Kv_shard]'s route/split/merge — exactly the coordinator's
   data path, minus locks — and compare every reply against one plain
   store.  Any disagreement means the partitioning plumbing (not the
   concurrency control) is wrong. *)
let exec_sharded stores router cmd =
  let module C = Nr_kvstore.Command in
  match Kv_shard.route cmd with
  | Sharded.Single k ->
      Nr_kvstore.Store.execute stores.(Router.shard_of router k) cmd
  | Sharded.Cross ->
      let shards = Array.length stores in
      let shard_of = Router.shard_of router in
      let subs = Kv_shard.split cmd ~shards ~shard_of in
      let results =
        List.map (fun (i, sub) -> (i, Nr_kvstore.Store.execute stores.(i) sub)) subs
      in
      Kv_shard.merge cmd ~shards ~shard_of results

let cmd_gen =
  QCheck.Gen.(
    let key = map Nr_workload.String_keys.key (int_bound 15) in
    let value = map string_of_int (int_bound 9) in
    let module C = Nr_kvstore.Command in
    frequency
      [
        (3, map (fun k -> C.Get k) key);
        (3, map2 (fun k v -> C.Set (k, v)) key value);
        (2, map (fun k -> C.Del k) key);
        (1, map (fun k -> C.Exists k) key);
        (1, map (fun k -> C.Incr k) key);
        (2, map (fun ks -> C.Mget ks) (list_size (int_range 1 4) key));
        ( 2,
          map
            (fun ps -> C.Mset ps)
            (list_size (int_range 1 4) (pair key value)) );
        (1, return C.Dbsize);
        (1, return C.Flushall);
      ])

let seq_equivalence =
  QCheck.Test.make ~count:200
    ~name:"sharded route/split/merge agrees with one plain store"
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 40) cmd_gen)
       ~print:(fun cmds ->
         String.concat "; "
           (List.map (Format.asprintf "%a" Nr_kvstore.Command.pp) cmds)))
    (fun cmds ->
      let router = Router.create ~shards:4 ~seed:0x5EED () in
      let stores = Array.init 4 (fun _ -> Nr_kvstore.Store.create ()) in
      let plain = Nr_kvstore.Store.create () in
      List.for_all
        (fun cmd ->
          exec_sharded stores router cmd = Nr_kvstore.Store.execute plain cmd)
        cmds)

(* --- simulator: passthrough identity and speedup -------------------- *)

open Nr_harness

let params population =
  {
    Params.topo = Nr_sim.Topology.intel;
    threads = [];
    warmup_us = 2.0;
    measure_us = 12.0;
    population;
    seed = 0xA5A5;
    latency = false;
  }

let run_kv_point ~threads setup =
  let p = params 512 in
  Driver.run_sim ~topo:p.Params.topo ~threads ~warmup_us:p.Params.warmup_us
    ~measure_us:p.Params.measure_us (setup p)

let check_points_identical msg (a : Driver.result) (b : Driver.result) =
  Alcotest.(check int)
    (msg ^ ": total ops") a.Driver.total_ops b.Driver.total_ops;
  Alcotest.(check int)
    (msg ^ ": remote transfers") a.Driver.remote_transfers
    b.Driver.remote_transfers;
  Alcotest.(check bool)
    (msg ^ ": throughput bit-identical")
    true
    (Int64.bits_of_float a.Driver.ops_per_us
    = Int64.bits_of_float b.Driver.ops_per_us)

(* S=1 has no locks and no coordinator: the charge sequence must be the
   one plain NR produces, op for op. *)
let test_single_shard_identity () =
  let threads = 14 in
  check_points_identical "S=1 vs plain NR"
    (run_kv_point ~threads (fun p ->
         Exp_shard.setup_plain p ~multi_pct:0 ~update_pct:100 ~threads))
    (run_kv_point ~threads (fun p ->
         Exp_shard.setup_sharded p ~shards:1 ~multi_pct:0 ~update_pct:100
           ~threads))

(* The acceptance bar from the sharding PR: at full Intel thread count,
   100% updates, S>=4 must at least double plain NR — and stay
   deterministic, same as every other simulator figure. *)
let test_speedup_and_determinism () =
  let threads = 112 in
  let sharded () =
    run_kv_point ~threads (fun p ->
        Exp_shard.setup_sharded p ~shards:4 ~multi_pct:0 ~update_pct:100
          ~threads)
  in
  let plain =
    run_kv_point ~threads (fun p ->
        Exp_shard.setup_plain p ~multi_pct:0 ~update_pct:100 ~threads)
  in
  let s4 = sharded () in
  Alcotest.(check bool)
    (Printf.sprintf "S=4 at least 2x plain NR (%.2f vs %.2f ops/us)"
       s4.Driver.ops_per_us plain.Driver.ops_per_us)
    true
    (s4.Driver.ops_per_us >= 2.0 *. plain.Driver.ops_per_us);
  check_points_identical "S=4 rerun" s4 (sharded ())

(* --- simulator: cross-shard atomicity ------------------------------- *)

(* Writers MSET the same fresh value onto two keys homed on different
   shards; readers MGET the pair.  Under the coordinator's two-lock
   window every read must see equal halves — a torn pair would mean the
   linearization point leaked outside the locks. *)
let test_cross_shard_atomicity () =
  let torn = ref 0 in
  let reads = ref 0 in
  let setup rt =
    let module R = (val rt : Nr_runtime.Runtime_intf.S) in
    let module Sh = Sharded.Make (R) (Kv_shard) in
    let t =
      Sh.create
        ~cfg:{ Nr_core.Config.default with shards = 4 }
        ~factory:(fun ~shard:_ ~shard_of:_ () -> Nr_kvstore.Store.create ())
        ()
    in
    let router = Sh.router t in
    let k1 = "pair-a" in
    let k2 =
      (* probe for a key homed on a different shard than [k1] *)
      let rec find i =
        let k = "pair-b" ^ string_of_int i in
        if Router.shard_of router k <> Router.shard_of router k1 then k
        else find (i + 1)
      in
      find 0
    in
    let next = ref 0 in
    fun ~tid ->
      if tid land 1 = 0 then fun () ->
        (* single OS thread under the simulator: the counter is safe *)
        incr next;
        let v = string_of_int !next in
        ignore (Sh.execute t (Nr_kvstore.Command.Mset [ (k1, v); (k2, v) ]))
      else fun () ->
        match Sh.execute t (Nr_kvstore.Command.Mget [ k1; k2 ]) with
        | Nr_kvstore.Command.Array [ a; b ] ->
            incr reads;
            if a <> b then incr torn
        | _ -> incr torn
  in
  ignore
    (Driver.run_sim ~topo:Nr_sim.Topology.intel ~threads:8 ~warmup_us:2.0
       ~measure_us:30.0 setup);
  Alcotest.(check bool) "readers actually ran" true (!reads > 0);
  Alcotest.(check int) "no torn MSET pairs observed" 0 !torn

(* --- domains: whole-keyspace commands and shard stats ---------------- *)

let test_dbsize_flushall_across_shards () =
  let module R =
    (val Nr_runtime.Runtime_domains.make Nr_sim.Topology.tiny)
  in
  let module Sh = Sharded.Make (R) (Kv_shard) in
  Nr_runtime.Runtime_domains.parallel_run ~nthreads:1 (fun _ ->
      let t =
        Sh.create
          ~cfg:{ Nr_core.Config.default with shards = 4 }
          ~factory:(fun ~shard:_ ~shard_of:_ () -> Nr_kvstore.Store.create ())
          ()
      in
      let module C = Nr_kvstore.Command in
      let n = 64 in
      let bindings =
        List.init n (fun i -> (Nr_workload.String_keys.key i, string_of_int i))
      in
      Alcotest.(check bool) "mset ok" true (Sh.execute t (C.Mset bindings) = C.Ok_reply);
      Alcotest.(check bool)
        "dbsize sums the shards" true
        (Sh.execute t C.Dbsize = C.Int n);
      (* every shard holds a strict subset: no shard double-counts *)
      let st = Sh.stats t in
      Alcotest.(check int) "two cross ops so far" 2 st.Shard_stats.cross_ops;
      Alcotest.(check bool) "keys spread over >1 shard" true
        (Sh.execute t (C.Del (Nr_workload.String_keys.key 0)) = C.Int 1
        && Sh.execute t C.Dbsize = C.Int (n - 1));
      Alcotest.(check bool)
        "mget replays the key order" true
        (Sh.execute t (C.Mget [ "k3"; "absent"; "k1" ])
        = C.Array [ C.Bulk "3"; C.Nil; C.Bulk "1" ]);
      Alcotest.(check bool) "flushall ok" true (Sh.execute t C.Flushall = C.Ok_reply);
      Alcotest.(check bool) "empty after flushall" true
        (Sh.execute t C.Dbsize = C.Int 0);
      Alcotest.(check bool)
        "single-key ops were recorded per shard" true
        (Shard_stats.total_single st > 0))

let suite =
  [
    Alcotest.test_case "router golden hashes" `Quick test_router_golden;
    Alcotest.test_case "router deterministic across instances" `Quick
      test_router_deterministic;
    Alcotest.test_case "router balances uniform keys" `Quick
      test_router_balance;
    Alcotest.test_case "bypass misroutes reads only" `Quick test_router_bypass;
    QCheck_alcotest.to_alcotest seq_equivalence;
    Alcotest.test_case "S=1 is op-count-identical to plain NR" `Quick
      test_single_shard_identity;
    Alcotest.test_case "S=4 doubles update-heavy throughput, deterministic"
      `Quick test_speedup_and_determinism;
    Alcotest.test_case "cross-shard MSET/MGET pairs never tear" `Quick
      test_cross_shard_atomicity;
    Alcotest.test_case "DBSIZE/FLUSHALL span all shards" `Quick
      test_dbsize_flushall_across_shards;
  ]

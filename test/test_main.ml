(* Test entry point: every suite in one runner so `dune runtest` covers the
   whole library. *)

let () =
  Alcotest.run "node-replication"
    [
      ("prng+workload", Test_prng.suite);
      ("sequential-structures", Test_seqds.suite);
      ("simulator", Test_sim.suite);
      ("sync-primitives", Test_sync.suite);
      ("shared-log", Test_log.suite);
      ("node-replication", Test_nr.suite);
      ("baselines", Test_baselines.suite);
      ("kvstore", Test_kvstore.suite);
      ("txn", Test_txn.suite);
      ("net", Test_net.suite);
      ("harness", Test_harness.suite);
      ("observability", Test_obs.suite);
      ("extensions", Test_extensions.suite);
      ("properties", Test_properties.suite);
      ("chaos", Test_chaos.suite);
      ("check", Test_check.suite);
      ("durable", Test_durable.suite);
      ("repl", Test_repl.suite);
      ("chaos-repl", Test_repl.chaos_suite);
      ("shard", Test_shard.suite);
      ("hot-path", Test_hotpath.suite);
      ("read-path", Test_readpath.suite);
      ("misc", Test_misc.suite);
      ("memsize", Test_memsize.suite);
      ("stress", Test_stress.suite);
    ]
